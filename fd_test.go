package ucq

import (
	"strings"
	"testing"

	"repro/internal/enumeration"
)

func TestPublicFDAPI(t *testing.T) {
	q := MustParseCQ("Q(x,y) <- R1(x,z), R2(z,y).")
	fds := MustFDSet(FD{Rel: "R1", From: []int{0}, To: 1})

	ext, ok := ClassifyCQWithFDs(q, fds)
	if !ok {
		t.Fatalf("FD-extension should be free-connex")
	}
	if len(ext.Head) != 3 {
		t.Errorf("extended head = %v", ext.Head)
	}
	// Without helpful FDs the query stays non-free-connex.
	none := MustFDSet(FD{Rel: "R2", From: []int{0}, To: 1})
	if _, ok := ClassifyCQWithFDs(q, none); ok {
		t.Errorf("unhelpful FD certified the query")
	}

	inst := NewInstance()
	r1 := NewRelation("R1", 2)
	r1.AppendInts(1, 10)
	r1.AppendInts(2, 10)
	r1.AppendInts(3, 11)
	inst.AddRelation(r1)
	r2 := NewRelation("R2", 2)
	r2.AppendInts(10, 7)
	r2.AppendInts(11, 8)
	inst.AddRelation(r2)

	it, err := EnumerateCQWithFDs(q, fds, inst)
	if err != nil {
		t.Fatalf("EnumerateCQWithFDs: %v", err)
	}
	got := enumeration.Collect(it)
	if len(got) != 3 {
		t.Errorf("answers = %v, want 3", got)
	}
	if _, err := NewFDSet(FD{Rel: "", From: []int{0}, To: 1}); err == nil {
		t.Errorf("invalid FD accepted")
	}
}

func TestPlanExplain(t *testing.T) {
	u := MustParse(example2Src)
	inst := NewInstance()
	for _, name := range []string{"R1", "R2", "R3"} {
		r := NewRelation(name, 2)
		r.AppendInts(1, 2)
		r.AppendInts(2, 3)
		inst.AddRelation(r)
	}
	p, err := NewPlan(u, inst, nil)
	if err != nil {
		t.Fatalf("NewPlan: %v", err)
	}
	ex := p.Explain()
	for _, want := range []string{"Theorem 12", "certified extensions", "provider runs", "top join tree"} {
		if !strings.Contains(ex, want) {
			t.Errorf("Explain missing %q:\n%s", want, ex)
		}
	}
	naive, err := NewPlan(u, inst, &PlanOptions{ForceNaive: true})
	if err != nil {
		t.Fatalf("NewPlan: %v", err)
	}
	if !strings.Contains(naive.Explain(), "naive plan") {
		t.Errorf("naive Explain = %q", naive.Explain())
	}
}
