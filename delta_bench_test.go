package ucq

import (
	"context"
	"fmt"
	"testing"
)

// E22 exercises the incremental-maintenance claim: after a small append,
// enumerating exactly the new answers via the semi-naive delta path
// (Plan.DeltaAnswers) must beat re-enumerating the full answer set at the
// head version by a wide margin. The workload is the full-head join
// Q(x,y,z) <- R(x,y), S(y,z) (free-connex, so the delta path runs through
// the certified constant-time old-membership filter): a large R, a small
// S, every R row matching exactly one S row, and an append that adds a
// handful of R rows. The delta arm touches the appended rows plus S; the
// full arm pays for every answer.

const (
	e22BaseRows   = 20000 // R rows in the registered dataset
	e22Fanout     = 200   // distinct join keys (= S rows)
	e22AppendRows = 16    // R rows added by the maintained append
)

// e22Dataset registers the base instance in a fresh catalog, binds the
// plan at the registration version, appends e22AppendRows rows, and
// returns the prepared query, the bound plan, the dataset and the
// append's version window.
func e22Dataset(tb testing.TB) (*PreparedQuery, *Plan, *Dataset, Version, Version) {
	tb.Helper()
	inst := NewInstance()
	r := NewRelation("R", 2)
	for i := int64(0); i < e22BaseRows; i++ {
		r.AppendInts(i, i%e22Fanout)
	}
	s := NewRelation("S", 2)
	for j := int64(0); j < e22Fanout; j++ {
		s.AppendInts(j, j+1_000_000)
	}
	inst.AddRelation(r)
	inst.AddRelation(s)

	pq, err := Prepare(MustParse(deltaJoinQuery), nil)
	if err != nil {
		tb.Fatal(err)
	}
	cat := NewCatalog()
	ds, err := cat.Register("bench", inst)
	if err != nil {
		tb.Fatal(err)
	}
	plan, err := pq.BindDataset(ds)
	if err != nil {
		tb.Fatal(err)
	}
	if plan.Mode != ConstantDelay {
		tb.Fatalf("plan mode = %v, want ConstantDelay (full-head join must certify)", plan.Mode)
	}
	rows := make([][]int64, e22AppendRows)
	for k := range rows {
		rows[k] = []int64{e22BaseRows + int64(k), int64(k) % e22Fanout}
	}
	to, err := ds.AppendRows(map[string][][]int64{"R": rows})
	if err != nil {
		tb.Fatal(err)
	}
	return pq, plan, ds, Version(1), Version(to)
}

// e22Delta runs one delta maintenance pass, failing unless it yields
// exactly the appended answers.
func e22Delta(tb testing.TB, plan *Plan, from, to Version) {
	n := 0
	err := plan.DeltaAnswersContext(context.Background(), from, to, func(Tuple) bool {
		n++
		return true
	})
	if err != nil {
		tb.Fatal(err)
	}
	if n != e22AppendRows {
		tb.Fatalf("delta answers = %d, want %d", n, e22AppendRows)
	}
}

// e22Full runs one full re-evaluation at the head version — bind (served
// from the bind cache after the first call, which is the cheapest honest
// baseline: a resyncing subscriber pays at least this) plus a drain of
// the whole answer set.
func e22Full(tb testing.TB, pq *PreparedQuery, ds *Dataset) {
	plan, err := pq.BindDataset(ds)
	if err != nil {
		tb.Fatal(err)
	}
	const want = e22BaseRows + e22AppendRows
	n := 0
	for range plan.All(context.Background()) {
		n++
	}
	if n != want {
		tb.Fatalf("full answers = %d, want %d", n, want)
	}
}

// BenchmarkE22DeltaMaintenance: maintaining a bound plan across a small
// append — the semi-naive delta evaluation with the Theorem 12
// constant-time old-membership filter — against a full re-evaluation at
// the head version. This is the library-level core of the /subscribe
// push path; the benchgate watches the delta arm staying far under the
// full arm (TestDeltaMaintenanceSpeedup pins the ≥5× floor).
func BenchmarkE22DeltaMaintenance(b *testing.B) {
	pq, plan, ds, from, to := e22Dataset(b)
	e22Full(b, pq, ds) // warm the bind cache for the full arm

	b.Run(fmt.Sprintf("delta-%d-rows", e22AppendRows), func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			e22Delta(b, plan, from, to)
		}
		b.ReportMetric(float64(e22AppendRows), "answers/op")
	})
	b.Run("full-reeval", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			e22Full(b, pq, ds)
		}
		b.ReportMetric(float64(e22BaseRows+e22AppendRows), "answers/op")
	})
}

// TestDeltaMaintenanceSpeedup pins the E22 acceptance floor: the delta
// maintenance pass must run at least 5× faster than the full
// re-evaluation it replaces. The real ratio is orders of magnitude (the
// delta arm's work is proportional to the appended rows plus S, not to
// the answer set), so 5× leaves generous headroom for noisy CI boxes.
func TestDeltaMaintenanceSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive; skipped in -short")
	}
	pq, plan, ds, from, to := e22Dataset(t)
	e22Full(t, pq, ds) // warm the bind cache

	deltaRes := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			e22Delta(b, plan, from, to)
		}
	})
	fullRes := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			e22Full(b, pq, ds)
		}
	})
	deltaNs := float64(deltaRes.NsPerOp())
	fullNs := float64(fullRes.NsPerOp())
	t.Logf("delta: %.0f ns/op, full re-eval: %.0f ns/op (%.1fx)", deltaNs, fullNs, fullNs/deltaNs)
	if deltaNs*5 > fullNs {
		t.Errorf("delta maintenance is only %.1fx faster than full re-evaluation, want >= 5x", fullNs/deltaNs)
	}
}
