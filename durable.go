package ucq

import (
	"fmt"

	"repro/internal/storage"
)

// OpenCatalog builds a catalog whose mutations are durable under dir: every
// Register, Replace, AppendRows and Drop is journaled (snapshot + WAL,
// fsynced) before it is acknowledged, and OpenCatalog itself replays the
// journal so a restarted process recovers every dataset at the exact
// version it was last acknowledged at. Recovered registrations get fresh
// generations, so the versioned bind cache warms against the recovered
// snapshots exactly as it would against freshly registered ones.
//
// The returned store exposes durability gauges (see storage.Stats) and must
// be closed after the catalog is done with. A dataset whose durable state
// is unreadable past the last valid record loses only unacknowledged
// writes; see storage.Store.Recover for the torn-tail semantics.
func OpenCatalog(dir string, cfg CatalogConfig) (*Catalog, *storage.Store, error) {
	st, err := storage.Open(dir)
	if err != nil {
		return nil, nil, err
	}
	recovered, err := st.Recover()
	if err != nil {
		st.Close()
		return nil, nil, err
	}
	c := NewCatalogConfig(cfg)
	c.journal = st
	for _, r := range recovered {
		ds := &Dataset{name: r.Name, cat: c, gen: c.gen.Add(1)}
		ds.snap.Store(newSnapshot(r.Name, r.Version, r.Inst))
		c.datasets[r.Name] = ds
	}
	if len(c.datasets) != len(recovered) {
		st.Close()
		return nil, nil, fmt.Errorf("ucq: duplicate dataset names in recovery")
	}
	return c, st, nil
}
