package ucq

import (
	"repro/internal/fd"
	"repro/internal/hypergraph"
)

// FD is a functional dependency R: From → To over 0-based positions of
// relation R (Remark 2 of the paper; Carmeli & Kröll ICDT'18).
type FD = fd.FD

// FDSet is a collection of functional dependencies.
type FDSet = fd.Set

// NewFDSet builds an FD set, validating positions.
func NewFDSet(fds ...FD) (*FDSet, error) { return fd.NewSet(fds...) }

// MustFDSet is NewFDSet panicking on error.
func MustFDSet(fds ...FD) *FDSet { return fd.MustSet(fds...) }

// ClassifyCQWithFDs reports whether the CQ's FD-extension is free-connex:
// the FD-aware tractability condition behind Remark 2. A CQ that is
// intractable in general may become constant-delay enumerable on schemas
// whose FDs determine its existential join variables.
func ClassifyCQWithFDs(q *CQ, fds *FDSet) (extended *CQ, fdFreeConnex bool) {
	ext := fds.ExtendCQ(q)
	return ext, hypergraph.FromCQ(ext).IsSConnex(ext.Free())
}

// EnumerateCQWithFDs enumerates q over an FD-satisfying instance through
// its FD-extension, with linear preprocessing and constant delay when the
// extension is free-connex. It errors when the extension is not
// free-connex or the instance violates an FD.
func EnumerateCQWithFDs(q *CQ, fds *FDSet, inst *Instance) (Answers, error) {
	return fds.EnumerateCQ(q, inst)
}
