// functional_deps demonstrates Remark 2 of the paper: functional
// dependencies can flip an intractable query into a constant-delay
// enumerable one. The matrix-multiplication query Q(x,y) <- R1(x,z),
// R2(z,y) is the canonical hard case — unless R1's first column determines
// its second, in which case the FD-extension Q(x,y,z) is free-connex.
//
// Run with: go run ./examples/functional_deps
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	q := ucq.MustParseCQ("Q(x,y) <- R1(x,z), R2(z,y).")
	fmt.Printf("query: %s\n", q)
	fmt.Printf("without FDs: %s (the mat-mul hard case)\n\n", ucq.ClassifyCQ(q))

	fds := ucq.MustFDSet(ucq.FD{Rel: "R1", From: []int{0}, To: 1})
	ext, ok := ucq.ClassifyCQWithFDs(q, fds)
	fmt.Printf("with FD %v:\n", fds.All()[0])
	fmt.Printf("  FD-extension: %s\n", ext)
	fmt.Printf("  FD-extension free-connex: %v\n\n", ok)

	// Build an instance satisfying the FD: each x has exactly one z.
	inst := ucq.NewInstance()
	r1 := ucq.NewRelation("R1", 2)
	r2 := ucq.NewRelation("R2", 2)
	for x := int64(0); x < 8; x++ {
		r1.AppendInts(x, x%3) // z is a function of x
	}
	for z := int64(0); z < 3; z++ {
		for y := int64(0); y < 4; y++ {
			if (z+y)%2 == 0 {
				r2.AppendInts(z, 10+y)
			}
		}
	}
	inst.AddRelation(r1)
	inst.AddRelation(r2)

	it, err := ucq.EnumerateCQWithFDs(q, fds, inst)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("answers (constant delay through the FD-extension):")
	count := 0
	for {
		t, ok := it.Next()
		if !ok {
			break
		}
		count++
		fmt.Printf("  %v\n", t)
	}
	fmt.Printf("%d answers.\n\n", count)

	// Violating the FD is rejected up front.
	r1.AppendInts(0, 2) // x=0 now maps to two z values
	if _, err := ucq.EnumerateCQWithFDs(q, fds, inst); err != nil {
		fmt.Printf("after violating the FD: %v\n", err)
	}
}
