// matrix_mult runs the Lemma 25 / Example 20 reduction forward: Boolean
// matrix multiplication computed by evaluating a UCQ whose free-path is
// not guarded, checked against the direct product.
//
// This is the paper's hardness argument made executable: if the union were
// enumerable in DelayClin, this program's UCQ route would multiply
// matrices in O(n²).
//
// Run with: go run ./examples/matrix_mult
package main

import (
	"fmt"
	"io"
	"log"
	"os"
	"time"

	"repro"
	"repro/internal/matrix"
	"repro/internal/reduction"
)

func main() {
	if err := run(os.Stdout, []int{32, 64, 128}); err != nil {
		log.Fatal(err)
	}
}

func run(w io.Writer, sizes []int) error {
	// Example 20: two body-isomorphic CQs; the free-path (w,v,y) of the
	// rewritten Q1 is not guarded by free(Q2).
	u := ucq.MustParse(`
		Q1(x,y,v) <- R1(x,z), R2(z,y), R3(y,v), R4(v,w).
		Q2(x,y,v) <- R1(w,v), R2(v,y), R3(y,z), R4(z,x).
	`)
	res, err := ucq.Classify(u)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "query verdict: %s — %s\n\n", res.Verdict, res.Reason)

	enc, err := reduction.NewMatMulEncoding(u)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "unguarded free-path: %v (Vx=%v Vz=%v Vy=%v)\n\n",
		enc.Path, enc.Vx, enc.Vz, enc.Vy)

	for _, n := range sizes {
		a := matrix.Random(n, 0.4, int64(n))
		b := matrix.Random(n, 0.4, int64(n)+1)

		start := time.Now()
		want := a.Multiply(b)
		direct := time.Since(start)

		start = time.Now()
		inst := enc.Instance(a, b)
		plan, err := ucq.NewPlan(u, inst, &ucq.PlanOptions{ForceNaive: true})
		if err != nil {
			return err
		}
		answers := plan.Materialize()
		got := enc.DecodeProduct(answers, n)
		viaUCQ := time.Since(start)

		status := "MATCH"
		if !got.Equal(want) {
			status = "MISMATCH"
		}
		fmt.Fprintf(w, "n=%3d: |A·B|=%5d ones, union answers=%6d, direct=%8v, via UCQ=%8v  [%s]\n",
			n, want.Ones(), answers.Len(), direct.Round(time.Microsecond),
			viaUCQ.Round(time.Microsecond), status)
		if status == "MISMATCH" {
			return fmt.Errorf("n=%d: product decoded from the UCQ differs from the direct product", n)
		}
	}
	fmt.Fprintln(w, "\nEvery decoded product equals the direct Boolean product; the extra")
	fmt.Fprintln(w, "answers stay within the 2n² bystander bound of the Lemma 25 proof.")
	return nil
}
