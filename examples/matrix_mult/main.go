// matrix_mult runs the Lemma 25 / Example 20 reduction forward: Boolean
// matrix multiplication computed by evaluating a UCQ whose free-path is
// not guarded, checked against the direct product.
//
// This is the paper's hardness argument made executable: if the union were
// enumerable in DelayClin, this program's UCQ route would multiply
// matrices in O(n²).
//
// Run with: go run ./examples/matrix_mult
package main

import (
	"fmt"
	"log"
	"time"

	"repro"
	"repro/internal/matrix"
	"repro/internal/reduction"
)

func main() {
	// Example 20: two body-isomorphic CQs; the free-path (w,v,y) of the
	// rewritten Q1 is not guarded by free(Q2).
	u := ucq.MustParse(`
		Q1(x,y,v) <- R1(x,z), R2(z,y), R3(y,v), R4(v,w).
		Q2(x,y,v) <- R1(w,v), R2(v,y), R3(y,z), R4(z,x).
	`)
	res, err := ucq.Classify(u)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query verdict: %s — %s\n\n", res.Verdict, res.Reason)

	enc, err := reduction.NewMatMulEncoding(u)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("unguarded free-path: %v (Vx=%v Vz=%v Vy=%v)\n\n",
		enc.Path, enc.Vx, enc.Vz, enc.Vy)

	for _, n := range []int{32, 64, 128} {
		a := matrix.Random(n, 0.4, int64(n))
		b := matrix.Random(n, 0.4, int64(n)+1)

		start := time.Now()
		want := a.Multiply(b)
		direct := time.Since(start)

		start = time.Now()
		inst := enc.Instance(a, b)
		plan, err := ucq.NewPlan(u, inst, &ucq.PlanOptions{ForceNaive: true})
		if err != nil {
			log.Fatal(err)
		}
		answers := plan.Materialize()
		got := enc.DecodeProduct(answers, n)
		viaUCQ := time.Since(start)

		status := "MATCH"
		if !got.Equal(want) {
			status = "MISMATCH"
		}
		fmt.Printf("n=%3d: |A·B|=%5d ones, union answers=%6d, direct=%8v, via UCQ=%8v  [%s]\n",
			n, want.Ones(), answers.Len(), direct.Round(time.Microsecond),
			viaUCQ.Round(time.Microsecond), status)
	}
	fmt.Println("\nEvery decoded product equals the direct Boolean product; the extra")
	fmt.Println("answers stay within the 2n² bystander bound of the Lemma 25 proof.")
}
