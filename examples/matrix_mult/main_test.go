package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestRunSmoke runs the reduction on small matrices; run returns an error
// when a decoded product mismatches the direct one.
func TestRunSmoke(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, []int{8, 16}); err != nil {
		t.Fatalf("run: %v\n%s", err, buf.String())
	}
	out := buf.String()
	if strings.Contains(out, "MISMATCH") {
		t.Errorf("output contains MISMATCH:\n%s", out)
	}
	if strings.Count(out, "[MATCH]") != 2 {
		t.Errorf("expected 2 [MATCH] lines:\n%s", out)
	}
}
