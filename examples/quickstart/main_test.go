package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestRunSmoke executes the full example and checks its load-bearing
// output: a tractable verdict, constant-delay evaluation, and the naive
// cross-check agreeing.
func TestRunSmoke(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf); err != nil {
		t.Fatalf("run: %v\n%s", err, buf.String())
	}
	out := buf.String()
	for _, want := range []string{
		"verdict: tractable",
		"evaluation mode: constant-delay",
		"answers, no duplicates",
		"naive evaluator agrees",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}
