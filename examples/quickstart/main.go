// Quickstart: parse the paper's Example 2, classify it, evaluate it with
// constant delay, and cross-check against the naive evaluator.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"repro"
)

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(w io.Writer) error {
	// Example 2 of the paper: Q1 alone is intractable (its free-path
	// x–z–y encodes matrix multiplication), but Q2 provides the join of
	// R1 and R2, making the union tractable.
	u := ucq.MustParse(`
		Q1(x,y,w) <- R1(x,z), R2(z,y), R3(y,w).
		Q2(x,y,w) <- R1(x,y), R2(y,w).
	`)

	res, err := ucq.Classify(u)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "query:\n%s\n\n", u)
	fmt.Fprintf(w, "verdict: %s — %s\n", res.Verdict, res.Reason)
	if res.Certificate != nil {
		fmt.Fprintf(w, "\ncertified union extensions:\n%s\n", res.Certificate)
	}

	// A small instance: R1 and R2 form two join layers, R3 fans out.
	inst := ucq.NewInstance()
	r1 := ucq.NewRelation("R1", 2)
	r2 := ucq.NewRelation("R2", 2)
	r3 := ucq.NewRelation("R3", 2)
	for i := int64(0); i < 5; i++ {
		r1.AppendInts(i, 10+i%3)
		r2.AppendInts(10+i%3, 20+i)
		r3.AppendInts(20+i, 30+i)
		r3.AppendInts(20+i, 31+i)
	}
	inst.AddRelation(r1)
	inst.AddRelation(r2)
	inst.AddRelation(r3)

	plan, err := ucq.NewPlan(u, inst, nil)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\nevaluation mode: %s\n", plan.Mode)

	it := plan.Iterator()
	fmt.Fprintln(w, "answers:")
	count := 0
	for {
		t, ok := it.Next()
		if !ok {
			break
		}
		count++
		fmt.Fprintf(w, "  %v\n", t)
	}
	fmt.Fprintf(w, "%d answers, no duplicates, constant delay.\n", count)

	// Cross-check against the naive evaluator.
	naive, err := ucq.NewPlan(u, inst, &ucq.PlanOptions{ForceNaive: true})
	if err != nil {
		return err
	}
	if naive.Count() != count {
		return fmt.Errorf("MISMATCH: naive evaluator found %d answers, constant-delay found %d", naive.Count(), count)
	}
	fmt.Fprintln(w, "naive evaluator agrees. ✓")
	return nil
}
