// clique_detection runs the paper's clique-based lower-bound reductions
// forward: triangle detection through Example 18's union of intractable
// CQs, and 4-clique detection through Example 22's bypass gadget
// (Figure 3) — each checked against a direct graph algorithm.
//
// Run with: go run ./examples/clique_detection
package main

import (
	"fmt"
	"log"
	"time"

	"repro"
	"repro/internal/graph"
	"repro/internal/reduction"
)

func main() {
	triangles()
	fmt.Println()
	fourCliques()
}

func triangles() {
	fmt.Println("Triangle detection via Example 18 (hyperclique hypothesis)")
	u := reduction.Example18Query()
	res, err := ucq.Classify(u)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  union verdict: %s — %s\n", res.Verdict, res.Reason)

	for i, n := range []int{64, 128, 256} {
		g := graph.ErdosRenyi(n, 2.5/float64(n), int64(i+1))
		if i == 1 {
			graph.PlantClique(g, 3, 9)
		}
		start := time.Now()
		direct := g.HasTriangle()
		directTime := time.Since(start)

		start = time.Now()
		inst := reduction.Example18Instance(g)
		plan, err := ucq.NewPlan(u, inst, &ucq.PlanOptions{ForceNaive: true})
		if err != nil {
			log.Fatal(err)
		}
		pairs := reduction.Example18DecodeTriangles(plan.Materialize())
		ucqTime := time.Since(start)

		status := "MATCH"
		if (len(pairs) > 0) != direct {
			status = "MISMATCH"
		}
		fmt.Printf("  n=%3d m=%4d: direct=%v (%v), via UCQ=%v (%v)  [%s]\n",
			n, g.M(), direct, directTime.Round(time.Microsecond),
			len(pairs) > 0, ucqTime.Round(time.Microsecond), status)
	}
}

func fourCliques() {
	fmt.Println("4-clique detection via Example 22 (4-clique hypothesis, Figure 3)")
	u := reduction.Example22Query()
	res, err := ucq.Classify(u)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  union verdict: %s — %s\n", res.Verdict, res.Reason)

	for i, n := range []int{16, 24, 32} {
		g := graph.ErdosRenyi(n, 0.3, int64(i+7))
		if i%2 == 0 {
			graph.PlantClique(g, 4, int64(i))
		}
		start := time.Now()
		direct := g.HasFourClique()
		directTime := time.Since(start)

		start = time.Now()
		inst, tris := reduction.Example22Instance(g)
		plan, err := ucq.NewPlan(u, inst, &ucq.PlanOptions{ForceNaive: true})
		if err != nil {
			log.Fatal(err)
		}
		found := reduction.Example22HasFourClique(g, plan.Materialize())
		ucqTime := time.Since(start)

		status := "MATCH"
		if found != direct {
			status = "MISMATCH"
		}
		fmt.Printf("  n=%2d triangles=%4d: direct=%v (%v), via UCQ=%v (%v)  [%s]\n",
			n, tris, direct, directTime.Round(time.Microsecond),
			found, ucqTime.Round(time.Microsecond), status)
	}
}
