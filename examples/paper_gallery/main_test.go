package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestRunSmoke classifies the full gallery; run returns an error when any
// example disagrees with the paper, so a pass pins classifier coverage.
func TestRunSmoke(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf); err != nil {
		t.Fatalf("run: %v\n%s", err, buf.String())
	}
	out := buf.String()
	if strings.Contains(out, "DISAGREES") {
		t.Errorf("gallery output contains DISAGREES:\n%s", out)
	}
	if !strings.Contains(out, "examples consistent with the paper") {
		t.Errorf("summary line missing:\n%s", out)
	}
}
