// paper_gallery classifies every worked example of the paper and prints
// the verdict table — the interactive version of experiment E9.
//
// Run with: go run ./examples/paper_gallery
package main

import (
	"fmt"
	"io"
	"log"
	"os"
	"strings"

	"repro"
	"repro/internal/paper"
)

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func run(w io.Writer) error {
	fmt.Fprintln(w, "Classification of every worked example in Carmeli & Kröll (PODS'19)")
	fmt.Fprintln(w, strings.Repeat("=", 78))
	agreements := 0
	for _, ex := range paper.Gallery() {
		u := ex.Query()
		res, err := ucq.Classify(u)
		if err != nil {
			return fmt.Errorf("%s: %v", ex.Name, err)
		}
		agree := false
		switch ex.Coverage {
		case paper.GeneralTheorem:
			agree = res.Verdict.String() == ex.Verdict
		default:
			// Ad-hoc and open cases: the honest classifier verdict is
			// Unknown (the paper's general theorems do not cover them).
			agree = res.Verdict == ucq.Unknown
		}
		if agree {
			agreements++
		}
		fmt.Fprintf(w, "\n%s (%s)\n", ex.Ref, ex.Name)
		for _, line := range strings.Split(u.String(), "\n") {
			fmt.Fprintf(w, "    %s\n", line)
		}
		hyp := ""
		if len(ex.Hypotheses) > 0 {
			hyp = " assuming " + strings.Join(ex.Hypotheses, ", ")
		}
		fmt.Fprintf(w, "  paper:      %s%s [%s]\n", ex.Verdict, hyp, ex.Coverage)
		fmt.Fprintf(w, "  classifier: %s — %s\n", res.Verdict, res.Reason)
		status := "AGREES"
		if !agree {
			status = "DISAGREES"
		}
		fmt.Fprintf(w, "  %s\n", status)
	}
	fmt.Fprintf(w, "\n%s\n%d/%d examples consistent with the paper.\n",
		strings.Repeat("=", 78), agreements, len(paper.Gallery()))
	if agreements != len(paper.Gallery()) {
		return fmt.Errorf("%d/%d gallery examples disagree with the paper",
			len(paper.Gallery())-agreements, len(paper.Gallery()))
	}
	return nil
}
