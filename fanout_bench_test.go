// BenchmarkE19DistributedFanout lives in the external test package so it
// can drive repro/internal/server end to end — the internal bench file
// (bench_test.go) is imported BY the server package's dependency chain and
// would cycle.
package ucq_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/cluster"
	"repro/internal/server"
)

// fanoutRelations builds a skewed R(x,z) ⋈ S(z,y) instance: one heavy
// z-key carries heavyR·heavyS answers, the remaining lightZ keys carry
// lightR·lightS each. The root loop ranges over R rows, so the heavy key
// concentrates output on a contiguous root-row run — the regime where a
// static even split leaves workers idle and the marker-level re-split has
// to earn its keep.
func fanoutRelations(heavyR, heavyS, lightZ, lightR, lightS int) (map[string][][]int64, int) {
	rel := map[string][][]int64{}
	x := int64(0)
	for i := 0; i < heavyR; i++ {
		rel["R"] = append(rel["R"], []int64{x, 0})
		x++
	}
	for j := 0; j < heavyS; j++ {
		rel["S"] = append(rel["S"], []int64{0, int64(j)})
	}
	for z := 1; z <= lightZ; z++ {
		for i := 0; i < lightR; i++ {
			rel["R"] = append(rel["R"], []int64{x, int64(z)})
			x++
		}
		for j := 0; j < lightS; j++ {
			rel["S"] = append(rel["S"], []int64{int64(z), int64(z*1000 + j)})
		}
	}
	return rel, heavyR*heavyS + lightZ*lightR*lightS
}

// BenchmarkE19DistributedFanout: the coordinator's root-range scatter over
// 1, 2 and 4 in-process workers on a skewed join, measured end to end —
// HTTP in, merged NDJSON out. workers=1 is the degenerate cluster (all
// scatter overhead, no parallelism) and anchors the fan-out cost; the
// 2- and 4-worker runs show the distributed speedup net of marker
// bookkeeping and loopback transport. Core-count-sensitive: the workers
// share this process's scheduler, so benchgate skips it across machines
// with different GOMAXPROCS (the ^BenchmarkE1[2-9] rule).
func BenchmarkE19DistributedFanout(b *testing.B) {
	const query = "Q(x,z,y) <- R(x,z), S(z,y)."
	rels, want := fanoutRelations(1000, 40, 50, 20, 5)
	body, err := json.Marshal(map[string]any{"relations": rels})
	if err != nil {
		b.Fatal(err)
	}
	qbody, err := json.Marshal(map[string]any{"query": query})
	if err != nil {
		b.Fatal(err)
	}

	for _, nw := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", nw), func(b *testing.B) {
			var workers []string
			for i := 0; i < nw; i++ {
				ws := httptest.NewServer(server.New(server.Config{}).Handler())
				defer ws.Close()
				workers = append(workers, ws.URL)
			}
			coord, err := server.NewCoordinator(server.Config{
				Cluster: cluster.Config{Workers: workers, MarkerEvery: 256},
			})
			if err != nil {
				b.Fatal(err)
			}
			cs := httptest.NewServer(coord.Handler())
			defer cs.Close()

			req, err := http.NewRequest(http.MethodPut, cs.URL+"/datasets/skew", bytes.NewReader(body))
			if err != nil {
				b.Fatal(err)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				b.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				b.Fatalf("PUT dataset: status %d", resp.StatusCode)
			}

			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				resp, err := http.Post(cs.URL+"/datasets/skew/query", "application/json", bytes.NewReader(qbody))
				if err != nil {
					b.Fatal(err)
				}
				got := 0
				var trailer []byte
				sc := bufio.NewScanner(resp.Body)
				sc.Buffer(make([]byte, 1<<16), 1<<22)
				for sc.Scan() {
					line := sc.Bytes()
					if len(line) > 0 && line[0] == '[' {
						got++
						continue
					}
					trailer = append(trailer[:0], line...)
				}
				if err := sc.Err(); err != nil {
					b.Fatal(err)
				}
				resp.Body.Close()
				if got != want {
					b.Fatalf("answers = %d, want %d (trailer %s)", got, want, trailer)
				}
			}
			b.ReportMetric(float64(want), "answers/op")
		})
	}
}
