package ucq

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"
)

// deltaJoinQuery is the two-atom join used across the delta tests. The
// full head keeps it free-connex (projecting y away would make it the
// classic intractable matrix-multiplication query).
const deltaJoinQuery = `Q(x,y,z) <- R(x,y), S(y,z).`

// deltaJoinInstance builds a small R ⋈ S instance.
func deltaJoinInstance() *Instance {
	inst := NewInstance()
	r := NewRelation("R", 2)
	r.AppendInts(1, 10)
	r.AppendInts(2, 20)
	s := NewRelation("S", 2)
	s.AppendInts(10, 100)
	s.AppendInts(20, 200)
	inst.AddRelation(r)
	inst.AddRelation(s)
	return inst
}

// answerKeys drains the plan's full answer set into a string set.
func answerKeys(t *testing.T, p *Plan) map[string]bool {
	t.Helper()
	out := make(map[string]bool)
	for tup := range p.All(context.Background()) {
		k := fmt.Sprint(tup)
		if out[k] {
			t.Fatalf("duplicate answer %s in full enumeration", k)
		}
		out[k] = true
	}
	return out
}

// setDiff returns the keys of b not in a.
func setDiff(a, b map[string]bool) map[string]bool {
	out := make(map[string]bool)
	for k := range b {
		if !a[k] {
			out[k] = true
		}
	}
	return out
}

// collectDelta drains DeltaAnswersContext into a string set, failing on
// duplicates.
func collectDelta(t *testing.T, p *Plan, from, to Version) map[string]bool {
	t.Helper()
	out := make(map[string]bool)
	err := p.DeltaAnswersContext(context.Background(), from, to, func(tup Tuple) bool {
		k := fmt.Sprint(tup)
		if out[k] {
			t.Fatalf("delta answer %s emitted twice", k)
		}
		out[k] = true
		return true
	})
	if err != nil {
		t.Fatalf("DeltaAnswersContext(%d, %d): %v", from, to, err)
	}
	return out
}

// sameSet fails the test unless got and want hold the same keys.
func sameSet(t *testing.T, label string, got, want map[string]bool) {
	t.Helper()
	for k := range want {
		if !got[k] {
			t.Errorf("%s: missing %s", label, k)
		}
	}
	for k := range got {
		if !want[k] {
			t.Errorf("%s: unexpected %s", label, k)
		}
	}
}

func deltaModes() map[string]*PlanOptions {
	return map[string]*PlanOptions{
		"certified": nil,
		"naive":     {ForceNaive: true},
	}
}

func TestDeltaAnswersBasic(t *testing.T) {
	for mode, opts := range deltaModes() {
		t.Run(mode, func(t *testing.T) {
			cat := NewCatalog()
			ds, err := cat.Register("d", deltaJoinInstance())
			if err != nil {
				t.Fatal(err)
			}
			pq, err := Prepare(MustParse(deltaJoinQuery), opts)
			if err != nil {
				t.Fatal(err)
			}
			if mode == "certified" && pq.Mode != ConstantDelay {
				t.Fatal("join should certify constant-delay")
			}
			p1, err := pq.BindDataset(ds)
			if err != nil {
				t.Fatal(err)
			}
			oldAnswers := answerKeys(t, p1)

			// One appended R row joins the existing S, one new S row joins
			// the existing R, and one appended pair joins only each other.
			if _, err := ds.AppendRows(map[string][][]int64{
				"R": {{3, 20}, {4, 40}},
				"S": {{40, 400}},
			}); err != nil {
				t.Fatal(err)
			}
			pHead, err := pq.BindDataset(ds)
			if err != nil {
				t.Fatal(err)
			}
			newAnswers := answerKeys(t, pHead)

			got := collectDelta(t, p1, 1, 2)
			sameSet(t, "delta(1,2)", got, setDiff(oldAnswers, newAnswers))
			if len(got) == 0 {
				t.Fatal("append should have created answers")
			}

			// An append creating no answers yields an empty delta.
			if _, err := ds.AppendRows(map[string][][]int64{"R": {{9, 999}}}); err != nil {
				t.Fatal(err)
			}
			p2, err := pq.BindDataset(ds)
			if err != nil {
				t.Fatal(err)
			}
			if d := collectDelta(t, p2, 2, 3); len(d) != 0 {
				t.Errorf("no-op append produced delta %v", d)
			}

			// Empty window is a no-op.
			if d := collectDelta(t, p1, 1, 1); len(d) != 0 {
				t.Errorf("empty window produced delta %v", d)
			}
		})
	}
}

func TestDeltaAnswersSelfJoin(t *testing.T) {
	// R self-joined: the overlay rewriting cannot see new⋈old pairs within
	// R, so the implementation must fall back to full evaluation — the
	// answer (1,3) pairs the old (1,2) with the appended (2,3).
	for mode, opts := range deltaModes() {
		t.Run(mode, func(t *testing.T) {
			cat := NewCatalog()
			inst := NewInstance()
			r := NewRelation("R", 2)
			r.AppendInts(1, 2)
			inst.AddRelation(r)
			ds, err := cat.Register("d", inst)
			if err != nil {
				t.Fatal(err)
			}
			pq, err := Prepare(MustParse(`Q(x,y,z) <- R(x,y), R(y,z).`), opts)
			if err != nil {
				t.Fatal(err)
			}
			if mode == "certified" && pq.Mode != ConstantDelay {
				t.Fatal("full-head self-join should certify constant-delay")
			}
			p1, err := pq.BindDataset(ds)
			if err != nil {
				t.Fatal(err)
			}
			oldAnswers := answerKeys(t, p1)
			if _, err := ds.AppendRows(map[string][][]int64{"R": {{2, 3}}}); err != nil {
				t.Fatal(err)
			}
			pHead, err := pq.BindDataset(ds)
			if err != nil {
				t.Fatal(err)
			}
			got := collectDelta(t, p1, 1, 2)
			sameSet(t, "self-join delta", got, setDiff(oldAnswers, answerKeys(t, pHead)))
			if !got[fmt.Sprint(Tuple{V(1), V(2), V(3)})] {
				t.Errorf("delta %v should contain the new⋈old answer (1,2,3)", got)
			}
		})
	}
}

func TestDeltaAnswersRandomized(t *testing.T) {
	const appends = 8
	rng := rand.New(rand.NewSource(7))
	for mode, opts := range deltaModes() {
		t.Run(mode, func(t *testing.T) {
			cat := NewCatalog()
			ds, err := cat.Register("d", deltaJoinInstance())
			if err != nil {
				t.Fatal(err)
			}
			pq, err := Prepare(MustParse(deltaJoinQuery), opts)
			if err != nil {
				t.Fatal(err)
			}
			plan, err := pq.BindDataset(ds)
			if err != nil {
				t.Fatal(err)
			}
			live := answerKeys(t, plan)
			cur := plan.DatasetVersion()
			for i := 0; i < appends; i++ {
				rows := map[string][][]int64{}
				for _, rel := range []string{"R", "S"} {
					n := rng.Intn(4)
					for j := 0; j < n; j++ {
						rows[rel] = append(rows[rel], []int64{rng.Int63n(30), rng.Int63n(30)})
					}
				}
				v, err := ds.AppendRows(rows)
				if err != nil {
					t.Fatal(err)
				}
				for k := range collectDelta(t, plan, cur, v) {
					if live[k] {
						t.Fatalf("append %d: delta re-emitted %s", i, k)
					}
					live[k] = true
				}
				plan, err = pq.BindDataset(ds)
				if err != nil {
					t.Fatal(err)
				}
				cur = v
			}
			head, err := pq.BindDataset(ds)
			if err != nil {
				t.Fatal(err)
			}
			sameSet(t, "live set after appends", live, answerKeys(t, head))
		})
	}
}

func TestDeltaAnswersResume(t *testing.T) {
	// A plan bound at one version computes deltas for windows starting at
	// another, as long as the log covers the window start: the old state is
	// rebound internally from the logged snapshot.
	cat := NewCatalog()
	ds, err := cat.Register("d", deltaJoinInstance())
	if err != nil {
		t.Fatal(err)
	}
	pq, err := Prepare(MustParse(deltaJoinQuery), nil)
	if err != nil {
		t.Fatal(err)
	}
	p1, err := pq.BindDataset(ds)
	if err != nil {
		t.Fatal(err)
	}
	v1Answers := answerKeys(t, p1)
	if _, err := ds.AppendRows(map[string][][]int64{"R": {{5, 20}}}); err != nil {
		t.Fatal(err)
	}
	p2, err := pq.BindDataset(ds)
	if err != nil {
		t.Fatal(err)
	}
	v2Answers := answerKeys(t, p2)
	if _, err := ds.AppendRows(map[string][][]int64{"S": {{20, 777}}}); err != nil {
		t.Fatal(err)
	}
	p3, err := pq.BindDataset(ds)
	if err != nil {
		t.Fatal(err)
	}
	v3Answers := answerKeys(t, p3)

	// Head-bound plan, window (1, 3]: internal rebind at the logged v1.
	sameSet(t, "delta(1,3) from head plan", collectDelta(t, p3, 1, 3), setDiff(v1Answers, v3Answers))
	// Stale plan, window (2, 3]: internal rebind at the logged v2.
	sameSet(t, "delta(2,3) from v1 plan", collectDelta(t, p1, 2, 3), setDiff(v2Answers, v3Answers))
}

func TestDeltaAnswersUnavailable(t *testing.T) {
	// Compaction past the log cap and Replace both invalidate old windows.
	cat := NewCatalogConfig(CatalogConfig{AppendLogSize: 2})
	ds, err := cat.Register("d", deltaJoinInstance())
	if err != nil {
		t.Fatal(err)
	}
	pq, err := Prepare(MustParse(deltaJoinQuery), nil)
	if err != nil {
		t.Fatal(err)
	}
	p1, err := pq.BindDataset(ds)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ds.AppendRows(map[string][][]int64{"R": {{50, 20}}}); err != nil {
		t.Fatal(err)
	}
	p2, err := pq.BindDataset(ds)
	if err != nil {
		t.Fatal(err)
	}
	v2Answers := answerKeys(t, p2)
	for i := 0; i < 2; i++ {
		if _, err := ds.AppendRows(map[string][][]int64{"R": {{int64(60 + i), 20}}}); err != nil {
			t.Fatal(err)
		}
	}
	// Log cap 2 retains windows starting at v2; (1, 4] is compacted away.
	if err := p1.DeltaAnswersContext(context.Background(), 1, 4, func(Tuple) bool { return true }); !errors.Is(err, ErrDeltaUnavailable) {
		t.Fatalf("compacted window: err = %v, want ErrDeltaUnavailable", err)
	}
	// The retained window still works, even from the stale v1 plan.
	p4, err := pq.BindDataset(ds)
	if err != nil {
		t.Fatal(err)
	}
	sameSet(t, "retained window (2,4]",
		collectDelta(t, p1, 2, 4),
		setDiff(v2Answers, answerKeys(t, p4)))

	if _, err := ds.Replace(deltaJoinInstance()); err != nil {
		t.Fatal(err)
	}
	if _, err := ds.AppendRows(map[string][][]int64{"R": {{6, 20}}}); err != nil {
		t.Fatal(err)
	}
	if err := p4.DeltaAnswersContext(context.Background(), 4, 6, func(Tuple) bool { return true }); !errors.Is(err, ErrDeltaUnavailable) {
		t.Fatalf("window across a Replace: err = %v, want ErrDeltaUnavailable", err)
	}

	// Inline-instance binds have no dataset log at all.
	pInline, err := pq.Bind(deltaJoinInstance())
	if err != nil {
		t.Fatal(err)
	}
	if err := pInline.DeltaAnswersContext(context.Background(), 0, 1, func(Tuple) bool { return true }); !errors.Is(err, ErrDeltaUnavailable) {
		t.Fatalf("inline bind: err = %v, want ErrDeltaUnavailable", err)
	}
}

func TestCatalogSubscribeNotify(t *testing.T) {
	cat := NewCatalog()
	ds, err := cat.Register("d", deltaJoinInstance())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cat.Subscribe("missing"); err == nil {
		t.Fatal("subscribing to a missing dataset should fail")
	}
	sub, err := cat.Subscribe("d")
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	if _, err := ds.AppendRows(map[string][][]int64{"R": {{7, 20}}}); err != nil {
		t.Fatal(err)
	}
	select {
	case v := <-sub.Updates():
		if v != 2 {
			t.Errorf("wake-up version = %d, want 2", v)
		}
	default:
		t.Fatal("append did not wake the subscription")
	}
	// Coalescing: two appends with no consumption leave one pending signal.
	for i := 0; i < 2; i++ {
		if _, err := ds.AppendRows(map[string][][]int64{"R": {{int64(30 + i), 20}}}); err != nil {
			t.Fatal(err)
		}
	}
	<-sub.Updates()
	select {
	case v, ok := <-sub.Updates():
		t.Fatalf("expected coalesced wake-ups, got extra (%d, %v)", v, ok)
	default:
	}
	// Close is idempotent and closes the channel.
	sub.Close()
	sub.Close()
	if _, ok := <-sub.Updates(); ok {
		t.Error("Updates should be closed after Close")
	}
	// Notify after close must not panic.
	if _, err := ds.AppendRows(map[string][][]int64{"R": {{8, 20}}}); err != nil {
		t.Fatal(err)
	}
}

func TestAnswerSetSpills(t *testing.T) {
	set := NewAnswerSet(t.TempDir(), 2, 4)
	defer set.Close()
	for i := 0; i < 10; i++ {
		fresh, err := set.Insert(Tuple{V(int64(i)), V(int64(i))})
		if err != nil || !fresh {
			t.Fatalf("insert %d: fresh=%v err=%v", i, fresh, err)
		}
	}
	if !set.Spilled() {
		t.Error("set should have spilled past the budget")
	}
	if set.Len() != 10 {
		t.Errorf("Len = %d, want 10", set.Len())
	}
	for i := 0; i < 10; i++ {
		if fresh, err := set.Insert(Tuple{V(int64(i)), V(int64(i))}); err != nil || fresh {
			t.Fatalf("re-insert %d: fresh=%v err=%v, want stale", i, fresh, err)
		}
	}
}
