package ucq_test

// Cross-encoding equivalence arm of the randomized harness: over seeded
// random UCQs and instances, one real HTTP server must stream the
// identical answer set — trailer included — whether the client negotiated
// NDJSON or the binary columnar frames, with both sides decoded by the
// same ucq.DecodeAnswerStream helper clients use. Black-box package: the
// server imports the root package, so this arm cannot live inside it.

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"

	ucq "repro"
	"repro/internal/server"
	"repro/internal/workload"
)

// instanceRows renders an instance as the request wire shape.
func instanceRows(inst *ucq.Instance) map[string][][]int64 {
	out := map[string][][]int64{}
	for _, name := range inst.Names() {
		rel := inst.Relation(name)
		rows := make([][]int64, 0, rel.Len())
		for _, t := range rel.Rows() {
			row := make([]int64, len(t))
			for i, v := range t {
				row[i] = v.Payload()
			}
			rows = append(rows, row)
		}
		out[name] = rows
	}
	return out
}

// streamOnce runs one query against the server with the given Accept and
// returns the canonically sorted answers, the trailer, and the response
// Content-Type.
func streamOnce(t *testing.T, url, accept, query string, rels map[string][][]int64) ([]string, *ucq.StreamTrailer, string) {
	t.Helper()
	body, err := json.Marshal(map[string]any{"query": query, "relations": rels})
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url+"/query", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Accept", accept)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d for Accept %q", resp.StatusCode, accept)
	}
	var rows []string
	tr, err := ucq.DecodeAnswerStream(resp.Body, resp.Header.Get("Content-Type"), func(tup ucq.Tuple) bool {
		parts := make([]string, len(tup))
		for i, v := range tup {
			parts[i] = v.String()
		}
		rows = append(rows, strings.Join(parts, ","))
		return true
	})
	if err != nil {
		t.Fatalf("decoding %q stream: %v", accept, err)
	}
	if tr == nil {
		t.Fatalf("%q stream ended without a trailer", accept)
	}
	sort.Strings(rows)
	return rows, tr, resp.Header.Get("Content-Type")
}

// TestCrossEncodingEquivalence: for every random case, the binary and
// NDJSON streams of the same query against the same server must decode to
// identical answer sets and agreeing trailers.
func TestCrossEncodingEquivalence(t *testing.T) {
	const cases = 60
	s := server.New(server.Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	rng := rand.New(rand.NewSource(20260808))
	for i := 0; i < cases; i++ {
		u := workload.RandomUCQ(rng)
		rows := 8 + rng.Intn(20)
		width := int64(2 + rng.Intn(5))
		inst := workload.RandomForQuery(u, rows, width, rng.Int63())
		rels := instanceRows(inst)
		query := u.String()

		ndRows, ndTr, ndCT := streamOnce(t, ts.URL, ucq.MediaTypeNDJSON, query, rels)
		binRows, binTr, binCT := streamOnce(t, ts.URL, ucq.MediaTypeBinary, query, rels)

		if ndCT != ucq.MediaTypeNDJSON {
			t.Fatalf("case %d: NDJSON arm got Content-Type %q", i, ndCT)
		}
		if binCT != ucq.MediaTypeBinary {
			t.Fatalf("case %d: binary arm got Content-Type %q", i, binCT)
		}
		if strings.Join(ndRows, "\n") != strings.Join(binRows, "\n") {
			t.Fatalf("case %d: encodings disagree on\n%s\nndjson (%d):\n%s\nbinary (%d):\n%s",
				i, query, len(ndRows), strings.Join(ndRows, "\n"), len(binRows), strings.Join(binRows, "\n"))
		}
		if ndTr.Count != binTr.Count || ndTr.Done != binTr.Done || ndTr.Mode != binTr.Mode {
			t.Fatalf("case %d: trailers disagree: ndjson %+v vs binary %+v", i, ndTr, binTr)
		}
		if ndTr.Count != len(ndRows) {
			t.Fatalf("case %d: trailer count %d but %d answers decoded", i, ndTr.Count, len(ndRows))
		}
	}
	// Size check on a stream big enough that the fixed header/trailer
	// frames don't dominate (the random cases above are tiny — a dozen
	// answers pay ~40 bytes of frame overhead): on real volume the
	// columnar encoding must be the smaller stream.
	big := map[string][][]int64{}
	for i := int64(0); i < 200; i++ {
		big["R"] = append(big["R"], []int64{i, i % 20})
	}
	for z := int64(0); z < 20; z++ {
		for j := int64(0); j < 10; j++ {
			big["S"] = append(big["S"], []int64{z, z*1000 + j})
		}
	}
	const bigJoin = "Q(x,z,y) <- R(x,z), S(z,y)."
	before := s.StatsSnapshot().Wire
	ndRows, _, _ := streamOnce(t, ts.URL, ucq.MediaTypeNDJSON, bigJoin, big)
	mid := s.StatsSnapshot().Wire
	binRows, _, _ := streamOnce(t, ts.URL, ucq.MediaTypeBinary, bigJoin, big)
	after := s.StatsSnapshot().Wire
	if strings.Join(ndRows, "\n") != strings.Join(binRows, "\n") {
		t.Fatalf("big case: encodings disagree (%d vs %d answers)", len(ndRows), len(binRows))
	}
	ndBytes := mid.NDJSONBytes - before.NDJSONBytes
	binBytes := after.BinaryBytes - mid.BinaryBytes
	if binBytes >= ndBytes {
		t.Errorf("big case: binary stream %d bytes ≥ ndjson stream %d bytes for %d answers",
			binBytes, ndBytes, len(ndRows))
	}
	t.Logf("cross-encoding equivalence: %d random cases; big case %d answers, %d binary vs %d ndjson bytes",
		cases, len(ndRows), binBytes, ndBytes)
}
