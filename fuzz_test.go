package ucq

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParse fuzzes the query parser: it must never panic, and any query it
// accepts must survive a render/reparse round trip — the normalization the
// server's plan-cache key depends on.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"Q(x,y) <- R(x,z), S(z,y).",
		"Q1(x,y,w) <- R1(x,z), R2(z,y), R3(y,w).\nQ2(x,y,w) :- R1(x,y), R2(y,w)",
		"Q() <- R(x)",
		"# comment\nQ(x) <- R(x). % more\n// and more\nQ(y) <- S(y)",
		"Q(x, x) <- R(x, x)",
		"Q(",
		"Q(x) <- ",
		"Q(x) <- R()",
		"Q(x) R(x)",
		"Q(x)<-R(x).Q(y)<-S(y).",
		strings.Repeat("Q(x) <- R(x).\n", 20),
		"Q'(x') <- R_1(x', _y)",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		u, err := Parse(src)
		if err != nil {
			return
		}
		if err := u.Validate(); err != nil {
			t.Fatalf("Parse accepted an invalid query: %v\n%q", err, src)
		}
		rendered := u.String()
		re, err := Parse(rendered)
		if err != nil {
			t.Fatalf("rendered query does not reparse: %v\n%q -> %q", err, src, rendered)
		}
		if re.String() != rendered {
			t.Fatalf("round trip is not a fixpoint:\n%q\n%q", rendered, re.String())
		}
	})
}

// FuzzReadRelationCSV fuzzes the CSV instance reader: no panics, and any
// relation it accepts must survive a write/reread round trip (all parsed
// values are untagged, so WriteRelationCSV emits plain integers back).
func FuzzReadRelationCSV(f *testing.F) {
	seeds := []string{
		"1,2\n4,2\n",
		"1 2\t3; 4\n# comment\n\n5,6,7,8\n",
		"-9223372036854775808,9223372036854775807\n",
		"1,notanumber\n",
		"1,2\n3\n",
		"# only comments\n",
		"",
		"0\n",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		rel, err := ReadRelationCSV(bytes.NewReader(data), "R")
		if err != nil {
			return
		}
		if rel.Len() == 0 || rel.Arity() == 0 {
			t.Fatalf("accepted relation with %d rows, arity %d", rel.Len(), rel.Arity())
		}
		var buf bytes.Buffer
		if err := WriteRelationCSV(&buf, rel); err != nil {
			t.Fatalf("writing accepted relation: %v", err)
		}
		re, err := ReadRelationCSV(bytes.NewReader(buf.Bytes()), "R")
		if err != nil {
			t.Fatalf("rewritten relation does not reread: %v\n%q", err, buf.String())
		}
		if re.Len() != rel.Len() || re.Arity() != rel.Arity() {
			t.Fatalf("round trip changed shape: %dx%d -> %dx%d",
				rel.Len(), rel.Arity(), re.Len(), re.Arity())
		}
		want := rel.SortedRows()
		got := re.SortedRows()
		for i := range want {
			if !want[i].Equal(got[i]) {
				t.Fatalf("round trip changed row %d: %v -> %v", i, want[i], got[i])
			}
		}
	})
}
