package ucq

import (
	"testing"
	"time"

	"repro/internal/enumeration"
	"repro/internal/workload"
)

// TestConstantDelayIndependentOfInstanceSize is the delay-regression
// check: on the paper's tractable Example 2 union, the typical
// inter-answer delay of the certified pipeline must not scale with the
// instance. We measure P95 inter-answer delay via MeasureDelays at two
// instance sizes (8x apart in width) and require the large instance's
// delay to stay within a generous constant factor of the small one's —
// a ratio check with retries rather than an absolute wall-clock bound,
// so scheduler noise cannot flake it. Preprocessing is allowed to grow
// (it is linear by Theorem 12); only the delay must stay flat.
func TestConstantDelayIndependentOfInstanceSize(t *testing.T) {
	u := MustParse(`
		Q1(x,y,w) <- R1(x,z), R2(z,y), R3(y,w).
		Q2(x,y,w) <- R1(x,y), R2(y,w).
	`)
	pq, err := Prepare(u, nil)
	if err != nil {
		t.Fatal(err)
	}
	if pq.Mode != ConstantDelay {
		t.Fatalf("Example 2 union must certify constant-delay, got %s", pq.Mode)
	}

	measure := func(width int) enumeration.DelayStats {
		inst := workload.Example2Instance(width, 3, 7)
		return enumeration.MeasureDelays(func() enumeration.Iterator {
			plan, err := pq.Bind(inst)
			if err != nil {
				t.Fatal(err)
			}
			return plan.Iterator()
		})
	}

	// The generous bound: P95 delay may grow by at most this factor over
	// an 8x instance-size increase. A linear-in-instance delay would show
	// up as ~8x on its own and fail even under heavy noise.
	const maxRatio = 30.0
	const floor = 200 * time.Nanosecond // quantization floor for tiny delays
	const attempts = 4

	var lastSmall, lastLarge enumeration.DelayStats
	for attempt := 0; attempt < attempts; attempt++ {
		small := measure(100)
		large := measure(800)
		lastSmall, lastLarge = small, large
		if small.Count < 1000 || large.Count < 8*small.Count/2 {
			t.Fatalf("workload too small to measure: %d and %d answers", small.Count, large.Count)
		}
		smallP95 := small.P95
		if smallP95 < floor {
			smallP95 = floor
		}
		if float64(large.P95) <= maxRatio*float64(smallP95) {
			t.Logf("delay regression ok (attempt %d): small P95=%v (n=%d), large P95=%v (n=%d)",
				attempt, small.P95, small.Count, large.P95, large.Count)
			return
		}
		t.Logf("attempt %d: large P95=%v > %.0fx small P95=%v; retrying",
			attempt, large.P95, maxRatio, smallP95)
	}
	t.Errorf("P95 inter-answer delay scaled with instance size on every attempt: small %+v, large %+v",
		lastSmall, lastLarge)
}
