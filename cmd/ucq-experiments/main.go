// ucq-experiments regenerates EXPERIMENTS.md: it runs every experiment of
// the reproduction (constant-delay measurements, forward lower-bound
// reductions, the classification gallery, and the structural figures) and
// renders the results as markdown.
//
// Usage:
//
//	ucq-experiments [-quick] [-o EXPERIMENTS.md]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	quick := flag.Bool("quick", false, "run reduced workload sizes")
	out := flag.String("o", "", "write the markdown to a file instead of stdout")
	flag.Parse()

	cfg := experiments.Config{Quick: *quick}
	tables := experiments.RunAll(cfg)

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ucq-experiments:", err)
			os.Exit(2)
		}
		defer f.Close()
		w = f
	}
	if err := experiments.RenderMarkdown(w, tables, cfg); err != nil {
		fmt.Fprintln(os.Stderr, "ucq-experiments:", err)
		os.Exit(2)
	}
}
