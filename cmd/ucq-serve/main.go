// ucq-serve is the long-lived streaming UCQ evaluation service: it serves
// ucq-run-style requests over HTTP, amortizing the Theorem 12 certificate
// search across requests through a prepared-plan cache keyed on
// (normalized query, schema), and streams answers as NDJSON while
// enumeration is still running.
//
// Usage:
//
//	ucq-serve [-addr :8454] [-cache 128] [-plan-cache-ttl 0] [-bind-cache 256]
//	          [-bind-cache-ttl 0] [-flush-every 256] [-max-body 67108864]
//	          [-data-dir ""] [-dedup-budget 0] [-spill-dir ""]
//	          [-role single|worker|coordinator] [-workers http://w1:8454,...]
//	          [-scatter-stall 30s] [-scatter-retries 4] [-scatter-backoff 50ms]
//	          [-scatter-marker 128] [-max-streams 2*GOMAXPROCS]
//	          [-queue-deadline 1s] [-max-subscriptions 64] [-append-log 32]
//
// Endpoints:
//
//	POST   /query                 evaluate a UCQ over the instance in the
//	                              request body and stream the answers as
//	                              NDJSON (final line is a trailer object
//	                              with the count, engine mode and cache
//	                              state)
//	PUT    /datasets/{name}       register or replace a named dataset from
//	                              JSON rows ({"append": true} appends with
//	                              a version bump instead)
//	GET    /datasets              list datasets with versions and row counts
//	DELETE /datasets/{name}       drop a dataset and its cached binds
//	POST   /datasets/{name}/query evaluate a UCQ against a registered
//	                              dataset; the per-instance preprocessing
//	                              is served from the versioned bind cache,
//	                              so repeated queries skip straight to
//	                              enumeration
//	POST   /datasets/{name}/count answer with the exact answer count only:
//	                              certified single-branch plans count from
//	                              the Theorem 12 counting pass without
//	                              enumerating (also available anywhere via
//	                              options.count_only)
//	GET    /datasets/{name}/subscribe
//	POST   /datasets/{name}/subscribe
//	                              live subscription: stream the dataset's
//	                              current answer set, then push exactly the
//	                              answers every later append adds
//	                              (incremental delta evaluation over the
//	                              append log), each batch ended by a
//	                              {"version": N} marker. from_version
//	                              resumes from a previous marker; slow
//	                              subscribers degrade to a resync marker +
//	                              full answer set, never unbounded memory
//	GET    /stats                 cache, bind-cache, dataset, delay,
//	                              cancellation, auto-decision and
//	                              subscription counters as JSON
//	GET    /healthz               liveness probe
//
// Execution is adaptive by default: when a request sets none of the
// parallel/batch/shards/workers options, the planner's cost model picks
// the strategy per bind from the bound instance; /stats reports the
// decision mix under decision_modes. Any explicit knob pins manual
// execution.
//
// Answer streams are NDJSON by default; a request whose Accept header
// names application/x-ucq-bin with the highest q-value gets the compact
// binary columnar frame encoding instead (see the README's "Wire
// protocol" section). Streaming requests are admission-controlled: at
// most -max-streams run concurrently, excess requests queue for up to
// -queue-deadline and are then shed with 429 + Retry-After; /stats
// reports the gate under "wire".
//
// Durability: -data-dir makes the dataset catalog persistent — every
// dataset write is journaled (snapshot + fsynced WAL) under the directory
// before the HTTP response acknowledges it, and a restarted server replays
// the journal, serving every dataset at the exact version its clients last
// saw. -dedup-budget N caps the in-memory dedup set of parallel and auto
// execution: a certified plan whose exact answer count exceeds N dedups
// through a disk-backed spill table (in -spill-dir, default the OS temp
// directory) instead of holding every distinct answer in memory. Both are
// single/worker-role features; a coordinator holds no datasets and refuses
// -data-dir.
//
// Cluster mode: -role coordinator -workers http://w1:8454,http://w2:8454
// starts a coordinator that replicates dataset writes to every worker and
// scatters dataset queries across them by root-row ranges, merging the
// worker streams dedup-free with bounded retries and straggler re-splits
// (see internal/cluster). Workers are plain servers (-role worker is an
// alias for the default single-node role; the scatter endpoint exists on
// every non-coordinator server). The scatter-* flags tune the fan-out.
//
// Cancellation is end to end: a client disconnect mid-stream cancels the
// request context, which stops the enumeration's work-stealing executor
// and frees its workers. SIGINT/SIGTERM triggers a graceful shutdown that
// cancels all in-flight streams the same way before the listener drains.
//
// Example:
//
//	curl -sN localhost:8454/query -d '{
//	  "query": "Q1(x,y,w) <- R1(x,z), R2(z,y), R3(y,w). Q2(x,y,w) <- R1(x,y), R2(y,w).",
//	  "relations": {"R1": [[1,2]], "R2": [[2,3]], "R3": [[3,5]]}
//	}'
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net"
	"net/http"
	"os/signal"
	"syscall"
	"time"

	ucq "repro"
	"repro/internal/cluster"
	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", ":8454", "listen address")
	cache := flag.Int("cache", server.DefaultCacheSize, "prepared-plan cache capacity (entries)")
	planTTL := flag.Duration("plan-cache-ttl", 0, "prepared-plan cache TTL (0 = never expire)")
	bindCache := flag.Int("bind-cache", ucq.DefaultBindCacheSize, "dataset bind cache capacity (entries)")
	bindTTL := flag.Duration("bind-cache-ttl", 0, "dataset bind cache TTL (0 = never expire)")
	flushEvery := flag.Int("flush-every", server.DefaultFlushEvery, "flush the response every N answers (first answer always flushes)")
	maxBody := flag.Int64("max-body", server.DefaultMaxBodyBytes, "maximum request body size in bytes")
	dataDir := flag.String("data-dir", "", "journal dataset writes under this directory and recover them on restart (empty = in-memory catalog)")
	dedupBudget := flag.Int64("dedup-budget", 0, "spill query dedup to disk past this many in-memory answers (0 = never spill)")
	spillDir := flag.String("spill-dir", "", "directory for spilled dedup tables (empty = OS temp dir)")
	role := flag.String("role", "single", `process role: "single" or "worker" (serve locally, incl. the scatter endpoint) or "coordinator" (fan dataset work out over -workers)`)
	workers := flag.String("workers", "", "comma-separated worker base URLs (coordinator role only)")
	scatterStall := flag.Duration("scatter-stall", cluster.DefaultStallTimeout, "per-worker deadline: cancel a scatter call making no stream progress for this long")
	scatterRetries := flag.Int("scatter-retries", cluster.DefaultMaxAttempts, "attempts per root range before the query fails")
	scatterBackoff := flag.Duration("scatter-backoff", cluster.DefaultBackoff, "base backoff between a worker's consecutive failures (doubles per failure)")
	scatterMarker := flag.Int("scatter-marker", cluster.DefaultMarkerEvery, "ask workers for a progress marker about every N answers")
	maxStreams := flag.Int("max-streams", 0, "concurrent streaming-request cap; excess requests queue then shed with 429 (0 = 2*GOMAXPROCS)")
	queueDeadline := flag.Duration("queue-deadline", server.DefaultQueueDeadline, "how long a streaming request may queue for a slot before it is shed")
	maxSubscriptions := flag.Int("max-subscriptions", server.DefaultMaxSubscriptions, "concurrent /subscribe cap (separate gate from -max-streams, distinct 429 reason)")
	appendLog := flag.Int("append-log", ucq.DefaultAppendLogSize, "retained append-delta entries per dataset — the window subscribers can catch up over incrementally before degrading to a resync")
	flag.Parse()

	cfg := server.Config{
		CacheSize:        *cache,
		CacheTTL:         *planTTL,
		BindCacheSize:    *bindCache,
		BindCacheTTL:     *bindTTL,
		FlushEvery:       *flushEvery,
		MaxBodyBytes:     *maxBody,
		DataDir:          *dataDir,
		SpillBudget:      *dedupBudget,
		SpillDir:         *spillDir,
		MaxStreams:       *maxStreams,
		QueueDeadline:    *queueDeadline,
		MaxSubscriptions: *maxSubscriptions,
		AppendLogSize:    *appendLog,
	}
	var s *server.Server
	switch *role {
	case "single", "worker":
		if *workers != "" {
			log.Fatalf("ucq-serve: -workers requires -role coordinator")
		}
		var err error
		s, err = server.Open(cfg)
		if err != nil {
			log.Fatalf("ucq-serve: opening data dir: %v", err)
		}
		if *dataDir != "" {
			log.Printf("ucq-serve: durable catalog under %s", *dataDir)
		}
	case "coordinator":
		// A coordinator holds no datasets — its writes replicate to the
		// workers, whose own -data-dir makes them durable.
		if *dataDir != "" {
			log.Fatalf("ucq-serve: -data-dir requires -role single or worker (workers own the datasets; give each worker its own directory)")
		}
		list, err := cluster.ParseWorkerList(*workers)
		if err != nil {
			log.Fatalf("ucq-serve: -workers: %v", err)
		}
		if len(list) == 0 {
			log.Fatalf("ucq-serve: -role coordinator requires -workers")
		}
		cfg.Cluster = cluster.Config{
			Workers:      list,
			StallTimeout: *scatterStall,
			MaxAttempts:  *scatterRetries,
			Backoff:      *scatterBackoff,
			MarkerEvery:  *scatterMarker,
		}
		s, err = server.NewCoordinator(cfg)
		if err != nil {
			log.Fatalf("ucq-serve: %v", err)
		}
	default:
		log.Fatalf("ucq-serve: unknown -role %q (want single, worker or coordinator)", *role)
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	// Request contexts derive from ctx through BaseContext, so the first
	// SIGINT/SIGTERM cancels every in-flight stream: the handler's context
	// plumbing stops the enumeration executors, the streams end without a
	// trailer, and Shutdown below then completes promptly instead of
	// waiting out long-running enumerations.
	hs := &http.Server{
		Addr:              *addr,
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		BaseContext:       func(net.Listener) context.Context { return ctx },
	}

	errc := make(chan error, 1)
	go func() {
		log.Printf("ucq-serve: listening on %s (plan cache: %d entries, bind cache: %d entries)", *addr, *cache, *bindCache)
		errc <- hs.ListenAndServe()
	}()

	select {
	case err := <-errc:
		log.Fatalf("ucq-serve: %v", err)
	case <-ctx.Done():
		log.Printf("ucq-serve: shutting down (in-flight streams cancelled)")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := hs.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
			log.Printf("ucq-serve: shutdown: %v", err)
		}
		// Only after the listener drains: in-flight writes journal through
		// the store right up to their acknowledgement.
		if err := s.Close(); err != nil {
			log.Printf("ucq-serve: closing store: %v", err)
		}
		log.Printf("ucq-serve: bye")
	}
}
