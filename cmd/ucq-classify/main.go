// ucq-classify reads a UCQ (from a file or stdin) and reports its
// enumeration complexity with respect to DelayClin, per Carmeli & Kröll
// (PODS 2019): tractable with a free-connexity certificate, intractable
// with the paper's conditional lower bounds, or unknown.
//
// Usage:
//
//	ucq-classify [-v] [query.ucq]
//	echo 'Q(x,y) <- R(x,z), S(z,y).' | ucq-classify
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro"
)

func main() {
	verbose := flag.Bool("v", false, "print per-CQ classes and the full certificate")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: ucq-classify [-v] [query-file]\n")
		fmt.Fprintf(os.Stderr, "reads the query from the file, or stdin when omitted\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	var src []byte
	var err error
	switch flag.NArg() {
	case 0:
		src, err = io.ReadAll(os.Stdin)
	case 1:
		src, err = os.ReadFile(flag.Arg(0))
	default:
		flag.Usage()
		os.Exit(2)
	}
	if err != nil {
		fatal(err)
	}

	u, err := ucq.Parse(string(src))
	if err != nil {
		fatal(err)
	}
	res, err := ucq.Classify(u)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("query (%d CQs):\n%s\n\n", len(u.CQs), indent(u.String()))
	if res.Reduced != nil {
		fmt.Printf("after removing contained CQs (%d left):\n%s\n\n",
			len(res.Reduced.CQs), indent(res.Reduced.String()))
	}
	if *verbose {
		for _, q := range u.CQs {
			fmt.Printf("  %-4s %s\n", q.Name+":", ucq.ClassifyCQ(q))
		}
		fmt.Println()
	}
	fmt.Printf("verdict: %s\n", res.Verdict)
	fmt.Printf("reason:  %s\n", res.Reason)
	if len(res.Hypotheses) > 0 {
		fmt.Printf("assumes: %s\n", strings.Join(res.Hypotheses, ", "))
	}
	if res.Certificate != nil {
		fmt.Printf("certificate (%d virtual atoms):\n%s\n",
			res.Certificate.TotalVirtualAtoms(), indent(res.Certificate.String()))
	}
	if res.Verdict == ucq.Intractable {
		os.Exit(1)
	}
}

func indent(s string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i := range lines {
		lines[i] = "  " + lines[i]
	}
	return strings.Join(lines, "\n")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ucq-classify:", err)
	os.Exit(2)
}
