package main

import (
	"math"
	"regexp"
	"strings"
	"testing"
)

const sampleOutput = `
goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkE12UnionParallelVsSequential/sequential-8         	      10	 100000000 ns/op	   53000 answers/op	 1000000 B/op	     100 allocs/op
BenchmarkE12UnionParallelVsSequential/sequential-8         	      10	 120000000 ns/op	   53000 answers/op	 1100000 B/op	     110 allocs/op
BenchmarkE12UnionParallelVsSequential/sequential-8         	      10	 110000000 ns/op	   53000 answers/op	 1050000 B/op	     105 allocs/op
BenchmarkAblationDedupTupleSetVsStringKey/tupleset-8       	    2000	    500000 ns/op	  300000 B/op	       5 allocs/op
BenchmarkAblationDedupTupleSetVsStringKey/tupleset-8       	    2000	    520000 ns/op	  300000 B/op	       5 allocs/op
PASS
ok  	repro	12.345s
`

func TestParseAggregatesMedians(t *testing.T) {
	snap, err := Parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(snap.Benchmarks))
	}
	seq := snap.Benchmarks[0]
	if seq.Name != "BenchmarkE12UnionParallelVsSequential/sequential" {
		t.Fatalf("name = %q (GOMAXPROCS suffix not stripped?)", seq.Name)
	}
	if seq.Runs != 3 || seq.NsPerOp != 110000000 {
		t.Fatalf("sequential aggregate = %+v, want 3 runs, median 110000000", seq)
	}
	ts := snap.Benchmarks[1]
	if ts.Runs != 2 || ts.NsPerOp != 510000 {
		t.Fatalf("tupleset aggregate = %+v, want 2 runs, mean-of-middle 510000", ts)
	}
	if ts.BPerOp != 300000 || ts.AllocsPerOp != 5 {
		t.Fatalf("tupleset memory metrics = %+v", ts)
	}
	if snap.GOMAXPROCS != 8 {
		t.Errorf("GOMAXPROCS = %d, want 8 (from the -8 name suffix)", snap.GOMAXPROCS)
	}
	if snap.CPU != "Intel(R) Xeon(R) Processor @ 2.10GHz" {
		t.Errorf("CPU = %q, want the cpu: line", snap.CPU)
	}
}

func TestParseRejectsEmptyInput(t *testing.T) {
	if _, err := Parse(strings.NewReader("no benchmarks here\n")); err == nil {
		t.Fatal("empty input accepted")
	}
}

func snapOf(pairs map[string]float64) *Snapshot {
	s := &Snapshot{Schema: 1}
	for name, ns := range pairs {
		s.Benchmarks = append(s.Benchmarks, Result{Name: name, Runs: 1, NsPerOp: ns})
	}
	return s
}

func TestCompareGeomeanAndThreshold(t *testing.T) {
	base := snapOf(map[string]float64{"A": 100, "B": 200, "OnlyInBase": 5})
	cur := snapOf(map[string]float64{"A": 110, "B": 220, "OnlyInCurrent": 7})
	cmp, err := Compare(base, cur, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(cmp.Matched) != 2 {
		t.Fatalf("matched %d benchmarks, want 2 (unmatched ones must be skipped)", len(cmp.Matched))
	}
	if math.Abs(cmp.Geomean-1.10) > 1e-9 {
		t.Fatalf("geomean = %f, want 1.10", cmp.Geomean)
	}
}

func TestCompareFilter(t *testing.T) {
	base := snapOf(map[string]float64{"BenchmarkDedup": 100, "BenchmarkOther": 100})
	cur := snapOf(map[string]float64{"BenchmarkDedup": 100, "BenchmarkOther": 900})
	cmp, err := Compare(base, cur, regexp.MustCompile("Dedup"))
	if err != nil {
		t.Fatal(err)
	}
	if len(cmp.Matched) != 1 || cmp.Matched[0].Name != "BenchmarkDedup" {
		t.Fatalf("filter leaked: %+v", cmp.Matched)
	}
	if cmp.Geomean != 1.0 {
		t.Fatalf("geomean = %f, want 1.0 (the 9x regression is outside the gated set)", cmp.Geomean)
	}
}

func TestCompareNoOverlapErrors(t *testing.T) {
	base := snapOf(map[string]float64{"A": 1})
	cur := snapOf(map[string]float64{"B": 1})
	if _, err := Compare(base, cur, nil); err == nil {
		t.Fatal("disjoint snapshots accepted")
	}
}

// TestCompareSkipsParallelOnCoreMismatch pins the honesty rule: when the
// snapshots ran at different GOMAXPROCS, the core-count-sensitive
// benchmarks (E12–E19) are skipped — their "regression" would measure the
// machine — while scalar benchmarks still gate.
func TestCompareSkipsParallelOnCoreMismatch(t *testing.T) {
	mk := func(procs int, parallelNs float64) *Snapshot {
		s := snapOf(map[string]float64{
			"BenchmarkE12UnionParallelVsSequential/parallel": parallelNs,
			"BenchmarkE18AutoModeSelection/auto":             parallelNs,
			"BenchmarkE1FreeConnexCQ":                        100,
		})
		s.GOMAXPROCS = procs
		return s
	}

	// Same core count: everything gates, nothing is skipped.
	cmp, err := Compare(mk(8, 100), mk(8, 100), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(cmp.Skipped) != 0 || len(cmp.Matched) != 3 {
		t.Fatalf("same cores: matched %d skipped %v, want 3/none", len(cmp.Matched), cmp.Skipped)
	}

	// Different core counts: the parallel pair is skipped even though its
	// ratio (8x) would blow any threshold; the scalar bench still gates.
	cmp, err = Compare(mk(8, 100), mk(2, 800), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(cmp.Skipped) != 2 {
		t.Fatalf("differing cores: skipped %v, want the two E1x parallel benchmarks", cmp.Skipped)
	}
	if len(cmp.Matched) != 1 || cmp.Matched[0].Name != "BenchmarkE1FreeConnexCQ" {
		t.Fatalf("differing cores: matched %+v, want only the scalar benchmark", cmp.Matched)
	}
	if cmp.Geomean != 1.0 {
		t.Fatalf("geomean = %f, want 1.0", cmp.Geomean)
	}

	// Legacy snapshots without the field keep gating everything.
	legacyBase := mk(0, 100)
	legacyCur := mk(8, 100)
	cmp, err = Compare(legacyBase, legacyCur, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(cmp.Skipped) != 0 || len(cmp.Matched) != 3 {
		t.Fatalf("legacy snapshot: matched %d skipped %v, want 3/none", len(cmp.Matched), cmp.Skipped)
	}
}

// TestCompareAllSkippedIsNotAnError pins that a gate whose entire filtered
// set is skipped for core mismatch warns instead of failing.
func TestCompareAllSkippedIsNotAnError(t *testing.T) {
	mk := func(procs int) *Snapshot {
		s := snapOf(map[string]float64{"BenchmarkE15Sharded/x": 100})
		s.GOMAXPROCS = procs
		return s
	}
	cmp, err := Compare(mk(8), mk(4), nil)
	if err != nil {
		t.Fatalf("all-skipped comparison errored: %v", err)
	}
	if len(cmp.Skipped) != 1 || cmp.Geomean != 1.0 {
		t.Fatalf("all-skipped comparison = %+v", cmp)
	}
}
