// benchgate turns `go test -bench` output into a machine-readable
// BENCH_*.json snapshot and gates benchmark regressions against a committed
// baseline snapshot.
//
// Parse mode — aggregate one or more -count runs per benchmark (median of
// the per-run ns/op) into a JSON snapshot:
//
//	go test -run '^$' -bench 'Dedup|Union' -count=6 -benchmem ./... | tee bench.txt
//	benchgate -parse bench.txt -out BENCH_pr2.json -note "PR 2 @ $(git rev-parse --short HEAD)"
//
// Gate mode — compare a fresh snapshot against the baseline and fail (exit
// 1) when the geometric-mean ns/op ratio over the matched benchmarks
// exceeds the threshold:
//
//	benchgate -baseline BENCH_baseline.json -current BENCH_pr2.json -threshold 1.15 -filter 'Dedup|Union'
//
// Only benchmarks present in both snapshots are compared, so adding or
// removing benchmarks never trips the gate; renaming one does, on purpose.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"regexp"
	"sort"
	"strconv"
)

// Result is one benchmark's aggregated measurement.
type Result struct {
	Name        string  `json:"name"`
	Runs        int     `json:"runs"`
	NsPerOp     float64 `json:"ns_per_op"`
	BPerOp      float64 `json:"b_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
}

// Snapshot is the BENCH_*.json file format.
type Snapshot struct {
	Schema int    `json:"schema"`
	Note   string `json:"note,omitempty"`
	// GOMAXPROCS is the core count the benchmarks ran with, recovered from
	// the -<N> name suffix. Parallel benchmark timings are only comparable
	// between snapshots taken at the same count — the gate skips them
	// otherwise instead of reporting phantom regressions.
	GOMAXPROCS int `json:"gomaxprocs,omitempty"`
	// CPU echoes the `cpu:` line of the bench output, for provenance.
	CPU        string   `json:"cpu,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
}

// benchLine matches one `go test -bench` result line; the trailing
// -<GOMAXPROCS> suffix is stripped from the name so snapshots compare
// across machines (and recorded in the snapshot header so the gate knows
// when they should not be compared).
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(-\d+)?\s+(\d+)\s+([0-9.]+) ns/op(.*)$`)

// cpuLine matches the `cpu:` provenance line go test prints once.
var cpuLine = regexp.MustCompile(`^cpu:\s+(.+)$`)

var (
	bPerOpRe      = regexp.MustCompile(`([0-9.]+) B/op`)
	allocsPerOpRe = regexp.MustCompile(`([0-9]+) allocs/op`)
)

// sample is one run's measurements for one benchmark.
type sample struct {
	ns, b, allocs float64
}

// Parse reads `go test -bench` output and aggregates the per-benchmark
// samples (median across runs).
func Parse(r io.Reader) (*Snapshot, error) {
	samples := make(map[string][]sample)
	var order []string
	gomaxprocs := 0
	cpu := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		if cm := cpuLine.FindStringSubmatch(sc.Text()); cm != nil {
			cpu = cm[1]
			continue
		}
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		name := m[1]
		if m[2] != "" {
			if n, err := strconv.Atoi(m[2][1:]); err == nil {
				gomaxprocs = n
			}
		}
		ns, err := strconv.ParseFloat(m[4], 64)
		if err != nil {
			return nil, fmt.Errorf("benchgate: bad ns/op in %q: %w", sc.Text(), err)
		}
		s := sample{ns: ns}
		if bm := bPerOpRe.FindStringSubmatch(m[5]); bm != nil {
			s.b, _ = strconv.ParseFloat(bm[1], 64)
		}
		if am := allocsPerOpRe.FindStringSubmatch(m[5]); am != nil {
			s.allocs, _ = strconv.ParseFloat(am[1], 64)
		}
		if _, seen := samples[name]; !seen {
			order = append(order, name)
		}
		samples[name] = append(samples[name], s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(order) == 0 {
		return nil, fmt.Errorf("benchgate: no benchmark lines found")
	}
	snap := &Snapshot{Schema: 1, GOMAXPROCS: gomaxprocs, CPU: cpu}
	for _, name := range order {
		ss := samples[name]
		snap.Benchmarks = append(snap.Benchmarks, Result{
			Name:        name,
			Runs:        len(ss),
			NsPerOp:     median(ss, func(s sample) float64 { return s.ns }),
			BPerOp:      median(ss, func(s sample) float64 { return s.b }),
			AllocsPerOp: median(ss, func(s sample) float64 { return s.allocs }),
		})
	}
	return snap, nil
}

// median aggregates one field across samples.
func median(ss []sample, get func(sample) float64) float64 {
	vals := make([]float64, len(ss))
	for i, s := range ss {
		vals[i] = get(s)
	}
	sort.Float64s(vals)
	n := len(vals)
	if n%2 == 1 {
		return vals[n/2]
	}
	return (vals[n/2-1] + vals[n/2]) / 2
}

// Comparison is the outcome of gating current against baseline.
type Comparison struct {
	// Matched lists the per-benchmark ratios (current/baseline ns/op),
	// worst first.
	Matched []Ratio
	// Geomean is the geometric mean of the matched ratios.
	Geomean float64
	// Skipped lists benchmarks excluded from the gate because their
	// timings depend on the core count and the two snapshots were taken at
	// different GOMAXPROCS.
	Skipped []string
}

// parallelBench matches the benchmarks whose ns/op scales with the core
// count — the parallel, sharded, work-stealing, auto-mode, distributed
// fan-out and concurrent wire-throughput experiments.
// Comparing their timings across machines with different parallelism
// measures the hardware, not the code, so the gate skips them (with a
// warning) when the snapshots' GOMAXPROCS differ.
var parallelBench = regexp.MustCompile(`^BenchmarkE1[2-9]|^BenchmarkE2[0-2]`)

// Ratio is one benchmark's regression factor.
type Ratio struct {
	Name    string
	Base    float64
	Current float64
	Factor  float64
}

// Compare matches the two snapshots' benchmarks (optionally restricted by
// filter) and computes the regression ratios.
func Compare(baseline, current *Snapshot, filter *regexp.Regexp) (*Comparison, error) {
	base := make(map[string]Result, len(baseline.Benchmarks))
	for _, r := range baseline.Benchmarks {
		base[r.Name] = r
	}
	// Core counts are comparable when both snapshots recorded one and they
	// agree; legacy snapshots without the field gate everything, as before.
	coresDiffer := baseline.GOMAXPROCS > 0 && current.GOMAXPROCS > 0 &&
		baseline.GOMAXPROCS != current.GOMAXPROCS
	cmp := &Comparison{}
	logSum := 0.0
	for _, cur := range current.Benchmarks {
		if filter != nil && !filter.MatchString(cur.Name) {
			continue
		}
		b, ok := base[cur.Name]
		if !ok || b.NsPerOp <= 0 || cur.NsPerOp <= 0 {
			continue
		}
		if coresDiffer && parallelBench.MatchString(cur.Name) {
			cmp.Skipped = append(cmp.Skipped, cur.Name)
			continue
		}
		f := cur.NsPerOp / b.NsPerOp
		cmp.Matched = append(cmp.Matched, Ratio{Name: cur.Name, Base: b.NsPerOp, Current: cur.NsPerOp, Factor: f})
		logSum += math.Log(f)
	}
	if len(cmp.Matched) == 0 {
		if len(cmp.Skipped) > 0 {
			// Everything the filter selected is core-count-sensitive and the
			// counts differ: nothing to gate, which is a warning, not a
			// failure.
			cmp.Geomean = 1
			return cmp, nil
		}
		return nil, fmt.Errorf("benchgate: no benchmarks matched between baseline and current")
	}
	cmp.Geomean = math.Exp(logSum / float64(len(cmp.Matched)))
	sort.Slice(cmp.Matched, func(i, j int) bool { return cmp.Matched[i].Factor > cmp.Matched[j].Factor })
	return cmp, nil
}

func readSnapshot(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("benchgate: %s: %w", path, err)
	}
	return &s, nil
}

func main() {
	parse := flag.String("parse", "", "bench output file to parse ('-' for stdin)")
	out := flag.String("out", "", "JSON snapshot to write (with -parse)")
	note := flag.String("note", "", "free-form provenance note stored in the snapshot")
	baseline := flag.String("baseline", "", "baseline snapshot (gate mode)")
	current := flag.String("current", "", "current snapshot (gate mode)")
	threshold := flag.Float64("threshold", 1.15, "max allowed geomean ns/op ratio")
	filterStr := flag.String("filter", "", "regexp restricting the gated benchmarks")
	flag.Parse()

	switch {
	case *parse != "":
		var r io.Reader = os.Stdin
		if *parse != "-" {
			f, err := os.Open(*parse)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			r = f
		}
		snap, err := Parse(r)
		if err != nil {
			fatal(err)
		}
		snap.Note = *note
		data, err := json.MarshalIndent(snap, "", "  ")
		if err != nil {
			fatal(err)
		}
		data = append(data, '\n')
		if *out == "" {
			os.Stdout.Write(data)
			return
		}
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("benchgate: wrote %d benchmarks to %s\n", len(snap.Benchmarks), *out)

	case *baseline != "" && *current != "":
		var filter *regexp.Regexp
		if *filterStr != "" {
			var err error
			filter, err = regexp.Compile(*filterStr)
			if err != nil {
				fatal(err)
			}
		}
		bs, err := readSnapshot(*baseline)
		if err != nil {
			fatal(err)
		}
		cs, err := readSnapshot(*current)
		if err != nil {
			fatal(err)
		}
		cmp, err := Compare(bs, cs, filter)
		if err != nil {
			fatal(err)
		}
		if len(cmp.Skipped) > 0 {
			fmt.Printf("benchgate: WARNING: baseline ran at GOMAXPROCS=%d, current at %d; skipping %d core-count-sensitive benchmarks:\n",
				bs.GOMAXPROCS, cs.GOMAXPROCS, len(cmp.Skipped))
			for _, name := range cmp.Skipped {
				fmt.Printf("    skip %s\n", name)
			}
		}
		fmt.Printf("benchgate: %d benchmarks gated, geomean ratio %.3f (threshold %.2f)\n",
			len(cmp.Matched), cmp.Geomean, *threshold)
		for _, r := range cmp.Matched {
			marker := " "
			if r.Factor > *threshold {
				marker = "!"
			}
			fmt.Printf("  %s %-60s %12.1f -> %12.1f ns/op  x%.3f\n", marker, r.Name, r.Base, r.Current, r.Factor)
		}
		if cmp.Geomean > *threshold {
			fmt.Printf("benchgate: FAIL: geomean regression %.3f exceeds %.2f\n", cmp.Geomean, *threshold)
			os.Exit(1)
		}
		fmt.Println("benchgate: OK")

	default:
		fmt.Fprintln(os.Stderr, "benchgate: need either -parse, or -baseline and -current")
		flag.Usage()
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchgate:", err)
	os.Exit(2)
}
