// ucq-run evaluates a UCQ over relations loaded from CSV files and streams
// the answers. Certified free-connex queries run with the constant-delay
// engine; everything else falls back to the naive evaluator (reported on
// stderr).
//
// Usage:
//
//	ucq-run -q query.ucq -r R1=r1.csv -r R2=r2.csv [-limit N] [-mode auto|naive] [-parallel] [-shards N] [-workers N]
//
// CSV rows are comma/space/semicolon-separated integers; '#' starts a
// comment line.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro"
)

// relFlags collects repeated -r name=path flags.
type relFlags map[string]string

func (r relFlags) String() string { return fmt.Sprint(map[string]string(r)) }

func (r relFlags) Set(v string) error {
	name, path, ok := strings.Cut(v, "=")
	if !ok || name == "" || path == "" {
		return fmt.Errorf("want name=path, got %q", v)
	}
	r[name] = path
	return nil
}

func main() {
	rels := relFlags{}
	queryFile := flag.String("q", "", "query file (required)")
	flag.Var(rels, "r", "relation binding name=csv-path (repeatable)")
	limit := flag.Int("limit", 0, "stop after N answers (0 = all)")
	mode := flag.String("mode", "auto", "evaluation mode: auto | naive")
	countOnly := flag.Bool("count", false, "print only the answer count")
	parallel := flag.Bool("parallel", false, "drain union branches concurrently (answer order nondeterministic)")
	batch := flag.Int("batch", 0, "parallel batch size per worker (0 = default)")
	shards := flag.Int("shards", 0, "hash-partition each branch across N shards (requires -parallel; 0 = off)")
	workers := flag.Int("workers", 0, "work-stealing executor pool size (requires -parallel; 0 = GOMAXPROCS)")
	flag.Parse()

	if *queryFile == "" {
		flag.Usage()
		os.Exit(2)
	}
	src, err := os.ReadFile(*queryFile)
	if err != nil {
		fatal(err)
	}
	u, err := ucq.Parse(string(src))
	if err != nil {
		fatal(err)
	}

	inst := ucq.NewInstance()
	for name, path := range rels {
		f, err := os.Open(path)
		if err != nil {
			fatal(err)
		}
		rel, err := ucq.ReadRelationCSV(f, name)
		f.Close()
		if err != nil {
			fatal(err)
		}
		inst.AddRelation(rel)
	}

	opts := &ucq.PlanOptions{
		ForceNaive:    *mode == "naive",
		Parallel:      *parallel,
		ParallelBatch: *batch,
		Shards:        *shards,
		Workers:       *workers,
	}
	plan, err := ucq.NewPlan(u, inst, opts)
	if err != nil {
		var oe *ucq.OptionsError
		if errors.As(err, &oe) {
			fmt.Fprintln(os.Stderr, "ucq-run: invalid flag combination:", oe.Reason)
			flag.Usage()
			os.Exit(2)
		}
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "ucq-run: %s evaluation\n", plan.Mode)

	it := plan.Iterator()
	defer ucq.CloseAnswers(it) // release workers when -limit cuts a parallel stream short
	n := 0
	for {
		t, ok := it.Next()
		if !ok {
			break
		}
		n++
		if !*countOnly {
			parts := make([]string, len(t))
			for i, v := range t {
				parts[i] = v.String()
			}
			fmt.Println(strings.Join(parts, ","))
		}
		if *limit > 0 && n >= *limit {
			break
		}
	}
	if *countOnly {
		fmt.Println(n)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ucq-run:", err)
	os.Exit(2)
}
