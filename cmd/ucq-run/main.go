// ucq-run evaluates a UCQ over relations loaded from CSV files and streams
// the answers. Certified free-connex queries run with the constant-delay
// engine; everything else falls back to the naive evaluator (reported on
// stderr).
//
// Usage:
//
//	ucq-run -q query.ucq -r R1=r1.csv -r R2=r2.csv [-limit N] [-mode auto|naive] [-parallel] [-shards N] [-workers N] [-dataset name[=instance.json]]
//
// CSV rows are comma/space/semicolon-separated integers; '#' starts a
// comment line.
//
// When none of -parallel, -batch, -shards, -workers is given, the
// planner's cost model resolves them per bind from the instance
// (adaptive execution); the resolved decision is reported on stderr. Any
// explicit knob pins manual execution. With -count and no -limit,
// certified single-branch plans answer from the Theorem 12 counting pass
// without enumerating.
//
// With -remote URL the query is not evaluated locally: it is POSTed to a
// running ucq-serve instance (to /query with the -r relations inline, or
// to /datasets/{name}/query when -dataset names a server-side dataset)
// and the answer stream is decoded client-side. -wire picks the stream
// encoding to request: "binary" (the default — the compact columnar
// frames) or "ndjson".
//
// With -remote, -dataset and -subscribe the query becomes a live
// subscription: the server streams the dataset's current answer set, then
// pushes the answers every later append adds, punctuated by version
// markers (reported on stderr). -from-version resumes a previous
// subscription from the last marker it saw.
//
// With -dataset the relations are registered as a named dataset in an
// in-process catalog and the query is evaluated through
// Prepare/BindDataset — the same code path the server's
// /datasets/{name}/query endpoint uses — instead of the one-shot NewPlan.
// The form -dataset name=instance.json additionally loads the dataset
// from a JSON instance file ({"R": [[1,2],...], ...}); -r relations, if
// any, are added on top, replacing a same-named relation from the file.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"

	"repro"
)

// relFlags collects repeated -r name=path flags.
type relFlags map[string]string

func (r relFlags) String() string { return fmt.Sprint(map[string]string(r)) }

func (r relFlags) Set(v string) error {
	name, path, ok := strings.Cut(v, "=")
	if !ok || name == "" || path == "" {
		return fmt.Errorf("want name=path, got %q", v)
	}
	r[name] = path
	return nil
}

func main() {
	rels := relFlags{}
	queryFile := flag.String("q", "", "query file (required)")
	flag.Var(rels, "r", "relation binding name=csv-path (repeatable)")
	limit := flag.Int("limit", 0, "stop after N answers (0 = all)")
	mode := flag.String("mode", "auto", "evaluation mode: auto | naive")
	countOnly := flag.Bool("count", false, "print only the answer count")
	parallel := flag.Bool("parallel", false, "drain union branches concurrently (answer order nondeterministic)")
	batch := flag.Int("batch", 0, "parallel batch size per worker (0 = default)")
	shards := flag.Int("shards", 0, "hash-partition each branch across N shards (requires -parallel; 0 = off)")
	workers := flag.Int("workers", 0, "work-stealing executor pool size (requires -parallel; 0 = GOMAXPROCS)")
	dataset := flag.String("dataset", "", "register the instance as a catalog dataset `name[=instance.json]` and bind through it")
	remote := flag.String("remote", "", "evaluate against a running ucq-serve at this base `URL` instead of locally")
	wireFlag := flag.String("wire", "binary", "answer-stream encoding to request from -remote: binary | ndjson")
	subscribe := flag.Bool("subscribe", false, "subscribe to the dataset's live answer stream (requires -remote and -dataset): print the initial answers, then every answer later appends add")
	fromVersion := flag.Uint64("from-version", 0, "with -subscribe: resume from this dataset version — the initial batch is the delta since it instead of the full answer set")
	flag.Parse()

	if *queryFile == "" {
		flag.Usage()
		os.Exit(2)
	}
	src, err := os.ReadFile(*queryFile)
	if err != nil {
		fatal(err)
	}
	u, err := ucq.Parse(string(src))
	if err != nil {
		fatal(err)
	}

	if *subscribe {
		dsName, _, _ := strings.Cut(*dataset, "=")
		if *remote == "" || dsName == "" {
			fatal(errors.New("-subscribe requires -remote and -dataset (the live stream is served by ucq-serve)"))
		}
		runSubscribe(*remote, *wireFlag, string(src), dsName, *mode, *limit, *fromVersion)
		return
	}
	if *remote != "" {
		runRemote(*remote, *wireFlag, string(src), rels, *dataset, *mode, *limit, *countOnly)
		return
	}

	inst := ucq.NewInstance()
	dsName, dsFile, _ := strings.Cut(*dataset, "=")
	if dsFile != "" {
		f, err := os.Open(dsFile)
		if err != nil {
			fatal(err)
		}
		loaded, err := ucq.ReadInstanceJSON(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		inst = loaded
	}
	for name, path := range rels {
		f, err := os.Open(path)
		if err != nil {
			fatal(err)
		}
		rel, err := ucq.ReadRelationCSV(f, name)
		f.Close()
		if err != nil {
			fatal(err)
		}
		inst.AddRelation(rel)
	}

	opts := &ucq.PlanOptions{
		ForceNaive:    *mode == "naive",
		Parallel:      *parallel,
		ParallelBatch: *batch,
		Shards:        *shards,
		Workers:       *workers,
	}
	// No explicit execution knob: let the cost model pick mode, shards and
	// workers per bind. Any hand-picked flag keeps the manual path
	// byte-identical.
	if !*parallel && *batch == 0 && *shards == 0 && *workers == 0 {
		opts.Auto = true
	}
	plan, err := newPlan(u, inst, opts, dsName)
	if err != nil {
		var oe *ucq.OptionsError
		if errors.As(err, &oe) {
			fmt.Fprintln(os.Stderr, "ucq-run: invalid flag combination:", oe.Reason)
			flag.Usage()
			os.Exit(2)
		}
		fatal(err)
	}
	if dsName != "" {
		fmt.Fprintf(os.Stderr, "ucq-run: %s evaluation (dataset %s v%d)\n", plan.Mode, plan.DatasetName(), plan.DatasetVersion())
	} else {
		fmt.Fprintf(os.Stderr, "ucq-run: %s evaluation\n", plan.Mode)
	}
	if d := plan.Decision(); d != nil {
		fmt.Fprintf(os.Stderr, "ucq-run: auto decision: %s\n", d)
	}

	// Count-only with no limit: certified single-branch plans know their
	// answer count from the counting pass — skip the enumeration entirely.
	if *countOnly && *limit == 0 {
		if n, exact := plan.CountExact(); exact {
			fmt.Fprintln(os.Stderr, "ucq-run: count from counting pass (no enumeration)")
			fmt.Println(n)
			return
		}
	}

	it := plan.Iterator()
	defer ucq.CloseAnswers(it) // release workers when -limit cuts a parallel stream short
	n := 0
	for {
		t, ok := it.Next()
		if !ok {
			break
		}
		n++
		if !*countOnly {
			parts := make([]string, len(t))
			for i, v := range t {
				parts[i] = v.String()
			}
			fmt.Println(strings.Join(parts, ","))
		}
		if *limit > 0 && n >= *limit {
			break
		}
	}
	if *countOnly {
		fmt.Println(n)
	}
}

// newPlan builds the evaluation: directly (the legacy one-shot path), or
// through a catalog dataset when -dataset is given — Prepare once,
// BindDataset against the registered snapshot, exactly the server's
// dataset code path.
func newPlan(u *ucq.UCQ, inst *ucq.Instance, opts *ucq.PlanOptions, dsName string) (*ucq.Plan, error) {
	if dsName == "" {
		return ucq.NewPlan(u, inst, opts)
	}
	pq, err := ucq.Prepare(u, opts)
	if err != nil {
		return nil, err
	}
	ds, err := ucq.NewCatalog().Register(dsName, inst)
	if err != nil {
		return nil, err
	}
	return pq.BindDataset(ds)
}

// runRemote POSTs the query to a ucq-serve instance and decodes the
// answer stream client-side with ucq.DecodeAnswerStream — the same helper
// the tests use, over whichever encoding -wire requested.
func runRemote(base, wireEnc, query string, rels relFlags, dataset string, mode string, limit int, countOnly bool) {
	var accept string
	switch wireEnc {
	case "binary":
		accept = ucq.MediaTypeBinary
	case "ndjson":
		accept = ucq.MediaTypeNDJSON
	default:
		fatal(fmt.Errorf("invalid -wire %q: want binary or ndjson", wireEnc))
	}

	relations := map[string][][]int64{}
	for name, path := range rels {
		f, err := os.Open(path)
		if err != nil {
			fatal(err)
		}
		rel, err := ucq.ReadRelationCSV(f, name)
		f.Close()
		if err != nil {
			fatal(err)
		}
		rows := make([][]int64, 0, rel.Len())
		for _, t := range rel.Rows() {
			row := make([]int64, len(t))
			for i, v := range t {
				row[i] = v.Payload()
			}
			rows = append(rows, row)
		}
		relations[name] = rows
	}

	type queryOptions struct {
		Mode      string `json:"mode,omitempty"`
		CountOnly bool   `json:"count_only,omitempty"`
	}
	body, err := json.Marshal(struct {
		Query     string               `json:"query"`
		Relations map[string][][]int64 `json:"relations,omitempty"`
		Options   queryOptions         `json:"options"`
		Limit     int                  `json:"limit,omitempty"`
	}{Query: query, Relations: relations, Options: queryOptions{Mode: mode}, Limit: limit})
	if err != nil {
		fatal(err)
	}

	url := strings.TrimSuffix(base, "/") + "/query"
	dsName, _, _ := strings.Cut(dataset, "=")
	if dsName != "" {
		if len(relations) > 0 {
			fatal(fmt.Errorf("-remote dataset queries run against the server's dataset; drop the -r flags"))
		}
		url = strings.TrimSuffix(base, "/") + "/datasets/" + dsName + "/query"
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Accept", accept)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		fatal(fmt.Errorf("server: %s: %s", resp.Status, strings.TrimSpace(string(raw))))
	}

	out := bufio.NewWriter(os.Stdout)
	n := 0
	var buf []byte
	tr, err := ucq.DecodeAnswerStream(resp.Body, resp.Header.Get("Content-Type"), func(t ucq.Tuple) bool {
		n++
		if !countOnly {
			buf = buf[:0]
			for i, v := range t {
				if i > 0 {
					buf = append(buf, ',')
				}
				buf = append(buf, v.String()...)
			}
			buf = append(buf, '\n')
			out.Write(buf)
		}
		return true
	})
	if err != nil {
		out.Flush()
		fatal(err)
	}
	if tr != nil {
		if tr.Error != "" {
			out.Flush()
			fatal(fmt.Errorf("server stream failed after %d answers: %s", n, tr.Error))
		}
		fmt.Fprintf(os.Stderr, "ucq-run: %s evaluation via %s (%s)\n", tr.Mode, base, resp.Header.Get("Content-Type"))
	}
	if countOnly {
		fmt.Fprintln(out, n)
	}
	if err := out.Flush(); err != nil {
		fatal(err)
	}
}

// runSubscribe opens a live subscription on a server-side dataset: POST
// /datasets/{name}/subscribe, decoded with ucq.DecodeSubscriptionStream.
// Answers go to stdout as they arrive; version markers and resyncs are
// reported on stderr. The stream runs until the server ends it, the
// connection drops, or -limit answers have been printed.
func runSubscribe(base, wireEnc, query, dsName, mode string, limit int, fromVersion uint64) {
	var accept string
	switch wireEnc {
	case "binary":
		accept = ucq.MediaTypeBinary
	case "ndjson":
		accept = ucq.MediaTypeNDJSON
	default:
		fatal(fmt.Errorf("invalid -wire %q: want binary or ndjson", wireEnc))
	}
	body, err := json.Marshal(struct {
		Query   string `json:"query"`
		Options struct {
			Mode string `json:"mode,omitempty"`
		} `json:"options"`
		FromVersion uint64 `json:"from_version,omitempty"`
	}{Query: query, Options: struct {
		Mode string `json:"mode,omitempty"`
	}{Mode: mode}, FromVersion: fromVersion})
	if err != nil {
		fatal(err)
	}
	url := strings.TrimSuffix(base, "/") + "/datasets/" + dsName + "/subscribe"
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Accept", accept)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		fatal(fmt.Errorf("server: %s: %s", resp.Status, strings.TrimSpace(string(raw))))
	}
	fmt.Fprintf(os.Stderr, "ucq-run: subscribed to %s at %s (%s, %s evaluation, v%s)\n",
		dsName, base, resp.Header.Get("Content-Type"), resp.Header.Get("X-Ucq-Mode"),
		resp.Header.Get("X-Ucq-Dataset-Version"))

	n := 0
	var buf []byte
	tr, err := ucq.DecodeSubscriptionStream(resp.Body, resp.Header.Get("Content-Type"),
		func(t ucq.Tuple) bool {
			n++
			buf = buf[:0]
			for i, v := range t {
				if i > 0 {
					buf = append(buf, ',')
				}
				buf = append(buf, v.String()...)
			}
			fmt.Println(string(buf))
			return limit <= 0 || n < limit
		},
		func(ev ucq.SubscriptionEvent) bool {
			if ev.Resync {
				fmt.Fprintf(os.Stderr, "ucq-run: resync: discarding state; full set at v%d follows\n", ev.Version)
				n = 0
			} else {
				fmt.Fprintf(os.Stderr, "ucq-run: complete through v%d (%d answers)\n", ev.Version, n)
			}
			return true
		})
	if err != nil {
		fatal(err)
	}
	if tr != nil && tr.Error != "" {
		fatal(fmt.Errorf("subscription ended by server after %d answers: %s", n, tr.Error))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ucq-run:", err)
	os.Exit(2)
}
