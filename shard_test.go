package ucq

import (
	"errors"
	"sort"
	"testing"

	"repro/internal/database"
	"repro/internal/paper"
	"repro/internal/workload"
)

// collectSorted drains an answer stream, failing on in-stream duplicates,
// and returns the sorted answer set.
func collectSorted(t *testing.T, label string, it Answers) []Tuple {
	t.Helper()
	seen := database.NewTupleSet(0)
	var out []Tuple
	for {
		tup, ok := it.Next()
		if !ok {
			break
		}
		if !seen.Insert(tup) {
			t.Fatalf("%s: duplicate answer %v", label, tup)
		}
		out = append(out, tup.Clone())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// TestShardedEquivalenceGallery runs every paper example with sharded
// parallel evaluation across shard counts {1, 2, 8} against the sequential
// plan: same answer set, no duplicates, in both constant-delay and naive
// fallback modes.
func TestShardedEquivalenceGallery(t *testing.T) {
	for gi, ex := range paper.Gallery() {
		u := ex.Query()
		inst := workload.RandomForQuery(u, 120, 12, int64(gi+1))
		seq, err := NewPlan(u, inst, nil)
		if err != nil {
			t.Fatalf("%s: sequential plan: %v", ex.Name, err)
		}
		want := collectSorted(t, ex.Name+"/seq", seq.Iterator())
		for _, n := range []int{1, 2, 8} {
			p, err := NewPlan(u, inst, &PlanOptions{Parallel: true, Shards: n})
			if err != nil {
				t.Fatalf("%s shards=%d: %v", ex.Name, n, err)
			}
			if p.Mode != seq.Mode {
				t.Fatalf("%s shards=%d: mode %v, sequential mode %v", ex.Name, n, p.Mode, seq.Mode)
			}
			got := collectSorted(t, ex.Name, p.Iterator())
			if len(got) != len(want) {
				t.Fatalf("%s shards=%d (%v): %d answers, want %d", ex.Name, n, p.Mode, len(got), len(want))
			}
			for i := range want {
				if !got[i].Equal(want[i]) {
					t.Fatalf("%s shards=%d: answer %d = %v, want %v", ex.Name, n, i, got[i], want[i])
				}
			}
		}
	}
}

// TestShardedSkewedData checks sharded evaluation on an instance dominated
// by one join key, in both engine modes.
func TestShardedSkewedData(t *testing.T) {
	u := MustParse("Q(x,y,w) <- R1(x,y), R2(y,w).")
	inst := workload.SkewedJoin(600, 10, 15, 20, 4, 9)
	want := 600*10 + 15*20*4
	for _, opts := range []*PlanOptions{
		{Parallel: true, Shards: 8},
		{Parallel: true, Shards: 8, ForceNaive: true},
	} {
		p, err := NewPlan(u, inst, opts)
		if err != nil {
			t.Fatal(err)
		}
		if got := p.Count(); got != want {
			t.Fatalf("mode %v: %d answers, want %d", p.Mode, got, want)
		}
	}
}

// TestShardedLimitClose: cutting a sharded stream short must release the
// workers via CloseAnswers without deadlock.
func TestShardedLimitClose(t *testing.T) {
	u := MustParse("Q(x,y,w) <- R1(x,y), R2(y,w).")
	inst := workload.SkewedJoin(2000, 50, 10, 10, 2, 3)
	p, err := NewPlan(u, inst, &PlanOptions{Parallel: true, Shards: 8})
	if err != nil {
		t.Fatal(err)
	}
	it := p.Iterator()
	for i := 0; i < 5; i++ {
		if _, ok := it.Next(); !ok {
			t.Fatal("expected at least 5 answers")
		}
	}
	CloseAnswers(it)
	if _, ok := it.Next(); ok {
		t.Fatal("answer after CloseAnswers")
	}
}

// TestPlanOptionsValidation: invalid combinations are rejected with a typed
// OptionsError instead of degrading to a silent sequential run.
func TestPlanOptionsValidation(t *testing.T) {
	u := MustParse("Q(x) <- R1(x,y).")
	inst := workload.RandomForQuery(u, 10, 5, 1)
	cases := []struct {
		name string
		opts *PlanOptions
	}{
		{"shards-without-parallel", &PlanOptions{Shards: 4}},
		{"negative-shards", &PlanOptions{Parallel: true, Shards: -1}},
		{"batch-without-parallel", &PlanOptions{ParallelBatch: 16}},
		{"negative-batch", &PlanOptions{Parallel: true, ParallelBatch: -2}},
		{"naive-and-constant-delay", &PlanOptions{ForceNaive: true, RequireConstantDelay: true}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := NewPlan(u, inst, tc.opts)
			if err == nil {
				t.Fatal("invalid options accepted")
			}
			var oe *OptionsError
			if !errors.As(err, &oe) {
				t.Fatalf("error %v is not an *OptionsError", err)
			}
			if oe.Field == "" || oe.Reason == "" {
				t.Fatalf("OptionsError missing detail: %+v", oe)
			}
		})
	}
	// The valid combinations still plan.
	for _, opts := range []*PlanOptions{
		nil,
		{Parallel: true},
		{Parallel: true, Shards: 2},
		{Parallel: true, ParallelBatch: 8, Shards: 8},
	} {
		if _, err := NewPlan(u, inst, opts); err != nil {
			t.Fatalf("valid options %+v rejected: %v", opts, err)
		}
	}
}
