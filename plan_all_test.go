package ucq

import (
	"context"
	"runtime"
	"testing"
	"time"
)

// TestPlanAllRangesAnswers pins the range-over-func adapter: All yields
// exactly the iterator's answer set, supports early break, and releases a
// parallel plan's executor workers when the range is abandoned.
func TestPlanAllRangesAnswers(t *testing.T) {
	u := MustParse(catalogExample2)
	inst := example2SmallInstance()

	plan, err := NewPlan(u, inst, nil)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for tup := range plan.All(nil) {
		seen[tup.String()] = true
	}
	if len(seen) != 6 {
		t.Errorf("ranged over %d distinct answers, want 6", len(seen))
	}

	// Early break mid-range.
	n := 0
	for range plan.All(nil) {
		n++
		if n == 2 {
			break
		}
	}
	if n != 2 {
		t.Errorf("early break ranged over %d answers, want 2", n)
	}

	// Abandoning a parallel plan's range must release its workers.
	before := runtime.NumGoroutine()
	pplan, err := NewPlan(u, inst, &PlanOptions{Parallel: true, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		for range pplan.All(nil) {
			break
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before+2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > before+2 {
		t.Errorf("goroutines after 10 abandoned parallel ranges: %d, baseline %d — All leaks workers", g, before)
	}

	// A cancelled context ends the range early without error.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	n = 0
	for range plan.All(ctx) {
		n++
	}
	if n != 0 {
		t.Errorf("cancelled ctx ranged over %d answers, want 0", n)
	}
}
