package ucq

import (
	"sort"
	"testing"
)

// TestOpenCatalogRecoversDatasets drives the durable catalog through its
// lifecycle — register, append, replace, drop — reopening between steps and
// checking each dataset comes back at its exact version with the exact
// answer set a pre-restart query saw.
func TestOpenCatalogRecoversDatasets(t *testing.T) {
	dir := t.TempDir()
	u := MustParse(`Q(x,y) <- R(x,y).`)
	pq, err := Prepare(u, nil)
	if err != nil {
		t.Fatal(err)
	}
	answers := func(ds *Dataset) []string {
		p, err := pq.BindDataset(ds)
		if err != nil {
			t.Fatal(err)
		}
		var out []string
		for tup := range p.All(nil) {
			out = append(out, tup.String())
		}
		sort.Strings(out)
		return out
	}

	cat, st, err := OpenCatalog(dir, CatalogConfig{})
	if err != nil {
		t.Fatal(err)
	}
	inst := NewInstance()
	r := NewRelation("R", 2)
	r.AppendInts(1, 2)
	inst.AddRelation(r)
	ds, err := cat.Register("edges", inst)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ds.AppendRows(map[string][][]int64{"R": {{3, 4}, {5, 6}}}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := cat.Upsert("other", NewInstance()); err != nil {
		t.Fatal(err)
	}
	want := answers(ds)
	wantVersion := ds.Version()
	st.Close()

	// "Restart": a fresh catalog over the same directory.
	cat2, st2, err := OpenCatalog(dir, CatalogConfig{})
	if err != nil {
		t.Fatal(err)
	}
	ds2, ok := cat2.Dataset("edges")
	if !ok {
		t.Fatal("edges not recovered")
	}
	if ds2.Version() != wantVersion {
		t.Fatalf("recovered at version %d, want %d", ds2.Version(), wantVersion)
	}
	if _, ok := cat2.Dataset("other"); !ok {
		t.Fatal("other not recovered")
	}
	got := answers(ds2)
	if len(got) != len(want) {
		t.Fatalf("recovered answers %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("recovered answers %v, want %v", got, want)
		}
	}

	// The recovered catalog keeps journaling: replace + drop survive the
	// next reopen.
	repl := NewInstance()
	rr := NewRelation("R", 2)
	rr.AppendInts(7, 8)
	repl.AddRelation(rr)
	v, err := ds2.Replace(repl)
	if err != nil {
		t.Fatal(err)
	}
	if !cat2.Drop("other") {
		t.Fatal("drop failed")
	}
	st2.Close()

	cat3, st3, err := OpenCatalog(dir, CatalogConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer st3.Close()
	ds3, ok := cat3.Dataset("edges")
	if !ok {
		t.Fatal("edges lost after replace")
	}
	if ds3.Version() != v {
		t.Fatalf("recovered at version %d, want %d", ds3.Version(), v)
	}
	if got := answers(ds3); len(got) != 1 || got[0] != "(7,8)" {
		t.Fatalf("replaced dataset recovered %v, want [(7,8)]", got)
	}
	if _, ok := cat3.Dataset("other"); ok {
		t.Fatal("dropped dataset resurrected")
	}
	if st3.Stats().Recovered != 1 {
		t.Fatalf("Recovered = %d, want 1", st3.Stats().Recovered)
	}
}
