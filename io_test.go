package ucq

import (
	"strings"
	"testing"
)

func TestInstanceFromRows(t *testing.T) {
	inst, err := InstanceFromRows(map[string][][]int64{
		"R": {{1, 2}, {3, 4}},
		"S": {{2, 5}},
	})
	if err != nil {
		t.Fatal(err)
	}
	r := inst.Relation("R")
	if r == nil || r.Arity() != 2 || r.Len() != 2 {
		t.Fatalf("R = %v", r)
	}
	if s := inst.Relation("S"); s == nil || s.Len() != 1 {
		t.Fatalf("S = %v", s)
	}
}

func TestInstanceFromRowsErrors(t *testing.T) {
	cases := []struct {
		name string
		rels map[string][][]int64
		want string
	}{
		{"ragged", map[string][][]int64{"R": {{1, 2}, {3}}}, "expected 2"},
		{"payload overflow", map[string][][]int64{"R": {{1 << 60}}}, "payload range"},
		{"empty relation", map[string][][]int64{"R": {}}, "no rows"},
		{"empty first row", map[string][][]int64{"R": {{}}}, "arity unknown"},
		{"empty name", map[string][][]int64{"": {{1}}}, "empty name"},
	}
	for _, tc := range cases {
		_, err := InstanceFromRows(tc.rels)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want containing %q", tc.name, err, tc.want)
		}
	}
}

func TestReadInstanceJSON(t *testing.T) {
	inst, err := ReadInstanceJSON(strings.NewReader(`{"R": [[1,2],[3,4]], "S": [[2,5]]}`))
	if err != nil {
		t.Fatal(err)
	}
	if inst.Relation("R").Len() != 2 || inst.Relation("S").Len() != 1 {
		t.Fatalf("unexpected instance: %v", inst.Names())
	}
	if _, err := ReadInstanceJSON(strings.NewReader(`{"R": [[1,2`)); err == nil {
		t.Error("truncated JSON should error")
	}
	if _, err := ReadInstanceJSON(strings.NewReader(`{"R": "nope"}`)); err == nil {
		t.Error("non-array rows should error")
	}
}

func TestAppendTupleJSON(t *testing.T) {
	tup := Tuple{V(1), V(-7), TaggedValue(3, 2)}
	got := string(AppendTupleJSON(nil, tup))
	if got != `[1,-7,"3#2"]` {
		t.Errorf("AppendTupleJSON = %s", got)
	}
	if got := string(AppendTupleJSON(nil, Tuple{})); got != "[]" {
		t.Errorf("empty tuple = %s", got)
	}
	// Appending must extend, not overwrite.
	buf := []byte("x")
	if got := string(AppendTupleJSON(buf, Tuple{V(5)})); got != "x[5]" {
		t.Errorf("append = %s", got)
	}
}
