// Benchmarks: one per reproduced table/figure (see DESIGN.md §4 and
// EXPERIMENTS.md). Run with:
//
//	go test -bench=. -benchmem
//
// E1–E4 exercise the upper bounds (constant-delay machinery), E5–E8 the
// lower-bound reductions, E9 the classifier, E10 the Cheater's Lemma
// combinator, F1–F2 the structural figure constructions. The Ablation*
// benchmarks quantify the design choices called out in DESIGN.md.
package ucq

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/database"
	"repro/internal/enumeration"
	"repro/internal/experiments"
	"repro/internal/graph"
	"repro/internal/hypergraph"
	"repro/internal/matrix"
	"repro/internal/paper"
	"repro/internal/reduction"
	"repro/internal/shard"
	"repro/internal/workload"
	"repro/internal/yannakakis"
)

// drain exhausts an iterator, returning the answer count.
func drain(b *testing.B, it Answers) int {
	b.Helper()
	n := 0
	for {
		if _, ok := it.Next(); !ok {
			return n
		}
		n++
	}
}

// BenchmarkE1FreeConnexCQ: CDY preparation + enumeration of a free-connex
// CQ (Theorem 3(1)); answers/op reported as a custom metric.
func BenchmarkE1FreeConnexCQ(b *testing.B) {
	q := MustParseCQ("Q(x,y,w) <- R1(x,y), R2(y,w).")
	inst := workload.Chain([]string{"R1", "R2"}, []int{2, 2}, 5000, 2, 1)
	b.ResetTimer()
	answers := 0
	for i := 0; i < b.N; i++ {
		plan, err := yannakakis.Prepare(q, inst, nil)
		if err != nil {
			b.Fatal(err)
		}
		it := plan.Iterator()
		n := 0
		for it.Next() {
			n++
		}
		answers = n
	}
	b.ReportMetric(float64(answers), "answers/op")
}

// BenchmarkE2UnionTractable: Algorithm 1 on a union of two free-connex
// CQs (Theorem 4).
func BenchmarkE2UnionTractable(b *testing.B) {
	u := MustParse(`
		Q1(x,y,w) <- R1(x,y), R2(y,w).
		Q2(x,y,w) <- R2(x,y), R3(y,w).
	`)
	inst := workload.Chain([]string{"R1", "R2", "R3"}, []int{2, 2, 2}, 5000, 2, 2)
	b.ResetTimer()
	answers := 0
	for i := 0; i < b.N; i++ {
		it, err := core.NewAlgorithmOneUnion(u, inst)
		if err != nil {
			b.Fatal(err)
		}
		answers = drain(b, it)
	}
	b.ReportMetric(float64(answers), "answers/op")
}

// BenchmarkE3Example2Union: the Theorem 12 pipeline on Example 2, against
// the naive evaluator.
func BenchmarkE3Example2Union(b *testing.B) {
	u := MustParse(`
		Q1(x,y,w) <- R1(x,z), R2(z,y), R3(y,w).
		Q2(x,y,w) <- R1(x,y), R2(y,w).
	`)
	inst := workload.Example2Instance(1500, 3, 1)
	cert, ok := core.FindCertificate(u, nil)
	if !ok {
		b.Fatal("no certificate")
	}
	b.Run("constant-delay", func(b *testing.B) {
		answers := 0
		for i := 0; i < b.N; i++ {
			plan, err := core.NewUnionPlan(u, cert, inst)
			if err != nil {
				b.Fatal(err)
			}
			answers = drain(b, plan.Iterator())
		}
		b.ReportMetric(float64(answers), "answers/op")
	})
	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := baseline.EvalUCQ(u, inst); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE4Example13Recursive: the recursive-extension pipeline on
// Example 13 (three intractable CQs).
func BenchmarkE4Example13Recursive(b *testing.B) {
	u := MustParse(`
		Q1(x,y,v,u) <- R1(x,z1), R2(z1,z2), R3(z2,z3), R4(z3,y), R5(y,v,u).
		Q2(x,y,v,u) <- R1(x,y), R2(y,v), R3(v,z1), R4(z1,u), R5(u,t1,t2).
		Q3(x,y,v,u) <- R1(x,z1), R2(z1,y), R3(y,v), R4(v,u), R5(u,t1,t2).
	`)
	inst := workload.Example13Instance(800, 2, 1)
	cert, ok := core.FindCertificate(u, nil)
	if !ok {
		b.Fatal("no certificate")
	}
	b.ResetTimer()
	answers := 0
	for i := 0; i < b.N; i++ {
		plan, err := core.NewUnionPlan(u, cert, inst)
		if err != nil {
			b.Fatal(err)
		}
		answers = drain(b, plan.Iterator())
	}
	b.ReportMetric(float64(answers), "answers/op")
}

// BenchmarkE5MatMulShape: Boolean matrix multiplication directly vs
// through the Lemma 25 encoding of Example 20.
func BenchmarkE5MatMulShape(b *testing.B) {
	u := MustParse(`
		Q1(x,y,v) <- R1(x,z), R2(z,y), R3(y,v), R4(v,w).
		Q2(x,y,v) <- R1(w,v), R2(v,y), R3(y,z), R4(z,x).
	`)
	enc, err := reduction.NewMatMulEncoding(u)
	if err != nil {
		b.Fatal(err)
	}
	n := 64
	a := matrix.Random(n, 0.4, 1)
	bm := matrix.Random(n, 0.4, 2)
	b.Run("direct", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			a.Multiply(bm)
		}
	})
	b.Run("via-ucq", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			inst := enc.Instance(a, bm)
			answers, err := baseline.EvalUCQ(u, inst)
			if err != nil {
				b.Fatal(err)
			}
			got := enc.DecodeProduct(answers, n)
			if !got.Equal(a.Multiply(bm)) {
				b.Fatal("product mismatch")
			}
		}
	})
}

// BenchmarkE6TriangleDecide: triangle detection directly vs through the
// Example 18 union.
func BenchmarkE6TriangleDecide(b *testing.B) {
	g := graph.ErdosRenyi(128, 2.5/128.0, 1)
	graph.PlantClique(g, 3, 2)
	u := reduction.Example18Query()
	b.Run("direct", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if !g.HasTriangle() {
				b.Fatal("triangle missing")
			}
		}
	})
	b.Run("via-ucq", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			inst := reduction.Example18Instance(g)
			answers, err := baseline.EvalUCQ(u, inst)
			if err != nil {
				b.Fatal(err)
			}
			if len(reduction.Example18DecodeTriangles(answers)) == 0 {
				b.Fatal("triangle missing via UCQ")
			}
		}
	})
}

// BenchmarkE7FourCliqueGadget: 4-clique detection through the Example 22
// gadget.
func BenchmarkE7FourCliqueGadget(b *testing.B) {
	g := graph.ErdosRenyi(24, 0.3, 3)
	graph.PlantClique(g, 4, 4)
	u := reduction.Example22Query()
	b.Run("direct", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if !g.HasFourClique() {
				b.Fatal("clique missing")
			}
		}
	})
	b.Run("via-ucq", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			inst, _ := reduction.Example22Instance(g)
			answers, err := baseline.EvalUCQ(u, inst)
			if err != nil {
				b.Fatal(err)
			}
			if !reduction.Example22HasFourClique(g, answers) {
				b.Fatal("clique missing via UCQ")
			}
		}
	})
}

// BenchmarkE8UnionGuardK4: 4-clique detection through the Example 31
// star union.
func BenchmarkE8UnionGuardK4(b *testing.B) {
	g := graph.ErdosRenyi(24, 0.3, 5)
	graph.PlantClique(g, 4, 6)
	u := reduction.Example31Query()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inst := reduction.Example31Instance(g)
		answers, err := baseline.EvalUCQ(u, inst)
		if err != nil {
			b.Fatal(err)
		}
		if !reduction.Example31HasFourClique(g, answers) {
			b.Fatal("clique missing via UCQ")
		}
	}
}

// BenchmarkE9ClassifyGallery: classify every worked example of the paper.
func BenchmarkE9ClassifyGallery(b *testing.B) {
	gallery := paper.Gallery()
	queries := make([]*UCQ, len(gallery))
	for i, ex := range gallery {
		queries[i] = ex.Query()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, q := range queries {
			if _, err := Classify(q); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkE10CheatersLemma: the Lemma 5 discrete-step simulation.
func BenchmarkE10CheatersLemma(b *testing.B) {
	mk := func(i int) database.Tuple { return database.Tuple{database.V(int64(i))} }
	events := enumeration.BurstyEvents(2000, 3, 5, 20000, mk)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wrapped := enumeration.SimulateCheater(events, 5, 20006, 6, 3)
		if len(wrapped) != 2000 {
			b.Fatal("lost results")
		}
	}
}

// BenchmarkF1ConnexTree: the Figure 1 ext-S-connex tree construction.
func BenchmarkF1ConnexTree(b *testing.B) {
	h := hypergraph.FromVarSets(
		NewVarSet("v", "w"), NewVarSet("w", "y", "z"), NewVarSet("x", "y"))
	s := NewVarSet("x", "y", "z")
	for i := 0; i < b.N; i++ {
		if _, err := hypergraph.BuildConnexTree(h, s); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkF2Example2Certificate: certificate search for Example 2
// (Figure 2's union extension).
func BenchmarkF2Example2Certificate(b *testing.B) {
	u := MustParse(`
		Q1(x,y,w) <- R1(x,z), R2(z,y), R3(y,w).
		Q2(x,y,w) <- R1(x,y), R2(y,w).
	`)
	for i := 0; i < b.N; i++ {
		if _, ok := FindCertificate(u, nil); !ok {
			b.Fatal("no certificate")
		}
	}
}

// BenchmarkAblationCheaterVsAlgorithmOne compares the two union strategies
// the paper offers for tractable unions: the Cheater-wrapped chain
// (Theorem 12 pipeline) vs Algorithm 1 (constant memory, no dedup table).
func BenchmarkAblationCheaterVsAlgorithmOne(b *testing.B) {
	u := MustParse(`
		Q1(x,y,w) <- R1(x,y), R2(y,w).
		Q2(x,y,w) <- R2(x,y), R3(y,w).
	`)
	inst := workload.Chain([]string{"R1", "R2", "R3"}, []int{2, 2, 2}, 3000, 2, 7)
	cert, ok := core.FindCertificate(u, nil)
	if !ok {
		b.Fatal("no certificate")
	}
	b.Run("cheater-pipeline", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			plan, err := core.NewUnionPlan(u, cert, inst)
			if err != nil {
				b.Fatal(err)
			}
			drain(b, plan.Iterator())
		}
	})
	b.Run("algorithm-one", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			it, err := core.NewAlgorithmOneUnion(u, inst)
			if err != nil {
				b.Fatal(err)
			}
			drain(b, it)
		}
	})
}

// BenchmarkAblationCDYVsNaiveCQ isolates the constant-delay engine's win
// on a single free-connex CQ with a large output.
func BenchmarkAblationCDYVsNaiveCQ(b *testing.B) {
	q := MustParseCQ("Q(x) <- R1(x,y), R2(y,w).")
	inst := workload.Chain([]string{"R1", "R2"}, []int{2, 2}, 2000, 4, 8)
	b.Run("cdy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			plan, err := yannakakis.Prepare(q, inst, nil)
			if err != nil {
				b.Fatal(err)
			}
			it := plan.Iterator()
			for it.Next() {
			}
		}
	})
	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := baseline.EvalCQ(q, inst); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkExperimentSuiteQuick runs the entire experiment harness in
// quick mode (the end-to-end regeneration path of EXPERIMENTS.md).
func BenchmarkExperimentSuiteQuick(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.RunAll(experiments.Config{Quick: true})
	}
}

// BenchmarkAblationDedupTupleSetVsStringKey isolates the tuple-key layer:
// the union dedup that every answer passes through, as a string-keyed map
// (one key allocation per probe) vs the hashed, arena-backed TupleSet. Run
// with -benchmem: the TupleSet side should show fewer ns/op and allocs/op.
func BenchmarkAblationDedupTupleSetVsStringKey(b *testing.B) {
	const n, arity = 20000, 3
	tuples := make([]database.Tuple, n)
	for i := range tuples {
		// Every other tuple repeats its predecessor: a 50% duplicate rate,
		// the regime the Cheater's Lemma combinator lives in.
		j := int64(i - i%2)
		tuples[i] = database.Tuple{database.V(j), database.V(j * 31), database.V(j % 97)}
	}
	b.Run("string-key", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			seen := make(map[string]bool, n)
			fresh := 0
			for _, t := range tuples {
				k := t.Key()
				if !seen[k] {
					seen[k] = true
					fresh++
				}
			}
			if fresh != n/2 {
				b.Fatal("bad dedup")
			}
		}
	})
	b.Run("tupleset", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			seen := database.NewTupleSet(n)
			fresh := 0
			for _, t := range tuples {
				if seen.Insert(t) {
					fresh++
				}
			}
			if fresh != n/2 {
				b.Fatal("bad dedup")
			}
		}
	})
}

// BenchmarkE12UnionParallelVsSequential: the Theorem 12 pipeline's two
// enumeration modes over one prepared plan — the sequential Cheater-wrapped
// chain vs the per-branch worker merge. Preparation is excluded: the
// comparison is pure enumeration throughput.
func BenchmarkE12UnionParallelVsSequential(b *testing.B) {
	u := MustParse(`
		Q1(x,y,v,u) <- R1(x,z1), R2(z1,z2), R3(z2,z3), R4(z3,y), R5(y,v,u).
		Q2(x,y,v,u) <- R1(x,y), R2(y,v), R3(v,z1), R4(z1,u), R5(u,t1,t2).
		Q3(x,y,v,u) <- R1(x,z1), R2(z1,y), R3(y,v), R4(v,u), R5(u,t1,t2).
	`)
	inst := workload.Example13Instance(800, 2, 1)
	cert, ok := core.FindCertificate(u, nil)
	if !ok {
		b.Fatal("no certificate")
	}
	plan, err := core.NewUnionPlan(u, cert, inst)
	if err != nil {
		b.Fatal(err)
	}
	want := drain(b, plan.Iterator())
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if got := drain(b, plan.Iterator()); got != want {
				b.Fatalf("answers = %d, want %d", got, want)
			}
		}
		b.ReportMetric(float64(want), "answers/op")
	})
	b.Run("parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if got := drain(b, plan.IteratorParallel(0)); got != want {
				b.Fatalf("answers = %d, want %d", got, want)
			}
		}
		b.ReportMetric(float64(want), "answers/op")
	})
}

// BenchmarkE13NaiveUnionParallel: the naive evaluator's sequential vs
// parallel member-CQ evaluation on an intractable union.
func BenchmarkE13NaiveUnionParallel(b *testing.B) {
	u := MustParse(`
		Q1(x,y) <- R1(x,z), R2(z,y).
		Q2(x,y) <- R2(x,z), R1(z,y).
		Q3(x,y) <- R1(x,z), R1(z,y).
	`)
	inst := workload.Chain([]string{"R1", "R2"}, []int{2, 2}, 3000, 3, 9)
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := baseline.EvalUCQ(u, inst); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := baseline.EvalUCQParallel(u, inst); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE14ShardedSkewedBranch: sharded enumeration of a single skewed
// heavy CQ branch against the per-branch-only parallel merge. The instance
// concentrates the output on one join key (the unbalanced regime of
// Bringmann & Carmeli), so per-branch parallelism has exactly one worker to
// give the branch. Sharding partitions the branch on a head variable, which
// (a) fans the work across one CDY plan per shard and (b) proves the shard
// streams pairwise disjoint, letting the merge skip its per-answer dedup
// probe and arena copy — the sharded mode wins even on one core, and scales
// with cores on top. Preparation is excluded: the comparison is pure
// enumeration throughput over one prepared plan.
func BenchmarkE14ShardedSkewedBranch(b *testing.B) {
	u := MustParse("Q(x,y,w) <- R1(x,y), R2(y,w).")
	// ~1.0M answers: 16000·60 on the heavy key plus 99·160·3 elsewhere.
	inst := workload.SkewedJoin(16000, 60, 99, 160, 3, 1)
	cert, ok := core.FindCertificate(u, nil)
	if !ok {
		b.Fatal("no certificate")
	}
	plan, err := core.NewUnionPlan(u, cert, inst)
	if err != nil {
		b.Fatal(err)
	}
	want := 16000*60 + 99*160*3
	b.Run("per-branch-parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if got := drain(b, plan.IteratorParallel(0)); got != want {
				b.Fatalf("answers = %d, want %d", got, want)
			}
		}
		b.ReportMetric(float64(want), "answers/op")
	})
	for _, n := range []int{1, 8} {
		if err := plan.PrepareShards(n); err != nil {
			b.Fatal(err)
		}
		if !plan.ShardedDisjoint() {
			b.Fatal("sharding not recognised as disjoint")
		}
		b.Run(fmt.Sprintf("shards=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				it, err := plan.IteratorParallelSharded(0)
				if err != nil {
					b.Fatal(err)
				}
				if got := drain(b, it); got != want {
					b.Fatalf("answers = %d, want %d", got, want)
				}
			}
			b.ReportMetric(float64(want), "answers/op")
		})
	}
}

// headStream adapts a CDY plan iterator to the enumeration interface as
// one indivisible stream — the benchmark stand-in for the pre-executor
// per-branch/per-shard worker model, where the unit of parallelism was
// fixed at plan time.
type headStream struct{ it *yannakakis.Iterator }

func (h *headStream) Next() (Tuple, bool) {
	if !h.it.Next() {
		return nil, false
	}
	return h.it.HeadTuple(), true
}

func (h *headStream) NextBatch(buf []Value, max int) ([]Value, int) {
	n := 0
	for n < max && h.it.Next() {
		buf = h.it.AppendHead(buf)
		n++
	}
	return buf, n
}

// BenchmarkE16WorkStealingSkew: the work-stealing executor against the
// per-branch-worker model on a self-join with ~91% output skew — the
// regime where sharding is powerless twice over. The query
// Q(x,y,w) <- R2(x,y), R2(y,w) places every variable at conflicting
// columns of R2, so the shard planner has no safe partition attribute and
// the whole branch lands on a single worker no matter how many shards or
// branch workers are configured; the instance concentrates ~10⁶ of the
// ~1.1M answers on one join key on top. The executor instead slices the
// plan's root rows into range tasks, steals and re-splits them, and (the
// union having one member and no bonus answers) merges disjointly without
// dedup — so worksteal-8 scales with cores where per-branch-worker-8
// leaves seven workers idle. On a single-core machine the two are on par;
// the ≥2x separation shows from ~4 cores up.
func BenchmarkE16WorkStealingSkew(b *testing.B) {
	u := MustParse("Q(x,y,w) <- R2(x,y), R2(y,w).")
	q := u.CQs[0]
	// 10⁶ answers on the heavy key + 110·30² light: 91% output skew.
	inst := workload.SelfJoinSkew(1000, 1000, 110, 30, 1)
	want := 1000*1000 + 110*30*30
	if cands := shard.Candidates(q, inst); len(cands) != 0 {
		b.Fatalf("self-join unexpectedly has %d safe partition attributes; the skew premise is void", len(cands))
	}
	cert, ok := core.FindCertificate(u, nil)
	if !ok {
		b.Fatal("no certificate")
	}
	plan, err := core.NewUnionPlan(u, cert, inst)
	if err != nil {
		b.Fatal(err)
	}
	engine, err := yannakakis.Prepare(q, inst, nil)
	if err != nil {
		b.Fatal(err)
	}

	// The pre-executor model with 8 configured workers: the branch is one
	// indivisible stream, so they all serialise on the one that owns it.
	// (No -N suffix in sub-benchmark names: benchgate strips a trailing
	// -<digits> as the GOMAXPROCS suffix.)
	b.Run("per-branch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			it := enumeration.NewParallelUnionOpts(3, enumeration.UnionOptions{
				Workers:  8,
				Disjoint: true, // single duplicate-free branch, as the sharded fallback proved
			}, &headStream{it: engine.Iterator()})
			if got := drain(b, it); got != want {
				b.Fatalf("answers = %d, want %d", got, want)
			}
		}
		b.ReportMetric(float64(want), "answers/op")
	})
	for _, wk := range []int{1, 2, 8} {
		b.Run(fmt.Sprintf("worksteal/workers=%d", wk), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				it := plan.IteratorParallelCtx(context.Background(), core.ExecOptions{Workers: wk})
				if got := drain(b, it); got != want {
					b.Fatalf("answers = %d, want %d", got, want)
				}
			}
			b.ReportMetric(float64(want), "answers/op")
		})
	}
}

// BenchmarkE11FunctionalDependencies: the Remark 2 FD-extension route on
// the mat-mul query.
func BenchmarkE11FunctionalDependencies(b *testing.B) {
	q := MustParseCQ("Q(x,y) <- R1(x,z), R2(z,y).")
	fds := MustFDSet(FD{Rel: "R1", From: []int{0}, To: 1})
	inst := NewInstance()
	r1 := NewRelation("R1", 2)
	for x := int64(0); x < 5000; x++ {
		r1.AppendInts(x, x%64)
	}
	inst.AddRelation(r1)
	r2 := NewRelation("R2", 2)
	for z := int64(0); z < 64; z++ {
		for y := int64(0); y < 40; y++ {
			r2.AppendInts(z, y)
		}
	}
	inst.AddRelation(r2)
	b.ResetTimer()
	answers := 0
	for i := 0; i < b.N; i++ {
		it, err := EnumerateCQWithFDs(q, fds, inst)
		if err != nil {
			b.Fatal(err)
		}
		n := 0
		for {
			if _, ok := it.Next(); !ok {
				break
			}
			n++
		}
		answers = n
	}
	b.ReportMetric(float64(answers), "answers/op")
}

// BenchmarkE15UnionPrepareVsBind quantifies the split the server's
// prepared-plan cache exploits: "prepare" pays the instance-independent
// work (redundancy removal + certificate search) on every request, "bind"
// only the per-instance Theorem 12 preprocessing from a cached
// PreparedQuery — the cost of a cache hit.
func BenchmarkE15UnionPrepareVsBind(b *testing.B) {
	u := MustParse(`
		Q1(x,y,w) <- R1(x,z), R2(z,y), R3(y,w).
		Q2(x,y,w) <- R1(x,y), R2(y,w).
	`)
	inst := workload.Example2Instance(400, 3, 1)
	b.Run("prepare", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := Prepare(u, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	pq, err := Prepare(u, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("bind", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := pq.Bind(inst); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("prepare+bind+drain", func(b *testing.B) {
		answers := 0
		for i := 0; i < b.N; i++ {
			plan, err := NewPlan(u, inst, nil)
			if err != nil {
				b.Fatal(err)
			}
			answers = drain(b, plan.Iterator())
		}
		b.ReportMetric(float64(answers), "answers/op")
	})
}

// BenchmarkE17BindDatasetCached quantifies the win of the catalog's bind
// cache on a 10⁶-tuple instance: "cold" is the per-request cost before
// the dataset API — the full Theorem 12 preprocessing on every bind —
// and "cached" is a BindDataset served from the bind cache, which skips
// the linear pass entirely (a lookup plus one Plan allocation). The
// acceptance bar is cached ≥ 10x faster than cold; in practice the gap
// is orders of magnitude.
func BenchmarkE17BindDatasetCached(b *testing.B) {
	u := MustParse(`
		Q1(x,y,w) <- R1(x,z), R2(z,y), R3(y,w).
		Q2(x,y,w) <- R1(x,y), R2(y,w).
	`)
	inst := workload.Example2Instance(170000, 2, 1)
	if n := inst.TupleCount(); n < 1_000_000 {
		b.Fatalf("instance has %d tuples, want ≥ 10⁶", n)
	}
	pq, err := Prepare(u, nil)
	if err != nil {
		b.Fatal(err)
	}
	cat := NewCatalog()
	ds, err := cat.Register("bench", inst)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := pq.Bind(inst); err != nil {
				b.Fatal(err)
			}
		}
	})
	if _, err := pq.BindDataset(ds); err != nil { // warm the cache
		b.Fatal(err)
	}
	b.Run("cached", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p, err := pq.BindDataset(ds)
			if err != nil {
				b.Fatal(err)
			}
			if !p.BindCacheHit() {
				b.Fatal("expected a bind-cache hit")
			}
		}
	})
}

// BenchmarkE18AutoModeSelection: the cost-based Auto planner against
// hand-picked execution modes across the three instance regimes it
// navigates — tiny (where any parallelism is overhead), uniform (where
// disjoint sharding wins on multi-core), and skewed (where work stealing
// beats sharding). Each arm times bind + drain, so Auto pays for its own
// decision probe (the counting pass and the output-skew samples) inside
// the measurement. The claim the gate watches: auto tracks the best
// hand-picked mode per regime and never the worst.
func BenchmarkE18AutoModeSelection(b *testing.B) {
	u := MustParse("Q(x,y,w) <- R1(x,y), R2(y,w).")
	pq, err := Prepare(u, nil)
	if err != nil {
		b.Fatal(err)
	}
	instances := []struct {
		name string
		inst *Instance
	}{
		// ~160 answers: below every parallel threshold.
		{"tiny", workload.SkewedJoin(4, 4, 12, 4, 3, 1)},
		// 100 balanced keys, 48k answers: the disjoint-sharding regime.
		{"uniform", workload.SkewedJoin(160, 3, 99, 160, 3, 1)},
		// ~1M answers, ~96% on one key: sharding would starve, work
		// stealing re-splits (the E14/E16 skew regime).
		{"skewed", workload.SkewedJoin(16000, 60, 99, 160, 3, 1)},
	}
	modes := []struct {
		name string
		opts *PlanOptions
	}{
		{"auto", &PlanOptions{Auto: true}},
		{"sequential", nil},
		{"parallel", &PlanOptions{Parallel: true}},
		{"sharded-8", &PlanOptions{Parallel: true, Shards: 8}},
	}
	for _, in := range instances {
		seq, err := pq.Bind(in.inst)
		if err != nil {
			b.Fatal(err)
		}
		want := seq.Count()
		for _, m := range modes {
			b.Run(in.name+"/"+m.name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					p, err := pq.BindExec(in.inst, m.opts)
					if err != nil {
						b.Fatal(err)
					}
					if got := drain(b, p.Iterator()); got != want {
						b.Fatalf("answers = %d, want %d", got, want)
					}
				}
				b.ReportMetric(float64(want), "answers/op")
			})
		}
	}
}

// BenchmarkE20SpilledDedup: the parallel merge's dedup set held in memory
// vs spilled to the disk-backed open-addressed table — the price of
// bounding resident answer memory on an answer set that exceeds the
// budget. Both arms drain the same prepared plan; the spilled arm's
// budget forces the migration almost immediately, so nearly the whole set
// dedups through disk.
func BenchmarkE20SpilledDedup(b *testing.B) {
	u := MustParse(`
		Q1(x,y) <- R(x,y).
		Q2(x,y) <- S(x,y).
	`)
	// Half-overlapping branches: 12k distinct answers, 4k duplicates the
	// dedup set must actually catch in either representation.
	inst := NewInstance()
	r := NewRelation("R", 2)
	s := NewRelation("S", 2)
	for i := int64(0); i < 8000; i++ {
		r.AppendInts(i, i+1)
		s.AppendInts(i+4000, i+4001)
	}
	inst.AddRelation(r)
	inst.AddRelation(s)
	pq, err := Prepare(u, nil)
	if err != nil {
		b.Fatal(err)
	}
	const want = 12000
	arms := []struct {
		name string
		opts *PlanOptions
	}{
		{"in-memory", &PlanOptions{Parallel: true}},
		{"spilled", &PlanOptions{Parallel: true, DedupBudget: 512, SpillDir: b.TempDir()}},
	}
	for _, arm := range arms {
		b.Run(arm.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p, err := pq.BindExec(inst, arm.opts)
				if err != nil {
					b.Fatal(err)
				}
				if got := drain(b, p.Iterator()); got != want {
					b.Fatalf("answers = %d, want %d", got, want)
				}
			}
			b.ReportMetric(float64(want), "answers/op")
		})
	}
}
