package ucq

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/database"
	"repro/internal/vcache"
)

// This file is the dataset catalog layer: the paper splits enumeration
// cost into instance-dependent preprocessing (Theorem 12's linear pass)
// and constant-delay output, and a catalog is the API shape that lets a
// long-lived process pay the first half once per (query, dataset) instead
// of once per request. A Catalog holds named, versioned datasets whose
// snapshots are immutable — writers install a new snapshot, readers are
// never blocked — and a bind cache keyed on (prepared-query fingerprint,
// dataset name, version, shards) that serves the per-instance half of
// planning: the second BindDataset for the same (query, dataset) skips the
// Theorem 12 pass entirely and goes straight to constant-delay
// enumeration.

// DefaultBindCacheSize is the bind-cache capacity used when CatalogConfig
// leaves it zero.
const DefaultBindCacheSize = 256

// DefaultAppendLogSize is the per-dataset append-log window used when
// CatalogConfig leaves it zero: how many consecutive append deltas a
// dataset retains for incremental subscription catch-up before the oldest
// is compacted away (forcing lagging subscribers to resync from a full
// evaluation).
const DefaultAppendLogSize = 32

// Version identifies one immutable snapshot of a dataset: 1 after
// Register, bumped by every Replace or AppendRows. It aliases uint64 so
// existing callers are unaffected; the delta-maintenance API uses the name
// to make version arguments self-describing.
type Version = uint64

// CatalogConfig tunes a Catalog.
type CatalogConfig struct {
	// BindCacheSize caps the bind cache (entries; 0 = DefaultBindCacheSize).
	BindCacheSize int
	// BindCacheTTL expires cached binds this long after they were computed
	// (0 = never). Expired binds are recomputed on the next BindDataset.
	BindCacheTTL time.Duration
	// AppendLogSize caps each dataset's append-delta log (entries; 0 =
	// DefaultAppendLogSize, negative = retain nothing, forcing every
	// subscription catch-up to resync). The log is what lets a subscriber
	// that missed several versions catch up incrementally; compaction past
	// the cap degrades it to a resync, never to unbounded memory.
	AppendLogSize int
}

// Journal receives every catalog mutation before it is installed, for
// durable storage: a mutation is acknowledged to the caller only after the
// journal accepted it, and a journal error fails the mutation with the
// in-memory state unchanged. internal/storage.Store implements it; see
// OpenCatalog. The version arguments are the versions the mutations
// install, so replay can reconstruct each dataset at its exact version.
type Journal interface {
	LogRegister(name string, version uint64, inst *Instance) error
	LogReplace(name string, version uint64, inst *Instance) error
	LogAppend(name string, version uint64, rels map[string][][]int64) error
	LogDrop(name string) error
}

// Catalog is a registry of named, versioned datasets sharing one bind
// cache. All methods are safe for concurrent use.
type Catalog struct {
	mu       sync.RWMutex
	datasets map[string]*Dataset
	binds    *vcache.Cache[*boundQuery]
	// journal, when non-nil, makes mutations durable; see Journal.
	journal Journal
	// gen hands every registration a catalog-unique id: a name that is
	// dropped and re-registered starts again at version 1, and the
	// generation in the bind key is what keeps the new dataset's binds
	// apart from any still-in-flight fills against the old one.
	gen atomic.Uint64
	// appendLog is the per-dataset delta-log capacity (resolved from
	// CatalogConfig.AppendLogSize; < 0 retains nothing).
	appendLog int
}

// NewCatalog builds an empty catalog with default configuration.
func NewCatalog() *Catalog {
	return NewCatalogConfig(CatalogConfig{})
}

// NewCatalogConfig builds an empty catalog with the given configuration.
func NewCatalogConfig(cfg CatalogConfig) *Catalog {
	if cfg.BindCacheSize <= 0 {
		cfg.BindCacheSize = DefaultBindCacheSize
	}
	logCap := cfg.AppendLogSize
	switch {
	case logCap == 0:
		logCap = DefaultAppendLogSize
	case logCap < 0:
		logCap = 0
	}
	return &Catalog{
		datasets:  make(map[string]*Dataset),
		binds:     vcache.New[*boundQuery](cfg.BindCacheSize, cfg.BindCacheTTL),
		appendLog: logCap,
	}
}

// Register adds inst under name at version 1 and returns the dataset. The
// instance is adopted as an immutable snapshot: the caller must not mutate
// it (or any of its relations) afterwards. Registering an existing name
// fails; use Dataset to look it up and Replace to swap its contents.
func (c *Catalog) Register(name string, inst *Instance) (*Dataset, error) {
	if name == "" {
		return nil, fmt.Errorf("ucq: dataset name must be non-empty")
	}
	ds := &Dataset{name: name, cat: c, gen: c.gen.Add(1)}
	ds.snap.Store(newSnapshot(name, 1, inst))
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.datasets[name]; ok {
		return nil, fmt.Errorf("ucq: dataset %q already registered", name)
	}
	if c.journal != nil {
		if err := c.journal.LogRegister(name, 1, inst); err != nil {
			return nil, err
		}
	}
	c.datasets[name] = ds
	return ds, nil
}

// Upsert registers name (at version 1) or replaces the existing
// registration's contents (version bump), returning the dataset and
// whether it was created. The lookup-or-create is atomic under the
// catalog lock — two concurrent Upserts of a new name never register
// twice, and the created flag is exact — while the replace write itself
// runs outside it, so a slow snapshot swap never stalls unrelated catalog
// lookups.
func (c *Catalog) Upsert(name string, inst *Instance) (ds *Dataset, created bool, err error) {
	if name == "" {
		return nil, false, fmt.Errorf("ucq: dataset name must be non-empty")
	}
	c.mu.Lock()
	ds, ok := c.datasets[name]
	if !ok {
		if c.journal != nil {
			if err := c.journal.LogRegister(name, 1, inst); err != nil {
				c.mu.Unlock()
				return nil, false, err
			}
		}
		ds = &Dataset{name: name, cat: c, gen: c.gen.Add(1)}
		ds.snap.Store(newSnapshot(name, 1, inst))
		c.datasets[name] = ds
		c.mu.Unlock()
		return ds, true, nil
	}
	c.mu.Unlock()
	if _, err := ds.Replace(inst); err != nil {
		return nil, false, err
	}
	return ds, false, nil
}

// Dataset looks up a registered dataset by name.
func (c *Catalog) Dataset(name string) (*Dataset, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	ds, ok := c.datasets[name]
	return ds, ok
}

// Drop removes the dataset and purges its cached binds, reporting whether
// it existed. Plans already bound to one of its snapshots keep working —
// snapshots are immutable and outlive the registration. Dropping durable
// state is best-effort: the in-memory registration goes away regardless,
// and a drop the journal missed resurfaces the dataset on the next
// recovery rather than losing anything.
func (c *Catalog) Drop(name string) bool {
	c.mu.Lock()
	ds, ok := c.datasets[name]
	delete(c.datasets, name)
	if ok && c.journal != nil {
		_ = c.journal.LogDrop(name)
	}
	c.mu.Unlock()
	if ok {
		c.purgeBinds(name)
		if ds != nil {
			ds.notify(ds.Version())
		}
	}
	return ok
}

// DatasetInfo describes one registered dataset.
type DatasetInfo struct {
	// Name is the registration name.
	Name string
	// Version counts snapshot installations (1 after Register).
	Version uint64
	// Rows is the snapshot's total tuple count across relations.
	Rows int
	// Relations is the snapshot's relation count.
	Relations int
}

// List returns every registered dataset's current version and size, sorted
// by name.
func (c *Catalog) List() []DatasetInfo {
	c.mu.RLock()
	out := make([]DatasetInfo, 0, len(c.datasets))
	for _, ds := range c.datasets {
		out = append(out, ds.Info())
	}
	c.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// BindCacheStats is a point-in-time snapshot of the catalog's bind-cache
// counters (Hits, Misses, Evictions, Expirations, Size, Capacity). Misses
// count Theorem 12 preprocessing runs; hits count binds served without
// one.
type BindCacheStats = vcache.Stats

// BindCacheStats snapshots the bind-cache counters.
func (c *Catalog) BindCacheStats() BindCacheStats {
	return c.binds.Stats()
}

// purgeBinds drops every cached bind of the named dataset (any version).
func (c *Catalog) purgeBinds(name string) {
	prefix := name + "\x00"
	c.binds.DeleteFunc(func(key string) bool { return strings.HasPrefix(key, prefix) })
}

// Dataset is one named, versioned dataset of a catalog. Its contents are
// reached through immutable snapshots: Replace and AppendRows install a
// new snapshot under a bumped version while readers — including in-flight
// enumerations — keep the snapshot they started with and are never
// blocked. All methods are safe for concurrent use.
type Dataset struct {
	name string
	// cat owns the bind cache; nil for the anonymous one-shot datasets the
	// inline-instance API wraps (those never cache their binds).
	cat *Catalog
	// gen is the catalog-unique registration id (see Catalog.gen).
	gen uint64
	// wmu serializes writers (Replace, AppendRows).
	wmu  sync.Mutex
	snap atomic.Pointer[snapshot]

	// Append-delta log for incremental subscription catch-up. logBase is
	// the snapshot just before the oldest retained entry; together they
	// cover every version in [logBase.version, head] as long as the log is
	// contiguous. Compaction (cap overflow) advances logBase; Replace
	// clears the log entirely (a replace is not a delta). Guarded by logMu,
	// nested inside wmu on the write path.
	logMu   sync.Mutex
	log     []appendDelta
	logBase *snapshot

	// subs holds the live subscriptions to notify after every snapshot
	// installation (append, replace) and on drop. Guarded by subMu.
	subMu sync.Mutex
	subs  map[*Subscription]struct{}
}

// appendDelta is one retained AppendRows outcome: the relations' appended
// rows (possibly empty — recorded anyway so the log stays contiguous) and
// the snapshot the append installed.
type appendDelta struct {
	version uint64
	rels    map[string]*database.Relation
	snap    *snapshot
}

// snapshot is one immutable (version, instance) pair.
type snapshot struct {
	name    string
	version uint64
	inst    *Instance
}

// newSnapshot builds a snapshot.
func newSnapshot(name string, version uint64, inst *Instance) *snapshot {
	return &snapshot{name: name, version: version, inst: inst}
}

// anonymousDataset wraps an inline instance as a one-shot dataset with no
// catalog (and therefore no bind cache) — the shape the legacy NewPlan /
// Bind / POST /query path reduces to. Version 0 marks the bind as
// dataset-less in the plan's provenance.
func anonymousDataset(inst *Instance) *Dataset {
	ds := &Dataset{}
	ds.snap.Store(newSnapshot("", 0, inst))
	return ds
}

// Name returns the dataset's registration name.
func (ds *Dataset) Name() string { return ds.name }

// Version returns the current snapshot's version.
func (ds *Dataset) Version() uint64 { return ds.snap.Load().version }

// Instance returns the current snapshot's instance. It must be treated as
// read-only.
func (ds *Dataset) Instance() *Instance { return ds.snap.Load().inst }

// Info returns the dataset's current version and size.
func (ds *Dataset) Info() DatasetInfo {
	s := ds.snap.Load()
	return DatasetInfo{
		Name:      ds.name,
		Version:   s.version,
		Rows:      s.inst.TupleCount(),
		Relations: len(s.inst.Names()),
	}
}

// Replace installs inst as the dataset's new snapshot and returns the new
// version. The instance is adopted: the caller must not mutate it
// afterwards. Cached binds of older versions are purged; in-flight
// enumerations keep the snapshot they were bound to. With a durable
// catalog the replacement is journaled (and fsynced) before it is
// installed; a journal error leaves the dataset unchanged.
func (ds *Dataset) Replace(inst *Instance) (uint64, error) {
	ds.wmu.Lock()
	v := ds.snap.Load().version + 1
	if ds.cat != nil && ds.cat.journal != nil {
		if err := ds.cat.journal.LogReplace(ds.name, v, inst); err != nil {
			ds.wmu.Unlock()
			return 0, err
		}
	}
	ds.snap.Store(newSnapshot(ds.name, v, inst))
	ds.clearLog()
	ds.wmu.Unlock()
	if ds.cat != nil {
		ds.cat.purgeBinds(ds.name)
	}
	ds.notify(v)
	return v, nil
}

// AppendRows copy-on-write-appends rows to the named relations and
// installs the result as a new snapshot, returning the new version. Only
// the touched relations are copied; untouched ones are shared with the
// previous snapshot. Relations not present yet are created with the arity
// of their first row. Rows are validated like the wire codec's
// (InstanceFromRows): consistent arity, payload-range-checked values. On
// error the dataset is unchanged.
//
// Validation runs before the writer lock is taken, against the then-current
// snapshot, so a large bad payload is rejected without ever serializing
// concurrent Replace/AppendRows behind it; only the cheap arity expectation
// is re-checked under the lock (a concurrent writer may have changed a
// relation's shape between validation and acquisition). With a durable
// catalog the delta is journaled (and fsynced) before it is installed.
func (ds *Dataset) AppendRows(rels map[string][][]int64) (uint64, error) {
	names := make([]string, 0, len(rels))
	for name := range rels {
		names = append(names, name)
	}
	sort.Strings(names)

	pre := ds.snap.Load().inst
	arities := make(map[string]int, len(names))
	for _, name := range names {
		rows := rels[name]
		if name == "" {
			return 0, fmt.Errorf("ucq: relation with empty name")
		}
		if len(rows) == 0 {
			continue
		}
		arity := len(rows[0])
		if old := pre.Relation(name); old != nil {
			arity = old.Arity()
		} else if arity == 0 {
			return 0, fmt.Errorf("ucq: relation %s has an empty first row; arity unknown", name)
		}
		if err := validateWireRows(name, arity, rows); err != nil {
			return 0, err
		}
		arities[name] = arity
	}

	ds.wmu.Lock()
	defer ds.wmu.Unlock()
	cur := ds.snap.Load()
	inst := cur.inst.ShallowClone()
	deltaRels := make(map[string]*database.Relation, len(names))
	for _, name := range names {
		rows := rels[name]
		if len(rows) == 0 {
			continue
		}
		var rel *database.Relation
		if old := inst.Relation(name); old != nil {
			if old.Arity() != arities[name] {
				// A Replace slipped in between validation and the lock and
				// changed the relation's shape; re-validate against it.
				if err := validateWireRows(name, old.Arity(), rows); err != nil {
					return 0, err
				}
			}
			rel = old.Clone()
		} else {
			rel = database.NewRelation(name, len(rows[0]))
		}
		appendValidatedRows(rel, rows)
		inst.AddRelation(rel)
		drel := database.NewRelation(name, rel.Arity())
		appendValidatedRows(drel, rows)
		deltaRels[name] = drel
	}
	v := cur.version + 1
	if ds.cat != nil && ds.cat.journal != nil {
		if err := ds.cat.journal.LogAppend(ds.name, v, rels); err != nil {
			return 0, err
		}
	}
	snap := newSnapshot(ds.name, v, inst)
	ds.snap.Store(snap)
	ds.recordAppend(cur, appendDelta{version: v, rels: deltaRels, snap: snap})
	if ds.cat != nil {
		ds.cat.purgeBinds(ds.name)
	}
	ds.notify(v)
	return v, nil
}

// recordAppend logs one append delta for subscription catch-up, compacting
// the oldest entry past the catalog's cap. prev is the snapshot the delta
// applied to: it seeds logBase when the log (re)starts, so the covered
// window always begins at a version whose full instance is retained.
func (ds *Dataset) recordAppend(prev *snapshot, d appendDelta) {
	if ds.cat == nil || ds.cat.appendLog <= 0 {
		return
	}
	ds.logMu.Lock()
	defer ds.logMu.Unlock()
	if ds.logBase == nil || (len(ds.log) == 0 && ds.logBase.version != prev.version) ||
		(len(ds.log) > 0 && ds.log[len(ds.log)-1].version != prev.version) {
		// (Re)start the window at prev: the log was empty, cleared by a
		// Replace, or somehow non-contiguous.
		ds.log = ds.log[:0]
		ds.logBase = prev
	}
	ds.log = append(ds.log, d)
	for len(ds.log) > ds.cat.appendLog {
		ds.logBase = ds.log[0].snap
		copy(ds.log, ds.log[1:])
		ds.log = ds.log[:len(ds.log)-1]
	}
}

// clearLog drops the retained deltas (Replace installs a non-delta
// snapshot, making incremental catch-up across it impossible).
func (ds *Dataset) clearLog() {
	ds.logMu.Lock()
	ds.log = nil
	ds.logBase = nil
	ds.logMu.Unlock()
}

// DeltasBetween returns the dataset's merged append delta over the version
// window (from, to]: the instance at from, the instance at to, and per
// relation the rows appended anywhere in the window. ok is false when the
// retained log does not cover the whole window — the subscriber missed a
// compaction or a Replace and must resync from a full evaluation.
func (ds *Dataset) DeltasBetween(from, to Version) (fromInst, toInst *Instance, deltas map[string]*database.Relation, ok bool) {
	if from > to {
		return nil, nil, nil, false
	}
	ds.logMu.Lock()
	defer ds.logMu.Unlock()
	if ds.logBase == nil || ds.logBase.version > from {
		return nil, nil, nil, false
	}
	if len(ds.log) == 0 || ds.log[len(ds.log)-1].version < to {
		return nil, nil, nil, false
	}
	fromInst = ds.logBase.inst
	toInst = ds.logBase.inst
	deltas = make(map[string]*database.Relation)
	for _, d := range ds.log {
		if d.version > to {
			break
		}
		if d.version <= from {
			if d.version == from {
				fromInst = d.snap.inst
			}
			if d.version <= to {
				toInst = d.snap.inst
			}
			continue
		}
		toInst = d.snap.inst
		for name, rel := range d.rels {
			m := deltas[name]
			if m == nil {
				m = database.NewRelation(name, rel.Arity())
				deltas[name] = m
			}
			for i, n := 0, rel.Len(); i < n; i++ {
				m.Append(rel.Row(i)...)
			}
		}
	}
	return fromInst, toInst, deltas, true
}

// bindKey builds the bind-cache key. The dataset name leads so Replace and
// Drop can purge by prefix; the registration generation keeps a dropped-
// and-re-registered name (whose versions restart at 1) apart from fills
// still in flight against the old registration; the version makes entries
// for superseded snapshots unreachable immediately; the exec component
// (see execBindKey) captures the part of the bound state the execution
// options shape.
func bindKey(name string, gen, version uint64, fingerprint, exec string) string {
	return fmt.Sprintf("%s\x00%d\x00%d\x00%s\x00%s", name, gen, version, fingerprint, exec)
}

// execBindKey renders the execution-shaped part of the bound state. For
// explicit options that is the shard count (PrepareShards bakes shard
// plans into the union plan). For Auto binds the resolved decision is a
// pure function of the snapshot (already keyed by name/gen/version), the
// query fingerprint, the CPU count and the memory budget — so "auto" plus
// GOMAXPROCS plus the budget keys it exactly: the same dataset version
// re-bound after a GOMAXPROCS or budget change recomputes the decision
// instead of serving one sized for a different machine shape.
func execBindKey(opts PlanOptions) string {
	if opts.Auto {
		return fmt.Sprintf("auto/%d/%d", autoCPUs(), opts.DedupBudget)
	}
	return fmt.Sprintf("%d", opts.Shards)
}

// BindDataset attaches the prepared query to the dataset's current
// snapshot. The per-instance half of planning — Theorem 12 preprocessing,
// shard preparation, naive schema validation — is served from the
// catalog's bind cache keyed on (query fingerprint, dataset, version,
// shards): the first bind computes and caches it, every later bind for the
// same key reuses it and goes straight to enumeration, and concurrent
// cold binds coalesce onto one computation. Replace/AppendRows bump the
// version, so stale binds are never served. The returned plan enumerates
// the snapshot bound, even if the dataset changes afterwards.
func (pq *PreparedQuery) BindDataset(ds *Dataset) (*Plan, error) {
	return pq.BindDatasetExecContext(context.Background(), ds, nil)
}

// BindDatasetExec is BindDataset with per-binding execution options,
// mirroring BindExec.
func (pq *PreparedQuery) BindDatasetExec(ds *Dataset, exec *PlanOptions) (*Plan, error) {
	return pq.BindDatasetExecContext(context.Background(), ds, exec)
}

// BindDatasetExecContext is BindDatasetExec with a context: ctx becomes
// the default parent of every Answers stream the plan produces (see
// BindExecContext). Unlike an inline bind, a cache-miss preprocessing run
// is NOT cancelled when ctx is: the computed bind is shared work — it
// serves the callers coalesced onto it and every later request — so it
// runs to completion and is cached even if the instigating caller has
// gone away.
func (pq *PreparedQuery) BindDatasetExecContext(ctx context.Context, ds *Dataset, exec *PlanOptions) (*Plan, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	opts, err := pq.execOptions(exec)
	if err != nil {
		return nil, err
	}
	snap := ds.snap.Load()
	var (
		bq  *boundQuery
		hit bool
	)
	if ds.cat == nil {
		// Anonymous one-shot dataset: nothing to share, bind directly
		// (and cancellably) against the pinned snapshot.
		bq, err = pq.bindInstance(ctx, snap.inst, opts)
	} else {
		bq, hit, err = ds.cat.binds.Get(bindKey(snap.name, ds.gen, snap.version, pq.fingerprint, execBindKey(opts)),
			func() (*boundQuery, error) {
				return pq.bindInstance(context.WithoutCancel(ctx), snap.inst, opts)
			})
	}
	if err != nil {
		return nil, err
	}
	p := pq.newBoundPlan(ctx, snap.inst, opts, bq)
	p.dsName = snap.name
	p.dsVersion = snap.version
	p.bindHit = hit
	p.ds = ds
	return p, nil
}

// Subscription is a registration for dataset-change wake-ups: every
// snapshot installation (AppendRows, Replace) and the drop of the dataset
// signals Updates. The channel is a coalescing wake signal, not a version
// feed — the value is the head version at notification time, and
// notifications arriving while one is pending are folded into it, so a
// woken subscriber must read the dataset's current state rather than trust
// the value to be the head. Close unregisters; it is idempotent and safe
// to call concurrently with notifications.
type Subscription struct {
	ds   *Dataset
	ch   chan uint64
	once sync.Once
}

// Updates returns the wake channel. It is closed when the subscription is
// Closed; it is NOT closed when the dataset is dropped (a drop signals a
// normal wake-up, and the subscriber observes the missing registration).
func (s *Subscription) Updates() <-chan uint64 { return s.ch }

// Dataset returns the dataset the subscription is registered on. Binding
// plans through it (rather than a fresh catalog lookup) guarantees the
// subscription's wake-ups and the plans' snapshots describe the same
// dataset even across a concurrent drop-and-recreate of the name.
func (s *Subscription) Dataset() *Dataset { return s.ds }

// Close unregisters the subscription and closes its channel.
func (s *Subscription) Close() {
	s.once.Do(func() {
		s.ds.subMu.Lock()
		delete(s.ds.subs, s)
		s.ds.subMu.Unlock()
		// No notifier can hold the channel anymore: notify sends only
		// under subMu and only to registered subscriptions.
		close(s.ch)
	})
}

// notify wakes every subscriber with the new head version, coalescing into
// a pending wake-up when the subscriber has not consumed the last one.
func (ds *Dataset) notify(version uint64) {
	ds.subMu.Lock()
	for s := range ds.subs {
		select {
		case s.ch <- version:
		default:
		}
	}
	ds.subMu.Unlock()
}

// subscribe registers a new subscription on the dataset.
func (ds *Dataset) subscribe() *Subscription {
	s := &Subscription{ds: ds, ch: make(chan uint64, 1)}
	ds.subMu.Lock()
	if ds.subs == nil {
		ds.subs = make(map[*Subscription]struct{})
	}
	ds.subs[s] = struct{}{}
	ds.subMu.Unlock()
	return s
}

// Subscribe registers for change notifications on the named dataset. The
// caller must Close the subscription when done. Typical use pairs it with
// the delta API: bind at the current version, then on every wake-up compute
// Plan.DeltaAnswers up to the new head (resyncing from a full enumeration
// when the dataset's retained append log no longer covers the gap).
//
// Subscribe before the initial bind: a subscription registered first can
// miss no version — an append racing the bind shows up either in the bound
// snapshot or as a wake-up (or both, which the version arithmetic
// de-duplicates).
func (c *Catalog) Subscribe(name string) (*Subscription, error) {
	ds, ok := c.Dataset(name)
	if !ok {
		return nil, fmt.Errorf("ucq: dataset %q not registered", name)
	}
	return ds.subscribe(), nil
}
