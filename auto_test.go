package ucq

import (
	"errors"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/workload"
)

// stubCPUs pins the core count the Auto planner sees for one test.
func stubCPUs(t *testing.T, n int) {
	t.Helper()
	old := autoCPUs
	autoCPUs = func() int { return n }
	t.Cleanup(func() { autoCPUs = old })
}

// TestAutoContradictsExplicitKnobs pins the validation rule: Auto means
// "the planner decides", so combining it with any hand-picked execution
// knob is a typed OptionsError, not a silent override.
func TestAutoContradictsExplicitKnobs(t *testing.T) {
	u := MustParse("Q(x,y) <- R1(x,z), R2(z,y).")
	inst := example2SmallInstance()
	for _, opts := range []*PlanOptions{
		{Auto: true, Parallel: true},
		{Auto: true, Shards: 2},
		{Auto: true, Workers: 4},
		{Auto: true, ParallelBatch: 8},
	} {
		_, err := NewPlan(u, inst, opts)
		var oe *OptionsError
		if !errors.As(err, &oe) || oe.Field != "Auto" {
			t.Errorf("opts %+v: err = %v, want OptionsError on Auto", opts, err)
		}
	}
}

// TestAutoResolvedOptionsAlwaysValid is the end-to-end property behind the
// cost model: over random queries, instances and core counts, an Auto bind
// always succeeds, always records a decision, and the decision's knobs
// always form a combination that explicit PlanOptions validation would
// accept (never Shards or Workers without Parallel).
func TestAutoResolvedOptionsAlwaysValid(t *testing.T) {
	rng := rand.New(rand.NewSource(20260806))
	for i := 0; i < 120; i++ {
		stubCPUs(t, []int{1, 2, 4, 8, 32}[rng.Intn(5)])
		u := workload.RandomUCQ(rng)
		inst := workload.RandomForQuery(u, 8+rng.Intn(30), int64(2+rng.Intn(5)), rng.Int63())
		pq, err := Prepare(u, nil)
		if err != nil {
			t.Fatalf("case %d: prepare: %v\n%s", i, err, u)
		}
		p, err := pq.BindExec(inst, &PlanOptions{Auto: true})
		if err != nil {
			t.Fatalf("case %d: auto bind: %v\n%s", i, err, u)
		}
		d := p.Decision()
		if d == nil {
			t.Fatalf("case %d: auto bind recorded no decision", i)
		}
		if !d.Parallel && (d.Shards != 0 || d.Workers != 0) {
			t.Fatalf("case %d: invalid resolved knobs %+v", i, d)
		}
		// The resolved knobs round-trip through explicit validation.
		explicit := PlanOptions{Parallel: d.Parallel, Shards: d.Shards, Workers: d.Workers}
		if err := explicit.validate(); err != nil {
			t.Fatalf("case %d: resolved knobs fail validation: %v (%+v)", i, err, d)
		}
		if d.Kind == "" || d.Reason == "" || d.CPUs <= 0 {
			t.Fatalf("case %d: incomplete provenance %+v", i, d)
		}
	}
}

// TestAutoSingleCPUSequential pins the bottom regime end to end: on a
// one-core box every Auto bind resolves sequential and Explain carries the
// decision line.
func TestAutoSingleCPUSequential(t *testing.T) {
	stubCPUs(t, 1)
	u := MustParse("Q(x,y,w) <- R1(x,z), R2(z,y), R3(y,w).")
	p, err := NewPlan(u, example2SmallInstance(), &PlanOptions{Auto: true})
	if err != nil {
		t.Fatal(err)
	}
	d := p.Decision()
	if d == nil || d.Kind != "sequential" || d.Parallel || d.Shards != 0 || d.Workers != 0 {
		t.Fatalf("decision = %+v, want sequential", d)
	}
	if ex := p.Explain(); !strings.Contains(ex, "auto decision: sequential") {
		t.Errorf("Explain missing decision provenance:\n%s", ex)
	}
}

// TestAutoExplicitUnaffected pins behavior preservation: an explicit bind
// records no decision and Explain stays decision-free.
func TestAutoExplicitUnaffected(t *testing.T) {
	u := MustParse("Q(x,y,w) <- R1(x,z), R2(z,y), R3(y,w).")
	for _, opts := range []*PlanOptions{nil, {Parallel: true}, {Parallel: true, Shards: 2}} {
		p, err := NewPlan(u, example2SmallInstance(), opts)
		if err != nil {
			t.Fatalf("opts %+v: %v", opts, err)
		}
		if p.Decision() != nil {
			t.Errorf("opts %+v: explicit bind recorded a decision %+v", opts, p.Decision())
		}
		if strings.Contains(p.Explain(), "auto decision") {
			t.Errorf("opts %+v: Explain mentions an auto decision", opts)
		}
	}
}

// TestAutoBindCacheRoundTrip pins that a cache-served auto bind carries
// the same decision as the bind that populated the entry — decisions are
// part of the cached per-instance state, keyed on the core count.
func TestAutoBindCacheRoundTrip(t *testing.T) {
	stubCPUs(t, 8)
	u := MustParse("Q(x,y,w) <- R1(x,z), R2(z,y), R3(y,w).")
	pq, err := Prepare(u, nil)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := NewCatalog().Register("d", example2SmallInstance())
	if err != nil {
		t.Fatal(err)
	}
	first, err := pq.BindDatasetExec(ds, &PlanOptions{Auto: true})
	if err != nil {
		t.Fatal(err)
	}
	if first.BindCacheHit() {
		t.Fatal("first auto bind was a cache hit")
	}
	second, err := pq.BindDatasetExec(ds, &PlanOptions{Auto: true})
	if err != nil {
		t.Fatal(err)
	}
	if !second.BindCacheHit() {
		t.Fatal("second auto bind missed the cache")
	}
	d1, d2 := first.Decision(), second.Decision()
	if d1 == nil || d2 == nil || *d1 != *d2 {
		t.Fatalf("cached bind decision %+v differs from original %+v", d2, d1)
	}
	// An explicit bind against the same dataset does not share the auto
	// entry — its plan must not inherit the auto decision.
	explicit, err := pq.BindDatasetExec(ds, &PlanOptions{Parallel: true})
	if err != nil {
		t.Fatal(err)
	}
	if explicit.BindCacheHit() {
		t.Error("explicit bind hit the auto cache entry")
	}
	if explicit.Decision() != nil {
		t.Errorf("explicit bind carries a decision %+v", explicit.Decision())
	}
}

// TestCountExact pins the COUNT fast path: certified single-branch plans
// report their exact answer count without enumerating, and it matches the
// enumerated count; multi-branch unions and naive plans decline.
func TestCountExact(t *testing.T) {
	inst := example2SmallInstance()

	// Free-connex: head {x,y,w} covers the path join, so the plan
	// certifies and enumerates from a single CDY pipeline.
	single := MustParse("Q(x,y,w) <- R1(x,y), R2(y,w).")
	p, err := NewPlan(single, inst, nil)
	if err != nil {
		t.Fatal(err)
	}
	if p.Mode != ConstantDelay {
		t.Fatalf("mode = %v, want constant-delay", p.Mode)
	}
	n, ok := p.CountExact()
	if !ok {
		t.Fatal("certified single-branch plan declined CountExact")
	}
	if want := int64(p.Count()); n != want {
		t.Fatalf("CountExact = %d, enumerated count = %d", n, want)
	}

	multi := MustParse("Q1(x,y) <- R1(x,z), R2(z,y). Q2(x,y) <- R1(x,y), R2(y,y).")
	p2, err := NewPlan(multi, inst, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Multi-branch unions may decline (cross-branch duplicates); when they
	// do answer, the count must still match the deduplicated enumeration.
	if n2, ok := p2.CountExact(); ok {
		if want := int64(p2.Count()); n2 != want {
			t.Errorf("multi-branch CountExact = %d, enumerated = %d", n2, want)
		}
	}

	naive, err := NewPlan(single, inst, &PlanOptions{ForceNaive: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := naive.CountExact(); ok {
		t.Error("naive plan claimed an exact count")
	}
}

// TestCountExactMatchesEnumerationRandom sweeps random certified queries:
// whenever CountExact answers, it must equal the enumerated count.
func TestCountExactMatchesEnumerationRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(20260805))
	exact := 0
	for i := 0; i < 150; i++ {
		u := workload.RandomUCQ(rng)
		inst := workload.RandomForQuery(u, 8+rng.Intn(25), int64(2+rng.Intn(4)), rng.Int63())
		p, err := NewPlan(u, inst, nil)
		if err != nil {
			t.Fatalf("case %d: %v\n%s", i, err, u)
		}
		n, ok := p.CountExact()
		if !ok {
			continue
		}
		exact++
		if want := int64(p.Count()); n != want {
			t.Fatalf("case %d: CountExact = %d, enumeration = %d on\n%s", i, n, want, u)
		}
	}
	if exact == 0 {
		t.Error("no case took the exact-count path; generator or CountExact regressed")
	}
	t.Logf("exact-count path taken in %d/150 cases", exact)
}
