package ucq

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/database"
)

// ReadRelationCSV reads a relation from comma- or whitespace-separated
// integer rows. Empty lines and lines starting with '#' are skipped. The
// arity is fixed by the first data row.
func ReadRelationCSV(r io.Reader, name string) (*Relation, error) {
	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 1<<16), 1<<22)
	var rel *database.Relation
	line := 0
	for scanner.Scan() {
		line++
		text := strings.TrimSpace(scanner.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.FieldsFunc(text, func(r rune) bool {
			return r == ',' || r == ' ' || r == '\t' || r == ';'
		})
		vals := make([]int64, 0, len(fields))
		for _, f := range fields {
			f = strings.TrimSpace(f)
			if f == "" {
				continue
			}
			v, err := strconv.ParseInt(f, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("ucq: %s line %d: %v", name, line, err)
			}
			vals = append(vals, v)
		}
		if len(vals) == 0 {
			continue
		}
		if rel == nil {
			rel = database.NewRelation(name, len(vals))
		}
		if len(vals) != rel.Arity() {
			return nil, fmt.Errorf("ucq: %s line %d: %d values, expected %d", name, line, len(vals), rel.Arity())
		}
		rel.AppendInts(vals...)
	}
	if err := scanner.Err(); err != nil {
		return nil, fmt.Errorf("ucq: reading %s: %v", name, err)
	}
	if rel == nil {
		return nil, fmt.Errorf("ucq: relation %s has no rows; arity unknown", name)
	}
	return rel, nil
}

// WriteRelationCSV writes the relation as comma-separated rows in sorted
// order. Tagged values render as payload#tag.
func WriteRelationCSV(w io.Writer, rel *Relation) error {
	bw := bufio.NewWriter(w)
	for _, row := range rel.SortedRows() {
		for i, v := range row {
			if i > 0 {
				if _, err := bw.WriteString(","); err != nil {
					return err
				}
			}
			if _, err := bw.WriteString(v.String()); err != nil {
				return err
			}
		}
		if _, err := bw.WriteString("\n"); err != nil {
			return err
		}
	}
	return bw.Flush()
}
