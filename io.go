package ucq

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"repro/internal/database"
	"repro/internal/wire"
)

// ReadRelationCSV reads a relation from comma- or whitespace-separated
// integer rows. Empty lines and lines starting with '#' are skipped. The
// arity is fixed by the first data row.
func ReadRelationCSV(r io.Reader, name string) (*Relation, error) {
	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 1<<16), 1<<22)
	var rel *database.Relation
	line := 0
	for scanner.Scan() {
		line++
		text := strings.TrimSpace(scanner.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.FieldsFunc(text, func(r rune) bool {
			return r == ',' || r == ' ' || r == '\t' || r == ';'
		})
		vals := make([]int64, 0, len(fields))
		for _, f := range fields {
			f = strings.TrimSpace(f)
			if f == "" {
				continue
			}
			v, err := strconv.ParseInt(f, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("ucq: %s line %d: %v", name, line, err)
			}
			if v > database.MaxPayload || v < database.MinPayload {
				return nil, fmt.Errorf("ucq: %s line %d: value %d outside the %d-bit payload range", name, line, v, 56)
			}
			vals = append(vals, v)
		}
		if len(vals) == 0 {
			continue
		}
		if rel == nil {
			rel = database.NewRelation(name, len(vals))
		}
		if len(vals) != rel.Arity() {
			return nil, fmt.Errorf("ucq: %s line %d: %d values, expected %d", name, line, len(vals), rel.Arity())
		}
		rel.AppendInts(vals...)
	}
	if err := scanner.Err(); err != nil {
		return nil, fmt.Errorf("ucq: reading %s: %v", name, err)
	}
	if rel == nil {
		return nil, fmt.Errorf("ucq: relation %s has no rows; arity unknown", name)
	}
	return rel, nil
}

// InstanceFromRows builds an instance from a map of relation name to
// integer rows — the request wire format of the streaming server. Every
// relation must have at least one row (the arity is fixed by the first)
// and all rows of a relation must share that arity.
func InstanceFromRows(rels map[string][][]int64) (*Instance, error) {
	inst := database.NewInstance()
	// Deterministic order so error messages are stable.
	names := make([]string, 0, len(rels))
	for name := range rels {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		rows := rels[name]
		if name == "" {
			return nil, fmt.Errorf("ucq: relation with empty name")
		}
		if len(rows) == 0 {
			return nil, fmt.Errorf("ucq: relation %s has no rows; arity unknown", name)
		}
		if len(rows[0]) == 0 {
			return nil, fmt.Errorf("ucq: relation %s has an empty first row; arity unknown", name)
		}
		rel := database.NewRelation(name, len(rows[0]))
		if err := appendWireRows(rel, name, rows); err != nil {
			return nil, err
		}
		inst.AddRelation(rel)
	}
	return inst, nil
}

// appendWireRows validates rows against rel's arity and the value payload
// range and appends them — the one validation path for relation rows
// arriving over the wire (InstanceFromRows and Dataset.AppendRows).
func appendWireRows(rel *database.Relation, name string, rows [][]int64) error {
	if err := validateWireRows(name, rel.Arity(), rows); err != nil {
		return err
	}
	appendValidatedRows(rel, rows)
	return nil
}

// validateWireRows checks rows against an expected arity and the value
// payload range without touching a relation, so writers can reject a bad
// payload before taking any lock.
func validateWireRows(name string, arity int, rows [][]int64) error {
	for i, row := range rows {
		if len(row) != arity {
			return fmt.Errorf("ucq: %s row %d: %d values, expected %d", name, i, len(row), arity)
		}
		for _, v := range row {
			if v > database.MaxPayload || v < database.MinPayload {
				return fmt.Errorf("ucq: %s row %d: value %d outside the %d-bit payload range", name, i, v, 56)
			}
		}
	}
	return nil
}

// appendValidatedRows appends rows already vetted by validateWireRows.
func appendValidatedRows(rel *database.Relation, rows [][]int64) {
	for _, row := range rows {
		rel.AppendInts(row...)
	}
}

// ReadInstanceJSON decodes a JSON object mapping relation names to integer
// rows, e.g. {"R": [[1,2],[3,4]], "S": [[2,5]]}, into an instance.
func ReadInstanceJSON(r io.Reader) (*Instance, error) {
	var rels map[string][][]int64
	dec := json.NewDecoder(r)
	if err := dec.Decode(&rels); err != nil {
		return nil, fmt.Errorf("ucq: decoding instance JSON: %v", err)
	}
	return InstanceFromRows(rels)
}

// AppendTupleJSON appends the tuple rendered as a JSON array to dst and
// returns the extended slice — the per-answer NDJSON codec of the
// streaming server, allocation-free once dst has capacity. Untagged values
// render as numbers; tagged values as "payload#tag" strings. It delegates
// to internal/wire so the server, the cluster hop and clients share one
// codec (wire.ParseTupleNDJSON is its exact inverse).
func AppendTupleJSON(dst []byte, t Tuple) []byte {
	return wire.AppendTupleNDJSON(dst, t)
}

// WriteRelationCSV writes the relation as comma-separated rows in sorted
// order. Tagged values render as payload#tag.
func WriteRelationCSV(w io.Writer, rel *Relation) error {
	bw := bufio.NewWriter(w)
	for _, row := range rel.SortedRows() {
		for i, v := range row {
			if i > 0 {
				if _, err := bw.WriteString(","); err != nil {
					return err
				}
			}
			if _, err := bw.WriteString(v.String()); err != nil {
				return err
			}
		}
		if _, err := bw.WriteString("\n"); err != nil {
			return err
		}
	}
	return bw.Flush()
}
