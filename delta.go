package ucq

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/database"
	"repro/internal/delta"
)

// This file is the incremental-maintenance surface: UCQs are monotone
// (append-only changes can only add answers), so keeping a live answer set
// current across dataset versions reduces to enumerating Q(to) \ Q(from).
// Semi-naive delta evaluation (internal/delta) finds a small candidate
// superset of the difference from the appended rows alone, and for
// certified plans the Theorem 12 structure supplies a constant-time
// old-version membership test (the CDY head indexes), so the filter costs
// O(1) per candidate — no re-enumeration of the old answers. The catalog's
// bounded append log provides the delta windows; when it has been
// compacted past the requested window the API reports
// ErrDeltaUnavailable and the caller resyncs from a full evaluation.

// ErrDeltaUnavailable reports that the dataset's retained append log does
// not cover the requested version window — it was compacted, cleared by a
// Replace, or the plan was not bound through a catalog dataset. The caller
// must resync: re-bind at the head version and enumerate the full answer
// set.
var ErrDeltaUnavailable = errors.New("ucq: append log does not cover the delta window; resync from a full evaluation")

// DeltaAnswers returns the answers the dataset's appends added between
// versions from and to: exactly Q(to) \ Q(from), each answer once. The
// plan must have been bound through a catalog dataset (BindDataset);
// typically it is the plan bound at version from, in which case its own
// bound state serves as the old-membership filter. Binding at a different
// version is allowed as long as the append log still covers from — the
// old state is then rebound internally from the logged snapshot.
//
// It fails with ErrDeltaUnavailable when the log no longer covers
// (from, to]; see Plan.DeltaAnswersContext for the streaming form.
func (p *Plan) DeltaAnswers(from, to Version) ([]Tuple, error) {
	var out []Tuple
	err := p.DeltaAnswersContext(nil, from, to, func(t Tuple) bool {
		out = append(out, t.Clone())
		return true
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// DeltaAnswersContext streams the answers added between versions from and
// to — exactly Q(to) \ Q(from), each once — into yield. Yielded tuples may
// be transient views into enumeration state: copy (Tuple.Clone) before
// retaining one past the callback. A false return from yield stops the
// enumeration early without error. A nil ctx falls back to the plan's
// binding context.
func (p *Plan) DeltaAnswersContext(ctx context.Context, from, to Version, yield func(Tuple) bool) error {
	ctx = p.deltaCtx(ctx)
	if from == to {
		return nil
	}
	fromInst, toInst, deltas, err := p.deltaWindow(from, to)
	if err != nil {
		return err
	}
	if p.Mode == ConstantDelay {
		old := p.union
		if from != p.dsVersion || old == nil {
			// Resuming against a window start the plan was not bound at:
			// rebuild the old-version bound state from the logged snapshot.
			old, err = core.NewUnionPlanCtx(ctx, p.Evaluated, p.Cert, fromInst)
			if err != nil {
				return err
			}
		}
		_, err = delta.Candidates(ctx, p.Evaluated, p.Cert, toInst, deltas, func(t database.Tuple) bool {
			if old.ContainsAnswer(t) {
				return true
			}
			return yield(t)
		})
		return err
	}
	// Naive mode has no constant-time membership test; materialize the old
	// answer set once and filter through it.
	oldRel, err := baseline.EvalUCQCtx(ctx, p.Evaluated, fromInst)
	if err != nil {
		return err
	}
	oldSet := database.NewTupleSet(oldRel.Len())
	for i, n := 0, oldRel.Len(); i < n; i++ {
		oldSet.Insert(oldRel.Row(i))
	}
	_, err = delta.CandidatesNaive(ctx, p.Evaluated, toInst, deltas, func(t database.Tuple) bool {
		if oldSet.Contains(t) {
			return true
		}
		return yield(t)
	})
	return err
}

// DeltaCandidatesContext streams the semi-naive candidate answers of the
// window (from, to] — a superset of Q(to) \ Q(from) and a subset of Q(to),
// each distinct candidate once — without the old-version membership
// filter. Consumers that already maintain the set of answers they have
// seen (an AnswerSet fed from the initial enumeration) dedup against it
// directly, which is how naive-mode subscriptions avoid re-materializing
// the old answer set per append. Tuple lifetime and early-stop semantics
// match DeltaAnswersContext.
func (p *Plan) DeltaCandidatesContext(ctx context.Context, from, to Version, yield func(Tuple) bool) error {
	ctx = p.deltaCtx(ctx)
	if from == to {
		return nil
	}
	_, toInst, deltas, err := p.deltaWindow(from, to)
	if err != nil {
		return err
	}
	if p.Mode == ConstantDelay {
		_, err = delta.Candidates(ctx, p.Evaluated, p.Cert, toInst, deltas, yield)
		return err
	}
	_, err = delta.CandidatesNaive(ctx, p.Evaluated, toInst, deltas, yield)
	return err
}

// deltaCtx resolves the effective context like AnswersContext does.
func (p *Plan) deltaCtx(ctx context.Context) context.Context {
	if ctx != nil {
		return ctx
	}
	if p.ctx != nil {
		return p.ctx
	}
	return context.Background()
}

// deltaWindow fetches the (from, to] window from the bound dataset's
// append log, mapping every unavailability onto ErrDeltaUnavailable.
func (p *Plan) deltaWindow(from, to Version) (fromInst, toInst *Instance, deltas map[string]*database.Relation, err error) {
	if from > to {
		return nil, nil, nil, fmt.Errorf("ucq: delta window [%d, %d] runs backwards", from, to)
	}
	if p.ds == nil {
		return nil, nil, nil, ErrDeltaUnavailable
	}
	fromInst, toInst, deltas, ok := p.ds.DeltasBetween(from, to)
	if !ok {
		return nil, nil, nil, ErrDeltaUnavailable
	}
	return fromInst, toInst, deltas, nil
}

// AnswerSet is a budget-bounded set of emitted answers for consumers that
// maintain a live answer set without a certified old-membership test
// (naive-mode subscriptions): it dedups in memory until the budget is
// reached, then migrates to a disk-backed spill table, so memory stays
// bounded by the budget rather than the answer count. Not safe for
// concurrent use.
type AnswerSet struct{ s *delta.Set }

// NewAnswerSet returns an AnswerSet for answers of the given arity.
// budget ≤ 0 disables spilling; dir empty spills under os.TempDir().
func NewAnswerSet(dir string, arity, budget int) *AnswerSet {
	hint := 0
	if budget > 0 {
		hint = budget
	}
	return &AnswerSet{s: delta.NewSet(dir, arity, budget, hint)}
}

// Insert adds t if absent and reports whether it was newly inserted.
func (a *AnswerSet) Insert(t Tuple) (bool, error) { return a.s.Insert(t) }

// Len returns the number of distinct answers inserted.
func (a *AnswerSet) Len() int { return a.s.Len() }

// Spilled reports whether the set has migrated to disk.
func (a *AnswerSet) Spilled() bool { return a.s.Spilled() }

// Close releases the disk table, if any.
func (a *AnswerSet) Close() error { return a.s.Close() }
