package ucq

// Client-side decoding of the server's answer streams. A streaming
// response (POST /query, POST /datasets/{name}/query, and the cluster
// scatter hop) carries answers in one of two encodings, negotiated via
// the Accept header: NDJSON text lines, or the compact binary columnar
// frames of internal/wire. DecodeAnswerStream hides the difference — pick
// the encoding off the response Content-Type and get tuples plus the
// trailer either way.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"repro/internal/wire"
)

// Media types of the two answer-stream encodings, for request Accept
// headers and response Content-Type dispatch.
const (
	// MediaTypeNDJSON is the text encoding: one JSON array line per answer,
	// control records as JSON object lines. The default.
	MediaTypeNDJSON = wire.MediaTypeNDJSON
	// MediaTypeBinary is the columnar binary frame encoding. Servers only
	// send it to clients whose Accept names it explicitly.
	MediaTypeBinary = wire.MediaTypeBinary
)

// StreamTrailer is the terminal record of an answer stream, whichever
// encoding carried it: the NDJSON trailer object, or the binary trailer
// frame. A stream that ends without one was truncated.
type StreamTrailer struct {
	Done           bool   `json:"done"`
	Count          int    `json:"count"`
	Mode           string `json:"mode"`
	Cache          string `json:"cache"`
	Dataset        string `json:"dataset,omitempty"`
	DatasetVersion uint64 `json:"dataset_version,omitempty"`
	Bind           string `json:"bind,omitempty"`
	Scatter        string `json:"scatter,omitempty"`
	Workers        int    `json:"workers,omitempty"`
	// RootDone is set on scatter-call trailers (the implicit final marker).
	RootDone int `json:"root_done,omitempty"`
	// Error is the stream's terminal failure: the enumeration died after
	// answers already left the server. Done is false and the answers seen
	// are an arbitrary prefix.
	Error string `json:"error,omitempty"`
}

// DecodeAnswerStream reads one streaming query response from r, calling
// yield for every answer tuple in stream order, and returns the stream's
// trailer. contentType selects the decoder (a full Content-Type header
// value is fine; parameters are ignored) — anything but MediaTypeBinary
// decodes as NDJSON. If yield returns false the stream is abandoned
// mid-read and DecodeAnswerStream returns (nil, nil): the caller stopped,
// nothing failed. A stream that ends without a trailer, or whose bytes
// don't parse, returns an error.
func DecodeAnswerStream(r io.Reader, contentType string, yield func(Tuple) bool) (*StreamTrailer, error) {
	media := contentType
	if i := strings.IndexByte(media, ';'); i >= 0 {
		media = media[:i]
	}
	if strings.TrimSpace(media) == MediaTypeBinary {
		return decodeBinaryStream(r, yield)
	}
	return decodeNDJSONStream(r, yield)
}

// SubscriptionEvent is a control record of a /subscribe stream: a version
// marker. The answers before it make the subscriber's set complete through
// Version. Resync means the server could not maintain the subscriber
// incrementally — discard every answer collected so far; the full set at
// Version follows, ended by a plain (non-resync) marker.
type SubscriptionEvent struct {
	Version Version `json:"version"`
	Resync  bool    `json:"resync,omitempty"`
}

// DecodeSubscriptionStream reads a GET/POST /datasets/{name}/subscribe
// response from r, calling yield for every answer and event for every
// version marker, in stream order. contentType dispatches the decoder like
// DecodeAnswerStream. Subscription streams are normally endless: a nil
// trailer with a nil error means the stream ended (the connection closed or
// a callback returned false) without the server reporting a failure; a
// non-nil trailer means the server terminated the subscription and says
// why (e.g. the dataset was dropped).
func DecodeSubscriptionStream(r io.Reader, contentType string, yield func(Tuple) bool, event func(SubscriptionEvent) bool) (*StreamTrailer, error) {
	media := contentType
	if i := strings.IndexByte(media, ';'); i >= 0 {
		media = media[:i]
	}
	if strings.TrimSpace(media) == MediaTypeBinary {
		return decodeBinarySubscription(r, yield, event)
	}
	return decodeNDJSONSubscription(r, yield, event)
}

func decodeBinarySubscription(r io.Reader, yield func(Tuple) bool, event func(SubscriptionEvent) bool) (*StreamTrailer, error) {
	dec := wire.NewDecoder(bufio.NewReaderSize(r, 64<<10))
	for {
		fr, err := dec.Next()
		if err == io.EOF {
			return nil, nil
		}
		if err != nil {
			return nil, fmt.Errorf("ucq: reading subscription stream: %v", err)
		}
		switch fr.Kind {
		case wire.KindBlock:
			for _, t := range fr.Tuples {
				if !yield(t) {
					return nil, nil
				}
			}
		case wire.KindMarker:
			// The marker payload bit-packs the version with the resync flag
			// in the low bit (the scatter hop uses the same frame kind for
			// root progress, but scatter and subscription streams never mix).
			u := uint64(fr.RootDone)
			if !event(SubscriptionEvent{Version: u >> 1, Resync: u&1 == 1}) {
				return nil, nil
			}
		case wire.KindTrailer:
			tr := fr.Trailer
			return &StreamTrailer{
				Done:           tr.Done,
				Count:          tr.Count,
				Mode:           tr.Mode,
				Cache:          tr.Cache,
				Dataset:        tr.Dataset,
				DatasetVersion: tr.DatasetVersion,
				Bind:           tr.Bind,
				Error:          tr.Error,
			}, nil
		}
	}
}

func decodeNDJSONSubscription(r io.Reader, yield func(Tuple) bool, event func(SubscriptionEvent) bool) (*StreamTrailer, error) {
	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 0, 64<<10), 16<<20)
	for scanner.Scan() {
		raw := scanner.Bytes()
		if len(raw) == 0 {
			continue
		}
		if raw[0] == '[' {
			t, err := wire.ParseTupleNDJSON(raw)
			if err != nil {
				return nil, fmt.Errorf("ucq: malformed answer line %q: %v", raw, err)
			}
			if !yield(t) {
				return nil, nil
			}
			continue
		}
		// Control objects: version markers carry "version" (and never
		// "done"/"error"); anything completed or failed is the trailer.
		var rec struct {
			StreamTrailer
			Version *uint64 `json:"version"`
			Resync  bool    `json:"resync"`
		}
		if err := json.Unmarshal(raw, &rec); err != nil {
			return nil, fmt.Errorf("ucq: malformed stream record %q: %v", raw, err)
		}
		if rec.Done || rec.Error != "" {
			tr := rec.StreamTrailer
			return &tr, nil
		}
		if rec.Version != nil {
			if !event(SubscriptionEvent{Version: *rec.Version, Resync: rec.Resync}) {
				return nil, nil
			}
		}
	}
	if err := scanner.Err(); err != nil {
		return nil, fmt.Errorf("ucq: reading subscription stream: %v", err)
	}
	return nil, nil
}

func decodeBinaryStream(r io.Reader, yield func(Tuple) bool) (*StreamTrailer, error) {
	dec := wire.NewDecoder(bufio.NewReaderSize(r, 64<<10))
	for {
		fr, err := dec.Next()
		if err == io.EOF {
			return nil, fmt.Errorf("ucq: answer stream ended without a trailer")
		}
		if err != nil {
			return nil, fmt.Errorf("ucq: reading answer stream: %v", err)
		}
		switch fr.Kind {
		case wire.KindBlock:
			for _, t := range fr.Tuples {
				if !yield(t) {
					return nil, nil
				}
			}
		case wire.KindTrailer:
			tr := fr.Trailer
			return &StreamTrailer{
				Done:           tr.Done,
				Count:          tr.Count,
				Mode:           tr.Mode,
				Cache:          tr.Cache,
				Dataset:        tr.Dataset,
				DatasetVersion: tr.DatasetVersion,
				Bind:           tr.Bind,
				Scatter:        tr.Scatter,
				Workers:        tr.Workers,
				RootDone:       tr.RootDone,
				Error:          tr.Error,
			}, nil
		}
	}
}

func decodeNDJSONStream(r io.Reader, yield func(Tuple) bool) (*StreamTrailer, error) {
	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 0, 64<<10), 16<<20)
	for scanner.Scan() {
		raw := scanner.Bytes()
		if len(raw) == 0 {
			continue
		}
		if raw[0] == '[' {
			t, err := wire.ParseTupleNDJSON(raw)
			if err != nil {
				return nil, fmt.Errorf("ucq: malformed answer line %q: %v", raw, err)
			}
			if !yield(t) {
				return nil, nil
			}
			continue
		}
		var tr StreamTrailer
		if err := json.Unmarshal(raw, &tr); err != nil {
			return nil, fmt.Errorf("ucq: malformed stream record %q: %v", raw, err)
		}
		if !tr.Done && tr.Error == "" {
			// A control object that is neither a completed trailer nor an
			// error — scatter headers and markers land here. Plain /query
			// streams never carry them; skip so scatter streams decode too.
			continue
		}
		return &tr, nil
	}
	if err := scanner.Err(); err != nil {
		return nil, fmt.Errorf("ucq: reading answer stream: %v", err)
	}
	return nil, fmt.Errorf("ucq: answer stream ended without a trailer")
}
