package ucq

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/baseline"
	"repro/internal/paper"
	"repro/internal/workload"
)

// TestGalleryEndToEnd evaluates every tractable worked example of the
// paper through the public API on random instances and compares against
// the naive evaluator; intractable and unknown examples must still
// evaluate correctly through the naive fallback.
func TestGalleryEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(606))
	for _, ex := range paper.Gallery() {
		ex := ex
		t.Run(ex.Name, func(t *testing.T) {
			u := ex.Query()
			for trial := 0; trial < 3; trial++ {
				inst := workload.RandomForQuery(u, 20, 4, rng.Int63())
				plan, err := NewPlan(u, inst, nil)
				if err != nil {
					t.Fatalf("NewPlan: %v", err)
				}
				if ex.Verdict == "tractable" && ex.Coverage == paper.GeneralTheorem && plan.Mode != ConstantDelay {
					t.Errorf("tractable example evaluated in %v mode", plan.Mode)
				}
				want, err := baseline.EvalUCQ(u, inst)
				if err != nil {
					t.Fatalf("baseline: %v", err)
				}
				got := plan.Materialize()
				if got.Len() != want.Len() {
					t.Fatalf("trial %d (%v): %d answers, want %d", trial, plan.Mode, got.Len(), want.Len())
				}
				gotRows := got.SortedRows()
				wantRows := want.SortedRows()
				for i := range wantRows {
					if !gotRows[i].Equal(wantRows[i]) {
						t.Fatalf("trial %d: answer %d = %v, want %v", trial, i, gotRows[i], wantRows[i])
					}
				}
			}
		})
	}
}

// TestGalleryEndToEndParallel re-runs the gallery with PlanOptions.Parallel
// set: every example — constant-delay or naive fallback — must produce the
// answer set of its sequential plan.
func TestGalleryEndToEndParallel(t *testing.T) {
	rng := rand.New(rand.NewSource(707))
	for _, ex := range paper.Gallery() {
		ex := ex
		t.Run(ex.Name, func(t *testing.T) {
			u := ex.Query()
			inst := workload.RandomForQuery(u, 20, 4, rng.Int63())
			seq, err := NewPlan(u, inst, nil)
			if err != nil {
				t.Fatalf("NewPlan: %v", err)
			}
			// A batch of 3 forces mid-batch boundaries on small outputs.
			par, err := NewPlan(u, inst, &PlanOptions{Parallel: true, ParallelBatch: 3})
			if err != nil {
				t.Fatalf("NewPlan(parallel): %v", err)
			}
			if par.Mode != seq.Mode {
				t.Fatalf("parallel plan mode %v, sequential %v", par.Mode, seq.Mode)
			}
			want := seq.Materialize().SortedRows()
			got := par.Materialize().SortedRows()
			if len(got) != len(want) {
				t.Fatalf("(%v mode) %d answers, want %d", par.Mode, len(got), len(want))
			}
			for i := range want {
				if !got[i].Equal(want[i]) {
					t.Fatalf("answer %d = %v, want %v", i, got[i], want[i])
				}
			}
		})
	}
}

// TestRedundantUnionStillEvaluates exercises Example 1 end to end: the
// union with a redundant CQ must produce the same answers as its
// reduction.
func TestRedundantUnionStillEvaluates(t *testing.T) {
	ex, _ := paper.ByName("example1")
	u := ex.Query()
	inst := workload.RandomForQuery(u, 25, 5, 9)
	full, err := NewPlan(u, inst, nil)
	if err != nil {
		t.Fatalf("NewPlan: %v", err)
	}
	res, err := Classify(u)
	if err != nil {
		t.Fatalf("Classify: %v", err)
	}
	if res.Reduced == nil {
		t.Fatalf("redundancy not detected")
	}
	reduced, err := NewPlan(res.Reduced, inst, nil)
	if err != nil {
		t.Fatalf("NewPlan(reduced): %v", err)
	}
	if full.Count() != reduced.Count() {
		t.Errorf("full union %d answers, reduced %d", full.Count(), reduced.Count())
	}
}

// TestDelayMeasurementSmoke asserts the DelayClin signature at test scale:
// growing the input 8× must not grow the mean delay more than ~4× (noise
// allowance), while preprocessing grows.
func TestDelayMeasurementSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	u := MustParse(`
		Q1(x,y,w) <- R1(x,z), R2(z,y), R3(y,w).
		Q2(x,y,w) <- R1(x,y), R2(y,w).
	`)
	measure := func(width int) (prepPerInput, meanDelay float64, answers int) {
		inst := workload.Example2Instance(width, 3, 11)
		plan, err := NewPlan(u, inst, nil)
		if err != nil {
			t.Fatal(err)
		}
		if plan.Mode != ConstantDelay {
			t.Fatal("not constant delay")
		}
		// Take the best of 3 runs to damp scheduler noise.
		best := -1.0
		for r := 0; r < 3; r++ {
			it := plan.Iterator()
			n := 0
			start := nowNanos()
			for {
				if _, ok := it.Next(); !ok {
					break
				}
				n++
			}
			el := float64(nowNanos()-start) / float64(n)
			if best < 0 || el < best {
				best = el
				answers = n
			}
		}
		return 0, best, answers
	}
	_, small, nSmall := measure(500)
	_, large, nLarge := measure(4000)
	if nLarge <= nSmall {
		t.Fatalf("output did not grow: %d vs %d", nSmall, nLarge)
	}
	if large > small*4 {
		t.Errorf("per-answer cost grew from %.0fns to %.0fns on 8× input — not constant delay", small, large)
	}
}

func nowNanos() int64 {
	return time.Now().UnixNano()
}
