package ucq

import (
	"context"
	"fmt"
	"runtime"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/workload"
)

// TestWorkStealingSkewSpeedup asserts the acceptance bar of the executor
// refactor on machines with enough cores: on the E16 workload (a self-join
// with no safe partition attribute and ~91% output skew), the
// work-stealing executor at 8 workers must beat the per-branch-worker
// model — where the whole branch serialises on one goroutine — by ≥ 2x.
// Skipped below 8 CPUs (a scheduler cannot conjure parallel speedup out of
// timeshared cores) and in -short mode.
func TestWorkStealingSkewSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock scaling measurement")
	}
	if runtime.NumCPU() < 8 {
		t.Skipf("need ≥ 8 CPUs for an 8-worker scaling assertion, have %d", runtime.NumCPU())
	}

	u := MustParse("Q(x,y,w) <- R2(x,y), R2(y,w).")
	inst := workload.SelfJoinSkew(1000, 1000, 110, 30, 1)
	want := 1000*1000 + 110*30*30
	cert, ok := FindCertificate(u, nil)
	if !ok {
		t.Fatal("no certificate")
	}
	plan, err := core.NewUnionPlan(u, cert, inst)
	if err != nil {
		t.Fatal(err)
	}

	drainN := func(workers int) time.Duration {
		start := time.Now()
		it := plan.IteratorParallelCtx(context.Background(), core.ExecOptions{Workers: workers})
		n := 0
		for {
			if _, ok := it.Next(); !ok {
				break
			}
			n++
		}
		if n != want {
			t.Fatalf("workers=%d: %d answers, want %d", workers, n, want)
		}
		return time.Since(start)
	}

	// worksteal-1 is the honest single-worker baseline: the same executor
	// and merge, with parallelism as the only variable — exactly what the
	// pre-executor model delivered for this query (one indivisible branch,
	// however many workers were configured). Best of 3 on both sides
	// guards against scheduler noise.
	best := func(workers int) time.Duration {
		b := time.Duration(1<<62 - 1)
		for i := 0; i < 3; i++ {
			if d := drainN(workers); d < b {
				b = d
			}
		}
		return b
	}
	single := best(1)
	eight := best(8)
	speedup := float64(single) / float64(eight)
	t.Logf("skewed self-join: 1 worker %v, 8 workers %v, speedup %.2fx", single, eight, speedup)
	if speedup < 2 {
		t.Errorf("work-stealing at 8 workers speeds up %.2fx over one worker, want ≥ 2x", speedup)
	}
}

// TestWorkStealingUsesAllWorkersOnSkew checks the mechanism rather than
// the wall clock (so it runs on any machine): draining the skewed
// self-join with 8 workers must involve steals and re-splits — the heavy
// branch is decomposed, not owned end to end by one goroutine.
func TestWorkStealingUsesAllWorkersOnSkew(t *testing.T) {
	u := MustParse("Q(x,y,w) <- R2(x,y), R2(y,w).")
	inst := workload.SelfJoinSkew(200, 200, 30, 10, 1)
	want := 200*200 + 30*10*10
	cert, ok := FindCertificate(u, nil)
	if !ok {
		t.Fatal("no certificate")
	}
	plan, err := core.NewUnionPlan(u, cert, inst)
	if err != nil {
		t.Fatal(err)
	}
	it := plan.IteratorParallelCtx(context.Background(), core.ExecOptions{Workers: 8, BatchSize: 16})
	n := 0
	for {
		if _, ok := it.Next(); !ok {
			break
		}
		n++
	}
	if n != want {
		t.Fatalf("%d answers, want %d", n, want)
	}
	st := it.Stats()
	if st.Tasks < 8 {
		t.Errorf("only %d tasks ran; the branch was not decomposed (stats %+v)", st.Tasks, st)
	}
	if st.Splits == 0 && st.Steals == 0 {
		t.Errorf("no steals or splits on a skewed branch (stats %+v)", st)
	}
	if testing.Verbose() {
		fmt.Printf("worksteal stats: %+v\n", st)
	}
}
