package ucq

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/baseline"
	"repro/internal/workload"
)

const example2Src = `
	Q1(x,y,w) <- R1(x,z), R2(z,y), R3(y,w).
	Q2(x,y,w) <- R1(x,y), R2(y,w).
`

func TestParseAndClassify(t *testing.T) {
	u := MustParse(example2Src)
	res, err := Classify(u)
	if err != nil {
		t.Fatalf("Classify: %v", err)
	}
	if res.Verdict != Tractable {
		t.Errorf("verdict = %v (%s)", res.Verdict, res.Reason)
	}
	if res.Certificate == nil {
		t.Errorf("no certificate attached")
	}
}

func TestClassifyCQClasses(t *testing.T) {
	if got := ClassifyCQ(MustParseCQ("Q(x,y) <- R(x,y).")); got != FreeConnex {
		t.Errorf("class = %v", got)
	}
	if got := ClassifyCQ(MustParseCQ("Q(x,y) <- R(x,z), S(z,y).")); got != AcyclicNotFreeConnex {
		t.Errorf("class = %v", got)
	}
	if got := ClassifyCQ(MustParseCQ("Q(x) <- R(x,y), S(y,z), T(z,x).")); got != Cyclic {
		t.Errorf("class = %v", got)
	}
}

func TestPlanConstantDelayMode(t *testing.T) {
	u := MustParse(example2Src)
	inst := workload.Example2Instance(50, 3, 1)
	p, err := NewPlan(u, inst, nil)
	if err != nil {
		t.Fatalf("NewPlan: %v", err)
	}
	if p.Mode != ConstantDelay {
		t.Fatalf("mode = %v", p.Mode)
	}
	got := p.Materialize()
	want, err := baseline.EvalUCQ(u, inst)
	if err != nil {
		t.Fatalf("baseline: %v", err)
	}
	if got.Len() != want.Len() {
		t.Errorf("answers = %d, want %d", got.Len(), want.Len())
	}
	if p.Count() != want.Len() {
		t.Errorf("Count = %d, want %d", p.Count(), want.Len())
	}
}

func TestPlanParallelMode(t *testing.T) {
	u := MustParse(example2Src)
	inst := workload.Example2Instance(50, 3, 1)
	seq, err := NewPlan(u, inst, nil)
	if err != nil {
		t.Fatalf("NewPlan: %v", err)
	}
	par, err := NewPlan(u, inst, &PlanOptions{Parallel: true})
	if err != nil {
		t.Fatalf("NewPlan(parallel): %v", err)
	}
	if par.Mode != ConstantDelay {
		t.Fatalf("mode = %v", par.Mode)
	}
	want := seq.Materialize().SortedRows()
	got := par.Materialize().SortedRows()
	if len(got) != len(want) {
		t.Fatalf("answers = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if !got[i].Equal(want[i]) {
			t.Fatalf("answer %d = %v, want %v", i, got[i], want[i])
		}
	}
	// Abandoning a parallel stream early: CloseAnswers releases the
	// workers, and is a harmless no-op on plain streams.
	it := par.Iterator()
	if _, ok := it.Next(); !ok {
		t.Fatal("no answers")
	}
	CloseAnswers(it)
	CloseAnswers(seq.Iterator())

	// Parallel naive fallback agrees with the sequential evaluator.
	un := MustParse("Q(x,y) <- R1(x,z), R2(z,y).")
	instN := workload.RandomForQuery(un, 40, 8, 2)
	pn, err := NewPlan(un, instN, &PlanOptions{Parallel: true})
	if err != nil {
		t.Fatalf("NewPlan: %v", err)
	}
	if pn.Mode != Naive {
		t.Fatalf("mode = %v", pn.Mode)
	}
	wantN, _ := baseline.EvalUCQ(un, instN)
	if got := pn.Count(); got != wantN.Len() {
		t.Errorf("parallel naive answers = %d, want %d", got, wantN.Len())
	}
}

func TestPlanNaiveFallback(t *testing.T) {
	// The matrix-multiplication query is intractable: the plan falls back.
	u := MustParse("Q(x,y) <- R1(x,z), R2(z,y).")
	inst := workload.RandomForQuery(u, 40, 8, 2)
	p, err := NewPlan(u, inst, nil)
	if err != nil {
		t.Fatalf("NewPlan: %v", err)
	}
	if p.Mode != Naive {
		t.Fatalf("mode = %v", p.Mode)
	}
	want, _ := baseline.EvalUCQ(u, inst)
	if got := p.Count(); got != want.Len() {
		t.Errorf("answers = %d, want %d", got, want.Len())
	}
	// RequireConstantDelay fails instead.
	if _, err := NewPlan(u, inst, &PlanOptions{RequireConstantDelay: true}); err == nil {
		t.Errorf("RequireConstantDelay did not fail")
	}
	// ForceNaive works on tractable queries too.
	u2 := MustParse(example2Src)
	inst2 := workload.Example2Instance(20, 2, 3)
	p2, err := NewPlan(u2, inst2, &PlanOptions{ForceNaive: true})
	if err != nil {
		t.Fatalf("NewPlan: %v", err)
	}
	if p2.Mode != Naive {
		t.Errorf("ForceNaive ignored")
	}
}

func TestPlanValidatesSchema(t *testing.T) {
	u := MustParse("Q(x,y) <- R1(x,z), R2(z,y).")
	if _, err := NewPlan(u, NewInstance(), nil); err == nil {
		t.Errorf("missing relations accepted")
	}
	inst := NewInstance()
	inst.AddRelation(NewRelation("R1", 3))
	inst.AddRelation(NewRelation("R2", 2))
	if _, err := NewPlan(u, inst, nil); err == nil {
		t.Errorf("arity mismatch accepted")
	}
	if _, err := NewPlan(&UCQ{}, NewInstance(), nil); err == nil {
		t.Errorf("invalid union accepted")
	}
}

func TestEnumerateConvenience(t *testing.T) {
	u := MustParse(example2Src)
	inst := workload.Example2Instance(20, 2, 4)
	it, err := Enumerate(u, inst)
	if err != nil {
		t.Fatalf("Enumerate: %v", err)
	}
	seen := make(map[string]bool)
	for {
		tup, ok := it.Next()
		if !ok {
			break
		}
		if seen[tup.Key()] {
			t.Fatalf("duplicate answer %v", tup)
		}
		seen[tup.Key()] = true
	}
	want, _ := baseline.EvalUCQ(u, inst)
	if len(seen) != want.Len() {
		t.Errorf("answers = %d, want %d", len(seen), want.Len())
	}
}

func TestEnumerateCQAndDecide(t *testing.T) {
	q := MustParseCQ("Q(x,y,w) <- R1(x,y), R2(y,w).")
	inst := workload.Chain([]string{"R1", "R2"}, []int{2, 2}, 10, 2, 5)
	it, err := EnumerateCQ(q, inst)
	if err != nil {
		t.Fatalf("EnumerateCQ: %v", err)
	}
	n := 0
	for {
		if _, ok := it.Next(); !ok {
			break
		}
		n++
	}
	if n == 0 {
		t.Errorf("no answers on chain instance")
	}
	ok, err := DecideCQ(q, inst)
	if err != nil || !ok {
		t.Errorf("DecideCQ = %v, %v", ok, err)
	}
	// Non-free-connex CQ is rejected by EnumerateCQ.
	if _, err := EnumerateCQ(MustParseCQ("Q(x,y) <- R1(x,z), R2(z,y)."), inst); err == nil {
		t.Errorf("EnumerateCQ accepted a non-free-connex CQ")
	}
}

func TestDecideUnionWithCyclicCQ(t *testing.T) {
	u := MustParse(`
		Q1(x,y) <- R1(x,y), R2(y,z), R3(z,x).
		Q2(x,y) <- R4(x,y).
	`)
	inst := NewInstance()
	r1 := NewRelation("R1", 2)
	r1.AppendInts(1, 2)
	r2 := NewRelation("R2", 2)
	r2.AppendInts(2, 3)
	r3 := NewRelation("R3", 2)
	r3.AppendInts(3, 1)
	r4 := NewRelation("R4", 2)
	inst.AddRelation(r1)
	inst.AddRelation(r2)
	inst.AddRelation(r3)
	inst.AddRelation(r4)
	ok, err := Decide(u, inst)
	if err != nil || !ok {
		t.Errorf("Decide = %v, %v (triangle present)", ok, err)
	}
	// Remove the triangle: no answers anywhere.
	inst.AddRelation(NewRelation("R3", 2))
	ok, err = Decide(u, inst)
	if err != nil || ok {
		t.Errorf("Decide = %v, %v (no answers expected)", ok, err)
	}
}

func TestReadWriteRelationCSV(t *testing.T) {
	in := "# comment\n1,2\n3 4\n\n5;6\n"
	rel, err := ReadRelationCSV(strings.NewReader(in), "R")
	if err != nil {
		t.Fatalf("ReadRelationCSV: %v", err)
	}
	if rel.Len() != 3 || rel.Arity() != 2 {
		t.Fatalf("rel = %v", rel)
	}
	var sb strings.Builder
	if err := WriteRelationCSV(&sb, rel); err != nil {
		t.Fatalf("WriteRelationCSV: %v", err)
	}
	if sb.String() != "1,2\n3,4\n5,6\n" {
		t.Errorf("csv = %q", sb.String())
	}
}

func TestReadRelationCSVErrors(t *testing.T) {
	if _, err := ReadRelationCSV(strings.NewReader(""), "R"); err == nil {
		t.Errorf("empty input accepted")
	}
	if _, err := ReadRelationCSV(strings.NewReader("1,2\n1\n"), "R"); err == nil {
		t.Errorf("ragged rows accepted")
	}
	if _, err := ReadRelationCSV(strings.NewReader("a,b\n"), "R"); err == nil {
		t.Errorf("non-integer input accepted")
	}
}

func TestValueHelpers(t *testing.T) {
	if V(7) != TaggedValue(7, 0) {
		t.Errorf("V and TaggedValue disagree")
	}
	if TaggedValue(7, 1).Tag() != 1 {
		t.Errorf("tag lost")
	}
}

func TestRandomizedPublicAPIAgainstBaseline(t *testing.T) {
	queries := []string{
		example2Src,
		"Q(a,b) <- R1(a,b), R2(b,c).",
		`
			Q1(x,y) <- R1(x,y).
			Q2(x,y) <- R2(x,y), R3(y).
		`,
	}
	rng := rand.New(rand.NewSource(11))
	for _, src := range queries {
		u := MustParse(src)
		for trial := 0; trial < 5; trial++ {
			inst := workload.RandomForQuery(u, 30, 6, rng.Int63())
			p, err := NewPlan(u, inst, nil)
			if err != nil {
				t.Fatalf("%s: NewPlan: %v", src, err)
			}
			want, err := baseline.EvalUCQ(u, inst)
			if err != nil {
				t.Fatalf("baseline: %v", err)
			}
			if got := p.Count(); got != want.Len() {
				t.Errorf("%s trial %d (%v): answers = %d, want %d", src, trial, p.Mode, got, want.Len())
			}
		}
	}
}
