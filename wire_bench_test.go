// BenchmarkE21WireThroughput lives in the external test package for the
// same reason as E19: it drives repro/internal/server end to end over
// real HTTP, which the internal bench file cannot import without a cycle.
package ucq_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"

	ucq "repro"
	"repro/internal/server"
)

// countReader counts the bytes pulled through it — the decoded stream's
// true wire size, whichever encoding framed it.
type countReader struct {
	r io.Reader
	n int64
}

func (c *countReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// BenchmarkE21WireThroughput: answers/sec through one server under
// concurrent streaming clients, NDJSON vs the binary columnar frames —
// the tentpole number for the wire protocol. Each op is a full round of
// clients streams of a 40k-answer join, every stream decoded client-side
// with ucq.DecodeAnswerStream and checked for the exact answer count, so
// the measurement covers encode, transport and decode. MaxStreams is
// pinned well above the client count: this measures the encodings, not
// the admission gate. Core-count-sensitive (concurrent streams share the
// scheduler), so benchgate skips it across machines with different
// GOMAXPROCS (the ^BenchmarkE2[01] rule).
func BenchmarkE21WireThroughput(b *testing.B) {
	const (
		query   = "Q(x,z,y) <- R(x,z), S(z,y)."
		clients = 4
	)
	rels, want := fanoutRelations(0, 0, 50, 40, 20) // 50·40·20 = 40000 answers
	body, err := json.Marshal(map[string]any{"relations": rels})
	if err != nil {
		b.Fatal(err)
	}
	qbody, err := json.Marshal(map[string]any{"query": query})
	if err != nil {
		b.Fatal(err)
	}

	for _, enc := range []struct{ name, accept string }{
		{"ndjson", ucq.MediaTypeNDJSON},
		{"binary", ucq.MediaTypeBinary},
	} {
		b.Run(fmt.Sprintf("encoding=%s/clients=%d", enc.name, clients), func(b *testing.B) {
			s := server.New(server.Config{MaxStreams: 64})
			ts := httptest.NewServer(s.Handler())
			defer ts.Close()

			req, err := http.NewRequest(http.MethodPut, ts.URL+"/datasets/join", bytes.NewReader(body))
			if err != nil {
				b.Fatal(err)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				b.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				b.Fatalf("PUT dataset: status %d", resp.StatusCode)
			}

			var answers, wireBytes atomic.Int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var wg sync.WaitGroup
				errs := make(chan error, clients)
				for c := 0; c < clients; c++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						req, err := http.NewRequest(http.MethodPost, ts.URL+"/datasets/join/query", bytes.NewReader(qbody))
						if err != nil {
							errs <- err
							return
						}
						req.Header.Set("Content-Type", "application/json")
						req.Header.Set("Accept", enc.accept)
						resp, err := http.DefaultClient.Do(req)
						if err != nil {
							errs <- err
							return
						}
						defer resp.Body.Close()
						if resp.StatusCode != http.StatusOK {
							errs <- fmt.Errorf("status %d", resp.StatusCode)
							return
						}
						cr := &countReader{r: resp.Body}
						got := 0
						tr, err := ucq.DecodeAnswerStream(cr, resp.Header.Get("Content-Type"), func(ucq.Tuple) bool {
							got++
							return true
						})
						if err != nil {
							errs <- err
							return
						}
						if tr == nil || tr.Error != "" || got != want {
							errs <- fmt.Errorf("answers = %d, want %d (trailer %+v)", got, want, tr)
							return
						}
						answers.Add(int64(got))
						wireBytes.Add(cr.n)
					}()
				}
				wg.Wait()
				close(errs)
				for err := range errs {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(answers.Load())/b.Elapsed().Seconds(), "answers/sec")
			b.ReportMetric(float64(wireBytes.Load())/float64(answers.Load()), "bytes/answer")
		})
	}
}
