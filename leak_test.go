package ucq

import (
	"context"
	"runtime"
	"testing"
	"time"

	"repro/internal/workload"
)

// The coordinator-side half of this hygiene suite — connection/goroutine
// leaks across retried scatter calls — lives in
// internal/cluster/leak_test.go: it needs internal/server for real
// workers, which this package cannot import without a cycle.

// waitGoroutines polls until the process goroutine count settles back to
// the baseline (small slack for runtime/test helpers), failing after a
// generous deadline. Polling instead of a fixed sleep keeps the test fast
// when teardown is prompt and robust when the scheduler is slow.
func waitGoroutines(t *testing.T, baseline int, what string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.Gosched()
		if runtime.NumGoroutine() <= baseline+3 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s leaked goroutines: %d now vs %d at baseline", what, runtime.NumGoroutine(), baseline)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestGoroutineHygieneCancelledEnumerations is the leak-regression test
// for the executor teardown paths: N abandoned or cancelled enumerations
// across the parallel, work-stealing and sharded engines must leave the
// goroutine count where it started — CloseAnswers and context
// cancellation both release every worker, and no enumeration keeps
// running past cancellation.
func TestGoroutineHygieneCancelledEnumerations(t *testing.T) {
	u := MustParse("Q(x,y,w) <- R1(x,y), R2(y,w).")
	// Enough answers (~114k) that an abandoned stream is genuinely
	// mid-enumeration when released.
	inst := workload.SkewedJoin(2000, 50, 20, 40, 3, 7)
	pq, err := Prepare(u, nil)
	if err != nil {
		t.Fatal(err)
	}
	if pq.Mode != ConstantDelay {
		t.Fatal("leak test query must certify constant-delay")
	}

	execs := []*PlanOptions{
		{Parallel: true},
		{Parallel: true, Workers: 4, ParallelBatch: 8},
		{Parallel: true, Shards: 4},
		{Parallel: true, Shards: 2, Workers: 4},
	}
	baseline := runtime.NumGoroutine()

	for round := 0; round < 20; round++ {
		// Abandon-then-Close: pull a few answers and release explicitly.
		for _, opts := range execs {
			p, err := pq.BindExec(inst, opts)
			if err != nil {
				t.Fatal(err)
			}
			it := p.Iterator()
			for j := 0; j < 3; j++ {
				if _, ok := it.Next(); !ok {
					t.Fatal("stream ended before the abandonment point")
				}
			}
			CloseAnswers(it)
		}
		// Context cancellation without Close: the bind context alone must
		// release the workers.
		ctx, cancel := context.WithCancel(context.Background())
		p, err := pq.BindExecContext(ctx, inst, &PlanOptions{Parallel: true, Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		it := p.Iterator()
		if _, ok := it.Next(); !ok {
			t.Fatal("no first answer")
		}
		cancel()
	}
	waitGoroutines(t, baseline, "cancelled enumerations")
}

// TestCancelledStreamStopsEnumerating pins the second half of the
// contract: after cancellation the stream ends — it does not keep
// producing the full answer set out of buffered batches.
func TestCancelledStreamStopsEnumerating(t *testing.T) {
	u := MustParse("Q(x,z,y) <- R(x,z), S(z,y).")
	inst := NewInstance()
	r := NewRelation("R", 2)
	s := NewRelation("S", 2)
	for i := int64(0); i < 1500; i++ {
		r.AppendInts(i, 0)
		s.AppendInts(0, i)
	}
	inst.AddRelation(r)
	inst.AddRelation(s)

	ctx, cancel := context.WithCancel(context.Background())
	p, err := NewPlan(u, inst, &PlanOptions{Parallel: true, Workers: 4, ParallelBatch: 16})
	if err != nil {
		t.Fatal(err)
	}
	it := p.AnswersContext(ctx)
	defer CloseAnswers(it)
	if _, ok := it.Next(); !ok {
		t.Fatal("no first answer")
	}
	cancel()
	// After cancellation only already-produced batches may surface: far
	// fewer than the 2.25M total answers.
	tail := 0
	for {
		if _, ok := it.Next(); !ok {
			break
		}
		tail++
	}
	if total := 1500 * 1500; tail >= total/2 {
		t.Fatalf("stream produced %d answers after cancellation (of %d total)", tail, total)
	}
}
