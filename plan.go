package ucq

import (
	"context"
	"fmt"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/database"
	"repro/internal/enumeration"
	"repro/internal/homomorphism"
	"repro/internal/yannakakis"
)

// Mode states which evaluation strategy a plan uses.
type Mode int

const (
	// ConstantDelay: the query was certified free-connex; enumeration runs
	// with linear preprocessing and constant delay (Theorem 12).
	ConstantDelay Mode = iota
	// Naive: no certificate was found; evaluation joins and deduplicates
	// with no delay guarantee.
	Naive
)

// String renders the mode.
func (m Mode) String() string {
	if m == ConstantDelay {
		return "constant-delay"
	}
	return "naive"
}

// PlanOptions tunes plan construction.
type PlanOptions struct {
	// Search bounds the certificate search.
	Search *SearchOptions
	// ForceNaive skips certification and uses the naive evaluator.
	ForceNaive bool
	// RequireConstantDelay makes NewPlan fail instead of falling back to
	// the naive evaluator.
	RequireConstantDelay bool
	// KeepRedundant skips the containment-based reduction (Example 1);
	// redundant CQs never change the answer set, only the plan.
	KeepRedundant bool
	// Parallel drains the union's branches concurrently: in constant-delay
	// mode each certified CQ runs in its own goroutine feeding a shared
	// dedup merge, and in naive mode the member CQs are joined in parallel.
	// The answer set is identical to sequential evaluation; the answer
	// order is nondeterministic in constant-delay mode. Iterators from a
	// parallel plan must be drained to exhaustion or Closed (see
	// CloseAnswers) to release their workers.
	Parallel bool
	// ParallelBatch sets how many answers each branch worker hands to the
	// merge per synchronization; 0 selects a sensible default.
	ParallelBatch int
	// Shards fans each union branch out across N hash-partitioned shards
	// of the instance: the planner picks a safe partition attribute from
	// every CQ's join structure (preferring head variables, whose shard
	// streams are disjoint and skip deduplication) and falls back to the
	// unsharded branch when none exists. Requires Parallel. 0 disables
	// sharding.
	Shards int
	// Workers bounds the work-stealing executor's worker pool for parallel
	// plans. Enumeration work is decomposed into (plan, row-range) tasks
	// that workers steal and re-split, so a single heavy branch or shard no
	// longer serialises on one goroutine. 0 selects GOMAXPROCS. Requires
	// Parallel.
	Workers int
}

// OptionsError reports an invalid PlanOptions combination. NewPlan returns
// it (match with errors.As) instead of silently ignoring the conflicting
// fields.
type OptionsError struct {
	// Field names the offending option.
	Field string
	// Reason explains the conflict.
	Reason string
}

// Error implements error.
func (e *OptionsError) Error() string {
	return fmt.Sprintf("ucq: invalid PlanOptions: %s: %s", e.Field, e.Reason)
}

// validate rejects option combinations that previously degraded silently.
func (o *PlanOptions) validate() error {
	if o.ForceNaive && o.RequireConstantDelay {
		return &OptionsError{Field: "ForceNaive", Reason: "contradicts RequireConstantDelay"}
	}
	if o.ParallelBatch < 0 {
		return &OptionsError{Field: "ParallelBatch", Reason: fmt.Sprintf("must be ≥ 0, got %d", o.ParallelBatch)}
	}
	if o.Shards < 0 {
		return &OptionsError{Field: "Shards", Reason: fmt.Sprintf("must be ≥ 0, got %d", o.Shards)}
	}
	if o.Shards > 0 && !o.Parallel {
		return &OptionsError{Field: "Shards", Reason: "sharded enumeration requires Parallel"}
	}
	if o.ParallelBatch > 0 && !o.Parallel {
		return &OptionsError{Field: "ParallelBatch", Reason: "batching requires Parallel"}
	}
	if o.Workers < 0 {
		return &OptionsError{Field: "Workers", Reason: fmt.Sprintf("must be ≥ 0, got %d", o.Workers)}
	}
	if o.Workers > 0 && !o.Parallel {
		return &OptionsError{Field: "Workers", Reason: "a worker pool requires Parallel"}
	}
	return nil
}

// Plan is a prepared evaluation of one UCQ over one instance.
type Plan struct {
	// Query is the evaluated union as given.
	Query *UCQ
	// Evaluated is the non-redundant union actually planned (equal to
	// Query unless containment pruning removed CQs).
	Evaluated *UCQ
	// Mode states the strategy in use.
	Mode Mode
	// Cert is the free-connexity certificate (ConstantDelay mode only).
	Cert *Certificate

	union    *core.UnionPlan
	inst     *database.Instance
	parallel bool
	batch    int
	shards   int
	workers  int
	// ctx is the binding context from BindExecContext: the default parent
	// for the background work of every Answers stream this plan produces.
	ctx context.Context
}

// PreparedQuery is the instance-independent half of a plan: the outcome of
// option validation, containment-based redundancy removal and the
// free-connexity certificate search. All of it depends only on the query
// (and the preparation options), never on the data, so a PreparedQuery can
// be built once and bound to many instances — this is what a long-lived
// server caches per (query, schema) to amortize the Theorem 12 certificate
// search across requests, while the per-instance preprocessing happens in
// Bind.
//
// A PreparedQuery is immutable after Prepare returns and is safe for
// concurrent use: Bind and BindExec may be called from any number of
// goroutines simultaneously.
type PreparedQuery struct {
	// Query is the union as given to Prepare.
	Query *UCQ
	// Evaluated is the non-redundant union actually planned.
	Evaluated *UCQ
	// Mode states the strategy bindings of this query will use.
	Mode Mode
	// Cert is the free-connexity certificate (ConstantDelay mode only).
	Cert *Certificate

	opts PlanOptions
}

// Prepare runs the instance-independent part of planning: it validates the
// query and options, removes redundant (contained) CQs, and searches for a
// free-connexity certificate, deciding between constant-delay and naive
// evaluation. The result is bound to concrete instances with Bind.
func Prepare(u *UCQ, opts *PlanOptions) (*PreparedQuery, error) {
	if err := u.Validate(); err != nil {
		return nil, err
	}
	if opts == nil {
		opts = &PlanOptions{}
	}
	if err := opts.validate(); err != nil {
		return nil, err
	}
	work := u
	if !opts.KeepRedundant {
		work = homomorphism.RemoveRedundant(u)
	}
	pq := &PreparedQuery{Query: u, Evaluated: work, Mode: Naive, opts: *opts}
	if !opts.ForceNaive {
		if cert, ok := core.FindCertificate(work, opts.Search); ok {
			pq.Mode = ConstantDelay
			pq.Cert = cert
			return pq, nil
		}
	}
	if opts.RequireConstantDelay {
		return nil, fmt.Errorf("ucq: no free-connexity certificate found and constant delay was required")
	}
	return pq, nil
}

// Bind attaches the prepared query to an instance, running the per-instance
// Theorem 12 preprocessing (constant-delay mode) or validating the schema
// (naive mode). The execution options given at Prepare time apply.
func (pq *PreparedQuery) Bind(inst *Instance) (*Plan, error) {
	return pq.BindExec(inst, nil)
}

// BindExec is Bind with per-binding execution options: Parallel,
// ParallelBatch, Shards and Workers are taken from exec instead of the
// Prepare-time options, so one cached PreparedQuery can serve requests that
// differ only in execution strategy. Fields of exec that shape preparation
// (ForceNaive, RequireConstantDelay, KeepRedundant, Search) are fixed at
// Prepare time and ignored here. A nil exec reuses the Prepare-time options
// unchanged.
func (pq *PreparedQuery) BindExec(inst *Instance, exec *PlanOptions) (*Plan, error) {
	return pq.BindExecContext(context.Background(), inst, exec)
}

// BindExecContext is BindExec with end-to-end cancellation: ctx is checked
// during the per-instance Theorem 12 preprocessing (a cancelled bind aborts
// between extensions with ctx's error) and becomes the default parent
// context of every Answers stream the plan produces — cancelling it
// releases the executor workers behind Iterator's streams, whether or not
// CloseAnswers is called. A nil ctx means context.Background().
func (pq *PreparedQuery) BindExecContext(ctx context.Context, inst *Instance, exec *PlanOptions) (*Plan, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	opts := pq.opts
	if exec != nil {
		if err := exec.validate(); err != nil {
			return nil, err
		}
		opts.Parallel = exec.Parallel
		opts.ParallelBatch = exec.ParallelBatch
		opts.Shards = exec.Shards
		opts.Workers = exec.Workers
	}
	p := &Plan{
		Query:     pq.Query,
		Evaluated: pq.Evaluated,
		Mode:      pq.Mode,
		Cert:      pq.Cert,
		inst:      inst,
		parallel:  opts.Parallel,
		batch:     opts.ParallelBatch,
		shards:    opts.Shards,
		workers:   opts.Workers,
		ctx:       ctx,
	}
	if pq.Mode == ConstantDelay {
		up, err := core.NewUnionPlanCtx(ctx, pq.Evaluated, pq.Cert, inst)
		if err != nil {
			return nil, err
		}
		if opts.Shards > 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			if err := up.PrepareShards(opts.Shards); err != nil {
				return nil, err
			}
		}
		p.union = up
		return p, nil
	}
	// Validate relations up front so Iterator can't fail later.
	for _, d := range pq.Query.Schema() {
		r := inst.Relation(d.Name)
		if r == nil {
			return nil, fmt.Errorf("ucq: no relation %q in the instance", d.Name)
		}
		if r.Arity() != d.Arity {
			return nil, fmt.Errorf("ucq: relation %q has arity %d, query uses %d", d.Name, r.Arity(), d.Arity)
		}
	}
	return p, nil
}

// NewPlan prepares the evaluation of u over inst: it removes redundant
// (contained) CQs, searches for a free-connexity certificate and builds
// the Theorem 12 pipeline, falling back to the naive evaluator when no
// certificate is found (unless RequireConstantDelay is set). It is
// Prepare followed by Bind; callers evaluating one query over many
// instances should call Prepare once and Bind per instance.
func NewPlan(u *UCQ, inst *Instance, opts *PlanOptions) (*Plan, error) {
	pq, err := Prepare(u, opts)
	if err != nil {
		return nil, err
	}
	return pq.Bind(inst)
}

// Iterator returns a fresh duplicate-free stream of the union's answers.
// With PlanOptions.Parallel set, the stream is backed by the work-stealing
// executor's worker pool; drain it fully or release it with CloseAnswers.
// The binding context given to BindExecContext (if any) parents the
// stream's background work.
func (p *Plan) Iterator() Answers {
	return p.AnswersContext(p.bindCtx())
}

// AnswersContext returns a fresh duplicate-free stream of the union's
// answers whose background work is cancelled when ctx is done: for
// parallel plans, cancellation releases every executor worker within one
// batch and the stream ends early (no error is surfaced — cancellation is
// abandonment, and the caller holding ctx knows). Streams without
// background workers ignore ctx once constructed; a ctx already cancelled
// at call time yields an empty stream. A nil ctx means the binding context
// (or Background).
func (p *Plan) AnswersContext(ctx context.Context) Answers {
	if ctx == nil {
		ctx = p.bindCtx()
	}
	if ctx.Err() != nil {
		return enumeration.NewSliceIterator(nil)
	}
	if p.Mode == ConstantDelay {
		eo := core.ExecOptions{BatchSize: p.batch, Workers: p.workers}
		if p.shards > 0 {
			it, err := p.union.IteratorParallelShardedCtx(ctx, eo)
			if err != nil {
				// NewPlan ran PrepareShards; reaching this is a bug.
				panic(fmt.Sprintf("ucq: sharded iterator failed after preparation: %v", err))
			}
			return it
		}
		if p.parallel {
			return p.union.IteratorParallelCtx(ctx, eo)
		}
		return p.union.Iterator()
	}
	eval := baseline.EvalUCQ
	switch {
	case p.shards > 0:
		eval = func(u *UCQ, inst *Instance) (*Relation, error) {
			return baseline.EvalUCQShardedParallel(u, inst, p.shards)
		}
	case p.parallel:
		eval = baseline.EvalUCQParallel
	}
	rel, err := eval(p.Evaluated, p.inst)
	if err != nil {
		// NewPlan validated the schema; reaching this is a bug.
		panic(fmt.Sprintf("ucq: naive evaluation failed after validation: %v", err))
	}
	return enumeration.NewSliceIterator(rel.Rows())
}

// bindCtx returns the context recorded at bind time, or Background.
func (p *Plan) bindCtx() context.Context {
	if p.ctx != nil {
		return p.ctx
	}
	return context.Background()
}

// CloseAnswers releases the worker goroutines behind a partially drained
// answer stream from a parallel plan, blocking until they have exited. It
// is safe to call on any Answers value: streams without background workers
// are left untouched, and wrapper iterators (chains, combinators) forward
// the release to every member.
func CloseAnswers(it Answers) {
	enumeration.CloseIterator(it)
}

// Materialize drains a fresh iterator into a relation.
func (p *Plan) Materialize() *Relation {
	out := database.NewRelation("answers", p.Query.Arity())
	it := p.Iterator()
	for {
		t, ok := it.Next()
		if !ok {
			return out
		}
		out.Append(t...)
	}
}

// Count drains a fresh iterator and returns the number of answers.
func (p *Plan) Count() int {
	n := 0
	it := p.Iterator()
	for {
		if _, ok := it.Next(); !ok {
			return n
		}
		n++
	}
}

// Explain renders a human-readable description of the plan: in
// constant-delay mode, the certified extensions, provider runs and per-CQ
// engine plans; in naive mode, a one-line notice.
func (p *Plan) Explain() string {
	if p.Mode == ConstantDelay {
		s := p.union.Explain()
		if p.shards > 0 {
			s += p.union.ExplainShards()
		}
		return s
	}
	return "naive plan: join and deduplicate (no certificate; no delay guarantee)\n"
}

// Enumerate is the one-call convenience: plan and return the answer stream.
func Enumerate(u *UCQ, inst *Instance) (Answers, error) {
	p, err := NewPlan(u, inst, nil)
	if err != nil {
		return nil, err
	}
	return p.Iterator(), nil
}

// EnumerateCQ enumerates a single free-connex CQ with the CDY engine
// directly (Theorem 3(1)); it errors when the CQ is not free-connex.
func EnumerateCQ(q *CQ, inst *Instance) (Answers, error) {
	plan, err := yannakakis.Prepare(q, inst, nil)
	if err != nil {
		return nil, err
	}
	it := plan.Iterator()
	return enumeration.Func(func() (Tuple, bool) {
		if !it.Next() {
			return nil, false
		}
		return it.HeadTuple(), true
	}), nil
}

// DecideCQ reports whether an acyclic CQ has at least one answer, in
// linear time (Theorem 3's tractable Decide).
func DecideCQ(q *CQ, inst *Instance) (bool, error) {
	return yannakakis.Decide(q, inst)
}

// Decide reports whether the union has at least one answer. Acyclic CQs are
// decided in linear time; cyclic ones fall back to the naive evaluator.
func Decide(u *UCQ, inst *Instance) (bool, error) {
	for _, q := range u.CQs {
		var ok bool
		var err error
		if ClassifyCQ(q) == Cyclic {
			ok, err = baseline.DecideCQ(q, inst)
		} else {
			ok, err = yannakakis.Decide(q, inst)
		}
		if err != nil {
			return false, err
		}
		if ok {
			return true, nil
		}
	}
	return false, nil
}
