package ucq

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"iter"
	"runtime"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/database"
	"repro/internal/enumeration"
	"repro/internal/homomorphism"
	"repro/internal/yannakakis"
)

// Mode states which evaluation strategy a plan uses.
type Mode int

const (
	// ConstantDelay: the query was certified free-connex; enumeration runs
	// with linear preprocessing and constant delay (Theorem 12).
	ConstantDelay Mode = iota
	// Naive: no certificate was found; evaluation joins and deduplicates
	// with no delay guarantee.
	Naive
)

// String renders the mode.
func (m Mode) String() string {
	if m == ConstantDelay {
		return "constant-delay"
	}
	return "naive"
}

// PlanOptions tunes plan construction.
type PlanOptions struct {
	// Search bounds the certificate search.
	Search *SearchOptions
	// ForceNaive skips certification and uses the naive evaluator.
	ForceNaive bool
	// RequireConstantDelay makes NewPlan fail instead of falling back to
	// the naive evaluator.
	RequireConstantDelay bool
	// KeepRedundant skips the containment-based reduction (Example 1);
	// redundant CQs never change the answer set, only the plan.
	KeepRedundant bool
	// Parallel drains the union's branches concurrently: in constant-delay
	// mode each certified CQ runs in its own goroutine feeding a shared
	// dedup merge, and in naive mode the member CQs are joined in parallel.
	// The answer set is identical to sequential evaluation; the answer
	// order is nondeterministic in constant-delay mode. Iterators from a
	// parallel plan must be drained to exhaustion or Closed (see
	// CloseAnswers) to release their workers.
	Parallel bool
	// ParallelBatch sets how many answers each branch worker hands to the
	// merge per synchronization; 0 selects a sensible default.
	ParallelBatch int
	// Shards fans each union branch out across N hash-partitioned shards
	// of the instance: the planner picks a safe partition attribute from
	// every CQ's join structure (preferring head variables, whose shard
	// streams are disjoint and skip deduplication) and falls back to the
	// unsharded branch when none exists. Requires Parallel. 0 disables
	// sharding.
	Shards int
	// Workers bounds the work-stealing executor's worker pool for parallel
	// plans. Enumeration work is decomposed into (plan, row-range) tasks
	// that workers steal and re-split, so a single heavy branch or shard no
	// longer serialises on one goroutine. 0 selects GOMAXPROCS. Requires
	// Parallel.
	Workers int
	// DedupBudget bounds the number of distinct answers the parallel
	// merge's dedup set holds in memory. Past it the set migrates to a
	// disk-backed table (internal/storage) and enumeration continues with
	// the identical answer set, trading dedup probes for disk reads instead
	// of growing without bound. With Auto, the budget also feeds the cost
	// model: an exact Theorem 12 count above it forces the spillable
	// parallel merge even where the mode choice would have been sequential.
	// 0 means unbounded (never spill). Requires Parallel or Auto.
	DedupBudget int64
	// SpillDir hosts spilled dedup tables (a private temp directory is
	// created per spill); empty selects os.TempDir(). Requires DedupBudget.
	SpillDir string
	// Auto lets the planner pick Parallel, Shards and Workers itself at
	// bind time, from what it already knows about the (query, instance)
	// pair: relation cardinalities, the exact per-branch answer counts of
	// the Theorem 12 counting pass, the estimated output skew of the best
	// partition attribute (sampled join-key frequencies), and GOMAXPROCS.
	// The resolved knobs and the reason for them are recorded on the plan
	// (see Plan.Decision) and rendered by Explain. Auto contradicts
	// explicitly set execution knobs — hand-picked options mean the caller
	// has decided.
	Auto bool
}

// OptionsError reports an invalid PlanOptions combination. NewPlan returns
// it (match with errors.As) instead of silently ignoring the conflicting
// fields.
type OptionsError struct {
	// Field names the offending option.
	Field string
	// Reason explains the conflict.
	Reason string
}

// Error implements error.
func (e *OptionsError) Error() string {
	return fmt.Sprintf("ucq: invalid PlanOptions: %s: %s", e.Field, e.Reason)
}

// validate rejects option combinations that previously degraded silently.
func (o *PlanOptions) validate() error {
	if o.ForceNaive && o.RequireConstantDelay {
		return &OptionsError{Field: "ForceNaive", Reason: "contradicts RequireConstantDelay"}
	}
	// Auto contradictions are reported before the pairwise knob rules so
	// the caller hears about the real conflict — "you asked the planner to
	// decide and also decided yourself" — not a derived one.
	if o.Auto {
		switch {
		case o.Parallel:
			return &OptionsError{Field: "Auto", Reason: "contradicts an explicit Parallel"}
		case o.Shards > 0:
			return &OptionsError{Field: "Auto", Reason: "contradicts an explicit Shards"}
		case o.Workers > 0:
			return &OptionsError{Field: "Auto", Reason: "contradicts an explicit Workers"}
		case o.ParallelBatch > 0:
			return &OptionsError{Field: "Auto", Reason: "contradicts an explicit ParallelBatch"}
		}
	}
	if o.ParallelBatch < 0 {
		return &OptionsError{Field: "ParallelBatch", Reason: fmt.Sprintf("must be ≥ 0, got %d", o.ParallelBatch)}
	}
	if o.Shards < 0 {
		return &OptionsError{Field: "Shards", Reason: fmt.Sprintf("must be ≥ 0, got %d", o.Shards)}
	}
	if o.Shards > 0 && !o.Parallel {
		return &OptionsError{Field: "Shards", Reason: "sharded enumeration requires Parallel"}
	}
	if o.ParallelBatch > 0 && !o.Parallel {
		return &OptionsError{Field: "ParallelBatch", Reason: "batching requires Parallel"}
	}
	if o.Workers < 0 {
		return &OptionsError{Field: "Workers", Reason: fmt.Sprintf("must be ≥ 0, got %d", o.Workers)}
	}
	if o.Workers > 0 && !o.Parallel {
		return &OptionsError{Field: "Workers", Reason: "a worker pool requires Parallel"}
	}
	if o.DedupBudget < 0 {
		return &OptionsError{Field: "DedupBudget", Reason: fmt.Sprintf("must be ≥ 0, got %d", o.DedupBudget)}
	}
	if o.DedupBudget > 0 && !o.Parallel && !o.Auto {
		return &OptionsError{Field: "DedupBudget", Reason: "the spillable dedup set lives on the parallel merge; requires Parallel or Auto"}
	}
	if o.SpillDir != "" && o.DedupBudget == 0 {
		return &OptionsError{Field: "SpillDir", Reason: "meaningless without a DedupBudget"}
	}
	return nil
}

// Plan is a prepared evaluation of one UCQ over one instance.
type Plan struct {
	// Query is the evaluated union as given.
	Query *UCQ
	// Evaluated is the non-redundant union actually planned (equal to
	// Query unless containment pruning removed CQs).
	Evaluated *UCQ
	// Mode states the strategy in use.
	Mode Mode
	// Cert is the free-connexity certificate (ConstantDelay mode only).
	Cert *Certificate

	union       *core.UnionPlan
	inst        *database.Instance
	parallel    bool
	batch       int
	shards      int
	workers     int
	spillBudget int64
	spillDir    string
	// decision is the Auto planner's resolved configuration and
	// provenance; nil for hand-picked execution options.
	decision *cost.Decision
	// ctx is the binding context from BindExecContext: the default parent
	// for the background work of every Answers stream this plan produces.
	ctx context.Context
	// Dataset provenance (zero-valued for inline-instance binds): the
	// snapshot the plan was bound against and whether the per-instance
	// preprocessing was served from the catalog's bind cache.
	dsName    string
	dsVersion uint64
	bindHit   bool
	// ds is the catalog dataset the plan was bound against (nil for
	// inline-instance and anonymous binds); the delta-maintenance API
	// reads the append log through it.
	ds *Dataset
}

// DatasetName returns the name of the dataset the plan was bound against,
// or "" for an inline-instance bind (NewPlan, Bind, BindExec).
func (p *Plan) DatasetName() string { return p.dsName }

// DatasetVersion returns the version of the dataset snapshot the plan was
// bound against, or 0 for an inline-instance bind. The plan enumerates
// that snapshot even if the dataset is replaced afterwards.
func (p *Plan) DatasetVersion() uint64 { return p.dsVersion }

// BindCacheHit reports whether the plan's per-instance preprocessing was
// served from the catalog's bind cache rather than computed (BindDataset
// only; inline binds never hit the cache).
func (p *Plan) BindCacheHit() bool { return p.bindHit }

// Decision is the Auto planner's provenance record: the execution knobs it
// resolved for one bind, why, and the inputs the choice was made from.
// Surfaced by Plan.Decision, rendered by Explain, and counted per Kind in
// the server's /stats — a regressed decision should be observable, not a
// silent slowdown.
type Decision struct {
	// Parallel, Shards and Workers are the resolved execution knobs; they
	// always form a valid PlanOptions combination.
	Parallel bool
	Shards   int
	Workers  int
	// Spill reports that the exact answer count exceeds the memory budget
	// and the merge's dedup set will migrate to disk.
	Spill bool
	// Kind names the strategy: "sequential", "parallel" or "sharded".
	Kind string
	// Reason explains the pick in one sentence.
	Reason string
	// Rows, Answers, Branches and CPUs are the decision inputs: instance
	// tuples, the exact summed branch cardinality (-1 when unknown — the
	// naive evaluator cannot count without evaluating), union branches,
	// and GOMAXPROCS at bind time.
	Rows     int
	Answers  int64
	Branches int
	CPUs     int
}

// String renders the decision with its reason.
func (d *Decision) String() string {
	spill := ""
	if d.Spill {
		spill = " spill=true"
	}
	return fmt.Sprintf("%s (parallel=%v shards=%d workers=%d%s): %s",
		d.Kind, d.Parallel, d.Shards, d.Workers, spill, d.Reason)
}

// Decision returns the Auto planner's provenance for this bind, or nil
// when the execution options were hand-picked (no decision was made).
func (p *Plan) Decision() *Decision {
	if p.decision == nil {
		return nil
	}
	d := p.decision
	return &Decision{
		Parallel: d.Parallel,
		Shards:   d.Shards,
		Workers:  d.Workers,
		Spill:    d.Spill,
		Kind:     d.Kind(),
		Reason:   d.Reason,
		Rows:     d.Inputs.Rows,
		Answers:  d.Inputs.Answers,
		Branches: d.Inputs.Branches,
		CPUs:     d.Inputs.CPUs,
	}
}

// autoCPUs reports the parallelism the Auto planner budgets for; a
// variable so decision tests can pin a core count.
var autoCPUs = func() int { return runtime.GOMAXPROCS(0) }

// PreparedQuery is the instance-independent half of a plan: the outcome of
// option validation, containment-based redundancy removal and the
// free-connexity certificate search. All of it depends only on the query
// (and the preparation options), never on the data, so a PreparedQuery can
// be built once and bound to many instances — this is what a long-lived
// server caches per (query, schema) to amortize the Theorem 12 certificate
// search across requests, while the per-instance preprocessing happens in
// Bind.
//
// A PreparedQuery is immutable after Prepare returns and is safe for
// concurrent use: Bind and BindExec may be called from any number of
// goroutines simultaneously.
type PreparedQuery struct {
	// Query is the union as given to Prepare.
	Query *UCQ
	// Evaluated is the non-redundant union actually planned.
	Evaluated *UCQ
	// Mode states the strategy bindings of this query will use.
	Mode Mode
	// Cert is the free-connexity certificate (ConstantDelay mode only).
	Cert *Certificate

	opts PlanOptions
	// fingerprint identifies the preparation inputs (query text plus the
	// preparation-shaping options); see Fingerprint.
	fingerprint string
}

// Fingerprint returns a stable identifier of the preparation inputs: the
// query as given plus every option that shapes preparation (ForceNaive,
// RequireConstantDelay, KeepRedundant and the search bounds). Two Prepare
// calls with the same inputs produce the same fingerprint, so bound plans
// cached under it (the catalog's bind cache) are interchangeable across
// PreparedQuery values. Execution options are excluded on purpose — they
// do not affect the per-instance preprocessing the fingerprint keys.
func (pq *PreparedQuery) Fingerprint() string { return pq.fingerprint }

// fingerprintQuery hashes the preparation inputs.
func fingerprintQuery(u *UCQ, opts *PlanOptions) string {
	h := sha256.New()
	fmt.Fprintf(h, "force-naive=%v require-cd=%v keep-redundant=%v search=%+v\n%s",
		opts.ForceNaive, opts.RequireConstantDelay, opts.KeepRedundant, opts.Search, u.String())
	return hex.EncodeToString(h.Sum(nil)[:16])
}

// Prepare runs the instance-independent part of planning: it validates the
// query and options, removes redundant (contained) CQs, and searches for a
// free-connexity certificate, deciding between constant-delay and naive
// evaluation. The result is bound to concrete instances with Bind.
func Prepare(u *UCQ, opts *PlanOptions) (*PreparedQuery, error) {
	if err := u.Validate(); err != nil {
		return nil, err
	}
	if opts == nil {
		opts = &PlanOptions{}
	}
	if err := opts.validate(); err != nil {
		return nil, err
	}
	work := u
	if !opts.KeepRedundant {
		work = homomorphism.RemoveRedundant(u)
	}
	pq := &PreparedQuery{Query: u, Evaluated: work, Mode: Naive, opts: *opts,
		fingerprint: fingerprintQuery(u, opts)}
	if !opts.ForceNaive {
		if cert, ok := core.FindCertificate(work, opts.Search); ok {
			pq.Mode = ConstantDelay
			pq.Cert = cert
			return pq, nil
		}
	}
	if opts.RequireConstantDelay {
		return nil, fmt.Errorf("ucq: no free-connexity certificate found and constant delay was required")
	}
	return pq, nil
}

// Bind attaches the prepared query to an instance, running the per-instance
// Theorem 12 preprocessing (constant-delay mode) or validating the schema
// (naive mode). The execution options given at Prepare time apply.
func (pq *PreparedQuery) Bind(inst *Instance) (*Plan, error) {
	return pq.BindExec(inst, nil)
}

// BindExec is Bind with per-binding execution options: Parallel,
// ParallelBatch, Shards and Workers are taken from exec instead of the
// Prepare-time options, so one cached PreparedQuery can serve requests that
// differ only in execution strategy. Fields of exec that shape preparation
// (ForceNaive, RequireConstantDelay, KeepRedundant, Search) are fixed at
// Prepare time and ignored here. A nil exec reuses the Prepare-time options
// unchanged.
func (pq *PreparedQuery) BindExec(inst *Instance, exec *PlanOptions) (*Plan, error) {
	return pq.BindExecContext(context.Background(), inst, exec)
}

// BindExecContext is BindExec with end-to-end cancellation: ctx is checked
// during the per-instance Theorem 12 preprocessing (a cancelled bind aborts
// between extensions with ctx's error) and becomes the default parent
// context of every Answers stream the plan produces — cancelling it
// releases the executor workers behind Iterator's streams, whether or not
// CloseAnswers is called. A nil ctx means context.Background().
func (pq *PreparedQuery) BindExecContext(ctx context.Context, inst *Instance, exec *PlanOptions) (*Plan, error) {
	// The inline-instance API is a thin wrapper over a one-shot anonymous
	// dataset: same bind path as BindDataset, no name, no bind cache.
	return pq.BindDatasetExecContext(ctx, anonymousDataset(inst), exec)
}

// execOptions merges per-binding execution options over the Prepare-time
// options, validating them.
func (pq *PreparedQuery) execOptions(exec *PlanOptions) (PlanOptions, error) {
	opts := pq.opts
	if exec != nil {
		if err := exec.validate(); err != nil {
			return PlanOptions{}, err
		}
		opts.Parallel = exec.Parallel
		opts.ParallelBatch = exec.ParallelBatch
		opts.Shards = exec.Shards
		opts.Workers = exec.Workers
		opts.Auto = exec.Auto
		opts.DedupBudget = exec.DedupBudget
		opts.SpillDir = exec.SpillDir
	}
	return opts, nil
}

// boundQuery is the per-instance half of a plan — the outcome of binding a
// prepared query to one immutable instance. In constant-delay mode it
// holds the Theorem 12 union pipeline (with shard plans when sharding was
// requested); in naive mode it only records that the schema validated.
// For Auto binds it additionally carries the resolved cost decision — the
// decision is a pure function of (query, snapshot, CPUs), so caching it
// with the bound state keeps cache-served plans' provenance and knobs
// identical to freshly computed ones. A boundQuery is read-only after
// bindInstance returns and safe to share across concurrent plans, which is
// what the catalog's bind cache does.
type boundQuery struct {
	union *core.UnionPlan // nil in naive mode
	// decision is the Auto planner's pick; nil for explicit options.
	decision *cost.Decision
}

// bindInstance runs the per-instance half of planning: the Theorem 12
// preprocessing (plus shard preparation when sharding was requested or
// Auto resolved to it) in constant-delay mode, or schema validation in
// naive mode. With opts.Auto set, the cost model resolves the execution
// knobs here — this is the first point where the instance, the exact
// branch counts and the output-skew probe are all in hand. ctx aborts a
// still-running preprocessing between extensions.
func (pq *PreparedQuery) bindInstance(ctx context.Context, inst *Instance, opts PlanOptions) (*boundQuery, error) {
	if pq.Mode == ConstantDelay {
		up, err := core.NewUnionPlanCtx(ctx, pq.Evaluated, pq.Cert, inst)
		if err != nil {
			return nil, err
		}
		shards := opts.Shards
		var dec *cost.Decision
		if opts.Auto {
			cpus := autoCPUs()
			in := up.CostInputs(cpus)
			in.CPUs = cpus
			in.MemBudget = opts.DedupBudget
			d := cost.Decide(in)
			dec = &d
			shards = d.Shards
		}
		if shards > 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			if err := up.PrepareShards(shards); err != nil {
				return nil, err
			}
		}
		return &boundQuery{union: up, decision: dec}, nil
	}
	// Validate relations up front so Iterator can't fail later.
	for _, d := range pq.Query.Schema() {
		r := inst.Relation(d.Name)
		if r == nil {
			return nil, fmt.Errorf("ucq: no relation %q in the instance", d.Name)
		}
		if r.Arity() != d.Arity {
			return nil, fmt.Errorf("ucq: relation %q has arity %d, query uses %d", d.Name, r.Arity(), d.Arity)
		}
	}
	var dec *cost.Decision
	if opts.Auto {
		cpus := autoCPUs()
		d := cost.Decide(cost.Inputs{
			ConstantDelay: false,
			Rows:          inst.TupleCount(),
			Answers:       -1,
			Branches:      len(pq.Evaluated.CQs),
			CPUs:          cpus,
		})
		dec = &d
	}
	return &boundQuery{decision: dec}, nil
}

// newBoundPlan wraps a bound query in a fresh Plan carrying this binding's
// execution options and context. An Auto bind takes its execution knobs
// from the cost decision resolved (or cache-served) with the bound state.
func (pq *PreparedQuery) newBoundPlan(ctx context.Context, inst *Instance, opts PlanOptions, bq *boundQuery) *Plan {
	if bq.decision != nil {
		opts.Parallel = bq.decision.Parallel
		opts.Shards = bq.decision.Shards
		opts.Workers = bq.decision.Workers
	}
	return &Plan{
		Query:       pq.Query,
		Evaluated:   pq.Evaluated,
		Mode:        pq.Mode,
		Cert:        pq.Cert,
		union:       bq.union,
		inst:        inst,
		parallel:    opts.Parallel,
		batch:       opts.ParallelBatch,
		shards:      opts.Shards,
		workers:     opts.Workers,
		spillBudget: opts.DedupBudget,
		spillDir:    opts.SpillDir,
		decision:    bq.decision,
		ctx:         ctx,
	}
}

// NewPlan prepares the evaluation of u over inst: it removes redundant
// (contained) CQs, searches for a free-connexity certificate and builds
// the Theorem 12 pipeline, falling back to the naive evaluator when no
// certificate is found (unless RequireConstantDelay is set). It is
// Prepare followed by Bind; callers evaluating one query over many
// instances should call Prepare once and Bind per instance.
func NewPlan(u *UCQ, inst *Instance, opts *PlanOptions) (*Plan, error) {
	pq, err := Prepare(u, opts)
	if err != nil {
		return nil, err
	}
	return pq.Bind(inst)
}

// Iterator returns a fresh duplicate-free stream of the union's answers.
// With PlanOptions.Parallel set, the stream is backed by the work-stealing
// executor's worker pool; drain it fully or release it with CloseAnswers.
// The binding context given to BindExecContext (if any) parents the
// stream's background work.
func (p *Plan) Iterator() Answers {
	return p.AnswersContext(p.bindCtx())
}

// AnswersContext returns a fresh duplicate-free stream of the union's
// answers whose background work is cancelled when ctx is done: for
// parallel plans, cancellation releases every executor worker within one
// batch and the stream ends early (no error is surfaced — cancellation is
// abandonment, and the caller holding ctx knows). Streams without
// background workers ignore ctx once constructed; a ctx already cancelled
// at call time yields an empty stream. A nil ctx means the binding context
// (or Background).
func (p *Plan) AnswersContext(ctx context.Context) Answers {
	if ctx == nil {
		ctx = p.bindCtx()
	}
	if ctx.Err() != nil {
		return enumeration.NewSliceIterator(nil)
	}
	if p.Mode == ConstantDelay {
		eo := core.ExecOptions{
			BatchSize: p.batch,
			Workers:   p.workers,
			// The budget rides along unconditionally: the merge applies it
			// only where a dedup set exists (non-disjoint), so it enforces
			// the bound even on binds whose decision predates the overage.
			SpillBudget: int(p.spillBudget),
			SpillDir:    p.spillDir,
		}
		if p.shards > 0 {
			it, err := p.union.IteratorParallelShardedCtx(ctx, eo)
			if err != nil {
				// NewPlan ran PrepareShards; reaching this is a bug.
				panic(fmt.Sprintf("ucq: sharded iterator failed after preparation: %v", err))
			}
			return it
		}
		if p.parallel {
			return p.union.IteratorParallelCtx(ctx, eo)
		}
		return p.union.Iterator()
	}
	eval := baseline.EvalUCQCtx
	switch {
	case p.shards > 0:
		eval = func(ctx context.Context, u *UCQ, inst *Instance) (*Relation, error) {
			return baseline.EvalUCQShardedParallelCtx(ctx, u, inst, p.shards)
		}
	case p.parallel:
		eval = baseline.EvalUCQParallelCtx
	}
	rel, err := eval(ctx, p.Evaluated, p.inst)
	if err != nil {
		if ctx.Err() != nil {
			// Cancelled mid-evaluation: like the parallel engines, the
			// stream just ends early — cancellation is abandonment, and the
			// caller holding ctx knows.
			return enumeration.NewSliceIterator(nil)
		}
		// NewPlan validated the schema; reaching this is a bug.
		panic(fmt.Sprintf("ucq: naive evaluation failed after validation: %v", err))
	}
	return enumeration.NewSliceIterator(rel.Rows())
}

// bindCtx returns the context recorded at bind time, or Background.
func (p *Plan) bindCtx() context.Context {
	if p.ctx != nil {
		return p.ctx
	}
	return context.Background()
}

// CloseAnswers releases the worker goroutines behind a partially drained
// answer stream from a parallel plan, blocking until they have exited. It
// is safe to call on any Answers value: streams without background workers
// are left untouched, and wrapper iterators (chains, combinators) forward
// the release to every member.
func CloseAnswers(it Answers) {
	enumeration.CloseIterator(it)
}

// AnswersErr reports the error that ended an answer stream prematurely, if
// any — today that is disk trouble on the spilled dedup path (a
// PlanOptions.DedupBudget overflow that could not migrate to SpillDir).
// Check it after Next reports exhaustion: a non-nil error means the stream
// was truncated, not completed, and the answers seen so far are an
// arbitrary prefix. Streams without an error channel report nil.
func AnswersErr(it Answers) error {
	return enumeration.IterErr(it)
}

// All returns a fresh duplicate-free answer stream as a Go range-over-func
// sequence: `for t := range plan.All(ctx) { ... }`. The backing iterator
// is released when the range ends — by exhaustion or an early break — so
// parallel plans never leak executor workers through an abandoned range.
// A nil ctx means the binding context (see AnswersContext for the
// cancellation semantics). The sequence is single-use; call All again for
// a new enumeration.
func (p *Plan) All(ctx context.Context) iter.Seq[Tuple] {
	return enumeration.Seq(p.AnswersContext(ctx))
}

// Materialize drains a fresh iterator into a relation.
func (p *Plan) Materialize() *Relation {
	out := database.NewRelation("answers", p.Query.Arity())
	for t := range p.All(nil) {
		out.Append(t...)
	}
	return out
}

// Count drains a fresh iterator and returns the number of answers.
func (p *Plan) Count() int {
	n := 0
	for range p.All(nil) {
		n++
	}
	return n
}

// CountExact returns the plan's exact answer count without enumerating,
// when the bound pipeline supports it: a certified plan whose union has a
// single extension and no provider bonus answers enumerates duplicate-free
// from one CDY plan, so the Theorem 12 counting pass (one linear pass over
// the join tree, yannakakis CountAnswers) already is the answer count. ok
// is false when counting requires cross-branch deduplication, i.e.
// enumeration — use Count then.
func (p *Plan) CountExact() (n int64, ok bool) {
	if p.Mode != ConstantDelay {
		return 0, false
	}
	return p.union.ExactCount()
}

// RootLen reports the size of the plan's root-row domain, when the answer
// set is root-range partitionable: contiguous ranges of [0, RootLen) split
// the answers into pairwise disjoint streams whose union is the full
// answer set (see AnswersRootRange). ok is true iff the plan is in
// constant-delay mode and the whole stream comes from a single certified
// extension with no provider bonus answers — the same condition as
// CountExact. Root-row indices are deterministic for a fixed
// (query, instance) preparation, so plans bound on different nodes against
// identical dataset replicas agree on them; this is the provenance a
// distributed coordinator scatters on.
func (p *Plan) RootLen() (int, bool) {
	if p.Mode != ConstantDelay {
		return 0, false
	}
	return p.union.RootLen()
}

// RootAnswers is a sequential answer stream scoped to a root-row range,
// produced by AnswersRootRange. Next yields answers in ascending root
// order; RootPos reports the current answer's root row, which, by the
// ordering contract, also certifies that every answer with a smaller root
// row has already been yielded — the checkpoint a scatter protocol resumes
// from after a mid-stream failure.
type RootAnswers struct {
	it *yannakakis.Iterator
}

// Next returns the next answer in the range, or ok=false on exhaustion.
func (a *RootAnswers) Next() (Tuple, bool) {
	if !a.it.Next() {
		return nil, false
	}
	return a.it.HeadTuple(), true
}

// RootPos returns the root row index of the answer most recently returned
// by Next; it is only meaningful after a Next that returned ok=true.
func (a *RootAnswers) RootPos() int { return a.it.RootPos() }

// AnswersRootRange returns a sequential stream of exactly the answers
// whose root row index lies in [lo, hi), in ascending root order (bounds
// are clamped to [0, RootLen]). It errors when the plan's answer set is
// not root-range partitionable (see RootLen). The stream is synchronous —
// no executor workers, nothing to Close — regardless of the plan's
// execution options.
func (p *Plan) AnswersRootRange(lo, hi int) (*RootAnswers, error) {
	if p.Mode != ConstantDelay {
		return nil, fmt.Errorf("ucq: root-range enumeration requires a constant-delay plan")
	}
	it, ok := p.union.RootRangeIterator(lo, hi)
	if !ok {
		return nil, fmt.Errorf("ucq: answer set is not root-range partitionable (multi-branch union or bonus answers)")
	}
	return &RootAnswers{it: it}, nil
}

// Explain renders a human-readable description of the plan: in
// constant-delay mode, the certified extensions, provider runs and per-CQ
// engine plans; in naive mode, a one-line notice. Auto binds append the
// cost decision's provenance: the resolved knobs, the reason, and the
// inputs the choice was made from.
func (p *Plan) Explain() string {
	var s string
	if p.Mode == ConstantDelay {
		s = p.union.Explain()
		if p.shards > 0 {
			s += p.union.ExplainShards()
		}
	} else {
		s = "naive plan: join and deduplicate (no certificate; no delay guarantee)\n"
	}
	if d := p.Decision(); d != nil {
		s += fmt.Sprintf("auto decision: %s [rows=%d answers=%d branches=%d cpus=%d]\n",
			d, d.Rows, d.Answers, d.Branches, d.CPUs)
	}
	return s
}

// Enumerate is the one-call convenience: plan and return the answer stream.
func Enumerate(u *UCQ, inst *Instance) (Answers, error) {
	p, err := NewPlan(u, inst, nil)
	if err != nil {
		return nil, err
	}
	return p.Iterator(), nil
}

// EnumerateCQ enumerates a single free-connex CQ with the CDY engine
// directly (Theorem 3(1)); it errors when the CQ is not free-connex.
func EnumerateCQ(q *CQ, inst *Instance) (Answers, error) {
	plan, err := yannakakis.Prepare(q, inst, nil)
	if err != nil {
		return nil, err
	}
	it := plan.Iterator()
	return enumeration.Func(func() (Tuple, bool) {
		if !it.Next() {
			return nil, false
		}
		return it.HeadTuple(), true
	}), nil
}

// DecideCQ reports whether an acyclic CQ has at least one answer, in
// linear time (Theorem 3's tractable Decide).
func DecideCQ(q *CQ, inst *Instance) (bool, error) {
	return yannakakis.Decide(q, inst)
}

// Decide reports whether the union has at least one answer. Acyclic CQs are
// decided in linear time; cyclic ones fall back to the naive evaluator.
func Decide(u *UCQ, inst *Instance) (bool, error) {
	for _, q := range u.CQs {
		var ok bool
		var err error
		if ClassifyCQ(q) == Cyclic {
			ok, err = baseline.DecideCQ(q, inst)
		} else {
			ok, err = yannakakis.Decide(q, inst)
		}
		if err != nil {
			return false, err
		}
		if ok {
			return true, nil
		}
	}
	return false, nil
}
