package ucq

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/workload"
)

// catalogExample2 is the paper's tractable union (Example 2).
const catalogExample2 = `
	Q1(x,y,w) <- R1(x,z), R2(z,y), R3(y,w).
	Q2(x,y,w) <- R1(x,y), R2(y,w).
`

// example2SmallInstance builds the 6-answer instance used across the
// catalog tests.
func example2SmallInstance() *Instance {
	inst := NewInstance()
	r1 := NewRelation("R1", 2)
	r1.AppendInts(1, 2)
	r1.AppendInts(4, 2)
	r2 := NewRelation("R2", 2)
	r2.AppendInts(2, 3)
	r3 := NewRelation("R3", 2)
	r3.AppendInts(3, 5)
	r3.AppendInts(3, 6)
	inst.AddRelation(r1)
	inst.AddRelation(r2)
	inst.AddRelation(r3)
	return inst
}

func TestCatalogRegisterListDrop(t *testing.T) {
	cat := NewCatalog()
	ds, err := cat.Register("events", example2SmallInstance())
	if err != nil {
		t.Fatal(err)
	}
	if ds.Name() != "events" || ds.Version() != 1 {
		t.Errorf("ds = %s v%d, want events v1", ds.Name(), ds.Version())
	}
	if _, err := cat.Register("events", example2SmallInstance()); err == nil {
		t.Error("re-registering an existing name should fail")
	}
	if _, err := cat.Register("", example2SmallInstance()); err == nil {
		t.Error("empty dataset name should fail")
	}
	cat.Register("users", NewInstance())
	list := cat.List()
	if len(list) != 2 || list[0].Name != "events" || list[1].Name != "users" {
		t.Fatalf("list = %+v", list)
	}
	if list[0].Rows != 5 || list[0].Relations != 3 {
		t.Errorf("events info = %+v, want 5 rows over 3 relations", list[0])
	}
	if !cat.Drop("events") {
		t.Error("dropping a registered dataset should report true")
	}
	if cat.Drop("events") {
		t.Error("dropping twice should report false")
	}
	if _, ok := cat.Dataset("events"); ok {
		t.Error("dropped dataset still resolvable")
	}
}

func TestCatalogUpsert(t *testing.T) {
	cat := NewCatalog()
	ds, created, err := cat.Upsert("d", example2SmallInstance())
	if err != nil || !created || ds.Version() != 1 {
		t.Fatalf("first upsert: created=%v v=%d err=%v, want created v1", created, ds.Version(), err)
	}
	ds2, created, err := cat.Upsert("d", example2SmallInstance())
	if err != nil || created || ds2 != ds || ds.Version() != 2 {
		t.Fatalf("second upsert: created=%v same=%v v=%d err=%v, want replace to v2", created, ds2 == ds, ds.Version(), err)
	}
	if _, _, err := cat.Upsert("", example2SmallInstance()); err == nil {
		t.Error("empty name should fail")
	}
}

func TestDatasetReplaceAndAppendVersions(t *testing.T) {
	cat := NewCatalog()
	ds, err := cat.Register("d", example2SmallInstance())
	if err != nil {
		t.Fatal(err)
	}
	old := ds.Instance()

	if v, err := ds.Replace(example2SmallInstance()); err != nil || v != 2 {
		t.Errorf("Replace: version %d err %v, want 2", v, err)
	}
	v, err := ds.AppendRows(map[string][][]int64{
		"R3":        {{3, 7}},   // copy-on-write append to an existing relation
		"Extra":     {{1}, {2}}, // fresh relation, arity from the first row
		"Untouched": nil,        // no rows: ignored
	})
	if err != nil || v != 3 {
		t.Fatalf("AppendRows: v=%d err=%v, want v=3", v, err)
	}
	cur := ds.Instance()
	if got := cur.Relation("R3").Len(); got != 3 {
		t.Errorf("R3 rows after append = %d, want 3", got)
	}
	if got := cur.Relation("Extra").Len(); got != 2 {
		t.Errorf("Extra rows = %d, want 2", got)
	}
	// Old snapshots are immutable: the version-1 instance kept its rows.
	if got := old.Relation("R3").Len(); got != 2 {
		t.Errorf("version-1 snapshot mutated: R3 has %d rows, want 2", got)
	}
	// R1 was not touched by the append: shared, not copied.
	if cur.Relation("R1") != ds.Instance().Relation("R1") {
		t.Error("untouched relation should be shared between snapshots")
	}

	// Errors leave the dataset unchanged.
	if _, err := ds.AppendRows(map[string][][]int64{"R3": {{1, 2, 3}}}); err == nil {
		t.Error("arity-mismatched append should fail")
	}
	if _, err := ds.AppendRows(map[string][][]int64{"R3": {{1, 1 << 60}}}); err == nil {
		t.Error("out-of-range payload should fail")
	}
	if ds.Version() != 3 {
		t.Errorf("failed appends bumped the version to %d", ds.Version())
	}
}

// TestBindDatasetCacheHitAndInvalidation is the library half of the
// acceptance criterion: the second BindDataset for the same (query,
// dataset, version) is served from the bind cache — no second Theorem 12
// preprocessing — and a Replace invalidates it.
func TestBindDatasetCacheHitAndInvalidation(t *testing.T) {
	u := MustParse(catalogExample2)
	cat := NewCatalog()
	ds, err := cat.Register("d", example2SmallInstance())
	if err != nil {
		t.Fatal(err)
	}
	pq, err := Prepare(u, nil)
	if err != nil {
		t.Fatal(err)
	}
	if pq.Mode != ConstantDelay {
		t.Fatalf("Example 2 should certify constant-delay")
	}

	p1, err := pq.BindDataset(ds)
	if err != nil {
		t.Fatal(err)
	}
	if p1.BindCacheHit() {
		t.Error("first bind should be a miss")
	}
	if p1.DatasetName() != "d" || p1.DatasetVersion() != 1 {
		t.Errorf("provenance = %s v%d, want d v1", p1.DatasetName(), p1.DatasetVersion())
	}
	p2, err := pq.BindDataset(ds)
	if err != nil {
		t.Fatal(err)
	}
	if !p2.BindCacheHit() {
		t.Error("second bind should be a cache hit")
	}
	if got, want := p2.Count(), p1.Count(); got != want || got != 6 {
		t.Errorf("cached bind enumerates %d answers, want %d (=6)", got, want)
	}
	st := cat.BindCacheStats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Errorf("bind cache stats = %+v, want 1 hit / 1 miss", st)
	}

	// A fingerprint-equal PreparedQuery (prepared independently) shares the
	// cached bind.
	pq2, err := Prepare(MustParse(catalogExample2), nil)
	if err != nil {
		t.Fatal(err)
	}
	if pq2.Fingerprint() != pq.Fingerprint() {
		t.Fatalf("fingerprints differ for identical preparations")
	}
	if p, err := pq2.BindDataset(ds); err != nil || !p.BindCacheHit() {
		t.Errorf("fingerprint-equal prepared query should hit (hit=%v err=%v)", p.BindCacheHit(), err)
	}

	// Replace bumps the version: the next bind re-preprocesses against the
	// new snapshot and old entries are purged.
	repl := example2SmallInstance()
	repl.Relation("R3").AppendInts(3, 9)
	ds.Replace(repl)
	p3, err := pq.BindDataset(ds)
	if err != nil {
		t.Fatal(err)
	}
	if p3.BindCacheHit() {
		t.Error("bind after Replace should be a miss")
	}
	if p3.DatasetVersion() != 2 {
		t.Errorf("bind after Replace has version %d, want 2", p3.DatasetVersion())
	}
	if got := p3.Count(); got != 8 {
		t.Errorf("bind after Replace enumerates %d answers, want 8", got)
	}
	if st := cat.BindCacheStats(); st.Size != 1 {
		t.Errorf("stale entries not purged: size = %d, want 1", st.Size)
	}

	// Different execution options that do not change the bound state share
	// the entry; a different shard count does not.
	if p, err := pq.BindDatasetExec(ds, &PlanOptions{Parallel: true}); err != nil || !p.BindCacheHit() {
		t.Errorf("parallel exec bind should reuse the cached bind (hit=%v err=%v)", p.BindCacheHit(), err)
	}
	if p, err := pq.BindDatasetExec(ds, &PlanOptions{Parallel: true, Shards: 2}); err != nil || p.BindCacheHit() {
		t.Errorf("sharded bind needs its own entry (hit=%v err=%v)", p.BindCacheHit(), err)
	}
}

// TestDropAndReregisterDoesNotReuseOldBinds pins the registration
// generation in the bind key: a name dropped and re-registered restarts
// at version 1, and its binds must never be served from (or collide with)
// the old registration's cache entries — even entries a slow in-flight
// fill lands after the purge.
func TestDropAndReregisterDoesNotReuseOldBinds(t *testing.T) {
	u := MustParse(catalogExample2)
	pq, err := Prepare(u, nil)
	if err != nil {
		t.Fatal(err)
	}
	cat := NewCatalog()
	ds1, err := cat.Register("d", example2SmallInstance())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pq.BindDataset(ds1); err != nil { // cache (d, gen1, v1)
		t.Fatal(err)
	}

	cat.Drop("d")
	bigger := example2SmallInstance()
	bigger.Relation("R3").AppendInts(3, 9)
	ds2, err := cat.Register("d", bigger)
	if err != nil {
		t.Fatal(err)
	}
	if ds2.Version() != 1 {
		t.Fatalf("re-registered dataset at version %d, want 1", ds2.Version())
	}
	p, err := pq.BindDataset(ds2)
	if err != nil {
		t.Fatal(err)
	}
	if p.BindCacheHit() {
		t.Fatal("bind on the re-registered dataset hit the old registration's cache entry")
	}
	if got := p.Count(); got != 8 {
		t.Errorf("re-registered dataset enumerates %d answers, want 8 (old data: 6)", got)
	}

	// Simulate the in-flight-fill window directly: land a stale entry for
	// the old registration's key after the purge; the new registration's
	// key must not reach it.
	stale, err := pq.bindInstance(context.Background(), example2SmallInstance(), PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cat.binds.Get(bindKey("d", ds1.gen, 1, pq.Fingerprint(), "0"),
		func() (*boundQuery, error) { return stale, nil })
	if p, err := pq.BindDataset(ds2); err != nil || p.Count() != 8 {
		t.Errorf("stale old-generation entry leaked into the new registration (count=%d err=%v)", p.Count(), err)
	}
}

func TestBindDatasetNaiveModeCached(t *testing.T) {
	u := MustParse(catalogExample2)
	cat := NewCatalog()
	ds, _ := cat.Register("d", example2SmallInstance())
	pq, err := Prepare(u, &PlanOptions{ForceNaive: true})
	if err != nil {
		t.Fatal(err)
	}
	p1, err := pq.BindDataset(ds)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := pq.BindDataset(ds)
	if err != nil {
		t.Fatal(err)
	}
	if p1.BindCacheHit() || !p2.BindCacheHit() {
		t.Errorf("naive binds: first hit=%v second hit=%v, want miss then hit", p1.BindCacheHit(), p2.BindCacheHit())
	}
	if p1.Count() != 6 || p2.Count() != 6 {
		t.Errorf("naive dataset binds enumerate %d/%d answers, want 6", p1.Count(), p2.Count())
	}
}

func TestCatalogBindCacheTTL(t *testing.T) {
	cat := NewCatalogConfig(CatalogConfig{BindCacheTTL: time.Nanosecond})
	ds, _ := cat.Register("d", example2SmallInstance())
	pq, err := Prepare(MustParse(catalogExample2), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pq.BindDataset(ds); err != nil {
		t.Fatal(err)
	}
	time.Sleep(time.Millisecond)
	p, err := pq.BindDataset(ds)
	if err != nil {
		t.Fatal(err)
	}
	if p.BindCacheHit() {
		t.Error("expired bind should be recomputed")
	}
	if st := cat.BindCacheStats(); st.Expirations != 1 {
		t.Errorf("expirations = %d, want 1", st.Expirations)
	}
}

// TestDatasetConcurrentReplaceAndBind is the dataset-lifecycle race pin
// (run under -race in CI): writers replace the dataset while readers bind
// and enumerate; every enumeration must see exactly one snapshot's answer
// set — never a mix — and the answer count must match the version the
// plan reports.
func TestDatasetConcurrentReplaceAndBind(t *testing.T) {
	u := MustParse(`Q(x,z,y) <- R(x,z), S(z,y).`)
	pq, err := Prepare(u, nil)
	if err != nil {
		t.Fatal(err)
	}

	// Version v has exactly v·v answers: R and S each hold v rows sharing
	// one join value, so a torn read would produce a count no version has.
	mkInst := func(side int) *Instance {
		inst := NewInstance()
		r := NewRelation("R", 2)
		s := NewRelation("S", 2)
		for i := 0; i < side; i++ {
			r.AppendInts(int64(i), 0)
			s.AppendInts(0, int64(i))
		}
		inst.AddRelation(r)
		inst.AddRelation(s)
		return inst
	}

	cat := NewCatalog()
	ds, err := cat.Register("d", mkInst(1))
	if err != nil {
		t.Fatal(err)
	}

	const writers = 2
	const readers = 4
	const rounds = 25
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				ds.Replace(mkInst(1 + i%7))
			}
		}()
	}
	// Each version's answer count is re-derived from the snapshot itself
	// (readers can't know the writers' schedule): two binds reporting the
	// same version must enumerate the same count, and every count must be
	// one a whole snapshot could produce.
	countOf := make(map[uint64]int) // version → answer count
	var mu sync.Mutex
	errs := make(chan error, readers*rounds)
	for rd := 0; rd < readers; rd++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				p, err := pq.BindDataset(ds)
				if err != nil {
					errs <- err
					return
				}
				count := p.Materialize().Len()
				mu.Lock()
				if prev, ok := countOf[p.DatasetVersion()]; ok && prev != count {
					errs <- fmt.Errorf("version %d enumerated as %d and %d answers", p.DatasetVersion(), prev, count)
					mu.Unlock()
					return
				}
				countOf[p.DatasetVersion()] = count
				mu.Unlock()
				// A snapshot with side s has exactly s² answers, s ∈ [1, 7]
				// — anything else is a torn snapshot.
				okCount := false
				for s := 1; s <= 7; s++ {
					if count == s*s {
						okCount = true
					}
				}
				if !okCount {
					errs <- fmt.Errorf("round %d: %d answers is no version's count", i, count)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestBindCachePurgeRaceDoesNotPinDeadVersions races cold binds against
// writers (AppendRows purges cached binds on every version bump) and then
// checks no dead-version entry survived. The bug: a coalesced fill that
// completed *after* purgeBinds reinserted its entry for the purged
// version/generation — unreachable by any future lookup (binds always key
// on the current version) but pinned in the LRU until capacity eviction.
// With the vcache fix, a purge dooms matching in-flight fills, so once the
// writers stop, the only entry a final bind can leave behind is its own.
// Run with -race: the interleaving itself is the point.
func TestBindCachePurgeRaceDoesNotPinDeadVersions(t *testing.T) {
	u := MustParse(`Q(x,y) <- R(x,y).`)
	pq, err := Prepare(u, nil)
	if err != nil {
		t.Fatal(err)
	}
	inst := NewInstance()
	r := NewRelation("R", 2)
	r.AppendInts(1, 2)
	inst.AddRelation(r)

	cat := NewCatalog()
	ds, err := cat.Register("d", inst)
	if err != nil {
		t.Fatal(err)
	}

	const writers = 2
	const readers = 4
	const rounds = 50
	var wg sync.WaitGroup
	errs := make(chan error, writers+readers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				if _, err := ds.AppendRows(map[string][][]int64{"R": {{int64(i), int64(i)}}}); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	for rd := 0; rd < readers; rd++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				if _, err := pq.BindDataset(ds); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Quiesce: one more bump purges every entry the hammer left (no fills
	// are in flight anymore), then a single bind fills for the current
	// version. Anything beyond that one entry is a resurrected dead
	// version.
	if _, err := ds.AppendRows(map[string][][]int64{"R": {{99, 99}}}); err != nil {
		t.Fatal(err)
	}
	if _, err := pq.BindDataset(ds); err != nil {
		t.Fatal(err)
	}
	if st := cat.BindCacheStats(); st.Size != 1 {
		t.Fatalf("bind cache holds %d entries after quiesce, want exactly 1 (dead versions pinned?): %+v", st.Size, st)
	}
}

// TestBindDatasetCachedSpeedup is the acceptance benchmark's test twin: on
// a 10⁶-tuple instance, a cached bind must be at least 10x faster than the
// cold Theorem 12 pass (in practice it is orders of magnitude faster — a
// cache lookup plus one Plan allocation).
func TestBindDatasetCachedSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("10⁶-tuple instance; skipped in -short")
	}
	u := MustParse(catalogExample2)
	inst := workload.Example2Instance(170000, 2, 1)
	if n := inst.TupleCount(); n < 1_000_000 {
		t.Fatalf("instance has %d tuples, want ≥ 10⁶", n)
	}
	pq, err := Prepare(u, nil)
	if err != nil {
		t.Fatal(err)
	}
	cat := NewCatalog()
	ds, err := cat.Register("big", inst)
	if err != nil {
		t.Fatal(err)
	}

	start := time.Now()
	if _, err := pq.BindDataset(ds); err != nil {
		t.Fatal(err)
	}
	cold := time.Since(start)

	const cachedRounds = 50
	start = time.Now()
	for i := 0; i < cachedRounds; i++ {
		p, err := pq.BindDataset(ds)
		if err != nil {
			t.Fatal(err)
		}
		if !p.BindCacheHit() {
			t.Fatal("expected a cache hit")
		}
	}
	cached := time.Since(start) / cachedRounds

	t.Logf("cold bind %v, cached bind %v (%.0fx)", cold, cached, float64(cold)/float64(cached))
	if cold < 10*cached {
		t.Errorf("cached bind only %.1fx faster than cold (cold %v, cached %v), want ≥ 10x",
			float64(cold)/float64(cached), cold, cached)
	}
}
