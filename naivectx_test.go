package ucq

import (
	"context"
	"sync/atomic"
	"testing"
)

// countingCtx reports itself cancelled from the n-th Err() call on — a
// deterministic stand-in for a client that goes away mid-evaluation, which
// lets the test pin exactly where the naive path checks its context.
type countingCtx struct {
	context.Context
	calls    atomic.Int64
	cancelAt int64
}

func (c *countingCtx) Err() error {
	if c.calls.Add(1) >= c.cancelAt {
		return context.Canceled
	}
	return nil
}

// TestNaiveAnswersContextHonorsCancellation is the regression test for the
// naive engine running to completion under a cancelled context: ctx is
// live when the stream is requested but cancels before the second member
// CQ, and the stream must come back empty instead of materializing the
// whole union.
func TestNaiveAnswersContextHonorsCancellation(t *testing.T) {
	u := MustParse(`
		Q1(x,y) <- R(x,y).
		Q2(x,y) <- S(x,y).
	`)
	inst := NewInstance()
	r := NewRelation("R", 2)
	s := NewRelation("S", 2)
	for i := int64(0); i < 50; i++ {
		r.AppendInts(i, i+1)
		s.AppendInts(i+100, i)
	}
	inst.AddRelation(r)
	inst.AddRelation(s)

	plan, err := NewPlan(u, inst, &PlanOptions{ForceNaive: true})
	if err != nil {
		t.Fatal(err)
	}
	// Sanity: an un-cancelled run sees all 100 answers.
	if n := drainCount(plan.AnswersContext(context.Background())); n != 100 {
		t.Fatalf("baseline run: %d answers, want 100", n)
	}

	// Call 1 is AnswersContext's entry check (must pass — the stream
	// starts), call 2 guards the first member CQ, call 3 the second: cancel
	// there, mid-union.
	ctx := &countingCtx{Context: context.Background(), cancelAt: 3}
	if n := drainCount(plan.AnswersContext(ctx)); n != 0 {
		t.Errorf("cancelled mid-union: %d answers, want 0 (empty stream)", n)
	}
	if calls := ctx.calls.Load(); calls < 3 {
		t.Errorf("naive path checked ctx %d times; the per-member check is gone", calls)
	}

	// Already-cancelled contexts still yield the empty stream up front.
	done, cancel := context.WithCancel(context.Background())
	cancel()
	if n := drainCount(plan.AnswersContext(done)); n != 0 {
		t.Errorf("pre-cancelled ctx: %d answers, want 0", n)
	}

	// The parallel and sharded naive evaluators honor cancellation too.
	for _, opts := range []*PlanOptions{
		{ForceNaive: true, Parallel: true},
		{ForceNaive: true, Parallel: true, Shards: 2},
	} {
		p, err := NewPlan(u, inst, opts)
		if err != nil {
			t.Fatal(err)
		}
		ctx := &countingCtx{Context: context.Background(), cancelAt: 2}
		if n := drainCount(p.AnswersContext(ctx)); n != 0 {
			t.Errorf("opts %+v: cancelled run produced %d answers, want 0", opts, n)
		}
	}
}

// drainCount exhausts an answer stream and returns its length.
func drainCount(it Answers) int {
	n := 0
	for {
		if _, ok := it.Next(); !ok {
			return n
		}
		n++
	}
}
