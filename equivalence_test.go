package ucq

import (
	"math/rand"
	"sort"
	"strings"
	"testing"

	"repro/internal/baseline"
	"repro/internal/fd"
	"repro/internal/workload"
)

// canonicalAnswers renders a plan's answer set in a canonical order for
// set comparison across engines (parallel engines permute answers).
func canonicalAnswers(t *testing.T, p *Plan) string {
	t.Helper()
	rows := make([]string, 0, 64)
	it := p.Iterator()
	for {
		tup, ok := it.Next()
		if !ok {
			break
		}
		rows = append(rows, tup.String())
	}
	sort.Strings(rows)
	// Engines must be duplicate-free individually; catch that here too.
	for i := 1; i < len(rows); i++ {
		if rows[i] == rows[i-1] {
			t.Fatalf("duplicate answer %s", rows[i])
		}
	}
	return strings.Join(rows, "\n")
}

// TestCrossEngineEquivalence is the randomized cross-engine harness: over
// 220 seeded random UCQs and instances, the naive, CDY (auto), parallel
// and sharded (shards ∈ {1,2,8}) engines must return identical answer
// sets. The preparation is shared across execution variants through the
// Prepare/Bind split — the same reuse path the server's plan cache
// exercises — and each case additionally routes through a catalog
// BindDataset twice, checking that a bind-cache-served plan enumerates
// the same set as a freshly bound one.
func TestCrossEngineEquivalence(t *testing.T) {
	const cases = 220
	rng := rand.New(rand.NewSource(20260727))
	constantDelay := 0
	for i := 0; i < cases; i++ {
		u := workload.RandomUCQ(rng)
		rows := 8 + rng.Intn(20)
		width := int64(2 + rng.Intn(5))
		inst := workload.RandomForQuery(u, rows, width, rng.Int63())

		naive, err := NewPlan(u, inst, &PlanOptions{ForceNaive: true})
		if err != nil {
			t.Fatalf("case %d: naive plan: %v\n%s", i, err, u)
		}
		want := canonicalAnswers(t, naive)

		pq, err := Prepare(u, nil)
		if err != nil {
			t.Fatalf("case %d: prepare: %v\n%s", i, err, u)
		}
		if pq.Mode == ConstantDelay {
			constantDelay++
		}
		execs := []struct {
			name string
			opts *PlanOptions
		}{
			{"sequential", nil},
			{"parallel", &PlanOptions{Parallel: true}},
			{"parallel-batch2", &PlanOptions{Parallel: true, ParallelBatch: 2}},
			// Multi-worker executors with tiny batches maximise steal and
			// re-split traffic through the work-stealing pool.
			{"parallel-workers4", &PlanOptions{Parallel: true, Workers: 4, ParallelBatch: 2}},
			{"sharded-1", &PlanOptions{Parallel: true, Shards: 1}},
			{"sharded-2", &PlanOptions{Parallel: true, Shards: 2}},
			{"sharded-8", &PlanOptions{Parallel: true, Shards: 8}},
			{"sharded-2-workers4", &PlanOptions{Parallel: true, Shards: 2, Workers: 4, ParallelBatch: 2}},
			// The cost model resolves its own knobs per bind; whatever it
			// picks must agree with every hand-picked strategy.
			{"auto", &PlanOptions{Auto: true}},
			// A tiny dedup budget forces the merge's dedup set onto the
			// disk-backed spill table for any non-trivial answer set; the
			// spilled path must return the identical answer set.
			{"parallel-spill", &PlanOptions{Parallel: true, DedupBudget: 2}},
			{"parallel-spill-workers4", &PlanOptions{Parallel: true, Workers: 4, ParallelBatch: 2, DedupBudget: 2}},
			// With Auto the budget also drives the cost decision: an exact
			// count over budget forces the spillable parallel merge.
			{"auto-spill", &PlanOptions{Auto: true, DedupBudget: 2}},
		}
		for _, e := range execs {
			p, err := pq.BindExec(inst, e.opts)
			if err != nil {
				t.Fatalf("case %d: bind %s: %v\n%s", i, e.name, err, u)
			}
			if got := canonicalAnswers(t, p); got != want {
				t.Fatalf("case %d: %s (%s mode) disagrees with naive on\n%s\nnaive:\n%s\n%s:\n%s",
					i, e.name, p.Mode, u, want, e.name, got)
			}
		}
		// The catalog arm: the same instance registered as a dataset and
		// bound through BindDataset must agree too — twice, so the second
		// (cache-served) bind is checked against the same oracle as the
		// first.
		cat := NewCatalog()
		ds, err := cat.Register("case", inst)
		if err != nil {
			t.Fatalf("case %d: register: %v", i, err)
		}
		for round, wantHit := range []bool{false, true} {
			p, err := pq.BindDataset(ds)
			if err != nil {
				t.Fatalf("case %d: BindDataset round %d: %v\n%s", i, round, err, u)
			}
			if p.BindCacheHit() != wantHit {
				t.Fatalf("case %d: BindDataset round %d: cache hit = %v, want %v",
					i, round, p.BindCacheHit(), wantHit)
			}
			if got := canonicalAnswers(t, p); got != want {
				t.Fatalf("case %d: BindDataset round %d (%s mode) disagrees with naive on\n%s\nnaive:\n%s\ngot:\n%s",
					i, round, p.Mode, u, want, got)
			}
		}
	}
	// With the fixed seed the generator certifies a healthy fraction of
	// unions; if this drops to zero the harness silently stopped testing
	// the Theorem 12 pipeline.
	if constantDelay < cases/10 {
		t.Errorf("only %d/%d cases ran constant-delay; generator or certifier regressed", constantDelay, cases)
	}
	t.Logf("cross-engine equivalence: %d cases, %d constant-delay, %d naive-only",
		cases, constantDelay, cases-constantDelay)
}

// TestCrossEngineEquivalenceCyclic runs the cross-engine harness over
// unions with a forced cyclic member — the non-free-connex side of the
// dichotomy, where evaluation must fall back off the Theorem 12 pipeline.
// The cyclic generator guarantees coverage the plain RandomUCQ sweep only
// reaches by accident.
func TestCrossEngineEquivalenceCyclic(t *testing.T) {
	const cases = 120
	rng := rand.New(rand.NewSource(20260807))
	cyclicMembers := 0
	for i := 0; i < cases; i++ {
		u := workload.RandomCyclicUCQ(rng)
		for _, q := range u.CQs {
			if ClassifyCQ(q) == Cyclic {
				cyclicMembers++
			}
		}
		rows := 8 + rng.Intn(20)
		width := int64(2 + rng.Intn(4))
		inst := workload.RandomForQuery(u, rows, width, rng.Int63())

		naive, err := NewPlan(u, inst, &PlanOptions{ForceNaive: true})
		if err != nil {
			t.Fatalf("case %d: naive plan: %v\n%s", i, err, u)
		}
		want := canonicalAnswers(t, naive)

		pq, err := Prepare(u, nil)
		if err != nil {
			t.Fatalf("case %d: prepare: %v\n%s", i, err, u)
		}
		execs := []struct {
			name string
			opts *PlanOptions
		}{
			{"sequential", nil},
			{"parallel", &PlanOptions{Parallel: true}},
			{"sharded-2", &PlanOptions{Parallel: true, Shards: 2}},
			{"auto", &PlanOptions{Auto: true}},
		}
		for _, e := range execs {
			p, err := pq.BindExec(inst, e.opts)
			if err != nil {
				t.Fatalf("case %d: bind %s: %v\n%s", i, e.name, err, u)
			}
			if got := canonicalAnswers(t, p); got != want {
				t.Fatalf("case %d: %s (%s mode) disagrees with naive on\n%s\nnaive:\n%s\n%s:\n%s",
					i, e.name, p.Mode, u, want, e.name, got)
			}
		}
	}
	if cyclicMembers == 0 {
		t.Error("no cyclic member CQs generated; RandomCyclicUCQ regressed")
	}
	t.Logf("cyclic arm: %d cases, %d cyclic member CQs", cases, cyclicMembers)
}

// TestCrossEngineEquivalenceFDs is the FD-aware arm of the cross-engine
// harness (Remark 2 / fd.go): over seeded random unions it draws random
// functional dependencies, repairs the instance to satisfy them, and for
// every member CQ whose FD-extension is free-connex checks that
// enumeration through the extension returns exactly the naive evaluator's
// answer set. Cases where the extension strictly widens the head exercise
// the free-closure machinery for real: without the FDs those queries could
// not take the constant-delay route.
func TestCrossEngineEquivalenceFDs(t *testing.T) {
	const cases = 150
	rng := rand.New(rand.NewSource(20260728))
	enumerated, widened := 0, 0
	for i := 0; i < cases; i++ {
		u := workload.RandomUCQ(rng)
		fds := fd.RandomSet(rng, u)
		if len(fds.All()) == 0 {
			continue
		}
		rows := 8 + rng.Intn(20)
		width := int64(2 + rng.Intn(5))
		inst := fds.Enforce(workload.RandomForQuery(u, rows, width, rng.Int63()))
		if err := fds.Holds(inst); err != nil {
			t.Fatalf("case %d: EnforceFDs left a violation: %v", i, err)
		}
		for _, q := range u.CQs {
			ext, ok := ClassifyCQWithFDs(q, fds)
			if !ok {
				continue
			}
			if len(ext.Head) > len(q.Head) {
				widened++
			}
			it, err := EnumerateCQWithFDs(q, fds, inst)
			if err != nil {
				t.Fatalf("case %d: EnumerateCQWithFDs(%s): %v", i, q, err)
			}
			var got []string
			for {
				tup, ok := it.Next()
				if !ok {
					break
				}
				got = append(got, tup.String())
			}
			sort.Strings(got)
			for k := 1; k < len(got); k++ {
				if got[k] == got[k-1] {
					t.Fatalf("case %d: FD enumeration of %s emitted duplicate %s", i, q, got[k])
				}
			}
			wantRel, err := baseline.EvalCQ(q, inst)
			if err != nil {
				t.Fatalf("case %d: naive eval of %s: %v", i, q, err)
			}
			var want []string
			for _, row := range wantRel.SortedRows() {
				want = append(want, row.String())
			}
			if strings.Join(got, "\n") != strings.Join(want, "\n") {
				t.Fatalf("case %d: FD enumeration of %s disagrees with naive\nfds: %v\ngot:  %v\nwant: %v",
					i, q, fds.All(), got, want)
			}
			enumerated++
		}
	}
	if enumerated == 0 {
		t.Error("no case took the FD-extension route; generator or classifier regressed")
	}
	t.Logf("FD arm: %d member CQs enumerated through FD-extensions, %d with strictly widened heads", enumerated, widened)
}

// TestCrossEngineEquivalenceBooleanAndEmpty pins the edge cases the random
// sweep hits only occasionally: boolean unions and empty instances.
func TestCrossEngineEquivalenceBooleanAndEmpty(t *testing.T) {
	u := MustParse(`
		Q1() <- R1(x,y), R2(y,z).
		Q2() <- S1(x).
	`)
	inst := NewInstance()
	for _, d := range u.Schema() {
		inst.AddRelation(NewRelation(d.Name, d.Arity))
	}
	// Empty instance: every engine returns the empty set.
	for _, opts := range []*PlanOptions{
		{ForceNaive: true},
		nil,
		{Parallel: true},
		{Parallel: true, Shards: 2},
	} {
		p, err := NewPlan(u, inst, opts)
		if err != nil {
			t.Fatalf("opts %+v: %v", opts, err)
		}
		if n := p.Count(); n != 0 {
			t.Errorf("opts %+v: %d answers on empty instance", opts, n)
		}
	}
	// Non-empty: the boolean union has exactly one (empty-tuple) answer.
	inst.Relation("S1").AppendInts(1)
	for _, opts := range []*PlanOptions{{ForceNaive: true}, nil, {Parallel: true}} {
		p, err := NewPlan(u, inst, opts)
		if err != nil {
			t.Fatalf("opts %+v: %v", opts, err)
		}
		if n := p.Count(); n != 1 {
			t.Errorf("opts %+v: boolean union returned %d answers, want 1", opts, n)
		}
	}
}
