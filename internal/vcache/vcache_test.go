package vcache

import (
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fillConst returns a fill function producing v and counting its calls.
func fillConst(v int, calls *int32) func() (int, error) {
	return func() (int, error) {
		atomic.AddInt32(calls, 1)
		return v, nil
	}
}

func TestGetHitMissEvict(t *testing.T) {
	c := New[int](2, 0)
	var calls int32
	got, hit, err := c.Get("a", fillConst(1, &calls))
	if err != nil || hit || got != 1 {
		t.Fatalf("first get: %d hit=%v err=%v", got, hit, err)
	}
	got, hit, _ = c.Get("a", fillConst(99, &calls))
	if !hit || got != 1 {
		t.Fatalf("second get: %d hit=%v", got, hit)
	}
	c.Get("b", fillConst(2, &calls))
	c.Get("a", fillConst(99, &calls)) // touch a: recency a > b
	c.Get("c", fillConst(3, &calls))  // evicts b
	st := c.Stats()
	if st.Evictions != 1 || st.Size != 2 || st.Capacity != 2 {
		t.Errorf("stats = %+v", st)
	}
	if _, hit, _ := c.Get("b", fillConst(2, &calls)); hit {
		t.Error("b should have been evicted")
	}
	if calls != 4 {
		t.Errorf("fill ran %d times, want 4 (a, b, c, b-again)", calls)
	}
}

func TestErrorsNotCached(t *testing.T) {
	c := New[int](4, 0)
	boom := errors.New("boom")
	_, hit, err := c.Get("k", func() (int, error) { return 0, boom })
	if !errors.Is(err, boom) || hit {
		t.Fatalf("hit=%v err=%v", hit, err)
	}
	got, hit, err := c.Get("k", func() (int, error) { return 7, nil })
	if err != nil || hit || got != 7 {
		t.Fatalf("retry after error: %d hit=%v err=%v", got, hit, err)
	}
	if st := c.Stats(); st.Misses != 2 || st.Size != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestTTLExpiry(t *testing.T) {
	c := New[int](4, time.Minute)
	now := time.Unix(1000, 0)
	c.SetClock(func() time.Time { return now })

	var calls int32
	c.Get("k", fillConst(1, &calls))
	if _, hit, _ := c.Get("k", fillConst(1, &calls)); !hit {
		t.Fatal("fresh entry should hit")
	}
	now = now.Add(59 * time.Second)
	if _, hit, _ := c.Get("k", fillConst(1, &calls)); !hit {
		t.Fatal("entry under TTL should hit")
	}
	now = now.Add(2 * time.Second) // 61s after insert
	got, hit, _ := c.Get("k", fillConst(2, &calls))
	if hit || got != 2 {
		t.Fatalf("expired entry: %d hit=%v (want refill)", got, hit)
	}
	st := c.Stats()
	if st.Expirations != 1 || st.Misses != 2 || st.Hits != 2 {
		t.Errorf("stats = %+v", st)
	}
	// The refill resets the clock: fresh again.
	if _, hit, _ := c.Get("k", fillConst(3, &calls)); !hit {
		t.Error("refilled entry should hit")
	}
}

func TestCoalescesConcurrentMisses(t *testing.T) {
	c := New[int](4, 0)
	var calls int32
	release := make(chan struct{})
	const n = 8
	var wg sync.WaitGroup
	hits := int32(0)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got, hit, err := c.Get("k", func() (int, error) {
				atomic.AddInt32(&calls, 1)
				<-release
				return 42, nil
			})
			if err != nil || got != 42 {
				t.Errorf("got %d err %v", got, err)
			}
			if hit {
				atomic.AddInt32(&hits, 1)
			}
		}()
	}
	// Let the herd pile up on the flight, then release the one fill.
	for {
		c.mu.Lock()
		inflight := len(c.inflight)
		c.mu.Unlock()
		if inflight == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()
	if calls != 1 {
		t.Errorf("fill ran %d times, want 1", calls)
	}
	if st := c.Stats(); st.Misses != 1 {
		t.Errorf("misses = %d, want 1", st.Misses)
	}
}

// TestDeleteFuncDoomsInflight pins the purge/fill race fix: a DeleteFunc
// whose predicate matches a fill still in flight must keep that fill's
// result out of the cache. Before the fix, the completed fill reinserted
// an entry for the purged key — a dead version no lookup could ever hit
// again — pinning it in the LRU until capacity eviction.
func TestDeleteFuncDoomsInflight(t *testing.T) {
	c := New[int](8, 0)
	started := make(chan struct{})
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		got, hit, err := c.Get("ds|v1", func() (int, error) {
			close(started)
			<-release
			return 7, nil
		})
		// The waiter is still served its value; only caching is dropped.
		if got != 7 || hit || err != nil {
			t.Errorf("doomed fill returned got=%d hit=%v err=%v", got, hit, err)
		}
	}()
	<-started
	// The purge races the fill and must doom it, even though there is no
	// cached entry to remove yet.
	if n := c.DeleteFunc(func(k string) bool { return k == "ds|v1" }); n != 0 {
		t.Fatalf("deleted %d cached entries, want 0 (fill was in flight)", n)
	}
	close(release)
	<-done
	if st := c.Stats(); st.Size != 0 {
		t.Fatalf("purged-while-filling key was cached anyway: %+v", st)
	}
	// The next Get is a genuine miss, not a stale hit.
	var calls int32
	if _, hit, _ := c.Get("ds|v1", fillConst(9, &calls)); hit || calls != 1 {
		t.Fatalf("lookup after doomed fill: hit=%v calls=%d, want a fresh miss", hit, calls)
	}
}

// TestDeleteFuncSparesUnmatchedInflight checks dooming is keyed: a purge of
// one prefix leaves unrelated in-flight fills cacheable.
func TestDeleteFuncSparesUnmatchedInflight(t *testing.T) {
	c := New[int](8, 0)
	started := make(chan struct{})
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		c.Get("ds2|v1", func() (int, error) {
			close(started)
			<-release
			return 1, nil
		})
	}()
	<-started
	c.DeleteFunc(func(k string) bool { return strings.HasPrefix(k, "ds1|") })
	close(release)
	<-done
	if st := c.Stats(); st.Size != 1 {
		t.Fatalf("unmatched in-flight fill was not cached: %+v", st)
	}
}

func TestDeleteFunc(t *testing.T) {
	c := New[int](8, 0)
	var calls int32
	c.Get("ds1|v1|q1", fillConst(1, &calls))
	c.Get("ds1|v1|q2", fillConst(2, &calls))
	c.Get("ds2|v1|q1", fillConst(3, &calls))
	if n := c.DeleteFunc(func(k string) bool { return strings.HasPrefix(k, "ds1|") }); n != 2 {
		t.Fatalf("deleted %d, want 2", n)
	}
	st := c.Stats()
	if st.Size != 1 || st.Evictions != 2 {
		t.Errorf("stats = %+v", st)
	}
	if _, hit, _ := c.Get("ds2|v1|q1", fillConst(3, &calls)); !hit {
		t.Error("untouched key should still hit")
	}
	if _, hit, _ := c.Get("ds1|v1|q1", fillConst(1, &calls)); hit {
		t.Error("deleted key should miss")
	}
}
