// Package vcache provides the concurrency-safe LRU+TTL cache with
// in-flight miss coalescing shared by the server's prepared-plan cache and
// the catalog's bind cache. Both caches hold the expensive half of a
// planning split — instance-independent preparation in one, per-instance
// Theorem 12 preprocessing in the other — and both need the same policy:
// bounded entries with LRU eviction, optional time-based expiry so a
// long-lived process re-validates stale work, and coalescing so a
// thundering herd of identical cold requests fills each entry exactly once.
package vcache

import (
	"container/list"
	"sync"
	"time"
)

// Cache is a concurrency-safe string-keyed cache of V values with LRU
// capacity eviction, optional TTL expiry, and in-flight miss coalescing.
// The zero value is not usable; create with New.
type Cache[V any] struct {
	mu       sync.Mutex
	capacity int
	ttl      time.Duration
	now      func() time.Time
	entries  map[string]*list.Element
	order    *list.List // front = most recently used
	inflight map[string]*flight[V]

	hits        int64
	misses      int64
	evictions   int64
	expirations int64
}

// entry is one cached value with its insertion time.
type entry[V any] struct {
	key    string
	val    V
	stored time.Time
}

// flight is an in-progress fill other callers can wait on.
type flight[V any] struct {
	done chan struct{}
	val  V
	err  error
	// doomed is set (under the cache mutex) by a DeleteFunc whose predicate
	// matched this fill's key while it was still running: the key was
	// invalidated mid-flight, so the completed value is handed to the
	// waiters but not cached — caching it would pin an entry no future
	// lookup can legitimately hit.
	doomed bool
}

// New builds a cache holding at most capacity values (minimum 1). A ttl of
// zero disables expiry; otherwise entries older than ttl are dropped on
// access and re-filled (counted as expirations and misses).
func New[V any](capacity int, ttl time.Duration) *Cache[V] {
	if capacity < 1 {
		capacity = 1
	}
	return &Cache[V]{
		capacity: capacity,
		ttl:      ttl,
		now:      time.Now,
		entries:  make(map[string]*list.Element),
		order:    list.New(),
		inflight: make(map[string]*flight[V]),
	}
}

// Get returns the value for key, calling fill on a miss and caching its
// result. The returned bool reports whether the call was served without
// running fill (a hit, including joining another caller's in-flight fill).
// Failed fills are not cached. Expired entries are removed and re-filled
// like misses.
func (c *Cache[V]) Get(key string, fill func() (V, error)) (V, bool, error) {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		e := el.Value.(*entry[V])
		if c.ttl <= 0 || c.now().Sub(e.stored) < c.ttl {
			c.order.MoveToFront(el)
			c.hits++
			val := e.val
			c.mu.Unlock()
			return val, true, nil
		}
		// Stale: drop and fall through to the miss path.
		c.order.Remove(el)
		delete(c.entries, key)
		c.expirations++
	}
	if fl, ok := c.inflight[key]; ok {
		c.hits++
		c.mu.Unlock()
		<-fl.done
		return fl.val, true, fl.err
	}
	fl := &flight[V]{done: make(chan struct{})}
	c.inflight[key] = fl
	c.misses++
	c.mu.Unlock()

	fl.val, fl.err = fill()
	close(fl.done)

	c.mu.Lock()
	delete(c.inflight, key)
	if fl.err == nil && !fl.doomed {
		c.entries[key] = c.order.PushFront(&entry[V]{key: key, val: fl.val, stored: c.now()})
		for c.order.Len() > c.capacity {
			last := c.order.Back()
			c.order.Remove(last)
			delete(c.entries, last.Value.(*entry[V]).key)
			c.evictions++
		}
	}
	c.mu.Unlock()
	return fl.val, false, fl.err
}

// DeleteFunc removes every cached entry whose key satisfies pred and
// returns how many were removed (counted as evictions). An in-flight fill
// whose key matches is doomed: it still completes and serves the callers
// already waiting on it, but its result is dropped instead of cached —
// the deletion said the key's value is no longer valid, so letting a
// slow fill reinsert it afterwards would pin a stale entry in the LRU
// that no future lookup can hit.
func (c *Cache[V]) DeleteFunc(pred func(key string) bool) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for el := c.order.Front(); el != nil; {
		next := el.Next()
		if e := el.Value.(*entry[V]); pred(e.key) {
			c.order.Remove(el)
			delete(c.entries, e.key)
			c.evictions++
			n++
		}
		el = next
	}
	for key, fl := range c.inflight {
		if pred(key) {
			fl.doomed = true
		}
	}
	return n
}

// Stats is a point-in-time snapshot of the cache counters. Every Get is
// counted as exactly one hit or miss; expirations additionally count the
// misses caused by TTL expiry of a previously cached entry.
type Stats struct {
	Hits        int64
	Misses      int64
	Evictions   int64
	Expirations int64
	Size        int
	Capacity    int
}

// Stats snapshots the counters.
func (c *Cache[V]) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits:        c.hits,
		Misses:      c.misses,
		Evictions:   c.evictions,
		Expirations: c.expirations,
		Size:        c.order.Len(),
		Capacity:    c.capacity,
	}
}

// SetClock replaces the cache's time source (tests only).
func (c *Cache[V]) SetClock(now func() time.Time) {
	c.mu.Lock()
	c.now = now
	c.mu.Unlock()
}
