package exec

import (
	"context"
	"runtime"
	"sort"
	"testing"
	"time"

	"repro/internal/database"
)

// rangeTask emits the values lo..hi-1 (arity 1) and splits by halving its
// remaining range — the test double for a plan root-range slice.
type rangeTask struct{ lo, hi int }

func (t *rangeTask) NextBatch(buf []database.Value, max int) ([]database.Value, int) {
	n := 0
	for n < max && t.lo < t.hi {
		buf = append(buf, database.V(int64(t.lo)))
		t.lo++
		n++
	}
	return buf, n
}

func (t *rangeTask) Split() Task {
	n := t.hi - t.lo
	if n < 2 {
		return nil
	}
	mid := t.lo + n/2
	other := &rangeTask{lo: mid, hi: t.hi}
	t.hi = mid
	return other
}

// drain collects every value from the executor's batch stream.
func drain(e *Executor) []int64 {
	var out []int64
	for b := range e.C() {
		for i := 0; i < b.N; i++ {
			out = append(out, b.Vals[i].Payload())
		}
		e.Recycle(b.Vals)
	}
	return out
}

// checkExactly asserts out is a permutation of 0..n-1.
func checkExactly(t *testing.T, out []int64, n int) {
	t.Helper()
	if len(out) != n {
		t.Fatalf("got %d values, want %d", len(out), n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	for i, v := range out {
		if v != int64(i) {
			t.Fatalf("out[%d] = %d after sorting (duplicate or gap)", i, v)
		}
	}
}

func TestExecutorDrainsAllTasks(t *testing.T) {
	const total = 10000
	for _, workers := range []int{1, 2, 4, 8} {
		tasks := []Task{}
		for lo := 0; lo < total; lo += 1000 {
			tasks = append(tasks, &rangeTask{lo: lo, hi: lo + 1000})
		}
		e := Run(context.Background(), Options{Workers: workers, BatchSize: 64, Arity: 1}, tasks)
		checkExactly(t, drain(e), total)
		st := e.Stats()
		if st.Workers != workers {
			t.Errorf("workers=%d: Stats().Workers = %d", workers, st.Workers)
		}
		if st.Tasks < int64(len(tasks)) {
			t.Errorf("workers=%d: ran %d tasks, want ≥ %d", workers, st.Tasks, len(tasks))
		}
	}
}

func TestExecutorSplitsHeavyTask(t *testing.T) {
	// One big splittable task and several workers: idle workers must
	// receive shed halves (splits) and pull them from the owner's deque
	// (steals) instead of idling while one worker drags.
	const total = 100000
	e := Run(context.Background(), Options{Workers: 4, BatchSize: 32, Arity: 1},
		[]Task{&rangeTask{lo: 0, hi: total}})
	checkExactly(t, drain(e), total)
	st := e.Stats()
	if st.Splits == 0 {
		t.Errorf("no splits: heavy task was not decomposed (stats %+v)", st)
	}
	if st.Steals == 0 {
		t.Errorf("no steals: shed halves were never taken (stats %+v)", st)
	}
	if st.Tasks != st.Splits+1 {
		t.Errorf("tasks run = %d, want splits+1 = %d", st.Tasks, st.Splits+1)
	}
}

func TestExecutorCancellation(t *testing.T) {
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	e := Run(ctx, Options{Workers: 4, BatchSize: 8, Arity: 1},
		[]Task{&rangeTask{lo: 0, hi: 1 << 30}})
	// Consume a few batches, then abandon via context cancellation alone.
	for i := 0; i < 3; i++ {
		if _, ok := <-e.C(); !ok {
			t.Fatal("stream ended prematurely")
		}
	}
	cancel()
	// Workers must exit promptly: the stream closes after at most one
	// in-flight batch per worker.
	deadline := time.After(5 * time.Second)
	for {
		select {
		case _, ok := <-e.C():
			if !ok {
				goto closed
			}
		case <-deadline:
			t.Fatal("stream did not close after cancellation")
		}
	}
closed:
	waitGoroutines(t, before)
}

func TestExecutorCloseIsIdempotentAndUnblocksWorkers(t *testing.T) {
	before := runtime.NumGoroutine()
	e := Run(context.Background(), Options{Workers: 4, BatchSize: 8, Arity: 1},
		[]Task{&rangeTask{lo: 0, hi: 1 << 30}})
	if _, ok := <-e.C(); !ok {
		t.Fatal("no first batch")
	}
	// Workers are now blocked on the full out channel; Close must release
	// them all and return.
	e.Close()
	e.Close()
	waitGoroutines(t, before)
}

func TestExecutorEmptyAndNullary(t *testing.T) {
	// No tasks: the stream closes immediately.
	e := Run(context.Background(), Options{Workers: 2, Arity: 1}, nil)
	if got := drain(e); len(got) != 0 {
		t.Fatalf("empty executor produced %d values", len(got))
	}
	// Nullary answers are counted, not stored.
	e = Run(context.Background(), Options{Workers: 2, BatchSize: 4, Arity: 0},
		[]Task{nullaryTask{n: new(int)}})
	count := 0
	for b := range e.C() {
		count += b.N
	}
	if count != 10 {
		t.Fatalf("nullary count = %d, want 10", count)
	}
}

// nullaryTask emits 10 zero-arity answers.
type nullaryTask struct{ n *int }

func (t nullaryTask) NextBatch(buf []database.Value, max int) ([]database.Value, int) {
	n := 0
	for n < max && *t.n < 10 {
		*t.n++
		n++
	}
	return buf, n
}

func (t nullaryTask) Split() Task { return nil }

// waitGoroutines polls until the goroutine count returns to the baseline
// (with a small slack for runtime helpers).
func waitGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= baseline+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines did not settle: %d now vs %d before", runtime.NumGoroutine(), baseline)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
