// Package exec is the task-based work-stealing executor behind every
// parallel enumeration in this repository. It replaces the earlier
// one-goroutine-per-branch / one-goroutine-per-shard model, whose unit of
// parallelism was fixed at plan time: under output skew — one branch or one
// shard's keys producing most of the answers — all surplus workers idled
// while a single goroutine dragged (the unbalanced-instance regime of
// Bringmann & Carmeli's unbalanced triangle work).
//
// Here the unit of parallelism is a Task: a resumable slice of an
// enumeration (typically a CDY plan restricted to a range of its root
// position's candidate rows) that produces answers in flat value batches
// and can split off roughly half of its remaining work at any batch
// boundary. A bounded pool of workers drains the tasks; each worker owns a
// deque, pushing and popping at the bottom, and steals from the top of a
// victim's deque when its own runs dry. Stolen tasks are split again, and a
// running task sheds half of its remainder whenever some worker is idle, so
// a single heavy task decomposes adaptively instead of serialising on its
// initial owner.
//
// Cancellation is first-class: the executor is built on a context.Context
// checked at batch granularity. Cancelling the context — a client
// disconnect, a Close on the consuming iterator, a server shutdown —
// releases every worker promptly; no enumeration continues past
// cancellation by more than one in-flight batch per worker.
package exec

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/database"
)

// DefaultBatchSize is the per-task batch size used when Options.BatchSize
// is non-positive: large enough to amortize channel synchronization and
// cancellation checks, small enough to keep answers flowing early and
// cancellation prompt.
const DefaultBatchSize = 256

// Task is a resumable unit of enumeration work. Implementations are not
// safe for concurrent use: the executor guarantees a task is owned by one
// worker at a time and that Split is only invoked by the owning worker
// between NextBatch calls (or before the first).
type Task interface {
	// NextBatch appends the values of up to max answers to buf — flat, one
	// answer's values after another — and returns the extended buffer and
	// the number of answers appended. Appending zero answers means the task
	// is exhausted.
	NextBatch(buf []database.Value, max int) ([]database.Value, int)

	// Split carves off roughly half of the task's remaining work into a new
	// independent Task, shrinking the receiver, or returns nil when the
	// remainder is too small to divide. The two halves must together
	// produce exactly the answers the undivided task would have.
	Split() Task
}

// Batch carries n answers' values, flat, from a worker to the consumer.
type Batch struct {
	// Vals holds N answers' values back to back.
	Vals []database.Value
	// N is the number of answers in the batch.
	N int
}

// Options tunes an Executor.
type Options struct {
	// Workers bounds the worker pool; ≤ 0 selects GOMAXPROCS.
	Workers int
	// BatchSize is the per-task batch size; ≤ 0 selects DefaultBatchSize.
	BatchSize int
	// Arity is the common answer arity of the tasks (zero is allowed:
	// nullary answers are counted, not stored).
	Arity int
}

// Stats is a snapshot of an executor's counters.
type Stats struct {
	// Workers is the pool size.
	Workers int
	// Tasks counts task executions, including split-off halves.
	Tasks int64
	// Steals counts tasks taken from another worker's deque.
	Steals int64
	// Splits counts successful Split calls (at steal time and while
	// shedding work to idle workers).
	Splits int64
}

// Executor runs a set of tasks across a bounded worker pool with work
// stealing, delivering batches on C until every task is drained or the
// context is cancelled. Obtain one from Run.
type Executor struct {
	ctx    context.Context
	cancel context.CancelFunc

	out  chan Batch
	free chan []database.Value
	done chan struct{} // closed after every worker has exited

	deques  []deque
	wake    chan struct{}
	allDone chan struct{} // closed when the last task finishes
	allOnce sync.Once

	idle    atomic.Int64
	pending atomic.Int64

	workers int
	batch   int
	arity   int
	bufCap  int

	tasks  atomic.Int64
	steals atomic.Int64
	splits atomic.Int64
}

// deque is one worker's task queue: the owner pushes and pops at the
// bottom (LIFO keeps split-off halves cache-warm), thieves steal from the
// top (FIFO hands them the largest unstarted ranges). Deque operations
// happen once per task, not per batch, so a plain mutex is cheap here.
type deque struct {
	mu    sync.Mutex
	tasks []Task
}

func (d *deque) push(t Task) {
	d.mu.Lock()
	d.tasks = append(d.tasks, t)
	d.mu.Unlock()
}

func (d *deque) pop() Task {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := len(d.tasks)
	if n == 0 {
		return nil
	}
	t := d.tasks[n-1]
	d.tasks[n-1] = nil
	d.tasks = d.tasks[:n-1]
	return t
}

func (d *deque) steal() Task {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.tasks) == 0 {
		return nil
	}
	t := d.tasks[0]
	copy(d.tasks, d.tasks[1:])
	d.tasks[len(d.tasks)-1] = nil
	d.tasks = d.tasks[:len(d.tasks)-1]
	return t
}

// Run starts the pool and begins draining the tasks. The caller consumes
// batches from C until it is closed (all tasks drained) and should call
// Close when abandoning the stream early; cancelling ctx is equivalent.
func Run(ctx context.Context, opts Options, tasks []Task) *Executor {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	batch := opts.BatchSize
	if batch <= 0 {
		batch = DefaultBatchSize
	}
	bufCap := batch * opts.Arity
	if bufCap == 0 {
		bufCap = 1 // non-nil buffers keep the recycle path uniform
	}
	// The out buffer decouples producers from the consumer: deep enough
	// that a lone worker keeps producing while the consumer merges (the
	// pipelining the per-branch model got from one channel slot per
	// branch), bounded so an abandoned stream holds O(workers+tasks)
	// batches, not the whole answer set.
	outCap := 2*workers + 8
	ectx, cancel := context.WithCancel(ctx)
	e := &Executor{
		ctx:     ectx,
		cancel:  cancel,
		out:     make(chan Batch, outCap),
		free:    make(chan []database.Value, outCap+2*workers),
		done:    make(chan struct{}),
		deques:  make([]deque, workers),
		wake:    make(chan struct{}, workers),
		allDone: make(chan struct{}),
		workers: workers,
		batch:   batch,
		arity:   opts.Arity,
		bufCap:  bufCap,
	}
	e.pending.Store(int64(len(tasks)))
	if len(tasks) == 0 {
		e.allOnce.Do(func() { close(e.allDone) })
	}
	for i, t := range tasks {
		e.deques[i%workers].push(t)
	}
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(self int) {
			defer wg.Done()
			e.worker(self)
		}(i)
	}
	go func() {
		wg.Wait()
		close(e.out)
		close(e.done)
	}()
	return e
}

// C returns the batch stream. It is closed once every task has drained or,
// after cancellation, once every worker has exited.
func (e *Executor) C() <-chan Batch { return e.out }

// Close cancels the executor and blocks until every worker has exited —
// at most one in-flight batch per worker later. It is idempotent and safe
// to call concurrently with the consumer.
func (e *Executor) Close() {
	e.cancel()
	<-e.done
}

// Recycle returns a fully consumed batch buffer to the pool. Callers that
// retain views into the buffer (the disjoint merge) must not recycle it.
func (e *Executor) Recycle(buf []database.Value) {
	select {
	case e.free <- buf:
	default:
	}
}

// Stats returns a snapshot of the executor's counters.
func (e *Executor) Stats() Stats {
	return Stats{
		Workers: e.workers,
		Tasks:   e.tasks.Load(),
		Steals:  e.steals.Load(),
		Splits:  e.splits.Load(),
	}
}

// worker is the per-worker loop: run own work, steal when dry, park when
// the whole pool is dry, exit on completion or cancellation.
func (e *Executor) worker(self int) {
	for {
		if e.ctx.Err() != nil {
			return
		}
		t, stolen := e.find(self)
		if t == nil {
			if e.pending.Load() == 0 {
				return
			}
			// Park until a task is pushed somewhere, the last task
			// finishes, or the executor is cancelled. The wake channel is
			// buffered with one slot per worker, so a signal sent between
			// our empty scan and this receive is never lost.
			e.idle.Add(1)
			select {
			case <-e.wake:
			case <-e.allDone:
			case <-e.ctx.Done():
			}
			e.idle.Add(-1)
			continue
		}
		if stolen {
			e.steals.Add(1)
			// Halve a freshly stolen task: the thief keeps one part and
			// exposes the other for the next steal, so a heavy range decays
			// geometrically across the pool.
			e.trySplit(self, t)
		}
		e.run(self, t)
	}
}

// find pops from the worker's own deque, then scans the others for a
// steal. The boolean reports whether the task was stolen.
func (e *Executor) find(self int) (Task, bool) {
	if t := e.deques[self].pop(); t != nil {
		return t, false
	}
	for i := 1; i < e.workers; i++ {
		if t := e.deques[(self+i)%e.workers].steal(); t != nil {
			return t, true
		}
	}
	return nil, false
}

// run drains one task, shedding half of its remainder whenever some worker
// is idle and checking cancellation once per batch.
func (e *Executor) run(self int, t Task) {
	e.tasks.Add(1)
	for {
		if e.ctx.Err() != nil {
			e.finishTask()
			return
		}
		if e.idle.Load() > 0 {
			e.trySplit(self, t)
		}
		buf := e.buffer()
		buf, n := t.NextBatch(buf, e.batch)
		if n == 0 {
			e.Recycle(buf)
			e.finishTask()
			return
		}
		select {
		case e.out <- Batch{Vals: buf, N: n}:
		case <-e.ctx.Done():
			e.finishTask()
			return
		}
	}
}

// trySplit asks the task for half of its remaining work and publishes the
// half on the worker's own deque, where parked thieves will find it.
func (e *Executor) trySplit(self int, t Task) {
	half := t.Split()
	if half == nil {
		return
	}
	e.splits.Add(1)
	e.pending.Add(1)
	e.deques[self].push(half)
	select {
	case e.wake <- struct{}{}:
	default:
	}
}

// finishTask retires one task; the last one releases every parked worker.
func (e *Executor) finishTask() {
	if e.pending.Add(-1) == 0 {
		e.allOnce.Do(func() { close(e.allDone) })
	}
}

// buffer hands out an empty batch buffer, recycling consumed ones.
func (e *Executor) buffer() []database.Value {
	select {
	case buf := <-e.free:
		return buf[:0]
	default:
		return make([]database.Value, 0, e.bufCap)
	}
}
