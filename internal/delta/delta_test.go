package delta

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/cq"
	"repro/internal/database"
)

// joinInstance builds an R ⋈ S instance: R rows (i, i%fan), S rows
// (j, j+1000) for j < fan, so every R row joins exactly one S row.
func joinInstance(rRows, fan int64) *database.Instance {
	inst := database.NewInstance()
	r := database.NewRelation("R", 2)
	for i := int64(0); i < rRows; i++ {
		r.AppendInts(i, i%fan)
	}
	s := database.NewRelation("S", 2)
	for j := int64(0); j < fan; j++ {
		s.AppendInts(j, j+1000)
	}
	inst.AddRelation(r)
	inst.AddRelation(s)
	return inst
}

// evalSet materializes the baseline answer set as string keys.
func evalSet(t *testing.T, u *cq.UCQ, inst *database.Instance) map[string]bool {
	t.Helper()
	rel, err := baseline.EvalUCQCtx(context.Background(), u, inst)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string]bool, rel.Len())
	for i := 0; i < rel.Len(); i++ {
		out[fmt.Sprint(rel.Row(i))] = true
	}
	return out
}

func TestTouched(t *testing.T) {
	u := cq.MustParse(`Q(x,y,z) <- R(x,y), S(y,z).`)
	empty := database.NewRelation("S", 2)
	dr := database.NewRelation("R", 2)
	dr.AppendInts(1, 2)
	unref := database.NewRelation("T", 2)
	unref.AppendInts(3, 4)
	got := Touched(u, map[string]*database.Relation{
		"R": dr,    // referenced, non-empty: kept
		"S": empty, // referenced but empty: dropped
		"T": unref, // never referenced by the query: dropped
		"U": nil,
	})
	if len(got) != 1 || got[0] != "R" {
		t.Fatalf("Touched = %v, want [R]", got)
	}
}

func TestHasSelfJoinOn(t *testing.T) {
	selfJoin := cq.MustParse(`Q(x,y,z) <- R(x,y), R(y,z).`)
	plain := cq.MustParse(`Q(x,y,z) <- R(x,y), S(y,z).`)
	if !HasSelfJoinOn(selfJoin, []string{"R"}) {
		t.Error("self-join on touched R not detected")
	}
	if HasSelfJoinOn(selfJoin, []string{"S"}) {
		t.Error("self-join reported for an untouched relation")
	}
	if HasSelfJoinOn(plain, []string{"R", "S"}) {
		t.Error("two distinct atoms misreported as a self-join")
	}
}

// TestCandidatesExactAfterFilter pins the core contract: the candidates,
// filtered through old-plan membership, are exactly Q(to) \ Q(from), and
// the incremental (non-full) path ran.
func TestCandidatesExactAfterFilter(t *testing.T) {
	u := cq.MustParse(`Q(x,y,z) <- R(x,y), S(y,z).`)
	cert, ok := core.FindCertificate(u, nil)
	if !ok {
		t.Fatal("full-head join must certify")
	}
	fromInst := joinInstance(50, 10)
	toInst := fromInst.ShallowClone()
	dr := database.NewRelation("R", 2)
	dr.AppendInts(100, 3)
	dr.AppendInts(101, 7)
	merged := toInst.Relation("R").Clone()
	merged.AppendInts(100, 3)
	merged.AppendInts(101, 7)
	toInst.AddRelation(merged)

	old, err := core.NewUnionPlanCtx(context.Background(), u, cert, fromInst)
	if err != nil {
		t.Fatal(err)
	}
	got := make(map[string]bool)
	full, err := Candidates(context.Background(), u, cert, toInst, map[string]*database.Relation{"R": dr}, func(tup database.Tuple) bool {
		k := fmt.Sprint(tup)
		if got[k] {
			t.Fatalf("candidate %s yielded twice", k)
		}
		got[k] = true
		if old.ContainsAnswer(tup) {
			delete(got, k) // the caller-side old-membership filter
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if full {
		t.Error("expected the incremental overlay path, got the full-eval fallback")
	}

	oldSet, newSet := evalSet(t, u, fromInst), evalSet(t, u, toInst)
	want := make(map[string]bool)
	for k := range newSet {
		if !oldSet[k] {
			want[k] = true
		}
	}
	if len(want) == 0 {
		t.Fatal("bad fixture: the append added no answers")
	}
	for k := range want {
		if !got[k] {
			t.Errorf("missing new answer %s", k)
		}
	}
	for k := range got {
		if !want[k] {
			t.Errorf("extra answer %s survived the filter", k)
		}
	}
}

// TestCandidatesSelfJoinFallsBack: a CQ self-joining the touched relation
// must degrade to one full evaluation — and stay exact after the filter.
func TestCandidatesSelfJoinFallsBack(t *testing.T) {
	u := cq.MustParse(`Q(x,y,z) <- R(x,y), R(y,z).`)
	cert, ok := core.FindCertificate(u, nil)
	if !ok {
		t.Fatal("full-head self-join must certify")
	}
	fromInst := database.NewInstance()
	r := database.NewRelation("R", 2)
	r.AppendInts(1, 2)
	r.AppendInts(2, 3)
	fromInst.AddRelation(r)

	// Append (3,4): the new answer (2,3,4) pairs an OLD tuple with the new
	// one — exactly the combination a per-relation overlay would miss.
	toInst := fromInst.ShallowClone()
	merged := r.Clone()
	merged.AppendInts(3, 4)
	toInst.AddRelation(merged)
	dr := database.NewRelation("R", 2)
	dr.AppendInts(3, 4)

	old, err := core.NewUnionPlanCtx(context.Background(), u, cert, fromInst)
	if err != nil {
		t.Fatal(err)
	}
	got := make(map[string]bool)
	full, err := Candidates(context.Background(), u, cert, toInst, map[string]*database.Relation{"R": dr}, func(tup database.Tuple) bool {
		if !old.ContainsAnswer(tup) {
			got[fmt.Sprint(tup)] = true
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if !full {
		t.Error("self-join on the touched relation must take the full-eval fallback")
	}
	if !got[fmt.Sprint(database.Tuple{database.V(2), database.V(3), database.V(4)})] {
		t.Errorf("old⋈new answer missing: got %v", got)
	}
}

// TestCandidatesNaiveMatchesCertified: both engines' candidate sets filter
// down to the same difference.
func TestCandidatesNaiveMatchesCertified(t *testing.T) {
	u := cq.MustParse(`Q(x,y,z) <- R(x,y), S(y,z).`)
	cert, ok := core.FindCertificate(u, nil)
	if !ok {
		t.Fatal("full-head join must certify")
	}
	fromInst := joinInstance(30, 6)
	toInst := fromInst.ShallowClone()
	dr := database.NewRelation("R", 2)
	dr.AppendInts(200, 4)
	merged := toInst.Relation("R").Clone()
	merged.AppendInts(200, 4)
	toInst.AddRelation(merged)
	deltas := map[string]*database.Relation{"R": dr}

	collect := func(run func(yield func(database.Tuple) bool) error) map[string]bool {
		out := make(map[string]bool)
		if err := run(func(tup database.Tuple) bool {
			out[fmt.Sprint(tup)] = true
			return true
		}); err != nil {
			t.Fatal(err)
		}
		return out
	}
	certified := collect(func(yield func(database.Tuple) bool) error {
		_, err := Candidates(context.Background(), u, cert, toInst, deltas, yield)
		return err
	})
	naive := collect(func(yield func(database.Tuple) bool) error {
		_, err := CandidatesNaive(context.Background(), u, toInst, deltas, yield)
		return err
	})
	if len(certified) == 0 {
		t.Fatal("bad fixture: no candidates")
	}
	for k := range certified {
		if !naive[k] {
			t.Errorf("naive candidates missing %s", k)
		}
	}
	for k := range naive {
		if !certified[k] {
			t.Errorf("certified candidates missing %s", k)
		}
	}
}

// TestSetSpillPreservesMembership: crossing the budget migrates to disk
// without changing any membership verdict.
func TestSetSpillPreservesMembership(t *testing.T) {
	s := NewSet(t.TempDir(), 2, 8, 0)
	defer s.Close()
	tup := func(i int) database.Tuple {
		return database.Tuple{database.V(int64(i)), database.V(int64(i + 1))}
	}
	const n = 25
	for i := 0; i < n; i++ {
		fresh, err := s.Insert(tup(i))
		if err != nil {
			t.Fatal(err)
		}
		if !fresh {
			t.Fatalf("tuple %d: first insert not fresh", i)
		}
	}
	if !s.Spilled() {
		t.Fatal("set did not spill past its budget")
	}
	if s.Len() != n {
		t.Fatalf("Len = %d, want %d", s.Len(), n)
	}
	for i := 0; i < n; i++ {
		fresh, err := s.Insert(tup(i))
		if err != nil {
			t.Fatal(err)
		}
		if fresh {
			t.Fatalf("tuple %d: duplicate insert reported fresh after spill", i)
		}
	}
	if s.Len() != n {
		t.Fatalf("Len after duplicates = %d, want %d", s.Len(), n)
	}
}
