// Package delta implements semi-naive incremental maintenance of UCQ
// answers under append-only dataset changes.
//
// The union of conjunctive queries is monotone — appending tuples can only
// add answers, never retract one — so maintaining a live answer set
// reduces to computing Q(to) \ Q(from) for consecutive catalog versions.
// Every answer in that difference uses at least one appended tuple in some
// atom of its derivation, which gives the classic semi-naive rewriting:
// for each relation R touched by the append, evaluate the query over the
// new instance with R replaced by just its delta rows (the overlay). The
// union of the overlay answer sets is a superset of the new answers and a
// subset of Q(to); filtering it through a membership test against the
// version-`from` plan (constant-time for certified Theorem 12 plans via
// the CDY head indexes) yields exactly the difference.
//
// One correctness wrinkle: when a CQ joins a touched relation with itself,
// the overlay substitutes *every* occurrence, so an answer pairing a new
// tuple at one occurrence with an old tuple at another is missed.
// Candidates detects that shape and degrades to one full evaluation at
// `to` — still exact after the caller's old-membership filter, just no
// longer incremental.
package delta

import (
	"context"
	"sort"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/cq"
	"repro/internal/database"
	"repro/internal/storage"
)

// ctxCheckEvery bounds how many candidate tuples are yielded between
// context checks inside the enumeration loops.
const ctxCheckEvery = 1024

// Touched returns the delta'd relation names the query actually
// references, sorted. Relations the query never mentions cannot change its
// answers, and empty deltas contribute nothing, so both are dropped.
func Touched(u *cq.UCQ, deltas map[string]*database.Relation) []string {
	refs := make(map[string]struct{})
	for _, q := range u.CQs {
		for _, a := range q.Atoms {
			if !a.Virtual {
				refs[a.Rel] = struct{}{}
			}
		}
	}
	var names []string
	for name, rel := range deltas {
		if rel == nil || rel.Len() == 0 {
			continue
		}
		if _, ok := refs[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names
}

// HasSelfJoinOn reports whether some CQ of u references a touched relation
// in two or more atoms. The per-relation overlay replaces every occurrence
// of the relation at once, so such a CQ's new answers combining a delta
// tuple with an old tuple of the same relation would be missed; the
// callers fall back to full evaluation in that case.
func HasSelfJoinOn(u *cq.UCQ, touched []string) bool {
	if len(touched) == 0 {
		return false
	}
	set := make(map[string]struct{}, len(touched))
	for _, name := range touched {
		set[name] = struct{}{}
	}
	for _, q := range u.CQs {
		seen := make(map[string]bool)
		for _, a := range q.Atoms {
			if a.Virtual {
				continue
			}
			if _, t := set[a.Rel]; !t {
				continue
			}
			if seen[a.Rel] {
				return true
			}
			seen[a.Rel] = true
		}
	}
	return false
}

// overlay returns toInst with the named relation replaced by its delta
// rows. The instances share every other relation (copy-on-write snapshots
// make this safe); only the relation header is fresh.
func overlay(toInst *database.Instance, name string, drel *database.Relation) *database.Instance {
	inst := toInst.ShallowClone()
	if drel.Name != name {
		drel = drel.Clone()
		drel.Name = name
	}
	inst.AddRelation(drel)
	return inst
}

// Candidates runs certified semi-naive delta evaluation and yields each
// distinct candidate answer once. The yielded set is a superset of
// Q(to)\Q(from) and a subset of Q(to): the caller filters candidates by
// membership in the version-`from` plan (core.UnionPlan.ContainsAnswer).
// Yielded tuples may be transient views — copy before retaining. A false
// return from yield stops the enumeration early without error.
//
// When a CQ self-joins a touched relation, Candidates evaluates the full
// plan at `to` instead of the overlays (exact, not incremental); the
// full return value reports which path ran so callers can account for it.
func Candidates(ctx context.Context, u *cq.UCQ, cert *core.Certificate, toInst *database.Instance, deltas map[string]*database.Relation, yield func(database.Tuple) bool) (full bool, err error) {
	touched := Touched(u, deltas)
	if len(touched) == 0 {
		return false, nil
	}
	if HasSelfJoinOn(u, touched) {
		plan, err := core.NewUnionPlanCtx(ctx, u, cert, toInst)
		if err != nil {
			return true, err
		}
		return true, drain(ctx, plan.Iterator(), nil, yield)
	}
	seen := database.NewTupleSet(0)
	for _, name := range touched {
		if err := ctx.Err(); err != nil {
			return false, err
		}
		plan, err := core.NewUnionPlanCtx(ctx, u, cert, overlay(toInst, name, deltas[name]))
		if err != nil {
			return false, err
		}
		it := plan.DeltaIterator(map[string]struct{}{name: {}})
		if err := drain(ctx, it, seen, yield); err != nil {
			return false, err
		}
	}
	return false, nil
}

// CandidatesNaive mirrors Candidates on the baseline (non-certified)
// engine: overlay evaluations through baseline.EvalUCQCtx, the same
// self-join fallback. Naive callers have no constant-time old-membership
// test, so they filter through a materialized answer set instead.
func CandidatesNaive(ctx context.Context, u *cq.UCQ, toInst *database.Instance, deltas map[string]*database.Relation, yield func(database.Tuple) bool) (full bool, err error) {
	touched := Touched(u, deltas)
	if len(touched) == 0 {
		return false, nil
	}
	if HasSelfJoinOn(u, touched) {
		rel, err := baseline.EvalUCQCtx(ctx, u, toInst)
		if err != nil {
			return true, err
		}
		return true, drainRel(ctx, rel, nil, yield)
	}
	seen := database.NewTupleSet(0)
	for _, name := range touched {
		if err := ctx.Err(); err != nil {
			return false, err
		}
		rel, err := baseline.EvalUCQCtx(ctx, u, overlay(toInst, name, deltas[name]))
		if err != nil {
			return false, err
		}
		if err := drainRel(ctx, rel, seen, yield); err != nil {
			return false, err
		}
	}
	return false, nil
}

// drain pushes it's tuples through seen-dedup (nil seen = no dedup) into
// yield, checking ctx every ctxCheckEvery tuples.
func drain(ctx context.Context, it interface {
	Next() (database.Tuple, bool)
}, seen *database.TupleSet, yield func(database.Tuple) bool) error {
	n := 0
	for {
		t, ok := it.Next()
		if !ok {
			return nil
		}
		if seen != nil && !seen.Insert(t) {
			continue
		}
		if !yield(t) {
			return nil
		}
		n++
		if n%ctxCheckEvery == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
	}
}

// drainRel is drain over a materialized relation.
func drainRel(ctx context.Context, rel *database.Relation, seen *database.TupleSet, yield func(database.Tuple) bool) error {
	for i, n := 0, rel.Len(); i < n; i++ {
		t := rel.Row(i)
		if seen != nil && !seen.Insert(t) {
			continue
		}
		if !yield(t) {
			return nil
		}
		if (i+1)%ctxCheckEvery == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
	}
	return nil
}

// maxPreallocValues caps Set's arena pre-allocation (mirrors the
// enumeration merge's clamp) so a huge budget cannot pre-commit memory.
const maxPreallocValues = 1 << 20

// Set is a budget-bounded emitted-answer set for subscriptions without a
// constant-time old-membership test (naive-mode plans): it dedups in
// memory until it holds budget tuples, then migrates to a disk-backed
// storage.SpillSet and continues there, so a long-lived subscription's
// memory stays bounded by the budget rather than the answer count.
type Set struct {
	mem     *database.TupleSet
	disk    *storage.SpillSet
	dir     string
	arity   int
	budget  int
	spilled bool
}

// NewSet returns a Set for tuples of the given arity. budget ≤ 0 disables
// spilling (the set stays in memory); dir empty selects os.TempDir() at
// spill time (storage.NewSpillSet's default).
func NewSet(dir string, arity, budget, sizeHint int) *Set {
	if budget > 0 && sizeHint > budget {
		sizeHint = budget
	}
	valueHint := sizeHint * arity
	if valueHint > maxPreallocValues {
		valueHint = maxPreallocValues
	}
	return &Set{
		mem:    database.NewTupleSetSized(sizeHint, valueHint),
		dir:    dir,
		arity:  arity,
		budget: budget,
	}
}

// Insert adds t if absent and reports whether it was newly inserted.
func (s *Set) Insert(t database.Tuple) (bool, error) {
	if s.disk != nil {
		_, fresh, err := s.disk.InsertGet(t)
		return fresh, err
	}
	fresh := s.mem.Insert(t)
	if fresh && s.budget > 0 && s.mem.Len() >= s.budget {
		if err := s.spill(); err != nil {
			return false, err
		}
	}
	return fresh, nil
}

// spill migrates the in-memory entries to disk under their existing
// hashes, preserving every membership verdict.
func (s *Set) spill() error {
	disk, err := storage.NewSpillSet(s.dir, s.arity, 2*s.budget)
	if err != nil {
		return err
	}
	for i := 0; i < s.mem.Len(); i++ {
		if _, _, err := disk.InsertGetHash(s.mem.HashAt(i), s.mem.At(i)); err != nil {
			disk.Close()
			return err
		}
	}
	s.disk = disk
	s.spilled = true
	s.mem = nil
	return nil
}

// Len returns the number of distinct tuples inserted.
func (s *Set) Len() int {
	if s.disk != nil {
		return s.disk.Len()
	}
	return s.mem.Len()
}

// Spilled reports whether the set has migrated to disk.
func (s *Set) Spilled() bool { return s.spilled }

// Close releases the disk table, if any.
func (s *Set) Close() error {
	if s.disk != nil {
		return s.disk.Close()
	}
	return nil
}
