// Package graph provides the simple-graph substrate for the paper's
// lower-bound reductions: triangle listing (the hyperclique hypothesis for
// k=3), 4-clique detection (the 4-clique hypothesis) and deterministic
// random-graph generators for the experiment harness.
//
// Graphs are undirected, on vertices 0..n-1, stored as adjacency bitsets:
// edge tests are O(1) and neighbourhood intersections run 64 vertices at a
// time, giving the direct baselines the reductions are compared against.
package graph

import (
	"fmt"
	"math/bits"
	"math/rand"
)

// Graph is an undirected graph on vertices 0..n-1.
type Graph struct {
	n    int
	adj  [][]uint64
	m    int
	self bool // kept false; self-loops rejected
}

// New creates an empty graph on n vertices.
func New(n int) *Graph {
	if n < 0 {
		panic("graph: negative vertex count")
	}
	words := (n + 63) / 64
	adj := make([][]uint64, n)
	for i := range adj {
		adj[i] = make([]uint64, words)
	}
	return &Graph{n: n, adj: adj}
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// M returns the number of edges.
func (g *Graph) M() int { return g.m }

// AddEdge inserts the undirected edge {u, v}. Self-loops and out-of-range
// vertices are errors.
func (g *Graph) AddEdge(u, v int) error {
	if u < 0 || v < 0 || u >= g.n || v >= g.n {
		return fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", u, v, g.n)
	}
	if u == v {
		return fmt.Errorf("graph: self-loop at %d", u)
	}
	if g.HasEdge(u, v) {
		return nil
	}
	g.adj[u][v/64] |= 1 << (v % 64)
	g.adj[v][u/64] |= 1 << (u % 64)
	g.m++
	return nil
}

// MustAddEdge is AddEdge panicking on error.
func (g *Graph) MustAddEdge(u, v int) {
	if err := g.AddEdge(u, v); err != nil {
		panic(err)
	}
}

// HasEdge reports whether {u, v} is an edge.
func (g *Graph) HasEdge(u, v int) bool {
	if u < 0 || v < 0 || u >= g.n || v >= g.n || u == v {
		return false
	}
	return g.adj[u][v/64]&(1<<(v%64)) != 0
}

// Edges returns all edges as ordered pairs u < v.
func (g *Graph) Edges() [][2]int {
	out := make([][2]int, 0, g.m)
	for u := 0; u < g.n; u++ {
		for v := u + 1; v < g.n; v++ {
			if g.HasEdge(u, v) {
				out = append(out, [2]int{u, v})
			}
		}
	}
	return out
}

// Degree returns the degree of u.
func (g *Graph) Degree(u int) int {
	d := 0
	for _, w := range g.adj[u] {
		d += bits.OnesCount64(w)
	}
	return d
}

// Triangles lists every triangle a < b < c. This is the O(n³)-style direct
// computation that Example 22 and Example 39 start from.
func (g *Graph) Triangles() [][3]int {
	var out [][3]int
	buf := make([]uint64, len(g.adj[0]))
	for a := 0; a < g.n; a++ {
		for b := a + 1; b < g.n; b++ {
			if !g.HasEdge(a, b) {
				continue
			}
			for w := range buf {
				buf[w] = g.adj[a][w] & g.adj[b][w]
			}
			for w, word := range buf {
				for word != 0 {
					c := w*64 + bits.TrailingZeros64(word)
					word &= word - 1
					if c > b {
						out = append(out, [3]int{a, b, c})
					}
				}
			}
		}
	}
	return out
}

// HasTriangle reports whether the graph contains a triangle.
func (g *Graph) HasTriangle() bool {
	buf := make([]uint64, len(g.adj[0]))
	for a := 0; a < g.n; a++ {
		for b := a + 1; b < g.n; b++ {
			if !g.HasEdge(a, b) {
				continue
			}
			for w := range buf {
				buf[w] = g.adj[a][w] & g.adj[b][w]
				if buf[w] != 0 {
					return true
				}
			}
		}
	}
	return false
}

// HasFourClique reports whether the graph contains a 4-clique, by checking
// each triangle's common neighbourhood — the O(n³·n/64) direct baseline of
// the 4-clique hypothesis experiments.
func (g *Graph) HasFourClique() bool {
	buf := make([]uint64, len(g.adj[0]))
	for _, t := range g.Triangles() {
		a, b, c := t[0], t[1], t[2]
		for w := range buf {
			buf[w] = g.adj[a][w] & g.adj[b][w] & g.adj[c][w]
			if buf[w] != 0 {
				return true
			}
		}
	}
	return false
}

// ErdosRenyi samples G(n, p) with a deterministic seed.
func ErdosRenyi(n int, p float64, seed int64) *Graph {
	g := New(n)
	rng := rand.New(rand.NewSource(seed))
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				g.MustAddEdge(u, v)
			}
		}
	}
	return g
}

// PlantClique adds a clique on k distinct random vertices, returning the
// chosen vertices. Used to build yes-instances for clique detection.
func PlantClique(g *Graph, k int, seed int64) []int {
	if k > g.n {
		panic("graph: clique larger than graph")
	}
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(g.n)[:k]
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			g.MustAddEdge(perm[i], perm[j])
		}
	}
	return perm
}
