package graph

import (
	"testing"
)

func TestAddHasEdge(t *testing.T) {
	g := New(5)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 4)
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) || !g.HasEdge(4, 1) {
		t.Errorf("edges missing")
	}
	if g.HasEdge(0, 4) || g.HasEdge(0, 0) || g.HasEdge(-1, 2) || g.HasEdge(0, 9) {
		t.Errorf("phantom edges")
	}
	if g.M() != 2 || g.N() != 5 {
		t.Errorf("counts: n=%d m=%d", g.N(), g.M())
	}
	// Duplicate insert is a no-op.
	g.MustAddEdge(1, 0)
	if g.M() != 2 {
		t.Errorf("duplicate edge counted")
	}
	if err := g.AddEdge(2, 2); err == nil {
		t.Errorf("self-loop accepted")
	}
	if err := g.AddEdge(0, 9); err == nil {
		t.Errorf("out-of-range edge accepted")
	}
	if g.Degree(1) != 2 {
		t.Errorf("degree = %d", g.Degree(1))
	}
	if len(g.Edges()) != 2 {
		t.Errorf("edges = %v", g.Edges())
	}
}

// bruteTriangles is an O(n³) reference.
func bruteTriangles(g *Graph) [][3]int {
	var out [][3]int
	for a := 0; a < g.N(); a++ {
		for b := a + 1; b < g.N(); b++ {
			for c := b + 1; c < g.N(); c++ {
				if g.HasEdge(a, b) && g.HasEdge(b, c) && g.HasEdge(a, c) {
					out = append(out, [3]int{a, b, c})
				}
			}
		}
	}
	return out
}

func TestTrianglesAgainstBrute(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		g := ErdosRenyi(40, 0.2, seed)
		got := g.Triangles()
		want := bruteTriangles(g)
		if len(got) != len(want) {
			t.Fatalf("seed %d: %d triangles, want %d", seed, len(got), len(want))
		}
		seen := make(map[[3]int]bool, len(want))
		for _, tri := range want {
			seen[tri] = true
		}
		for _, tri := range got {
			if !seen[tri] {
				t.Errorf("seed %d: spurious triangle %v", seed, tri)
			}
		}
		if g.HasTriangle() != (len(want) > 0) {
			t.Errorf("seed %d: HasTriangle = %v with %d triangles", seed, g.HasTriangle(), len(want))
		}
	}
}

// bruteFourClique is an O(n⁴) reference.
func bruteFourClique(g *Graph) bool {
	for a := 0; a < g.N(); a++ {
		for b := a + 1; b < g.N(); b++ {
			if !g.HasEdge(a, b) {
				continue
			}
			for c := b + 1; c < g.N(); c++ {
				if !g.HasEdge(a, c) || !g.HasEdge(b, c) {
					continue
				}
				for d := c + 1; d < g.N(); d++ {
					if g.HasEdge(a, d) && g.HasEdge(b, d) && g.HasEdge(c, d) {
						return true
					}
				}
			}
		}
	}
	return false
}

func TestFourCliqueAgainstBrute(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		p := 0.1 + 0.05*float64(seed)
		g := ErdosRenyi(30, p, seed)
		if got, want := g.HasFourClique(), bruteFourClique(g); got != want {
			t.Errorf("seed %d p=%.2f: HasFourClique = %v, want %v", seed, p, got, want)
		}
	}
}

func TestPlantClique(t *testing.T) {
	g := ErdosRenyi(40, 0.02, 3)
	verts := PlantClique(g, 4, 7)
	if len(verts) != 4 {
		t.Fatalf("planted %d vertices", len(verts))
	}
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			if !g.HasEdge(verts[i], verts[j]) {
				t.Errorf("planted clique missing edge %d-%d", verts[i], verts[j])
			}
		}
	}
	if !g.HasFourClique() {
		t.Errorf("planted 4-clique not found")
	}
}

func TestErdosRenyiDeterministic(t *testing.T) {
	a := ErdosRenyi(25, 0.3, 42)
	b := ErdosRenyi(25, 0.3, 42)
	if a.M() != b.M() {
		t.Errorf("same seed, different edge counts: %d vs %d", a.M(), b.M())
	}
	for _, e := range a.Edges() {
		if !b.HasEdge(e[0], e[1]) {
			t.Errorf("same seed, different edges")
		}
	}
}
