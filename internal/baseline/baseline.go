// Package baseline provides a straightforward join-and-deduplicate
// evaluator for CQs and UCQs. It is the comparator that the paper's
// DelayClin results are implicitly measured against: it computes all
// homomorphisms by a nested index join and deduplicates head projections,
// so its running time grows with the number of homomorphisms rather than
// the number of answers, and it has no delay guarantee.
//
// The package doubles as the test oracle for the constant-delay engine.
package baseline

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/cq"
	"repro/internal/database"
	"repro/internal/shard"
)

// EvalCQ computes the answer relation of q over inst (head projections of
// all homomorphisms, deduplicated). Virtual atoms participate like regular
// atoms and must have relations in the instance.
func EvalCQ(q *cq.CQ, inst *database.Instance) (*database.Relation, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	plan, err := newJoinPlan(q, inst)
	if err != nil {
		return nil, err
	}
	out := database.NewRelation(q.Name, len(q.Head))
	seen := database.NewTupleSet(0)
	head := make(database.Tuple, len(q.Head))
	plan.run(func(assign map[cq.Variable]database.Value) bool {
		for i, v := range q.Head {
			head[i] = assign[v]
		}
		if seen.Insert(head) {
			out.Append(head...)
		}
		return true
	})
	return out, nil
}

// DecideCQ reports whether q has at least one answer over inst.
func DecideCQ(q *cq.CQ, inst *database.Instance) (bool, error) {
	plan, err := newJoinPlan(q, inst)
	if err != nil {
		return false, err
	}
	found := false
	plan.run(func(map[cq.Variable]database.Value) bool {
		found = true
		return false
	})
	return found, nil
}

// EvalUCQ computes the union of the member CQs' answers, deduplicated
// positionally.
func EvalUCQ(u *cq.UCQ, inst *database.Instance) (*database.Relation, error) {
	return EvalUCQCtx(context.Background(), u, inst)
}

// EvalUCQCtx is EvalUCQ with cooperative cancellation: ctx is checked
// before each member CQ's evaluation, so a caller that goes away mid-union
// aborts with ctx's error after at most one member's worth of work instead
// of materializing the whole answer set for nobody. Member evaluation
// itself is not interrupted (a single CQ's join runs to completion).
func EvalUCQCtx(ctx context.Context, u *cq.UCQ, inst *database.Instance) (*database.Relation, error) {
	if err := u.Validate(); err != nil {
		return nil, err
	}
	rels := make([]*database.Relation, len(u.CQs))
	for i, q := range u.CQs {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		r, err := EvalCQ(q, inst)
		if err != nil {
			return nil, err
		}
		rels[i] = r
	}
	return mergeUnion(u, rels), nil
}

// EvalUCQParallel computes the same relation as EvalUCQ, evaluating every
// member CQ in its own goroutine over the shared (read-only) instance and
// merging the member answers through one dedup set. Output order follows
// CQ order, so the result equals EvalUCQ's row for row.
func EvalUCQParallel(u *cq.UCQ, inst *database.Instance) (*database.Relation, error) {
	return EvalUCQParallelCtx(context.Background(), u, inst)
}

// EvalUCQParallelCtx is EvalUCQParallel with cooperative cancellation: each
// member goroutine checks ctx before starting its join, and a cancelled
// context surfaces as ctx's error once the in-flight members finish.
func EvalUCQParallelCtx(ctx context.Context, u *cq.UCQ, inst *database.Instance) (*database.Relation, error) {
	if err := u.Validate(); err != nil {
		return nil, err
	}
	rels := make([]*database.Relation, len(u.CQs))
	errs := make([]error, len(u.CQs))
	var wg sync.WaitGroup
	for i, q := range u.CQs {
		wg.Add(1)
		go func(i int, q *cq.CQ) {
			defer wg.Done()
			if err := ctx.Err(); err != nil {
				errs[i] = err
				return
			}
			rels[i], errs[i] = EvalCQ(q, inst)
		}(i, q)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return mergeUnion(u, rels), nil
}

// EvalUCQShardedParallel computes the same answer set as EvalUCQ,
// hash-partitioning each member CQ's input across n shards on a safe
// join-key attribute chosen from the CQ's join structure and evaluating
// every (CQ, shard) pair in its own goroutine. CQs with no safe attribute
// (e.g. self-joins with conflicting columns) fall back to one unsharded
// evaluation. The merged relation is deduplicated positionally; its row
// order is deterministic for a given n but differs from EvalUCQ's.
func EvalUCQShardedParallel(u *cq.UCQ, inst *database.Instance, n int) (*database.Relation, error) {
	return EvalUCQShardedParallelCtx(context.Background(), u, inst, n)
}

// EvalUCQShardedParallelCtx is EvalUCQShardedParallel with cooperative
// cancellation: ctx is checked while partitioning each member CQ and by
// every (CQ, shard) goroutine before its join starts.
func EvalUCQShardedParallelCtx(ctx context.Context, u *cq.UCQ, inst *database.Instance, n int) (*database.Relation, error) {
	if err := u.Validate(); err != nil {
		return nil, err
	}
	if n < 1 {
		return nil, fmt.Errorf("baseline: shard count %d < 1", n)
	}
	// One evaluation unit per (CQ, shard), or per CQ on fallback.
	type unit struct {
		q    *cq.CQ
		inst *database.Instance
	}
	var units []unit
	for _, q := range u.CQs {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		sh, _, ok := shard.ChooseAndPartition(q, inst, n)
		if !ok {
			units = append(units, unit{q, inst})
			continue
		}
		for _, s := range sh.Shards {
			units = append(units, unit{q, s.Inst})
		}
	}
	rels := make([]*database.Relation, len(units))
	errs := make([]error, len(units))
	var wg sync.WaitGroup
	for i, un := range units {
		wg.Add(1)
		go func(i int, un unit) {
			defer wg.Done()
			if err := ctx.Err(); err != nil {
				errs[i] = err
				return
			}
			rels[i], errs[i] = EvalCQ(un.q, un.inst)
		}(i, un)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return mergeUnion(u, rels), nil
}

// mergeUnion concatenates per-CQ answer relations under one dedup set.
func mergeUnion(u *cq.UCQ, rels []*database.Relation) *database.Relation {
	out := database.NewRelation("union", u.Arity())
	seen := database.NewTupleSet(0)
	for _, r := range rels {
		for i := 0; i < r.Len(); i++ {
			row := r.Row(i)
			if seen.Insert(row) {
				out.Append(row...)
			}
		}
	}
	return out
}

// DecideUCQ reports whether the union has at least one answer.
func DecideUCQ(u *cq.UCQ, inst *database.Instance) (bool, error) {
	for _, q := range u.CQs {
		ok, err := DecideCQ(q, inst)
		if err != nil {
			return false, err
		}
		if ok {
			return true, nil
		}
	}
	return false, nil
}

// joinPlan is a static-order nested index join: atom i is indexed on the
// positions bound by atoms 0..i-1.
type joinPlan struct {
	q     *cq.CQ
	atoms []plannedAtom
}

type plannedAtom struct {
	atom cq.Atom
	rel  *database.Relation
	// boundCols/boundVars are the columns whose variables are bound when
	// this atom is reached; index is on those columns. checkCols pairs
	// repeated occurrences within the atom: (col, firstCol).
	boundCols []int
	boundVars []cq.Variable
	index     *database.Index
	// newVars lists (col, var) pairs bound by this atom.
	newCols []int
	newVars []cq.Variable
	// eqPairs lists (col, earlierCol) equality constraints from repeated
	// variables inside the atom.
	eqPairs [][2]int
}

func newJoinPlan(q *cq.CQ, inst *database.Instance) (*joinPlan, error) {
	p := &joinPlan{q: q}
	bound := make(cq.VarSet)
	for _, a := range q.Atoms {
		rel := inst.Relation(a.Rel)
		if rel == nil {
			return nil, fmt.Errorf("baseline: no relation %q in the instance", a.Rel)
		}
		if rel.Arity() != len(a.Vars) {
			return nil, fmt.Errorf("baseline: atom %s has arity %d but relation has arity %d",
				a, len(a.Vars), rel.Arity())
		}
		pa := plannedAtom{atom: a, rel: rel}
		firstCol := make(map[cq.Variable]int)
		for c, v := range a.Vars {
			if fc, ok := firstCol[v]; ok {
				pa.eqPairs = append(pa.eqPairs, [2]int{c, fc})
				continue
			}
			firstCol[v] = c
			if bound[v] {
				pa.boundCols = append(pa.boundCols, c)
				pa.boundVars = append(pa.boundVars, v)
			} else {
				pa.newCols = append(pa.newCols, c)
				pa.newVars = append(pa.newVars, v)
			}
		}
		pa.index = rel.BuildIndex(pa.boundCols)
		for _, v := range pa.newVars {
			bound.Add(v)
		}
		p.atoms = append(p.atoms, pa)
	}
	return p, nil
}

// run invokes emit for every homomorphism; emit returns false to stop.
func (p *joinPlan) run(emit func(map[cq.Variable]database.Value) bool) {
	assign := make(map[cq.Variable]database.Value)
	var key database.Tuple
	var rec func(k int) bool
	rec = func(k int) bool {
		if k == len(p.atoms) {
			return emit(assign)
		}
		pa := &p.atoms[k]
		key = key[:0]
		for _, v := range pa.boundVars {
			key = append(key, assign[v])
		}
		for _, ri := range pa.index.Lookup(key) {
			row := pa.rel.Row(int(ri))
			ok := true
			for _, eq := range pa.eqPairs {
				if row[eq[0]] != row[eq[1]] {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			for i, c := range pa.newCols {
				assign[pa.newVars[i]] = row[c]
			}
			if !rec(k + 1) {
				return false
			}
		}
		return true
	}
	rec(0)
}
