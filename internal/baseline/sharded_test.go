package baseline

import (
	"testing"

	"repro/internal/cq"
	"repro/internal/workload"
)

// TestEvalUCQShardedParallelMatchesSequential compares the sharded naive
// evaluator against EvalUCQ across shard counts on unions mixing shardable
// and fallback (self-join) members.
func TestEvalUCQShardedParallelMatchesSequential(t *testing.T) {
	queries := []string{
		`
		Q1(x,y) <- R1(x,z), R2(z,y).
		Q2(x,y) <- R2(x,z), R1(z,y).
		`,
		// The self-join member has no safe partition attribute.
		`
		Q1(x,y) <- R1(x,z), R1(z,y).
		Q2(x,y) <- R1(x,y), R2(y,y).
		`,
	}
	for qi, src := range queries {
		u := cq.MustParse(src)
		inst := workload.RandomForQuery(u, 300, 25, int64(qi+3))
		want, err := EvalUCQ(u, inst)
		if err != nil {
			t.Fatalf("query %d: EvalUCQ: %v", qi, err)
		}
		wantRows := want.SortedRows()
		for _, n := range []int{1, 2, 8} {
			got, err := EvalUCQShardedParallel(u, inst, n)
			if err != nil {
				t.Fatalf("query %d shards %d: %v", qi, n, err)
			}
			gotRows := got.SortedRows()
			if len(gotRows) != len(wantRows) {
				t.Fatalf("query %d shards %d: %d answers, want %d", qi, n, len(gotRows), len(wantRows))
			}
			for i := range wantRows {
				if !gotRows[i].Equal(wantRows[i]) {
					t.Fatalf("query %d shards %d: row %d = %v, want %v", qi, n, i, gotRows[i], wantRows[i])
				}
			}
		}
	}
}

// TestEvalUCQShardedParallelSkewed checks correctness on a skew-dominated
// join instance.
func TestEvalUCQShardedParallelSkewed(t *testing.T) {
	u := cq.MustParse("Q(x,y,w) <- R1(x,y), R2(y,w).")
	inst := workload.SkewedJoin(500, 10, 20, 25, 3, 5)
	want := 500*10 + 20*25*3
	got, err := EvalUCQShardedParallel(u, inst, 8)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != want {
		t.Fatalf("skewed sharded eval: %d answers, want %d", got.Len(), want)
	}
}

// TestEvalUCQShardedParallelBadCount rejects invalid shard counts.
func TestEvalUCQShardedParallelBadCount(t *testing.T) {
	u := cq.MustParse("Q(x) <- R1(x,y).")
	inst := workload.RandomForQuery(u, 10, 5, 1)
	if _, err := EvalUCQShardedParallel(u, inst, 0); err == nil {
		t.Fatal("shard count 0 accepted")
	}
}
