package baseline

import (
	"testing"

	"repro/internal/cq"
	"repro/internal/database"
)

func inst(rels map[string]struct {
	arity int
	rows  [][]int64
}) *database.Instance {
	in := database.NewInstance()
	for name, spec := range rels {
		r := database.NewRelation(name, spec.arity)
		for _, row := range spec.rows {
			r.AppendInts(row...)
		}
		in.AddRelation(r)
	}
	return in
}

func TestEvalCQSimpleJoin(t *testing.T) {
	q := cq.MustParseCQ("Q(x,z) <- R(x,y), S(y,z).")
	in := inst(map[string]struct {
		arity int
		rows  [][]int64
	}{
		"R": {2, [][]int64{{1, 10}, {2, 10}, {3, 30}}},
		"S": {2, [][]int64{{10, 7}, {30, 8}}},
	})
	out, err := EvalCQ(q, in)
	if err != nil {
		t.Fatalf("EvalCQ: %v", err)
	}
	rows := out.SortedRows()
	want := []database.Tuple{
		{database.V(1), database.V(7)},
		{database.V(2), database.V(7)},
		{database.V(3), database.V(8)},
	}
	if len(rows) != len(want) {
		t.Fatalf("rows = %v", rows)
	}
	for i := range want {
		if !rows[i].Equal(want[i]) {
			t.Errorf("row %d = %v, want %v", i, rows[i], want[i])
		}
	}
}

func TestEvalCQDeduplicates(t *testing.T) {
	q := cq.MustParseCQ("Q(x) <- R(x,y).")
	in := inst(map[string]struct {
		arity int
		rows  [][]int64
	}{
		"R": {2, [][]int64{{1, 10}, {1, 20}, {1, 30}}},
	})
	out, _ := EvalCQ(q, in)
	if out.Len() != 1 {
		t.Errorf("answers = %d, want 1", out.Len())
	}
}

func TestEvalCQSelfJoinAndRepeatedVars(t *testing.T) {
	q := cq.MustParseCQ("Q(x,y) <- R(x,y), R(y,x).")
	in := inst(map[string]struct {
		arity int
		rows  [][]int64
	}{
		"R": {2, [][]int64{{1, 2}, {2, 1}, {3, 4}}},
	})
	out, _ := EvalCQ(q, in)
	if out.Len() != 2 { // (1,2) and (2,1)
		t.Errorf("answers = %v", out.SortedRows())
	}
	q2 := cq.MustParseCQ("Q(x) <- R(x,x).")
	in2 := inst(map[string]struct {
		arity int
		rows  [][]int64
	}{
		"R": {2, [][]int64{{1, 1}, {1, 2}}},
	})
	out2, _ := EvalCQ(q2, in2)
	if out2.Len() != 1 {
		t.Errorf("repeated-var answers = %v", out2.SortedRows())
	}
}

func TestEvalCQCyclicQueryWorks(t *testing.T) {
	// The baseline handles cyclic queries (unlike the CDY engine).
	q := cq.MustParseCQ("Q(x,y,z) <- R(x,y), S(y,z), T(z,x).")
	in := inst(map[string]struct {
		arity int
		rows  [][]int64
	}{
		"R": {2, [][]int64{{1, 2}, {2, 3}}},
		"S": {2, [][]int64{{2, 3}}},
		"T": {2, [][]int64{{3, 1}}},
	})
	out, _ := EvalCQ(q, in)
	rows := out.Rows()
	if len(rows) != 1 || !rows[0].Equal(database.Tuple{database.V(1), database.V(2), database.V(3)}) {
		t.Errorf("triangle = %v", rows)
	}
}

func TestDecideCQ(t *testing.T) {
	q := cq.MustParseCQ("Q() <- R(x), S(x).")
	yes := inst(map[string]struct {
		arity int
		rows  [][]int64
	}{
		"R": {1, [][]int64{{1}, {2}}},
		"S": {1, [][]int64{{2}}},
	})
	if ok, _ := DecideCQ(q, yes); !ok {
		t.Errorf("Decide = false, want true")
	}
	no := inst(map[string]struct {
		arity int
		rows  [][]int64
	}{
		"R": {1, [][]int64{{1}}},
		"S": {1, [][]int64{{2}}},
	})
	if ok, _ := DecideCQ(q, no); ok {
		t.Errorf("Decide = true, want false")
	}
}

func TestEvalUCQUnionAndDedup(t *testing.T) {
	u := cq.MustParse(`
		Q1(x) <- R(x,y).
		Q2(x) <- S(x).
	`)
	in := inst(map[string]struct {
		arity int
		rows  [][]int64
	}{
		"R": {2, [][]int64{{1, 10}, {2, 20}}},
		"S": {1, [][]int64{{2}, {3}}},
	})
	out, err := EvalUCQ(u, in)
	if err != nil {
		t.Fatalf("EvalUCQ: %v", err)
	}
	if out.Len() != 3 { // {1,2,3}; 2 appears in both CQs but is deduped
		t.Errorf("union = %v", out.SortedRows())
	}
	ok, err := DecideUCQ(u, in)
	if err != nil || !ok {
		t.Errorf("DecideUCQ = %v, %v", ok, err)
	}
}

func TestErrors(t *testing.T) {
	q := cq.MustParseCQ("Q(x) <- R(x).")
	empty := database.NewInstance()
	if _, err := EvalCQ(q, empty); err == nil {
		t.Errorf("missing relation accepted")
	}
	if _, err := DecideCQ(q, empty); err == nil {
		t.Errorf("missing relation accepted by Decide")
	}
	bad := database.NewInstance()
	bad.AddRelation(database.NewRelation("R", 3))
	if _, err := EvalCQ(q, bad); err == nil {
		t.Errorf("arity mismatch accepted")
	}
	u := cq.MustUCQ(q)
	if _, err := EvalUCQ(u, empty); err == nil {
		t.Errorf("EvalUCQ accepted missing relation")
	}
	if _, err := DecideUCQ(u, empty); err == nil {
		t.Errorf("DecideUCQ accepted missing relation")
	}
}
