package enumeration

import (
	"sort"
	"testing"

	"repro/internal/database"
)

// mkTuples builds n single-column tuples base, base+1, ...
func mkTuples(base, n int) []database.Tuple {
	out := make([]database.Tuple, n)
	for i := range out {
		out[i] = database.Tuple{database.V(int64(base + i))}
	}
	return out
}

// TestParallelUnionDisjoint checks that disjoint mode emits every branch
// answer exactly once and that the returned views stay stable after the
// stream advances past their batch.
func TestParallelUnionDisjoint(t *testing.T) {
	its := []Iterator{
		NewSliceIterator(mkTuples(0, 500)),
		NewSliceIterator(mkTuples(500, 500)),
		NewSliceIterator(mkTuples(1000, 500)),
	}
	u := NewParallelUnionOpts(1, UnionOptions{BatchSize: 64, Disjoint: true}, its...)
	var got []database.Tuple
	for {
		tup, ok := u.Next()
		if !ok {
			break
		}
		got = append(got, tup)
	}
	if len(got) != 1500 {
		t.Fatalf("disjoint union yielded %d answers, want 1500", len(got))
	}
	if u.Duplicates() != 0 {
		t.Fatalf("disjoint union reported %d duplicates", u.Duplicates())
	}
	vals := make([]int, len(got))
	for i, tup := range got {
		vals[i] = int(tup[0].Payload())
	}
	sort.Ints(vals)
	for i, v := range vals {
		if v != i {
			t.Fatalf("answer set corrupted: sorted[%d] = %d (batch buffer was recycled?)", i, v)
		}
	}
}

// TestParallelUnionDisjointNullary covers arity-0 answers in disjoint mode.
func TestParallelUnionDisjointNullary(t *testing.T) {
	its := []Iterator{
		NewSliceIterator([]database.Tuple{{}, {}}),
		NewSliceIterator([]database.Tuple{{}}),
	}
	u := NewParallelUnionOpts(0, UnionOptions{Disjoint: true}, its...)
	n := 0
	for {
		if _, ok := u.Next(); !ok {
			break
		}
		n++
	}
	if n != 3 {
		t.Fatalf("nullary disjoint union yielded %d answers, want 3", n)
	}
}

// TestParallelUnionSizeHint checks that a pre-sized merge still deduplicates
// exactly, including hints far above and below the real cardinality.
func TestParallelUnionSizeHint(t *testing.T) {
	for _, hint := range []int{-5, 0, 10, 2000, MaxSizeHint + 1} {
		its := []Iterator{
			NewSliceIterator(mkTuples(0, 800)),
			NewSliceIterator(mkTuples(400, 800)), // overlaps the first branch
		}
		u := NewParallelUnionOpts(1, UnionOptions{SizeHint: hint}, its...)
		n := 0
		for {
			if _, ok := u.Next(); !ok {
				break
			}
			n++
		}
		if n != 1200 {
			t.Fatalf("hint %d: got %d distinct answers, want 1200", hint, n)
		}
		if u.Duplicates() != 400 {
			t.Fatalf("hint %d: got %d duplicates, want 400", hint, u.Duplicates())
		}
	}
}

// TestParallelUnionDisjointClose checks Close releases workers mid-stream in
// disjoint mode.
func TestParallelUnionDisjointClose(t *testing.T) {
	u := NewParallelUnionOpts(1, UnionOptions{BatchSize: 8, Disjoint: true},
		NewSliceIterator(mkTuples(0, 10000)))
	if _, ok := u.Next(); !ok {
		t.Fatal("expected at least one answer")
	}
	u.Close()
	if _, ok := u.Next(); ok {
		t.Fatal("Next after Close should report exhaustion")
	}
}
