package enumeration

import (
	"repro/internal/database"
	"repro/internal/storage"
)

// dedupSet abstracts the merge's deduplication layer so ParallelUnion can
// run against the in-memory TupleSet or, past a budget, the disk-backed
// spill table. InsertGet mirrors TupleSet.InsertGet plus an error channel
// for disk trouble; the returned tuple is stable for the consumer either
// way (an arena view in memory, an owned copy once spilled).
type dedupSet interface {
	InsertGet(t database.Tuple) (database.Tuple, bool, error)
	Len() int
	Close() error
}

// memSet is the TupleSet-backed dedupSet: no budget, no errors.
type memSet struct{ s *database.TupleSet }

func (m memSet) InsertGet(t database.Tuple) (database.Tuple, bool, error) {
	stored, fresh := m.s.InsertGet(t)
	return stored, fresh, nil
}

func (m memSet) Len() int     { return m.s.Len() }
func (m memSet) Close() error { return nil }

// spillingSet dedups in memory until the set holds budget tuples, then
// migrates every entry into a storage.SpillSet (reusing the hashes the
// TupleSet already computed) and continues on disk. Tuples handed out
// before the migration are arena views and stay valid: the consumer's
// references keep the arena alive after the set lets go of it.
type spillingSet struct {
	mem     *database.TupleSet
	disk    *storage.SpillSet
	dir     string
	arity   int
	budget  int
	spilled bool
}

func newSpillingSet(dir string, arity, budget, sizeHint int) *spillingSet {
	if sizeHint > budget {
		sizeHint = budget
	}
	valueHint := sizeHint * arity
	if valueHint > maxPreallocValues {
		valueHint = maxPreallocValues
	}
	return &spillingSet{
		mem:    database.NewTupleSetSized(sizeHint, valueHint),
		dir:    dir,
		arity:  arity,
		budget: budget,
	}
}

func (s *spillingSet) InsertGet(t database.Tuple) (database.Tuple, bool, error) {
	if s.disk != nil {
		return s.disk.InsertGet(t)
	}
	stored, fresh := s.mem.InsertGet(t)
	if fresh && s.mem.Len() >= s.budget {
		if err := s.spill(); err != nil {
			return nil, false, err
		}
	}
	return stored, fresh, nil
}

// spill moves the in-memory entries to disk. The data file ends up holding
// the same tuple sequence the arena did, inserted under the arena's own
// hashes, so membership verdicts are unchanged.
func (s *spillingSet) spill() error {
	disk, err := storage.NewSpillSet(s.dir, s.arity, 2*s.budget)
	if err != nil {
		return err
	}
	for i := 0; i < s.mem.Len(); i++ {
		if _, _, err := disk.InsertGetHash(s.mem.HashAt(i), s.mem.At(i)); err != nil {
			disk.Close()
			return err
		}
	}
	s.disk = disk
	s.spilled = true
	s.mem = nil
	return nil
}

func (s *spillingSet) Len() int {
	if s.disk != nil {
		return s.disk.Len()
	}
	return s.mem.Len()
}

func (s *spillingSet) Close() error {
	if s.disk != nil {
		return s.disk.Close()
	}
	return nil
}
