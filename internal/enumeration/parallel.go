package enumeration

import (
	"sync"

	"repro/internal/database"
)

// DefaultBatchSize is the per-worker batch size used when a caller passes a
// non-positive size: large enough to amortize channel synchronization, small
// enough to keep answers flowing early.
const DefaultBatchSize = 256

// batch carries n answers' values, flat, from a branch worker to the merge.
type batch struct {
	vals []database.Value
	n    int
}

// MaxSizeHint caps the dedup pre-sizing a UnionOptions.SizeHint may ask
// for, bounding the up-front slot-table allocation (a hint is advisory; the
// set still grows past it on demand). Kept modest so a limited or
// early-abandoned drain of a plan with a huge estimate does not pay a
// final-size allocation for answers it never pulls.
const MaxSizeHint = 1 << 22

// maxPreallocValues bounds the arena/hash preallocation (in values) the
// same way.
const maxPreallocValues = 1 << 22

// UnionOptions tunes a ParallelUnion merge.
type UnionOptions struct {
	// BatchSize is the per-worker batch size; ≤ 0 selects DefaultBatchSize.
	BatchSize int
	// SizeHint pre-sizes the dedup set to the expected number of distinct
	// answers, so the hot merge path never pays a growth rehash. ≤ 0 means
	// unknown; hints above MaxSizeHint are clamped.
	SizeHint int
	// Disjoint promises that the branches are pairwise disjoint and
	// individually duplicate-free (e.g. shards of a single CQ partitioned
	// on a head variable). The merge then skips deduplication entirely:
	// answers pass straight from the branch batches to the consumer, and
	// returned tuples are stable views into the batch buffers.
	Disjoint bool
}

// ParallelUnion enumerates the union of several branch iterators with
// global deduplication, draining every branch in its own goroutine. Workers
// pull answers in batches (through the BatchIterator fast path when the
// branch has one) and feed a bounded channel; the consuming side merges
// batches through a shared TupleSet, so synchronization costs are paid per
// batch while deduplication stays exact. Answer order is nondeterministic
// across runs, but the answer set equals the sequential union's.
//
// With UnionOptions.Disjoint the dedup layer is bypassed: each branch
// answer is emitted exactly once, which is correct precisely when the
// branches are pairwise disjoint and duplicate-free.
//
// Like all iterators in this package, a ParallelUnion is single-use and its
// Next/Close methods are not safe for concurrent use. Abandoning a
// partially drained ParallelUnion without calling Close leaks the worker
// goroutines; draining to exhaustion releases them automatically.
type ParallelUnion struct {
	arity    int
	disjoint bool
	out      chan batch
	free     chan []database.Value
	done     chan struct{}

	seen *database.TupleSet
	cur  batch
	pos  int

	closed bool
	// Stats.
	pulled     int
	duplicates int
}

// NewParallelUnion starts one worker per branch iterator. arity is the
// common answer arity of the branches (zero is allowed: nullary answers are
// counted, not stored). batchSize ≤ 0 selects DefaultBatchSize.
func NewParallelUnion(arity, batchSize int, its ...Iterator) *ParallelUnion {
	return NewParallelUnionOpts(arity, UnionOptions{BatchSize: batchSize}, its...)
}

// NewParallelUnionOpts starts one worker per branch iterator with explicit
// merge options.
func NewParallelUnionOpts(arity int, opts UnionOptions, its ...Iterator) *ParallelUnion {
	batchSize := opts.BatchSize
	if batchSize <= 0 {
		batchSize = DefaultBatchSize
	}
	u := &ParallelUnion{
		arity:    arity,
		disjoint: opts.Disjoint,
		out:      make(chan batch, 2*len(its)),
		free:     make(chan []database.Value, 2*len(its)+len(its)),
		done:     make(chan struct{}),
	}
	if !opts.Disjoint {
		hint := opts.SizeHint
		if hint < 0 {
			hint = 0
		}
		if hint > MaxSizeHint {
			hint = MaxSizeHint
		}
		valueHint := hint * arity
		if valueHint > maxPreallocValues {
			valueHint = maxPreallocValues
		}
		u.seen = database.NewTupleSetSized(hint, valueHint)
	}
	bufCap := batchSize * arity
	if bufCap == 0 {
		bufCap = 1 // non-nil buffers keep the recycle path uniform
	}
	var wg sync.WaitGroup
	for _, it := range its {
		wg.Add(1)
		go func(it Iterator) {
			defer wg.Done()
			for {
				var buf []database.Value
				select {
				case buf = <-u.free:
					buf = buf[:0]
				default:
					buf = make([]database.Value, 0, bufCap)
				}
				buf, n := NextBatch(it, buf, batchSize)
				if n == 0 {
					return
				}
				select {
				case u.out <- batch{vals: buf, n: n}:
				case <-u.done:
					return
				}
			}
		}(it)
	}
	go func() {
		wg.Wait()
		close(u.out)
	}()
	return u
}

// Next implements Iterator: duplicate-free, arrival order. Returned tuples
// are stable views owned by the union: arena entries of the dedup set, or,
// in disjoint mode, slices of the (never recycled) batch buffers.
func (u *ParallelUnion) Next() (database.Tuple, bool) {
	if u.closed {
		return nil, false
	}
	for {
		for u.pos < u.cur.n {
			var t database.Tuple
			if u.arity > 0 {
				off := u.pos * u.arity
				t = database.Tuple(u.cur.vals[off : off+u.arity])
			} else {
				t = database.Tuple{}
			}
			u.pos++
			u.pulled++
			if u.disjoint {
				return t, true
			}
			stored, fresh := u.seen.InsertGet(t)
			if fresh {
				return stored, true
			}
			u.duplicates++
		}
		// Batch fully merged into the dedup arena: recycle its buffer. In
		// disjoint mode emitted tuples are views into the buffer, so it must
		// stay untouched; workers then always allocate fresh buffers.
		if u.cur.vals != nil {
			if !u.disjoint {
				select {
				case u.free <- u.cur.vals:
				default:
				}
			}
			u.cur = batch{}
		}
		b, ok := <-u.out
		if !ok {
			u.Close()
			return nil, false
		}
		u.cur = b
		u.pos = 0
	}
}

// Close releases the branch workers. It is idempotent, runs automatically
// when the stream is drained to exhaustion, and must be called explicitly
// when abandoning a partially drained union (e.g. after an answer limit).
// After Close, Next reports exhaustion.
func (u *ParallelUnion) Close() {
	if u.closed {
		return
	}
	u.closed = true
	close(u.done)
	// Drain buffered batches so the closer goroutine's wg.Wait observes
	// every worker exit and closes out.
	go func() {
		for range u.out { //nolint:revive // draining to unblock workers
		}
	}()
}

// Pulled returns the number of branch results consumed so far.
func (u *ParallelUnion) Pulled() int { return u.pulled }

// Duplicates returns the number of branch results suppressed so far.
func (u *ParallelUnion) Duplicates() int { return u.duplicates }

// UnionAllParallel enumerates the union of several iterators of the given
// answer arity with global deduplication and one worker goroutine per
// branch; it is the concurrent counterpart of UnionAll. batchSize ≤ 0
// selects DefaultBatchSize.
func UnionAllParallel(arity, batchSize int, its ...Iterator) *ParallelUnion {
	return NewParallelUnion(arity, batchSize, its...)
}
