package enumeration

import (
	"context"

	"repro/internal/database"
	"repro/internal/exec"
)

// DefaultBatchSize is the per-worker batch size used when a caller passes a
// non-positive size: large enough to amortize channel synchronization, small
// enough to keep answers flowing early.
const DefaultBatchSize = exec.DefaultBatchSize

// MaxSizeHint caps the dedup pre-sizing a UnionOptions.SizeHint may ask
// for, bounding the up-front slot-table allocation (a hint is advisory; the
// set still grows past it on demand). Kept modest so a limited or
// early-abandoned drain of a plan with a huge estimate does not pay a
// final-size allocation for answers it never pulls.
const MaxSizeHint = 1 << 22

// maxPreallocValues bounds the arena/hash preallocation (in values) the
// same way.
const maxPreallocValues = 1 << 22

// UnionOptions tunes a ParallelUnion merge.
type UnionOptions struct {
	// BatchSize is the per-worker batch size; ≤ 0 selects DefaultBatchSize.
	BatchSize int
	// SizeHint pre-sizes the dedup set to the expected number of distinct
	// answers, so the hot merge path never pays a growth rehash. ≤ 0 means
	// unknown; hints above MaxSizeHint are clamped.
	SizeHint int
	// Disjoint promises that the branches are pairwise disjoint and
	// individually duplicate-free (e.g. shards of a single CQ partitioned
	// on a head variable, or root-range splits of one CDY plan). The merge
	// then skips deduplication entirely: answers pass straight from the
	// branch batches to the consumer, and returned tuples are stable views
	// into the batch buffers.
	Disjoint bool
	// Workers bounds the executor's worker pool; ≤ 0 selects GOMAXPROCS.
	Workers int
	// SpillBudget, when positive, bounds the number of distinct answers the
	// dedup set holds in memory: past it the set migrates to a disk-backed
	// table (internal/storage.SpillSet) and the merge continues with the
	// same answer set. ≤ 0 keeps dedup purely in memory. Ignored when
	// Disjoint (there is no dedup set to spill).
	SpillBudget int
	// SpillDir is where spilled dedup tables live (a private temp directory
	// is created under it); empty selects os.TempDir().
	SpillDir string
}

// ParallelUnion enumerates the union of several branch tasks with global
// deduplication, draining them on the work-stealing executor
// (internal/exec): a bounded worker pool pulls answers in batches, stealing
// and re-splitting tasks so a single heavy branch decomposes across
// workers instead of serialising on one. The consuming side merges batches
// through a shared TupleSet, so synchronization costs are paid per batch
// while deduplication stays exact. Answer order is nondeterministic across
// runs, but the answer set equals the sequential union's.
//
// With UnionOptions.Disjoint the dedup layer is bypassed: each branch
// answer is emitted exactly once, which is correct precisely when the
// branches are pairwise disjoint and duplicate-free.
//
// Like all iterators in this package, a ParallelUnion is single-use and its
// Next/Close methods are not safe for concurrent use. Draining to
// exhaustion releases the workers automatically; abandoning a partially
// drained union requires Close (or cancelling the construction context),
// which propagates into the executor and stops every worker within one
// batch.
type ParallelUnion struct {
	arity    int
	disjoint bool
	ex       *exec.Executor

	seen dedupSet
	cur  exec.Batch
	pos  int

	closed bool
	err    error
	// Stats.
	pulled     int
	duplicates int
}

// NewParallelUnion starts a union over branch iterators. arity is the
// common answer arity of the branches (zero is allowed: nullary answers are
// counted, not stored). batchSize ≤ 0 selects DefaultBatchSize.
func NewParallelUnion(arity, batchSize int, its ...Iterator) *ParallelUnion {
	return NewParallelUnionOpts(arity, UnionOptions{BatchSize: batchSize}, its...)
}

// NewParallelUnionOpts starts a union over branch iterators with explicit
// merge options. Each iterator becomes one (indivisible) executor task;
// callers with splittable work should build exec.Tasks directly and use
// NewParallelUnionTasks.
func NewParallelUnionOpts(arity int, opts UnionOptions, its ...Iterator) *ParallelUnion {
	return NewParallelUnionCtx(context.Background(), arity, opts, its...)
}

// NewParallelUnionCtx is NewParallelUnionOpts with a cancellation context:
// when ctx is done the executor's workers stop within one batch, whether or
// not the consumer ever calls Close.
func NewParallelUnionCtx(ctx context.Context, arity int, opts UnionOptions, its ...Iterator) *ParallelUnion {
	tasks := make([]exec.Task, len(its))
	for i, it := range its {
		tasks[i] = TaskOf(it)
	}
	return NewParallelUnionTasks(ctx, arity, opts, tasks)
}

// NewParallelUnionTasks starts a union over executor tasks — the full
// work-stealing path: tasks that implement Split (root-range slices of a
// CDY plan) are re-split when stolen and shed work to idle workers, so
// output skew inside one branch no longer serialises on one goroutine.
func NewParallelUnionTasks(ctx context.Context, arity int, opts UnionOptions, tasks []exec.Task) *ParallelUnion {
	u := &ParallelUnion{
		arity:    arity,
		disjoint: opts.Disjoint,
	}
	if !opts.Disjoint {
		hint := opts.SizeHint
		if hint < 0 {
			hint = 0
		}
		if hint > MaxSizeHint {
			hint = MaxSizeHint
		}
		if opts.SpillBudget > 0 {
			u.seen = newSpillingSet(opts.SpillDir, arity, opts.SpillBudget, hint)
		} else {
			valueHint := hint * arity
			if valueHint > maxPreallocValues {
				valueHint = maxPreallocValues
			}
			u.seen = memSet{database.NewTupleSetSized(hint, valueHint)}
		}
	}
	u.ex = exec.Run(ctx, exec.Options{
		Workers:   opts.Workers,
		BatchSize: opts.BatchSize,
		Arity:     arity,
	}, tasks)
	return u
}

// Next implements Iterator: duplicate-free, arrival order. Returned tuples
// are stable views owned by the union: arena entries of the dedup set, or,
// in disjoint mode, slices of the (never recycled) batch buffers.
func (u *ParallelUnion) Next() (database.Tuple, bool) {
	if u.closed {
		return nil, false
	}
	for {
		for u.pos < u.cur.N {
			var t database.Tuple
			if u.arity > 0 {
				off := u.pos * u.arity
				t = database.Tuple(u.cur.Vals[off : off+u.arity])
			} else {
				t = database.Tuple{}
			}
			u.pos++
			u.pulled++
			if u.disjoint {
				return t, true
			}
			stored, fresh, err := u.seen.InsertGet(t)
			if err != nil {
				// A spill failure poisons the union: dedup state is gone, so
				// continuing could emit duplicates. Surface it via Err.
				u.err = err
				u.Close()
				return nil, false
			}
			if fresh {
				return stored, true
			}
			u.duplicates++
		}
		// Batch fully merged into the dedup arena: recycle its buffer. In
		// disjoint mode emitted tuples are views into the buffer, so it must
		// stay untouched; workers then always allocate fresh buffers.
		if u.cur.Vals != nil {
			if !u.disjoint {
				u.ex.Recycle(u.cur.Vals)
			}
			u.cur = exec.Batch{}
		}
		b, ok := <-u.ex.C()
		if !ok {
			u.Close()
			return nil, false
		}
		u.cur = b
		u.pos = 0
	}
}

// Close releases the executor's workers, blocking until every one has
// exited — at most one in-flight batch later. It is idempotent, runs
// automatically when the stream is drained to exhaustion, and must be
// called explicitly when abandoning a partially drained union (e.g. after
// an answer limit) unless the construction context is cancelled instead.
// After Close, Next reports exhaustion.
func (u *ParallelUnion) Close() {
	if u.closed {
		return
	}
	u.closed = true
	u.ex.Close()
	if u.seen != nil {
		u.seen.Close()
	}
}

// Err returns the error that terminated the union early, if any — today
// that is disk trouble on the spilled dedup path. A nil Err after Next
// reports exhaustion means the union completed.
func (u *ParallelUnion) Err() error { return u.err }

// Spilled reports whether the dedup set migrated to disk.
func (u *ParallelUnion) Spilled() bool {
	if s, ok := u.seen.(*spillingSet); ok {
		return s.spilled
	}
	return false
}

// Stats returns the underlying executor's counters (workers, tasks run,
// steals, splits).
func (u *ParallelUnion) Stats() exec.Stats { return u.ex.Stats() }

// Pulled returns the number of branch results consumed so far.
func (u *ParallelUnion) Pulled() int { return u.pulled }

// Duplicates returns the number of branch results suppressed so far.
func (u *ParallelUnion) Duplicates() int { return u.duplicates }

// UnionAllParallel enumerates the union of several iterators of the given
// answer arity with global deduplication on the work-stealing executor; it
// is the concurrent counterpart of UnionAll. batchSize ≤ 0 selects
// DefaultBatchSize.
func UnionAllParallel(arity, batchSize int, its ...Iterator) *ParallelUnion {
	return NewParallelUnion(arity, batchSize, its...)
}

// iterTask adapts a plain branch iterator to the executor's Task
// interface as one indivisible unit of work.
type iterTask struct{ it Iterator }

func (t iterTask) NextBatch(buf []database.Value, max int) ([]database.Value, int) {
	return NextBatch(t.it, buf, max)
}

func (t iterTask) Split() exec.Task { return nil }

// TaskOf wraps an iterator as an indivisible executor task. Work that can
// be divided (plan root ranges, slices) should implement exec.Task
// directly so the executor can steal and re-split it.
func TaskOf(it Iterator) exec.Task { return iterTask{it: it} }
