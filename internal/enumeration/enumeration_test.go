package enumeration

import (
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/database"
)

func tup(vals ...int64) database.Tuple {
	t := make(database.Tuple, len(vals))
	for i, v := range vals {
		t[i] = database.V(v)
	}
	return t
}

func keys(ts []database.Tuple) []string {
	out := make([]string, len(ts))
	for i, t := range ts {
		out[i] = t.Key()
	}
	sort.Strings(out)
	return out
}

func TestSliceIterator(t *testing.T) {
	it := NewSliceIterator([]database.Tuple{tup(1), tup(2)})
	a, ok := it.Next()
	if !ok || !a.Equal(tup(1)) {
		t.Fatalf("first = %v, %v", a, ok)
	}
	b, _ := it.Next()
	if !b.Equal(tup(2)) {
		t.Fatalf("second = %v", b)
	}
	if _, ok := it.Next(); ok {
		t.Errorf("not exhausted")
	}
}

func TestFuncAdapter(t *testing.T) {
	n := 0
	it := Func(func() (database.Tuple, bool) {
		if n >= 2 {
			return nil, false
		}
		n++
		return tup(int64(n)), true
	})
	if got := Collect(it); len(got) != 2 {
		t.Errorf("collect = %v", got)
	}
}

func TestChain(t *testing.T) {
	c := NewChain(
		NewSliceIterator([]database.Tuple{tup(1)}),
		NewSliceIterator(nil),
		NewSliceIterator([]database.Tuple{tup(2), tup(3)}),
	)
	got := Collect(c)
	if len(got) != 3 || !got[2].Equal(tup(3)) {
		t.Errorf("chain = %v", got)
	}
}

func TestCheaterDeduplicates(t *testing.T) {
	inner := NewSliceIterator([]database.Tuple{tup(1), tup(2), tup(1), tup(3), tup(2), tup(1)})
	c := NewCheater(inner, 2)
	got := Collect(c)
	if len(got) != 3 {
		t.Fatalf("deduped = %v", got)
	}
	want := keys([]database.Tuple{tup(1), tup(2), tup(3)})
	if g := keys(got); g[0] != want[0] || g[1] != want[1] || g[2] != want[2] {
		t.Errorf("got %v", got)
	}
	if c.Duplicates() != 3 {
		t.Errorf("duplicates = %d", c.Duplicates())
	}
	if c.Pulled() != 6 {
		t.Errorf("pulled = %d", c.Pulled())
	}
}

func TestCheaterPreservesFirstOccurrenceOrder(t *testing.T) {
	inner := NewSliceIterator([]database.Tuple{tup(5), tup(5), tup(4), tup(3)})
	got := Collect(NewCheater(inner, 1))
	if !got[0].Equal(tup(5)) || !got[1].Equal(tup(4)) || !got[2].Equal(tup(3)) {
		t.Errorf("order = %v", got)
	}
}

func TestCheaterClonesTuples(t *testing.T) {
	// The inner iterator reuses a buffer; Cheater must clone.
	buf := tup(0)
	n := int64(0)
	inner := Func(func() (database.Tuple, bool) {
		if n >= 3 {
			return nil, false
		}
		n++
		buf[0] = database.V(n)
		return buf, true
	})
	got := Collect(NewCheater(inner, 1))
	if got[0][0] != database.V(1) || got[2][0] != database.V(3) {
		t.Errorf("aliasing bug: %v", got)
	}
}

func TestCheaterQuickNoDupsNoLoss(t *testing.T) {
	f := func(vals []uint8, m uint8) bool {
		tuples := make([]database.Tuple, len(vals))
		want := make(map[string]bool)
		for i, v := range vals {
			tuples[i] = tup(int64(v % 16))
			want[tuples[i].Key()] = true
		}
		got := Collect(NewCheater(NewSliceIterator(tuples), int(m%5)))
		if len(got) != len(want) {
			return false
		}
		for _, g := range got {
			if !want[g.Key()] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// fakeTestable wraps a slice iterator with a set-based membership test.
type fakeTestable struct {
	*SliceIterator
	set map[string]bool
}

func newFakeTestable(ts []database.Tuple) *fakeTestable {
	set := make(map[string]bool, len(ts))
	for _, t := range ts {
		set[t.Key()] = true
	}
	return &fakeTestable{SliceIterator: NewSliceIterator(ts), set: set}
}

func (f *fakeTestable) Contains(t database.Tuple) bool { return f.set[t.Key()] }

func TestAlgorithmOne(t *testing.T) {
	// Q1 = {1,2,3}, Q2 = {2,3,4,5}: union {1..5}, each exactly once.
	q1 := NewSliceIterator([]database.Tuple{tup(1), tup(2), tup(3)})
	q2 := newFakeTestable([]database.Tuple{tup(2), tup(3), tup(4), tup(5)})
	got := Collect(NewAlgorithmOne(q1, q2))
	if len(got) != 5 {
		t.Fatalf("union = %v", got)
	}
	seen := make(map[string]bool)
	for _, g := range got {
		if seen[g.Key()] {
			t.Errorf("duplicate %v", g)
		}
		seen[g.Key()] = true
	}
}

func TestAlgorithmOneDisjointAndContained(t *testing.T) {
	// Disjoint.
	got := Collect(NewAlgorithmOne(
		NewSliceIterator([]database.Tuple{tup(1)}),
		newFakeTestable([]database.Tuple{tup(2)}),
	))
	if len(got) != 2 {
		t.Errorf("disjoint union = %v", got)
	}
	// Q1 ⊆ Q2.
	got = Collect(NewAlgorithmOne(
		NewSliceIterator([]database.Tuple{tup(1), tup(2)}),
		newFakeTestable([]database.Tuple{tup(1), tup(2), tup(3)}),
	))
	if len(got) != 3 {
		t.Errorf("contained union = %v", got)
	}
	// Q1 empty.
	got = Collect(NewAlgorithmOne(
		NewSliceIterator(nil),
		newFakeTestable([]database.Tuple{tup(9)}),
	))
	if len(got) != 1 {
		t.Errorf("empty-q1 union = %v", got)
	}
	// Q2 empty.
	got = Collect(NewAlgorithmOne(
		NewSliceIterator([]database.Tuple{tup(7)}),
		newFakeTestable(nil),
	))
	if len(got) != 1 {
		t.Errorf("empty-q2 union = %v", got)
	}
}

func TestAlgorithmOneQuick(t *testing.T) {
	f := func(av, bv []uint8) bool {
		dedup := func(vals []uint8) []database.Tuple {
			seen := make(map[uint8]bool)
			var out []database.Tuple
			for _, v := range vals {
				v %= 16
				if !seen[v] {
					seen[v] = true
					out = append(out, tup(int64(v)))
				}
			}
			return out
		}
		a := dedup(av)
		b := dedup(bv)
		want := make(map[string]bool)
		for _, t := range a {
			want[t.Key()] = true
		}
		for _, t := range b {
			want[t.Key()] = true
		}
		got := Collect(NewAlgorithmOne(NewSliceIterator(a), newFakeTestable(b)))
		if len(got) != len(want) {
			return false
		}
		seen := make(map[string]bool)
		for _, g := range got {
			if seen[g.Key()] || !want[g.Key()] {
				return false
			}
			seen[g.Key()] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUnionAll(t *testing.T) {
	got := Collect(UnionAll(
		NewSliceIterator([]database.Tuple{tup(1), tup(2)}),
		NewSliceIterator([]database.Tuple{tup(2), tup(3)}),
		NewSliceIterator([]database.Tuple{tup(3), tup(4)}),
	))
	if len(got) != 4 {
		t.Errorf("union = %v", got)
	}
	single := Collect(UnionAll(NewSliceIterator([]database.Tuple{tup(1), tup(1)})))
	if len(single) != 1 {
		t.Errorf("single-branch union = %v", single)
	}
}

func TestMeasureDelays(t *testing.T) {
	st := MeasureDelays(func() Iterator {
		return NewSliceIterator([]database.Tuple{tup(1), tup(2), tup(3)})
	})
	if st.Count != 3 {
		t.Errorf("count = %d", st.Count)
	}
	if st.Total <= 0 || st.Preprocessing < 0 {
		t.Errorf("timings: %+v", st)
	}
	empty := MeasureDelays(func() Iterator { return NewSliceIterator(nil) })
	if empty.Count != 0 || empty.Preprocessing <= 0 {
		t.Errorf("empty run: %+v", empty)
	}
}
