package enumeration

import (
	"sort"
	"testing"

	"repro/internal/database"
)

// TestCheaterReleasesConsumedQueueEntries is the regression test for the
// queue leak: emitted entries used to stay referenced by the backing array
// forever (memory O(total answers) instead of O(pending)). After draining,
// the queue must be fully reset, and mid-stream the consumed prefix must be
// nilled out.
func TestCheaterReleasesConsumedQueueEntries(t *testing.T) {
	tuples := make([]database.Tuple, 1000)
	for i := range tuples {
		tuples[i] = tup(int64(i))
	}
	// m=4 pulls four inner results per emitted answer, so the queue builds
	// up a long pending tail before the stream drains.
	c := NewCheater(NewSliceIterator(tuples), 4)
	emitted := 0
	for {
		_, ok := c.Next()
		if !ok {
			break
		}
		emitted++
		for i := 0; i < c.head; i++ {
			if c.queue[i] != nil {
				t.Fatalf("consumed slot %d still references its tuple (head=%d)", i, c.head)
			}
		}
		if c.head >= 64 && c.head*2 >= len(c.queue) {
			t.Fatalf("queue not compacted: head=%d len=%d", c.head, len(c.queue))
		}
	}
	if emitted != len(tuples) {
		t.Fatalf("emitted %d of %d", emitted, len(tuples))
	}
	if c.Pending() != 0 || len(c.queue) != 0 || c.head != 0 {
		t.Fatalf("drained queue not reset: pending=%d len=%d head=%d", c.Pending(), len(c.queue), c.head)
	}
}

// exhaustibleTestable claims membership of everything but yields nothing —
// the mismatched-Contains condition behind Algorithm 1's defensive branch.
type exhaustibleTestable struct{ *SliceIterator }

func (e exhaustibleTestable) Contains(database.Tuple) bool { return true }

func TestAlgorithmOneSkippedObservable(t *testing.T) {
	a := NewAlgorithmOne(
		NewSliceIterator([]database.Tuple{tup(1), tup(2)}),
		exhaustibleTestable{NewSliceIterator(nil)},
	)
	if got := Collect(a); len(got) != 0 {
		t.Fatalf("union = %v, want empty", got)
	}
	// Both Q1 answers hit the defensive path: Contains said "in Q2" but Q2
	// had nothing left to pay with. Silent before; observable now.
	if a.Skipped() != 2 {
		t.Fatalf("Skipped = %d, want 2", a.Skipped())
	}

	// A well-matched Testable never trips the branch.
	ok := NewAlgorithmOne(
		NewSliceIterator([]database.Tuple{tup(1)}),
		newFakeTestable([]database.Tuple{tup(2)}),
	)
	Collect(ok)
	if ok.Skipped() != 0 {
		t.Fatalf("Skipped = %d, want 0", ok.Skipped())
	}
}

func TestMeasureDelaysEdgeCases(t *testing.T) {
	empty := MeasureDelays(func() Iterator { return NewSliceIterator(nil) })
	if empty.Count != 0 {
		t.Errorf("empty count = %d", empty.Count)
	}
	if empty.Preprocessing <= 0 || empty.Total < empty.Preprocessing {
		t.Errorf("empty timings: %+v", empty)
	}
	if empty.MaxDelay != 0 || empty.MeanDelay != 0 || empty.P50 != 0 || empty.P95 != 0 || empty.P99 != 0 {
		t.Errorf("empty stream has delay stats: %+v", empty)
	}

	single := MeasureDelays(func() Iterator {
		return NewSliceIterator([]database.Tuple{tup(42)})
	})
	if single.Count != 1 {
		t.Errorf("single count = %d", single.Count)
	}
	// One answer means zero inter-answer gaps: all delay stats stay zero.
	if single.MaxDelay != 0 || single.MeanDelay != 0 || single.P50 != 0 {
		t.Errorf("single answer has inter-answer delays: %+v", single)
	}
	if single.Preprocessing <= 0 || single.Total < single.Preprocessing {
		t.Errorf("single timings: %+v", single)
	}
}

func TestUnionAllZeroAndOneBranch(t *testing.T) {
	if got := Collect(UnionAll()); len(got) != 0 {
		t.Errorf("zero-branch union = %v", got)
	}
	got := Collect(UnionAll(NewSliceIterator([]database.Tuple{tup(3), tup(1), tup(3)})))
	if len(got) != 2 || !got[0].Equal(tup(3)) || !got[1].Equal(tup(1)) {
		t.Errorf("one-branch union = %v", got)
	}
}

func TestNextBatchFallbackAndFastPaths(t *testing.T) {
	// Func has no fast path: the helper copies tuples out of a reused
	// buffer, so batches own their data.
	buf := tup(0)
	n := int64(0)
	inner := Func(func() (database.Tuple, bool) {
		if n >= 5 {
			return nil, false
		}
		n++
		buf[0] = database.V(n)
		return buf, true
	})
	vals, got := NextBatch(inner, nil, 3)
	if got != 3 || len(vals) != 3 {
		t.Fatalf("fallback batch = %v (%d)", vals, got)
	}
	if vals[0] != database.V(1) || vals[2] != database.V(3) {
		t.Fatalf("fallback aliases the iterator buffer: %v", vals)
	}
	vals, got = NextBatch(inner, vals[:0], 10)
	if got != 2 || vals[1] != database.V(5) {
		t.Fatalf("tail batch = %v (%d)", vals, got)
	}

	// Chain spills across members in one call.
	c := NewChain(
		NewSliceIterator([]database.Tuple{tup(1, 10), tup(2, 20)}),
		NewSliceIterator(nil),
		NewSliceIterator([]database.Tuple{tup(3, 30)}),
	)
	vals, got = NextBatch(c, nil, 8)
	if got != 3 || len(vals) != 6 || vals[4] != database.V(3) {
		t.Fatalf("chain batch = %v (%d)", vals, got)
	}
	if _, again := NextBatch(c, nil, 8); again != 0 {
		t.Fatalf("exhausted chain produced %d answers", again)
	}
}

func sortedKeys(ts []database.Tuple) []string {
	out := make([]string, len(ts))
	for i, t := range ts {
		out[i] = t.Key()
	}
	sort.Strings(out)
	return out
}

func TestParallelUnionMatchesSequential(t *testing.T) {
	mk := func() []Iterator {
		return []Iterator{
			NewSliceIterator([]database.Tuple{tup(1, 1), tup(2, 2), tup(3, 3)}),
			NewSliceIterator([]database.Tuple{tup(2, 2), tup(4, 4)}),
			NewSliceIterator([]database.Tuple{tup(3, 3), tup(4, 4), tup(5, 5)}),
		}
	}
	want := sortedKeys(Collect(UnionAll(mk()...)))
	for _, batchSize := range []int{0, 1, 2, 1024} {
		got := sortedKeys(Collect(UnionAllParallel(2, batchSize, mk()...)))
		if len(got) != len(want) {
			t.Fatalf("batch=%d: %d answers, want %d", batchSize, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("batch=%d: answer sets differ at %d", batchSize, i)
			}
		}
	}
}

func TestParallelUnionLargeDisjointAndOverlapping(t *testing.T) {
	const branches, per = 8, 500
	var its []Iterator
	for b := 0; b < branches; b++ {
		tuples := make([]database.Tuple, per)
		for i := range tuples {
			// Half the range overlaps across branches.
			tuples[i] = tup(int64(b*per/2 + i))
		}
		its = append(its, NewSliceIterator(tuples))
	}
	u := UnionAllParallel(1, 64, its...)
	got := Collect(u)
	// Branch b covers [b*per/2, b*per/2+per): the union is [0, (branches+1)*per/2).
	want := (branches + 1) * per / 2
	if len(got) != want {
		t.Fatalf("answers = %d, want %d", len(got), want)
	}
	seen := make(map[string]bool, len(got))
	for _, g := range got {
		if seen[g.Key()] {
			t.Fatalf("duplicate %v", g)
		}
		seen[g.Key()] = true
	}
	if u.Pulled() != branches*per {
		t.Errorf("pulled = %d, want %d", u.Pulled(), branches*per)
	}
	if u.Duplicates() != branches*per-want {
		t.Errorf("duplicates = %d, want %d", u.Duplicates(), branches*per-want)
	}
}

func TestParallelUnionZeroBranchesAndEmptyBranches(t *testing.T) {
	if got := Collect(UnionAllParallel(1, 0)); len(got) != 0 {
		t.Errorf("zero-branch parallel union = %v", got)
	}
	got := Collect(UnionAllParallel(1, 0, NewSliceIterator(nil), NewSliceIterator(nil)))
	if len(got) != 0 {
		t.Errorf("empty-branch parallel union = %v", got)
	}
}

func TestParallelUnionNullaryAnswers(t *testing.T) {
	got := Collect(UnionAllParallel(0, 0,
		NewSliceIterator([]database.Tuple{{}, {}}),
		NewSliceIterator([]database.Tuple{{}}),
	))
	if len(got) != 1 || len(got[0]) != 0 {
		t.Errorf("nullary union = %v, want one empty tuple", got)
	}
}

func TestParallelUnionCloseEarly(t *testing.T) {
	tuples := make([]database.Tuple, 10000)
	for i := range tuples {
		tuples[i] = tup(int64(i))
	}
	u := UnionAllParallel(1, 16,
		NewSliceIterator(tuples),
		NewSliceIterator(tuples),
	)
	for i := 0; i < 5; i++ {
		if _, ok := u.Next(); !ok {
			t.Fatalf("exhausted after %d answers", i)
		}
	}
	u.Close()
	if _, ok := u.Next(); ok {
		t.Error("Next produced an answer after Close")
	}
	u.Close() // idempotent
}

func TestParallelUnionTuplesAreStable(t *testing.T) {
	// Returned tuples must stay valid after the union recycles batch
	// buffers and grows its arena.
	tuples := make([]database.Tuple, 2000)
	for i := range tuples {
		tuples[i] = tup(int64(i), int64(i*7))
	}
	u := UnionAllParallel(2, 32, NewSliceIterator(tuples))
	var got []database.Tuple
	for {
		tu, ok := u.Next()
		if !ok {
			break
		}
		got = append(got, tu)
	}
	if len(got) != len(tuples) {
		t.Fatalf("answers = %d", len(got))
	}
	seen := make(map[string]bool, len(got))
	for _, g := range got {
		if g[1].Payload() != g[0].Payload()*7 {
			t.Fatalf("corrupted tuple %v", g)
		}
		if seen[g.Key()] {
			t.Fatalf("duplicate %v", g)
		}
		seen[g.Key()] = true
	}
}
