// Package enumeration provides the enumeration-algorithm toolkit of the
// paper's upper-bound proofs: the answer-stream Iterator abstraction, the
// Cheater's Lemma combinator (Lemma 5), Algorithm 1 for unions of two
// tractable CQs (Theorem 4), generic concatenation, and wall-clock delay
// instrumentation used by the experiment harness.
package enumeration

import (
	"sort"
	"time"

	"repro/internal/database"
)

// Iterator is a stream of answer tuples. Next returns the next tuple and
// true, or nil and false once exhausted. Iterators are single-use and not
// safe for concurrent use.
type Iterator interface {
	Next() (database.Tuple, bool)
}

// Testable is an iterator whose underlying answer set supports a
// constant-time membership test (free-connex CQ plans do, after their
// linear preprocessing).
type Testable interface {
	Iterator
	Contains(database.Tuple) bool
}

// SliceIterator yields a fixed slice of tuples.
type SliceIterator struct {
	tuples []database.Tuple
	pos    int
}

// NewSliceIterator builds an iterator over the given tuples (not copied).
func NewSliceIterator(tuples []database.Tuple) *SliceIterator {
	return &SliceIterator{tuples: tuples}
}

// Next implements Iterator.
func (s *SliceIterator) Next() (database.Tuple, bool) {
	if s.pos >= len(s.tuples) {
		return nil, false
	}
	t := s.tuples[s.pos]
	s.pos++
	return t, true
}

// Func adapts a function to the Iterator interface.
type Func func() (database.Tuple, bool)

// Next implements Iterator.
func (f Func) Next() (database.Tuple, bool) { return f() }

// Chain concatenates iterators.
type Chain struct {
	its []Iterator
	pos int
}

// NewChain builds the concatenation of the given iterators.
func NewChain(its ...Iterator) *Chain { return &Chain{its: its} }

// Next implements Iterator.
func (c *Chain) Next() (database.Tuple, bool) {
	for c.pos < len(c.its) {
		if t, ok := c.its[c.pos].Next(); ok {
			return t, true
		}
		c.pos++
	}
	return nil, false
}

// Cheater is the Cheater's Lemma combinator (Lemma 5). It wraps an inner
// iterator that may produce every result up to m times and stall (delay
// linearly) a bounded number of times, and turns it into a duplicate-free
// stream: a lookup table filters repeats and a FIFO queue buffers fresh
// results, pulling up to m inner results per emitted answer. With the
// lemma's preconditions (inner duplication ≤ m, constantly many stalls) the
// emitted stream has linear preprocessing and constant delay.
type Cheater struct {
	inner Iterator
	m     int
	seen  map[string]bool
	queue []database.Tuple
	head  int
	// Stats.
	pulled     int
	duplicates int
}

// NewCheater wraps inner with duplication bound m (m ≥ 1). Use the number
// of CQs plus virtual atoms per CQ for Theorem 12 pipelines.
func NewCheater(inner Iterator, m int) *Cheater {
	if m < 1 {
		m = 1
	}
	return &Cheater{inner: inner, m: m, seen: make(map[string]bool)}
}

// Next implements Iterator: duplicate-free, order of first occurrence.
func (c *Cheater) Next() (database.Tuple, bool) {
	// Pull up to m inner results, enqueueing fresh ones.
	for i := 0; i < c.m; i++ {
		t, ok := c.inner.Next()
		if !ok {
			break
		}
		c.pulled++
		k := t.Key()
		if c.seen[k] {
			c.duplicates++
			continue
		}
		c.seen[k] = true
		c.queue = append(c.queue, t.Clone())
	}
	if c.head < len(c.queue) {
		t := c.queue[c.head]
		c.head++
		return t, true
	}
	// The queue drained faster than the inner stream produced fresh
	// results; keep pulling until a fresh one arrives or the inner stream
	// ends. Under the lemma's preconditions this loop runs at most m times.
	for {
		t, ok := c.inner.Next()
		if !ok {
			return nil, false
		}
		c.pulled++
		k := t.Key()
		if c.seen[k] {
			c.duplicates++
			continue
		}
		c.seen[k] = true
		return t.Clone(), true
	}
}

// Duplicates returns the number of inner results suppressed so far.
func (c *Cheater) Duplicates() int { return c.duplicates }

// Pulled returns the number of inner results consumed so far.
func (c *Cheater) Pulled() int { return c.pulled }

// AlgorithmOne is the paper's Algorithm 1: enumerate Q1 ∪ Q2 for two
// tractable CQs using only constant working memory. While Q1 produces
// answers, an answer outside Q2(I) is printed directly; an answer inside
// Q2(I) is "paid for" by printing the next Q2 answer instead (which always
// exists: the branch is taken exactly |Q1(I) ∩ Q2(I)| times). When Q1 is
// done, the remaining Q2 answers are drained. Every answer is printed
// exactly once.
type AlgorithmOne struct {
	q1      Iterator
	q2      Testable
	q1Done  bool
	skipped int
}

// NewAlgorithmOne builds the union iterator. q2 must support the
// constant-time membership test over the same positional answer tuples q1
// produces.
func NewAlgorithmOne(q1 Iterator, q2 Testable) *AlgorithmOne {
	return &AlgorithmOne{q1: q1, q2: q2}
}

// Next implements Iterator.
func (a *AlgorithmOne) Next() (database.Tuple, bool) {
	for !a.q1Done {
		t, ok := a.q1.Next()
		if !ok {
			a.q1Done = true
			break
		}
		if !a.q2.Contains(t) {
			return t, true
		}
		// t will be produced by q2 eventually; print q2's next answer now.
		if u, ok2 := a.q2.Next(); ok2 {
			return u, true
		}
		// Defensive: by the Theorem 4 argument q2 cannot be exhausted here;
		// if it is (mismatched Contains), just skip t — it was already
		// printed as part of q2's stream.
		a.skipped++
	}
	return a.q2.Next()
}

// UnionAll enumerates the union of several iterators with global
// deduplication via the Cheater's Lemma combinator. The duplication bound
// is the number of branches: each answer appears at most once per branch.
func UnionAll(its ...Iterator) Iterator {
	if len(its) == 1 {
		return NewCheater(its[0], 1)
	}
	return NewCheater(NewChain(its...), len(its))
}

// Collect drains an iterator into a slice (cloning is the iterator's
// responsibility; Cheater clones, plan adapters produce fresh tuples).
func Collect(it Iterator) []database.Tuple {
	var out []database.Tuple
	for {
		t, ok := it.Next()
		if !ok {
			return out
		}
		out = append(out, t)
	}
}

// DelayStats summarises the wall-clock timing of one enumeration run.
type DelayStats struct {
	// Preprocessing is the time from Start to the first answer (or to
	// exhaustion for empty results).
	Preprocessing time.Duration
	// Count is the number of answers.
	Count int
	// MaxDelay and MeanDelay describe inter-answer gaps (excluding
	// preprocessing); P50, P95 and P99 are delay percentiles.
	MaxDelay  time.Duration
	MeanDelay time.Duration
	P50       time.Duration
	P95       time.Duration
	P99       time.Duration
	// Total is the full wall-clock time of the run.
	Total time.Duration
}

// MeasureDelays drains the iterator produced by build, timing the
// preprocessing (construction + first answer) and each inter-answer delay.
func MeasureDelays(build func() Iterator) DelayStats {
	var st DelayStats
	start := time.Now()
	it := build()
	prev := time.Now()
	first := true
	var sum time.Duration
	var delays []time.Duration
	for {
		_, ok := it.Next()
		now := time.Now()
		if !ok {
			if first {
				st.Preprocessing = now.Sub(start)
			}
			st.Total = now.Sub(start)
			break
		}
		if first {
			st.Preprocessing = now.Sub(start)
			first = false
		} else {
			d := now.Sub(prev)
			sum += d
			delays = append(delays, d)
			if d > st.MaxDelay {
				st.MaxDelay = d
			}
		}
		st.Count++
		prev = now
	}
	if len(delays) > 0 {
		st.MeanDelay = sum / time.Duration(len(delays))
		sort.Slice(delays, func(i, j int) bool { return delays[i] < delays[j] })
		st.P50 = delays[len(delays)*50/100]
		st.P95 = delays[len(delays)*95/100]
		st.P99 = delays[len(delays)*99/100]
	}
	return st
}
