// Package enumeration provides the enumeration-algorithm toolkit of the
// paper's upper-bound proofs: the answer-stream Iterator abstraction, the
// Cheater's Lemma combinator (Lemma 5), Algorithm 1 for unions of two
// tractable CQs (Theorem 4), generic concatenation, and wall-clock delay
// instrumentation used by the experiment harness.
package enumeration

import (
	"iter"
	"sort"
	"time"

	"repro/internal/database"
)

// Iterator is a stream of answer tuples. Next returns the next tuple and
// true, or nil and false once exhausted. Iterators are single-use and not
// safe for concurrent use.
type Iterator interface {
	Next() (database.Tuple, bool)
}

// Testable is an iterator whose underlying answer set supports a
// constant-time membership test (free-connex CQ plans do, after their
// linear preprocessing).
type Testable interface {
	Iterator
	Contains(database.Tuple) bool
}

// SliceIterator yields a fixed slice of tuples.
type SliceIterator struct {
	tuples []database.Tuple
	pos    int
}

// NewSliceIterator builds an iterator over the given tuples (not copied).
func NewSliceIterator(tuples []database.Tuple) *SliceIterator {
	return &SliceIterator{tuples: tuples}
}

// Next implements Iterator.
func (s *SliceIterator) Next() (database.Tuple, bool) {
	if s.pos >= len(s.tuples) {
		return nil, false
	}
	t := s.tuples[s.pos]
	s.pos++
	return t, true
}

// NextBatch implements BatchIterator.
func (s *SliceIterator) NextBatch(buf []database.Value, max int) ([]database.Value, int) {
	n := 0
	for n < max && s.pos < len(s.tuples) {
		buf = append(buf, s.tuples[s.pos]...)
		s.pos++
		n++
	}
	return buf, n
}

// Closer is an iterator holding releasable resources (worker goroutines,
// typically). CloseIterator releases any iterator; wrapper iterators
// (Chain, Cheater, AlgorithmOne) forward Close to their members so a
// parallel stream nested inside a combinator is still released when the
// outermost iterator is closed.
type Closer interface {
	Close()
}

// CloseIterator releases the resources behind an iterator, if any: it is
// safe to call on any iterator, and a no-op on those without background
// workers.
func CloseIterator(it Iterator) {
	if c, ok := it.(Closer); ok {
		c.Close()
	}
}

// IterErr reports the error that terminated an iterator early, if any —
// today that is disk trouble on ParallelUnion's spilled dedup path. Check
// it after Next reports exhaustion: a non-nil error means the stream was
// truncated, not completed. Iterators without an error channel report nil.
func IterErr(it Iterator) error {
	if e, ok := it.(interface{ Err() error }); ok {
		return e.Err()
	}
	return nil
}

// Func adapts a function to the Iterator interface.
type Func func() (database.Tuple, bool)

// Next implements Iterator.
func (f Func) Next() (database.Tuple, bool) { return f() }

// Chain concatenates iterators.
type Chain struct {
	its []Iterator
	pos int
}

// NewChain builds the concatenation of the given iterators.
func NewChain(its ...Iterator) *Chain { return &Chain{its: its} }

// Next implements Iterator.
func (c *Chain) Next() (database.Tuple, bool) {
	for c.pos < len(c.its) {
		if t, ok := c.its[c.pos].Next(); ok {
			return t, true
		}
		c.pos++
	}
	return nil, false
}

// NextBatch implements BatchIterator by delegating to the member iterators'
// batched fast paths, spilling into the next member as each one drains. A
// member is only abandoned once it appends zero answers — the contract's
// exhaustion signal — so members that legally return short batches keep
// getting polled.
func (c *Chain) NextBatch(buf []database.Value, max int) ([]database.Value, int) {
	total := 0
	for c.pos < len(c.its) && total < max {
		var n int
		buf, n = NextBatch(c.its[c.pos], buf, max-total)
		total += n
		if n == 0 {
			c.pos++
		}
	}
	return buf, total
}

// Close releases every member iterator, including the ones not yet
// reached: abandoning a chain must not leak the workers of a parallel
// member scheduled after the abandonment point.
func (c *Chain) Close() {
	for _, it := range c.its {
		CloseIterator(it)
	}
}

// BatchIterator is an Iterator with a batched fast path, letting consumers
// amortize per-answer overhead (virtual dispatch, channel synchronization
// in the parallel union) over whole batches.
type BatchIterator interface {
	Iterator

	// NextBatch appends the values of up to max answers to buf — flat, one
	// answer's values after another — and returns the extended buffer and
	// the number of answers appended. Appending zero answers means the
	// stream is exhausted.
	NextBatch(buf []database.Value, max int) ([]database.Value, int)
}

// NextBatch pulls up to max answers from it into buf, using the iterator's
// batched fast path when it has one and falling back to Next otherwise. The
// fallback copies tuple values into buf, so the batch owns its data even
// when the iterator reuses an internal tuple buffer.
func NextBatch(it Iterator, buf []database.Value, max int) ([]database.Value, int) {
	if bi, ok := it.(BatchIterator); ok {
		return bi.NextBatch(buf, max)
	}
	n := 0
	for n < max {
		t, ok := it.Next()
		if !ok {
			break
		}
		buf = append(buf, t...)
		n++
	}
	return buf, n
}

// Cheater is the Cheater's Lemma combinator (Lemma 5). It wraps an inner
// iterator that may produce every result up to m times and stall (delay
// linearly) a bounded number of times, and turns it into a duplicate-free
// stream: a lookup table filters repeats and a FIFO queue buffers fresh
// results, pulling up to m inner results per emitted answer. With the
// lemma's preconditions (inner duplication ≤ m, constantly many stalls) the
// emitted stream has linear preprocessing and constant delay.
//
// Deduplication runs over a TupleSet: each inner result costs one hash
// probe, and fresh results are handed out as stable arena views instead of
// per-answer clones.
type Cheater struct {
	inner Iterator
	m     int
	seen  *database.TupleSet
	queue []database.Tuple
	head  int
	// Stats.
	pulled     int
	duplicates int
}

// NewCheater wraps inner with duplication bound m (m ≥ 1). Use the number
// of CQs plus virtual atoms per CQ for Theorem 12 pipelines.
func NewCheater(inner Iterator, m int) *Cheater {
	if m < 1 {
		m = 1
	}
	return &Cheater{inner: inner, m: m, seen: database.NewTupleSet(0)}
}

// Next implements Iterator: duplicate-free, order of first occurrence.
func (c *Cheater) Next() (database.Tuple, bool) {
	// Pull up to m inner results, enqueueing fresh ones.
	for i := 0; i < c.m; i++ {
		t, ok := c.inner.Next()
		if !ok {
			break
		}
		c.pulled++
		stored, fresh := c.seen.InsertGet(t)
		if !fresh {
			c.duplicates++
			continue
		}
		c.queue = append(c.queue, stored)
	}
	if c.head < len(c.queue) {
		t := c.queue[c.head]
		c.pop()
		return t, true
	}
	// The queue drained faster than the inner stream produced fresh
	// results; keep pulling until a fresh one arrives or the inner stream
	// ends. Under the lemma's preconditions this loop runs at most m times.
	for {
		t, ok := c.inner.Next()
		if !ok {
			return nil, false
		}
		c.pulled++
		stored, fresh := c.seen.InsertGet(t)
		if !fresh {
			c.duplicates++
			continue
		}
		return stored, true
	}
}

// pop consumes the queue head, releasing the slot so the queue retains
// O(pending) tuple references rather than every answer ever emitted: the
// consumed slot is nilled immediately, a fully drained queue resets to
// length zero, and a mostly-consumed one compacts its tail to the front.
func (c *Cheater) pop() {
	c.queue[c.head] = nil
	c.head++
	switch {
	case c.head == len(c.queue):
		c.queue = c.queue[:0]
		c.head = 0
	case c.head >= 64 && c.head*2 >= len(c.queue):
		n := copy(c.queue, c.queue[c.head:])
		for i := n; i < len(c.queue); i++ {
			c.queue[i] = nil
		}
		c.queue = c.queue[:n]
		c.head = 0
	}
}

// Close releases the inner iterator's resources.
func (c *Cheater) Close() { CloseIterator(c.inner) }

// Pending returns the number of buffered fresh results not yet emitted.
func (c *Cheater) Pending() int { return len(c.queue) - c.head }

// Duplicates returns the number of inner results suppressed so far.
func (c *Cheater) Duplicates() int { return c.duplicates }

// Pulled returns the number of inner results consumed so far.
func (c *Cheater) Pulled() int { return c.pulled }

// AlgorithmOne is the paper's Algorithm 1: enumerate Q1 ∪ Q2 for two
// tractable CQs using only constant working memory. While Q1 produces
// answers, an answer outside Q2(I) is printed directly; an answer inside
// Q2(I) is "paid for" by printing the next Q2 answer instead (which always
// exists: the branch is taken exactly |Q1(I) ∩ Q2(I)| times). When Q1 is
// done, the remaining Q2 answers are drained. Every answer is printed
// exactly once.
type AlgorithmOne struct {
	q1      Iterator
	q2      Testable
	q1Done  bool
	skipped int
}

// NewAlgorithmOne builds the union iterator. q2 must support the
// constant-time membership test over the same positional answer tuples q1
// produces.
func NewAlgorithmOne(q1 Iterator, q2 Testable) *AlgorithmOne {
	return &AlgorithmOne{q1: q1, q2: q2}
}

// Next implements Iterator.
func (a *AlgorithmOne) Next() (database.Tuple, bool) {
	for !a.q1Done {
		t, ok := a.q1.Next()
		if !ok {
			a.q1Done = true
			break
		}
		if !a.q2.Contains(t) {
			return t, true
		}
		// t will be produced by q2 eventually; print q2's next answer now.
		if u, ok2 := a.q2.Next(); ok2 {
			return u, true
		}
		// Defensive: by the Theorem 4 argument q2 cannot be exhausted here;
		// if it is (mismatched Contains), just skip t — it was already
		// printed as part of q2's stream.
		a.skipped++
	}
	return a.q2.Next()
}

// Close releases both underlying iterators' resources.
func (a *AlgorithmOne) Close() {
	CloseIterator(a.q1)
	CloseIterator(a.q2)
}

// Skipped returns how often the defensive branch fired: Q1 answers that
// Contains claimed were in Q2(I) while Q2's stream was already exhausted.
// Under a correct Testable this stays 0; a non-zero value flags a
// mismatched membership test silently dropping answers.
func (a *AlgorithmOne) Skipped() int { return a.skipped }

// UnionAll enumerates the union of several iterators with global
// deduplication via the Cheater's Lemma combinator. The duplication bound
// is the number of branches: each answer appears at most once per branch.
func UnionAll(its ...Iterator) Iterator {
	if len(its) == 1 {
		return NewCheater(its[0], 1)
	}
	return NewCheater(NewChain(its...), len(its))
}

// Seq adapts an iterator to a Go range-over-func sequence, so callers can
// write `for t := range enumeration.Seq(it)` instead of hand-rolling the
// Next loop. The iterator is released (CloseIterator) when the sequence
// ends — by exhaustion or by an early break — so abandoning a parallel
// stream mid-range does not leak its executor workers. Like the iterator
// it wraps, the sequence is single-use.
func Seq(it Iterator) iter.Seq[database.Tuple] {
	return func(yield func(database.Tuple) bool) {
		defer CloseIterator(it)
		for {
			t, ok := it.Next()
			if !ok {
				return
			}
			if !yield(t) {
				return
			}
		}
	}
}

// Collect drains an iterator into a slice. Ownership follows the iterator:
// Cheater and ParallelUnion return stable arena views owned by their dedup
// set — valid indefinitely but not to be mutated — and plan adapters
// produce fresh tuples.
func Collect(it Iterator) []database.Tuple {
	var out []database.Tuple
	for {
		t, ok := it.Next()
		if !ok {
			return out
		}
		out = append(out, t)
	}
}

// DelayStats summarises the wall-clock timing of one enumeration run.
type DelayStats struct {
	// Preprocessing is the time from Start to the first answer (or to
	// exhaustion for empty results).
	Preprocessing time.Duration
	// Count is the number of answers.
	Count int
	// MaxDelay and MeanDelay describe inter-answer gaps (excluding
	// preprocessing); P50, P95 and P99 are delay percentiles.
	MaxDelay  time.Duration
	MeanDelay time.Duration
	P50       time.Duration
	P95       time.Duration
	P99       time.Duration
	// Total is the full wall-clock time of the run.
	Total time.Duration
}

// MeasureDelays drains the iterator produced by build, timing the
// preprocessing (construction + first answer) and each inter-answer delay.
func MeasureDelays(build func() Iterator) DelayStats {
	var st DelayStats
	start := time.Now()
	it := build()
	prev := time.Now()
	first := true
	var sum time.Duration
	var delays []time.Duration
	for {
		_, ok := it.Next()
		now := time.Now()
		if !ok {
			if first {
				st.Preprocessing = now.Sub(start)
			}
			st.Total = now.Sub(start)
			break
		}
		if first {
			st.Preprocessing = now.Sub(start)
			first = false
		} else {
			d := now.Sub(prev)
			sum += d
			delays = append(delays, d)
			if d > st.MaxDelay {
				st.MaxDelay = d
			}
		}
		st.Count++
		prev = now
	}
	if len(delays) > 0 {
		st.MeanDelay = sum / time.Duration(len(delays))
		sort.Slice(delays, func(i, j int) bool { return delays[i] < delays[j] })
		st.P50 = delays[len(delays)*50/100]
		st.P95 = delays[len(delays)*95/100]
		st.P99 = delays[len(delays)*99/100]
	}
	return st
}
