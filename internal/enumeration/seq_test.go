package enumeration

import (
	"testing"

	"repro/internal/database"
)

// closableSlice is a slice iterator recording whether Close was called.
type closableSlice struct {
	*SliceIterator
	closed bool
}

func (c *closableSlice) Close() { c.closed = true }

func tuples(n int) []database.Tuple {
	out := make([]database.Tuple, n)
	for i := range out {
		out[i] = database.Tuple{database.V(int64(i))}
	}
	return out
}

func TestSeqDrainsAndCloses(t *testing.T) {
	it := &closableSlice{SliceIterator: NewSliceIterator(tuples(5))}
	got := 0
	for tup := range Seq(it) {
		if tup[0].Payload() != int64(got) {
			t.Fatalf("tuple %d = %v", got, tup)
		}
		got++
	}
	if got != 5 {
		t.Errorf("ranged over %d tuples, want 5", got)
	}
	if !it.closed {
		t.Error("exhausted sequence did not close its iterator")
	}
}

func TestSeqEarlyBreakCloses(t *testing.T) {
	it := &closableSlice{SliceIterator: NewSliceIterator(tuples(100))}
	got := 0
	for range Seq(it) {
		got++
		if got == 3 {
			break
		}
	}
	if got != 3 {
		t.Errorf("ranged over %d tuples, want 3", got)
	}
	if !it.closed {
		t.Error("early break did not close the iterator — a parallel stream would leak its workers")
	}
}
