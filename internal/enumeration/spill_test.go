package enumeration

import (
	"os"
	"path/filepath"
	"sort"
	"testing"

	"repro/internal/database"
)

// TestParallelUnionSpill drives the merge past its in-memory dedup budget
// with overlapping branches and checks the spilled run yields exactly the
// deduplicated answer set — including tuples handed out before the
// migration, which are arena views that must survive it.
func TestParallelUnionSpill(t *testing.T) {
	its := []Iterator{
		NewSliceIterator(mkTuples(0, 900)),
		NewSliceIterator(mkTuples(300, 900)), // overlaps both neighbours
		NewSliceIterator(mkTuples(600, 900)),
	}
	u := NewParallelUnionOpts(1, UnionOptions{
		BatchSize:   32,
		SpillBudget: 64,
		SpillDir:    t.TempDir(),
	}, its...)
	var got []database.Tuple
	for {
		tup, ok := u.Next()
		if !ok {
			break
		}
		got = append(got, tup)
	}
	if err := u.Err(); err != nil {
		t.Fatal(err)
	}
	if !u.Spilled() {
		t.Fatal("2700 pulled answers against a budget of 64 never spilled")
	}
	if len(got) != 1500 {
		t.Fatalf("spilled union yielded %d answers, want 1500 distinct", len(got))
	}
	if u.Duplicates() != 1200 {
		t.Fatalf("suppressed %d duplicates, want 1200", u.Duplicates())
	}
	vals := make([]int, len(got))
	for i, tup := range got {
		vals[i] = int(tup[0].Payload())
	}
	sort.Ints(vals)
	for i, v := range vals {
		if v != i {
			t.Fatalf("answer set corrupted: sorted[%d] = %d (pre-migration view invalidated?)", i, v)
		}
	}
}

// TestParallelUnionSpillError pins the failure contract: when the spill
// migration cannot happen (here the spill dir's parent is a regular file,
// so it can never be created), the stream must end early with Err() set —
// never report a clean exhaustion over a truncated answer set.
func TestParallelUnionSpillError(t *testing.T) {
	occupied := filepath.Join(t.TempDir(), "occupied")
	if err := os.WriteFile(occupied, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	u := NewParallelUnionOpts(1, UnionOptions{
		BatchSize:   8,
		SpillBudget: 4,
		SpillDir:    filepath.Join(occupied, "spill"),
	}, NewSliceIterator(mkTuples(0, 100)))
	n := 0
	for {
		if _, ok := u.Next(); !ok {
			break
		}
		n++
	}
	if err := u.Err(); err == nil {
		t.Fatalf("drained %d answers with an impossible spill dir, want Err() set", n)
	}
	if n >= 100 {
		t.Fatalf("stream yielded all %d answers despite the failed spill", n)
	}
	// Next after the poisoned close keeps reporting exhaustion.
	if _, ok := u.Next(); ok {
		t.Fatal("Next returned an answer after the spill failure closed the union")
	}
}

// TestParallelUnionSpillMatchesInMemory pins the acceptance property: the
// same branches drained with and without a budget produce identical sets.
func TestParallelUnionSpillMatchesInMemory(t *testing.T) {
	drain := func(opts UnionOptions) map[string]bool {
		its := []Iterator{
			NewSliceIterator(mkTuples(0, 400)),
			NewSliceIterator(mkTuples(100, 400)),
		}
		u := NewParallelUnionOpts(1, opts, its...)
		set := make(map[string]bool)
		for {
			tup, ok := u.Next()
			if !ok {
				break
			}
			if set[tup.String()] {
				t.Fatalf("duplicate answer %s", tup)
			}
			set[tup.String()] = true
		}
		if err := u.Err(); err != nil {
			t.Fatal(err)
		}
		return set
	}
	mem := drain(UnionOptions{BatchSize: 16})
	spilled := drain(UnionOptions{BatchSize: 16, SpillBudget: 10, SpillDir: t.TempDir()})
	if len(mem) != len(spilled) {
		t.Fatalf("in-memory set has %d answers, spilled %d", len(mem), len(spilled))
	}
	for k := range mem {
		if !spilled[k] {
			t.Fatalf("answer %s missing from the spilled set", k)
		}
	}
}
