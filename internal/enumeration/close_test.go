package enumeration

import (
	"runtime"
	"testing"
	"time"

	"repro/internal/database"
)

// slowInfinite yields an endless stream so the wrapped ParallelUnion's
// workers only exit when released.
type slowInfinite struct{ i int64 }

func (s *slowInfinite) Next() (database.Tuple, bool) {
	s.i++
	return database.Tuple{database.V(s.i)}, true
}

// TestCloseForwardsThroughWrappers pins the wrapper contract: closing the
// outermost iterator of a Chain / Cheater / AlgorithmOne stack releases a
// parallel union nested anywhere inside it. Before Close forwarding,
// CloseAnswers only saw the outermost Close and the nested workers leaked.
func TestCloseForwardsThroughWrappers(t *testing.T) {
	baseline := runtime.NumGoroutine()

	builds := []struct {
		name string
		make func(inner Iterator) Iterator
	}{
		{"chain", func(inner Iterator) Iterator {
			return NewChain(NewSliceIterator(nil), inner)
		}},
		{"cheater", func(inner Iterator) Iterator {
			return NewCheater(inner, 2)
		}},
		{"cheater-of-chain", func(inner Iterator) Iterator {
			return NewCheater(NewChain(inner, NewSliceIterator(nil)), 2)
		}},
		{"algorithm-one", func(inner Iterator) Iterator {
			return NewAlgorithmOne(inner, nopTestable{})
		}},
	}
	for _, b := range builds {
		inner := NewParallelUnion(1, 4, &slowInfinite{})
		it := b.make(inner)
		if _, ok := it.Next(); !ok {
			t.Fatalf("%s: no first answer", b.name)
		}
		CloseIterator(it)
		if _, ok := inner.Next(); ok {
			t.Errorf("%s: nested union still live after outer Close", b.name)
		}
	}

	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline+2 {
		if time.Now().After(deadline) {
			t.Fatalf("nested workers leaked: %d goroutines vs %d at baseline",
				runtime.NumGoroutine(), baseline)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// nopTestable is an empty Q2 stream for the AlgorithmOne wrapper.
type nopTestable struct{}

func (nopTestable) Next() (database.Tuple, bool) { return nil, false }
func (nopTestable) Contains(database.Tuple) bool { return false }
