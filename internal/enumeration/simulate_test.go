package enumeration

import (
	"testing"

	"repro/internal/database"
)

func mkTuple(i int) database.Tuple {
	return database.Tuple{database.V(int64(i))}
}

func TestSimulateRaw(t *testing.T) {
	events := []Event{
		{Steps: 1, Result: mkTuple(0)},
		{Steps: 100}, // stall
		{Steps: 1, Result: mkTuple(1)},
	}
	s := SimulateRaw(events)
	if len(s) != 2 {
		t.Fatalf("schedule = %v", s)
	}
	if s.MaxDelay() != 101 {
		t.Errorf("max delay = %d, want 101", s.MaxDelay())
	}
}

func TestSimulateCheaterSmoothsStalls(t *testing.T) {
	// 60 distinct results, duplicated twice, 3 stalls of 40 steps.
	events := BurstyEvents(60, 2, 3, 40, mkTuple)
	raw := SimulateRaw(events)
	if raw.MaxDelay() <= 40 {
		t.Fatalf("raw schedule has no stall: max delay %d", raw.MaxDelay())
	}
	// Lemma 5 parameters: n=3 stalls of p=42 (a stall plus the surrounding
	// unit steps), delay bound d=2·dup steps otherwise, duplication m=2.
	wrapped := SimulateCheater(events, 3, 42, 4, 2)
	if len(wrapped) != 60 {
		t.Fatalf("wrapped schedule has %d emissions, want 60", len(wrapped))
	}
	// After the preprocessing prefix, gaps never exceed m·d.
	interval := 2 * 4
	for i := 1; i < len(wrapped); i++ {
		if d := wrapped[i] - wrapped[i-1]; d > interval {
			t.Errorf("gap %d at position %d exceeds m·d = %d", d, i, interval)
		}
	}
	if wrapped.MaxDelay() > 3*42+interval {
		t.Errorf("first emission later than n·p + m·d: %d", wrapped.MaxDelay())
	}
}

func TestSimulateCheaterNoDuplicates(t *testing.T) {
	events := []Event{
		{Steps: 1, Result: mkTuple(1)},
		{Steps: 1, Result: mkTuple(1)},
		{Steps: 1, Result: mkTuple(2)},
		{Steps: 1, Result: mkTuple(1)},
	}
	s := SimulateCheater(events, 0, 0, 1, 3)
	if len(s) != 2 {
		t.Errorf("emissions = %d, want 2 (deduplicated)", len(s))
	}
}

func TestSimulateCheaterDrainsQueue(t *testing.T) {
	// All results arrive instantly; the wrapper must still emit them all
	// at its cadence.
	var events []Event
	for i := 0; i < 10; i++ {
		events = append(events, Event{Steps: 1, Result: mkTuple(i)})
	}
	s := SimulateCheater(events, 1, 5, 2, 1)
	if len(s) != 10 {
		t.Fatalf("emissions = %d, want 10", len(s))
	}
	for i := 1; i < len(s); i++ {
		if s[i] <= s[i-1] {
			t.Errorf("non-increasing schedule at %d: %v", i, s)
		}
	}
}

func TestBurstyEventsShape(t *testing.T) {
	events := BurstyEvents(10, 3, 2, 50, mkTuple)
	results := 0
	stalls := 0
	for _, e := range events {
		if e.Result != nil {
			results++
		} else if e.Steps == 50 {
			stalls++
		}
	}
	if results != 30 {
		t.Errorf("result events = %d, want 30", results)
	}
	if stalls != 2 {
		t.Errorf("stalls = %d, want 2", stalls)
	}
}
