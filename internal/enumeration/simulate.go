package enumeration

import (
	"repro/internal/database"
)

// Event is one unit of work performed by a simulated enumeration
// algorithm: Steps computation steps followed by the optional emission of
// Result. A stall is an event with large Steps and no Result.
type Event struct {
	Steps  int
	Result database.Tuple
}

// Schedule records, for each emitted answer, the global step time of its
// emission.
type Schedule []int

// MaxDelay returns the largest gap between consecutive emissions (and the
// time to the first emission).
func (s Schedule) MaxDelay() int {
	maxd := 0
	prev := 0
	for _, t := range s {
		if d := t - prev; d > maxd {
			maxd = d
		}
		prev = t
	}
	return maxd
}

// SimulateRaw replays the events directly: each result is emitted the
// moment its event completes. The schedule's maximum delay exposes the
// stalls of the raw algorithm.
func SimulateRaw(events []Event) Schedule {
	var out Schedule
	now := 0
	for _, e := range events {
		now += e.Steps
		if e.Result != nil {
			out = append(out, now)
		}
	}
	return out
}

// SimulateCheater replays the events through the construction in the proof
// of the Cheater's Lemma (Lemma 5): the wrapper simulates the inner
// algorithm step by step, enqueues fresh results (filtering duplicates via
// a lookup table), spends the first n·p steps silently, and thereafter
// emits one queued result every m·d steps, draining the queue at the end.
//
// Under the lemma's preconditions — at most n delays exceeding d (each at
// most p) and every result duplicated at most m times — the queue is never
// empty when an emission is due, so the output schedule has preprocessing
// n·p + m·d and maximum delay m·d.
func SimulateCheater(events []Event, n, p, d, m int) Schedule {
	seen := database.NewTupleSet(0)
	pending := 0
	var out Schedule

	preprocessing := n * p
	interval := m * d
	now := 0
	nextEmit := preprocessing + interval

	emitDue := func() {
		for pending > 0 && now >= nextEmit {
			pending--
			out = append(out, nextEmit)
			nextEmit += interval
		}
	}

	for _, e := range events {
		// Advance through the event's computation steps, emitting queued
		// results at every due instant that passes.
		target := now + e.Steps
		for now < target {
			step := target - now
			if pending > 0 && nextEmit-now < step {
				step = nextEmit - now
			}
			now += step
			emitDue()
		}
		if e.Result != nil {
			if seen.Insert(e.Result) {
				pending++
			}
			emitDue()
		}
	}
	// Drain the queue: the inner algorithm has terminated; remaining
	// results are emitted at the regular cadence.
	for pending > 0 {
		if now < nextEmit {
			now = nextEmit
		}
		pending--
		out = append(out, now)
		nextEmit = now + interval
	}
	return out
}

// BurstyEvents builds a synthetic inner algorithm for the Lemma 5
// demonstration: `results` distinct answers, each emitted `dup` times at
// unit delay, with `stalls` stalls of `stallLen` steps inserted evenly.
func BurstyEvents(results, dup, stalls, stallLen int, mk func(i int) database.Tuple) []Event {
	var events []Event
	every := results / (stalls + 1)
	if every == 0 {
		every = 1
	}
	for i := 0; i < results; i++ {
		if stalls > 0 && i > 0 && i%every == 0 {
			events = append(events, Event{Steps: stallLen})
			stalls--
		}
		for d := 0; d < dup; d++ {
			events = append(events, Event{Steps: 1, Result: mk(i)})
		}
	}
	return events
}
