package paper

import "testing"

func TestGalleryParsesAndIsWellFormed(t *testing.T) {
	gallery := Gallery()
	if len(gallery) < 12 {
		t.Fatalf("gallery has %d entries", len(gallery))
	}
	names := make(map[string]bool)
	for _, ex := range gallery {
		if names[ex.Name] {
			t.Errorf("duplicate name %s", ex.Name)
		}
		names[ex.Name] = true
		u := ex.Query() // panics on malformed sources
		if err := u.Validate(); err != nil {
			t.Errorf("%s: %v", ex.Name, err)
		}
		switch ex.Verdict {
		case "tractable", "intractable", "unknown":
		default:
			t.Errorf("%s: bad verdict %q", ex.Name, ex.Verdict)
		}
		if ex.Verdict == "intractable" && len(ex.Hypotheses) == 0 {
			t.Errorf("%s: intractable without hypotheses", ex.Name)
		}
		if ex.Coverage.String() == "?" {
			t.Errorf("%s: bad coverage", ex.Name)
		}
		if ex.Ref == "" || ex.Notes == "" {
			t.Errorf("%s: missing ref or notes", ex.Name)
		}
	}
}

func TestByName(t *testing.T) {
	ex, ok := ByName("example2")
	if !ok || ex.Verdict != "tractable" {
		t.Errorf("ByName(example2) = %+v, %v", ex, ok)
	}
	if _, ok := ByName("nope"); ok {
		t.Errorf("ByName(nope) succeeded")
	}
}
