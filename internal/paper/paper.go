// Package paper catalogues every worked example of Carmeli & Kröll (PODS'19)
// together with the verdict the paper assigns to it. The catalogue drives
// the classification-table reproduction (experiment E9) and the example
// binaries.
package paper

import "repro/internal/cq"

// Coverage states how the paper establishes an example's verdict.
type Coverage int

const (
	// GeneralTheorem: the verdict follows from the paper's general results
	// (Theorems 3, 4, 12, 17, 19, 29, 33, 35; Lemmas 14, 15). The
	// classifier must reproduce it exactly.
	GeneralTheorem Coverage = iota
	// AdHoc: the paper proves the verdict with an example-specific
	// reduction outside its general theorems. The classifier reports
	// Unknown; the experiment harness demonstrates the reduction instead.
	AdHoc
	// Open: the paper states the complexity is unknown. The classifier
	// must report Unknown.
	Open
)

// String renders the coverage kind.
func (c Coverage) String() string {
	switch c {
	case GeneralTheorem:
		return "general theorem"
	case AdHoc:
		return "ad-hoc reduction"
	case Open:
		return "open"
	}
	return "?"
}

// Example is one worked example from the paper.
type Example struct {
	// Name is a short identifier; Ref cites the paper.
	Name string
	Ref  string
	// Source is the UCQ in concrete syntax.
	Source string
	// Tractable is the paper's verdict ("tractable", "intractable",
	// "unknown").
	Verdict string
	// Hypotheses lists the lower-bound assumptions for intractable
	// verdicts.
	Hypotheses []string
	// Coverage states how the paper proves the verdict.
	Coverage Coverage
	// Notes adds context.
	Notes string
}

// Query parses the example's UCQ.
func (e Example) Query() *cq.UCQ { return cq.MustParse(e.Source) }

// Gallery returns every classified example of the paper, in order of
// appearance.
func Gallery() []Example {
	return []Example{
		{
			Name: "example1", Ref: "Example 1",
			Source: `
				Q1(x,y) <- R1(x,y), R2(y,z), R3(z,x).
				Q2(x,y) <- R1(x,y), R2(y,z).
			`,
			Verdict:  "tractable",
			Coverage: GeneralTheorem,
			Notes:    "Q1 ⊆ Q2 is redundant; the union is equivalent to the free-connex Q2.",
		},
		{
			Name: "example2", Ref: "Example 2 / Theorem 12",
			Source: `
				Q1(x,y,w) <- R1(x,z), R2(z,y), R3(y,w).
				Q2(x,y,w) <- R1(x,y), R2(y,w).
			`,
			Verdict:  "tractable",
			Coverage: GeneralTheorem,
			Notes:    "Q1 is intractable alone; Q2 provides {x,z,y}, yielding a free-connex union extension (Figure 2).",
		},
		{
			Name: "example9", Ref: "Example 9 / Lemma 14",
			Source: `
				Q1(x,y,w) <- R1(x,z), R2(z,y), R3(y,w).
				Q2(x,y,w) <- R1(x,y), R2(y,w), R4(y).
			`,
			Verdict:    "intractable",
			Hypotheses: []string{"mat-mul"},
			Coverage:   GeneralTheorem,
			Notes:      "R4 blocks every body-homomorphism into Q1, so Lemma 14 reduces Enum⟨Q1⟩ to the union.",
		},
		{
			Name: "example13", Ref: "Example 13",
			Source: `
				Q1(x,y,v,u) <- R1(x,z1), R2(z1,z2), R3(z2,z3), R4(z3,y), R5(y,v,u).
				Q2(x,y,v,u) <- R1(x,y), R2(y,v), R3(v,z1), R4(z1,u), R5(u,t1,t2).
				Q3(x,y,v,u) <- R1(x,z1), R2(z1,y), R3(y,v), R4(v,u), R5(u,t1,t2).
			`,
			Verdict:  "tractable",
			Coverage: GeneralTheorem,
			Notes:    "All three CQs are intractable alone; recursive union extensions certify the union.",
		},
		{
			Name: "example18", Ref: "Example 18 / Theorem 17",
			Source: `
				Q1(x,y) <- R1(x,y), R2(y,u), R3(x,u).
				Q2(x,y) <- R1(y,v), R2(v,x), R3(y,x).
				Q3(x,y) <- R1(x,z), R2(y,z).
			`,
			Verdict:    "intractable",
			Hypotheses: []string{"hyperclique"},
			Coverage:   GeneralTheorem,
			Notes:      "All CQs intractable, no body-isomorphic acyclic pair; triangle detection embeds into the union.",
		},
		{
			Name: "example20", Ref: "Example 20 / Lemma 25",
			Source: `
				Q1(x,y,v) <- R1(x,z), R2(z,y), R3(y,v), R4(v,w).
				Q2(x,y,v) <- R1(w,v), R2(v,y), R3(y,z), R4(z,x).
			`,
			Verdict:    "intractable",
			Hypotheses: []string{"mat-mul"},
			Coverage:   GeneralTheorem,
			Notes:      "Body-isomorphic acyclic pair; Q1's free-path is not guarded, so matrix multiplication embeds.",
		},
		{
			Name: "example21", Ref: "Example 21 / Theorem 29",
			Source: `
				Q1(w,y,x,z) <- R1(w,v), R2(v,y), R3(y,z), R4(z,x).
				Q2(x,y,w,v) <- R1(w,v), R2(v,y), R3(y,z), R4(z,x).
			`,
			Verdict:  "tractable",
			Coverage: GeneralTheorem,
			Notes:    "Both CQs intractable alone but mutually guarded; union extensions exist in both directions.",
		},
		{
			Name: "example22", Ref: "Example 22 / Lemma 26",
			Source: `
				Q1(x,y,t) <- R1(x,w,t), R2(y,w,t).
				Q2(x,y,w) <- R1(x,w,t), R2(y,w,t).
			`,
			Verdict:    "intractable",
			Hypotheses: []string{"4-clique"},
			Coverage:   GeneralTheorem,
			Notes:      "Free-path guarded but not bypass guarded (t bypasses w); 4-clique detection embeds (Figure 3).",
		},
		{
			Name: "example30", Ref: "Example 30",
			Source: `
				Q1(x,y,w) <- R1(x,z), R2(z,y), R3(y,w).
				Q2(x,y,w) <- R1(x,t1), R2(t2,y), R3(w,t3).
			`,
			Verdict:  "unknown",
			Coverage: Open,
			Notes:    "Non-body-isomorphic pair with an unguarded free-path, yet the mat-mul encoding breaks; open.",
		},
		{
			Name: "example31", Ref: "Example 31 (k=4)",
			Source: `
				Q1(x1,x2,x3) <- R1(x1,z), R2(x2,z), R3(x3,z).
				Q2(x1,x2,z) <- R1(x1,z), R2(x2,z), R3(x3,z).
				Q3(x1,x3,z) <- R1(x1,z), R2(x2,z), R3(x3,z).
				Q4(x2,x3,z) <- R1(x1,z), R2(x2,z), R3(x3,z).
			`,
			Verdict:    "intractable",
			Hypotheses: []string{"4-clique"},
			Coverage:   AdHoc,
			Notes:      "Union guarded but free-paths share variables (not isolated); the paper encodes 4-clique directly. k ≥ 5 is open.",
		},
		{
			Name: "example36", Ref: "Example 36",
			Source: `
				Q1(x,y,z,w) <- R1(y,z,w,x), R2(t,y,w), R3(t,z,w), R4(t,y,z).
				Q2(x,y,z,w) <- R1(x,z,w,v), R2(y,x,w).
			`,
			Verdict:  "tractable",
			Coverage: GeneralTheorem,
			Notes:    "Q1 is cyclic; Q2 provides {t,y,z,w}, and the virtual atom resolves the cycle.",
		},
		{
			Name: "example37", Ref: "Example 37",
			Source: `
				Q1(x,y,v) <- R1(v,z,x), R2(y,v), R3(z,y).
				Q2(x,y,v) <- R1(y,v,z), R2(x,y).
			`,
			Verdict:    "intractable",
			Hypotheses: []string{"mat-mul"},
			Coverage:   AdHoc,
			Notes:      "Q2 guards the cycle but the free-path (x,z,y) of Q1 stays unguarded; the paper encodes matrix multiplication directly.",
		},
		{
			Name: "example38", Ref: "Example 38",
			Source: `
				Q1(x,z,y,v) <- R1(x,z,v), R2(z,y,v), R3(y,x,v).
				Q2(x,z,y,v) <- R1(x,z,v), R2(y,t1,v), R3(t2,x,v).
			`,
			Verdict:  "unknown",
			Coverage: Open,
			Notes:    "No free variable of Q2 maps onto y; neither the tractability nor the hardness machinery applies.",
		},
		{
			Name: "example39", Ref: "Example 39 (k=4)",
			Source: `
				Q1(x2,x3,x4) <- R1(x2,x3,x4), R2(x1,x3,x4), R3(x1,x2,x4).
				Q2(x2,x3,x4) <- R1(x2,x3,x1), R2(x4,x3,v).
			`,
			Verdict:    "intractable",
			Hypotheses: []string{"4-clique"},
			Coverage:   AdHoc,
			Notes:      "The provided atom removes the cycle but introduces a hyperclique; the paper encodes 4-clique directly. Higher orders are open.",
		},
	}
}

// ByName returns the example with the given name.
func ByName(name string) (Example, bool) {
	for _, e := range Gallery() {
		if e.Name == name {
			return e, true
		}
	}
	return Example{}, false
}
