package yannakakis

import (
	"fmt"
	"strings"

	"repro/internal/cq"
)

// Explain renders a human-readable description of the prepared plan: the
// elimination steps (with the Lemma 8 replay entries), the top nodes and
// their join-tree order, and the preprocessing counters. Intended for the
// CLI tools and for debugging; the format is stable enough for golden
// tests but not a machine interface.
func (p *Plan) Explain() string {
	var b strings.Builder
	fmt.Fprintf(&b, "plan for %s\n", p.Q)
	fmt.Fprintf(&b, "enumeration set S = {%s}\n", joinVars(p.SVars))

	b.WriteString("elimination log:\n")
	for _, e := range p.log {
		switch e.kind {
		case 'p':
			fmt.Fprintf(&b, "  project %s out of atom #%d (pre-relation %d rows, replay-indexed)\n",
				e.removedVar, e.node, e.pre.Len())
		case 'a':
			fmt.Fprintf(&b, "  absorb atom #%d into its subsumer (semijoin)\n", e.node)
		case 't':
			fmt.Fprintf(&b, "  atom #%d becomes a top node\n", e.node)
		}
	}

	b.WriteString("top join tree (DFS order):\n")
	for pos, i := range p.order {
		t := &p.tops[i]
		parent := "root"
		if t.parent >= 0 {
			parent = fmt.Sprintf("child of top %d", t.parent)
		}
		fmt.Fprintf(&b, "  [%d] top %d over {%s} (%d rows, %s)\n",
			pos, i, joinVars(t.vars), t.rel.Len(), parent)
	}

	st := p.Stats()
	fmt.Fprintf(&b, "stats: %d projections, %d absorptions, %d tops, %d input values\n",
		st.Projections, st.Absorptions, st.Tops, st.InputValues)
	return b.String()
}

func joinVars(vars []cq.Variable) string {
	parts := make([]string, len(vars))
	for i, v := range vars {
		parts[i] = string(v)
	}
	return strings.Join(parts, ",")
}
