package yannakakis

import (
	"math/rand"
	"testing"

	"repro/internal/baseline"
	"repro/internal/cq"
	"repro/internal/database"
)

// makeInstance builds an instance from name -> rows.
func makeInstance(rels map[string][][]int64) *database.Instance {
	inst := database.NewInstance()
	for name, rows := range rels {
		arity := 0
		if len(rows) > 0 {
			arity = len(rows[0])
		}
		r := database.NewRelation(name, arity)
		for _, row := range rows {
			r.AppendInts(row...)
		}
		inst.AddRelation(r)
	}
	return inst
}

// sameAnswers compares a plan's head materialisation with the baseline.
func sameAnswers(t *testing.T, q *cq.CQ, inst *database.Instance) {
	t.Helper()
	plan, err := Prepare(q, inst, nil)
	if err != nil {
		t.Fatalf("Prepare(%s): %v", q, err)
	}
	got := plan.MaterializeHead().SortedRows()
	wantRel, err := baseline.EvalCQ(q, inst)
	if err != nil {
		t.Fatalf("baseline: %v", err)
	}
	want := wantRel.SortedRows()
	if len(got) != len(want) {
		t.Fatalf("%s: got %d answers, want %d\ngot:  %v\nwant: %v", q, len(got), len(want), got, want)
	}
	for i := range want {
		if !got[i].Equal(want[i]) {
			t.Fatalf("%s: answer %d = %v, want %v", q, i, got[i], want[i])
		}
	}
}

func TestSimpleFreeConnex(t *testing.T) {
	q := cq.MustParseCQ("Q(x,y,w) <- R1(x,y), R2(y,w).")
	inst := makeInstance(map[string][][]int64{
		"R1": {{1, 10}, {2, 10}, {3, 30}},
		"R2": {{10, 100}, {10, 200}, {40, 400}},
	})
	sameAnswers(t, q, inst)
	plan, _ := Prepare(q, inst, nil)
	if got := plan.Materialize().Len(); got != 4 {
		t.Errorf("answers = %d, want 4", got)
	}
}

func TestProjectionQuery(t *testing.T) {
	// Existential y: Q(x,w) <- R1(x,y), R2(y,w) is NOT free-connex
	// (free-path x,y,w)... but Q(x) <- R1(x,y), R2(y,w) is.
	q := cq.MustParseCQ("Q(x) <- R1(x,y), R2(y,w).")
	inst := makeInstance(map[string][][]int64{
		"R1": {{1, 10}, {2, 20}, {3, 10}},
		"R2": {{10, 100}, {99, 0}},
	})
	sameAnswers(t, q, inst)
	plan, _ := Prepare(q, inst, nil)
	rows := plan.Materialize().SortedRows()
	if len(rows) != 2 || rows[0][0] != database.V(1) || rows[1][0] != database.V(3) {
		t.Errorf("answers = %v", rows)
	}
}

func TestNotFreeConnexRejected(t *testing.T) {
	q := cq.MustParseCQ("Q(x,y) <- R1(x,z), R2(z,y).")
	inst := makeInstance(map[string][][]int64{"R1": {{1, 2}}, "R2": {{2, 3}}})
	if _, err := Prepare(q, inst, nil); err == nil {
		t.Errorf("matrix-multiplication query accepted")
	}
	// But the same query with S={x,z} is fine.
	if _, err := Prepare(q, inst, cq.NewVarSet("x", "z")); err != nil {
		t.Errorf("{x,z}-connex enumeration rejected: %v", err)
	}
}

func TestCyclicRejected(t *testing.T) {
	q := cq.MustParseCQ("Q(x) <- R1(x,y), R2(y,z), R3(z,x).")
	inst := makeInstance(map[string][][]int64{"R1": {{1, 2}}, "R2": {{2, 3}}, "R3": {{3, 1}}})
	if _, err := Prepare(q, inst, nil); err == nil {
		t.Errorf("cyclic query accepted")
	}
}

func TestPrepareErrors(t *testing.T) {
	q := cq.MustParseCQ("Q(x) <- R(x,y).")
	if _, err := Prepare(q, makeInstance(map[string][][]int64{}), nil); err == nil {
		t.Errorf("missing relation accepted")
	}
	bad := makeInstance(map[string][][]int64{"R": {{1}}})
	if _, err := Prepare(q, bad, nil); err == nil {
		t.Errorf("arity mismatch accepted")
	}
	inst := makeInstance(map[string][][]int64{"R": {{1, 2}}})
	if _, err := Prepare(q, inst, cq.NewVarSet("zzz")); err == nil {
		t.Errorf("S outside query accepted")
	}
}

func TestRepeatedVariableAtom(t *testing.T) {
	q := cq.MustParseCQ("Q(x) <- R(x,x).")
	inst := makeInstance(map[string][][]int64{
		"R": {{1, 1}, {1, 2}, {3, 3}},
	})
	sameAnswers(t, q, inst)
	plan, _ := Prepare(q, inst, nil)
	if got := plan.Materialize().Len(); got != 2 {
		t.Errorf("answers = %d, want 2", got)
	}
}

func TestBooleanDecide(t *testing.T) {
	q := cq.MustParseCQ("Q() <- R1(x,y), R2(y,z).")
	yes := makeInstance(map[string][][]int64{"R1": {{1, 2}}, "R2": {{2, 3}}})
	no := makeInstance(map[string][][]int64{"R1": {{1, 2}}, "R2": {{9, 3}}})
	if ok, err := Decide(q, yes); err != nil || !ok {
		t.Errorf("Decide(yes) = %v, %v", ok, err)
	}
	if ok, err := Decide(q, no); err != nil || ok {
		t.Errorf("Decide(no) = %v, %v", ok, err)
	}
}

func TestCartesianProduct(t *testing.T) {
	q := cq.MustParseCQ("Q(x,y) <- R(x), S(y).")
	inst := makeInstance(map[string][][]int64{
		"R": {{1}, {2}},
		"S": {{10}, {20}, {30}},
	})
	sameAnswers(t, q, inst)
	plan, _ := Prepare(q, inst, nil)
	if got := plan.Materialize().Len(); got != 6 {
		t.Errorf("answers = %d, want 6", got)
	}
}

func TestEmptyRelation(t *testing.T) {
	q := cq.MustParseCQ("Q(x,y) <- R1(x,y), R2(y).")
	inst := makeInstance(map[string][][]int64{"R1": {{1, 2}}, "R2": {}})
	// Empty R2 needs explicit arity: rebuild with arity 1.
	inst.AddRelation(database.NewRelation("R2", 1))
	plan, err := Prepare(q, inst, nil)
	if err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	if plan.Iterator().Next() {
		t.Errorf("answers found over empty relation")
	}
}

func TestSTupleAndValue(t *testing.T) {
	q := cq.MustParseCQ("Q(b,a) <- R(a,b).")
	inst := makeInstance(map[string][][]int64{"R": {{1, 2}}})
	plan, err := Prepare(q, inst, nil)
	if err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	it := plan.Iterator()
	if !it.Next() {
		t.Fatalf("no answer")
	}
	// SVars sorted: [a b]; head order: (b,a).
	if got := it.STuple(); !got.Equal(database.Tuple{database.V(1), database.V(2)}) {
		t.Errorf("STuple = %v", got)
	}
	if got := it.HeadTuple(); !got.Equal(database.Tuple{database.V(2), database.V(1)}) {
		t.Errorf("HeadTuple = %v", got)
	}
	if it.Value("a") != database.V(1) {
		t.Errorf("Value(a) = %v", it.Value("a"))
	}
	if it.Next() {
		t.Errorf("extra answer")
	}
}

func TestExtendProducesHomomorphism(t *testing.T) {
	q := cq.MustParseCQ("Q(x) <- R1(x,y), R2(y,w), R3(w).")
	inst := makeInstance(map[string][][]int64{
		"R1": {{1, 10}, {2, 20}},
		"R2": {{10, 100}, {20, 999}},
		"R3": {{100}},
	})
	plan, err := Prepare(q, inst, nil)
	if err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	it := plan.Iterator()
	count := 0
	for it.Next() {
		it.Extend()
		count++
		// Verify all atoms hold under the full assignment.
		for _, a := range q.Atoms {
			rel := inst.MustRelation(a.Rel)
			found := false
			for i := 0; i < rel.Len(); i++ {
				row := rel.Row(i)
				match := true
				for c, v := range a.Vars {
					if row[c] != it.Value(v) {
						match = false
						break
					}
				}
				if match {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("extension violates atom %s", a)
			}
		}
	}
	if count != 1 {
		t.Errorf("answers = %d, want 1 (only x=1 extends)", count)
	}
}

func TestProviderStyleSubsetS(t *testing.T) {
	// Example 2's Q2 with S = {x,y} ⊂ free(Q2): the S-connex enumeration
	// used by Lemma 8.
	q := cq.MustParseCQ("Q2(x,y,w) <- R1(x,y), R2(y,w).")
	inst := makeInstance(map[string][][]int64{
		"R1": {{1, 10}, {2, 10}, {3, 99}},
		"R2": {{10, 5}, {10, 6}},
	})
	plan, err := Prepare(q, inst, cq.NewVarSet("x", "y"))
	if err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	got := plan.Materialize().SortedRows()
	// Q2(I)|{x,y} = {(1,10),(2,10)}; (3,99) is dangling.
	if len(got) != 2 || got[0][0] != database.V(1) || got[1][0] != database.V(2) {
		t.Errorf("projection = %v", got)
	}
	// Extending each S-tuple yields a real Q2 answer.
	it := plan.Iterator()
	for it.Next() {
		it.Extend()
		h := it.HeadTuple()
		if h[2] != database.V(5) && h[2] != database.V(6) {
			t.Errorf("extension w = %v", h[2])
		}
	}
}

func TestMaterializeHeadDedupsWhenHeadOutsideS(t *testing.T) {
	// S = {x}: head (x,y) requires extension; one row per S-tuple.
	q := cq.MustParseCQ("Q(x,y) <- R1(x,y).")
	inst := makeInstance(map[string][][]int64{"R1": {{1, 7}, {1, 8}}})
	plan, err := Prepare(q, inst, cq.NewVarSet("x"))
	if err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	rows := plan.MaterializeHead().Rows()
	if len(rows) != 1 {
		t.Errorf("rows = %v (one per S-tuple expected)", rows)
	}
}

func TestHeadWithRepeatedVariables(t *testing.T) {
	q := cq.MustParseCQ("Q(x,x,y) <- R(x,y).")
	inst := makeInstance(map[string][][]int64{"R": {{1, 2}}})
	sameAnswers(t, q, inst)
}

func TestNoDuplicatesAndNoBacktracks(t *testing.T) {
	q := cq.MustParseCQ("Q(x,y,w) <- R1(x,y), R2(y,w), R3(y).")
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		rels := map[string][][]int64{"R1": {}, "R2": {}, "R3": {}}
		for i := 0; i < 30; i++ {
			rels["R1"] = append(rels["R1"], []int64{rng.Int63n(6), rng.Int63n(6)})
			rels["R2"] = append(rels["R2"], []int64{rng.Int63n(6), rng.Int63n(6)})
		}
		for v := int64(0); v < 6; v++ {
			if rng.Intn(2) == 0 {
				rels["R3"] = append(rels["R3"], []int64{v})
			}
		}
		if len(rels["R3"]) == 0 {
			rels["R3"] = append(rels["R3"], []int64{0})
		}
		inst := makeInstance(rels)
		if inst.Relation("R3") == nil || inst.Relation("R3").Arity() != 1 {
			r := database.NewRelation("R3", 1)
			inst.AddRelation(r)
		}
		plan, err := Prepare(q, inst, nil)
		if err != nil {
			t.Fatalf("Prepare: %v", err)
		}
		it := plan.Iterator()
		seen := make(map[string]bool)
		for it.Next() {
			k := it.STuple().Key()
			if seen[k] {
				t.Fatalf("duplicate answer %v", it.STuple())
			}
			seen[k] = true
		}
		if it.Backtracks != 0 {
			t.Errorf("trial %d: %d backtracks after full reduction", trial, it.Backtracks)
		}
		sameAnswers(t, q, inst)
	}
}

func TestRandomizedAgainstBaseline(t *testing.T) {
	queries := []string{
		"Q(x,y,w) <- R1(x,y), R2(y,w).",
		"Q(x) <- R1(x,y), R2(y,w).",
		"Q(x,y) <- R1(x,y), R2(y,w), R3(w,u).",
		"Q(a,b,c) <- R1(a,b), R2(b,c), R3(c).",
		"Q(x,y,z) <- R1(x,y), R2(y,z), R3(y).",
		"Q(x) <- R1(x,y), R2(y,w), R3(w).",
	}
	rng := rand.New(rand.NewSource(42))
	for _, src := range queries {
		q := cq.MustParseCQ(src)
		for trial := 0; trial < 10; trial++ {
			inst := database.NewInstance()
			for _, d := range cq.MustUCQ(q).Schema() {
				r := database.NewRelation(d.Name, d.Arity)
				for i := 0; i < 20; i++ {
					row := make([]int64, d.Arity)
					for c := range row {
						row[c] = rng.Int63n(5)
					}
					r.AppendInts(row...)
				}
				r.Dedup()
				inst.AddRelation(r)
			}
			sameAnswers(t, q, inst)
		}
	}
}

func TestStats(t *testing.T) {
	q := cq.MustParseCQ("Q(x) <- R1(x,y), R2(y,w).")
	inst := makeInstance(map[string][][]int64{"R1": {{1, 2}}, "R2": {{2, 3}}})
	plan, err := Prepare(q, inst, nil)
	if err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	st := plan.Stats()
	if st.Tops == 0 {
		t.Errorf("no tops recorded")
	}
	if st.InputValues != 4 {
		t.Errorf("InputValues = %d, want 4", st.InputValues)
	}
	if st.Projections == 0 {
		t.Errorf("expected at least one projection (w is solo)")
	}
	if plan.NumVars() != 3 {
		t.Errorf("NumVars = %d", plan.NumVars())
	}
	if plan.VarID("x") < 0 || plan.VarID("nope") != -1 {
		t.Errorf("VarID lookup wrong")
	}
}

func TestIteratorExhaustionIsSticky(t *testing.T) {
	q := cq.MustParseCQ("Q(x) <- R(x).")
	inst := makeInstance(map[string][][]int64{"R": {{1}}})
	plan, _ := Prepare(q, inst, nil)
	it := plan.Iterator()
	if !it.Next() || it.Next() {
		t.Fatalf("expected exactly one answer")
	}
	if it.Next() {
		t.Errorf("iterator revived after exhaustion")
	}
}
