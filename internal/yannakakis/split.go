package yannakakis

// This file is the range-cursor API behind task-based parallel
// enumeration: a prepared plan's answer stream is partitioned by slicing
// the root DFS position's candidate rows into contiguous ranges, each an
// independent resumable Iterator. Disjointness is structural: an answer
// fixes one row per top node (top relations are duplicate-free and their
// columns are exactly their variables), so answers from different root
// rows are distinct and a partition of the root rows partitions the answer
// set. A partially drained range iterator can further shed the second half
// of its unvisited rows through SplitOff — the primitive the work-stealing
// executor uses to decompose a heavy range adaptively.

// Split partitions the plan's answers into at most parts pairwise disjoint
// range iterators that together cover the full answer set. It returns at
// least one iterator; fewer than parts when the root position has fewer
// candidate rows than parts.
func (p *Plan) Split(parts int) []*Iterator {
	n := p.RootLen()
	if parts > n {
		parts = n
	}
	if parts <= 1 {
		return []*Iterator{p.Iterator()}
	}
	out := make([]*Iterator, 0, parts)
	for i := 0; i < parts; i++ {
		lo := i * n / parts
		hi := (i + 1) * n / parts
		out = append(out, p.IteratorRange(lo, hi))
	}
	return out
}

// SplitOff carves off roughly the second half of the iterator's unvisited
// root rows into a new independent iterator, shrinking the receiver; the
// two iterators together produce exactly the answers the receiver alone
// would have. It returns nil when fewer than two unvisited root rows
// remain. SplitOff must not be called concurrently with Next: the
// executor's contract is that only the worker owning the iterator splits
// it, between batches.
func (it *Iterator) SplitOff() *Iterator {
	if it.exhausted {
		return nil
	}
	if !it.started {
		n := it.rootHi - it.rootLo
		if n < 2 {
			return nil
		}
		mid := it.rootLo + n/2
		other := it.plan.IteratorRange(mid, it.rootHi)
		it.rootHi = mid
		return other
	}
	// Started: rows[0] holds the root range [rootLo, rootHi) and
	// cursors[0] points at the row currently being enumerated, which stays
	// with the receiver. rows[0][i] is row id rootLo+i, so cutting the
	// slice at index cut hands rows rootLo+cut.. to the new iterator.
	remaining := len(it.rows[0]) - it.cursors[0] - 1
	if remaining < 2 {
		return nil
	}
	cut := it.cursors[0] + 1 + remaining/2
	other := it.plan.IteratorRange(it.rootLo+cut, it.rootHi)
	it.rows[0] = it.rows[0][:cut]
	it.rootHi = it.rootLo + cut
	return other
}

// RootRange reports the iterator's current root row range [lo, hi); the
// range shrinks as SplitOff sheds work.
func (it *Iterator) RootRange() (lo, hi int) { return it.rootLo, it.rootHi }
