package yannakakis

import (
	"testing"

	"repro/internal/cq"
	"repro/internal/database"
	"repro/internal/workload"
)

// drainCount exhausts a fresh iterator of the plan and returns the count.
func drainCount(p *Plan) int64 {
	n := int64(0)
	it := p.Iterator()
	for it.Next() {
		n++
	}
	return n
}

// TestCountAnswersMatchesEnumeration checks the counting pass against the
// iterator on a spread of query shapes and instances.
func TestCountAnswersMatchesEnumeration(t *testing.T) {
	cases := []struct {
		name  string
		query string
		build func() *database.Instance
	}{
		{
			name:  "full-chain",
			query: "Q(x,y,w) <- R1(x,y), R2(y,w).",
			build: func() *database.Instance {
				return workload.Chain([]string{"R1", "R2"}, []int{2, 2}, 200, 3, 1)
			},
		},
		{
			name:  "projected-chain",
			query: "Q(x) <- R1(x,y), R2(y,w).",
			build: func() *database.Instance {
				return workload.Chain([]string{"R1", "R2"}, []int{2, 2}, 150, 2, 2)
			},
		},
		{
			name:  "star",
			query: "Q(c,x,y,z) <- R1(c,x), R2(c,y), R3(c,z).",
			build: func() *database.Instance {
				return workload.Random(
					[]cq.RelDecl{{Name: "R1", Arity: 2}, {Name: "R2", Arity: 2}, {Name: "R3", Arity: 2}},
					300, 40, 3)
			},
		},
		{
			name:  "disconnected-free",
			query: "Q(x,y) <- R1(x,a), R2(y,b).",
			build: func() *database.Instance {
				return workload.Random(
					[]cq.RelDecl{{Name: "R1", Arity: 2}, {Name: "R2", Arity: 2}},
					80, 25, 4)
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			q := cq.MustParseCQ(tc.query)
			inst := tc.build()
			plan, err := Prepare(q, inst, nil)
			if err != nil {
				t.Fatalf("Prepare: %v", err)
			}
			want := drainCount(plan)
			if got := plan.CountAnswers(); got != want {
				t.Fatalf("CountAnswers = %d, enumeration yields %d", got, want)
			}
			// Counting must not disturb the plan: a fresh iterator still
			// produces the same answers.
			if again := drainCount(plan); again != want {
				t.Fatalf("enumeration after CountAnswers yields %d, want %d", again, want)
			}
		})
	}
}

// TestCountAnswersEmptyAndBoolean covers empty results and S = ∅ plans.
func TestCountAnswersEmptyAndBoolean(t *testing.T) {
	q := cq.MustParseCQ("Q(x,y,w) <- R1(x,y), R2(y,w).")
	inst := workload.Chain([]string{"R1", "R2"}, []int{2, 2}, 10, 1, 5)
	// Remove all R2 rows joining R1: use a disjoint instance instead.
	empty := workload.Chain([]string{"R1", "R2"}, []int{2, 2}, 0, 0, 5)
	plan, err := Prepare(q, empty, nil)
	if err != nil {
		t.Fatalf("Prepare empty: %v", err)
	}
	if got := plan.CountAnswers(); got != 0 {
		t.Fatalf("empty instance: CountAnswers = %d, want 0", got)
	}
	// Boolean-style plan: S = ∅ counts 1 when an answer exists.
	bplan, err := Prepare(q, inst, cq.NewVarSet())
	if err != nil {
		t.Fatalf("Prepare S=∅: %v", err)
	}
	want := drainCount(bplan)
	if got := bplan.CountAnswers(); got != want {
		t.Fatalf("S=∅: CountAnswers = %d, enumeration yields %d", got, want)
	}
}
