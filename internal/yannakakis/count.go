package yannakakis

import "repro/internal/database"

// This file computes exact output cardinalities of prepared plans. The
// parallel union merge pre-sizes its dedup TupleSet from these counts, so
// the hot enumeration path never pays a growth rehash.

// countCap bounds the weights carried by the counting recurrence; counts
// saturate at this value instead of overflowing. It is far beyond any
// answer set the dedup arena could hold anyway.
const countCap = int64(1) << 50

// satMul multiplies two non-negative counts, saturating at countCap.
func satMul(a, b int64) int64 {
	if a == 0 || b == 0 {
		return 0
	}
	if a > countCap/b {
		return countCap
	}
	return a * b
}

// satAdd adds two non-negative counts, saturating at countCap.
func satAdd(a, b int64) int64 {
	if a > countCap-b {
		return countCap
	}
	return a + b
}

// entryOfCols projects row onto cols and returns the index entry of the
// resulting key, reusing buf as scratch space.
func entryOfCols(ix *database.Index, row database.Tuple, cols []int, buf database.Tuple) int {
	buf = buf[:0]
	for _, c := range cols {
		buf = append(buf, row[c])
	}
	return ix.EntryOf(buf)
}

// CountAnswers returns the exact number of answers a fresh Iterator will
// produce — |Q(I)|S| — without enumerating them. It runs one linear pass
// over the top join tree: processing nodes children-first, each row's
// weight becomes the product over child nodes of the summed weights of the
// child rows joining it (aggregated per index entry, so the pass costs
// O(rows) per node, not O(join matches)); the answer count is the root
// rows' weight sum. Counts saturate at countCap rather than overflow, so
// the result is safe to use directly as a sizing hint.
func (p *Plan) CountAnswers() int64 {
	if len(p.order) == 0 {
		return 0
	}
	// Children per node, restricted to the DFS order the iterator walks.
	kids := make([][]int, len(p.tops))
	for _, i := range p.order[1:] {
		kids[p.tops[i].parent] = append(kids[p.tops[i].parent], i)
	}
	weights := make([][]int64, len(p.tops))
	keyBuf := make(database.Tuple, 0, 16)
	for k := len(p.order) - 1; k >= 0; k-- {
		i := p.order[k]
		t := &p.tops[i]
		wi := make([]int64, t.rel.Len())
		for r := range wi {
			wi[r] = 1
		}
		for _, c := range kids[i] {
			ct := &p.tops[c]
			// Columns keying the child's DFS index, and the parent columns
			// holding the same variables (the child's key variables lie in
			// the parent by the running intersection property).
			var cc, pc []int
			for cCol, v := range ct.vars {
				if pCol := colIn(t.vars, v); pCol >= 0 {
					cc = append(cc, cCol)
					pc = append(pc, pCol)
				}
			}
			// Aggregate the child's row weights per index entry, then fold
			// each parent row's matching aggregate into its weight.
			agg := make([]int64, ct.index.NumKeys())
			cw := weights[c]
			for r := 0; r < ct.rel.Len(); r++ {
				if e := entryOfCols(ct.index, ct.rel.Row(r), cc, keyBuf); e >= 0 {
					agg[e] = satAdd(agg[e], cw[r])
				}
			}
			weights[c] = nil
			for r := range wi {
				if wi[r] == 0 {
					continue
				}
				e := entryOfCols(ct.index, t.rel.Row(r), pc, keyBuf)
				if e < 0 {
					wi[r] = 0
					continue
				}
				wi[r] = satMul(wi[r], agg[e])
			}
		}
		weights[i] = wi
	}
	total := int64(0)
	for _, w := range weights[p.order[0]] {
		total = satAdd(total, w)
	}
	return total
}
