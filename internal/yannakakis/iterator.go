package yannakakis

import (
	"fmt"

	"repro/internal/cq"
	"repro/internal/database"
)

// Iterator enumerates the assignments Q(I)|S of a prepared plan with
// constant delay and no duplicates. The zero value is not usable; obtain
// iterators from Plan.Iterator.
//
// The iterator is an odometer over the DFS pre-order of the top join tree:
// each position holds the candidate rows matching the ancestor assignment
// (a hash lookup), and after the full reduction every candidate extends to
// a complete answer, so no backtracking occurs.
type Iterator struct {
	plan      *Plan
	rows      [][]int32 // candidate row ids per DFS position
	cursors   []int
	assign    []database.Value
	started   bool
	exhausted bool
	extended  bool
	keyBuf    []database.Value
	// rootLo and rootHi restrict the root position to the candidate rows
	// [rootLo, rootHi) — the range-cursor behind Split/SplitOff. A full
	// iterator spans [0, RootLen).
	rootLo, rootHi int
	// Backtracks counts DFS positions that produced no candidates; after a
	// full reduction this stays 0 and tests assert it.
	Backtracks int
}

// Iterator returns a fresh iterator over the plan's answers.
func (p *Plan) Iterator() *Iterator {
	return p.IteratorRange(0, p.RootLen())
}

// RootLen returns the number of candidate rows at the plan's root DFS
// position — the domain Split and IteratorRange partition.
func (p *Plan) RootLen() int {
	if len(p.order) == 0 {
		return 0
	}
	return p.tops[p.order[0]].rel.Len()
}

// IteratorRange returns an iterator over exactly the answers whose root
// position binds a candidate row with index in [lo, hi). Because every
// answer determines one row per top node (top relations are
// duplicate-free), the ranges of a partition of [0, RootLen) yield
// pairwise disjoint answer streams whose union is the full answer set.
// Bounds are clamped to [0, RootLen].
func (p *Plan) IteratorRange(lo, hi int) *Iterator {
	n := len(p.order)
	if lo < 0 {
		lo = 0
	}
	if max := p.RootLen(); hi > max {
		hi = max
	}
	if hi < lo {
		hi = lo
	}
	return &Iterator{
		plan:    p,
		rows:    make([][]int32, n),
		cursors: make([]int, n),
		assign:  make([]database.Value, len(p.varName)),
		rootLo:  lo,
		rootHi:  hi,
	}
}

// Next advances to the next S-assignment, reporting false on exhaustion.
func (it *Iterator) Next() bool {
	if it.exhausted {
		return false
	}
	it.extended = false
	n := len(it.plan.order)
	var k int
	if !it.started {
		it.started = true
		k = 0
		it.fill(0)
	} else {
		k = n - 1
		it.cursors[k]++
	}
	// Odometer walk: at position k, either bind the current candidate and
	// move deeper (filling the next position), or, when candidates are
	// exhausted, back up and advance the previous position. After the full
	// reduction every fill is non-empty, so the walk never backs up except
	// through genuinely exhausted positions.
	for {
		if it.cursors[k] < len(it.rows[k]) {
			it.bind(k)
			if k == n-1 {
				return true
			}
			k++
			it.fill(k)
			continue
		}
		if k == 0 {
			it.exhausted = true
			return false
		}
		k--
		it.cursors[k]++
	}
}

// fill computes the candidate rows at DFS position k for the current
// ancestor assignment and resets its cursor.
func (it *Iterator) fill(k int) {
	t := &it.plan.tops[it.plan.order[k]]
	if k == 0 {
		it.rows[k] = rangeRows(it.rootLo, it.rootHi)
	} else if t.index == nil {
		it.rows[k] = allRows(t.rel)
	} else {
		it.keyBuf = it.keyBuf[:0]
		for _, vid := range t.keyVarIDs {
			it.keyBuf = append(it.keyBuf, it.assign[vid])
		}
		it.rows[k] = t.index.Lookup(it.keyBuf)
	}
	if len(it.rows[k]) == 0 && k > 0 {
		it.Backtracks++
	}
	it.cursors[k] = 0
}

// bind writes DFS position k's current row into the assignment.
func (it *Iterator) bind(k int) {
	t := &it.plan.tops[it.plan.order[k]]
	if t.rel.Arity() == 0 {
		return
	}
	row := t.rel.Row(int(it.rows[k][it.cursors[k]]))
	for c, vid := range t.varIDs {
		it.assign[vid] = row[c]
	}
}

// Plan returns the plan this iterator enumerates.
func (it *Iterator) Plan() *Plan { return it.plan }

// RootPos returns the root row index of the current answer — the answer's
// coordinate in the [0, RootLen) domain that Split and IteratorRange
// partition. It is only meaningful after a Next call that returned true.
// Next visits root rows in ascending order, so once RootPos reports p,
// every answer with root row < p has already been produced; a range
// iterator resumed at IteratorRange(p, hi) continues exactly where a
// stream cut after root row p-1 left off. This ordering contract is what
// lets a distributed scatter checkpoint progress at root-row granularity.
func (it *Iterator) RootPos() int { return it.rootLo + it.cursors[0] }

// Value returns the current value of a variable. Before Extend, only
// variables in S are meaningful.
func (it *Iterator) Value(v cq.Variable) database.Value {
	id := it.plan.VarID(v)
	if id < 0 {
		panic(fmt.Sprintf("yannakakis: variable %s not in query %s", v, it.plan.Q.Name))
	}
	return it.assign[id]
}

// STuple returns the current S-assignment as a tuple over Plan.SVars.
func (it *Iterator) STuple() database.Tuple {
	out := make(database.Tuple, len(it.plan.SVars))
	for i, v := range it.plan.SVars {
		out[i] = it.assign[it.plan.varID[v]]
	}
	return out
}

// HeadTuple returns the current assignment projected onto the query head.
// All head variables must be in S (the usual case S = free(Q)) unless
// Extend was called first.
func (it *Iterator) HeadTuple() database.Tuple {
	out := make(database.Tuple, len(it.plan.headIDs))
	for i, id := range it.plan.headIDs {
		out[i] = it.assign[id]
	}
	return out
}

// AppendHead appends the current head tuple's values to buf without
// allocating; it is the batched-enumeration counterpart of HeadTuple.
func (it *Iterator) AppendHead(buf []database.Value) []database.Value {
	for _, id := range it.plan.headIDs {
		buf = append(buf, it.assign[id])
	}
	return buf
}

// Extend completes the current S-assignment to a full homomorphism by
// replaying the elimination log backwards (the Lemma 8 extension): each
// logged projection looks up one matching pre-projection row. It is a
// constant-time operation per answer for a fixed query. Extend panics on a
// broken internal invariant; by construction every enumerated S-tuple has
// an extension.
func (it *Iterator) Extend() {
	if it.extended {
		return
	}
	for i := len(it.plan.log) - 1; i >= 0; i-- {
		e := &it.plan.log[i]
		if e.kind != 'p' {
			continue
		}
		it.keyBuf = it.keyBuf[:0]
		for _, vid := range e.keyVarIDs {
			it.keyBuf = append(it.keyBuf, it.assign[vid])
		}
		rows := e.index.Lookup(it.keyBuf)
		if len(rows) == 0 {
			panic(fmt.Sprintf("yannakakis: internal error: no extension for %s in %s",
				e.removedVar, it.plan.Q.Name))
		}
		row := e.pre.Row(int(rows[0]))
		it.assign[it.plan.varID[e.removedVar]] = row[e.removedCol]
	}
	it.extended = true
}

func allRows(r *database.Relation) []int32 {
	return rangeRows(0, r.Len())
}

// rangeRows lists the row ids lo..hi-1.
func rangeRows(lo, hi int) []int32 {
	if hi <= lo {
		return nil
	}
	out := make([]int32, hi-lo)
	for i := range out {
		out[i] = int32(lo + i)
	}
	return out
}

// Materialize drains a fresh iterator into a relation over Plan.SVars
// (sorted variable order), deduplicated by construction.
func (p *Plan) Materialize() *database.Relation {
	out := database.NewRelation(p.Q.Name, len(p.SVars))
	it := p.Iterator()
	for it.Next() {
		out.Append(it.STuple()...)
	}
	return out
}

// MaterializeHead drains a fresh iterator into a relation over the query
// head. When some head variable lies outside S, each answer is extended
// first.
func (p *Plan) MaterializeHead() *database.Relation {
	s := cq.NewVarSet(p.SVars...)
	needExtend := false
	for _, v := range p.Q.Head {
		if !s[v] {
			needExtend = true
		}
	}
	out := database.NewRelation(p.Q.Name, len(p.Q.Head))
	it := p.Iterator()
	for it.Next() {
		if needExtend {
			it.Extend()
		}
		out.Append(it.HeadTuple()...)
	}
	if needExtend {
		// Distinct S-tuples may project to equal head tuples only when
		// head ⊄ S; the enumeration itself is duplicate-free over S.
		out.Dedup()
	}
	return out
}

// Decide reports whether Q(I) is non-empty, in linear time for an acyclic
// query (Theorem 3's Decide⟨Q⟩ for the tractable side).
func Decide(q *cq.CQ, inst *database.Instance) (bool, error) {
	// Deciding non-emptiness never needs the head: use S = ∅, which is
	// connex for every acyclic query.
	plan, err := Prepare(q, inst, cq.NewVarSet())
	if err != nil {
		return false, err
	}
	return plan.Iterator().Next(), nil
}
