// Package yannakakis implements the evaluation engine behind the paper's
// upper bounds: linear-time preprocessing and constant-delay enumeration for
// S-connex acyclic conjunctive queries (the CDY algorithm of Theorem 3(1)
// and Lemma 8, realised through a GYO-driven elimination plan).
//
// # How the plan works
//
// Prepare(q, I, S) first checks S-connexity structurally (H(q) and
// H(q) ∪ {S} acyclic). It then runs the GYO reduction of H(q) ∪ {S} with the
// S edge frozen, *on the data*:
//
//   - a variable outside S occurring in exactly one alive atom is projected
//     out of that atom's relation (the pre-projection relation and an index
//     on the remaining columns are logged for replay);
//   - an atom whose variables are contained in another alive atom's
//     variables is absorbed: the absorber is semijoin-reduced by it;
//   - an atom whose variables are contained in S becomes a top node.
//
// The top nodes span exactly S and form an acyclic hypergraph; after a
// classical Yannakakis full reduction over their join tree, a DFS with
// per-node hash indexes enumerates the join of the tops — which equals
// Q(I)|S — with constant delay and no duplicates.
//
// An enumerated S-tuple extends to a full homomorphism by replaying the
// elimination log backwards: each logged projection looks up one matching
// pre-projection row (constant time), exactly the extension step in the
// proof of Lemma 8.
package yannakakis

import (
	"fmt"

	"repro/internal/cq"
	"repro/internal/database"
	"repro/internal/hypergraph"
)

// Plan is a prepared enumeration plan for one S-connex CQ over one instance.
// Preparation costs O(‖I‖) for a fixed query; iteration yields one answer
// per O(1) steps.
type Plan struct {
	Q *cq.CQ
	// SVars is the enumeration variable set in sorted order; iterators
	// produce assignments over these variables (plus, after Extend, all
	// query variables).
	SVars []cq.Variable

	varID   map[cq.Variable]int
	varName []cq.Variable
	// headIDs caches the variable ids of the query head in head order, for
	// allocation-free head projection on the enumeration hot path.
	headIDs []int

	log  []logEntry
	tops []topNode
	// order is the DFS pre-order over tops used by iterators.
	order []int
	// fullIndex[i] indexes top i on all columns, enabling the constant-time
	// membership test Algorithm 1 relies on ("tested in constant time after
	// a linear time preprocessing phase").
	fullIndex []*database.Index

	stats Stats
}

// Stats reports preprocessing counters, used by the experiment harness.
type Stats struct {
	// Projections is the number of logged variable eliminations.
	Projections int
	// Absorptions is the number of atom-into-atom absorptions.
	Absorptions int
	// Tops is the number of top nodes.
	Tops int
	// InputValues is ‖I‖ restricted to the query's relations.
	InputValues int
}

// Stats returns the plan's preprocessing counters.
func (p *Plan) Stats() Stats { return p.stats }

type logEntry struct {
	kind byte // 'p' projection, 'a' absorption, 't' top
	node int
	// Projection fields: the variable removed, its column in pre, the
	// pre-projection relation, an index on the remaining columns, and the
	// variable ids keying that index in column order.
	removedVar cq.Variable
	removedCol int
	pre        *database.Relation
	index      *database.Index
	keyVarIDs  []int
}

type topNode struct {
	vars   []cq.Variable
	varIDs []int
	rel    *database.Relation
	// parent in the top join tree (-1 for root), and the index/key vars
	// binding this node to its ancestors during DFS.
	parent    int
	index     *database.Index
	keyVarIDs []int
}

// Prepare builds an enumeration plan for q over inst with enumeration set s.
// A nil s means free(q): the standard free-connex enumeration. Errors are
// returned when a relation is missing or has the wrong arity, when s
// contains variables outside the query, or when q is not s-connex.
func Prepare(q *cq.CQ, inst *database.Instance, s cq.VarSet) (*Plan, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if s == nil {
		s = q.Free()
	}
	vars := q.Vars()
	if !vars.ContainsAll(s) {
		return nil, fmt.Errorf("yannakakis: enumeration set %v contains variables outside the query", s.Minus(vars))
	}
	h := hypergraph.FromCQ(q)
	if !h.IsAcyclic() {
		return nil, fmt.Errorf("yannakakis: query %s is cyclic", q.Name)
	}
	if !h.WithEdge(s).IsAcyclic() {
		return nil, fmt.Errorf("yannakakis: query %s is not %v-connex", q.Name, s)
	}

	p := &Plan{Q: q, varID: make(map[cq.Variable]int)}
	for _, v := range vars.Sorted() {
		p.varID[v] = len(p.varName)
		p.varName = append(p.varName, v)
	}
	p.SVars = s.Sorted()
	p.headIDs = make([]int, len(q.Head))
	for i, v := range q.Head {
		p.headIDs[i] = p.varID[v]
	}

	// Bind atoms to working relations.
	nodes := make([]*elimNode, len(q.Atoms))
	for i, a := range q.Atoms {
		n, err := bindAtom(a, inst)
		if err != nil {
			return nil, err
		}
		nodes[i] = n
		p.stats.InputValues += n.rel.Len() * n.rel.Arity()
	}

	if err := p.eliminate(nodes, s); err != nil {
		return nil, err
	}
	if err := p.buildTopTree(); err != nil {
		return nil, err
	}
	return p, nil
}

// elimNode is a working atom during elimination: current variables (the
// relation's columns, in order) and current relation.
type elimNode struct {
	vars  []cq.Variable
	rel   *database.Relation
	alive bool
}

func (n *elimNode) colOf(v cq.Variable) int {
	for i, u := range n.vars {
		if u == v {
			return i
		}
	}
	return -1
}

func (n *elimNode) varSet() cq.VarSet {
	return cq.NewVarSet(n.vars...)
}

// bindAtom attaches the atom to its relation, handling repeated variables
// (rows must agree on repeated positions) and deduplicating.
func bindAtom(a cq.Atom, inst *database.Instance) (*elimNode, error) {
	rel := inst.Relation(a.Rel)
	if rel == nil {
		return nil, fmt.Errorf("yannakakis: no relation %q in the instance", a.Rel)
	}
	if rel.Arity() != len(a.Vars) {
		return nil, fmt.Errorf("yannakakis: atom %s has arity %d but relation has arity %d",
			a, len(a.Vars), rel.Arity())
	}
	// Distinct variables in first-occurrence order, with their first column.
	var vars []cq.Variable
	var cols []int
	firstCol := make(map[cq.Variable]int)
	selfEqual := false
	for i, v := range a.Vars {
		if _, ok := firstCol[v]; ok {
			selfEqual = true
			continue
		}
		firstCol[v] = i
		vars = append(vars, v)
		cols = append(cols, i)
	}
	work := rel
	if selfEqual {
		work = rel.Filter(func(t database.Tuple) bool {
			for i, v := range a.Vars {
				if t[firstCol[v]] != t[i] {
					return false
				}
			}
			return true
		})
	}
	proj := work.Project(a.Rel, cols)
	return &elimNode{vars: vars, rel: proj, alive: true}, nil
}

// eliminate runs the frozen-S GYO reduction on the data, filling the log
// and the top list.
func (p *Plan) eliminate(nodes []*elimNode, s cq.VarSet) error {
	aliveCount := len(nodes)
	occurrences := func(v cq.Variable) int {
		n := 0
		for _, nd := range nodes {
			if nd.alive && nd.colOf(v) >= 0 {
				n++
			}
		}
		return n
	}

	for aliveCount > 0 {
		// Rule 1 to fixpoint: project solo existential variables. Removing
		// a solo variable never changes another variable's occurrence
		// count, so one pass per node suffices.
		for i, nd := range nodes {
			if !nd.alive {
				continue
			}
			for {
				removed := false
				for _, v := range nd.vars {
					if !s[v] && occurrences(v) <= 1 {
						p.projectOut(i, nd, v)
						removed = true
						break
					}
				}
				if !removed {
					break
				}
			}
		}

		// Rule 2: absorb one atom into another, then re-run rule 1 (the
		// absorber may now hold freshly solo variables).
		absorbed := false
		for i, nd := range nodes {
			if !nd.alive {
				continue
			}
			for j, other := range nodes {
				if i == j || !other.alive {
					continue
				}
				if other.varSet().ContainsAll(nd.varSet()) {
					p.absorb(i, nd, other)
					aliveCount--
					absorbed = true
					break
				}
			}
			if absorbed {
				break
			}
		}
		if absorbed {
			continue
		}

		// Rule 3: atoms contained in S become tops.
		madeTop := false
		for i, nd := range nodes {
			if !nd.alive {
				continue
			}
			if s.ContainsAll(nd.varSet()) {
				p.makeTop(i, nd)
				aliveCount--
				madeTop = true
			}
		}
		if !madeTop {
			return fmt.Errorf("yannakakis: internal error: elimination stalled for %s (S=%v)", p.Q.Name, s)
		}
	}
	if len(p.tops) == 0 {
		return fmt.Errorf("yannakakis: internal error: no top nodes for %s", p.Q.Name)
	}
	return nil
}

func (p *Plan) projectOut(i int, nd *elimNode, v cq.Variable) {
	col := nd.colOf(v)
	pre := nd.rel
	var keepCols []int
	var keepVars []cq.Variable
	var keyVarIDs []int
	for c, u := range nd.vars {
		if c == col {
			continue
		}
		keepCols = append(keepCols, c)
		keepVars = append(keepVars, u)
		keyVarIDs = append(keyVarIDs, p.varID[u])
	}
	entry := logEntry{
		kind:       'p',
		node:       i,
		removedVar: v,
		removedCol: col,
		pre:        pre,
		index:      pre.BuildIndex(keepCols),
		keyVarIDs:  keyVarIDs,
	}
	p.log = append(p.log, entry)
	nd.rel = pre.Project(pre.Name, keepCols)
	nd.vars = keepVars
	p.stats.Projections++
}

func (p *Plan) absorb(i int, nd, into *elimNode) {
	// Semijoin the absorber by the absorbed atom on the absorbed columns.
	intoCols := make([]int, len(nd.vars))
	ndCols := make([]int, len(nd.vars))
	for c, v := range nd.vars {
		intoCols[c] = into.colOf(v)
		ndCols[c] = c
	}
	into.rel = database.Semijoin(into.rel, intoCols, nd.rel, ndCols)
	nd.alive = false
	p.log = append(p.log, logEntry{kind: 'a', node: i})
	p.stats.Absorptions++
}

func (p *Plan) makeTop(i int, nd *elimNode) {
	nd.alive = false
	p.log = append(p.log, logEntry{kind: 't', node: i})
	varIDs := make([]int, len(nd.vars))
	for c, v := range nd.vars {
		varIDs[c] = p.varID[v]
	}
	p.tops = append(p.tops, topNode{vars: nd.vars, varIDs: varIDs, rel: nd.rel, parent: -1})
	p.stats.Tops++
}

// buildTopTree joins the top nodes: join tree, full reduction, DFS order
// and per-node indexes.
func (p *Plan) buildTopTree() error {
	sets := make([]cq.VarSet, len(p.tops))
	for i, t := range p.tops {
		sets[i] = cq.NewVarSet(t.vars...)
	}
	jt, err := hypergraph.BuildJoinTree(hypergraph.FromVarSets(sets...))
	if err != nil {
		return fmt.Errorf("yannakakis: internal error: top hypergraph cyclic: %w", err)
	}
	for i := range p.tops {
		p.tops[i].parent = jt.Parent[i]
	}

	// Classical full reducer: bottom-up then top-down semijoin passes.
	sharedCols := func(child, parent int) (childCols, parentCols []int) {
		for c, v := range p.tops[child].vars {
			if pc := colIn(p.tops[parent].vars, v); pc >= 0 {
				childCols = append(childCols, c)
				parentCols = append(parentCols, pc)
			}
		}
		return childCols, parentCols
	}
	post := jt.PostOrder()
	for _, i := range post {
		if p.tops[i].parent < 0 {
			continue
		}
		par := p.tops[i].parent
		cc, pc := sharedCols(i, par)
		p.tops[par].rel = database.Semijoin(p.tops[par].rel, pc, p.tops[i].rel, cc)
	}
	for k := len(post) - 1; k >= 0; k-- {
		i := post[k]
		if p.tops[i].parent < 0 {
			continue
		}
		par := p.tops[i].parent
		cc, pc := sharedCols(i, par)
		p.tops[i].rel = database.Semijoin(p.tops[i].rel, cc, p.tops[par].rel, pc)
	}

	// DFS pre-order: reverse of post-order is a valid pre-order for our
	// purposes only if children precede parents in post; instead compute a
	// proper pre-order.
	children := jt.Children()
	p.order = p.order[:0]
	var visit func(int)
	visit = func(i int) {
		p.order = append(p.order, i)
		for _, c := range children[i] {
			visit(c)
		}
	}
	visit(jt.Root)

	// Per-node DFS index: on the columns shared with the parent. By the
	// running intersection property these are exactly the variables shared
	// with all previously assigned nodes.
	for _, i := range p.order {
		t := &p.tops[i]
		if t.parent < 0 {
			continue
		}
		cc, _ := sharedCols(i, t.parent)
		t.index = t.rel.BuildIndex(cc)
		t.keyVarIDs = t.keyVarIDs[:0]
		for _, c := range cc {
			t.keyVarIDs = append(t.keyVarIDs, t.varIDs[c])
		}
	}

	// Full-key indexes for Contains.
	p.fullIndex = make([]*database.Index, len(p.tops))
	for i := range p.tops {
		cols := make([]int, p.tops[i].rel.Arity())
		for c := range cols {
			cols[c] = c
		}
		p.fullIndex[i] = p.tops[i].rel.BuildIndex(cols)
	}
	return nil
}

// Contains reports whether the given tuple over Plan.SVars (sorted variable
// order, as produced by Iterator.STuple) is an answer. It runs in constant
// time for a fixed query: the tuple is an answer iff each top node contains
// its projection, since a full S-assignment determines one row per top.
func (p *Plan) Contains(t database.Tuple) bool {
	if len(t) != len(p.SVars) {
		return false
	}
	valueOf := make([]database.Value, len(p.varName))
	for i, v := range p.SVars {
		valueOf[p.varID[v]] = t[i]
	}
	key := make(database.Tuple, 0, 4)
	for i := range p.tops {
		key = key[:0]
		for _, vid := range p.tops[i].varIDs {
			key = append(key, valueOf[vid])
		}
		if !p.fullIndex[i].Contains(key) {
			return false
		}
	}
	return true
}

func colIn(vars []cq.Variable, v cq.Variable) int {
	for i, u := range vars {
		if u == v {
			return i
		}
	}
	return -1
}

// ContainsHead reports whether the tuple, read positionally against the
// query head, is an answer. Every head variable must be in S (the usual
// S = free(Q) case). Tuples assigning different values to repeated head
// variables are never answers.
func (p *Plan) ContainsHead(t database.Tuple) bool {
	if len(t) != len(p.Q.Head) {
		return false
	}
	s := make(map[cq.Variable]database.Value, len(t))
	for i, v := range p.Q.Head {
		if prev, ok := s[v]; ok {
			if prev != t[i] {
				return false
			}
			continue
		}
		s[v] = t[i]
	}
	st := make(database.Tuple, len(p.SVars))
	for i, v := range p.SVars {
		val, ok := s[v]
		if !ok {
			// An S variable outside the head: membership is not decidable
			// from the head tuple alone; treat as non-member defensively.
			return false
		}
		st[i] = val
	}
	return p.Contains(st)
}

// VarID returns the plan-internal id of a variable, or -1.
func (p *Plan) VarID(v cq.Variable) int {
	id, ok := p.varID[v]
	if !ok {
		return -1
	}
	return id
}

// NumVars returns the number of query variables.
func (p *Plan) NumVars() int { return len(p.varName) }
