package yannakakis

import (
	"math/rand"
	"testing"

	"repro/internal/baseline"
	"repro/internal/workload"
)

// TestRandomQueriesAgainstBaseline is the engine's main property test:
// for hundreds of randomly shaped acyclic queries with random S-connex
// enumeration sets and random data, the constant-delay engine must produce
// exactly the baseline's answer set, duplicate-free and without DFS
// backtracking.
func TestRandomQueriesAgainstBaseline(t *testing.T) {
	trials := 300
	if testing.Short() {
		trials = 60
	}
	rng := rand.New(rand.NewSource(20260610))
	for trial := 0; trial < trials; trial++ {
		q, s := workload.RandomAcyclicCQ(rng)
		inst := workload.RandomInstanceForCQ(q, 15+rng.Intn(30), 4+rng.Int63n(4), rng.Int63())

		plan, err := Prepare(q, inst, s)
		if err != nil {
			t.Fatalf("trial %d: Prepare(%s, S=%v): %v", trial, q, s, err)
		}
		it := plan.Iterator()
		got := make(map[string]bool)
		for it.Next() {
			k := it.STuple().Key()
			if got[k] {
				t.Fatalf("trial %d: duplicate answer %v for %s", trial, it.STuple(), q)
			}
			got[k] = true
		}
		if it.Backtracks != 0 {
			t.Errorf("trial %d: %d backtracks after full reduction (%s)", trial, it.Backtracks, q)
		}

		// Baseline: head = S in sorted order by construction.
		want, err := baseline.EvalCQ(q, inst)
		if err != nil {
			t.Fatalf("trial %d: baseline: %v", trial, err)
		}
		if len(got) != want.Len() {
			t.Fatalf("trial %d: %s S=%v: engine %d answers, baseline %d",
				trial, q, s, len(got), want.Len())
		}
		for i := 0; i < want.Len(); i++ {
			if !got[want.Row(i).Key()] {
				t.Fatalf("trial %d: missing answer %v for %s", trial, want.Row(i), q)
			}
		}
	}
}

// TestRandomQueriesExtendIsHomomorphism checks Lemma 8's extension on
// random queries: every extended assignment satisfies every atom.
func TestRandomQueriesExtendIsHomomorphism(t *testing.T) {
	trials := 120
	if testing.Short() {
		trials = 30
	}
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < trials; trial++ {
		q, s := workload.RandomAcyclicCQ(rng)
		inst := workload.RandomInstanceForCQ(q, 20, 4, rng.Int63())
		plan, err := Prepare(q, inst, s)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		it := plan.Iterator()
		checked := 0
		for it.Next() && checked < 50 {
			it.Extend()
			checked++
			for _, a := range q.Atoms {
				rel := inst.MustRelation(a.Rel)
				found := false
				for i := 0; i < rel.Len(); i++ {
					row := rel.Row(i)
					match := true
					for c, v := range a.Vars {
						if row[c] != it.Value(v) {
							match = false
							break
						}
					}
					if match {
						found = true
						break
					}
				}
				if !found {
					t.Fatalf("trial %d: extension violates %s in %s", trial, a, q)
				}
			}
		}
	}
}

// TestRandomQueriesContains checks the constant-time membership test
// against the enumerated answer set.
func TestRandomQueriesContains(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 60; trial++ {
		q, s := workload.RandomAcyclicCQ(rng)
		inst := workload.RandomInstanceForCQ(q, 20, 4, rng.Int63())
		plan, err := Prepare(q, inst, s)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		answers := plan.Materialize()
		for i := 0; i < answers.Len(); i++ {
			if !plan.Contains(answers.Row(i)) {
				t.Fatalf("trial %d: Contains rejected answer %v", trial, answers.Row(i))
			}
		}
		// Perturb an answer; membership must agree with a linear scan.
		// (Skip nullary answers: S may legitimately be empty.)
		if answers.Len() > 0 && answers.Arity() > 0 {
			probe := answers.Row(0).Clone()
			probe[0] = probe[0] + 1
			inSet := false
			for i := 0; i < answers.Len(); i++ {
				if answers.Row(i).Equal(probe) {
					inSet = true
					break
				}
			}
			if plan.Contains(probe) != inSet {
				t.Fatalf("trial %d: Contains(%v) = %v, scan says %v",
					trial, probe, plan.Contains(probe), inSet)
			}
		}
	}
}
