package yannakakis

import (
	"math/rand"
	"sort"
	"strings"
	"testing"

	"repro/internal/cq"
)

// splitTestPlan prepares a three-top chain plan over a randomized instance
// with a few hundred answers.
func splitTestPlan(t *testing.T, seed int64) *Plan {
	t.Helper()
	q := cq.MustParseCQ("Q(x,y,w) <- R1(x,y), R2(y,w).")
	rng := rand.New(rand.NewSource(seed))
	rels := map[string][][]int64{"R1": nil, "R2": nil}
	for i := 0; i < 120; i++ {
		rels["R1"] = append(rels["R1"], []int64{rng.Int63n(40), rng.Int63n(12)})
		rels["R2"] = append(rels["R2"], []int64{rng.Int63n(12), rng.Int63n(40)})
	}
	plan, err := Prepare(q, makeInstance(rels), nil)
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

// drainHeads collects an iterator's head tuples as strings.
func drainHeads(it *Iterator) []string {
	var out []string
	for it.Next() {
		out = append(out, it.HeadTuple().String())
	}
	return out
}

// checkPartition asserts the answer multisets in parts form a duplicate-free
// partition of want.
func checkPartition(t *testing.T, want []string, parts ...[]string) {
	t.Helper()
	var got []string
	for _, p := range parts {
		got = append(got, p...)
	}
	sort.Strings(got)
	w := append([]string(nil), want...)
	sort.Strings(w)
	if strings.Join(got, "\n") != strings.Join(w, "\n") {
		t.Fatalf("split streams disagree with the full stream:\ngot %d answers, want %d", len(got), len(w))
	}
	for i := 1; i < len(got); i++ {
		if got[i] == got[i-1] {
			t.Fatalf("duplicate answer across splits: %s", got[i])
		}
	}
}

func TestSplitPartitionsAnswers(t *testing.T) {
	plan := splitTestPlan(t, 1)
	want := drainHeads(plan.Iterator())
	if len(want) == 0 {
		t.Fatal("test plan has no answers")
	}
	for _, parts := range []int{1, 2, 3, 7, 64, plan.RootLen() + 10} {
		its := plan.Split(parts)
		if len(its) < 1 {
			t.Fatalf("Split(%d) returned no iterators", parts)
		}
		if max := plan.RootLen(); parts > max && len(its) > max {
			t.Fatalf("Split(%d) returned %d iterators over %d root rows", parts, len(its), max)
		}
		streams := make([][]string, len(its))
		for i, it := range its {
			streams[i] = drainHeads(it)
		}
		checkPartition(t, want, streams...)
	}
}

func TestSplitOffUnstartedAndMidStream(t *testing.T) {
	plan := splitTestPlan(t, 2)
	want := drainHeads(plan.Iterator())

	// Unstarted iterator: SplitOff halves the root range.
	it := plan.Iterator()
	half := it.SplitOff()
	if half == nil {
		t.Fatal("SplitOff on a fresh full iterator returned nil")
	}
	checkPartition(t, want, drainHeads(it), drainHeads(half))

	// Mid-stream: consume a prefix, then split; the receiver keeps the
	// current root row, the half takes later rows, nothing is lost or
	// repeated.
	it = plan.Iterator()
	var prefix []string
	for i := 0; i < 5 && it.Next(); i++ {
		prefix = append(prefix, it.HeadTuple().String())
	}
	half = it.SplitOff()
	rest := drainHeads(it)
	var stolen []string
	if half != nil {
		stolen = drainHeads(half)
	}
	checkPartition(t, want, prefix, rest, stolen)
}

func TestSplitOffUntilExhausted(t *testing.T) {
	// Recursively splitting every iterator down to nil still yields a
	// partition — the executor's steal-until-dry behaviour.
	plan := splitTestPlan(t, 3)
	want := drainHeads(plan.Iterator())
	queue := []*Iterator{plan.Iterator()}
	var streams [][]string
	for len(queue) > 0 {
		it := queue[0]
		queue = queue[1:]
		if half := it.SplitOff(); half != nil {
			queue = append(queue, half)
		}
		var got []string
		// Interleave draining with further splits.
		for i := 0; i < 3 && it.Next(); i++ {
			got = append(got, it.HeadTuple().String())
		}
		if half := it.SplitOff(); half != nil {
			queue = append(queue, half)
		}
		got = append(got, drainHeads(it)...)
		streams = append(streams, got)
	}
	checkPartition(t, want, streams...)
	if exhausted := plan.Iterator(); exhausted != nil {
		drainHeads(exhausted)
		if exhausted.SplitOff() != nil {
			t.Error("SplitOff on an exhausted iterator returned work")
		}
	}
}

func TestIteratorRangeClamps(t *testing.T) {
	plan := splitTestPlan(t, 4)
	n := plan.RootLen()
	if n == 0 {
		t.Fatal("no root rows")
	}
	if got := drainHeads(plan.IteratorRange(-5, n+5)); len(got) != len(drainHeads(plan.Iterator())) {
		t.Errorf("clamped full range enumerates %d answers", len(got))
	}
	if got := drainHeads(plan.IteratorRange(3, 2)); got != nil {
		t.Errorf("inverted range produced %d answers", len(got))
	}
	lo, hi := plan.IteratorRange(1, 3).RootRange()
	if lo != 1 || hi != 3 {
		t.Errorf("RootRange = [%d,%d), want [1,3)", lo, hi)
	}
}
