// Package homomorphism implements homomorphism search between conjunctive
// queries: body-homomorphisms and body-isomorphisms (Definition 6 of the
// paper), full homomorphisms and containment (Chandra–Merlin), and the
// maximal-CQ selection of Lemma 16.
//
// All searches operate on the original (non-virtual) atoms of the queries:
// virtual atoms carry fresh relation symbols by construction, so they can
// never be homomorphism targets of real atoms, and the paper's provided-set
// machinery (Definition 7) maps original bodies only.
package homomorphism

import (
	"sort"

	"repro/internal/cq"
)

// BodyHomomorphisms returns every body-homomorphism from `from` to `to`:
// mappings h on var(from) such that for each original atom R(v⃗) of `from`,
// R(h(v⃗)) is an original atom of `to` (heads unconstrained). The result is
// deduplicated and deterministic.
func BodyHomomorphisms(from, to *cq.CQ) []cq.Substitution {
	return search(from, to, nil)
}

// ExistsBodyHomomorphism reports whether at least one body-homomorphism
// exists from `from` to `to`.
func ExistsBodyHomomorphism(from, to *cq.CQ) bool {
	return len(search(from, to, stopAfterFirst())) > 0
}

// Homomorphisms returns every homomorphism from `from` to `to` in the
// paper's sense restricted positionally: body-homomorphisms h with
// h(head_from[i]) = head_to[i] for every head position. (The UCQs in this
// repository use positional head semantics; see internal/cq.)
func Homomorphisms(from, to *cq.CQ) []cq.Substitution {
	if len(from.Head) != len(to.Head) {
		return nil
	}
	seed := make(cq.Substitution, len(from.Head))
	for i, v := range from.Head {
		if u, ok := seed[v]; ok {
			if u != to.Head[i] {
				return nil
			}
			continue
		}
		seed[v] = to.Head[i]
	}
	return search(from, to, &searchOpts{seed: seed})
}

// Contains reports Q1 ⊆ Q2: by the Chandra–Merlin theorem, this holds iff
// there is a homomorphism from Q2 to Q1 preserving the head positionally.
func Contains(q1, q2 *cq.CQ) bool {
	if len(q1.Head) != len(q2.Head) {
		return false
	}
	seed := make(cq.Substitution, len(q2.Head))
	for i, v := range q2.Head {
		if u, ok := seed[v]; ok {
			if u != q1.Head[i] {
				return false
			}
			continue
		}
		seed[v] = q1.Head[i]
	}
	return len(search(q2, q1, &searchOpts{seed: seed, first: true})) > 0
}

// Equivalent reports Q1 ≡ Q2 (mutual containment).
func Equivalent(q1, q2 *cq.CQ) bool {
	return Contains(q1, q2) && Contains(q2, q1)
}

// IsRedundant reports whether the i-th CQ of the union is contained in
// another CQ of the union (as in Example 1, where the contained CQ can be
// dropped without changing the semantics — note the *containing* query is
// the one kept).
func IsRedundant(u *cq.UCQ, i int) bool {
	for j, q := range u.CQs {
		if j == i {
			continue
		}
		if Contains(u.CQs[i], q) {
			return true
		}
	}
	return false
}

// RemoveRedundant returns a copy of the union with contained CQs removed
// (keeping the first of any equivalent group).
func RemoveRedundant(u *cq.UCQ) *cq.UCQ {
	keep := make([]bool, len(u.CQs))
	for i := range keep {
		keep[i] = true
	}
	for i := range u.CQs {
		if !keep[i] {
			continue
		}
		for j := range u.CQs {
			if i == j || !keep[j] || !keep[i] {
				continue
			}
			if Contains(u.CQs[j], u.CQs[i]) {
				// Qj ⊆ Qi: drop Qj unless they are equivalent and j < i.
				if Contains(u.CQs[i], u.CQs[j]) && j < i {
					keep[i] = false
				} else {
					keep[j] = false
				}
			}
		}
	}
	var cqs []*cq.CQ
	for i, k := range keep {
		if k {
			cqs = append(cqs, u.CQs[i].Clone())
		}
	}
	return &cq.UCQ{CQs: cqs}
}

// FindBodyIsomorphism returns a body-isomorphism from q2 to q1 when q1 and
// q2 are body-isomorphic (Definition 6): body-homomorphisms exist in both
// directions. For self-join-free queries the returned mapping is a variable
// bijection.
func FindBodyIsomorphism(q1, q2 *cq.CQ) (cq.Substitution, bool) {
	homs := BodyHomomorphisms(q2, q1)
	if len(homs) == 0 {
		return nil, false
	}
	if !ExistsBodyHomomorphism(q1, q2) {
		return nil, false
	}
	// Prefer a bijective mapping when one exists (always the case for
	// self-join-free bodies).
	for _, h := range homs {
		if isInjectiveOn(h, q2.Vars()) {
			return h, true
		}
	}
	return homs[0], true
}

// BodyIsomorphic reports whether q1 and q2 have isomorphic bodies.
func BodyIsomorphic(q1, q2 *cq.CQ) bool {
	_, ok := FindBodyIsomorphism(q1, q2)
	return ok
}

// SelectLemma16 returns the index of a CQ Q1 in the union such that for
// every Qi, either there is no body-homomorphism from Qi to Q1, or Q1 and
// Qi are body-isomorphic (Lemma 16). Such a query always exists: the strict
// order "Qi maps into Qj but not conversely" is acyclic and any minimal
// element qualifies.
func SelectLemma16(u *cq.UCQ) int {
	n := len(u.CQs)
	hom := make([][]bool, n)
	for i := range hom {
		hom[i] = make([]bool, n)
		for j := range hom[i] {
			if i == j {
				hom[i][j] = true
				continue
			}
			hom[i][j] = ExistsBodyHomomorphism(u.CQs[i], u.CQs[j])
		}
	}
	for cand := 0; cand < n; cand++ {
		ok := true
		for i := 0; i < n; i++ {
			if i == cand {
				continue
			}
			if hom[i][cand] && !hom[cand][i] {
				ok = false
				break
			}
		}
		if ok {
			return cand
		}
	}
	// Unreachable by Lemma 16; return 0 defensively.
	return 0
}

// searchOpts controls the backtracking search.
type searchOpts struct {
	// seed is a partial substitution that the homomorphism must extend.
	seed cq.Substitution
	// first stops the search at the first homomorphism.
	first bool
}

func stopAfterFirst() *searchOpts { return &searchOpts{first: true} }

// search enumerates mappings h : var(from) → var(to) such that every
// original atom of `from` maps to an original atom of `to` with the same
// symbol, extending opts.seed if given.
func search(from, to *cq.CQ, opts *searchOpts) []cq.Substitution {
	if opts == nil {
		opts = &searchOpts{}
	}
	srcAtoms := from.OriginalAtoms()
	targets := make(map[string][]cq.Atom)
	for _, a := range to.OriginalAtoms() {
		targets[a.Rel] = append(targets[a.Rel], a)
	}
	// Fail fast when a source symbol is absent from the target (as in
	// Example 9, where R4 blocks any body-homomorphism).
	for _, a := range srcAtoms {
		if len(targets[a.Rel]) == 0 {
			return nil
		}
	}
	// Order atoms to bind shared variables early: most-variables-first is a
	// decent static heuristic at query scale.
	order := make([]int, len(srcAtoms))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(i, j int) bool {
		return len(srcAtoms[order[i]].Vars) > len(srcAtoms[order[j]].Vars)
	})

	var out []cq.Substitution
	seen := make(map[string]bool)
	current := make(cq.Substitution)
	for v, u := range opts.seed {
		current[v] = u
	}

	var rec func(k int) bool
	rec = func(k int) bool {
		if k == len(order) {
			// Record the restriction of current to var(from), deduped.
			vars := from.Vars().Sorted()
			h := make(cq.Substitution, len(vars))
			sig := make([]byte, 0, len(vars)*8)
			for _, v := range vars {
				h[v] = current.Apply(v)
				sig = append(sig, []byte(v)...)
				sig = append(sig, 0)
				sig = append(sig, []byte(h[v])...)
				sig = append(sig, 1)
			}
			if !seen[string(sig)] {
				seen[string(sig)] = true
				out = append(out, h)
			}
			return opts.first
		}
		a := srcAtoms[order[k]]
		for _, t := range targets[a.Rel] {
			if len(t.Vars) != len(a.Vars) {
				continue
			}
			var bound []cq.Variable
			ok := true
			for i, v := range a.Vars {
				if u, exists := current[v]; exists {
					if u != t.Vars[i] {
						ok = false
						break
					}
					continue
				}
				current[v] = t.Vars[i]
				bound = append(bound, v)
			}
			if ok && rec(k+1) {
				return true
			}
			for _, v := range bound {
				delete(current, v)
			}
		}
		return false
	}
	rec(0)
	return out
}

// isInjectiveOn reports whether h is injective on the given variables.
func isInjectiveOn(h cq.Substitution, vars cq.VarSet) bool {
	img := make(map[cq.Variable]bool, len(vars))
	for v := range vars {
		u := h.Apply(v)
		if img[u] {
			return false
		}
		img[u] = true
	}
	return true
}
