package homomorphism

import (
	"testing"

	"repro/internal/cq"
)

func TestExample1Containment(t *testing.T) {
	// Example 1: Q1 ⊆ Q2, making Q1 redundant.
	q1 := cq.MustParseCQ("Q1(x,y) <- R1(x,y), R2(y,z), R3(z,x).")
	q2 := cq.MustParseCQ("Q2(x,y) <- R1(x,y), R2(y,z).")
	if !Contains(q1, q2) {
		t.Errorf("Q1 ⊆ Q2 not detected")
	}
	if Contains(q2, q1) {
		t.Errorf("Q2 ⊆ Q1 wrongly detected")
	}
	u := cq.MustUCQ(q1, q2)
	if !IsRedundant(u, 0) {
		t.Errorf("Q1 not reported redundant")
	}
	if IsRedundant(u, 1) {
		t.Errorf("Q2 reported redundant")
	}
	r := RemoveRedundant(u)
	if len(r.CQs) != 1 || r.CQs[0].Name != "Q2" {
		t.Errorf("RemoveRedundant = %v", r)
	}
}

func TestExample2BodyHomomorphism(t *testing.T) {
	// Example 2: body-homomorphism from Q2 to Q1 with h(x,y,w) = (x,z,y),
	// but no full homomorphism (Q1 is not redundant).
	q1 := cq.MustParseCQ("Q1(x,y,w) <- R1(x,z), R2(z,y), R3(y,w).")
	q2 := cq.MustParseCQ("Q2(x,y,w) <- R1(x,y), R2(y,w).")
	homs := BodyHomomorphisms(q2, q1)
	if len(homs) != 1 {
		t.Fatalf("homs = %v", homs)
	}
	h := homs[0]
	if h.Apply("x") != "x" || h.Apply("y") != "z" || h.Apply("w") != "y" {
		t.Errorf("h = %v", h)
	}
	if Contains(q1, q2) || Contains(q2, q1) {
		t.Errorf("containment wrongly detected")
	}
	if ExistsBodyHomomorphism(q1, q2) {
		t.Errorf("reverse body-homomorphism wrongly detected")
	}
}

func TestExample9NoBodyHomomorphism(t *testing.T) {
	// Example 9: R4 only occurs in Q2, so there is no body-homomorphism
	// from Q2 to Q1.
	q1 := cq.MustParseCQ("Q1(x,y,w) <- R1(x,z), R2(z,y), R3(y,w).")
	q2 := cq.MustParseCQ("Q2(x,y,w) <- R1(x,y), R2(y,w), R4(y).")
	if ExistsBodyHomomorphism(q2, q1) {
		t.Errorf("body-homomorphism found despite missing symbol")
	}
}

func TestExample18BodyIsomorphism(t *testing.T) {
	// Example 18: Q1 and Q2 are body-isomorphic; Q3 has no body-hom to Q1.
	q1 := cq.MustParseCQ("Q1(x,y) <- R1(x,y), R2(y,u), R3(x,u).")
	q2 := cq.MustParseCQ("Q2(x,y) <- R1(y,v), R2(v,x), R3(y,x).")
	q3 := cq.MustParseCQ("Q3(x,y) <- R1(x,z), R2(y,z).")
	if !BodyIsomorphic(q1, q2) {
		t.Errorf("Q1, Q2 not body-isomorphic")
	}
	h, ok := FindBodyIsomorphism(q1, q2)
	if !ok {
		t.Fatalf("no isomorphism returned")
	}
	// h maps var(Q2) to var(Q1): R1(y,v) -> R1(x,y) forces y->x, v->y.
	if h.Apply("y") != "x" || h.Apply("v") != "y" || h.Apply("x") != "u" {
		t.Errorf("h = %v", h)
	}
	if ExistsBodyHomomorphism(q3, q1) {
		t.Errorf("body-hom Q3 -> Q1 wrongly found")
	}
	if BodyIsomorphic(q1, q3) {
		t.Errorf("Q1, Q3 wrongly body-isomorphic")
	}
}

func TestExample20BodyIsomorphismRewrite(t *testing.T) {
	// Example 20: Q1 and Q2 are body-isomorphic.
	q1 := cq.MustParseCQ("Q1(x,y,v) <- R1(x,z), R2(z,y), R3(y,v), R4(v,w).")
	q2 := cq.MustParseCQ("Q2(x,y,v) <- R1(w,v), R2(v,y), R3(y,z), R4(z,x).")
	h, ok := FindBodyIsomorphism(q1, q2)
	if !ok {
		t.Fatalf("Q1, Q2 not body-isomorphic")
	}
	// Rewriting Q1 via h⁻¹... here: h maps var(Q2)→var(Q1); applying h to
	// Q2's head (x,y,v) should give the paper's rewritten head (w? ...).
	// R1(w,v)->R1(x,z): w->x, v->z; R2(v,y)->R2(z,y): y->y; R3(y,z)->R3(y,v):
	// z->v; R4(z,x)->R4(v,w): x->w.
	if h.Apply("x") != "w" || h.Apply("y") != "y" || h.Apply("v") != "z" {
		t.Errorf("h = %v", h)
	}
}

func TestHomomorphismsPositionalHeads(t *testing.T) {
	q1 := cq.MustParseCQ("Q1(x) <- R(x,y).")
	q2 := cq.MustParseCQ("Q2(a) <- R(a,b).")
	homs := Homomorphisms(q1, q2)
	if len(homs) != 1 || homs[0].Apply("x") != "a" || homs[0].Apply("y") != "b" {
		t.Errorf("homs = %v", homs)
	}
	// Head arity mismatch yields none.
	q3 := cq.MustParseCQ("Q3(a,b) <- R(a,b).")
	if len(Homomorphisms(q1, q3)) != 0 {
		t.Errorf("arity mismatch produced homomorphisms")
	}
}

func TestHomomorphismRepeatedHeadVariable(t *testing.T) {
	// Q(x,x) requires both head positions to map consistently: x would need
	// images a and b simultaneously, so no homomorphism exists.
	q1 := cq.MustParseCQ("Q1(x,x) <- R(x).")
	q2 := cq.MustParseCQ("Q2(a,b) <- R(a), R(b).")
	if got := Homomorphisms(q1, q2); len(got) != 0 {
		t.Errorf("homs = %v, want none (conflicting head images)", got)
	}
	if Contains(q2, q1) {
		// Q2(a,b) has answers (a,b) with a≠b; Q1 cannot cover them.
		t.Errorf("Q2 ⊆ Q1 wrongly detected")
	}
	if !Contains(q1, q2) {
		t.Errorf("Q1 ⊆ Q2 not detected")
	}
}

func TestSelfJoinTargets(t *testing.T) {
	// Self-joins in the target give multiple homomorphisms.
	from := cq.MustParseCQ("A(x) <- R(x,y).")
	to := cq.MustParseCQ("B(u) <- R(u,v), R(v,w).")
	homs := BodyHomomorphisms(from, to)
	if len(homs) != 2 {
		t.Errorf("homs = %v", homs)
	}
}

func TestArityMismatchAtoms(t *testing.T) {
	from := cq.MustParseCQ("A(x) <- R(x,x).")
	to := cq.MustParseCQ("B(u) <- R(u,v,w).")
	if ExistsBodyHomomorphism(from, to) {
		t.Errorf("hom found across arity mismatch")
	}
}

func TestVirtualAtomsIgnored(t *testing.T) {
	from := cq.MustParseCQ("A(x) <- R(x,y).")
	to := cq.MustParseCQ("B(u) <- R(u,v).")
	// Add a virtual atom to `from`; it must not block the homomorphism.
	from.Atoms = append(from.Atoms, cq.Atom{Rel: "P0", Vars: []cq.Variable{"x", "y"}, Virtual: true})
	if !ExistsBodyHomomorphism(from, to) {
		t.Errorf("virtual atom blocked body-homomorphism")
	}
	// Virtual atoms in `to` are not valid targets.
	to2 := cq.MustParseCQ("B(u) <- S(u).")
	to2.Atoms = append(to2.Atoms, cq.Atom{Rel: "R", Vars: []cq.Variable{"u", "u"}, Virtual: true})
	if ExistsBodyHomomorphism(from, to2) {
		t.Errorf("virtual atom used as homomorphism target")
	}
}

func TestEquivalent(t *testing.T) {
	q1 := cq.MustParseCQ("Q1(x) <- R(x,y).")
	q2 := cq.MustParseCQ("Q2(a) <- R(a,b), R(a,c).")
	if !Equivalent(q1, q2) {
		t.Errorf("equivalent queries not detected")
	}
}

func TestSelectLemma16(t *testing.T) {
	// Example 18: Q1 and Q2 body-isomorphic, Q3 unrelated. Any of the three
	// satisfies the conditions vacuously or via isomorphism; verify the
	// returned query satisfies Lemma 16's property.
	u := cq.MustParse(`
		Q1(x,y) <- R1(x,y), R2(y,u), R3(x,u).
		Q2(x,y) <- R1(y,v), R2(v,x), R3(y,x).
		Q3(x,y) <- R1(x,z), R2(y,z).
	`)
	idx := SelectLemma16(u)
	q1 := u.CQs[idx]
	for i, qi := range u.CQs {
		if i == idx {
			continue
		}
		if ExistsBodyHomomorphism(qi, q1) && !BodyIsomorphic(q1, qi) {
			t.Errorf("selected CQ %d violates Lemma 16 against %d", idx, i)
		}
	}
}

func TestSelectLemma16Chain(t *testing.T) {
	// Q2 maps into Q1 (Example 2) but not conversely, so the selection must
	// be Q1... wait: Lemma 16 wants a query such that anything mapping INTO
	// it is isomorphic; Q1 receives Q2's body-hom, so the valid choice is
	// the sink of the chain, Q2.
	u := cq.MustParse(`
		Q1(x,y,w) <- R1(x,z), R2(z,y), R3(y,w).
		Q2(x,y,w) <- R1(x,y), R2(y,w).
	`)
	idx := SelectLemma16(u)
	if idx != 1 {
		t.Errorf("SelectLemma16 = %d, want 1 (Q2)", idx)
	}
}

func TestBodyHomomorphismDeterminism(t *testing.T) {
	from := cq.MustParseCQ("A(x) <- R(x,y).")
	to := cq.MustParseCQ("B(u) <- R(u,v), R(v,w).")
	a := BodyHomomorphisms(from, to)
	b := BodyHomomorphisms(from, to)
	if len(a) != len(b) {
		t.Fatalf("non-deterministic count")
	}
	for i := range a {
		for v, u := range a[i] {
			if b[i][v] != u {
				t.Errorf("non-deterministic order")
			}
		}
	}
}
