// Package matrix provides Boolean matrices for the mat-mul hypothesis
// experiments: the lower-bound reductions of Lemma 25, Theorem 33 and
// Example 20 encode Boolean matrix multiplication into UCQ evaluation, and
// the experiment harness compares the UCQ route against this package's
// direct product.
package matrix

import (
	"fmt"
	"math/bits"
	"math/rand"
)

// Bool is an n×n Boolean matrix with bitset rows.
type Bool struct {
	n    int
	rows [][]uint64
}

// New creates the zero n×n matrix.
func New(n int) *Bool {
	if n < 0 {
		panic("matrix: negative dimension")
	}
	words := (n + 63) / 64
	rows := make([][]uint64, n)
	for i := range rows {
		rows[i] = make([]uint64, words)
	}
	return &Bool{n: n, rows: rows}
}

// N returns the dimension.
func (m *Bool) N() int { return m.n }

// Set writes a 1 at (i, j).
func (m *Bool) Set(i, j int) {
	if i < 0 || j < 0 || i >= m.n || j >= m.n {
		panic(fmt.Sprintf("matrix: index (%d,%d) out of range", i, j))
	}
	m.rows[i][j/64] |= 1 << (j % 64)
}

// Get reads the bit at (i, j).
func (m *Bool) Get(i, j int) bool {
	if i < 0 || j < 0 || i >= m.n || j >= m.n {
		return false
	}
	return m.rows[i][j/64]&(1<<(j%64)) != 0
}

// Ones counts the 1-entries.
func (m *Bool) Ones() int {
	total := 0
	for _, row := range m.rows {
		for _, w := range row {
			total += bits.OnesCount64(w)
		}
	}
	return total
}

// Pairs lists the coordinates of the 1-entries.
func (m *Bool) Pairs() [][2]int {
	var out [][2]int
	for i := 0; i < m.n; i++ {
		for w, word := range m.rows[i] {
			for word != 0 {
				j := w*64 + bits.TrailingZeros64(word)
				word &= word - 1
				out = append(out, [2]int{i, j})
			}
		}
	}
	return out
}

// Multiply returns the Boolean product m·other: out[i][j] = ⋁_k m[i][k] ∧
// other[k][j]. This is the direct baseline (word-parallel cubic) the
// reductions race against.
func (m *Bool) Multiply(other *Bool) *Bool {
	if m.n != other.n {
		panic("matrix: dimension mismatch")
	}
	out := New(m.n)
	for i := 0; i < m.n; i++ {
		for k := 0; k < m.n; k++ {
			if !m.Get(i, k) {
				continue
			}
			dst := out.rows[i]
			src := other.rows[k]
			for w := range dst {
				dst[w] |= src[w]
			}
		}
	}
	return out
}

// Equal reports entry-wise equality.
func (m *Bool) Equal(other *Bool) bool {
	if m.n != other.n {
		return false
	}
	for i := range m.rows {
		for w := range m.rows[i] {
			if m.rows[i][w] != other.rows[i][w] {
				return false
			}
		}
	}
	return true
}

// Random samples an n×n matrix with the given 1-density deterministically.
func Random(n int, density float64, seed int64) *Bool {
	m := New(n)
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if rng.Float64() < density {
				m.Set(i, j)
			}
		}
	}
	return m
}
