package matrix

import "testing"

func TestSetGet(t *testing.T) {
	m := New(70) // spans more than one word
	m.Set(0, 0)
	m.Set(69, 69)
	m.Set(3, 64)
	if !m.Get(0, 0) || !m.Get(69, 69) || !m.Get(3, 64) {
		t.Errorf("set bits missing")
	}
	if m.Get(0, 1) || m.Get(-1, 0) || m.Get(0, 99) {
		t.Errorf("phantom bits")
	}
	if m.Ones() != 3 {
		t.Errorf("Ones = %d", m.Ones())
	}
	pairs := m.Pairs()
	if len(pairs) != 3 {
		t.Errorf("Pairs = %v", pairs)
	}
}

// bruteMultiply is the triple-loop reference.
func bruteMultiply(a, b *Bool) *Bool {
	out := New(a.N())
	for i := 0; i < a.N(); i++ {
		for j := 0; j < a.N(); j++ {
			for k := 0; k < a.N(); k++ {
				if a.Get(i, k) && b.Get(k, j) {
					out.Set(i, j)
					break
				}
			}
		}
	}
	return out
}

func TestMultiplyAgainstBrute(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		a := Random(33, 0.2, seed)
		b := Random(33, 0.25, seed+100)
		got := a.Multiply(b)
		want := bruteMultiply(a, b)
		if !got.Equal(want) {
			t.Errorf("seed %d: product mismatch", seed)
		}
	}
}

func TestMultiplyIdentityAndZero(t *testing.T) {
	n := 20
	id := New(n)
	for i := 0; i < n; i++ {
		id.Set(i, i)
	}
	a := Random(n, 0.3, 1)
	if !a.Multiply(id).Equal(a) || !id.Multiply(a).Equal(a) {
		t.Errorf("identity law broken")
	}
	zero := New(n)
	if a.Multiply(zero).Ones() != 0 {
		t.Errorf("zero law broken")
	}
}

func TestEqual(t *testing.T) {
	a := Random(10, 0.5, 2)
	b := Random(10, 0.5, 2)
	if !a.Equal(b) {
		t.Errorf("same seed matrices differ")
	}
	b.Set(0, 0)
	a2 := New(10)
	if a.Equal(a2) && a.Ones() != 0 {
		t.Errorf("unequal matrices reported equal")
	}
	if a.Equal(New(11)) {
		t.Errorf("dimension mismatch reported equal")
	}
}

func TestRandomDensity(t *testing.T) {
	m := Random(100, 0.5, 7)
	ones := m.Ones()
	if ones < 4000 || ones > 6000 {
		t.Errorf("density off: %d ones of 10000", ones)
	}
}

func TestPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("no panic on out-of-range Set")
		}
	}()
	New(5).Set(5, 0)
}
