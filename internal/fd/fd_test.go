package fd

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/baseline"
	"repro/internal/classify"
	"repro/internal/cq"
	"repro/internal/database"
	"repro/internal/enumeration"
)

// matMulQuery is the canonical intractable CQ: Q(x,y) <- R1(x,z), R2(z,y).
const matMulQuery = "Q(x,y) <- R1(x,z), R2(z,y)."

func TestNewSetValidation(t *testing.T) {
	if _, err := NewSet(FD{Rel: "", From: []int{0}, To: 1}); err == nil {
		t.Errorf("empty relation accepted")
	}
	if _, err := NewSet(FD{Rel: "R", From: nil, To: 1}); err == nil {
		t.Errorf("empty determinant accepted")
	}
	if _, err := NewSet(FD{Rel: "R", From: []int{-1}, To: 1}); err == nil {
		t.Errorf("negative position accepted")
	}
	if _, err := NewSet(FD{Rel: "R", From: []int{0}, To: -1}); err == nil {
		t.Errorf("negative target accepted")
	}
	s := MustSet(FD{Rel: "R", From: []int{0}, To: 1})
	if len(s.All()) != 1 {
		t.Errorf("All = %v", s.All())
	}
	if got := (FD{Rel: "R", From: []int{0, 1}, To: 2}).String(); got != "R: 0,1 -> 2" {
		t.Errorf("String = %q", got)
	}
}

func TestValidateAgainstSchema(t *testing.T) {
	u := cq.MustParse(matMulQuery)
	ok := MustSet(FD{Rel: "R1", From: []int{0}, To: 1})
	if err := ok.Validate(u); err != nil {
		t.Errorf("valid FD rejected: %v", err)
	}
	bad := MustSet(FD{Rel: "R1", From: []int{0}, To: 5})
	if err := bad.Validate(u); err == nil {
		t.Errorf("out-of-range FD accepted")
	}
	unused := MustSet(FD{Rel: "ZZZ", From: []int{0}, To: 9})
	if err := unused.Validate(u); err != nil {
		t.Errorf("FD on unused relation rejected: %v", err)
	}
}

func TestHolds(t *testing.T) {
	s := MustSet(FD{Rel: "R", From: []int{0}, To: 1})
	good := database.NewInstance()
	r := database.NewRelation("R", 2)
	r.AppendInts(1, 10)
	r.AppendInts(2, 20)
	r.AppendInts(1, 10) // duplicate row is fine
	good.AddRelation(r)
	if err := s.Holds(good); err != nil {
		t.Errorf("satisfying instance rejected: %v", err)
	}
	bad := database.NewInstance()
	r2 := database.NewRelation("R", 2)
	r2.AppendInts(1, 10)
	r2.AppendInts(1, 11)
	bad.AddRelation(r2)
	if err := s.Holds(bad); err == nil {
		t.Errorf("violating instance accepted")
	}
}

func TestFreeClosureAndExtend(t *testing.T) {
	q := cq.MustParseCQ(matMulQuery)
	// FD R1: x → z puts z into the closure.
	s := MustSet(FD{Rel: "R1", From: []int{0}, To: 1})
	closure := s.FreeClosure(q)
	if !closure.Equal(cq.NewVarSet("x", "y", "z")) {
		t.Errorf("closure = %v", closure)
	}
	ext := s.ExtendCQ(q)
	if len(ext.Head) != 3 || ext.Head[2] != "z" {
		t.Errorf("extended head = %v", ext.Head)
	}
	// Transitive closure through two FDs.
	q2 := cq.MustParseCQ("Q(x) <- R1(x,z), R2(z,y).")
	s2 := MustSet(
		FD{Rel: "R1", From: []int{0}, To: 1},
		FD{Rel: "R2", From: []int{0}, To: 1},
	)
	if got := s2.FreeClosure(q2); !got.Equal(cq.NewVarSet("x", "y", "z")) {
		t.Errorf("transitive closure = %v", got)
	}
}

func TestRemark2TractabilityFlip(t *testing.T) {
	// The matrix-multiplication query is intractable in general but
	// FD-free-connex when R1's first column determines its second.
	q := cq.MustParseCQ(matMulQuery)
	if classify.ClassifyCQ(q) != classify.AcyclicNotFreeConnex {
		t.Fatalf("expected the query to be non-free-connex without FDs")
	}
	s := MustSet(FD{Rel: "R1", From: []int{0}, To: 1})
	if !s.IsFDFreeConnex(q) {
		t.Errorf("FD-extension should be free-connex")
	}
	// An FD in the wrong direction (z → y: the determinant is not in the
	// closure) does not help.
	s2 := MustSet(FD{Rel: "R2", From: []int{0}, To: 1})
	if s2.IsFDFreeConnex(q) {
		t.Errorf("irrelevant FD should not make the query free-connex")
	}
}

// fdInstance builds a random instance in which R1 satisfies x → z (each x
// has one z) and R2 is arbitrary.
func fdInstance(rng *rand.Rand, n int) *database.Instance {
	inst := database.NewInstance()
	r1 := database.NewRelation("R1", 2)
	zOf := make(map[int64]int64)
	for i := 0; i < n; i++ {
		x := rng.Int63n(int64(n))
		z, ok := zOf[x]
		if !ok {
			z = rng.Int63n(8)
			zOf[x] = z
		}
		r1.AppendInts(x, z)
	}
	r1.Dedup()
	r2 := database.NewRelation("R2", 2)
	for i := 0; i < n; i++ {
		r2.AppendInts(rng.Int63n(8), rng.Int63n(int64(n)))
	}
	r2.Dedup()
	inst.AddRelation(r1)
	inst.AddRelation(r2)
	return inst
}

func TestEnumerateCQMatchesBaseline(t *testing.T) {
	q := cq.MustParseCQ(matMulQuery)
	s := MustSet(FD{Rel: "R1", From: []int{0}, To: 1})
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		inst := fdInstance(rng, 30)
		it, err := s.EnumerateCQ(q, inst)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		got := enumeration.Collect(it)
		seen := make(map[string]bool)
		for _, g := range got {
			if seen[g.Key()] {
				t.Fatalf("trial %d: duplicate %v", trial, g)
			}
			seen[g.Key()] = true
		}
		want, err := baseline.EvalCQ(q, inst)
		if err != nil {
			t.Fatalf("baseline: %v", err)
		}
		if len(got) != want.Len() {
			t.Fatalf("trial %d: %d answers, want %d", trial, len(got), want.Len())
		}
		for i := 0; i < want.Len(); i++ {
			if !seen[want.Row(i).Key()] {
				t.Fatalf("trial %d: missing %v", trial, want.Row(i))
			}
		}
	}
}

func TestEnumerateCQRejectsViolations(t *testing.T) {
	q := cq.MustParseCQ(matMulQuery)
	s := MustSet(FD{Rel: "R1", From: []int{0}, To: 1})
	bad := database.NewInstance()
	r1 := database.NewRelation("R1", 2)
	r1.AppendInts(1, 10)
	r1.AppendInts(1, 11)
	bad.AddRelation(r1)
	r2 := database.NewRelation("R2", 2)
	bad.AddRelation(r2)
	if _, err := s.EnumerateCQ(q, bad); err == nil || !strings.Contains(err.Error(), "violated") {
		t.Errorf("violating instance accepted: %v", err)
	}
}

func TestEnumerateCQRejectsNonConnexExtension(t *testing.T) {
	q := cq.MustParseCQ(matMulQuery)
	s := MustSet(FD{Rel: "R2", From: []int{0}, To: 1}) // z → y: does not help
	inst := database.NewInstance()
	r1 := database.NewRelation("R1", 2)
	r1.AppendInts(1, 2)
	inst.AddRelation(r1)
	r2 := database.NewRelation("R2", 2)
	r2.AppendInts(2, 3)
	inst.AddRelation(r2)
	if _, err := s.EnumerateCQ(q, inst); err == nil {
		t.Errorf("non-free-connex FD-extension accepted")
	}
}

func TestFDOnHigherArityAtoms(t *testing.T) {
	// R(a,b,c) with ab → c: Q(a,b) <- R(a,b,c), S(c) has closure {a,b,c}.
	q := cq.MustParseCQ("Q(a,b) <- R(a,b,c), S(c).")
	s := MustSet(FD{Rel: "R", From: []int{0, 1}, To: 2})
	if got := s.FreeClosure(q); !got.Equal(cq.NewVarSet("a", "b", "c")) {
		t.Errorf("closure = %v", got)
	}
	if !s.IsFDFreeConnex(q) {
		t.Errorf("extension should be free-connex")
	}
}
