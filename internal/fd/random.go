package fd

import (
	"math/rand"

	"repro/internal/cq"
	"repro/internal/database"
)

// RandomSet draws a random set of functional dependencies over the
// union's schema: each relation of arity ≥ 2 carries an FD with
// probability ~1/2 (and occasionally a second one), with a random
// determinant set and target position. Paired with Enforce it feeds the
// FD-aware arm of the cross-engine equivalence harness, exercising the
// Remark 2 machinery: free-closure computation, FD-extension, and
// enumeration through the extended query.
func RandomSet(rng *rand.Rand, u *cq.UCQ) *Set {
	var fds []FD
	for _, d := range u.Schema() {
		if d.Arity < 2 {
			continue
		}
		n := 0
		switch rng.Intn(4) {
		case 0, 1:
			n = 1
		case 2:
			n = 2
		}
		for i := 0; i < n; i++ {
			to := rng.Intn(d.Arity)
			var from []int
			for c := 0; c < d.Arity; c++ {
				if c != to && (len(from) == 0 || rng.Intn(2) == 0) {
					from = append(from, c)
				}
			}
			fds = append(fds, FD{Rel: d.Name, From: from, To: to})
		}
	}
	set, err := NewSet(fds...)
	if err != nil {
		// By construction determinants are non-empty and positions valid.
		panic(err)
	}
	return set
}

// Enforce returns a copy of inst in which every FD of the set holds: for
// each FD, rows disagreeing with the first-seen target value of their
// determinant are dropped. Dropping rows never introduces a violation of
// another FD, so one pass per FD suffices and the result always satisfies
// the whole set. Relations without FDs are shared, not copied.
func (s *Set) Enforce(inst *database.Instance) *database.Instance {
	out := inst.ShallowClone()
	for rel, relFDs := range s.byRel {
		r := inst.Relation(rel)
		if r == nil {
			continue
		}
		for _, f := range relFDs {
			if f.To >= r.Arity() {
				continue
			}
			ok := true
			for _, c := range f.From {
				if c >= r.Arity() {
					ok = false
				}
			}
			if !ok {
				continue
			}
			kept := database.NewRelation(r.Name, r.Arity())
			seen := database.NewTupleSet(r.Len())
			targets := make([]database.Value, 0, r.Len())
			key := make(database.Tuple, len(f.From))
			for i := 0; i < r.Len(); i++ {
				row := r.Row(i)
				for j, c := range f.From {
					key[j] = row[c]
				}
				e, fresh := seen.Add(key)
				if fresh {
					targets = append(targets, row[f.To])
				} else if targets[e] != row[f.To] {
					continue // violator: drop
				}
				kept.Append(row...)
			}
			r = kept
		}
		out.AddRelation(r)
	}
	return out
}
