// Package fd implements the functional-dependency machinery referenced by
// Remark 2 of the paper: when the schema carries functional dependencies,
// some CQs that are intractable in general become tractable, because the
// FD-extension of the query (Carmeli & Kröll, "Enumeration Complexity of
// Conjunctive Queries with Functional Dependencies", ICDT 2018) may be
// free-connex even when the query itself is not.
//
// An FD R: X → y (X a set of positions of R, y a position) asserts that in
// every relation instance, tuples agreeing on X agree on y. For a query Q,
// the free closure is the least superset F of free(Q) such that for every
// atom R(v⃗) and FD R: X → y with v⃗[X] ⊆ F, also v⃗[y] ∈ F. Extending the
// head by the closure preserves enumeration complexity: on instances
// satisfying the FDs, the implied variables are functions of the free
// variables, so Q⁺'s answers project bijectively onto Q's.
//
// Remark 2: for a UCQ over a schema with FDs, first FD-extend every CQ,
// then look for union extensions. This package provides the CQ-level
// machinery (closure, extension, validation, enumeration); the union-level
// combination is exposed through EnumerateCQ and the classification helper.
package fd

import (
	"fmt"

	"repro/internal/cq"
	"repro/internal/database"
	"repro/internal/enumeration"
	"repro/internal/hypergraph"
	"repro/internal/yannakakis"
)

// FD is a functional dependency R: From → To over positions (0-based) of
// relation R.
type FD struct {
	Rel  string
	From []int
	To   int
}

// String renders the FD as R: 0,1 -> 2.
func (f FD) String() string {
	s := f.Rel + ": "
	for i, c := range f.From {
		if i > 0 {
			s += ","
		}
		s += fmt.Sprintf("%d", c)
	}
	return s + fmt.Sprintf(" -> %d", f.To)
}

// Set is a collection of FDs, indexed by relation.
type Set struct {
	byRel map[string][]FD
}

// NewSet builds an FD set, validating positions are non-negative.
func NewSet(fds ...FD) (*Set, error) {
	s := &Set{byRel: make(map[string][]FD)}
	for _, f := range fds {
		if f.Rel == "" {
			return nil, fmt.Errorf("fd: empty relation name")
		}
		if f.To < 0 {
			return nil, fmt.Errorf("fd: negative target position in %s", f)
		}
		if len(f.From) == 0 {
			return nil, fmt.Errorf("fd: %s has an empty determinant", f)
		}
		for _, c := range f.From {
			if c < 0 {
				return nil, fmt.Errorf("fd: negative source position in %s", f)
			}
		}
		s.byRel[f.Rel] = append(s.byRel[f.Rel], f)
	}
	return s, nil
}

// MustSet is NewSet panicking on error.
func MustSet(fds ...FD) *Set {
	s, err := NewSet(fds...)
	if err != nil {
		panic(err)
	}
	return s
}

// All returns every FD in the set.
func (s *Set) All() []FD {
	var out []FD
	for _, fds := range s.byRel {
		out = append(out, fds...)
	}
	return out
}

// Validate checks that every FD's positions fit its relation's arity as
// used in the query.
func (s *Set) Validate(u *cq.UCQ) error {
	arity := make(map[string]int)
	for _, d := range u.Schema() {
		arity[d.Name] = d.Arity
	}
	for rel, fds := range s.byRel {
		a, ok := arity[rel]
		if !ok {
			continue // FDs on unused relations are harmless
		}
		for _, f := range fds {
			if f.To >= a {
				return fmt.Errorf("fd: %s targets position %d of arity-%d relation", f, f.To, a)
			}
			for _, c := range f.From {
				if c >= a {
					return fmt.Errorf("fd: %s reads position %d of arity-%d relation", f, c, a)
				}
			}
		}
	}
	return nil
}

// Holds reports whether the instance satisfies every FD of the set (for
// relations present in the instance).
func (s *Set) Holds(inst *database.Instance) error {
	for rel, fds := range s.byRel {
		r := inst.Relation(rel)
		if r == nil {
			continue
		}
		for _, f := range fds {
			if f.To >= r.Arity() {
				return fmt.Errorf("fd: %s targets position %d of arity-%d relation", f, f.To, r.Arity())
			}
			// Determinants are interned in a TupleSet; targets[e] records the
			// target value first seen for determinant entry e.
			seen := database.NewTupleSet(r.Len())
			targets := make([]database.Value, 0, r.Len())
			key := make(database.Tuple, len(f.From))
			for i := 0; i < r.Len(); i++ {
				row := r.Row(i)
				for j, c := range f.From {
					if c >= r.Arity() {
						return fmt.Errorf("fd: %s reads position %d of arity-%d relation", f, c, r.Arity())
					}
					key[j] = row[c]
				}
				e, fresh := seen.Add(key)
				if fresh {
					targets = append(targets, row[f.To])
				} else if targets[e] != row[f.To] {
					return fmt.Errorf("fd: %s violated by rows agreeing on the determinant with targets %v and %v",
						f, targets[e], row[f.To])
				}
			}
		}
	}
	return nil
}

// FreeClosure computes the least superset of free(Q) closed under the FDs:
// if an atom's determinant variables are all in the set, the determined
// variable joins it.
func (s *Set) FreeClosure(q *cq.CQ) cq.VarSet {
	closure := q.Free()
	for changed := true; changed; {
		changed = false
		for _, a := range q.Atoms {
			for _, f := range s.byRel[a.Rel] {
				if f.To >= len(a.Vars) {
					continue
				}
				all := true
				for _, c := range f.From {
					if c >= len(a.Vars) || !closure[a.Vars[c]] {
						all = false
						break
					}
				}
				if all && !closure[a.Vars[f.To]] {
					closure[a.Vars[f.To]] = true
					changed = true
				}
			}
		}
	}
	return closure
}

// ExtendCQ returns the FD-extension Q⁺: the same body with the head
// extended by the free closure (new variables appended in sorted order).
// On FD-satisfying instances, Q⁺'s answers are in bijection with Q's.
func (s *Set) ExtendCQ(q *cq.CQ) *cq.CQ {
	closure := s.FreeClosure(q)
	out := q.Clone()
	have := q.Free()
	for _, v := range closure.Sorted() {
		if !have[v] {
			out.Head = append(out.Head, v)
		}
	}
	return out
}

// IsFDFreeConnex reports whether the FD-extension of q is free-connex —
// the tractability condition of the FD-aware dichotomy that Remark 2
// builds on.
func (s *Set) IsFDFreeConnex(q *cq.CQ) bool {
	ext := s.ExtendCQ(q)
	return hypergraph.FromCQ(ext).IsSConnex(ext.Free())
}

// EnumerateCQ enumerates q over an FD-satisfying instance through its
// FD-extension: the extension is evaluated by the constant-delay engine
// and every answer is projected back onto q's head. The projection is
// bijective under the FDs, so the stream is duplicate-free with constant
// delay. It errors when the FD-extension is not free-connex or the
// instance violates an FD.
func (s *Set) EnumerateCQ(q *cq.CQ, inst *database.Instance) (enumeration.Iterator, error) {
	if err := s.Holds(inst); err != nil {
		return nil, err
	}
	ext := s.ExtendCQ(q)
	plan, err := yannakakis.Prepare(ext, inst, nil)
	if err != nil {
		return nil, fmt.Errorf("fd: FD-extension is not enumerable: %w", err)
	}
	it := plan.Iterator()
	headLen := len(q.Head)
	return enumeration.Func(func() (database.Tuple, bool) {
		if !it.Next() {
			return nil, false
		}
		full := it.HeadTuple()
		return full[:headLen], true
	}), nil
}
