package experiments

import (
	"strings"

	"repro/internal/classify"
	"repro/internal/paper"
)

// E9ClassifyGallery reproduces the paper's verdict on every worked example
// — the headline classification table.
func E9ClassifyGallery(Config) Table {
	t := Table{
		ID:    "E9",
		Title: "classification of every worked example in the paper",
		Paper: "Examples 1–39 with Theorems 3/4/12/17/29/33/35 and Lemmas 14/15",
		Claim: "the classifier reproduces the paper's verdict wherever it follows from a general theorem, and honestly reports Unknown on the ad-hoc and open cases",
		Columns: []string{
			"example", "paper verdict", "paper coverage", "classifier verdict", "classifier reason", "agreement",
		},
	}
	for _, ex := range paper.Gallery() {
		res, err := classify.ClassifyUCQ(ex.Query(), nil)
		if err != nil {
			t.Rows = append(t.Rows, []string{ex.Ref, ex.Verdict, ex.Coverage.String(), "ERROR", err.Error(), check(false)})
			continue
		}
		agree := false
		switch ex.Coverage {
		case paper.GeneralTheorem:
			agree = res.Verdict.String() == ex.Verdict
		case paper.AdHoc, paper.Open:
			// The classifier implements the general theorems only; Unknown
			// is the correct (and honest) output here.
			agree = res.Verdict == classify.Unknown
		}
		verdict := ex.Verdict
		if len(ex.Hypotheses) > 0 {
			verdict += " (" + strings.Join(ex.Hypotheses, ", ") + ")"
		}
		got := res.Verdict.String()
		if len(res.Hypotheses) > 0 {
			got += " (" + strings.Join(res.Hypotheses, ", ") + ")"
		}
		t.Rows = append(t.Rows, []string{
			ex.Ref, verdict, ex.Coverage.String(), got, shorten(res.Reason, 80), check(agree),
		})
	}
	t.Notes = append(t.Notes,
		"Ad-hoc rows (Examples 31, 37, 39) are proved intractable by example-specific reductions the paper itself presents outside its general theorems; experiments E5–E8 execute those reductions.",
		"Open rows (Examples 30, 38) are cases the paper explicitly leaves unresolved (Section 5).")
	return t
}

func shorten(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}
