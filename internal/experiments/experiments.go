// Package experiments regenerates every table and figure of the
// reproduction (EXPERIMENTS.md): constant-delay measurements for the
// paper's upper bounds, forward runs of the lower-bound reductions, the
// classification gallery, and the structural figures. cmd/ucq-experiments
// renders the output; bench_test.go at the repository root exposes each
// experiment as a Go benchmark.
package experiments

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// Config controls experiment sizes.
type Config struct {
	// Quick shrinks every workload for smoke runs.
	Quick bool
}

// Table is one experiment's result.
type Table struct {
	ID      string
	Title   string
	Paper   string // the paper artifact reproduced
	Claim   string // the claim being checked
	Columns []string
	Rows    [][]string
	Notes   []string
}

// RunAll executes every experiment.
func RunAll(cfg Config) []Table {
	return []Table{
		E1FreeConnexCQ(cfg),
		E2UnionTractable(cfg),
		E3Example2Union(cfg),
		E4Example13Recursive(cfg),
		E5MatMulShape(cfg),
		E6TriangleDecide(cfg),
		E7FourCliqueGadget(cfg),
		E8UnionGuardK4(cfg),
		E9ClassifyGallery(cfg),
		E10CheatersLemma(cfg),
		E11FunctionalDependencies(cfg),
		F1ConnexTree(cfg),
		F2Example2Extension(cfg),
		F3CliqueGadget(cfg),
	}
}

// RenderMarkdown writes the full EXPERIMENTS.md document.
func RenderMarkdown(w io.Writer, tables []Table, cfg Config) error {
	var b strings.Builder
	b.WriteString("# EXPERIMENTS — paper vs. measured\n\n")
	b.WriteString("Reproduction record for Carmeli & Kröll, *On the Enumeration Complexity of\n")
	b.WriteString("Unions of Conjunctive Queries* (PODS 2019). The paper is theoretical; its\n")
	b.WriteString("artifacts are worked examples, theorems and figures. Each experiment below\n")
	b.WriteString("reproduces one artifact: upper bounds are *measured* (preprocessing and\n")
	b.WriteString("delay as input scales), lower bounds are *executed* (the hardness reduction\n")
	b.WriteString("runs forward and is checked against a direct solver), and the\n")
	b.WriteString("classification table compares the classifier's verdict against the paper's\n")
	b.WriteString("on every worked example. Absolute times are machine-specific; the *shape*\n")
	b.WriteString("(what stays flat, what grows, who wins) is the reproduced result.\n\n")
	if cfg.Quick {
		b.WriteString("*(quick mode: reduced workload sizes)*\n\n")
	}
	b.WriteString("Regenerate with `go run ./cmd/ucq-experiments` (add `-quick` for a smoke\n")
	b.WriteString("run); the corresponding benchmarks live in `bench_test.go`.\n\n")
	for _, t := range tables {
		b.WriteString(fmt.Sprintf("## %s — %s\n\n", t.ID, t.Title))
		b.WriteString(fmt.Sprintf("**Paper artifact:** %s\n\n", t.Paper))
		b.WriteString(fmt.Sprintf("**Claim:** %s\n\n", t.Claim))
		if len(t.Columns) > 0 {
			b.WriteString("| " + strings.Join(t.Columns, " | ") + " |\n")
			sep := make([]string, len(t.Columns))
			for i := range sep {
				sep[i] = "---"
			}
			b.WriteString("| " + strings.Join(sep, " | ") + " |\n")
			for _, row := range t.Rows {
				b.WriteString("| " + strings.Join(row, " | ") + " |\n")
			}
			b.WriteString("\n")
		}
		for _, n := range t.Notes {
			b.WriteString("- " + n + "\n")
		}
		if len(t.Notes) > 0 {
			b.WriteString("\n")
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// --- small helpers shared by the experiment files ---

func ms(d time.Duration) string {
	return fmt.Sprintf("%.2f", float64(d.Microseconds())/1000.0)
}

func us(d time.Duration) string {
	return fmt.Sprintf("%.1f", float64(d.Nanoseconds())/1000.0)
}

func nsPer(d time.Duration, n int) string {
	if n == 0 {
		return "-"
	}
	return fmt.Sprintf("%.0f", float64(d.Nanoseconds())/float64(n))
}

func itoa(n int) string { return fmt.Sprintf("%d", n) }

func check(ok bool) string {
	if ok {
		return "✓"
	}
	return "✗ MISMATCH"
}
