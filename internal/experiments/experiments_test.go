package experiments

import (
	"strings"
	"testing"
)

// TestRunAllQuick executes every experiment in quick mode and checks the
// structural invariants: every table renders, every verification column
// agrees, and the markdown document is complete.
func TestRunAllQuick(t *testing.T) {
	tables := RunAll(Config{Quick: true})
	if len(tables) != 14 {
		t.Fatalf("got %d tables, want 14", len(tables))
	}
	ids := map[string]bool{}
	for _, tb := range tables {
		if tb.ID == "" || tb.Title == "" || tb.Paper == "" || tb.Claim == "" {
			t.Errorf("table %q missing metadata", tb.ID)
		}
		if ids[tb.ID] {
			t.Errorf("duplicate table id %s", tb.ID)
		}
		ids[tb.ID] = true
		for _, row := range tb.Rows {
			if len(row) != len(tb.Columns) {
				t.Errorf("%s: row width %d, columns %d", tb.ID, len(row), len(tb.Columns))
			}
			for _, cell := range row {
				if strings.Contains(cell, "MISMATCH") {
					t.Errorf("%s: verification failed in row %v", tb.ID, row)
				}
			}
		}
		for _, n := range tb.Notes {
			if strings.Contains(n, "FAILED") {
				t.Errorf("%s: %s", tb.ID, n)
			}
		}
	}
	var sb strings.Builder
	if err := RenderMarkdown(&sb, tables, Config{Quick: true}); err != nil {
		t.Fatalf("RenderMarkdown: %v", err)
	}
	doc := sb.String()
	for id := range ids {
		if !strings.Contains(doc, "## "+id+" ") {
			t.Errorf("markdown missing section %s", id)
		}
	}
	if !strings.Contains(doc, "paper vs. measured") {
		t.Errorf("markdown missing preamble")
	}
}

func TestGalleryTableAllAgree(t *testing.T) {
	tb := E9ClassifyGallery(Config{Quick: true})
	for _, row := range tb.Rows {
		if row[len(row)-1] != "✓" {
			t.Errorf("gallery row disagrees: %v", row)
		}
	}
	if len(tb.Rows) < 12 {
		t.Errorf("gallery has %d rows", len(tb.Rows))
	}
}

func TestHelperFormatting(t *testing.T) {
	if itoa(42) != "42" {
		t.Errorf("itoa broken")
	}
	if check(true) != "✓" || check(false) == "✓" {
		t.Errorf("check broken")
	}
	if nsPer(0, 0) != "-" {
		t.Errorf("nsPer zero-division guard broken")
	}
	if shorten("abc", 2) == "abc" {
		t.Errorf("shorten broken")
	}
}
