package experiments

import (
	"fmt"
	"time"

	"repro/internal/baseline"
	"repro/internal/cq"
	"repro/internal/database"
	"repro/internal/graph"
	"repro/internal/matrix"
	"repro/internal/reduction"
)

func naiveCount(u *cq.UCQ, inst *database.Instance) (int, error) {
	rel, err := baseline.EvalUCQ(u, inst)
	if err != nil {
		return 0, err
	}
	return rel.Len(), nil
}

// E5MatMulShape runs the Lemma 25 reduction forward on Example 20 and
// contrasts it with the tractable Example 21.
func E5MatMulShape(cfg Config) Table {
	sizes := []int{32, 64, 128}
	if cfg.Quick {
		sizes = []int{16, 32}
	}
	u := cq.MustParse(`
		Q1(x,y,v) <- R1(x,z), R2(z,y), R3(y,v), R4(v,w).
		Q2(x,y,v) <- R1(w,v), R2(v,y), R3(y,z), R4(z,x).
	`)
	t := Table{
		ID:    "E5",
		Title: "mat-mul shape: the Lemma 25 reduction on Example 20",
		Paper: "Lemma 25 / Example 20: an unguarded free-path lets the union compute Boolean matrix multiplication, with only O(n²) bystander answers",
		Claim: "decoding the union's answers yields exactly A·B; the non-target CQ stays within its 2n² bound",
		Columns: []string{
			"n", "|A·B| ones", "union answers", "bystanders ≤ 2n²", "direct BMM (ms)", "via UCQ (ms)", "products agree",
		},
	}
	enc, err := reduction.NewMatMulEncoding(u)
	if err != nil {
		t.Notes = append(t.Notes, "ENCODING FAILED: "+err.Error())
		return t
	}
	for _, n := range sizes {
		a := matrix.Random(n, 0.4, int64(n))
		b := matrix.Random(n, 0.4, int64(n)+7)

		startDirect := time.Now()
		want := a.Multiply(b)
		direct := time.Since(startDirect)

		startUCQ := time.Now()
		inst := enc.Instance(a, b)
		answers, err := baseline.EvalUCQ(u, inst)
		if err != nil {
			panic(err)
		}
		got := enc.DecodeProduct(answers, n)
		viaUCQ := time.Since(startUCQ)

		bystanders := answers.Len() - want.Ones()
		t.Rows = append(t.Rows, []string{
			itoa(n), itoa(want.Ones()), itoa(answers.Len()),
			check(bystanders <= enc.OtherAnswerBound(n)),
			ms(direct), ms(viaUCQ), check(got.Equal(want)),
		})
	}
	t.Notes = append(t.Notes,
		"If the union were in DelayClin, the O(n²)-bounded answer stream would multiply matrices in O(n²) — contradicting mat-mul; this run demonstrates the encoding is answer-exact.",
		"Example 21 (one more head variable) is the guarded twin: it is certified free-connex and enumerated by experiment E3's machinery instead.")
	return t
}

// E6TriangleDecide runs the Example 18 reduction: triangle detection
// through a union of intractable CQs.
func E6TriangleDecide(cfg Config) Table {
	sizes := []int{48, 96, 192}
	if cfg.Quick {
		sizes = []int{24, 48}
	}
	u := reduction.Example18Query()
	t := Table{
		ID:    "E6",
		Title: "hyperclique shape: triangle detection via Example 18",
		Paper: "Example 18 / Theorem 17: the tagged edge encoding makes Q1's answers the triangles, Q2's their rotations, and leaves Q3 empty",
		Claim: "the union decides triangle existence exactly as the direct algorithm",
		Columns: []string{
			"n", "edges", "triangles", "union answers", "direct (ms)", "via UCQ (ms)", "verdicts agree",
		},
	}
	for i, n := range sizes {
		g := graph.ErdosRenyi(n, 2.0/float64(n), int64(i+1))
		if i%2 == 1 {
			graph.PlantClique(g, 3, int64(i))
		}
		startDirect := time.Now()
		want := g.HasTriangle()
		direct := time.Since(startDirect)

		startUCQ := time.Now()
		inst := reduction.Example18Instance(g)
		answers, err := baseline.EvalUCQ(u, inst)
		if err != nil {
			panic(err)
		}
		pairs := reduction.Example18DecodeTriangles(answers)
		viaUCQ := time.Since(startUCQ)

		t.Rows = append(t.Rows, []string{
			itoa(n), itoa(g.M()), itoa(len(g.Triangles())), itoa(answers.Len()),
			ms(direct), ms(viaUCQ), check((len(pairs) > 0) == want),
		})
	}
	t.Notes = append(t.Notes,
		"Deciding a cyclic CQ in linear time would beat the hyperclique hypothesis (Theorem 3(3)); Lemma 15 lifts this to the union.")
	return t
}

// E7FourCliqueGadget runs the Example 22 / Lemma 26 reduction.
func E7FourCliqueGadget(cfg Config) Table {
	sizes := []int{16, 24, 32}
	if cfg.Quick {
		sizes = []int{12, 16}
	}
	u := reduction.Example22Query()
	t := Table{
		ID:    "E7",
		Title: "4-clique shape: the Lemma 26 gadget on Example 22",
		Paper: "Example 22 / Lemma 26 / Figure 3: triangles feed both relations; an answer with an (x,y) edge certifies a 4-clique",
		Claim: "the reduction's verdict matches the direct 4-clique test; the answer set stays O(n³)",
		Columns: []string{
			"n", "triangles", "|T| rows", "union answers", "direct (ms)", "via UCQ (ms)", "verdicts agree",
		},
	}
	for i, n := range sizes {
		g := graph.ErdosRenyi(n, 0.3, int64(i+10))
		if i%2 == 1 {
			graph.PlantClique(g, 4, int64(i+3))
		}
		startDirect := time.Now()
		want := g.HasFourClique()
		direct := time.Since(startDirect)

		startUCQ := time.Now()
		inst, tris := reduction.Example22Instance(g)
		answers, err := baseline.EvalUCQ(u, inst)
		if err != nil {
			panic(err)
		}
		got := reduction.Example22HasFourClique(g, answers)
		viaUCQ := time.Since(startUCQ)

		t.Rows = append(t.Rows, []string{
			itoa(n), itoa(tris), itoa(6 * tris), itoa(answers.Len()),
			ms(direct), ms(viaUCQ), check(got == want),
		})
	}
	return t
}

// E8UnionGuardK4 runs the Example 31 reduction (k = 4).
func E8UnionGuardK4(cfg Config) Table {
	sizes := []int{16, 24, 32}
	if cfg.Quick {
		sizes = []int{12, 16}
	}
	u := reduction.Example31Query()
	t := Table{
		ID:    "E8",
		Title: "union-guarded but not isolated: Example 31 at k = 4",
		Paper: "Example 31: the star union's O(n³) answers decide 4-clique; the case is outside Theorems 33/35 (guarded, not isolated)",
		Claim: "the reduction's verdict matches the direct 4-clique test",
		Columns: []string{
			"n", "edges", "union answers", "direct (ms)", "via UCQ (ms)", "verdicts agree",
		},
	}
	for i, n := range sizes {
		g := graph.ErdosRenyi(n, 0.3, int64(i+20))
		if i%2 == 0 {
			graph.PlantClique(g, 4, int64(i+5))
		}
		startDirect := time.Now()
		want := g.HasFourClique()
		direct := time.Since(startDirect)

		startUCQ := time.Now()
		inst := reduction.Example31Instance(g)
		answers, err := baseline.EvalUCQ(u, inst)
		if err != nil {
			panic(err)
		}
		got := reduction.Example31HasFourClique(g, answers)
		viaUCQ := time.Since(startUCQ)

		t.Rows = append(t.Rows, []string{
			itoa(n), itoa(g.M()), itoa(answers.Len()),
			ms(direct), ms(viaUCQ), check(got == want),
		})
	}
	t.Notes = append(t.Notes,
		"The same construction for k ≥ 5 stops short of the k-clique hypothesis bound — the paper leaves those orders open (Section 5.1).")
	return t
}

// F3CliqueGadget demonstrates the Figure 3 gadget on a concrete 4-clique.
func F3CliqueGadget(Config) Table {
	t := Table{
		ID:    "F3",
		Title: "the Example 22 gadget on a concrete 4-clique (Figure 3)",
		Paper: "Figure 3: an answer µ with (µ(x), µ(y)) ∈ E completes two edge-sharing triangles into a 4-clique",
		Claim: "on K4 plus a pendant vertex, the decoded witness is the planted clique",
	}
	g := graph.New(5)
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			g.MustAddEdge(i, j)
		}
	}
	g.MustAddEdge(3, 4) // pendant edge outside the clique
	inst, tris := reduction.Example22Instance(g)
	answers, err := baseline.EvalUCQ(reduction.Example22Query(), inst)
	if err != nil {
		t.Notes = append(t.Notes, "EVALUATION FAILED: "+err.Error())
		return t
	}
	found := reduction.Example22HasFourClique(g, answers)
	t.Notes = append(t.Notes,
		fmt.Sprintf("Graph: K4 on {0,1,2,3} plus pendant edge (3,4); %d triangles, %d union answers.", tris, answers.Len()),
		"Gadget verdict: 4-clique found — "+check(found),
		"Direct verdict agreement: "+check(found == g.HasFourClique()))
	return t
}
