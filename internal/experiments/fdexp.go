package experiments

import (
	"math/rand"
	"time"

	"repro/internal/baseline"
	"repro/internal/cq"
	"repro/internal/database"
	"repro/internal/fd"
)

// E11FunctionalDependencies demonstrates Remark 2: the matrix-multiplication
// query becomes constant-delay enumerable under an FD that determines the
// join variable, with answers matching the naive evaluator.
func E11FunctionalDependencies(cfg Config) Table {
	widths := []int{2000, 8000, 32000}
	if cfg.Quick {
		widths = []int{500, 2000}
	}
	q := cq.MustParseCQ("Q(x,y) <- R1(x,z), R2(z,y).")
	fds := fd.MustSet(fd.FD{Rel: "R1", From: []int{0}, To: 1})
	t := Table{
		ID:    "E11",
		Title: "functional dependencies flip the mat-mul query (Remark 2)",
		Paper: "Remark 2 / Carmeli & Kröll ICDT'18: FD-extensions precede union extensions; with R1: x→z the FD-extension Q(x,y,z) is free-connex",
		Claim: "under the FD, enumeration runs with flat per-answer cost and matches the naive evaluator; without it the CQ is the canonical mat-mul hard case",
		Columns: []string{
			"input values", "answers", "prep+enum (ms)", "ns/answer", "naive total (ms)", "answers agree",
		},
	}
	for wi, width := range widths {
		rng := rand.New(rand.NewSource(int64(wi + 1)))
		inst := fdMatMulInstance(rng, width)

		start := time.Now()
		it, err := fds.EnumerateCQ(q, inst)
		if err != nil {
			t.Notes = append(t.Notes, "ENUMERATION FAILED: "+err.Error())
			return t
		}
		count := 0
		for {
			if _, ok := it.Next(); !ok {
				break
			}
			count++
		}
		cd := time.Since(start)

		start = time.Now()
		want, err := baseline.EvalCQ(q, inst)
		if err != nil {
			panic(err)
		}
		naive := time.Since(start)

		t.Rows = append(t.Rows, []string{
			itoa(inst.Size()), itoa(count), ms(cd), nsPer(cd, count),
			ms(naive), check(count == want.Len()),
		})
	}
	t.Notes = append(t.Notes,
		"Without the FD, Theorem 3(2) makes this exact query the mat-mul lower-bound witness (see E5).")
	return t
}

// fdMatMulInstance builds R1 satisfying x→z and an arbitrary R2, sized so
// the output grows linearly with the input.
func fdMatMulInstance(rng *rand.Rand, width int) *database.Instance {
	inst := database.NewInstance()
	r1 := database.NewRelation("R1", 2)
	mid := int64(64)
	for x := int64(0); x < int64(width); x++ {
		r1.AppendInts(x, x%mid)
	}
	r2 := database.NewRelation("R2", 2)
	for i := 0; i < width; i++ {
		r2.AppendInts(rng.Int63n(mid), rng.Int63n(int64(width)))
	}
	r2.Dedup()
	inst.AddRelation(r1)
	inst.AddRelation(r2)
	return inst
}
