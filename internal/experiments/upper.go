package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/cq"
	"repro/internal/database"
	"repro/internal/enumeration"
	"repro/internal/hypergraph"
	"repro/internal/workload"
	"repro/internal/yannakakis"
)

// E1FreeConnexCQ measures the CDY engine on a free-connex CQ: linear
// preprocessing, constant delay (Theorem 3(1)).
func E1FreeConnexCQ(cfg Config) Table {
	widths := []int{2000, 8000, 32000}
	if cfg.Quick {
		widths = []int{500, 2000}
	}
	q := cq.MustParseCQ("Q(x,y,w) <- R1(x,y), R2(y,w).")
	t := Table{
		ID:    "E1",
		Title: "free-connex CQ enumeration",
		Paper: "Theorem 3(1): free-connex CQs are in DelayClin (CDY algorithm)",
		Claim: "preprocessing grows linearly with the input; per-answer delay stays flat",
		Columns: []string{
			"input values", "answers", "preprocessing (ms)",
			"prep ns/input", "mean delay (ns)", "p99 delay (ns)", "max delay (µs)",
		},
	}
	for _, w := range widths {
		inst := workload.Chain([]string{"R1", "R2"}, []int{2, 2}, w, 2, 1)
		var plan *yannakakis.Plan
		st := enumeration.MeasureDelays(func() enumeration.Iterator {
			var err error
			plan, err = yannakakis.Prepare(q, inst, nil)
			if err != nil {
				panic(err)
			}
			it := plan.Iterator()
			return enumeration.Func(func() (database.Tuple, bool) {
				if !it.Next() {
					return nil, false
				}
				return it.HeadTuple(), true
			})
		})
		in := inst.Size()
		t.Rows = append(t.Rows, []string{
			itoa(in), itoa(st.Count), ms(st.Preprocessing),
			nsPer(st.Preprocessing, in), nsPer(st.MeanDelay, 1),
			nsPer(st.P99, 1), us(st.MaxDelay),
		})
	}
	t.Notes = append(t.Notes,
		"Measured: prep ns/input and mean delay stay near-constant while the input grows 16×, the DelayClin signature.")
	return t
}

// E2UnionTractable measures Algorithm 1 (Theorem 4) on a union of two
// free-connex CQs.
func E2UnionTractable(cfg Config) Table {
	widths := []int{2000, 8000, 32000}
	if cfg.Quick {
		widths = []int{500, 2000}
	}
	u := cq.MustParse(`
		Q1(x,y,w) <- R1(x,y), R2(y,w).
		Q2(x,y,w) <- R2(x,y), R3(y,w).
	`)
	t := Table{
		ID:    "E2",
		Title: "union of two free-connex CQs (Algorithm 1)",
		Paper: "Theorem 4 and Algorithm 1: unions of free-connex CQs are in DelayClin with constant working memory",
		Claim: "the two-iterator interleaving emits every answer exactly once with flat delay",
		Columns: []string{
			"input values", "answers", "preprocessing (ms)", "mean delay (ns)", "p99 delay (ns)", "max delay (µs)", "duplicate-free",
		},
	}
	for _, w := range widths {
		inst := workload.Chain([]string{"R1", "R2", "R3"}, []int{2, 2, 2}, w, 2, 2)
		seen := database.NewTupleSet(0)
		dupFree := true
		st := enumeration.MeasureDelays(func() enumeration.Iterator {
			it, err := core.NewAlgorithmOneUnion(u, inst)
			if err != nil {
				panic(err)
			}
			return enumeration.Func(func() (database.Tuple, bool) {
				tup, ok := it.Next()
				if ok && !seen.Insert(tup) {
					dupFree = false
				}
				return tup, ok
			})
		})
		t.Rows = append(t.Rows, []string{
			itoa(inst.Size()), itoa(st.Count), ms(st.Preprocessing),
			nsPer(st.MeanDelay, 1), nsPer(st.P99, 1), us(st.MaxDelay), check(dupFree),
		})
	}
	return t
}

// unionSeries measures a certified union against the naive evaluator.
func unionSeries(t *Table, u *cq.UCQ, builds []func() *database.Instance) {
	cert, ok := core.FindCertificate(u, nil)
	if !ok {
		t.Notes = append(t.Notes, "CERTIFICATE SEARCH FAILED")
		return
	}
	for _, build := range builds {
		inst := build()
		startPrep := time.Now()
		plan, err := core.NewUnionPlan(u, cert, inst)
		if err != nil {
			panic(err)
		}
		prep := time.Since(startPrep)
		startEnum := time.Now()
		it := plan.Iterator()
		count := 0
		for {
			if _, ok := it.Next(); !ok {
				break
			}
			count++
		}
		enum := time.Since(startEnum)

		startNaive := time.Now()
		naive, err := naiveCount(u, inst)
		if err != nil {
			panic(err)
		}
		naiveTime := time.Since(startNaive)

		t.Rows = append(t.Rows, []string{
			itoa(inst.Size()), itoa(count), ms(prep), nsPer(enum, count),
			ms(naiveTime), check(count == naive),
		})
	}
}

// E3Example2Union reproduces Example 2: the flagship tractable union with
// an intractable member CQ.
func E3Example2Union(cfg Config) Table {
	widths := []int{1000, 2000, 4000}
	if cfg.Quick {
		widths = []int{200, 400}
	}
	u := cq.MustParse(`
		Q1(x,y,w) <- R1(x,z), R2(z,y), R3(y,w).
		Q2(x,y,w) <- R1(x,y), R2(y,w).
	`)
	t := Table{
		ID:    "E3",
		Title: "Example 2: tractable union containing an intractable CQ",
		Paper: "Example 2, Theorem 12, Lemma 8: Q2 provides {x,z,y} to Q1",
		Claim: "the union enumerates with linear preprocessing and flat per-answer cost, matching the naive evaluator's answers",
		Columns: []string{
			"input values", "answers", "preprocessing (ms)", "enum ns/answer", "naive total (ms)", "answers agree",
		},
	}
	builds := make([]func() *database.Instance, 0, len(widths))
	for i, w := range widths {
		w, i := w, i
		builds = append(builds, func() *database.Instance {
			return workload.Example2Instance(w, 3, int64(i+1))
		})
	}
	unionSeries(&t, u, builds)
	t.Notes = append(t.Notes,
		"Preprocessing includes the Lemma 8 provider run that materialises Q1's virtual relation from Q2's answers.")
	return t
}

// E4Example13Recursive reproduces Example 13: a tractable union of only
// intractable CQs, requiring recursive union extensions.
func E4Example13Recursive(cfg Config) Table {
	widths := []int{500, 1000, 2000}
	if cfg.Quick {
		widths = []int{100, 200}
	}
	u := cq.MustParse(`
		Q1(x,y,v,u) <- R1(x,z1), R2(z1,z2), R3(z2,z3), R4(z3,y), R5(y,v,u).
		Q2(x,y,v,u) <- R1(x,y), R2(y,v), R3(v,z1), R4(z1,u), R5(u,t1,t2).
		Q3(x,y,v,u) <- R1(x,z1), R2(z1,y), R3(y,v), R4(v,u), R5(u,t1,t2).
	`)
	t := Table{
		ID:    "E4",
		Title: "Example 13: union of three intractable CQs, recursively extended",
		Paper: "Example 13: Q2 and Q3 provide to each other, then both provide to Q1",
		Claim: "all three CQs are intractable alone, yet the union enumerates with flat per-answer cost",
		Columns: []string{
			"input values", "answers", "preprocessing (ms)", "enum ns/answer", "naive total (ms)", "answers agree",
		},
	}
	builds := make([]func() *database.Instance, 0, len(widths))
	for i, w := range widths {
		w, i := w, i
		builds = append(builds, func() *database.Instance {
			return workload.Example13Instance(w, 2, int64(i+1))
		})
	}
	unionSeries(&t, u, builds)
	return t
}

// E10CheatersLemma demonstrates Lemma 5 on a synthetic bursty algorithm in
// the discrete step-cost model.
func E10CheatersLemma(cfg Config) Table {
	results, dup, stalls, stallLen := 2000, 3, 5, 20000
	if cfg.Quick {
		results, stallLen = 300, 3000
	}
	mk := func(i int) database.Tuple { return database.Tuple{database.V(int64(i))} }
	events := enumeration.BurstyEvents(results, dup, stalls, stallLen, mk)
	raw := enumeration.SimulateRaw(events)
	wrapped := enumeration.SimulateCheater(events, stalls, stallLen+2*dup, 2*dup, dup)
	t := Table{
		ID:    "E10",
		Title: "the Cheater's Lemma smooths bursty enumeration",
		Paper: "Lemma 5: n long delays and m-fold duplication become n·p preprocessing and m·d delay",
		Claim: "wrapping removes duplicates and caps the delay at m·d steps",
		Columns: []string{
			"schedule", "emissions", "max delay (steps)", "first emission (steps)",
		},
		Rows: [][]string{
			{"raw (duplicates, stalls)", itoa(len(raw)), itoa(raw.MaxDelay()), itoa(raw[0])},
			{"Lemma 5 wrapper", itoa(len(wrapped)), itoa(wrapped.MaxDelay()), itoa(wrapped[0])},
		},
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("Inner algorithm: %d distinct results duplicated %d×, %d stalls of %d steps; the wrapper emits each result once with delay ≤ m·d = %d steps after its n·p-step warm-up.",
			results, dup, stalls, stallLen, 2*dup*dup))
	return t
}

// F1ConnexTree reproduces Figure 1: the ext-{x,y,z}-connex tree.
func F1ConnexTree(Config) Table {
	h := hypergraph.FromVarSets(
		cq.NewVarSet("v", "w"),
		cq.NewVarSet("w", "y", "z"),
		cq.NewVarSet("x", "y"),
	)
	s := cq.NewVarSet("x", "y", "z")
	t := Table{
		ID:    "F1",
		Title: "ext-S-connex tree (Figure 1)",
		Paper: "Figure 1: an ext-{x,y,z}-connex tree for H = {vw, wyz, xy}",
		Claim: "the construction yields a join tree of an inclusive extension whose top covers exactly {x,y,z}",
	}
	ct, err := hypergraph.BuildConnexTree(h, s)
	if err != nil {
		t.Notes = append(t.Notes, "CONSTRUCTION FAILED: "+err.Error())
		return t
	}
	t.Notes = append(t.Notes, "Constructed tree (top nodes starred):")
	for _, line := range splitLines(ct.String()) {
		t.Notes = append(t.Notes, "`"+line+"`")
	}
	t.Notes = append(t.Notes, "Verification: "+check(ct.Verify(h) == nil))
	return t
}

// F2Example2Extension reproduces Figure 2: the connex trees certifying
// Example 2.
func F2Example2Extension(Config) Table {
	u := cq.MustParse(`
		Q1(x,y,w) <- R1(x,z), R2(z,y), R3(y,w).
		Q2(x,y,w) <- R1(x,y), R2(y,w).
	`)
	t := Table{
		ID:    "F2",
		Title: "union extension of Example 2 (Figure 2)",
		Paper: "Figure 2: {x,y,w}-connex trees for Q2 and for Q1 extended with R'(x,z,y)",
		Claim: "the certificate search recovers the paper's extension and both connex trees verify",
	}
	cert, ok := core.FindCertificate(u, nil)
	if !ok {
		t.Notes = append(t.Notes, "CERTIFICATE SEARCH FAILED")
		return t
	}
	t.Notes = append(t.Notes, "Certified extensions:")
	for _, line := range splitLines(cert.String()) {
		t.Notes = append(t.Notes, "`"+line+"`")
	}
	for i, e := range cert.Extensions {
		q := e.Query()
		ct, err := hypergraph.BuildConnexTree(hypergraph.FromCQ(q), q.Free())
		if err != nil {
			t.Notes = append(t.Notes, fmt.Sprintf("Q%d⁺ connex tree FAILED: %v", i+1, err))
			continue
		}
		t.Notes = append(t.Notes, fmt.Sprintf("Q%d⁺ free-connex tree (top starred):", i+1))
		for _, line := range splitLines(ct.String()) {
			t.Notes = append(t.Notes, "`"+line+"`")
		}
	}
	return t
}

func splitLines(s string) []string {
	var out []string
	for _, line := range splitOn(s, '\n') {
		if line != "" {
			out = append(out, line)
		}
	}
	return out
}

func splitOn(s string, sep byte) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == sep {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	out = append(out, s[start:])
	return out
}
