// Package storage is the durable dataset layer behind ucq-serve's
// -data-dir mode, plus the disk-backed dedup table the enumeration merge
// spills to when an answer set exceeds its memory budget.
//
// Durability follows a classic snapshot + write-ahead-log split: Register
// and Replace write the full instance as an atomically renamed snapshot
// file, AppendRows deltas go to a per-dataset WAL, and every record is
// length-prefixed, checksummed and fsynced before the write is
// acknowledged. Recovery loads the newest valid snapshot and replays the
// WAL in version order, stopping at the first torn or corrupt record — by
// the fsync-on-ack contract, everything past that point was never
// acknowledged to a client.
package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sort"

	"repro/internal/database"
)

// Record framing. Every durable write — a snapshot file's single record
// and each WAL append — is one length-prefixed, checksummed record:
//
//	magic   u32  recordMagic
//	length  u32  payload bytes (≤ maxRecordBytes)
//	crc     u32  CRC-32 (IEEE) of the payload
//	payload length bytes
//
// All integers are little-endian. A record whose magic, length or checksum
// does not hold is a torn tail: replay stops there and the tail is
// truncated away.
const (
	recordMagic  = 0x55435157 // "UCQW"
	recordHeader = 12
	// maxRecordBytes bounds one record's payload; anything larger is
	// treated as corruption rather than a 4 GiB allocation.
	maxRecordBytes = 1 << 28
)

// errTorn marks an incomplete or corrupt record tail.
var errTorn = errors.New("storage: torn or corrupt record")

// appendRecord appends the framed record for payload to dst.
func appendRecord(dst, payload []byte) []byte {
	var hdr [recordHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:], recordMagic)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[8:], crc32.ChecksumIEEE(payload))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// nextRecord slices one record's payload off buf, returning the payload and
// the bytes that follow it. It returns io.EOF on an empty buffer and
// errTorn when the leading bytes do not form a complete valid record.
func nextRecord(buf []byte) (payload, rest []byte, err error) {
	if len(buf) == 0 {
		return nil, nil, io.EOF
	}
	if len(buf) < recordHeader {
		return nil, nil, errTorn
	}
	if binary.LittleEndian.Uint32(buf[0:]) != recordMagic {
		return nil, nil, errTorn
	}
	n := binary.LittleEndian.Uint32(buf[4:])
	if n > maxRecordBytes || int(n) > len(buf)-recordHeader {
		return nil, nil, errTorn
	}
	payload = buf[recordHeader : recordHeader+int(n)]
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(buf[8:]) {
		return nil, nil, errTorn
	}
	return payload, buf[recordHeader+int(n):], nil
}

// Payload encodings. Snapshots and WAL appends share one relation-table
// layout:
//
//	version  u64
//	nrels    u32
//	per relation (sorted by name):
//	  nameLen u32, name bytes
//	  arity   u32
//	  nrows   u32
//	  nrows × arity value words (u64)
//
// Snapshot value words are raw database.Value bits (any word is a
// structurally valid Value, so decoding cannot fail on them). WAL append
// words are the wire-format int64 rows of Dataset.AppendRows and are
// payload-range-checked on decode, exactly like the HTTP wire codec.

// encodeInstance renders (version, inst) as a snapshot payload.
func encodeInstance(version uint64, inst *database.Instance) []byte {
	names := inst.Names()
	size := 8 + 4
	for _, name := range names {
		r := inst.Relation(name)
		size += 4 + len(name) + 4 + 4 + r.Len()*r.Arity()*8
	}
	out := make([]byte, 0, size)
	out = binary.LittleEndian.AppendUint64(out, version)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(names)))
	for _, name := range names {
		r := inst.Relation(name)
		out = binary.LittleEndian.AppendUint32(out, uint32(len(name)))
		out = append(out, name...)
		out = binary.LittleEndian.AppendUint32(out, uint32(r.Arity()))
		out = binary.LittleEndian.AppendUint32(out, uint32(r.Len()))
		for i := 0; i < r.Len(); i++ {
			for _, v := range r.Row(i) {
				out = binary.LittleEndian.AppendUint64(out, uint64(v))
			}
		}
	}
	return out
}

// decodeInstance parses a snapshot payload. It never panics on arbitrary
// bytes: every count is validated against the remaining length.
func decodeInstance(payload []byte) (uint64, *database.Instance, error) {
	c := cursor{buf: payload}
	version := c.u64()
	nrels := c.u32()
	inst := database.NewInstance()
	for i := uint32(0); i < nrels; i++ {
		name := c.str()
		arity := c.u32()
		nrows := c.u32()
		if c.err != nil {
			return 0, nil, c.err
		}
		if name == "" || arity > 1<<16 {
			return 0, nil, errTorn
		}
		if arity > 0 && uint64(nrows)*uint64(arity)*8 > uint64(len(c.buf)) {
			return 0, nil, errTorn
		}
		rel := database.NewRelation(name, int(arity))
		if arity == 0 {
			for r := uint32(0); r < nrows && r < 1; r++ {
				rel.Append()
			}
		} else {
			row := make([]database.Value, arity)
			for r := uint32(0); r < nrows; r++ {
				for k := range row {
					row[k] = database.Value(c.u64())
				}
				rel.Append(row...)
			}
		}
		inst.AddRelation(rel)
	}
	if c.err != nil {
		return 0, nil, c.err
	}
	if len(c.buf) != 0 {
		return 0, nil, errTorn
	}
	return version, inst, nil
}

// encodeAppend renders (version, wire rows) as a WAL append payload.
// Relations are written in sorted-name order; empty row lists are skipped,
// mirroring Dataset.AppendRows.
func encodeAppend(version uint64, rels map[string][][]int64) []byte {
	names := make([]string, 0, len(rels))
	for name := range rels {
		if len(rels[name]) > 0 {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	out := make([]byte, 0, 64)
	out = binary.LittleEndian.AppendUint64(out, version)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(names)))
	for _, name := range names {
		rows := rels[name]
		out = binary.LittleEndian.AppendUint32(out, uint32(len(name)))
		out = append(out, name...)
		out = binary.LittleEndian.AppendUint32(out, uint32(len(rows[0])))
		out = binary.LittleEndian.AppendUint32(out, uint32(len(rows)))
		for _, row := range rows {
			for _, v := range row {
				out = binary.LittleEndian.AppendUint64(out, uint64(v))
			}
		}
	}
	return out
}

// decodeAppend parses a WAL append payload back into wire rows. Values are
// payload-range-checked like the HTTP wire codec, so replay can rebuild
// relations without panicking; any inconsistency is reported as corruption.
func decodeAppend(payload []byte) (uint64, map[string][][]int64, error) {
	c := cursor{buf: payload}
	version := c.u64()
	nrels := c.u32()
	rels := make(map[string][][]int64)
	for i := uint32(0); i < nrels; i++ {
		name := c.str()
		arity := c.u32()
		nrows := c.u32()
		if c.err != nil {
			return 0, nil, c.err
		}
		if name == "" || arity == 0 || arity > 1<<16 || nrows == 0 {
			return 0, nil, errTorn
		}
		if uint64(nrows)*uint64(arity)*8 > uint64(len(c.buf)) {
			return 0, nil, errTorn
		}
		if _, dup := rels[name]; dup {
			return 0, nil, errTorn
		}
		rows := make([][]int64, nrows)
		for r := range rows {
			row := make([]int64, arity)
			for k := range row {
				v := int64(c.u64())
				if v > database.MaxPayload || v < database.MinPayload {
					return 0, nil, fmt.Errorf("storage: WAL value %d outside the payload range: %w", v, errTorn)
				}
				row[k] = v
			}
			rows[r] = row
		}
		rels[name] = rows
	}
	if c.err != nil {
		return 0, nil, c.err
	}
	if len(c.buf) != 0 {
		return 0, nil, errTorn
	}
	return version, rels, nil
}

// cursor is a bounds-checked little-endian reader; the first short read
// latches err and zeroes every later read.
type cursor struct {
	buf []byte
	err error
}

func (c *cursor) u32() uint32 {
	if c.err != nil || len(c.buf) < 4 {
		c.err = errTorn
		return 0
	}
	v := binary.LittleEndian.Uint32(c.buf)
	c.buf = c.buf[4:]
	return v
}

func (c *cursor) u64() uint64 {
	if c.err != nil || len(c.buf) < 8 {
		c.err = errTorn
		return 0
	}
	v := binary.LittleEndian.Uint64(c.buf)
	c.buf = c.buf[8:]
	return v
}

func (c *cursor) str() string {
	n := c.u32()
	if c.err != nil || n > 1<<16 || int(n) > len(c.buf) {
		c.err = errTorn
		return ""
	}
	s := string(c.buf[:n])
	c.buf = c.buf[n:]
	return s
}
