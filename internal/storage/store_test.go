package storage

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/database"
)

func mkInst(rows ...[3]int64) *database.Instance {
	inst := database.NewInstance()
	r := database.NewRelation("R", 2)
	s := database.NewRelation("S", 1)
	for _, row := range rows {
		r.AppendInts(row[0], row[1])
		s.AppendInts(row[2])
	}
	inst.AddRelation(r)
	inst.AddRelation(s)
	return inst
}

func instRows(t *testing.T, inst *database.Instance, name string) [][]database.Value {
	t.Helper()
	rel := inst.Relation(name)
	if rel == nil {
		t.Fatalf("relation %s missing", name)
	}
	var out [][]database.Value
	for i := 0; i < rel.Len(); i++ {
		out = append(out, database.Tuple(rel.Row(i)).Clone())
	}
	return out
}

func sameInstance(t *testing.T, got, want *database.Instance) {
	t.Helper()
	if !reflect.DeepEqual(got.Names(), want.Names()) {
		t.Fatalf("relation names %v, want %v", got.Names(), want.Names())
	}
	for _, name := range want.Names() {
		if g, w := instRows(t, got, name), instRows(t, want, name); !reflect.DeepEqual(g, w) {
			t.Fatalf("relation %s rows %v, want %v", name, g, w)
		}
	}
}

// TestStoreRoundtrip drives the full lifecycle — register, appends, replace,
// more appends — and checks a reopened store recovers the exact state.
func TestStoreRoundtrip(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.LogRegister("users", 1, mkInst([3]int64{1, 2, 7})); err != nil {
		t.Fatal(err)
	}
	if err := st.LogAppend("users", 2, map[string][][]int64{"R": {{3, 4}}}); err != nil {
		t.Fatal(err)
	}
	if err := st.LogAppend("users", 3, map[string][][]int64{"S": {{9}}, "T": {{5, 6, 7}}}); err != nil {
		t.Fatal(err)
	}
	if err := st.LogRegister("empty", 1, database.NewInstance()); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	got, err := st2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("recovered %d datasets, want 2", len(got))
	}
	if got[0].Name != "empty" || got[0].Version != 1 || got[0].Inst.TupleCount() != 0 {
		t.Fatalf("empty dataset recovered wrong: %+v", got[0])
	}
	u := got[1]
	if u.Name != "users" || u.Version != 3 {
		t.Fatalf("users recovered at %q v%d, want users v3", u.Name, u.Version)
	}
	want := mkInst([3]int64{1, 2, 7})
	want.Relation("R").AppendInts(3, 4)
	want.Relation("S").AppendInts(9)
	tr := database.NewRelation("T", 3)
	tr.AppendInts(5, 6, 7)
	want.AddRelation(tr)
	sameInstance(t, u.Inst, want)

	// The recovered store is immediately writable: the WAL handle is open
	// and positioned past the replayed records.
	if err := st2.LogAppend("users", 4, map[string][][]int64{"R": {{8, 8}}}); err != nil {
		t.Fatal(err)
	}
	st2.Close()
	st3, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st3.Close()
	got3, err := st3.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if got3[1].Version != 4 {
		t.Fatalf("version %d after recovered append, want 4", got3[1].Version)
	}
}

// TestStoreReplaceResetsWAL checks Replace folds the WAL into the snapshot
// and that appends past the replace replay on top of it.
func TestStoreReplaceResetsWAL(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.LogRegister("d", 1, mkInst([3]int64{1, 1, 1})); err != nil {
		t.Fatal(err)
	}
	if err := st.LogAppend("d", 2, map[string][][]int64{"R": {{2, 2}}}); err != nil {
		t.Fatal(err)
	}
	repl := mkInst([3]int64{5, 5, 5})
	if err := st.LogReplace("d", 3, repl); err != nil {
		t.Fatal(err)
	}
	if err := st.LogAppend("d", 4, map[string][][]int64{"R": {{6, 6}}}); err != nil {
		t.Fatal(err)
	}
	st.Close()

	st2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	got, err := st2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Version != 4 {
		t.Fatalf("recovered %+v, want one dataset at v4", got)
	}
	want := mkInst([3]int64{5, 5, 5})
	want.Relation("R").AppendInts(6, 6)
	sameInstance(t, got[0].Inst, want)
}

// TestStoreTornTail simulates a crash mid-append: garbage after the last
// fsynced record. Replay must recover the last acknowledged version, with
// no partial relation, and truncate the tail so the WAL is clean again.
func TestStoreTornTail(t *testing.T) {
	for _, tail := range [][]byte{
		{0xde},                   // lone garbage byte
		{0x57, 0x51, 0x43, 0x55}, // valid magic, truncated header
		appendRecord(nil, encodeAppend(9, map[string][][]int64{"R": {{1, 1}}}))[:20], // truncated record
		func() []byte { // bit-flipped payload
			rec := appendRecord(nil, encodeAppend(3, map[string][][]int64{"R": {{1, 1}}}))
			rec[len(rec)-1] ^= 0x40
			return rec
		}(),
	} {
		dir := t.TempDir()
		st, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		if err := st.LogRegister("d", 1, mkInst([3]int64{1, 2, 3})); err != nil {
			t.Fatal(err)
		}
		if err := st.LogAppend("d", 2, map[string][][]int64{"R": {{4, 5}}}); err != nil {
			t.Fatal(err)
		}
		st.Close()

		walPath := filepath.Join(dir, "ds-64", "wal.dat") // hex("d") = 64
		wal, err := os.ReadFile(walPath)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(walPath, append(wal, tail...), 0o644); err != nil {
			t.Fatal(err)
		}

		st2, err := Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		got, err := st2.Recover()
		if err != nil {
			t.Fatalf("tail %x: %v", tail, err)
		}
		if len(got) != 1 || got[0].Version != 2 {
			t.Fatalf("tail %x: recovered %+v, want v2", tail, got)
		}
		want := mkInst([3]int64{1, 2, 3})
		want.Relation("R").AppendInts(4, 5)
		sameInstance(t, got[0].Inst, want)
		if n := st2.Stats().TornTails; n != 1 {
			t.Fatalf("tail %x: TornTails = %d, want 1", tail, n)
		}
		st2.Close()

		// The torn tail was truncated: a third open sees a clean WAL.
		clean, err := os.ReadFile(walPath)
		if err != nil {
			t.Fatal(err)
		}
		if len(clean) != len(wal) {
			t.Fatalf("tail %x: WAL %d bytes after recovery, want %d", tail, len(clean), len(wal))
		}
	}
}

// TestStoreDrop checks LogDrop removes durable state.
func TestStoreDrop(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := st.LogRegister("d", 1, mkInst([3]int64{1, 2, 3})); err != nil {
		t.Fatal(err)
	}
	if err := st.LogDrop("d"); err != nil {
		t.Fatal(err)
	}
	got, err := st.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("recovered %+v after drop, want none", got)
	}
}

// TestStoreSkipsUnacknowledgedDir checks a dataset directory with no valid
// snapshot (crash before the snapshot rename) is cleaned up, not surfaced.
func TestStoreSkipsUnacknowledgedDir(t *testing.T) {
	dir := t.TempDir()
	junk := filepath.Join(dir, "ds-6a756e6b")
	if err := os.MkdirAll(junk, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(junk, "snap-1.dat"), []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	got, err := st.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("recovered %+v from junk dir, want none", got)
	}
	if _, err := os.Stat(junk); !os.IsNotExist(err) {
		t.Fatalf("junk dataset dir survived recovery: %v", err)
	}
}
