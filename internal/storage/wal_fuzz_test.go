package storage

import (
	"io"
	"testing"

	"repro/internal/database"
)

// FuzzWALRecord throws arbitrary bytes at the record framing and both
// payload decoders. The invariants: no panic, errors are clean, and any
// buffer the framing accepts must decode deterministically — a valid
// record round-trips through decode→encode unchanged semantics.
func FuzzWALRecord(f *testing.F) {
	f.Add([]byte{})
	f.Add(appendRecord(nil, encodeAppend(1, map[string][][]int64{"R": {{1, 2}}})))
	f.Add(appendRecord(nil, encodeAppend(7, map[string][][]int64{"S": {{-3}}, "T": {{4, 5, 6}}})))
	f.Add(appendRecord(nil, encodeInstance(2, database.NewInstance())))
	inst := database.NewInstance()
	rel := database.NewRelation("edge", 2)
	rel.AppendInts(10, 20)
	rel.AppendInts(30, 40)
	inst.AddRelation(rel)
	f.Add(appendRecord(nil, encodeInstance(3, inst)))
	f.Add(appendRecord(nil, []byte("not a relation table")))
	f.Add([]byte{0x57, 0x51, 0x43, 0x55, 0xff, 0xff, 0xff, 0x7f})

	f.Fuzz(func(t *testing.T, data []byte) {
		rest := data
		for depth := 0; depth < 64; depth++ {
			payload, next, err := nextRecord(rest)
			if err == io.EOF {
				if len(rest) != 0 {
					t.Fatalf("io.EOF with %d bytes left", len(rest))
				}
				return
			}
			if err != nil {
				return // torn tail: replay stops here, nothing to check
			}
			if v, rels, err := decodeAppend(payload); err == nil {
				// Whatever decodes must survive the writer's own encoding.
				if v2, _, err2 := decodeAppend(encodeAppend(v, rels)); err2 != nil || v2 != v {
					t.Fatalf("append roundtrip broke: v=%d v2=%d err=%v", v, v2, err2)
				}
			}
			if v, inst, err := decodeInstance(payload); err == nil {
				if v2, inst2, err2 := decodeInstance(appendRecordPayload(v, inst)); err2 != nil || v2 != v || inst2.TupleCount() != inst.TupleCount() {
					t.Fatalf("instance roundtrip broke: err=%v", err2)
				}
			}
			rest = next
		}
	})
}

// appendRecordPayload re-encodes a decoded instance, exercising the writer
// on fuzz-shaped (but valid) instances.
func appendRecordPayload(v uint64, inst *database.Instance) []byte {
	return encodeInstance(v, inst)
}
