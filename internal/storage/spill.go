package storage

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"

	"repro/internal/database"
)

// SpillSet is a disk-backed dedup set with the same contract as
// database.TupleSet.InsertGet, for answer sets that exceed the in-memory
// dedup budget. It is an open-addressed table over the existing 64-bit
// tuple hashes: a slot file holds (hash, entry) pairs probed linearly by
// hash, and a data file holds the tuples themselves, appended once on
// first insert. Both files live in a private temp directory removed by
// Close. A SpillSet is NOT safe for concurrent use — like TupleSet, it is
// owned by the single merge goroutine.
//
// On-disk slot layout (little-endian), slotSize bytes per slot:
//
//	hash  u64
//	entry u32  1-based index into the data file's tuple sequence; 0 = empty
//
// The +1 encoding lets a freshly truncated (all-zero, and on Linux sparse)
// slot file mean "all empty" without an init pass. The data file is the
// tuple sequence itself: entry i's values start at (i-1)*arity*8.
type SpillSet struct {
	arity int
	dir   string
	slots *os.File
	data  *os.File

	n        uint64 // tuples stored
	slotCap  uint64 // slot count, power of two
	dataOff  int64  // data file append offset
	row      []database.Value
	slotBuf  [slotSize]byte
	nullSeen bool // arity-0 needs no disk

	bytes int64 // slot + data bytes attributed to the package counters
}

const (
	slotSize = 12
	// spillInitialSlots sizes the first slot file; with the 3/4 load bound
	// that covers 96 tuples before the first grow.
	spillInitialSlots = 128
	// spillMaxLoadNum/Den is the 3/4 load factor bound, matching TupleSet.
	spillMaxLoadNum = 3
	spillMaxLoadDen = 4
)

// Package-level spill gauges, surfaced via /stats.
var (
	spillSets   atomic.Int64
	spillTuples atomic.Int64
	spillBytes  atomic.Int64
)

// SpillStats aggregates all live SpillSets in the process.
type SpillStats struct {
	// Sets counts SpillSets currently open.
	Sets int64
	// Tuples counts tuples held across them.
	Tuples int64
	// Bytes counts their on-disk footprint (slot + data files).
	Bytes int64
}

// SpillCounters snapshots the process-wide spill gauges.
func SpillCounters() SpillStats {
	return SpillStats{
		Sets:   spillSets.Load(),
		Tuples: spillTuples.Load(),
		Bytes:  spillBytes.Load(),
	}
}

// NewSpillSet creates an empty spill set for tuples of the given arity in a
// fresh temp directory under dir (os.TempDir() when dir is empty). sizeHint
// presizes the slot file for about that many tuples.
func NewSpillSet(dir string, arity, sizeHint int) (*SpillSet, error) {
	if arity < 0 {
		return nil, fmt.Errorf("storage: negative spill arity %d", arity)
	}
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("storage: creating spill directory: %v", err)
		}
	}
	tmp, err := os.MkdirTemp(dir, "ucq-spill-")
	if err != nil {
		return nil, fmt.Errorf("storage: creating spill directory: %v", err)
	}
	s := &SpillSet{arity: arity, dir: tmp, row: make([]database.Value, arity)}
	cap := uint64(spillInitialSlots)
	for int(cap)*spillMaxLoadNum/spillMaxLoadDen < sizeHint {
		cap *= 2
	}
	if s.slots, err = s.newSlotFile("slots.dat", cap); err != nil {
		os.RemoveAll(tmp)
		return nil, err
	}
	s.slotCap = cap
	if s.data, err = os.OpenFile(filepath.Join(tmp, "data.dat"), os.O_CREATE|os.O_RDWR, 0o600); err != nil {
		s.slots.Close()
		os.RemoveAll(tmp)
		return nil, fmt.Errorf("storage: creating spill data file: %v", err)
	}
	s.addBytes(int64(cap) * slotSize)
	spillSets.Add(1)
	return s, nil
}

// newSlotFile creates an all-empty slot file of the given capacity.
// Truncate extends with zeros (sparsely where the filesystem allows), and
// zero means empty under the entry+1 encoding.
func (s *SpillSet) newSlotFile(name string, cap uint64) (*os.File, error) {
	f, err := os.OpenFile(filepath.Join(s.dir, name), os.O_CREATE|os.O_RDWR|os.O_TRUNC, 0o600)
	if err != nil {
		return nil, fmt.Errorf("storage: creating spill slot file: %v", err)
	}
	if err := f.Truncate(int64(cap) * slotSize); err != nil {
		f.Close()
		return nil, fmt.Errorf("storage: sizing spill slot file: %v", err)
	}
	return f, nil
}

func (s *SpillSet) addBytes(n int64) {
	s.bytes += n
	spillBytes.Add(n)
}

// Len reports the number of distinct tuples inserted.
func (s *SpillSet) Len() int {
	n := int(s.n)
	if s.nullSeen {
		n++
	}
	return n
}

// InsertGet inserts t if absent. It mirrors TupleSet.InsertGet, except the
// returned tuple view is a heap copy (there is no arena to point into) and
// disk trouble surfaces as an error.
func (s *SpillSet) InsertGet(t database.Tuple) (database.Tuple, bool, error) {
	return s.InsertGetHash(t.Hash(), t)
}

// InsertGetHash is InsertGet with the hash already computed — the migration
// path reuses the hashes the in-memory TupleSet already holds.
func (s *SpillSet) InsertGetHash(h uint64, t database.Tuple) (database.Tuple, bool, error) {
	if len(t) != s.arity {
		return nil, false, fmt.Errorf("storage: spill insert arity %d into set of arity %d", len(t), s.arity)
	}
	if s.arity == 0 {
		if s.nullSeen {
			return nil, false, nil
		}
		s.nullSeen = true
		return database.Tuple{}, true, nil
	}
	if (s.n+1)*spillMaxLoadDen > s.slotCap*spillMaxLoadNum {
		if err := s.grow(); err != nil {
			return nil, false, err
		}
	}
	idx := h & (s.slotCap - 1)
	for {
		sh, entry, err := s.readSlot(s.slots, idx)
		if err != nil {
			return nil, false, err
		}
		if entry == 0 {
			break
		}
		if sh == h {
			row, err := s.readRow(uint64(entry) - 1)
			if err != nil {
				return nil, false, err
			}
			if t.Equal(row) {
				return nil, false, nil
			}
		}
		idx = (idx + 1) & (s.slotCap - 1)
	}
	if err := s.appendRow(t); err != nil {
		return nil, false, err
	}
	if err := s.writeSlot(s.slots, idx, h, uint32(s.n+1)); err != nil {
		return nil, false, err
	}
	s.n++
	spillTuples.Add(1)
	return t.Clone(), true, nil
}

func (s *SpillSet) readSlot(f *os.File, idx uint64) (uint64, uint32, error) {
	if _, err := f.ReadAt(s.slotBuf[:], int64(idx)*slotSize); err != nil {
		return 0, 0, fmt.Errorf("storage: reading spill slot: %v", err)
	}
	return binary.LittleEndian.Uint64(s.slotBuf[:8]), binary.LittleEndian.Uint32(s.slotBuf[8:]), nil
}

func (s *SpillSet) writeSlot(f *os.File, idx uint64, h uint64, entry uint32) error {
	binary.LittleEndian.PutUint64(s.slotBuf[:8], h)
	binary.LittleEndian.PutUint32(s.slotBuf[8:], entry)
	if _, err := f.WriteAt(s.slotBuf[:], int64(idx)*slotSize); err != nil {
		return fmt.Errorf("storage: writing spill slot: %v", err)
	}
	return nil
}

// readRow loads stored tuple i (0-based) into the reused row buffer.
func (s *SpillSet) readRow(i uint64) (database.Tuple, error) {
	buf := make([]byte, s.arity*8)
	if _, err := s.data.ReadAt(buf, int64(i)*int64(s.arity)*8); err != nil {
		return nil, fmt.Errorf("storage: reading spill tuple: %v", err)
	}
	for k := range s.row {
		s.row[k] = database.Value(binary.LittleEndian.Uint64(buf[k*8:]))
	}
	return database.Tuple(s.row), nil
}

// appendRow writes t at the end of the data file.
func (s *SpillSet) appendRow(t database.Tuple) error {
	buf := make([]byte, len(t)*8)
	for k, v := range t {
		binary.LittleEndian.PutUint64(buf[k*8:], uint64(v))
	}
	if _, err := s.data.WriteAt(buf, s.dataOff); err != nil {
		return fmt.Errorf("storage: appending spill tuple: %v", err)
	}
	s.dataOff += int64(len(buf))
	s.addBytes(int64(len(buf)))
	return nil
}

// grow doubles the slot file, rehashing every stored tuple into it by a
// sequential scan of the data file.
func (s *SpillSet) grow() error {
	newCap := s.slotCap * 2
	nf, err := s.newSlotFile("slots-new.dat", newCap)
	if err != nil {
		return err
	}
	row := make([]database.Value, s.arity)
	buf := make([]byte, s.arity*8)
	for i := uint64(0); i < s.n; i++ {
		if _, err := s.data.ReadAt(buf, int64(i)*int64(s.arity)*8); err != nil {
			nf.Close()
			return fmt.Errorf("storage: rehashing spill set: %v", err)
		}
		for k := range row {
			row[k] = database.Value(binary.LittleEndian.Uint64(buf[k*8:]))
		}
		h := database.Tuple(row).Hash()
		idx := h & (newCap - 1)
		for {
			_, entry, err := s.readSlot(nf, idx)
			if err != nil {
				nf.Close()
				return err
			}
			if entry == 0 {
				break
			}
			idx = (idx + 1) & (newCap - 1)
		}
		if err := s.writeSlot(nf, idx, h, uint32(i+1)); err != nil {
			nf.Close()
			return err
		}
	}
	old := s.slots
	oldPath := filepath.Join(s.dir, "slots.dat")
	if err := os.Rename(filepath.Join(s.dir, "slots-new.dat"), oldPath); err != nil {
		nf.Close()
		return fmt.Errorf("storage: installing grown spill slots: %v", err)
	}
	old.Close()
	s.slots = nf
	s.addBytes(int64(newCap-s.slotCap) * slotSize)
	s.slotCap = newCap
	return nil
}

// Close releases the files and removes the temp directory. Safe to call
// more than once.
func (s *SpillSet) Close() error {
	if s.dir == "" {
		return nil
	}
	s.slots.Close()
	s.data.Close()
	err := os.RemoveAll(s.dir)
	s.dir = ""
	spillSets.Add(-1)
	spillTuples.Add(-int64(s.n))
	spillBytes.Add(-s.bytes)
	return err
}
