package storage

import (
	"encoding/hex"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/database"
)

// Store journals a catalog's dataset mutations under one data directory
// and replays them on startup. Layout:
//
//	<dir>/ds-<hex(name)>/snap-<version>.dat   full-instance snapshot
//	<dir>/ds-<hex(name)>/wal.dat              append records past the snapshot
//
// Snapshot files are written to a temp name, fsynced and atomically
// renamed; WAL appends are fsynced before the mutation is acknowledged.
// Replace resets the WAL (its deltas are folded into the new snapshot), so
// a dataset's durable state is always one snapshot plus a suffix of
// appends. All methods are safe for concurrent use.
type Store struct {
	dir string

	mu       sync.Mutex
	datasets map[string]*dsFiles

	walRecords     atomic.Int64
	walBytes       atomic.Int64
	snapshotWrites atomic.Int64
	recovered      atomic.Int64
	tornTails      atomic.Int64
}

// dsFiles is one dataset's open durable state.
type dsFiles struct {
	dir string
	wal *os.File
}

// Open opens (creating if needed) a store rooted at dir. It does not read
// anything; call Recover to load the durable datasets.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("storage: empty data directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: %v", err)
	}
	return &Store{dir: dir, datasets: make(map[string]*dsFiles)}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Close releases every open WAL handle. The store must not be used after.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var first error
	for _, ds := range s.datasets {
		if err := ds.wal.Close(); err != nil && first == nil {
			first = err
		}
	}
	s.datasets = make(map[string]*dsFiles)
	return first
}

// dsDir maps a dataset name onto its directory; hex keeps arbitrary names
// filesystem-safe and the prefix keeps unrelated files out of Recover.
func (s *Store) dsDir(name string) string {
	return filepath.Join(s.dir, "ds-"+hex.EncodeToString([]byte(name)))
}

// LogRegister makes a new dataset durable: its snapshot at version and an
// empty WAL. The write is fsynced before LogRegister returns.
func (s *Store) LogRegister(name string, version uint64, inst *database.Instance) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.installSnapshot(name, version, inst)
}

// LogReplace makes a replacement snapshot durable and resets the WAL: the
// appends it held are folded into the snapshot.
func (s *Store) LogReplace(name string, version uint64, inst *database.Instance) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.installSnapshot(name, version, inst)
}

// installSnapshot writes snap-<version>.dat atomically, truncates the WAL
// and drops superseded snapshot files. Callers hold s.mu.
func (s *Store) installSnapshot(name string, version uint64, inst *database.Instance) error {
	dir := s.dsDir(name)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("storage: %v", err)
	}
	if err := writeFileSynced(filepath.Join(dir, fmt.Sprintf("snap-%d.dat", version)),
		appendRecord(nil, encodeInstance(version, inst))); err != nil {
		return err
	}
	s.snapshotWrites.Add(1)

	ds, err := s.openWAL(name, dir)
	if err != nil {
		return err
	}
	if err := ds.wal.Truncate(0); err != nil {
		return fmt.Errorf("storage: resetting WAL: %v", err)
	}
	if _, err := ds.wal.Seek(0, 0); err != nil {
		return fmt.Errorf("storage: resetting WAL: %v", err)
	}
	if err := ds.wal.Sync(); err != nil {
		return fmt.Errorf("storage: syncing WAL: %v", err)
	}
	// Superseded snapshots are garbage, not state: removal is best-effort
	// and recovery simply ignores older versions when it succeeds.
	if entries, err := os.ReadDir(dir); err == nil {
		for _, e := range entries {
			if v, ok := snapVersion(e.Name()); ok && v != version {
				_ = os.Remove(filepath.Join(dir, e.Name()))
			}
		}
	}
	return nil
}

// LogAppend makes one AppendRows delta durable, fsynced before return.
func (s *Store) LogAppend(name string, version uint64, rels map[string][][]int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	ds, ok := s.datasets[name]
	if !ok {
		return fmt.Errorf("storage: append to unknown dataset %q", name)
	}
	rec := appendRecord(nil, encodeAppend(version, rels))
	if _, err := ds.wal.Write(rec); err != nil {
		return fmt.Errorf("storage: appending WAL record: %v", err)
	}
	if err := ds.wal.Sync(); err != nil {
		return fmt.Errorf("storage: syncing WAL: %v", err)
	}
	s.walRecords.Add(1)
	s.walBytes.Add(int64(len(rec)))
	return nil
}

// LogDrop removes the dataset's durable state.
func (s *Store) LogDrop(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if ds, ok := s.datasets[name]; ok {
		_ = ds.wal.Close()
		delete(s.datasets, name)
	}
	if err := os.RemoveAll(s.dsDir(name)); err != nil {
		return fmt.Errorf("storage: dropping %q: %v", name, err)
	}
	return nil
}

// openWAL returns the dataset's WAL handle, opening (and registering) it if
// needed. Callers hold s.mu.
func (s *Store) openWAL(name, dir string) (*dsFiles, error) {
	if ds, ok := s.datasets[name]; ok {
		return ds, nil
	}
	f, err := os.OpenFile(filepath.Join(dir, "wal.dat"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: opening WAL: %v", err)
	}
	if _, err := f.Seek(0, 2); err != nil {
		f.Close()
		return nil, fmt.Errorf("storage: seeking WAL: %v", err)
	}
	ds := &dsFiles{dir: dir, wal: f}
	s.datasets[name] = ds
	return ds, nil
}

// Dataset is one recovered dataset: its name, the exact version it was last
// acknowledged at, and the replayed instance.
type Dataset struct {
	Name    string
	Version uint64
	Inst    *database.Instance
}

// Recover loads every durable dataset: the newest valid snapshot plus the
// WAL's replayable prefix. A torn WAL tail — a crash mid-append — is
// truncated away and counted; the dataset recovers at the last fsynced
// version. A dataset directory with no valid snapshot (a crash between
// directory creation and the snapshot rename) is removed: nothing in it was
// ever acknowledged. Recover leaves each WAL open for appending, so a
// recovered store is immediately writable.
func (s *Store) Recover() ([]Dataset, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("storage: %v", err)
	}
	var out []Dataset
	for _, e := range entries {
		if !e.IsDir() || !strings.HasPrefix(e.Name(), "ds-") {
			continue
		}
		raw, err := hex.DecodeString(strings.TrimPrefix(e.Name(), "ds-"))
		if err != nil || len(raw) == 0 {
			continue
		}
		name := string(raw)
		ds, ok, err := s.recoverDataset(name, filepath.Join(s.dir, e.Name()))
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, ds)
			s.recovered.Add(1)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// recoverDataset restores one dataset directory. ok is false when the
// directory holds no acknowledged state and was cleaned up.
func (s *Store) recoverDataset(name, dir string) (Dataset, bool, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return Dataset{}, false, fmt.Errorf("storage: %v", err)
	}
	// Newest valid snapshot wins; older ones only exist when a crash
	// interrupted the post-replace cleanup.
	var versions []uint64
	for _, e := range entries {
		if v, ok := snapVersion(e.Name()); ok {
			versions = append(versions, v)
		}
	}
	sort.Slice(versions, func(i, j int) bool { return versions[i] > versions[j] })
	var (
		inst    *database.Instance
		version uint64
		found   bool
	)
	for _, v := range versions {
		buf, err := os.ReadFile(filepath.Join(dir, fmt.Sprintf("snap-%d.dat", v)))
		if err != nil {
			continue
		}
		payload, _, err := nextRecord(buf)
		if err != nil {
			continue
		}
		sv, si, err := decodeInstance(payload)
		if err != nil || sv != v {
			continue
		}
		inst, version, found = si, v, true
		break
	}
	if !found {
		_ = os.RemoveAll(dir)
		return Dataset{}, false, nil
	}

	// Replay the WAL's valid prefix in version order; truncate the torn
	// tail so later appends never interleave with garbage.
	walPath := filepath.Join(dir, "wal.dat")
	buf, err := os.ReadFile(walPath)
	if err != nil && !os.IsNotExist(err) {
		return Dataset{}, false, fmt.Errorf("storage: reading WAL: %v", err)
	}
	valid := 0
	rest := buf
	for {
		payload, next, err := nextRecord(rest)
		if err != nil {
			if err != io.EOF {
				s.tornTails.Add(1)
			}
			break
		}
		v, rels, err := decodeAppend(payload)
		if err != nil {
			s.tornTails.Add(1)
			break
		}
		if v <= version {
			// Stale record from before a snapshot whose WAL reset was
			// interrupted; the snapshot already folds it in.
		} else if v == version+1 {
			applied, err := replayAppend(inst, rels)
			if err != nil {
				s.tornTails.Add(1)
				break
			}
			inst = applied
			version = v
		} else {
			// A version gap means records were lost; nothing past it is
			// trustworthy.
			s.tornTails.Add(1)
			break
		}
		valid = len(buf) - len(next)
		rest = next
		s.walRecords.Add(1)
	}
	if valid < len(buf) {
		if err := os.Truncate(walPath, int64(valid)); err != nil && !os.IsNotExist(err) {
			return Dataset{}, false, fmt.Errorf("storage: truncating torn WAL tail: %v", err)
		}
	}
	s.walBytes.Add(int64(valid))
	if _, err := s.openWAL(name, dir); err != nil {
		return Dataset{}, false, err
	}
	return Dataset{Name: name, Version: version, Inst: inst}, true, nil
}

// replayAppend applies one WAL delta with Dataset.AppendRows semantics:
// touched relations are cloned and extended, absent ones created with the
// arity of their first row. Values were range-checked by decodeAppend.
func replayAppend(inst *database.Instance, rels map[string][][]int64) (*database.Instance, error) {
	out := inst.ShallowClone()
	for name, rows := range rels {
		var rel *database.Relation
		if old := out.Relation(name); old != nil {
			if old.Arity() != len(rows[0]) {
				return nil, fmt.Errorf("storage: WAL append arity %d against relation %s/%d", len(rows[0]), name, old.Arity())
			}
			rel = old.Clone()
		} else {
			rel = database.NewRelation(name, len(rows[0]))
		}
		for _, row := range rows {
			rel.AppendInts(row...)
		}
		out.AddRelation(rel)
	}
	return out, nil
}

// snapVersion parses a snapshot file name.
func snapVersion(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "snap-") || !strings.HasSuffix(name, ".dat") {
		return 0, false
	}
	v, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "snap-"), ".dat"), 10, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// writeFileSynced writes data to path via a temp file, fsyncs it, renames
// it into place and fsyncs the directory — the atomic-install idiom.
func writeFileSynced(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".tmp-snap-")
	if err != nil {
		return fmt.Errorf("storage: %v", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("storage: writing snapshot: %v", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("storage: syncing snapshot: %v", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("storage: closing snapshot: %v", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("storage: installing snapshot: %v", err)
	}
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
	return nil
}

// Stats is a point-in-time snapshot of the store's gauges.
type Stats struct {
	// Dir is the data directory.
	Dir string
	// Datasets counts datasets with open durable state.
	Datasets int
	// WALRecords and WALBytes count acknowledged WAL appends (recovered
	// records included).
	WALRecords int64
	WALBytes   int64
	// SnapshotWrites counts snapshot installations this process performed.
	SnapshotWrites int64
	// Recovered counts datasets restored by Recover.
	Recovered int64
	// TornTails counts invalid WAL tails truncated during recovery.
	TornTails int64
}

// Stats snapshots the gauges.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	n := len(s.datasets)
	s.mu.Unlock()
	return Stats{
		Dir:            s.dir,
		Datasets:       n,
		WALRecords:     s.walRecords.Load(),
		WALBytes:       s.walBytes.Load(),
		SnapshotWrites: s.snapshotWrites.Load(),
		Recovered:      s.recovered.Load(),
		TornTails:      s.tornTails.Load(),
	}
}
