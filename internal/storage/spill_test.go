package storage

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/database"
)

// TestSpillSetMatchesTupleSet inserts an overlapping tuple stream into a
// SpillSet and an in-memory TupleSet and checks they agree on every
// fresh/duplicate verdict — the property the spilled dedup path relies on.
func TestSpillSetMatchesTupleSet(t *testing.T) {
	ss, err := NewSpillSet(t.TempDir(), 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer ss.Close()
	mem := database.NewTupleSet(2)

	// ~1200 inserts over ~600 distinct tuples forces several grows past the
	// 128-slot initial file and plenty of duplicate probes.
	for i := 0; i < 1200; i++ {
		tup := database.Tuple{database.V(int64(i % 600)), database.V(int64((i * 7) % 600 % 13))}
		memStored, memFresh := mem.InsertGet(tup)
		stored, fresh, err := ss.InsertGet(tup)
		if err != nil {
			t.Fatal(err)
		}
		if fresh != memFresh {
			t.Fatalf("insert %d (%v): spill fresh=%v, mem fresh=%v", i, tup, fresh, memFresh)
		}
		if fresh && !stored.Equal(memStored) {
			t.Fatalf("insert %d: spill stored %v, mem stored %v", i, stored, memStored)
		}
	}
	if ss.Len() != mem.Len() {
		t.Fatalf("spill Len %d, mem Len %d", ss.Len(), mem.Len())
	}
}

// TestSpillSetHashMigration checks InsertGetHash with hashes taken from a
// TupleSet (the mem→disk migration path) dedups against direct inserts.
func TestSpillSetHashMigration(t *testing.T) {
	mem := database.NewTupleSet(1)
	for i := 0; i < 50; i++ {
		mem.Add(database.Tuple{database.V(int64(i))})
	}
	ss, err := NewSpillSet(t.TempDir(), 1, mem.Len())
	if err != nil {
		t.Fatal(err)
	}
	defer ss.Close()
	for i := 0; i < mem.Len(); i++ {
		if _, fresh, err := ss.InsertGetHash(mem.HashAt(i), mem.At(i)); err != nil || !fresh {
			t.Fatalf("migrating tuple %d: fresh=%v err=%v", i, fresh, err)
		}
	}
	// Every migrated tuple is now a duplicate, whichever entry point is used.
	for i := 0; i < mem.Len(); i++ {
		if _, fresh, err := ss.InsertGet(mem.At(i).Clone()); err != nil || fresh {
			t.Fatalf("post-migration insert %d: fresh=%v err=%v", i, fresh, err)
		}
	}
	if ss.Len() != mem.Len() {
		t.Fatalf("spill Len %d, mem Len %d", ss.Len(), mem.Len())
	}
}

// TestNewSpillSetCreatesDir pins the -spill-dir contract: pointing it at a
// directory that does not exist yet must work — NewSpillSet creates it.
// The regression: MkdirTemp failed on the missing directory and the merge's
// first spill attempt silently truncated the answer stream.
func TestNewSpillSetCreatesDir(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "a", "b", "spill")
	ss, err := NewSpillSet(dir, 2, 4)
	if err != nil {
		t.Fatalf("NewSpillSet under a nonexistent directory: %v", err)
	}
	defer ss.Close()
	if _, fresh, err := ss.InsertGet(database.Tuple{database.V(1), database.V(2)}); err != nil || !fresh {
		t.Fatalf("insert into created dir: fresh=%v err=%v", fresh, err)
	}
	if fi, err := os.Stat(dir); err != nil || !fi.IsDir() {
		t.Fatalf("spill dir was not created: fi=%v err=%v", fi, err)
	}
}

// TestSpillSetNullary covers the arity-0 edge: one empty tuple, then
// duplicates, with no disk traffic needed.
func TestSpillSetNullary(t *testing.T) {
	ss, err := NewSpillSet(t.TempDir(), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer ss.Close()
	if _, fresh, err := ss.InsertGet(database.Tuple{}); err != nil || !fresh {
		t.Fatalf("first nullary insert: fresh=%v err=%v", fresh, err)
	}
	if _, fresh, err := ss.InsertGet(database.Tuple{}); err != nil || fresh {
		t.Fatalf("second nullary insert: fresh=%v err=%v", fresh, err)
	}
	if ss.Len() != 1 {
		t.Fatalf("Len = %d, want 1", ss.Len())
	}
}

// TestSpillCounters checks the process-wide gauges go up on insert and back
// down on Close.
func TestSpillCounters(t *testing.T) {
	before := SpillCounters()
	ss, err := NewSpillSet(t.TempDir(), 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ss.InsertGet(database.Tuple{database.V(1), database.V(2)}); err != nil {
		t.Fatal(err)
	}
	mid := SpillCounters()
	if mid.Sets != before.Sets+1 || mid.Tuples != before.Tuples+1 || mid.Bytes <= before.Bytes {
		t.Fatalf("counters during use: %+v (before %+v)", mid, before)
	}
	if err := ss.Close(); err != nil {
		t.Fatal(err)
	}
	if err := ss.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	after := SpillCounters()
	if after != before {
		t.Fatalf("counters after Close: %+v, want %+v", after, before)
	}
}
