package core

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/database"

	"repro/internal/cq"
)

// sortedTuples drains an iterator and sorts the answers for set comparison.
func sortedTuples(it interface {
	Next() (database.Tuple, bool)
}) []database.Tuple {
	var out []database.Tuple
	for {
		t, ok := it.Next()
		if !ok {
			break
		}
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// TestIteratorParallelMatchesSequential runs the Theorem 12 pipeline's
// parallel iterator against the sequential one on the paper's union
// examples over random instances: identical answer sets, no duplicates.
func TestIteratorParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for _, src := range []string{example2, example13} {
		u := cq.MustParse(src)
		cert, ok := FindCertificate(u, nil)
		if !ok {
			t.Fatalf("no certificate for\n%s", u)
		}
		for trial := 0; trial < 4; trial++ {
			inst := randomInstance(u, rng, 60, 8)
			plan, err := NewUnionPlan(u, cert, inst)
			if err != nil {
				t.Fatalf("NewUnionPlan: %v", err)
			}
			want := sortedTuples(plan.Iterator())
			for _, batch := range []int{0, 1, 7} {
				got := sortedTuples(plan.IteratorParallel(batch))
				if len(got) != len(want) {
					t.Fatalf("trial %d batch %d: %d answers, want %d", trial, batch, len(got), len(want))
				}
				for i := range want {
					if !got[i].Equal(want[i]) {
						t.Fatalf("trial %d batch %d: answer %d = %v, want %v", trial, batch, i, got[i], want[i])
					}
				}
			}
		}
	}
}

// TestIteratorParallelCloseEarly abandons a parallel union mid-stream; the
// workers must be releasable without draining.
func TestIteratorParallelCloseEarly(t *testing.T) {
	u := cq.MustParse(example2)
	cert, ok := FindCertificate(u, nil)
	if !ok {
		t.Fatal("no certificate")
	}
	inst := randomInstance(u, rand.New(rand.NewSource(9)), 200, 6)
	plan, err := NewUnionPlan(u, cert, inst)
	if err != nil {
		t.Fatal(err)
	}
	it := plan.IteratorParallel(4)
	if _, ok := it.Next(); !ok {
		t.Skip("instance produced no answers")
	}
	it.Close()
	if _, ok := it.Next(); ok {
		t.Error("answer after Close")
	}
}
