package core

import (
	"sort"

	"repro/internal/cq"
	"repro/internal/hypergraph"
)

// SearchOptions bounds the certificate search. Definition 11 is recursive
// and the paper gives no decision procedure (the general dichotomy is
// open), so the search explores a bounded but generously sized space; it is
// sound (returned certificates verify) and complete for every example in
// the paper at the defaults.
type SearchOptions struct {
	// MaxVirtualAtoms bounds the virtual atoms added per CQ (default 3).
	MaxVirtualAtoms int
	// MaxRounds bounds the provider-fixpoint rounds (default 2·|CQs| + 2).
	MaxRounds int
	// MaxCandidates caps the candidate pool considered per CQ when
	// combining more than two virtual atoms (default 160). Large unions
	// with rich homomorphism structure can generate hundreds of providable
	// sets; the cap keeps the combination search polynomial while a
	// free-path-aware ranking keeps the useful candidates in the pool.
	MaxCandidates int
}

func (o *SearchOptions) defaults(n int) SearchOptions {
	out := SearchOptions{MaxVirtualAtoms: 3, MaxRounds: 2*n + 2, MaxCandidates: 160}
	if o != nil {
		if o.MaxVirtualAtoms > 0 {
			out.MaxVirtualAtoms = o.MaxVirtualAtoms
		}
		if o.MaxRounds > 0 {
			out.MaxRounds = o.MaxRounds
		}
		if o.MaxCandidates > 0 {
			out.MaxCandidates = o.MaxCandidates
		}
	}
	return out
}

// FindCertificate searches for a free-connexity certificate for the union
// (Definition 11). It returns (certificate, true) on success; the
// certificate always passes Verify. A false result means the bounded search
// found no certificate — the union may still be free-connex beyond the
// bounds, or genuinely intractable (internal/classify combines this search
// with the paper's lower bounds).
func FindCertificate(u *cq.UCQ, opts *SearchOptions) (*Certificate, bool) {
	if err := u.Validate(); err != nil {
		return nil, false
	}
	o := opts.defaults(len(u.CQs))
	n := len(u.CQs)
	hc := newHomCache(u)

	ext := make([]*ExtendedCQ, n)
	done := make([]bool, n)
	for i := range ext {
		ext[i] = plainSnapshot(u, i)
		done[i] = ext[i].IsFreeConnex()
	}

	for round := 0; round < o.MaxRounds; round++ {
		allDone := true
		changed := false
		for i := 0; i < n; i++ {
			if done[i] {
				continue
			}
			cands := generateCandidates(u, ext, hc, i)
			cands = prioritizeCandidates(u.CQs[i], cands, o.MaxCandidates)
			if trial, ok := searchExtension(u.CQs[i], i, cands, o.MaxVirtualAtoms); ok {
				ext[i] = trial
				done[i] = true
				changed = true
			} else {
				allDone = false
			}
		}
		if allDone {
			cert := &Certificate{Extensions: ext}
			if err := cert.Verify(u); err != nil {
				// The search only assembles justified atoms, so this is a
				// bug guard, not a reachable path.
				return nil, false
			}
			return cert, true
		}
		if !changed {
			break
		}
	}
	return nil, false
}

// candidateAtom is a justified variable set addable to a target CQ.
type candidateAtom struct {
	vars []cq.Variable // sorted distinct, ≥ 2 variables
	prov Provision
}

// generateCandidates computes every providable variable set for target CQ i
// (Definition 7): for each provider j, each body-homomorphism h from Qj to
// Qi, and each S ⊆ free(Qj) making the provider snapshot S-connex, every
// subset of h(S) with at least two variables is providable. Provider
// snapshots considered are the plain base CQ and the current extension of
// Qj (Definition 10's recursive case).
func generateCandidates(u *cq.UCQ, ext []*ExtendedCQ, hc *homCache, i int) []candidateAtom {
	var out []candidateAtom
	seen := make(map[string]bool)
	targetEdges := hypergraph.FromCQ(u.CQs[i])

	for j := range u.CQs {
		homs := hc.homs(j, i)
		if len(homs) == 0 {
			continue
		}
		snaps := []*ExtendedCQ{plainSnapshot(u, j)}
		if len(ext[j].Virtuals) > 0 {
			snaps = append(snaps, ext[j])
		}
		freeVars := u.CQs[j].Free().Sorted()
		for _, snap := range snaps {
			ph := hypergraph.FromCQ(snap.Query())
			if !ph.IsAcyclic() {
				continue
			}
			for _, h := range homs {
				// Enumerate S ⊆ free(Qj) by bitmask; collect images of
				// S-connex sets.
				for mask := 1; mask < 1<<len(freeVars); mask++ {
					s := make(cq.VarSet)
					for b, v := range freeVars {
						if mask&(1<<b) != 0 {
							s[v] = true
						}
					}
					if !ph.WithEdge(s).IsAcyclic() {
						continue
					}
					image := h.ApplySet(s)
					// All subsets of the image are providable; skip those
					// already covered by an edge of the target (adding a
					// sub-edge never changes the structure).
					for _, w := range subsets(image.Sorted()) {
						if len(w) < 2 {
							continue
						}
						ws := cq.NewVarSet(w...)
						key := ws.String()
						if seen[key] || targetEdges.HasEdgeCovering(ws) {
							continue
						}
						seen[key] = true
						out = append(out, candidateAtom{
							vars: w,
							prov: Provision{
								ProviderIndex: j,
								Provider:      snap,
								Hom:           h,
								S:             s.Clone(),
							},
						})
					}
				}
			}
		}
	}
	return out
}

// prioritizeCandidates ranks the candidate pool and truncates it to the
// cap. Candidates covering more free-path variables of the target rank
// first (those are the structures an extension must fix), larger sets
// before smaller, ties broken deterministically by variable names.
func prioritizeCandidates(target *cq.CQ, cands []candidateAtom, cap int) []candidateAtom {
	if len(cands) <= cap {
		return cands
	}
	pathVars := make(cq.VarSet)
	h := hypergraph.FromCQ(target)
	for _, p := range hypergraph.FreePaths(h, target.Free()) {
		pathVars.AddAll(p.VarSet())
	}
	score := func(c candidateAtom) int {
		s := 0
		for _, v := range c.vars {
			if pathVars[v] {
				s += 4
			}
		}
		return s*8 + len(c.vars)
	}
	order := make([]int, len(cands))
	for i := range order {
		order[i] = i
	}
	key := func(c candidateAtom) string {
		out := ""
		for _, v := range c.vars {
			out += string(v) + ","
		}
		return out
	}
	sortSlice(order, func(a, b int) bool {
		sa, sb := score(cands[a]), score(cands[b])
		if sa != sb {
			return sa > sb
		}
		return key(cands[a]) < key(cands[b])
	})
	out := make([]candidateAtom, cap)
	for i := 0; i < cap; i++ {
		out[i] = cands[order[i]]
	}
	return out
}

// sortSlice is sort.Slice without the interface allocation noise at the
// call sites above.
func sortSlice(order []int, less func(a, b int) bool) {
	sort.Slice(order, func(i, j int) bool { return less(order[i], order[j]) })
}

// subsets enumerates all subsets of vars preserving sorted order.
func subsets(vars []cq.Variable) [][]cq.Variable {
	n := len(vars)
	out := make([][]cq.Variable, 0, 1<<n)
	for mask := 1; mask < 1<<n; mask++ {
		var w []cq.Variable
		for b := 0; b < n; b++ {
			if mask&(1<<b) != 0 {
				w = append(w, vars[b])
			}
		}
		out = append(out, w)
	}
	return out
}

// searchExtension looks for ≤ maxAtoms candidates whose addition makes the
// target free-connex, trying smaller extensions first.
func searchExtension(base *cq.CQ, baseIndex int, cands []candidateAtom, maxAtoms int) (*ExtendedCQ, bool) {
	free := base.Free()
	build := func(chosen []int) *ExtendedCQ {
		e := &ExtendedCQ{BaseIndex: baseIndex, Base: base.Clone()}
		for k, ci := range chosen {
			c := cands[ci]
			e.Virtuals = append(e.Virtuals, VirtualAtom{
				Atom: cq.Atom{
					Rel:     FreshSymbol(baseIndex, k),
					Vars:    append([]cq.Variable(nil), c.vars...),
					Virtual: true,
				},
				Prov: c.prov,
			})
		}
		return e
	}
	isFC := func(chosen []int) bool {
		e := build(chosen)
		q := e.Query()
		return hypergraph.FromCQ(q).IsSConnex(free)
	}

	var chosen []int
	for budget := 0; budget <= maxAtoms; budget++ {
		chosen = chosen[:0]
		if recBudget(&chosen, cands, isFC, budget) {
			return build(chosen), true
		}
	}
	return nil, false
}

// recBudget searches for a subset of exactly `budget` candidates (by
// increasing first-index) satisfying ok.
func recBudget(chosen *[]int, cands []candidateAtom, ok func([]int) bool, budget int) bool {
	if budget == 0 {
		return ok(*chosen)
	}
	start := 0
	if len(*chosen) > 0 {
		start = (*chosen)[len(*chosen)-1] + 1
	}
	for ci := start; ci < len(cands); ci++ {
		*chosen = append(*chosen, ci)
		if recBudget(chosen, cands, ok, budget-1) {
			return true
		}
		*chosen = (*chosen)[:len(*chosen)-1]
	}
	return false
}
