package core

import (
	"repro/internal/cq"
	"repro/internal/hypergraph"
)

// ProvidedSets computes the maximal variable sets that CQ j can provide to
// CQ i per Definition 7, using the plain (unextended) provider: for every
// body-homomorphism h from Qj to Qi and every S ⊆ free(Qj) with Qj
// S-connex, the image h(S) is providable — and so is each of its subsets.
// The returned sets are the inclusion-maximal images, deduplicated, in a
// deterministic order.
//
// This is the introspection companion of the certificate search; the
// search itself additionally considers extended provider snapshots
// (Definition 10's recursion).
func ProvidedSets(u *cq.UCQ, j, i int) []cq.VarSet {
	if j < 0 || i < 0 || j >= len(u.CQs) || i >= len(u.CQs) {
		return nil
	}
	hc := newHomCache(u)
	homs := hc.homs(j, i)
	if len(homs) == 0 {
		return nil
	}
	provider := u.CQs[j]
	ph := hypergraph.FromCQ(provider)
	if !ph.IsAcyclic() {
		return nil
	}
	freeVars := provider.Free().Sorted()

	var images []cq.VarSet
	for _, h := range homs {
		for mask := 1; mask < 1<<len(freeVars); mask++ {
			s := make(cq.VarSet)
			for b, v := range freeVars {
				if mask&(1<<b) != 0 {
					s[v] = true
				}
			}
			if !ph.WithEdge(s).IsAcyclic() {
				continue
			}
			images = append(images, h.ApplySet(s))
		}
	}
	// Keep inclusion-maximal images only, deduplicated.
	var out []cq.VarSet
	for _, img := range images {
		dominated := false
		for _, other := range images {
			if !other.Equal(img) && other.ContainsAll(img) {
				dominated = true
				break
			}
		}
		if dominated {
			continue
		}
		dup := false
		for _, prev := range out {
			if prev.Equal(img) {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, img)
		}
	}
	return out
}

// CanProvide reports whether CQ j can provide the exact variable set v1 to
// CQ i (as a subset of some maximal provided set).
func CanProvide(u *cq.UCQ, j, i int, v1 cq.VarSet) bool {
	for _, m := range ProvidedSets(u, j, i) {
		if m.ContainsAll(v1) {
			return true
		}
	}
	return false
}
