package core

import (
	"sync"
	"testing"

	"repro/internal/cq"
	"repro/internal/database"
	"repro/internal/workload"
)

// TestNewUnionPlanConcurrentReuse binds one shared (query, certificate)
// pair to many distinct instances from concurrent goroutines and checks
// every binding enumerates the same answers as a sequential plan over the
// same instance. Run under -race, this pins down the contract that a
// certificate is read-only after FindCertificate — the invariant the
// server's prepared-plan cache relies on.
func TestNewUnionPlanConcurrentReuse(t *testing.T) {
	u := cq.MustParse(`
		Q1(x,y,w) <- R1(x,z), R2(z,y), R3(y,w).
		Q2(x,y,w) <- R1(x,y), R2(y,w).
	`)
	cert, ok := FindCertificate(u, nil)
	if !ok {
		t.Fatal("expected a certificate for Example 2")
	}

	const workers = 8
	const rounds = 4
	insts := make([]*database.Instance, workers)
	want := make([]int, workers)
	for i := range insts {
		insts[i] = workload.Example2Instance(20+4*i, 2, int64(100+i))
		p, err := NewUnionPlan(u, cert, insts[i])
		if err != nil {
			t.Fatalf("sequential plan %d: %v", i, err)
		}
		want[i] = p.Materialize().Len()
	}

	var wg sync.WaitGroup
	errs := make(chan error, workers*rounds)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				p, err := NewUnionPlan(u, cert, insts[i])
				if err != nil {
					errs <- err
					return
				}
				if got := p.Materialize().Len(); got != want[i] {
					t.Errorf("worker %d round %d: %d answers, want %d", i, r, got, want[i])
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("concurrent NewUnionPlan: %v", err)
	}
}
