// Package core implements the paper's primary contribution: provided
// variable sets (Definition 7), union extensions (Definition 10),
// free-connex UCQs (Definition 11), certificate search for tractability,
// and the Theorem 12 enumeration pipeline that evaluates a certified UCQ
// with linear preprocessing and constant delay.
//
// A certificate assigns each CQ of the union an extended query: the
// original body plus virtual atoms, each justified by a provision — a
// body-homomorphism from a provider CQ (or a snapshot of one of its own
// union extensions, the definition being recursive) together with an
// S-connex witness set. Certificates are machine-checkable (Verify) and
// executable (NewUnionPlan).
package core

import (
	"fmt"
	"sort"

	"repro/internal/cq"
	"repro/internal/homomorphism"
	"repro/internal/hypergraph"
)

// Provision justifies one virtual atom, following Definition 7: the
// provider's answers, projected and translated through a body-homomorphism,
// cover every value combination the target's variables can take.
type Provision struct {
	// ProviderIndex is the provider CQ's position in the UCQ.
	ProviderIndex int
	// Provider is the snapshot of the provider's union extension used for
	// the S-connexity requirement (Definition 10 allows providers to be
	// union extensions themselves; an empty-Virtuals snapshot is the plain
	// CQ).
	Provider *ExtendedCQ
	// Hom is the body-homomorphism h from the provider's original body to
	// the target's original body.
	Hom cq.Substitution
	// S satisfies V2 ⊆ S ⊆ free(provider) with the provider snapshot
	// S-connex, where V2 = {v ∈ S : h(v) ∈ V1}.
	S cq.VarSet
}

// VirtualAtom is an auxiliary atom of a union extension with its
// justification.
type VirtualAtom struct {
	// Atom carries a fresh relation symbol and the provided variables V1
	// (distinct, in canonical sorted order) as arguments; Atom.Virtual is
	// always true.
	Atom cq.Atom
	Prov Provision
}

// ExtendedCQ is a union extension Q⁺ of a base CQ: the base plus virtual
// atoms (Definition 10).
type ExtendedCQ struct {
	// BaseIndex is the base CQ's position in the UCQ.
	BaseIndex int
	// Base is the original CQ.
	Base *cq.CQ
	// Virtuals are the added atoms, in the order they must be instantiated.
	Virtuals []VirtualAtom
}

// Query materialises the extended query: base atoms followed by virtual
// atoms.
func (e *ExtendedCQ) Query() *cq.CQ {
	q := e.Base.Clone()
	for _, va := range e.Virtuals {
		q.Atoms = append(q.Atoms, va.Atom.Clone())
	}
	return q
}

// TouchesRelations reports whether the extension's answers can change
// when the named relations change: true when its base body — or,
// transitively, any provider snapshot behind its virtual atoms —
// references one of them. A branch whose whole relation footprint is
// disjoint from names enumerates identical answers at both versions of an
// append delta, so delta maintenance skips it.
func (e *ExtendedCQ) TouchesRelations(names map[string]struct{}) bool {
	for _, a := range e.Base.Atoms {
		if a.Virtual {
			continue
		}
		if _, ok := names[a.Rel]; ok {
			return true
		}
	}
	for _, va := range e.Virtuals {
		if va.Prov.Provider != nil && va.Prov.Provider.TouchesRelations(names) {
			return true
		}
	}
	return false
}

// IsFreeConnex reports whether the extended query is free-connex.
func (e *ExtendedCQ) IsFreeConnex() bool {
	q := e.Query()
	return hypergraph.FromCQ(q).IsSConnex(q.Free())
}

// Clone deep-copies the extension (provider snapshots are shared: they are
// immutable once built).
func (e *ExtendedCQ) Clone() *ExtendedCQ {
	out := &ExtendedCQ{BaseIndex: e.BaseIndex, Base: e.Base.Clone()}
	out.Virtuals = append(out.Virtuals, e.Virtuals...)
	return out
}

// String renders the extension as its query.
func (e *ExtendedCQ) String() string { return e.Query().String() }

// Certificate witnesses that a UCQ is free-connex (Definition 11): one
// free-connex union extension per CQ.
type Certificate struct {
	// Extensions is parallel to the UCQ's CQ list.
	Extensions []*ExtendedCQ
}

// TotalVirtualAtoms counts virtual atoms across all extensions (not
// counting provider snapshots).
func (c *Certificate) TotalVirtualAtoms() int {
	n := 0
	for _, e := range c.Extensions {
		n += len(e.Virtuals)
	}
	return n
}

// String renders all extended queries.
func (c *Certificate) String() string {
	s := ""
	for i, e := range c.Extensions {
		if i > 0 {
			s += "\n"
		}
		s += e.String()
	}
	return s
}

// Verify checks the certificate against the union: every extension's base
// matches, every virtual atom's provision satisfies Definition 7 (with the
// provider snapshot recursively verified), and every extension is
// free-connex. A nil error means the UCQ is certified free-connex.
func (c *Certificate) Verify(u *cq.UCQ) error {
	if len(c.Extensions) != len(u.CQs) {
		return fmt.Errorf("core: certificate covers %d CQs, union has %d", len(c.Extensions), len(u.CQs))
	}
	for i, e := range c.Extensions {
		if e == nil {
			return fmt.Errorf("core: missing extension for CQ %d", i)
		}
		if e.BaseIndex != i || e.Base.String() != u.CQs[i].String() {
			return fmt.Errorf("core: extension %d does not match its base CQ", i)
		}
		if err := verifyExtension(u, e); err != nil {
			return fmt.Errorf("core: extension %d (%s): %w", i, e.Base.Name, err)
		}
		if !e.IsFreeConnex() {
			return fmt.Errorf("core: extension %d (%s) is not free-connex", i, e.Base.Name)
		}
	}
	return nil
}

// verifyExtension checks each virtual atom's provision, recursively
// verifying provider snapshots (which need S-connexity, not
// free-connexity).
func verifyExtension(u *cq.UCQ, e *ExtendedCQ) error {
	seen := make(map[string]bool)
	for _, a := range e.Base.Atoms {
		seen[a.Rel] = true
	}
	for k, va := range e.Virtuals {
		if !va.Atom.Virtual {
			return fmt.Errorf("virtual atom %d not marked virtual", k)
		}
		if seen[va.Atom.Rel] {
			return fmt.Errorf("virtual atom %d reuses relation symbol %q", k, va.Atom.Rel)
		}
		seen[va.Atom.Rel] = true
		if err := verifyProvision(u, e.Base, va); err != nil {
			return fmt.Errorf("virtual atom %d (%s): %w", k, va.Atom, err)
		}
	}
	return nil
}

func verifyProvision(u *cq.UCQ, target *cq.CQ, va VirtualAtom) error {
	p := va.Prov
	if p.ProviderIndex < 0 || p.ProviderIndex >= len(u.CQs) {
		return fmt.Errorf("provider index %d out of range", p.ProviderIndex)
	}
	provider := u.CQs[p.ProviderIndex]
	if p.Provider == nil {
		return fmt.Errorf("missing provider snapshot")
	}
	if p.Provider.Base.String() != provider.String() {
		return fmt.Errorf("provider snapshot does not match CQ %d", p.ProviderIndex)
	}
	// (1) Hom is a body-homomorphism from the provider's original body to
	// the target's original body.
	if !isBodyHom(p.Hom, provider, target) {
		return fmt.Errorf("mapping is not a body-homomorphism from %s to %s", provider.Name, target.Name)
	}
	// (2)+(3) V2 = h⁻¹(V1) ∩ S satisfies h(V2) = V1, V2 ⊆ S ⊆ free(provider),
	// and the provider snapshot is S-connex.
	free := provider.Free()
	if !free.ContainsAll(p.S) {
		return fmt.Errorf("S %v not contained in free(%s)", p.S, provider.Name)
	}
	v1 := va.Atom.VarSet()
	if !target.Vars().ContainsAll(v1) {
		return fmt.Errorf("provided variables %v not in target", v1)
	}
	image := make(cq.VarSet)
	for v := range p.S {
		if v1[p.Hom.Apply(v)] {
			image[p.Hom.Apply(v)] = true
		}
	}
	if !image.Equal(v1) {
		return fmt.Errorf("h(V2) = %v does not equal V1 = %v", image, v1)
	}
	// The provider snapshot must itself be a valid extension and S-connex.
	if err := verifyExtension(u, p.Provider); err != nil {
		return fmt.Errorf("provider snapshot: %w", err)
	}
	pq := p.Provider.Query()
	if !hypergraph.FromCQ(pq).IsSConnex(p.S) {
		return fmt.Errorf("provider snapshot is not %v-connex", p.S)
	}
	return nil
}

// isBodyHom checks that h maps every original atom of `from` onto an
// original atom of `to`.
func isBodyHom(h cq.Substitution, from, to *cq.CQ) bool {
	for _, a := range from.OriginalAtoms() {
		found := false
		for _, b := range to.OriginalAtoms() {
			if b.Rel != a.Rel || len(b.Vars) != len(a.Vars) {
				continue
			}
			match := true
			for i := range a.Vars {
				if h.Apply(a.Vars[i]) != b.Vars[i] {
					match = false
					break
				}
			}
			if match {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// FreshSymbol generates a deterministic fresh virtual relation symbol.
func FreshSymbol(cqIndex, atomIndex int) string {
	return fmt.Sprintf("_P%d_%d", cqIndex, atomIndex)
}

// canonicalVars returns the sorted distinct variables of a set.
func canonicalVars(s cq.VarSet) []cq.Variable {
	out := s.Sorted()
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// plainSnapshot wraps a base CQ as an extension with no virtual atoms.
func plainSnapshot(u *cq.UCQ, i int) *ExtendedCQ {
	return &ExtendedCQ{BaseIndex: i, Base: u.CQs[i].Clone()}
}

// homCache caches body-homomorphism lists between CQ pairs.
type homCache struct {
	u *cq.UCQ
	m map[[2]int][]cq.Substitution
}

func newHomCache(u *cq.UCQ) *homCache {
	return &homCache{u: u, m: make(map[[2]int][]cq.Substitution)}
}

// from j to i.
func (hc *homCache) homs(j, i int) []cq.Substitution {
	key := [2]int{j, i}
	if hs, ok := hc.m[key]; ok {
		return hs
	}
	hs := homomorphism.BodyHomomorphisms(hc.u.CQs[j], hc.u.CQs[i])
	hc.m[key] = hs
	return hs
}
