package core

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/cq"
	"repro/internal/database"
)

func TestUnionPlanExplain(t *testing.T) {
	u := cq.MustParse(example2)
	cert, ok := FindCertificate(u, nil)
	if !ok {
		t.Fatalf("no certificate")
	}
	inst := randomInstance(u, rand.New(rand.NewSource(12)), 20, 4)
	plan, err := NewUnionPlan(u, cert, inst)
	if err != nil {
		t.Fatalf("NewUnionPlan: %v", err)
	}
	ex := plan.Explain()
	for _, want := range []string{
		"Theorem 12 union plan",
		"certified extensions",
		"provider runs",
		"Cheater combinator",
		"elimination log",
		"top join tree",
	} {
		if !strings.Contains(ex, want) {
			t.Errorf("Explain missing %q", want)
		}
	}
}

func TestNewUnionPlanErrors(t *testing.T) {
	u := cq.MustParse(example2)
	cert, _ := FindCertificate(u, nil)
	// Missing relations surface as errors, not panics.
	if _, err := NewUnionPlan(u, cert, database.NewInstance()); err == nil {
		t.Errorf("empty instance accepted")
	}
	// Invalid certificate is rejected before any evaluation.
	bad := &Certificate{}
	if _, err := NewUnionPlan(u, bad, database.NewInstance()); err == nil {
		t.Errorf("empty certificate accepted")
	}
}

func TestFindCertificateRejectsInvalidUnion(t *testing.T) {
	if _, ok := FindCertificate(&cq.UCQ{}, nil); ok {
		t.Errorf("empty union certified")
	}
}

func TestCertificateStringAndCounts(t *testing.T) {
	u := cq.MustParse(example13)
	cert, ok := FindCertificate(u, nil)
	if !ok {
		t.Fatalf("no certificate")
	}
	if cert.TotalVirtualAtoms() < 3 {
		t.Errorf("Example 13 needs at least one virtual atom per CQ, got %d", cert.TotalVirtualAtoms())
	}
	s := cert.String()
	if !strings.Contains(s, "_P") {
		t.Errorf("certificate string lacks virtual atoms:\n%s", s)
	}
	// Extensions stringify as their queries.
	if cert.Extensions[0].String() == "" {
		t.Errorf("empty extension string")
	}
}

func TestSearchOptionsDefaults(t *testing.T) {
	var o *SearchOptions
	d := o.defaults(3)
	if d.MaxVirtualAtoms != 3 || d.MaxRounds != 8 || d.MaxCandidates != 160 {
		t.Errorf("defaults = %+v", d)
	}
	custom := (&SearchOptions{MaxVirtualAtoms: 1, MaxRounds: 2, MaxCandidates: 10}).defaults(3)
	if custom.MaxVirtualAtoms != 1 || custom.MaxRounds != 2 || custom.MaxCandidates != 10 {
		t.Errorf("custom = %+v", custom)
	}
}

func TestPrioritizeCandidatesCap(t *testing.T) {
	u := cq.MustParse(example2)
	hc := newHomCache(u)
	ext := []*ExtendedCQ{plainSnapshot(u, 0), plainSnapshot(u, 1)}
	cands := generateCandidates(u, ext, hc, 0)
	if len(cands) == 0 {
		t.Fatalf("no candidates for Q1")
	}
	capped := prioritizeCandidates(u.CQs[0], cands, 1)
	if len(capped) != 1 {
		t.Fatalf("cap not applied: %d", len(capped))
	}
	// The top-ranked candidate should touch the free-path {x,z,y}.
	touches := false
	for _, v := range capped[0].vars {
		if v == "z" {
			touches = true
		}
	}
	if !touches {
		t.Errorf("top candidate %v does not touch the free-path variable z", capped[0].vars)
	}
}
