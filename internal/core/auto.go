package core

import (
	"repro/internal/cost"
	"repro/internal/shard"
)

// probeCandidateTries bounds how many (head) partition candidates the cost
// probe scores; mirrors maxCandidateTries in internal/shard.
const probeCandidateTries = 4

// CostInputs assembles the cost model's view of this bound union for a
// prospective nShards-way sharding: the instance volume, the exact summed
// branch cardinality from the counting pass, the branch count, and the
// sharding probe — whether a dedup-free (head-variable, single-branch)
// sharding exists and how evenly its best candidate would split the
// estimated output. CPUs is left for the caller: the machine is not the
// union's to know.
func (p *UnionPlan) CostInputs(nShards int) cost.Inputs {
	in := cost.Inputs{
		ConstantDelay: true,
		Rows:          p.inst.TupleCount(),
		Answers:       p.AnswerEstimate(),
		Branches:      len(p.plans),
	}
	// The sharding probe scores only the regime where sharding clearly
	// wins: a single-extension union with no bonus answers, partitioned on
	// a head variable, keeps the merge dedup-free. Candidates are sorted
	// head-first, so the scan stops at the first existential one.
	if nShards > 1 && len(p.plans) == 1 && len(p.bonus) == 0 {
		e := p.Cert.Extensions[0]
		extInst := p.resolved[e]
		for i, cand := range shard.Candidates(e.Query(), extInst) {
			if i >= probeCandidateTries || !cand.Head {
				break
			}
			share := shard.CandidateShare(extInst, cand.Key, nShards)
			if share < 0 {
				continue
			}
			if !in.ShardableDisjoint || share < in.OutputShare {
				in.OutputShare = share
			}
			in.ShardableDisjoint = true
		}
	}
	return in
}
