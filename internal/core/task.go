package core

// Task producers for the work-stealing executor: a certified extension's
// CDY plan is decomposed into root-range tasks (resumable slices of its
// enumeration), so one heavy CQ branch fans out across workers instead of
// saturating a single per-branch goroutine. Tasks re-split when stolen and
// shed half of their remainder to idle workers — the executor drives both
// through exec.Task.Split, which here delegates to the engine's
// range-cursor SplitOff.

import (
	"repro/internal/database"
	"repro/internal/enumeration"
	"repro/internal/exec"
	"repro/internal/yannakakis"
)

// splitFactor is how many initial root-range tasks each member plan is cut
// into per executor worker. A small factor suffices: residual imbalance is
// repaired adaptively by steal-time splitting.
const splitFactor = 2

// planTask is one resumable root-range slice of a CDY plan's enumeration,
// yielding head tuples.
type planTask struct {
	it *yannakakis.Iterator
}

// NextBatch implements exec.Task: head values are appended straight from
// the engine's assignment registers, with no per-answer tuple allocation.
func (t *planTask) NextBatch(buf []database.Value, max int) ([]database.Value, int) {
	n := 0
	for n < max && t.it.Next() {
		buf = t.it.AppendHead(buf)
		n++
	}
	return buf, n
}

// Split implements exec.Task by carving off half of the slice's unvisited
// root rows.
func (t *planTask) Split() exec.Task {
	if half := t.it.SplitOff(); half != nil {
		return &planTask{it: half}
	}
	return nil
}

// planTasks cuts a prepared plan into root-range tasks, at most parts.
func planTasks(pl *yannakakis.Plan, parts int) []exec.Task {
	its := pl.Split(parts)
	out := make([]exec.Task, len(its))
	for i, it := range its {
		out[i] = &planTask{it: it}
	}
	return out
}

// execTasks builds the union's work units for an executor with the given
// worker count: the bonus answers recorded during preprocessing plus every
// member plan cut into root-range tasks. The boolean reports whether the
// task streams are pairwise disjoint and individually duplicate-free —
// true exactly when the union has one member and no bonus answers (a
// single CDY plan's head stream is duplicate-free, and root ranges
// partition it) — letting the merge skip deduplication.
func (p *UnionPlan) execTasks(workers int) ([]exec.Task, bool) {
	parts := splitFactor * workers
	if parts < 1 {
		parts = 1
	}
	var tasks []exec.Task
	if len(p.bonus) > 0 {
		tasks = append(tasks, enumeration.TaskOf(enumeration.NewSliceIterator(p.bonus)))
	}
	for _, pl := range p.plans {
		tasks = append(tasks, planTasks(pl, parts)...)
	}
	return tasks, len(p.plans) == 1 && len(p.bonus) == 0
}

// shardedExecTasks builds the work units of the sharded enumeration: per
// extension, one root-range task set per shard plan (unsharded fallbacks
// contribute their unsharded plan's task set), plus the bonus answers.
func (p *UnionPlan) shardedExecTasks(workers int) []exec.Task {
	parts := splitFactor * workers
	if parts < 1 {
		parts = 1
	}
	var tasks []exec.Task
	if len(p.bonus) > 0 {
		tasks = append(tasks, enumeration.TaskOf(enumeration.NewSliceIterator(p.bonus)))
	}
	for i, pl := range p.plans {
		sp := p.shardPlans[i]
		if sp == nil {
			tasks = append(tasks, planTasks(pl, parts)...)
			continue
		}
		// Shards already partition the branch; a light initial cut per
		// shard keeps task counts bounded while steal-time splitting
		// decomposes whichever shard turns out heavy.
		perShard := parts / len(sp)
		if perShard < 1 {
			perShard = 1
		}
		for _, s := range sp {
			tasks = append(tasks, planTasks(s, perShard)...)
		}
	}
	return tasks
}
