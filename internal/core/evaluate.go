package core

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/cq"
	"repro/internal/database"
	"repro/internal/enumeration"
	"repro/internal/yannakakis"
)

// UnionPlan is a prepared Theorem 12 evaluation of a certified free-connex
// UCQ: linear preprocessing, constant delay, no duplicate answers.
//
// Preparation follows the proof of Theorem 12. For each CQ (providers
// before consumers, by the recursive structure of the certificate), every
// virtual atom's relation is instantiated by running the provider's
// S-connex enumeration (Lemma 8): each provider S-tuple is extended to a
// full homomorphism, emitted as a bona fide answer of the union (the
// "answers produced along the way" of the proof), and translated through
// the body-homomorphism into a row of the virtual relation. The extended
// CQs are then enumerated by the CDY engine, and the whole stream is
// wrapped in the Cheater's Lemma combinator (Lemma 5), which absorbs the
// constantly-many linear stalls and the constant duplication factor.
type UnionPlan struct {
	U    *cq.UCQ
	Cert *Certificate

	// bonus holds the provider answers produced while instantiating
	// virtual relations; they are answers of the union.
	bonus []database.Tuple
	plans []*yannakakis.Plan
	// m is the duplication bound handed to the Cheater combinator.
	m int
	// resolved caches instantiated instances per extension snapshot.
	resolved map[*ExtendedCQ]*database.Instance
	inst     *database.Instance
	stats    UnionStats

	// estimate caches the summed branch cardinality (-1 until computed),
	// used to pre-size the parallel merge's dedup set. It is the only
	// field written after preparation, so it is atomic: a bound plan served
	// from the catalog's bind cache is iterated by concurrent requests, and
	// racing computations store the same value.
	estimate atomic.Int64

	// bonusSet indexes bonus for ContainsAnswer, built lazily under
	// bonusOnce (cached plans serve concurrent membership probes).
	bonusOnce sync.Once
	bonusSet  *database.TupleSet

	// Sharded enumeration state, built by PrepareShards: per extension,
	// one CDY plan per shard (nil when the extension has no safe partition
	// attribute and stays unsharded).
	shardN        int
	shardPlans    [][]*yannakakis.Plan
	shardVars     []cq.Variable
	shardDisjoint bool
	shardEstimate int64
}

// UnionStats reports preprocessing counters of a union plan.
type UnionStats struct {
	// ProviderRuns counts Lemma 8 provider enumerations.
	ProviderRuns int
	// BonusAnswers counts answers emitted by provider runs.
	BonusAnswers int
	// VirtualTuples counts rows across instantiated virtual relations.
	VirtualTuples int
}

// Stats returns the plan's preprocessing counters.
func (p *UnionPlan) Stats() UnionStats { return p.stats }

// NewUnionPlan verifies the certificate and performs the full Theorem 12
// preprocessing over the instance.
//
// The (u, cert) pair is only read: a certificate found once may be shared
// by concurrent NewUnionPlan calls binding it to different instances (the
// prepared-plan reuse a long-lived server depends on). All mutable state —
// virtual relations, bonus answers, per-CQ engine plans — lives in the
// returned UnionPlan.
func NewUnionPlan(u *cq.UCQ, cert *Certificate, inst *database.Instance) (*UnionPlan, error) {
	return NewUnionPlanCtx(context.Background(), u, cert, inst)
}

// NewUnionPlanCtx is NewUnionPlan with cancellation: the per-extension
// preprocessing (provider runs, virtual-relation instantiation, CDY
// preparation) checks ctx between extensions and aborts with ctx's error
// when the caller — typically a disconnected client — has gone away.
func NewUnionPlanCtx(ctx context.Context, u *cq.UCQ, cert *Certificate, inst *database.Instance) (*UnionPlan, error) {
	if err := cert.Verify(u); err != nil {
		return nil, err
	}
	p := &UnionPlan{
		U:        u,
		Cert:     cert,
		resolved: make(map[*ExtendedCQ]*database.Instance),
		inst:     inst,
	}
	p.estimate.Store(-1)
	for _, e := range cert.Extensions {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		extInst, err := p.resolve(e)
		if err != nil {
			return nil, err
		}
		plan, err := yannakakis.Prepare(e.Query(), extInst, nil)
		if err != nil {
			return nil, fmt.Errorf("core: preparing %s: %w", e.Base.Name, err)
		}
		p.plans = append(p.plans, plan)
	}
	p.m = len(p.plans) + p.stats.ProviderRuns + 1
	return p, nil
}

// resolve instantiates the virtual relations of e (recursively resolving
// provider snapshots) and returns an instance overlaying them on the base.
func (p *UnionPlan) resolve(e *ExtendedCQ) (*database.Instance, error) {
	if inst, ok := p.resolved[e]; ok {
		return inst, nil
	}
	inst := p.inst.ShallowClone()
	for _, va := range e.Virtuals {
		rel, err := p.runProvider(va)
		if err != nil {
			return nil, err
		}
		rel.Dedup()
		p.stats.VirtualTuples += rel.Len()
		inst.AddRelation(rel)
	}
	p.resolved[e] = inst
	return inst, nil
}

// runProvider executes one Lemma 8 provider enumeration: it prepares the
// provider snapshot with enumeration set S, extends each S-tuple to a full
// answer (recording it as a bonus answer of the union), and translates it
// into the virtual relation through the body-homomorphism.
func (p *UnionPlan) runProvider(va VirtualAtom) (*database.Relation, error) {
	prov := va.Prov
	provInst, err := p.resolve(prov.Provider)
	if err != nil {
		return nil, err
	}
	pq := prov.Provider.Query()
	plan, err := yannakakis.Prepare(pq, provInst, prov.S)
	if err != nil {
		return nil, fmt.Errorf("core: preparing provider %s: %w", pq.Name, err)
	}
	p.stats.ProviderRuns++

	// preimages[k] lists the provider variables v2 ∈ S with h(v2) equal to
	// the k-th provided variable; their values must agree for a provider
	// answer to translate (the µ(h⁻¹(v1)) of Lemma 8).
	preimages := make([][]cq.Variable, len(va.Atom.Vars))
	for k, v1 := range va.Atom.Vars {
		for v2 := range prov.S {
			if prov.Hom.Apply(v2) == v1 {
				preimages[k] = append(preimages[k], v2)
			}
		}
		if len(preimages[k]) == 0 {
			return nil, fmt.Errorf("core: provided variable %s has no preimage in S", v1)
		}
	}

	rel := database.NewRelation(va.Atom.Rel, len(va.Atom.Vars))
	row := make(database.Tuple, len(va.Atom.Vars))
	it := plan.Iterator()
	for it.Next() {
		it.Extend()
		// The extension is a full answer of the provider CQ: emit it.
		head := make(database.Tuple, len(pq.Head))
		for i, v := range pq.Head {
			head[i] = it.Value(v)
		}
		p.bonus = append(p.bonus, head)
		p.stats.BonusAnswers++
		// Translate: all preimages of a provided variable must agree.
		ok := true
		for k, pre := range preimages {
			val := it.Value(pre[0])
			for _, v2 := range pre[1:] {
				if it.Value(v2) != val {
					ok = false
					break
				}
			}
			if !ok {
				break
			}
			row[k] = val
		}
		if ok {
			rel.Append(row...)
		}
	}
	return rel, nil
}

// Explain renders a human-readable description of the union plan: the
// certified extensions, the provider runs performed during preprocessing,
// and each member's engine plan.
func (p *UnionPlan) Explain() string {
	var b strings.Builder
	b.WriteString("Theorem 12 union plan\n")
	b.WriteString("certified extensions:\n")
	for _, line := range strings.Split(p.Cert.String(), "\n") {
		b.WriteString("  " + line + "\n")
	}
	st := p.Stats()
	fmt.Fprintf(&b, "preprocessing: %d provider runs, %d bonus answers, %d virtual tuples\n",
		st.ProviderRuns, st.BonusAnswers, st.VirtualTuples)
	fmt.Fprintf(&b, "duplication bound handed to the Cheater combinator: %d\n", p.m)
	for i, plan := range p.plans {
		fmt.Fprintf(&b, "-- member %d --\n%s", i, plan.Explain())
	}
	return b.String()
}

// Iterator returns a fresh duplicate-free iterator over the union's
// answers (head tuples, positional).
func (p *UnionPlan) Iterator() enumeration.Iterator {
	return enumeration.NewCheater(enumeration.NewChain(p.branches()...), p.m)
}

// DeltaIterator returns a fresh duplicate-free iterator restricted to the
// union members a change to the named relations can affect: the bonus
// answers (provider runs may reference the relations transitively) plus
// the head streams of extensions whose relation footprint meets names.
// Untouched branches enumerate the same answers at both ends of an append
// delta, so semi-naive maintenance skips them. With nil or empty names it
// degenerates to Iterator.
func (p *UnionPlan) DeltaIterator(names map[string]struct{}) enumeration.Iterator {
	if len(names) == 0 {
		return p.Iterator()
	}
	its := make([]enumeration.Iterator, 0, len(p.plans)+1)
	its = append(its, enumeration.NewSliceIterator(p.bonus))
	for i, plan := range p.plans {
		if p.Cert.Extensions[i].TouchesRelations(names) {
			its = append(its, &headIterator{it: plan.Iterator()})
		}
	}
	return enumeration.NewCheater(enumeration.NewChain(its...), p.m)
}

// ExecOptions tunes a parallel (executor-backed) enumeration of a union
// plan.
type ExecOptions struct {
	// BatchSize is the per-task batch size; ≤ 0 selects the default.
	BatchSize int
	// Workers bounds the work-stealing executor's pool; ≤ 0 selects
	// GOMAXPROCS.
	Workers int
	// SpillBudget, when positive, bounds the merge dedup set's in-memory
	// entry count; past it dedup migrates to a disk-backed table. See
	// enumeration.UnionOptions.
	SpillBudget int
	// SpillDir hosts spilled dedup tables; empty selects os.TempDir().
	SpillDir string
}

// resolveWorkers maps the option onto a concrete pool size.
func (o ExecOptions) resolveWorkers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// IteratorParallel returns a fresh duplicate-free iterator that drains the
// union's branches concurrently on the work-stealing executor, merging
// through a shared dedup set. The answer set is identical to Iterator's;
// the order is nondeterministic. The constant-delay guarantee is traded for
// throughput: answers arrive as fast as the slowest lock-free batch merge,
// not one by one. batchSize ≤ 0 selects enumeration.DefaultBatchSize.
//
// The returned union must be drained to exhaustion or Closed; see
// enumeration.ParallelUnion.
func (p *UnionPlan) IteratorParallel(batchSize int) *enumeration.ParallelUnion {
	return p.IteratorParallelCtx(context.Background(), ExecOptions{BatchSize: batchSize})
}

// IteratorParallelCtx is the full parallel entry point: every member plan
// is cut into root-range tasks that the executor steals and re-splits, so
// a single heavy CQ branch decomposes across opts.Workers workers instead
// of serialising on one goroutine. Cancelling ctx releases the workers
// within one batch, whether or not the stream is Closed. When the union
// has a single member and no bonus answers, the root-range task streams
// are pairwise disjoint and the merge skips deduplication entirely.
func (p *UnionPlan) IteratorParallelCtx(ctx context.Context, opts ExecOptions) *enumeration.ParallelUnion {
	workers := opts.resolveWorkers()
	tasks, disjoint := p.execTasks(workers)
	uo := enumeration.UnionOptions{
		BatchSize:   opts.BatchSize,
		Workers:     workers,
		Disjoint:    disjoint,
		SpillBudget: opts.SpillBudget,
		SpillDir:    opts.SpillDir,
	}
	if !disjoint {
		uo.SizeHint = p.sizeHint()
	}
	return enumeration.NewParallelUnionTasks(ctx, p.U.Arity(), uo, tasks)
}

// AnswerEstimate lazily computes and caches the union's summed branch
// cardinality — the bonus answers plus each member plan's exact output
// count (one linear counting pass per branch, no enumeration).
// Cross-branch duplicates make this an upper bound on the distinct answer
// count; for a single-branch union with no bonus answers it is exact. The
// parallel merge pre-sizes its dedup set from it, and the cost model reads
// it as the output-volume input of the mode decision.
func (p *UnionPlan) AnswerEstimate() int64 {
	est := p.estimate.Load()
	if est < 0 {
		est = int64(len(p.bonus))
		for _, pl := range p.plans {
			est += pl.CountAnswers()
		}
		p.estimate.Store(est)
	}
	return est
}

// ExactCount returns the union's answer count without enumerating, when
// the pipeline is duplicate-free by construction: a single certified
// extension with no bonus answers enumerates each answer exactly once, so
// its counting pass (yannakakis CountAnswers) is the answer count. ok is
// false when the union has several branches or provider bonus answers —
// cross-branch duplicates then make counting require deduplication, i.e.
// enumeration.
func (p *UnionPlan) ExactCount() (int64, bool) {
	if len(p.plans) == 1 && len(p.bonus) == 0 {
		return p.plans[0].CountAnswers(), true
	}
	return 0, false
}

// ContainsAnswer reports whether t is an answer of the union over the
// plan's bound instance, in constant time: the bonus answers are probed
// through a lazily-built TupleSet and each certified branch through its
// CDY full-tree head index (yannakakis ContainsHead). Delta maintenance
// uses it as the old-version membership test — a candidate answer found
// over the appended tuples is new iff the plan bound at the previous
// version does not contain it.
func (p *UnionPlan) ContainsAnswer(t database.Tuple) bool {
	if len(t) != p.U.Arity() {
		return false
	}
	p.bonusOnce.Do(func() {
		s := database.NewTupleSet(len(p.bonus))
		for _, b := range p.bonus {
			s.Insert(b)
		}
		p.bonusSet = s
	})
	if p.bonusSet.Contains(t) {
		return true
	}
	for _, pl := range p.plans {
		if pl.ContainsHead(t) {
			return true
		}
	}
	return false
}

// sizeHint clamps AnswerEstimate onto the merge's pre-sizing range.
func (p *UnionPlan) sizeHint() int {
	est := p.AnswerEstimate()
	if est > enumeration.MaxSizeHint {
		return enumeration.MaxSizeHint
	}
	return int(est)
}

// branches builds the union's member streams: the bonus answers recorded
// during preprocessing, then one head stream per extended CQ.
func (p *UnionPlan) branches() []enumeration.Iterator {
	its := make([]enumeration.Iterator, 0, len(p.plans)+1)
	its = append(its, enumeration.NewSliceIterator(p.bonus))
	for _, plan := range p.plans {
		its = append(its, &headIterator{it: plan.Iterator()})
	}
	return its
}

// Materialize drains a fresh iterator into a relation.
func (p *UnionPlan) Materialize() *database.Relation {
	out := database.NewRelation("union", p.U.Arity())
	it := p.Iterator()
	for {
		t, ok := it.Next()
		if !ok {
			return out
		}
		out.Append(t...)
	}
}

// headIterator adapts a CDY plan iterator to the enumeration.Iterator
// interface, yielding head tuples.
type headIterator struct {
	it *yannakakis.Iterator
}

func (h *headIterator) Next() (database.Tuple, bool) {
	if !h.it.Next() {
		return nil, false
	}
	return h.it.HeadTuple(), true
}

// NextBatch implements enumeration.BatchIterator: head values are appended
// straight from the engine's assignment registers, with no per-answer tuple
// allocation.
func (h *headIterator) NextBatch(buf []database.Value, max int) ([]database.Value, int) {
	n := 0
	for n < max && h.it.Next() {
		buf = h.it.AppendHead(buf)
		n++
	}
	return buf, n
}

// Contains implements enumeration.Testable via the plan's constant-time
// membership test.
func (h *headIterator) Contains(t database.Tuple) bool {
	return h.it.Plan().ContainsHead(t)
}

// NewAlgorithmOneUnion evaluates a union of two free-connex CQs with the
// paper's Algorithm 1 (Theorem 4): constant working memory, no Cheater
// queue. Both CQs must be free-connex as plain CQs.
func NewAlgorithmOneUnion(u *cq.UCQ, inst *database.Instance) (enumeration.Iterator, error) {
	if len(u.CQs) != 2 {
		return nil, fmt.Errorf("core: Algorithm 1 unions exactly two CQs, got %d", len(u.CQs))
	}
	return NewAlgorithmOneUnionK(u, inst)
}

// NewAlgorithmOneUnionK evaluates a union of any number of free-connex CQs
// by the recursion in the proof of Theorem 4: Algorithm 1 treats the first
// CQ as Q1 and the union of the rest as Q2, whose membership test is the
// disjunction of the members' constant-time tests and whose iterator is
// the recursive union. Working memory stays constant in the input.
func NewAlgorithmOneUnionK(u *cq.UCQ, inst *database.Instance) (enumeration.Iterator, error) {
	if len(u.CQs) == 0 {
		return nil, fmt.Errorf("core: empty union")
	}
	plans := make([]*yannakakis.Plan, len(u.CQs))
	for i, q := range u.CQs {
		p, err := yannakakis.Prepare(q, inst, nil)
		if err != nil {
			return nil, err
		}
		plans[i] = p
	}
	return algorithmOneChain(plans), nil
}

// algorithmOneChain builds the Theorem 4 recursion over prepared plans.
func algorithmOneChain(plans []*yannakakis.Plan) enumeration.Iterator {
	if len(plans) == 1 {
		return &headIterator{it: plans[0].Iterator()}
	}
	rest := &unionTestable{
		inner: algorithmOneChain(plans[1:]),
		plans: plans[1:],
	}
	return enumeration.NewAlgorithmOne(&headIterator{it: plans[0].Iterator()}, rest)
}

// unionTestable is a duplicate-free union iterator with a constant-time
// membership test: a tuple belongs to the union iff some member plan
// contains it.
type unionTestable struct {
	inner enumeration.Iterator
	plans []*yannakakis.Plan
}

func (u *unionTestable) Next() (database.Tuple, bool) { return u.inner.Next() }

func (u *unionTestable) Contains(t database.Tuple) bool {
	for _, p := range u.plans {
		if p.ContainsHead(t) {
			return true
		}
	}
	return false
}
