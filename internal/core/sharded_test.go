package core

import (
	"math/rand"
	"testing"

	"repro/internal/cq"
	"repro/internal/database"
	"repro/internal/workload"
)

// TestIteratorParallelShardedMatchesSequential runs the sharded iterator
// against the sequential pipeline on the paper's union examples over random
// instances, across shard counts: identical answer sets, no duplicates.
func TestIteratorParallelShardedMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, src := range []string{example2, example13} {
		u := cq.MustParse(src)
		cert, ok := FindCertificate(u, nil)
		if !ok {
			t.Fatalf("no certificate for\n%s", u)
		}
		for trial := 0; trial < 3; trial++ {
			inst := randomInstance(u, rng, 60, 8)
			plan, err := NewUnionPlan(u, cert, inst)
			if err != nil {
				t.Fatalf("NewUnionPlan: %v", err)
			}
			want := sortedTuples(plan.Iterator())
			for _, n := range []int{1, 2, 8} {
				if err := plan.PrepareShards(n); err != nil {
					t.Fatalf("PrepareShards(%d): %v", n, err)
				}
				it, err := plan.IteratorParallelSharded(0)
				if err != nil {
					t.Fatalf("IteratorParallelSharded: %v", err)
				}
				got := sortedTuples(it)
				if len(got) != len(want) {
					t.Fatalf("trial %d shards %d: %d answers, want %d", trial, n, len(got), len(want))
				}
				for i := range want {
					if !got[i].Equal(want[i]) {
						t.Fatalf("trial %d shards %d: answer %d = %v, want %v", trial, n, i, got[i], want[i])
					}
				}
			}
		}
	}
}

// TestShardedDisjointSingleBranch: a single free-connex CQ partitioned on a
// head variable must be recognised as disjoint (dedup-free merge) and still
// produce the exact answer set.
func TestShardedDisjointSingleBranch(t *testing.T) {
	u := cq.MustParse("Q(x,y,w) <- R1(x,y), R2(y,w).")
	cert, ok := FindCertificate(u, nil)
	if !ok {
		t.Fatal("no certificate")
	}
	inst := workload.SkewedJoin(800, 12, 23, 30, 4, 7)
	plan, err := NewUnionPlan(u, cert, inst)
	if err != nil {
		t.Fatal(err)
	}
	want := sortedTuples(plan.Iterator())
	if len(want) != 800*12+23*30*4 {
		t.Fatalf("unexpected sequential answer count %d", len(want))
	}
	for _, n := range []int{1, 2, 8} {
		if err := plan.PrepareShards(n); err != nil {
			t.Fatalf("PrepareShards(%d): %v", n, err)
		}
		if !plan.ShardedDisjoint() {
			t.Fatalf("shards=%d: single head-partitioned branch not marked disjoint\n%s", n, plan.ExplainShards())
		}
		it, err := plan.IteratorParallelSharded(0)
		if err != nil {
			t.Fatal(err)
		}
		got := sortedTuples(it)
		if len(got) != len(want) {
			t.Fatalf("shards=%d: %d answers, want %d", n, len(got), len(want))
		}
		for i := range want {
			if !got[i].Equal(want[i]) {
				t.Fatalf("shards=%d: answer %d = %v, want %v", n, i, got[i], want[i])
			}
		}
		if it.Duplicates() != 0 {
			t.Fatalf("shards=%d: disjoint merge suppressed %d duplicates", n, it.Duplicates())
		}
	}
}

// TestShardedFallbackSelfJoin: a free-connex self-join whose variables all
// sit at conflicting columns has no safe partition attribute; the sharded
// iterator must fall back to the unsharded branch and stay correct. The
// instance is skewed so the fallback is exercised exactly where sharding
// would have been most tempting.
func TestShardedFallbackSelfJoin(t *testing.T) {
	u := cq.MustParse("Q(x,y,z) <- R(x,y), R(y,z).")
	cert, ok := FindCertificate(u, nil)
	if !ok {
		t.Fatal("no certificate for the full self-join")
	}
	inst := database.NewInstance()
	r := database.NewRelation("R", 2)
	// Skew: vertex 0 has a huge out- and in-neighborhood.
	for i := int64(1); i <= 400; i++ {
		r.AppendInts(0, i)
		r.AppendInts(i, 0)
	}
	for i := int64(401); i < 480; i++ {
		r.AppendInts(i, i+1)
	}
	inst.AddRelation(r)
	plan, err := NewUnionPlan(u, cert, inst)
	if err != nil {
		t.Fatal(err)
	}
	want := sortedTuples(plan.Iterator())
	if err := plan.PrepareShards(8); err != nil {
		t.Fatal(err)
	}
	if plan.shardPlans[0] != nil {
		t.Fatalf("self-join was sharded despite conflicting columns\n%s", plan.ExplainShards())
	}
	it, err := plan.IteratorParallelSharded(0)
	if err != nil {
		t.Fatal(err)
	}
	got := sortedTuples(it)
	if len(got) != len(want) {
		t.Fatalf("fallback: %d answers, want %d", len(got), len(want))
	}
	for i := range want {
		if !got[i].Equal(want[i]) {
			t.Fatalf("fallback: answer %d = %v, want %v", i, got[i], want[i])
		}
	}
}

// TestIteratorParallelShardedRequiresPrepare: calling the sharded iterator
// without PrepareShards is a usage error, not a silent sequential run.
func TestIteratorParallelShardedRequiresPrepare(t *testing.T) {
	u := cq.MustParse("Q(x,y,w) <- R1(x,y), R2(y,w).")
	cert, ok := FindCertificate(u, nil)
	if !ok {
		t.Fatal("no certificate")
	}
	inst := workload.Chain([]string{"R1", "R2"}, []int{2, 2}, 10, 1, 3)
	plan, err := NewUnionPlan(u, cert, inst)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plan.IteratorParallelSharded(0); err == nil {
		t.Fatal("IteratorParallelSharded before PrepareShards succeeded")
	}
}

// TestSizeHintMatchesCardinality: the lazily cached estimate equals the
// exact enumerated count for a duplicate-free union.
func TestSizeHintMatchesCardinality(t *testing.T) {
	u := cq.MustParse("Q(x,y,w) <- R1(x,y), R2(y,w).")
	cert, ok := FindCertificate(u, nil)
	if !ok {
		t.Fatal("no certificate")
	}
	inst := workload.Chain([]string{"R1", "R2"}, []int{2, 2}, 100, 3, 11)
	plan, err := NewUnionPlan(u, cert, inst)
	if err != nil {
		t.Fatal(err)
	}
	want := len(sortedTuples(plan.Iterator()))
	if got := plan.sizeHint(); got != want {
		t.Fatalf("sizeHint = %d, enumeration yields %d", got, want)
	}
}
