package core

// Shard-aware planning for the Theorem 12 pipeline: each certified
// extension is hash-partitioned on a safe join-key attribute chosen from
// its join structure, one CDY plan is prepared per shard, and the shard
// streams feed the parallel union merge as extra branches. A single heavy
// CQ branch thus fans out across workers instead of saturating one — the
// skew regime of unbalanced UCQ instances — while extensions with no safe
// attribute (e.g. self-joins with conflicting columns) transparently fall
// back to their unsharded plan.
//
// When the union has one extension, no bonus answers, and a head partition
// variable, the shard streams are pairwise disjoint and individually
// duplicate-free, so the merge skips deduplication entirely; this is where
// sharded enumeration beats the per-branch merge even on a single core.

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/cq"
	"repro/internal/enumeration"
	"repro/internal/shard"
	"repro/internal/yannakakis"
)

// PrepareShards builds the n-way sharded enumeration state: for every
// extension it picks a partition attribute from the query's join structure
// (preferring head variables, whose shard outputs are disjoint, and
// skipping attributes whose input routes too unevenly), partitions the
// extension's resolved instance, and prepares one CDY plan per shard.
// Extensions with no safe attribute keep their unsharded plan. The call is
// idempotent for a given n and must precede IteratorParallelSharded.
func (p *UnionPlan) PrepareShards(n int) error {
	if n < 1 {
		return fmt.Errorf("core: shard count %d < 1", n)
	}
	if p.shardN == n {
		return nil
	}
	plans := make([][]*yannakakis.Plan, len(p.plans))
	vars := make([]cq.Variable, len(p.plans))
	disjoint := len(p.plans) == 1 && len(p.bonus) == 0
	est := int64(len(p.bonus))
	for i, e := range p.Cert.Extensions {
		eq := e.Query()
		sh, cand, ok := shard.ChooseAndPartition(eq, p.resolved[e], n)
		if !ok {
			// No safe partition attribute: the branch stays unsharded. A
			// lone unsharded CDY branch is still duplicate-free, so it does
			// not break the union's disjointness.
			est += p.plans[i].CountAnswers()
			continue
		}
		sp := make([]*yannakakis.Plan, len(sh.Shards))
		for j, s := range sh.Shards {
			pl, err := yannakakis.Prepare(eq, s.Inst, nil)
			if err != nil {
				return fmt.Errorf("core: preparing shard %d of %s: %w", j, e.Base.Name, err)
			}
			sp[j] = pl
			est += pl.CountAnswers()
		}
		plans[i] = sp
		vars[i] = cand.Var
		if !cand.Head {
			// An existential partition variable can replay one head tuple
			// from several shards: global dedup stays on.
			disjoint = false
		}
	}
	p.shardN, p.shardPlans, p.shardVars = n, plans, vars
	p.shardDisjoint, p.shardEstimate = disjoint, est
	return nil
}

// ShardedDisjoint reports whether the prepared sharding proved its shard
// streams pairwise disjoint (the merge then skips deduplication).
func (p *UnionPlan) ShardedDisjoint() bool { return p.shardDisjoint }

// IteratorParallelSharded returns a fresh duplicate-free iterator over the
// union's answers in which every sharded extension contributes its shard
// plans as executor tasks, pre-sized from the shards' summed cardinality
// estimates. PrepareShards must have been called. The answer set is
// identical to Iterator's; the order is nondeterministic. The returned
// union must be drained to exhaustion or Closed.
func (p *UnionPlan) IteratorParallelSharded(batchSize int) (*enumeration.ParallelUnion, error) {
	return p.IteratorParallelShardedCtx(context.Background(), ExecOptions{BatchSize: batchSize})
}

// IteratorParallelShardedCtx is the sharded enumeration on the
// work-stealing executor: every shard plan is further cut into root-range
// tasks, and a heavy shard — one whose keys produce most of the output —
// re-splits when stolen instead of serialising on a single worker (the
// output-skew regime input-balance sharding cannot see). Cancelling ctx
// releases the workers within one batch. Shard-level disjointness (head
// partition variable) is preserved by root-range splitting, so the merge
// still skips deduplication when PrepareShards proved the streams
// disjoint.
func (p *UnionPlan) IteratorParallelShardedCtx(ctx context.Context, opts ExecOptions) (*enumeration.ParallelUnion, error) {
	if p.shardN == 0 {
		return nil, fmt.Errorf("core: IteratorParallelSharded before PrepareShards")
	}
	hint := p.shardEstimate
	if hint > enumeration.MaxSizeHint {
		hint = enumeration.MaxSizeHint
	}
	workers := opts.resolveWorkers()
	uo := enumeration.UnionOptions{
		BatchSize:   opts.BatchSize,
		Workers:     workers,
		Disjoint:    p.shardDisjoint,
		SpillBudget: opts.SpillBudget,
		SpillDir:    opts.SpillDir,
	}
	if !p.shardDisjoint {
		uo.SizeHint = int(hint)
	}
	return enumeration.NewParallelUnionTasks(ctx, p.U.Arity(), uo, p.shardedExecTasks(workers)), nil
}

// ExplainShards renders the prepared sharding: per extension, the partition
// attribute and shard count, or the fallback notice.
func (p *UnionPlan) ExplainShards() string {
	if p.shardN == 0 {
		return "no sharding prepared\n"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "sharded enumeration: %d shards, disjoint=%v, estimated answers=%d\n",
		p.shardN, p.shardDisjoint, p.shardEstimate)
	for i := range p.plans {
		if p.shardPlans[i] == nil {
			fmt.Fprintf(&b, "  member %d: unsharded (no safe partition attribute)\n", i)
			continue
		}
		fmt.Fprintf(&b, "  member %d: partitioned on %s across %d shards\n",
			i, p.shardVars[i], len(p.shardPlans[i]))
	}
	return b.String()
}
