package core

import (
	"math/rand"
	"testing"

	"repro/internal/baseline"
	"repro/internal/cq"
	"repro/internal/enumeration"
)

// TestAlgorithmOneUnionKMatchesBaseline exercises the Theorem 4 recursion
// on unions of 1..4 free-connex CQs over shared relations.
func TestAlgorithmOneUnionKMatchesBaseline(t *testing.T) {
	sources := []string{
		"Q1(x,y) <- R1(x,y).",
		`
			Q1(x,y) <- R1(x,y).
			Q2(x,y) <- R2(x,y), R3(y).
		`,
		`
			Q1(x,y) <- R1(x,y).
			Q2(x,y) <- R2(x,y), R3(y).
			Q3(x,y) <- R1(x,y), R3(x).
		`,
		`
			Q1(x,y) <- R1(x,y).
			Q2(x,y) <- R2(x,y).
			Q3(x,y) <- R1(y,x).
			Q4(x,y) <- R2(y,x).
		`,
	}
	rng := rand.New(rand.NewSource(44))
	for _, src := range sources {
		u := cq.MustParse(src)
		for trial := 0; trial < 8; trial++ {
			inst := randomInstance(u, rng, 25, 5)
			it, err := NewAlgorithmOneUnionK(u, inst)
			if err != nil {
				t.Fatalf("%s: %v", src, err)
			}
			got := enumeration.Collect(it)
			seen := make(map[string]bool)
			for _, g := range got {
				if seen[g.Key()] {
					t.Fatalf("%s trial %d: duplicate %v", src, trial, g)
				}
				seen[g.Key()] = true
			}
			want, err := baseline.EvalUCQ(u, inst)
			if err != nil {
				t.Fatalf("baseline: %v", err)
			}
			if len(got) != want.Len() {
				t.Fatalf("%s trial %d: %d answers, want %d", src, trial, len(got), want.Len())
			}
			for i := 0; i < want.Len(); i++ {
				if !seen[want.Row(i).Key()] {
					t.Fatalf("%s trial %d: missing %v", src, trial, want.Row(i))
				}
			}
		}
	}
}

func TestAlgorithmOneUnionKRejectsNonFreeConnex(t *testing.T) {
	u := cq.MustParse(`
		Q1(x,y) <- R1(x,z), R2(z,y).
		Q2(x,y) <- R1(x,y).
	`)
	inst := randomInstance(u, rand.New(rand.NewSource(1)), 10, 4)
	if _, err := NewAlgorithmOneUnionK(u, inst); err == nil {
		t.Errorf("non-free-connex member accepted")
	}
	if _, err := NewAlgorithmOneUnionK(&cq.UCQ{}, inst); err == nil {
		t.Errorf("empty union accepted")
	}
}
