package core

import (
	"math/rand"
	"testing"

	"repro/internal/baseline"
	"repro/internal/cq"
	"repro/internal/database"
	"repro/internal/enumeration"
)

// randomInstance fills every relation of the union's schema with random
// tuples over a small domain.
func randomInstance(u *cq.UCQ, rng *rand.Rand, rows int, dom int64) *database.Instance {
	inst := database.NewInstance()
	for _, d := range u.Schema() {
		r := database.NewRelation(d.Name, d.Arity)
		for i := 0; i < rows; i++ {
			row := make([]int64, d.Arity)
			for c := range row {
				row[c] = rng.Int63n(dom)
			}
			r.AppendInts(row...)
		}
		r.Dedup()
		inst.AddRelation(r)
	}
	return inst
}

// checkUnionAgainstBaseline certifies u, evaluates it, and compares with
// the naive evaluator.
func checkUnionAgainstBaseline(t *testing.T, u *cq.UCQ, inst *database.Instance) {
	t.Helper()
	cert, ok := FindCertificate(u, nil)
	if !ok {
		t.Fatalf("no certificate found for\n%s", u)
	}
	plan, err := NewUnionPlan(u, cert, inst)
	if err != nil {
		t.Fatalf("NewUnionPlan: %v", err)
	}
	got := plan.Materialize().SortedRows()
	wantRel, err := baseline.EvalUCQ(u, inst)
	if err != nil {
		t.Fatalf("baseline: %v", err)
	}
	want := wantRel.SortedRows()
	if len(got) != len(want) {
		t.Fatalf("got %d answers, want %d\ngot:  %v\nwant: %v", len(got), len(want), got, want)
	}
	for i := range want {
		if !got[i].Equal(want[i]) {
			t.Fatalf("answer %d = %v, want %v", i, got[i], want[i])
		}
	}
	// No duplicates by construction of the Cheater; double-check.
	seen := make(map[string]bool, len(got))
	for _, g := range got {
		if seen[g.Key()] {
			t.Fatalf("duplicate answer %v", g)
		}
		seen[g.Key()] = true
	}
}

const example2 = `
	Q1(x,y,w) <- R1(x,z), R2(z,y), R3(y,w).
	Q2(x,y,w) <- R1(x,y), R2(y,w).
`

const example13 = `
	Q1(x,y,v,u) <- R1(x,z1), R2(z1,z2), R3(z2,z3), R4(z3,y), R5(y,v,u).
	Q2(x,y,v,u) <- R1(x,y), R2(y,v), R3(v,z1), R4(z1,u), R5(u,t1,t2).
	Q3(x,y,v,u) <- R1(x,z1), R2(z1,y), R3(y,v), R4(v,u), R5(u,t1,t2).
`

// Example 21 as two body-isomorphic CQs sharing one body, heads rewritten
// per the paper's one-body notation.
const example21 = `
	Q1(w,y,x,z) <- R1(w,v), R2(v,y), R3(y,z), R4(z,x).
	Q2(x,y,w,v) <- R1(w,v), R2(v,y), R3(y,z), R4(z,x).
`

const example36 = `
	Q1(x,y,z,w) <- R1(y,z,w,x), R2(t,y,w), R3(t,z,w), R4(t,y,z).
	Q2(x,y,z,w) <- R1(x,z,w,v), R2(y,x,w).
`

func TestExample2Certificate(t *testing.T) {
	u := cq.MustParse(example2)
	cert, ok := FindCertificate(u, nil)
	if !ok {
		t.Fatalf("Example 2 not certified free-connex")
	}
	if err := cert.Verify(u); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	// Q1 needs an extension; Q2 is free-connex on its own.
	if len(cert.Extensions[0].Virtuals) == 0 {
		t.Errorf("Q1 certified without a virtual atom")
	}
	if len(cert.Extensions[1].Virtuals) != 0 {
		t.Errorf("free-connex Q2 got virtual atoms: %v", cert.Extensions[1])
	}
	// The paper's extension adds R'(x,z,y), provided by Q2.
	va := cert.Extensions[0].Virtuals[0]
	if va.Prov.ProviderIndex != 1 {
		t.Errorf("provider = Q%d, want Q2", va.Prov.ProviderIndex+1)
	}
	if !va.Atom.VarSet().Equal(cq.NewVarSet("x", "z", "y")) {
		t.Logf("note: provided set %v differs from the paper's {x,y,z} but verifies", va.Atom.VarSet())
	}
}

func TestExample2Evaluation(t *testing.T) {
	u := cq.MustParse(example2)
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 8; trial++ {
		checkUnionAgainstBaseline(t, u, randomInstance(u, rng, 40, 6))
	}
}

func TestExample13Certificate(t *testing.T) {
	// All three CQs are intractable alone; the union is free-connex via
	// recursive union extensions (the paper's flagship example).
	u := cq.MustParse(example13)
	cert, ok := FindCertificate(u, nil)
	if !ok {
		t.Fatalf("Example 13 not certified free-connex")
	}
	if err := cert.Verify(u); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	for i, e := range cert.Extensions {
		if len(e.Virtuals) == 0 {
			t.Errorf("Q%d certified without virtual atoms; all three are intractable alone", i+1)
		}
	}
}

func TestExample13Evaluation(t *testing.T) {
	u := cq.MustParse(example13)
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 5; trial++ {
		checkUnionAgainstBaseline(t, u, randomInstance(u, rng, 25, 4))
	}
}

func TestExample21CertificateAndEvaluation(t *testing.T) {
	u := cq.MustParse(example21)
	cert, ok := FindCertificate(u, nil)
	if !ok {
		t.Fatalf("Example 21 not certified free-connex")
	}
	if err := cert.Verify(u); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 5; trial++ {
		checkUnionAgainstBaseline(t, u, randomInstance(u, rng, 30, 5))
	}
}

func TestExample36CertificateAndEvaluation(t *testing.T) {
	// Q1 is cyclic; the union extension resolves the cycle (Section 5.2).
	u := cq.MustParse(example36)
	cert, ok := FindCertificate(u, nil)
	if !ok {
		t.Fatalf("Example 36 not certified free-connex")
	}
	if err := cert.Verify(u); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 5; trial++ {
		checkUnionAgainstBaseline(t, u, randomInstance(u, rng, 20, 4))
	}
}

func TestIntractableUnionsNotCertified(t *testing.T) {
	cases := map[string]string{
		"Example 20 (not free-path guarded)": `
			Q1(x,y,v) <- R1(x,z), R2(z,y), R3(y,v), R4(v,w).
			Q2(x,y,v) <- R1(w,v), R2(v,y), R3(y,z), R4(z,x).
		`,
		"Example 22 (not bypass guarded)": `
			Q1(x,y,t) <- R1(x,w,t), R2(y,w,t).
			Q2(x,y,w) <- R1(x,w,t), R2(y,w,t).
		`,
		"Example 18 (intractable CQs)": `
			Q1(x,y) <- R1(x,y), R2(y,u), R3(x,u).
			Q2(x,y) <- R1(y,v), R2(v,x), R3(y,x).
			Q3(x,y) <- R1(x,z), R2(y,z).
		`,
		"Example 31 (k=4, ad-hoc 4-clique hardness)": `
			Q1(x1,x2,x3) <- R1(x1,z), R2(x2,z), R3(x3,z).
			Q2(x1,x2,z) <- R1(x1,z), R2(x2,z), R3(x3,z).
			Q3(x1,x3,z) <- R1(x1,z), R2(x2,z), R3(x3,z).
			Q4(x2,x3,z) <- R1(x1,z), R2(x2,z), R3(x3,z).
		`,
		"single intractable CQ": `
			Q(x,y) <- R1(x,z), R2(z,y).
		`,
		"single cyclic CQ": `
			Q(x,y,z) <- R1(x,y), R2(y,z), R3(z,x).
		`,
	}
	for name, src := range cases {
		u := cq.MustParse(src)
		if _, ok := FindCertificate(u, nil); ok {
			t.Errorf("%s: wrongly certified free-connex", name)
		}
	}
}

func TestSingleFreeConnexCQCertified(t *testing.T) {
	u := cq.MustParse("Q(x,y,w) <- R1(x,y), R2(y,w).")
	cert, ok := FindCertificate(u, nil)
	if !ok {
		t.Fatalf("free-connex CQ not certified")
	}
	if len(cert.Extensions[0].Virtuals) != 0 {
		t.Errorf("plain free-connex CQ got virtual atoms")
	}
}

func TestUnionOfTractableCQs(t *testing.T) {
	u := cq.MustParse(`
		Q1(x,y) <- R1(x,y).
		Q2(x,y) <- R2(x,y), R3(y,w), R4(w).
	`)
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 5; trial++ {
		checkUnionAgainstBaseline(t, u, randomInstance(u, rng, 30, 5))
	}
}

func TestCertificateVerifyRejectsTampering(t *testing.T) {
	u := cq.MustParse(example2)
	cert, ok := FindCertificate(u, nil)
	if !ok {
		t.Fatalf("no certificate")
	}
	// Wrong base.
	bad := &Certificate{Extensions: []*ExtendedCQ{cert.Extensions[1], cert.Extensions[1]}}
	if err := bad.Verify(u); err == nil {
		t.Errorf("tampered certificate (wrong base) verified")
	}
	// Wrong extension count.
	bad2 := &Certificate{Extensions: cert.Extensions[:1]}
	if err := bad2.Verify(u); err == nil {
		t.Errorf("truncated certificate verified")
	}
	// Tampered provided variables: replace the virtual atom with one whose
	// variables are not an image of the provision.
	tampered := cert.Extensions[0].Clone()
	tampered.BaseIndex = 0
	va := tampered.Virtuals[0]
	va.Atom = cq.Atom{Rel: va.Atom.Rel, Vars: []cq.Variable{"x", "w"}, Virtual: true}
	tampered.Virtuals[0] = va
	bad3 := &Certificate{Extensions: []*ExtendedCQ{tampered, cert.Extensions[1]}}
	if err := bad3.Verify(u); err == nil {
		t.Errorf("tampered certificate (wrong provided set) verified")
	}
}

func TestAlgorithmOneUnion(t *testing.T) {
	u := cq.MustParse(`
		Q1(x,y) <- R1(x,y).
		Q2(x,y) <- R2(x,y).
	`)
	inst := database.NewInstance()
	r1 := database.NewRelation("R1", 2)
	r1.AppendInts(1, 2)
	r1.AppendInts(3, 4)
	inst.AddRelation(r1)
	r2 := database.NewRelation("R2", 2)
	r2.AppendInts(3, 4)
	r2.AppendInts(5, 6)
	inst.AddRelation(r2)

	it, err := NewAlgorithmOneUnion(u, inst)
	if err != nil {
		t.Fatalf("NewAlgorithmOneUnion: %v", err)
	}
	got := enumeration.Collect(it)
	if len(got) != 3 {
		t.Fatalf("union = %v, want 3 answers", got)
	}
	seen := make(map[string]bool)
	for _, g := range got {
		if seen[g.Key()] {
			t.Errorf("duplicate %v", g)
		}
		seen[g.Key()] = true
	}
	// Requires exactly two CQs.
	if _, err := NewAlgorithmOneUnion(cq.MustParse("Q(x) <- R1(x,x)."), inst); err == nil {
		t.Errorf("accepted single-CQ union")
	}
}

func TestAlgorithmOneUnionRandomized(t *testing.T) {
	u := cq.MustParse(`
		Q1(x,y) <- R1(x,y), R2(y,z), R3(z).
		Q2(x,y) <- R4(x,y), R5(y).
	`)
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 10; trial++ {
		inst := randomInstance(u, rng, 25, 5)
		it, err := NewAlgorithmOneUnion(u, inst)
		if err != nil {
			t.Fatalf("NewAlgorithmOneUnion: %v", err)
		}
		got := enumeration.Collect(it)
		want, err := baseline.EvalUCQ(u, inst)
		if err != nil {
			t.Fatalf("baseline: %v", err)
		}
		if len(got) != want.Len() {
			t.Fatalf("trial %d: got %d answers, want %d", trial, len(got), want.Len())
		}
		seen := make(map[string]bool)
		for _, g := range got {
			if seen[g.Key()] {
				t.Fatalf("duplicate %v", g)
			}
			seen[g.Key()] = true
		}
	}
}

func TestUnionPlanStats(t *testing.T) {
	u := cq.MustParse(example2)
	cert, _ := FindCertificate(u, nil)
	inst := randomInstance(u, rand.New(rand.NewSource(7)), 30, 5)
	plan, err := NewUnionPlan(u, cert, inst)
	if err != nil {
		t.Fatalf("NewUnionPlan: %v", err)
	}
	st := plan.Stats()
	if st.ProviderRuns == 0 {
		t.Errorf("no provider runs recorded")
	}
	if st.BonusAnswers == 0 {
		t.Errorf("no bonus answers recorded (provider produced nothing?)")
	}
}

func TestUnionPlanIteratorReusable(t *testing.T) {
	u := cq.MustParse(example2)
	cert, _ := FindCertificate(u, nil)
	inst := randomInstance(u, rand.New(rand.NewSource(8)), 20, 4)
	plan, err := NewUnionPlan(u, cert, inst)
	if err != nil {
		t.Fatalf("NewUnionPlan: %v", err)
	}
	a := len(enumeration.Collect(plan.Iterator()))
	b := len(enumeration.Collect(plan.Iterator()))
	if a != b {
		t.Errorf("iterator runs disagree: %d vs %d", a, b)
	}
}
