package core

import "repro/internal/yannakakis"

// Root-range scatter support.
//
// A union plan's answer stream can be partitioned into disjoint contiguous
// root-row ranges exactly when the whole stream comes from one CDY plan
// with nothing merged in: a single certified extension and no provider
// bonus answers. That is the same condition as ExactCount — a single CDY
// plan's head stream is duplicate-free, and every answer fixes one row of
// the root top relation, so ranges over [0, RootLen) partition the answer
// set with no cross-range duplicates. The distributed coordinator
// (internal/cluster) uses this to scatter one query across workers as
// root-row ranges and concatenate the streams dedup-free; multi-branch
// unions and bonus answers fall outside the condition and take the
// single-worker fallback instead.

// RootLen reports the size of the root-row domain that partitions the
// union's answer set, when one exists: ok is true iff the union has a
// single member plan and no bonus answers. The root-row indices are
// deterministic for a fixed (query, instance) preparation, so two nodes
// that bound the same query against identical replicas agree on them.
func (p *UnionPlan) RootLen() (int, bool) {
	if len(p.plans) == 1 && len(p.bonus) == 0 {
		return p.plans[0].RootLen(), true
	}
	return 0, false
}

// RootRangeIterator returns a sequential iterator over exactly the union
// answers whose root row index lies in [lo, hi), in ascending root order
// (bounds are clamped). ok is false when the union's answer set is not
// root-range partitionable (see RootLen).
func (p *UnionPlan) RootRangeIterator(lo, hi int) (*yannakakis.Iterator, bool) {
	if _, ok := p.RootLen(); !ok {
		return nil, false
	}
	return p.plans[0].IteratorRange(lo, hi), true
}
