package core

import (
	"testing"

	"repro/internal/cq"
)

func TestProvidedSetsExample2(t *testing.T) {
	u := cq.MustParse(example2)
	// The paper: Q2 provides {x,z,y} to Q1.
	if !CanProvide(u, 1, 0, cq.NewVarSet("x", "z", "y")) {
		t.Errorf("Q2 should provide {x,y,z} to Q1; maximal sets: %v", ProvidedSets(u, 1, 0))
	}
	// Q1 provides nothing useful to Q2 beyond what Q2 already has; there
	// is no body-homomorphism from Q1 to Q2 (R3 is missing).
	if got := ProvidedSets(u, 0, 1); got != nil {
		t.Errorf("Q1 should provide nothing to Q2, got %v", got)
	}
}

func TestProvidedSetsExample13(t *testing.T) {
	u := cq.MustParse(example13)
	// The paper: Q2 provides {x,z1,y} to Q3 and Q3 provides {v,z1,u} to Q2.
	if !CanProvide(u, 1, 2, cq.NewVarSet("x", "z1", "y")) {
		t.Errorf("Q2 should provide {x,z1,y} to Q3; got %v", ProvidedSets(u, 1, 2))
	}
	if !CanProvide(u, 2, 1, cq.NewVarSet("v", "z1", "u")) {
		t.Errorf("Q3 should provide {v,z1,u} to Q2; got %v", ProvidedSets(u, 2, 1))
	}
}

func TestProvidedSetsExample36(t *testing.T) {
	u := cq.MustParse(example36)
	// The paper: Q2 provides {t,y,z,w} to Q1.
	if !CanProvide(u, 1, 0, cq.NewVarSet("t", "y", "z", "w")) {
		t.Errorf("Q2 should provide {t,y,z,w} to Q1; got %v", ProvidedSets(u, 1, 0))
	}
}

func TestProvidedSetsSelfProvision(t *testing.T) {
	// A free-connex CQ provides its own free variables to itself via the
	// identity body-homomorphism.
	u := cq.MustParse("Q(x,y) <- R(x,y), S(y,w).")
	if !CanProvide(u, 0, 0, cq.NewVarSet("x", "y")) {
		t.Errorf("self-provision of the free variables failed: %v", ProvidedSets(u, 0, 0))
	}
}

func TestProvidedSetsCyclicProviderGivesNothing(t *testing.T) {
	u := cq.MustParse(`
		Q1(x,y) <- R1(x,y), R2(y,z), R3(z,x).
		Q2(x,y) <- R1(x,y), R2(y,z), R3(z,x).
	`)
	// A cyclic provider is never S-connex for any S.
	if got := ProvidedSets(u, 1, 0); got != nil {
		t.Errorf("cyclic provider provided %v", got)
	}
}

func TestProvidedSetsBounds(t *testing.T) {
	u := cq.MustParse("Q(x) <- R(x).")
	if ProvidedSets(u, -1, 0) != nil || ProvidedSets(u, 0, 5) != nil {
		t.Errorf("out-of-range indices not rejected")
	}
}

func TestProvidedSetsAreMaximal(t *testing.T) {
	u := cq.MustParse(example2)
	sets := ProvidedSets(u, 1, 0)
	for i, a := range sets {
		for j, b := range sets {
			if i != j && b.ContainsAll(a) && !a.Equal(b) {
				t.Errorf("set %v dominated by %v", a, b)
			}
			if i != j && a.Equal(b) {
				t.Errorf("duplicate maximal set %v", a)
			}
		}
	}
}
