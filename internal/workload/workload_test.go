package workload

import (
	"testing"

	"repro/internal/baseline"
	"repro/internal/cq"
)

func TestRandomRespectsSchema(t *testing.T) {
	u := cq.MustParse("Q(x,y) <- R(x,y), S(y,z), T(z).")
	inst := RandomForQuery(u, 25, 6, 1)
	for _, d := range u.Schema() {
		r := inst.Relation(d.Name)
		if r == nil {
			t.Fatalf("relation %s missing", d.Name)
		}
		if r.Arity() != d.Arity {
			t.Errorf("relation %s arity = %d, want %d", d.Name, r.Arity(), d.Arity)
		}
		if r.Len() == 0 || r.Len() > 25 {
			t.Errorf("relation %s has %d rows", d.Name, r.Len())
		}
	}
	// Determinism.
	inst2 := RandomForQuery(u, 25, 6, 1)
	if inst.Size() != inst2.Size() {
		t.Errorf("same seed, different instances")
	}
}

func TestChainLayering(t *testing.T) {
	inst := Chain([]string{"A", "B"}, []int{2, 2}, 10, 3, 2)
	a := inst.Relation("A")
	for i := 0; i < a.Len(); i++ {
		row := a.Row(i)
		if row[0].Payload() >= 10 || row[1].Payload() < 10 || row[1].Payload() >= 20 {
			t.Fatalf("layering violated: %v", row)
		}
	}
	if a.Len() > 30 {
		t.Errorf("A has %d rows, want ≤ width·degree = 30", a.Len())
	}
}

func TestChainPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("no panic on names/arities mismatch")
		}
	}()
	Chain([]string{"A"}, []int{2, 2}, 5, 1, 0)
}

func TestExample2InstanceJoins(t *testing.T) {
	u := cq.MustParse(`
		Q1(x,y,w) <- R1(x,z), R2(z,y), R3(y,w).
		Q2(x,y,w) <- R1(x,y), R2(y,w).
	`)
	inst := Example2Instance(15, 2, 3)
	out, err := baseline.EvalUCQ(u, inst)
	if err != nil {
		t.Fatalf("EvalUCQ: %v", err)
	}
	if out.Len() == 0 {
		t.Errorf("chain instance produced no answers")
	}
}

func TestExample13InstanceJoins(t *testing.T) {
	u := cq.MustParse(`
		Q1(x,y,v,u) <- R1(x,z1), R2(z1,z2), R3(z2,z3), R4(z3,y), R5(y,v,u).
		Q2(x,y,v,u) <- R1(x,y), R2(y,v), R3(v,z1), R4(z1,u), R5(u,t1,t2).
		Q3(x,y,v,u) <- R1(x,z1), R2(z1,y), R3(y,v), R4(v,u), R5(u,t1,t2).
	`)
	inst := Example13Instance(10, 2, 4)
	out, err := baseline.EvalUCQ(u, inst)
	if err != nil {
		t.Fatalf("EvalUCQ: %v", err)
	}
	if out.Len() == 0 {
		t.Errorf("chain instance produced no answers")
	}
}
