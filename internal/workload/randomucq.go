package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/cq"
)

// ucqPool is the fixed relation vocabulary of RandomUCQ. Sharing one
// name→arity map across all members keeps the union's schema consistent
// (UCQ.Validate requires it) and makes members join against each other's
// relations, which is where cross-engine disagreements would hide.
var ucqPool = []cq.RelDecl{
	{Name: "S1", Arity: 1},
	{Name: "R1", Arity: 2},
	{Name: "R2", Arity: 2},
	{Name: "R3", Arity: 2},
	{Name: "T1", Arity: 3},
}

// RandomUCQ generates a random small UCQ over a fixed shared schema: 1–3
// member CQs of 1–3 atoms each, bodies mixing chained, self-joined and
// disconnected atoms, heads of one shared arity drawn from each member's
// variables (occasionally boolean). The shapes deliberately range over the
// whole tractability spectrum — some unions certify free-connex and run
// through the Theorem 12 pipeline, others fall back to the naive engine —
// which is exactly what a cross-engine equivalence harness needs.
func RandomUCQ(rng *rand.Rand) *cq.UCQ {
	for {
		if u, ok := tryRandomUCQ(rng); ok {
			return u
		}
	}
}

// tryRandomUCQ makes one attempt; it reports failure instead of fighting
// the (rare) draws whose members cannot share a head arity.
func tryRandomUCQ(rng *rand.Rand) (*cq.UCQ, bool) {
	nCQ := 1 + rng.Intn(3)
	bodies := make([][]cq.Atom, nCQ)
	vars := make([][]cq.Variable, nCQ)
	minVars := -1
	for i := range bodies {
		bodies[i], vars[i] = randomBody(rng)
		if minVars < 0 || len(vars[i]) < minVars {
			minVars = len(vars[i])
		}
	}

	// All heads share one arity; 1 in 8 unions is boolean.
	maxArity := minVars
	if maxArity > 3 {
		maxArity = 3
	}
	arity := 0
	if rng.Intn(8) != 0 {
		if maxArity == 0 {
			return nil, false
		}
		arity = 1 + rng.Intn(maxArity)
	}

	cqs := make([]*cq.CQ, nCQ)
	for i := range cqs {
		head := make([]cq.Variable, arity)
		perm := rng.Perm(len(vars[i]))
		for j := 0; j < arity; j++ {
			head[j] = vars[i][perm[j]]
		}
		q, err := cq.NewCQ(fmt.Sprintf("Q%d", i+1), head, bodies[i])
		if err != nil {
			return nil, false
		}
		cqs[i] = q
	}
	u, err := cq.NewUCQ(cqs...)
	if err != nil {
		return nil, false
	}
	return u, true
}

// RandomCyclicUCQ generates a random UCQ in which at least one member CQ
// is cyclic: one body is a variable cycle of length 3–4 over the pool's
// binary relations (the triangle/square joins of the hardness side of the
// dichotomy), the remaining members come from the ordinary generator.
// Cyclic members push the union off the Theorem 12 pipeline — exactly the
// non-free-connex region a cross-engine equivalence harness must also
// cover.
func RandomCyclicUCQ(rng *rand.Rand) *cq.UCQ {
	for {
		if u, ok := tryRandomCyclicUCQ(rng); ok {
			return u
		}
	}
}

// tryRandomCyclicUCQ mirrors tryRandomUCQ with one body forced cyclic.
func tryRandomCyclicUCQ(rng *rand.Rand) (*cq.UCQ, bool) {
	nCQ := 1 + rng.Intn(3)
	cyclicAt := rng.Intn(nCQ)
	bodies := make([][]cq.Atom, nCQ)
	vars := make([][]cq.Variable, nCQ)
	minVars := -1
	for i := range bodies {
		if i == cyclicAt {
			bodies[i], vars[i] = cyclicBody(rng)
		} else {
			bodies[i], vars[i] = randomBody(rng)
		}
		if minVars < 0 || len(vars[i]) < minVars {
			minVars = len(vars[i])
		}
	}

	maxArity := minVars
	if maxArity > 3 {
		maxArity = 3
	}
	arity := 0
	if rng.Intn(8) != 0 {
		if maxArity == 0 {
			return nil, false
		}
		arity = 1 + rng.Intn(maxArity)
	}

	cqs := make([]*cq.CQ, nCQ)
	for i := range cqs {
		head := make([]cq.Variable, arity)
		perm := rng.Perm(len(vars[i]))
		for j := 0; j < arity; j++ {
			head[j] = vars[i][perm[j]]
		}
		q, err := cq.NewCQ(fmt.Sprintf("Q%d", i+1), head, bodies[i])
		if err != nil {
			return nil, false
		}
		cqs[i] = q
	}
	u, err := cq.NewUCQ(cqs...)
	if err != nil {
		return nil, false
	}
	return u, true
}

// cyclicBody builds a chordless variable cycle of length 3 or 4 over the
// pool's binary relations — R_a(v0,v1), R_b(v1,v2), R_c(v2,v0) and the
// four-atom analogue. Distinct fresh variables make the join hypergraph a
// genuine cycle, so the body is cyclic by construction.
func cyclicBody(rng *rand.Rand) ([]cq.Atom, []cq.Variable) {
	binary := []string{"R1", "R2", "R3"}
	n := 3 + rng.Intn(2)
	vars := make([]cq.Variable, n)
	for i := range vars {
		vars[i] = cq.Variable(fmt.Sprintf("v%d", i))
	}
	atoms := make([]cq.Atom, n)
	for i := range atoms {
		atoms[i] = cq.Atom{
			Rel:  binary[rng.Intn(len(binary))],
			Vars: []cq.Variable{vars[i], vars[(i+1)%n]},
		}
	}
	return atoms, vars
}

// randomBody builds 1–3 atoms over the shared pool. Each argument reuses
// an already-introduced variable with probability ~0.6, otherwise it is
// fresh — producing joins, repeated variables within an atom, self-joins
// (the same relation twice) and occasionally disconnected components.
func randomBody(rng *rand.Rand) ([]cq.Atom, []cq.Variable) {
	nAtoms := 1 + rng.Intn(3)
	var atoms []cq.Atom
	var vars []cq.Variable
	fresh := 0
	pick := func() cq.Variable {
		if len(vars) > 0 && rng.Intn(5) < 3 {
			return vars[rng.Intn(len(vars))]
		}
		v := cq.Variable(fmt.Sprintf("v%d", fresh))
		fresh++
		vars = append(vars, v)
		return v
	}
	for i := 0; i < nAtoms; i++ {
		d := ucqPool[rng.Intn(len(ucqPool))]
		args := make([]cq.Variable, d.Arity)
		for j := range args {
			args[j] = pick()
		}
		atoms = append(atoms, cq.Atom{Rel: d.Name, Vars: args})
	}
	return atoms, vars
}
