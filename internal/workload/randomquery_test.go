package workload

import (
	"math/rand"
	"testing"

	"repro/internal/hypergraph"
)

func TestRandomAcyclicCQProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(88))
	for trial := 0; trial < 200; trial++ {
		q, s := RandomAcyclicCQ(rng)
		if err := q.Validate(); err != nil {
			t.Fatalf("trial %d: invalid query: %v", trial, err)
		}
		h := hypergraph.FromCQ(q)
		if !h.IsAcyclic() {
			t.Fatalf("trial %d: cyclic query %s", trial, q)
		}
		if !h.IsSConnex(s) {
			t.Fatalf("trial %d: not %v-connex: %s", trial, s, q)
		}
		if !q.Free().Equal(s) {
			t.Fatalf("trial %d: head %v does not match S %v", trial, q.Head, s)
		}
		if len(q.Atoms) < 2 || len(q.Atoms) > 5 {
			t.Fatalf("trial %d: %d atoms", trial, len(q.Atoms))
		}
		if !q.SelfJoinFree() {
			t.Fatalf("trial %d: self-join in generated query", trial)
		}
	}
}

func TestRandomInstanceForCQ(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	q, _ := RandomAcyclicCQ(rng)
	inst := RandomInstanceForCQ(q, 12, 4, 7)
	for _, a := range q.Atoms {
		r := inst.Relation(a.Rel)
		if r == nil {
			t.Fatalf("relation %s missing", a.Rel)
		}
		if r.Arity() != len(a.Vars) {
			t.Errorf("relation %s arity %d, atom wants %d", a.Rel, r.Arity(), len(a.Vars))
		}
	}
}
