package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/cq"
	"repro/internal/database"
	"repro/internal/hypergraph"
)

// RandomAcyclicCQ generates a random acyclic conjunctive query together
// with a variable set S for which it is S-connex. Acyclicity holds by
// construction: atoms are laid out along a random join tree (each new atom
// shares a subset of one earlier atom's variables and adds fresh ones);
// S-connexity is found by sampling subsets and verified structurally.
//
// The generator drives the property tests that compare the constant-delay
// engine against the naive evaluator on arbitrary query shapes.
func RandomAcyclicCQ(rng *rand.Rand) (*cq.CQ, cq.VarSet) {
	nAtoms := 2 + rng.Intn(4) // 2..5 atoms
	var atoms []cq.Atom
	fresh := 0
	newVar := func() cq.Variable {
		v := cq.Variable(fmt.Sprintf("v%d", fresh))
		fresh++
		return v
	}

	// First atom: 1..3 fresh variables.
	first := 1 + rng.Intn(3)
	var vars []cq.Variable
	for i := 0; i < first; i++ {
		vars = append(vars, newVar())
	}
	atoms = append(atoms, cq.Atom{Rel: "R0", Vars: vars})

	for i := 1; i < nAtoms; i++ {
		parent := atoms[rng.Intn(len(atoms))]
		// Share a random subset of the parent's variables (possibly empty:
		// a disconnected component), then add fresh ones.
		var shared []cq.Variable
		for _, v := range parent.Vars {
			if rng.Intn(2) == 0 {
				shared = append(shared, v)
			}
		}
		extra := 1 + rng.Intn(2)
		for j := 0; j < extra; j++ {
			shared = append(shared, newVar())
		}
		atoms = append(atoms, cq.Atom{Rel: fmt.Sprintf("R%d", i), Vars: shared})
	}

	q := &cq.CQ{Name: "Q", Atoms: atoms}
	all := q.Vars()
	h := hypergraph.FromCQ(q)

	// Sample S candidates; the full variable set is always S-connex for an
	// acyclic query, so the loop terminates.
	allVars := all.Sorted()
	var s cq.VarSet
	for attempt := 0; attempt < 8; attempt++ {
		cand := make(cq.VarSet)
		for _, v := range allVars {
			if rng.Intn(2) == 0 {
				cand[v] = true
			}
		}
		if h.IsSConnex(cand) {
			s = cand
			break
		}
	}
	if s == nil {
		s = all.Clone()
	}
	// Head = S in sorted order, so head answers equal Q(I)|S.
	q.Head = s.Sorted()
	return q, s
}

// RandomInstanceForCQ fills the query's relations with random data.
func RandomInstanceForCQ(q *cq.CQ, rows int, width int64, seed int64) *database.Instance {
	return Random(cq.MustUCQ(q).Schema(), rows, width, seed)
}
