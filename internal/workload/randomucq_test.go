package workload

import (
	"math/rand"
	"testing"

	"repro/internal/classify"
	"repro/internal/cq"
)

func TestRandomUCQWellFormed(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	booleans := 0
	multiCQ := 0
	for i := 0; i < 500; i++ {
		u := RandomUCQ(rng)
		if err := u.Validate(); err != nil {
			t.Fatalf("case %d: %v\n%s", i, err, u)
		}
		if u.Arity() == 0 {
			booleans++
		}
		if len(u.CQs) > 1 {
			multiCQ++
		}
		// The rendered form must round-trip through the parser — the
		// property the server's cache-key normalization relies on.
		re, err := cq.Parse(u.String())
		if err != nil {
			t.Fatalf("case %d: reparse: %v\n%s", i, err, u)
		}
		if re.String() != u.String() {
			t.Fatalf("case %d: round trip changed the query:\n%s\n%s", i, u, re)
		}
	}
	// The generator must actually cover the interesting regions.
	if booleans == 0 {
		t.Error("no boolean unions generated")
	}
	if multiCQ == 0 {
		t.Error("no multi-CQ unions generated")
	}
}

func TestRandomCyclicUCQWellFormed(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for i := 0; i < 300; i++ {
		u := RandomCyclicUCQ(rng)
		if err := u.Validate(); err != nil {
			t.Fatalf("case %d: %v\n%s", i, err, u)
		}
		// The defining property: every draw carries a cyclic member.
		cyclic := false
		for _, q := range u.CQs {
			if classify.ClassifyCQ(q) == classify.Cyclic {
				cyclic = true
				break
			}
		}
		if !cyclic {
			t.Fatalf("case %d: no cyclic member in\n%s", i, u)
		}
		re, err := cq.Parse(u.String())
		if err != nil {
			t.Fatalf("case %d: reparse: %v\n%s", i, err, u)
		}
		if re.String() != u.String() {
			t.Fatalf("case %d: round trip changed the query:\n%s\n%s", i, u, re)
		}
	}
}

func TestRandomUCQDeterministic(t *testing.T) {
	a := RandomUCQ(rand.New(rand.NewSource(7)))
	b := RandomUCQ(rand.New(rand.NewSource(7)))
	if a.String() != b.String() {
		t.Errorf("same seed, different queries:\n%s\n%s", a, b)
	}
}
