// Package workload builds the synthetic database instances used by the
// examples and the experiment harness: random instances over a query's
// schema, layered chain data for the path queries of Examples 2 and 13,
// and scaling series with controlled output sizes.
package workload

import (
	"math/rand"

	"repro/internal/cq"
	"repro/internal/database"
)

// Random fills every relation of the schema with `rows` uniform tuples over
// the domain [0, width), deterministically from seed.
func Random(schema []cq.RelDecl, rows int, width int64, seed int64) *database.Instance {
	rng := rand.New(rand.NewSource(seed))
	inst := database.NewInstance()
	for _, d := range schema {
		r := database.NewRelation(d.Name, d.Arity)
		row := make([]int64, d.Arity)
		for i := 0; i < rows; i++ {
			for c := range row {
				row[c] = rng.Int63n(width)
			}
			r.AppendInts(row...)
		}
		r.Dedup()
		inst.AddRelation(r)
	}
	return inst
}

// RandomForQuery is Random over the union's schema.
func RandomForQuery(u *cq.UCQ, rows int, width int64, seed int64) *database.Instance {
	return Random(u.Schema(), rows, width, seed)
}

// Chain builds a layered chain instance for path-shaped queries: relation
// names[i] connects layer i to layer i+1, holding `degree` out-edges per
// layer-i vertex, with `width` vertices per layer. Layer j's vertices are
// the values j·width .. j·width+width-1, so joins only happen between
// adjacent layers. Binary relations get (u, v) tuples; an arity-3 relation
// gets (u, v, v') with two successors, generalising Example 13's R5.
func Chain(names []string, arities []int, width, degree int, seed int64) *database.Instance {
	if len(names) != len(arities) {
		panic("workload: names and arities differ in length")
	}
	rng := rand.New(rand.NewSource(seed))
	inst := database.NewInstance()
	for i, name := range names {
		arity := arities[i]
		r := database.NewRelation(name, arity)
		base := int64(i) * int64(width)
		next := base + int64(width)
		for u := int64(0); u < int64(width); u++ {
			for d := 0; d < degree; d++ {
				row := make([]int64, arity)
				row[0] = base + u
				for c := 1; c < arity; c++ {
					row[c] = next + rng.Int63n(int64(width))
				}
				r.AppendInts(row...)
			}
		}
		r.Dedup()
		inst.AddRelation(r)
	}
	return inst
}

// SkewedJoin builds a two-relation join instance for Q(x,y,w) <- R1(x,y),
// R2(y,w) in which one join value dominates: join value 0 carries heavyLeft
// R1 rows (distinct x values) and heavyRight R2 rows (distinct w values),
// while join values 1..lightKeys each carry lightLeft R1 rows and
// lightRight R2 rows. All x values are globally distinct, so the join has
// exactly heavyLeft·heavyRight + lightKeys·lightLeft·lightRight answers,
// concentrated on the heavy key — the output-skew regime of unbalanced
// triangle/star workloads. Row insertion order is shuffled from seed.
func SkewedJoin(heavyLeft, heavyRight, lightKeys, lightLeft, lightRight int, seed int64) *database.Instance {
	rng := rand.New(rand.NewSource(seed))
	type pair struct{ a, b int64 }
	var rows1, rows2 []pair
	x := int64(0)
	w := int64(0)
	addKey := func(y int64, left, right int) {
		for i := 0; i < left; i++ {
			rows1 = append(rows1, pair{x, y})
			x++
		}
		for i := 0; i < right; i++ {
			rows2 = append(rows2, pair{y, w})
			w++
		}
	}
	addKey(0, heavyLeft, heavyRight)
	for k := 1; k <= lightKeys; k++ {
		addKey(int64(k), lightLeft, lightRight)
	}
	rng.Shuffle(len(rows1), func(i, j int) { rows1[i], rows1[j] = rows1[j], rows1[i] })
	rng.Shuffle(len(rows2), func(i, j int) { rows2[i], rows2[j] = rows2[j], rows2[i] })
	inst := database.NewInstance()
	r1 := database.NewRelation("R1", 2)
	for _, p := range rows1 {
		r1.AppendInts(p.a, p.b)
	}
	r2 := database.NewRelation("R2", 2)
	for _, p := range rows2 {
		r2.AppendInts(p.a, p.b)
	}
	inst.AddRelation(r1)
	inst.AddRelation(r2)
	return inst
}

// SelfJoinSkew builds a single-relation instance for the self-join query
// Q(x,y,w) <- R2(x,y), R2(y,w), the regime where hash sharding is
// powerless: the self-join places every variable at conflicting columns of
// R2, so no partition attribute is safe and a sharded planner falls back
// to one unsharded branch — one worker. The output is skewed on top: join
// key 0 pairs heavyLeft left-rows (x_i, 0) with heavyRight right-rows
// (0, w_j), concentrating heavyLeft·heavyRight answers on one key, while
// keys 1..lightKeys each contribute lightFanout² answers. Value pools are
// disjoint (left x values, right w values and join keys never collide), so
// the answer count is exactly heavyLeft·heavyRight + lightKeys·lightFanout².
// Row insertion order is shuffled from seed.
func SelfJoinSkew(heavyLeft, heavyRight, lightKeys, lightFanout int, seed int64) *database.Instance {
	rng := rand.New(rand.NewSource(seed))
	type pair struct{ a, b int64 }
	var rows []pair
	// Join keys occupy 0..lightKeys; x and w pools start far above.
	x := int64(1 << 30)
	w := int64(1 << 40)
	addKey := func(y int64, left, right int) {
		for i := 0; i < left; i++ {
			rows = append(rows, pair{x, y})
			x++
		}
		for j := 0; j < right; j++ {
			rows = append(rows, pair{y, w})
			w++
		}
	}
	addKey(0, heavyLeft, heavyRight)
	for k := 1; k <= lightKeys; k++ {
		addKey(int64(k), lightFanout, lightFanout)
	}
	rng.Shuffle(len(rows), func(i, j int) { rows[i], rows[j] = rows[j], rows[i] })
	inst := database.NewInstance()
	r2 := database.NewRelation("R2", 2)
	for _, p := range rows {
		r2.AppendInts(p.a, p.b)
	}
	inst.AddRelation(r2)
	return inst
}

// Example2Instance builds data for Example 2's schema (R1, R2, R3 binary)
// with `width` vertices per layer and `degree` out-edges per vertex.
// The instance size grows linearly in width·degree.
func Example2Instance(width, degree int, seed int64) *database.Instance {
	return Chain([]string{"R1", "R2", "R3"}, []int{2, 2, 2}, width, degree, seed)
}

// Example13Instance builds data for Example 13's schema (R1..R4 binary, R5
// ternary).
func Example13Instance(width, degree int, seed int64) *database.Instance {
	return Chain(
		[]string{"R1", "R2", "R3", "R4", "R5"},
		[]int{2, 2, 2, 2, 3},
		width, degree, seed,
	)
}
