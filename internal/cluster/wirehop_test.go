package cluster_test

// Scatter-hop encoding coverage: the coordinator asks its workers for the
// binary columnar frames regardless of what the client negotiated, and
// re-frames the merged stream in the client's encoding. Both directions
// are asserted here — worker-side /stats wire counters prove the hop ran
// binary, and the client sees its own Accept honored.

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	ucq "repro"
	"repro/internal/cluster"
	"repro/internal/wire"
)

// workerWireStats fetches one worker's /stats wire section.
func workerWireStats(t *testing.T, base string) map[string]int64 {
	t.Helper()
	resp, err := http.Get(base + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats struct {
		Wire map[string]int64 `json:"wire"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	return stats.Wire
}

// TestScatterHopBinary: a dataset query through the coordinator — client
// on either encoding — must reach the workers as binary scatter streams,
// and the client must get back its negotiated encoding with the exact
// single-node answer set.
func TestScatterHopBinary(t *testing.T) {
	rels := clusterRelations(120, 12, 4)
	tc := bootCluster(t, 3, cluster.Config{MarkerEvery: 16}, nil)
	tc.putDataset(t, "join", rels)
	want := referenceAnswers(t, fullJoin, rels)
	total := 0
	for _, n := range want {
		total += n
	}

	for _, accept := range []string{wire.MediaTypeNDJSON, wire.MediaTypeBinary} {
		body, _ := json.Marshal(map[string]any{"query": fullJoin})
		req, err := http.NewRequest(http.MethodPost, tc.coordURL+"/datasets/join/query", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("Accept", accept)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			t.Fatalf("Accept %q: status %d", accept, resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, accept) {
			resp.Body.Close()
			t.Fatalf("Accept %q: coordinator answered Content-Type %q", accept, ct)
		}
		got := map[string]int{}
		tr, err := ucq.DecodeAnswerStream(resp.Body, resp.Header.Get("Content-Type"), func(tup ucq.Tuple) bool {
			got[string(ucq.AppendTupleJSON(nil, tup))]++
			return true
		})
		resp.Body.Close()
		if err != nil {
			t.Fatalf("Accept %q: decoding merged stream: %v", accept, err)
		}
		if tr == nil || !tr.Done {
			t.Fatalf("Accept %q: stream ended without a done trailer (%+v)", accept, tr)
		}
		if tr.Count != total {
			t.Fatalf("Accept %q: trailer count = %d, want %d", accept, tr.Count, total)
		}
		diffMultisets(t, got, want)
	}

	// Every worker served its scatter ranges in binary; the only NDJSON
	// the workers ever see is the probe, which ends before the stream
	// accounting starts.
	var binary, ndjson int64
	for _, w := range tc.workers {
		ws := workerWireStats(t, w)
		binary += ws["binary_requests"]
		ndjson += ws["ndjson_requests"]
	}
	if binary == 0 {
		t.Fatalf("no worker recorded a binary scatter stream (ndjson=%d)", ndjson)
	}
	if ndjson != 0 {
		t.Errorf("workers recorded %d ndjson streams; the scatter hop should always negotiate binary", ndjson)
	}
}
