package cluster

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/database"
)

// The gather loop is internal/exec's steal/split lifted to the network.
// The query's root domain [0, RootLen) is cut into one contiguous segment
// per worker; each worker has one fetcher goroutine that pops segments
// from a shared queue and serves them with scatter calls, one call at a
// time per worker (per-worker backpressure: the coordinator reads each
// worker stream at the merged consumer's pace, and a full output channel
// propagates TCP backpressure to the worker). The steal protocol mirrors
// the executor's idle-driven shedding: a fetcher with nothing to do marks
// the heaviest in-flight call as shed; that call's owner notices at its
// next marker, cuts its range in half at the progress point, queues the
// far half for the idler and re-issues only its own near half. A failed
// call (transport error, non-200, stall deadline) re-queues exactly the
// undelivered remainder [last marker, hi) with a bumped attempt count —
// bounded retries with backoff — so a worker killed mid-stream costs the
// query nothing but latency, and never a duplicate or lost answer.

// Chunk is one marker-aligned batch of merged answers, decoded to tuples
// in worker stream order. Chunks from different workers cover disjoint
// root ranges, so concatenating them is the whole merge — and because the
// scatter hop decodes whatever encoding it negotiated with the worker,
// the coordinator re-frames chunks to the client in *its* negotiated
// encoding without a text round trip in between.
type Chunk struct {
	Tuples []database.Tuple
}

// StreamStats counts the scatter activity behind one Stream.
type StreamStats struct {
	// Workers is the fan-out width the query started with.
	Workers int `json:"workers"`
	// Calls counts scatter calls issued (including re-issues).
	Calls int64 `json:"calls"`
	// Retries counts segments re-queued after a failed call.
	Retries int64 `json:"retries"`
	// Resplits counts straggler re-splits (a slow call's remaining range
	// handed to an idle peer).
	Resplits int64 `json:"resplits"`
}

// Header describes the merged stream: the probed plan provenance plus the
// scatter decision.
type Header struct {
	// Mode is the engine mode ("constant-delay" or "naive").
	Mode string
	// Cache and Bind are the probed/fallback worker's plan-cache and
	// bind-cache states ("hit"/"miss").
	Cache string
	Bind  string
	// Dataset and DatasetVersion identify the snapshot (per the probed
	// worker; the per-worker version guard keeps the others consistent).
	Dataset        string
	DatasetVersion uint64
	// Arity is the answer tuple width, from the probed worker's plan.
	Arity int
	// RootLen is the scattered root domain size (0 for fallback streams).
	RootLen int
	// Scatter is the merge strategy: "root-range" or "single-worker".
	Scatter string
	// Workers is the fan-out width (1 for fallback streams).
	Workers int
}

// Stream is a merged, dedup-free answer stream from a distributed query.
// Drain C to exhaustion, then check Err; or Close early to cancel the
// remaining scatter work (e.g. an answer limit was reached).
type Stream struct {
	Header Header
	C      <-chan Chunk

	cancel context.CancelFunc
	mu     sync.Mutex
	err    error
	stats  StreamStats
}

// Err reports why the stream ended, once C is closed: nil for a complete
// merge, the terminal failure otherwise. A Close-d stream reports nil.
func (s *Stream) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Stats returns the stream's scatter counters (stable once C is closed).
func (s *Stream) Stats() StreamStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Close cancels the stream's remaining scatter work; C still closes.
func (s *Stream) Close() { s.cancel() }

func (s *Stream) setErr(err error) {
	s.mu.Lock()
	s.err = err
	s.mu.Unlock()
}

func (s *Stream) setStats(st StreamStats) {
	s.mu.Lock()
	s.stats = st
	s.mu.Unlock()
}

// segment is a pending root-row range with its retry budget consumed so
// far.
type segment struct {
	lo, hi   int
	attempts int
}

// call is the published state of one in-flight scatter call: the range it
// is still responsible for (lo advances at each marker) and the shed flag
// an idle peer sets to request a re-split.
type call struct {
	lo, hi int
	shed   bool
}

// gather coordinates the fetchers of one scattered query.
type gather struct {
	c       *Coordinator
	sc      *scatterClient
	dataset string
	// versions pins the per-worker dataset versions observed at
	// registration: every call carries its worker's expected version, so a
	// dataset replaced mid-query makes the stale worker 409 (its ranges
	// fail over to replicas still serving the registered snapshot) instead
	// of mixing answers from different snapshots into one merge.
	versions map[string]uint64
	base     ScatterRequest // Query/Mode/MarkerEvery template
	rootLen  int

	ctx    context.Context
	cancel context.CancelFunc
	out    chan Chunk
	wake   chan struct{}
	done   chan struct{}
	once   sync.Once

	mu        sync.Mutex
	segs      []segment
	active    []*call
	remaining int
	alive     int
	failed    error
	finished  bool

	calls, retries, resplits int64
}

// newGatherStream fans a scatterable query out across the workers and
// returns the merged stream.
func (c *Coordinator) newGatherStream(ctx context.Context, hdr Header, versions map[string]uint64, base ScatterRequest, dataset string) *Stream {
	gctx, cancel := context.WithCancel(ctx)
	workers := c.workers
	g := &gather{
		c:         c,
		sc:        c.sc,
		dataset:   dataset,
		versions:  versions,
		base:      base,
		rootLen:   hdr.RootLen,
		ctx:       gctx,
		cancel:    cancel,
		out:       make(chan Chunk, 2*len(workers)),
		wake:      make(chan struct{}, len(workers)),
		done:      make(chan struct{}),
		active:    make([]*call, len(workers)),
		remaining: hdr.RootLen,
		alive:     len(workers),
	}
	// One contiguous segment per worker; empty slices (RootLen < workers)
	// are skipped.
	for i := range workers {
		lo, hi := i*g.rootLen/len(workers), (i+1)*g.rootLen/len(workers)
		if lo < hi {
			g.segs = append(g.segs, segment{lo: lo, hi: hi})
		}
	}
	st := &Stream{Header: hdr, C: g.out, cancel: cancel}
	if g.rootLen == 0 {
		close(g.out)
		st.setStats(StreamStats{Workers: len(workers)})
		return st
	}
	var wg sync.WaitGroup
	for i, w := range workers {
		wg.Add(1)
		go func(i int, w string) {
			defer wg.Done()
			g.fetcher(i, w)
		}(i, w)
	}
	go func() {
		wg.Wait()
		g.mu.Lock()
		err := g.failed
		if err == nil && !g.finished {
			if ctxErr := gctx.Err(); ctxErr != nil {
				err = nil // Close/cancellation is abandonment, not failure
			} else {
				err = fmt.Errorf("cluster: scatter ended with %d root rows undelivered", g.remaining)
			}
		}
		stats := StreamStats{Workers: len(workers), Calls: g.calls, Retries: g.retries, Resplits: g.resplits}
		g.mu.Unlock()
		st.setErr(err)
		st.setStats(stats)
		close(g.out)
	}()
	return st
}

// wakeAll nudges every parked fetcher (non-blocking, channel is bounded).
func (g *gather) wakeAll() {
	for i := 0; i < cap(g.wake); i++ {
		select {
		case g.wake <- struct{}{}:
		default:
			return
		}
	}
}

// finishLocked marks the merge complete. Callers hold g.mu.
func (g *gather) finishLocked() {
	g.finished = true
	g.once.Do(func() { close(g.done) })
}

// failLocked records the first terminal failure and aborts every call.
// Callers hold g.mu.
func (g *gather) failLocked(err error) {
	if g.failed == nil {
		g.failed = err
	}
	g.cancel()
	g.once.Do(func() { close(g.done) })
}

// next blocks until a segment is available (registering it as fetcher i's
// active call) or the merge is over. While parked with work still in
// flight elsewhere, it marks the heaviest active call as shed — the
// idle-driven re-split request a straggler's owner honours at its next
// marker.
func (g *gather) next(i int) (segment, bool) {
	for {
		g.mu.Lock()
		if g.failed != nil || g.finished || g.ctx.Err() != nil {
			g.mu.Unlock()
			return segment{}, false
		}
		if len(g.segs) > 0 {
			seg := g.segs[0]
			g.segs = g.segs[1:]
			g.active[i] = &call{lo: seg.lo, hi: seg.hi}
			g.mu.Unlock()
			return seg, true
		}
		// Queue empty but the merge is not done: some other call holds the
		// remaining rows. Ask the heaviest one (≥ 2 rows left, not already
		// asked) to shed its far half.
		var victim *call
		best := 1
		for j, ca := range g.active {
			if j != i && ca != nil && !ca.shed && ca.hi-ca.lo > best {
				victim, best = ca, ca.hi-ca.lo
			}
		}
		if victim != nil {
			victim.shed = true
		}
		g.mu.Unlock()
		select {
		case <-g.wake:
		case <-g.done:
		case <-g.ctx.Done():
		}
	}
}

// fetcher is worker w's serving loop: pop a segment, serve it, repeat. A
// fetcher whose worker fails twice in a row retires (its segments have
// already been re-queued for the survivors) as long as another fetcher is
// still alive; the last fetcher never retires — its segments' bounded
// attempt counts terminate the query instead.
func (g *gather) fetcher(i int, worker string) {
	defer func() {
		g.mu.Lock()
		g.alive--
		if g.alive == 0 && !g.finished && g.failed == nil && g.ctx.Err() == nil {
			g.failLocked(fmt.Errorf("cluster: all workers failed"))
		}
		g.mu.Unlock()
		g.wakeAll()
	}()
	failStreak := 0
	for {
		seg, ok := g.next(i)
		if !ok {
			return
		}
		err := g.serve(i, worker, seg)
		g.mu.Lock()
		g.active[i] = nil
		g.mu.Unlock()
		// A completed call may have been another fetcher's shed victim;
		// wake parked fetchers so they re-target.
		g.wakeAll()
		if err == nil {
			failStreak = 0
			continue
		}
		if g.ctx.Err() != nil {
			return
		}
		failStreak++
		g.mu.Lock()
		othersAlive := g.alive > 1
		g.mu.Unlock()
		if failStreak >= 2 && othersAlive {
			// The worker looks dead; retire so its segments stop bouncing
			// back to it. Survivors drain the queue.
			return
		}
		// Exponential backoff before retrying through this worker again,
		// giving healthy peers first crack at the re-queued segment.
		backoff := g.c.cfg.Backoff << (failStreak - 1)
		select {
		case <-time.After(backoff):
		case <-g.done:
			return
		case <-g.ctx.Done():
			return
		}
	}
}

// serve runs scatter calls for one segment until it is fully delivered,
// shedding at markers when asked. It returns nil when the segment's rows
// were all delivered (by this fetcher, possibly minus ranges shed to
// peers), or the terminal call error (the undelivered remainder has been
// re-queued or the query failed).
func (g *gather) serve(i int, worker string, seg segment) error {
	ca := g.active[i]
	for {
		req := g.base
		req.RootLo, req.RootHi = ca.lo, ca.hi
		req.Version = g.versions[worker]
		g.mu.Lock()
		g.calls++
		g.mu.Unlock()
		g.c.scatterCalls.Add(1)

		err := g.sc.run(g.ctx, worker, g.dataset, &req, g.rootLen, func(tuples []database.Tuple, rootDone int) bool {
			if len(tuples) > 0 {
				select {
				case g.out <- Chunk{Tuples: tuples}:
				case <-g.ctx.Done():
					return true
				}
			}
			g.mu.Lock()
			if rootDone > ca.hi {
				rootDone = ca.hi
			}
			g.remaining -= rootDone - ca.lo
			ca.lo = rootDone
			if g.remaining == 0 {
				g.finishLocked()
			}
			shed := ca.shed && ca.hi-ca.lo >= 2
			if shed {
				mid := ca.lo + (ca.hi-ca.lo)/2
				g.segs = append(g.segs, segment{lo: mid, hi: ca.hi})
				ca.hi = mid
				ca.shed = false
				g.resplits++
				g.c.scatterResplits.Add(1)
			}
			g.mu.Unlock()
			if shed {
				g.wakeAll()
			}
			return shed
		})
		switch {
		case err == nil:
			return nil
		case err == errShed:
			// Range truncated at the last marker; re-issue the near half
			// unless the marker landed exactly on the new boundary.
			if ca.lo >= ca.hi {
				return nil
			}
			continue
		default:
			g.mu.Lock()
			if ca.lo < ca.hi && g.failed == nil && !g.finished && g.ctx.Err() == nil {
				rem := segment{lo: ca.lo, hi: ca.hi, attempts: seg.attempts + 1}
				if rem.attempts >= g.c.cfg.MaxAttempts {
					g.failLocked(fmt.Errorf("cluster: range [%d,%d) failed %d times, last: %w",
						rem.lo, rem.hi, rem.attempts, err))
				} else {
					g.segs = append(g.segs, rem)
					g.retries++
					g.c.scatterRetries.Add(1)
				}
			}
			g.mu.Unlock()
			g.wakeAll()
			return err
		}
	}
}
