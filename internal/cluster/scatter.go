package cluster

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/database"
	"repro/internal/wire"
)

// scatterClient issues range-scoped scatter calls against workers and
// decodes their answer streams into tuples. Scatter calls ask for the
// binary columnar encoding (the coordinator⇄worker hop is entirely under
// our control, so there is no reason to pay for text), but the client
// keys its decode path on the response Content-Type, so a worker that
// only speaks NDJSON still merges correctly. One call is one HTTP
// request; the gather layer decides what to do with markers, retries and
// re-splits.
type scatterClient struct {
	hc *http.Client
	// stall is the per-worker deadline, expressed as the longest the client
	// will wait for the next byte of stream progress. A worker that is slow
	// but flowing never trips it; a frozen worker does, and its call is
	// cancelled so the remaining range can be re-issued elsewhere. It is
	// deliberately not a whole-call timeout — a large range legitimately
	// takes long.
	stall time.Duration
}

// errShed is the internal sentinel scatterClient.run returns when the
// chunk callback asked to stop the call (a straggler re-split truncated
// its range): the caller re-issues the truncated range, nothing failed.
var errShed = errors.New("cluster: call shed at marker")

// workerError is a non-200 response from a worker, carrying the status so
// the coordinator can distinguish version conflicts (409) from transport
// trouble.
type workerError struct {
	worker string
	status int
	msg    string
}

func (e *workerError) Error() string {
	return fmt.Sprintf("cluster: worker %s: %d: %s", e.worker, e.status, e.msg)
}

// WorkerStatus extracts the HTTP status of a worker-reported failure, so
// callers can propagate client-level statuses (400, 404, 409) instead of
// flattening everything to a gateway error.
func WorkerStatus(err error) (int, bool) {
	var we *workerError
	if errors.As(err, &we) {
		return we.status, true
	}
	return 0, false
}

// post issues one POST with a JSON body and returns the response; accept,
// if non-empty, is sent as the Accept header. Non-200 responses are
// drained, decoded and returned as *workerError.
func (sc *scatterClient) post(ctx context.Context, url string, body []byte, accept string) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	resp, err := sc.hc.Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		defer resp.Body.Close()
		var we struct {
			Error string `json:"error"`
		}
		msg := resp.Status
		if raw, err := io.ReadAll(io.LimitReader(resp.Body, 4096)); err == nil {
			if json.Unmarshal(raw, &we) == nil && we.Error != "" {
				msg = we.Error
			}
		}
		return nil, &workerError{worker: url, status: resp.StatusCode, msg: msg}
	}
	return resp, nil
}

// isBinary reports whether a response carries the binary frame encoding.
func isBinary(resp *http.Response) bool {
	ct := resp.Header.Get("Content-Type")
	if i := strings.IndexByte(ct, ';'); i >= 0 {
		ct = ct[:i]
	}
	return strings.TrimSpace(ct) == wire.MediaTypeBinary
}

// probe asks one worker for a scatter header without enumerating: the
// coordinator learns RootLen, the answer arity, whether the plan is
// scatterable, and the plan/bind provenance of the probed worker. Probes
// stay on NDJSON — one text line is simpler than a frame handshake and
// costs nothing at this volume.
func (sc *scatterClient) probe(ctx context.Context, worker, dataset string, req *ScatterRequest) (*ScatterHeader, error) {
	pr := *req
	pr.Probe = true
	// A probe is one header line; the stall deadline bounds the whole call
	// so a frozen worker cannot wedge query admission.
	pctx, cancel := context.WithTimeout(ctx, sc.stall)
	defer cancel()
	resp, err := sc.post(pctx, worker+"/datasets/"+dataset+"/scatter", pr.Encode(), "")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	line, err := bufio.NewReader(io.LimitReader(resp.Body, 1<<20)).ReadBytes('\n')
	if err != nil && len(line) == 0 {
		return nil, fmt.Errorf("cluster: probe of %s: %v", worker, err)
	}
	var ctl controlLine
	if err := json.Unmarshal(line, &ctl); err != nil || !ctl.Header {
		return nil, fmt.Errorf("cluster: probe of %s: malformed header line %q", worker, bytes.TrimSpace(line))
	}
	// A probe response is the header line and nothing else; drain to EOF so
	// the transport keeps the connection for the scatter calls that follow
	// (closing a body short of EOF forfeits keep-alive).
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	return ctl.header(), nil
}

// run issues one scatter call and walks its stream. onChunk is invoked at
// every progress point — each marker and the trailer — with the answers
// decoded since the previous one (possibly none) and the root progress;
// returning stop=true cancels the call mid-stream and run returns
// errShed. run returns nil only when the trailer was reached, so the
// caller knows the whole [RootLo, RootHi) range was delivered.
// expectRootLen guards against inconsistent replicas: a worker whose plan
// disagrees on the root domain must not contribute answers.
func (sc *scatterClient) run(ctx context.Context, worker, dataset string, req *ScatterRequest, expectRootLen int, onChunk func(tuples []database.Tuple, rootDone int) (stop bool)) error {
	callCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	// The stall watchdog cancels the call when the stream makes no progress
	// for sc.stall. It is armed before the POST — a worker frozen before it
	// even sends response headers must trip the same deadline — and then
	// only while we wait on the worker: it is stopped around onChunk, so
	// coordinator-side backpressure (a slow consumer blocking chunk
	// delivery) never counts against the worker.
	var stalled atomic.Bool
	watchdog := time.AfterFunc(sc.stall, func() {
		stalled.Store(true)
		cancel()
	})
	defer watchdog.Stop()

	resp, err := sc.post(callCtx, worker+"/datasets/"+dataset+"/scatter", req.Encode(), wire.MediaTypeBinary)
	if err != nil {
		if stalled.Load() {
			return fmt.Errorf("cluster: worker %s: stalled (no response for %s)", worker, sc.stall)
		}
		return err
	}
	defer resp.Body.Close()

	if isBinary(resp) {
		err = sc.runBinary(resp, worker, req, expectRootLen, watchdog, onChunk)
	} else {
		err = sc.runNDJSON(resp, worker, req, expectRootLen, watchdog, onChunk)
	}
	// A watchdog trip surfaces as a read error on the cancelled body; name
	// the stall instead. Clean completions and sheds pass through.
	if err != nil && err != errShed && stalled.Load() {
		return fmt.Errorf("cluster: worker %s: stalled (no stream progress for %s)", worker, sc.stall)
	}
	return err
}

// runBinary walks a binary frame stream. The wire decoder enforces the
// frame grammar (header first, checksums, arity agreement); this loop
// enforces the scatter protocol on top of it.
func (sc *scatterClient) runBinary(resp *http.Response, worker string, req *ScatterRequest, expectRootLen int, watchdog *time.Timer, onChunk func([]database.Tuple, int) bool) error {
	dec := wire.NewDecoder(bufio.NewReaderSize(resp.Body, 64<<10))
	var (
		tuples   []database.Tuple
		progress = req.RootLo
	)
	for {
		fr, err := dec.Next()
		watchdog.Stop()
		if err == io.EOF {
			return fmt.Errorf("cluster: worker %s: stream ended without a trailer", worker)
		}
		if err != nil {
			return fmt.Errorf("cluster: worker %s: reading stream: %v", worker, err)
		}
		switch fr.Kind {
		case wire.KindHeader:
			var hdr ScatterHeader
			if err := json.Unmarshal(fr.Meta, &hdr); err != nil || !hdr.Header {
				return fmt.Errorf("cluster: worker %s: malformed scatter header meta", worker)
			}
			if !hdr.Scatterable {
				return fmt.Errorf("cluster: worker %s: plan is not scatterable", worker)
			}
			if hdr.RootLen != expectRootLen {
				return fmt.Errorf("cluster: worker %s: root domain %d disagrees with probe %d (inconsistent replica?)",
					worker, hdr.RootLen, expectRootLen)
			}
			if hdr.Arity != fr.Arity {
				return fmt.Errorf("cluster: worker %s: header arity %d disagrees with frame arity %d",
					worker, hdr.Arity, fr.Arity)
			}
		case wire.KindBlock:
			tuples = append(tuples, fr.Tuples...)
		case wire.KindMarker:
			p := fr.RootDone
			if p < progress {
				return fmt.Errorf("cluster: worker %s: marker regresses progress (%d after %d)", worker, p, progress)
			}
			progress = p
			if onChunk(tuples, p) {
				return errShed
			}
			tuples = nil
		case wire.KindTrailer:
			tr := fr.Trailer
			if tr.Error != "" {
				return fmt.Errorf("cluster: worker %s: stream error: %s", worker, tr.Error)
			}
			if !tr.Done {
				return fmt.Errorf("cluster: worker %s: trailer without done", worker)
			}
			if tr.RootDone < progress {
				return fmt.Errorf("cluster: worker %s: trailer regresses progress", worker)
			}
			onChunk(tuples, tr.RootDone)
			// Drain the framing tail to EOF (watchdog re-armed to bound it)
			// so the transport can reuse this connection for the worker's
			// next call instead of dialing fresh every range.
			watchdog.Reset(sc.stall)
			_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
			return nil
		}
		watchdog.Reset(sc.stall)
	}
}

// runNDJSON walks a text scatter stream, decoding answer lines to tuples.
func (sc *scatterClient) runNDJSON(resp *http.Response, worker string, req *ScatterRequest, expectRootLen int, watchdog *time.Timer, onChunk func([]database.Tuple, int) bool) error {
	scanner := bufio.NewScanner(resp.Body)
	scanner.Buffer(make([]byte, 0, 64<<10), 16<<20)

	var (
		tuples     []database.Tuple
		progress   = req.RootLo
		headerSeen bool
	)
	for scanner.Scan() {
		watchdog.Stop()
		raw := scanner.Bytes()
		if len(raw) > 0 && raw[0] == '[' {
			t, err := wire.ParseTupleNDJSON(raw)
			if err != nil {
				return fmt.Errorf("cluster: worker %s: malformed answer line %q: %v", worker, raw, err)
			}
			tuples = append(tuples, t)
			watchdog.Reset(sc.stall)
			continue
		}
		var ctl controlLine
		if err := json.Unmarshal(raw, &ctl); err != nil {
			return fmt.Errorf("cluster: worker %s: malformed stream line %q: %v", worker, raw, err)
		}
		switch {
		case ctl.Header:
			if headerSeen {
				return fmt.Errorf("cluster: worker %s: duplicate header line", worker)
			}
			headerSeen = true
			if !ctl.Scatterable {
				return fmt.Errorf("cluster: worker %s: plan is not scatterable", worker)
			}
			if ctl.RootLen != expectRootLen {
				return fmt.Errorf("cluster: worker %s: root domain %d disagrees with probe %d (inconsistent replica?)",
					worker, ctl.RootLen, expectRootLen)
			}
		case ctl.Error != "":
			return fmt.Errorf("cluster: worker %s: stream error: %s", worker, ctl.Error)
		case ctl.Done:
			if !headerSeen {
				return fmt.Errorf("cluster: worker %s: trailer before header", worker)
			}
			if ctl.RootDone == nil || *ctl.RootDone < progress {
				return fmt.Errorf("cluster: worker %s: trailer regresses progress", worker)
			}
			onChunk(tuples, *ctl.RootDone)
			// The trailer is the stream's last line; drain the framing tail
			// to EOF (watchdog re-armed to bound it) so the transport can
			// reuse this connection for the worker's next call instead of
			// dialing fresh every range.
			watchdog.Reset(sc.stall)
			_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
			return nil
		case ctl.RootDone != nil:
			if !headerSeen {
				return fmt.Errorf("cluster: worker %s: marker before header", worker)
			}
			p := *ctl.RootDone
			if p < progress {
				return fmt.Errorf("cluster: worker %s: marker regresses progress (%d after %d)", worker, p, progress)
			}
			progress = p
			if onChunk(tuples, p) {
				return errShed
			}
			tuples = nil
		default:
			return fmt.Errorf("cluster: worker %s: unrecognized stream line %q", worker, raw)
		}
		watchdog.Reset(sc.stall)
	}
	if err := scanner.Err(); err != nil {
		return fmt.Errorf("cluster: worker %s: reading stream: %v", worker, err)
	}
	return fmt.Errorf("cluster: worker %s: stream ended without a trailer", worker)
}
