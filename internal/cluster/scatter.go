package cluster

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync/atomic"
	"time"
)

// scatterClient issues range-scoped scatter calls against workers and
// parses their NDJSON streams. One call is one HTTP request; the gather
// layer decides what to do with markers, retries and re-splits.
type scatterClient struct {
	hc *http.Client
	// stall is the per-worker deadline, expressed as the longest the client
	// will wait for the next byte of stream progress. A worker that is slow
	// but flowing never trips it; a frozen worker does, and its call is
	// cancelled so the remaining range can be re-issued elsewhere. It is
	// deliberately not a whole-call timeout — a large range legitimately
	// takes long.
	stall time.Duration
}

// errShed is the internal sentinel scatterClient.run returns when the
// chunk callback asked to stop the call (a straggler re-split truncated
// its range): the caller re-issues the truncated range, nothing failed.
var errShed = errors.New("cluster: call shed at marker")

// workerError is a non-200 response from a worker, carrying the status so
// the coordinator can distinguish version conflicts (409) from transport
// trouble.
type workerError struct {
	worker string
	status int
	msg    string
}

func (e *workerError) Error() string {
	return fmt.Sprintf("cluster: worker %s: %d: %s", e.worker, e.status, e.msg)
}

// WorkerStatus extracts the HTTP status of a worker-reported failure, so
// callers can propagate client-level statuses (400, 404, 409) instead of
// flattening everything to a gateway error.
func WorkerStatus(err error) (int, bool) {
	var we *workerError
	if errors.As(err, &we) {
		return we.status, true
	}
	return 0, false
}

// post issues one POST with a JSON body and returns the response; non-200
// responses are drained, decoded and returned as *workerError.
func (sc *scatterClient) post(ctx context.Context, url string, body []byte) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := sc.hc.Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		defer resp.Body.Close()
		var we struct {
			Error string `json:"error"`
		}
		msg := resp.Status
		if raw, err := io.ReadAll(io.LimitReader(resp.Body, 4096)); err == nil {
			if json.Unmarshal(raw, &we) == nil && we.Error != "" {
				msg = we.Error
			}
		}
		return nil, &workerError{worker: url, status: resp.StatusCode, msg: msg}
	}
	return resp, nil
}

// probe asks one worker for a scatter header without enumerating: the
// coordinator learns RootLen, whether the plan is scatterable, and the
// plan/bind provenance of the probed worker.
func (sc *scatterClient) probe(ctx context.Context, worker, dataset string, req *ScatterRequest) (*ScatterHeader, error) {
	pr := *req
	pr.Probe = true
	// A probe is one header line; the stall deadline bounds the whole call
	// so a frozen worker cannot wedge query admission.
	pctx, cancel := context.WithTimeout(ctx, sc.stall)
	defer cancel()
	resp, err := sc.post(pctx, worker+"/datasets/"+dataset+"/scatter", pr.Encode())
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	line, err := bufio.NewReader(io.LimitReader(resp.Body, 1<<20)).ReadBytes('\n')
	if err != nil && len(line) == 0 {
		return nil, fmt.Errorf("cluster: probe of %s: %v", worker, err)
	}
	var ctl controlLine
	if err := json.Unmarshal(line, &ctl); err != nil || !ctl.Header {
		return nil, fmt.Errorf("cluster: probe of %s: malformed header line %q", worker, bytes.TrimSpace(line))
	}
	// A probe response is the header line and nothing else; drain to EOF so
	// the transport keeps the connection for the scatter calls that follow
	// (closing a body short of EOF forfeits keep-alive).
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	return ctl.header(), nil
}

// run issues one scatter call and walks its stream. onChunk is invoked at
// every progress point — each marker and the trailer — with the answer
// lines accumulated since the previous one (possibly none) and the root
// progress; returning stop=true cancels the call mid-stream and run
// returns errShed. run returns nil only when the trailer was reached, so
// the caller knows the whole [RootLo, RootHi) range was delivered.
// expectRootLen guards against inconsistent replicas: a worker whose plan
// disagrees on the root domain must not contribute answers.
func (sc *scatterClient) run(ctx context.Context, worker, dataset string, req *ScatterRequest, expectRootLen int, onChunk func(lines [][]byte, rootDone int) (stop bool)) error {
	callCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	// The stall watchdog cancels the call when the stream makes no progress
	// for sc.stall. It is armed before the POST — a worker frozen before it
	// even sends response headers must trip the same deadline — and then
	// only while we wait on the worker: it is stopped around onChunk, so
	// coordinator-side backpressure (a slow consumer blocking chunk
	// delivery) never counts against the worker.
	var stalled atomic.Bool
	watchdog := time.AfterFunc(sc.stall, func() {
		stalled.Store(true)
		cancel()
	})
	defer watchdog.Stop()

	resp, err := sc.post(callCtx, worker+"/datasets/"+dataset+"/scatter", req.Encode())
	if err != nil {
		if stalled.Load() {
			return fmt.Errorf("cluster: worker %s: stalled (no response for %s)", worker, sc.stall)
		}
		return err
	}
	defer resp.Body.Close()

	scanner := bufio.NewScanner(resp.Body)
	scanner.Buffer(make([]byte, 0, 64<<10), 16<<20)

	var (
		lines      [][]byte
		progress   = req.RootLo
		headerSeen bool
	)
	for scanner.Scan() {
		watchdog.Stop()
		raw := scanner.Bytes()
		if len(raw) > 0 && raw[0] == '[' {
			// Answer line: copy out of the scanner's buffer, keep the
			// newline NDJSON framing.
			line := make([]byte, 0, len(raw)+1)
			line = append(line, raw...)
			line = append(line, '\n')
			lines = append(lines, line)
			watchdog.Reset(sc.stall)
			continue
		}
		var ctl controlLine
		if err := json.Unmarshal(raw, &ctl); err != nil {
			return fmt.Errorf("cluster: worker %s: malformed stream line %q: %v", worker, raw, err)
		}
		switch {
		case ctl.Header:
			if headerSeen {
				return fmt.Errorf("cluster: worker %s: duplicate header line", worker)
			}
			headerSeen = true
			if !ctl.Scatterable {
				return fmt.Errorf("cluster: worker %s: plan is not scatterable", worker)
			}
			if ctl.RootLen != expectRootLen {
				return fmt.Errorf("cluster: worker %s: root domain %d disagrees with probe %d (inconsistent replica?)",
					worker, ctl.RootLen, expectRootLen)
			}
		case ctl.Error != "":
			return fmt.Errorf("cluster: worker %s: stream error: %s", worker, ctl.Error)
		case ctl.Done:
			if !headerSeen {
				return fmt.Errorf("cluster: worker %s: trailer before header", worker)
			}
			if ctl.RootDone == nil || *ctl.RootDone < progress {
				return fmt.Errorf("cluster: worker %s: trailer regresses progress", worker)
			}
			onChunk(lines, *ctl.RootDone)
			// The trailer is the stream's last line; drain the framing tail
			// to EOF (watchdog re-armed to bound it) so the transport can
			// reuse this connection for the worker's next call instead of
			// dialing fresh every range.
			watchdog.Reset(sc.stall)
			_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
			return nil
		case ctl.RootDone != nil:
			if !headerSeen {
				return fmt.Errorf("cluster: worker %s: marker before header", worker)
			}
			p := *ctl.RootDone
			if p < progress {
				return fmt.Errorf("cluster: worker %s: marker regresses progress (%d after %d)", worker, p, progress)
			}
			progress = p
			if onChunk(lines, p) {
				return errShed
			}
			lines = nil
		default:
			return fmt.Errorf("cluster: worker %s: unrecognized stream line %q", worker, raw)
		}
		watchdog.Reset(sc.stall)
	}
	if stalled.Load() {
		return fmt.Errorf("cluster: worker %s: stalled (no stream progress for %s)", worker, sc.stall)
	}
	if err := scanner.Err(); err != nil {
		return fmt.Errorf("cluster: worker %s: reading stream: %v", worker, err)
	}
	return fmt.Errorf("cluster: worker %s: stream ended without a trailer", worker)
}
