// Package cluster implements the distributed scatter-gather layer behind
// ucq-serve's coordinator mode: a static worker topology, replicated
// dataset placement through each worker's catalog, and a root-range
// scatter protocol that merges the workers' NDJSON streams dedup-free.
//
// The scatter unit is a contiguous range of root-row indices (see
// ucq.Plan.RootLen): when a plan's answer set is root-range partitionable,
// ranges over [0, RootLen) split it into pairwise disjoint streams, so the
// coordinator concatenates worker streams without any cross-node
// deduplication — the distributed form of the head-variable disjointness
// that lets the in-process union merge skip dedup. Workers stream their
// range in ascending root order and interleave progress markers
// ("all answers with root row < p have been emitted"), which gives the
// coordinator exact resume points: a failed or cancelled call is re-issued
// from its last marker with zero duplicated and zero lost answers, and a
// straggler's remaining range can be split off to an idle peer, mirroring
// internal/exec's steal/split at the network layer.
package cluster

import (
	"encoding/json"
	"fmt"
)

// ScatterRequest is the coordinator→worker range-scoped query request: the
// body of POST /datasets/{name}/scatter. It is the codec FuzzScatterRequest
// exercises — workers must reject malformed requests with an error, never
// a panic, and valid requests must survive an encode/decode round trip.
type ScatterRequest struct {
	// Query is the UCQ source, same concrete syntax as /query.
	Query string `json:"query"`
	// Mode is "auto" (default) or "naive". Scatter requires a certified
	// root-range-partitionable plan, so "naive" can only ever probe.
	Mode string `json:"mode,omitempty"`
	// RootLo and RootHi scope the enumeration to root rows [RootLo, RootHi).
	// RootHi = -1 means the plan's full root length.
	RootLo int `json:"root_lo"`
	RootHi int `json:"root_hi"`
	// MarkerEvery asks the worker to emit a progress marker roughly every
	// this many answers (at the next root-row boundary). 0 selects the
	// worker's default.
	MarkerEvery int `json:"marker_every,omitempty"`
	// Version is the dataset version this call expects on the worker; the
	// worker answers 409 on mismatch, so a scatter never silently mixes
	// answers from different snapshots across workers. 0 accepts any.
	Version uint64 `json:"version,omitempty"`
	// Probe asks for the header line only: no enumeration, no trailer. The
	// coordinator probes once per query to learn RootLen and whether the
	// plan is scatterable at all.
	Probe bool `json:"probe,omitempty"`
}

// Validate checks the request's invariants; workers call it before
// planning anything.
func (r *ScatterRequest) Validate() error {
	if r.Query == "" {
		return fmt.Errorf("cluster: scatter request has no query")
	}
	if r.Mode != "" && r.Mode != "auto" && r.Mode != "naive" {
		return fmt.Errorf("cluster: scatter mode must be \"auto\" or \"naive\", got %q", r.Mode)
	}
	if r.RootLo < 0 {
		return fmt.Errorf("cluster: root_lo must be ≥ 0, got %d", r.RootLo)
	}
	if r.RootHi < -1 {
		return fmt.Errorf("cluster: root_hi must be ≥ 0 (or -1 for the full root length), got %d", r.RootHi)
	}
	if r.RootHi != -1 && r.RootHi < r.RootLo {
		return fmt.Errorf("cluster: empty-inverted range [%d, %d)", r.RootLo, r.RootHi)
	}
	if r.MarkerEvery < 0 {
		return fmt.Errorf("cluster: marker_every must be ≥ 0, got %d", r.MarkerEvery)
	}
	return nil
}

// DecodeScatterRequest decodes and validates a scatter request body.
func DecodeScatterRequest(data []byte) (*ScatterRequest, error) {
	var req ScatterRequest
	if err := json.Unmarshal(data, &req); err != nil {
		return nil, fmt.Errorf("cluster: decoding scatter request: %v", err)
	}
	if err := req.Validate(); err != nil {
		return nil, err
	}
	return &req, nil
}

// Encode renders the request as its wire body.
func (r *ScatterRequest) Encode() []byte {
	out, err := json.Marshal(r)
	if err != nil {
		// All fields are plain data; Marshal cannot fail.
		panic(fmt.Sprintf("cluster: encoding scatter request: %v", err))
	}
	return out
}

// ScatterHeader is the first NDJSON line of a scatter response — the only
// line with "header": true. It reports whether the plan is root-range
// partitionable and, if so, the root domain size the coordinator fans out
// over. Workers bound against identical replicas of a dataset agree on
// RootLen (plan preparation is deterministic); the coordinator checks this
// on every call and fails the query on divergence rather than merging
// streams from inconsistent replicas.
type ScatterHeader struct {
	Header      bool `json:"header"`
	Scatterable bool `json:"scatterable"`
	RootLen     int  `json:"root_len"`
	// Arity is the answer tuple width; the binary stream encoding needs it
	// up front (the columnar blocks have no per-row framing), and text
	// clients can ignore it.
	Arity          int    `json:"arity"`
	Mode           string `json:"mode"`
	Cache          string `json:"cache"`
	Bind           string `json:"bind"`
	Dataset        string `json:"dataset"`
	DatasetVersion uint64 `json:"dataset_version"`
}

// ScatterMarker is a progress checkpoint within a scatter stream: every
// answer with root row < RootDone has been emitted before it. Markers only
// appear at root-row boundaries, which is what makes resuming at
// [RootDone, hi) exact.
type ScatterMarker struct {
	RootDone int `json:"root_done"`
}

// ScatterTrailer is the final NDJSON line of a completed scatter stream.
// RootDone equals the request's effective RootHi — an implicit final
// marker covering the tail of the range.
type ScatterTrailer struct {
	Done     bool   `json:"done"`
	Count    int    `json:"count"`
	RootDone int    `json:"root_done"`
	Error    string `json:"error,omitempty"`
}

// controlLine is the union of the control objects a scatter stream can
// carry (header, marker, trailer, error); answer lines are JSON arrays and
// never decode into it. The pointer on RootDone distinguishes a marker
// from other objects.
type controlLine struct {
	Header         bool   `json:"header"`
	Scatterable    bool   `json:"scatterable"`
	RootLen        int    `json:"root_len"`
	Arity          int    `json:"arity"`
	Mode           string `json:"mode"`
	Cache          string `json:"cache"`
	Bind           string `json:"bind"`
	Dataset        string `json:"dataset"`
	DatasetVersion uint64 `json:"dataset_version"`
	Done           bool   `json:"done"`
	Count          int    `json:"count"`
	RootDone       *int   `json:"root_done"`
	Error          string `json:"error"`
}

// header extracts the header view of a control line.
func (c *controlLine) header() *ScatterHeader {
	return &ScatterHeader{
		Header:         c.Header,
		Scatterable:    c.Scatterable,
		RootLen:        c.RootLen,
		Arity:          c.Arity,
		Mode:           c.Mode,
		Cache:          c.Cache,
		Bind:           c.Bind,
		Dataset:        c.Dataset,
		DatasetVersion: c.DatasetVersion,
	}
}
