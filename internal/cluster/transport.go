package cluster

import (
	"net"
	"net/http"
	"time"
)

// scatterSockBuf is the fixed socket buffer size for coordinator→worker
// connections (the kernel doubles it for bookkeeping overhead). Scatter
// streams arrive in multi-hundred-kilobyte bursts, and the gather loop
// legitimately pauses reading at every marker while a chunk is handed to
// the merged consumer. On kernels with receive-buffer moderation
// (tcp_moderate_rcvbuf) that pause is enough to overflow the small default
// buffer — loopback segments carry ~64 KiB of data but account for much
// more truesize — and the kernel responds by collapsing the socket's
// receive buffer, sometimes to a few kilobytes. The window never recovers
// and a healthy stream degrades to a persist-probe trickle measured in
// KB/s. An explicit SO_RCVBUF opts the socket out of moderation entirely:
// the window is pinned open and backpressure stays where it belongs, in
// TCP flow control at this fixed depth.
const scatterSockBuf = 1 << 20

// NewTransport returns the transport the coordinator uses for worker
// calls when Config.Client is not supplied: HTTP/1.1 keep-alive with
// enough idle connections for a probe and a scatter call per worker, and
// pinned socket buffers (see scatterSockBuf).
func NewTransport() *http.Transport {
	dialer := &net.Dialer{
		Timeout:   10 * time.Second,
		KeepAlive: 30 * time.Second,
		Control:   pinSocketBuffers,
	}
	return &http.Transport{
		Proxy:               http.ProxyFromEnvironment,
		DialContext:         dialer.DialContext,
		MaxIdleConns:        64,
		MaxIdleConnsPerHost: 8,
		IdleConnTimeout:     90 * time.Second,
	}
}
