package cluster

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/database"
	"repro/internal/wire"
)

// Defaults for Config zero values.
const (
	// DefaultStallTimeout is the per-worker deadline: the longest a scatter
	// call may go without stream progress before it is cancelled and its
	// remaining range re-queued.
	DefaultStallTimeout = 30 * time.Second
	// DefaultMaxAttempts bounds how many failed calls one root-row range
	// survives before the query fails.
	DefaultMaxAttempts = 4
	// DefaultBackoff is the base retry backoff (doubled per consecutive
	// failure of the same worker).
	DefaultBackoff = 50 * time.Millisecond
	// DefaultMarkerEvery is the progress-marker interval requested from
	// workers, in answers.
	DefaultMarkerEvery = 128
)

// Config tunes a Coordinator.
type Config struct {
	// Workers lists the worker base URLs (required; see NormalizeWorkers).
	Workers []string
	// Client issues the HTTP calls (nil = a fresh http.Client).
	Client *http.Client
	// StallTimeout is the per-worker deadline (0 = DefaultStallTimeout).
	StallTimeout time.Duration
	// MaxAttempts bounds per-range scatter attempts (0 = DefaultMaxAttempts).
	MaxAttempts int
	// Backoff is the base retry backoff (0 = DefaultBackoff).
	Backoff time.Duration
	// MarkerEvery is the requested marker interval (0 = DefaultMarkerEvery).
	MarkerEvery int
}

// ErrUnknownDataset reports a query against a dataset that was never
// registered through this coordinator.
var ErrUnknownDataset = errors.New("cluster: dataset not registered through this coordinator")

// DatasetInfo mirrors the worker wire shape of one dataset listing entry.
type DatasetInfo struct {
	Name      string `json:"name"`
	Version   uint64 `json:"version"`
	Rows      int    `json:"rows"`
	Relations int    `json:"relations"`
}

// dsEntry is the coordinator's registry record for one dataset: the
// listing info plus the per-worker versions captured when the replicas
// were written — the snapshot guard every scatter call carries.
type dsEntry struct {
	info     DatasetInfo
	versions map[string]uint64
}

// Totals are the coordinator's cumulative scatter counters, surfaced
// under /stats on the coordinator.
type Totals struct {
	// ScatterQueries counts queries fanned out by root range.
	ScatterQueries int64 `json:"scatter_queries"`
	// SingleWorkerFallbacks counts queries routed whole to one worker
	// because the plan was not root-range partitionable.
	SingleWorkerFallbacks int64 `json:"single_worker_fallbacks"`
	// ScatterCalls counts range-scoped worker calls (including re-issues).
	ScatterCalls int64 `json:"scatter_calls"`
	// ScatterRetries counts ranges re-queued after a failed call.
	ScatterRetries int64 `json:"scatter_retries"`
	// ScatterResplits counts straggler re-splits.
	ScatterResplits int64 `json:"scatter_resplits"`
}

// Coordinator owns a static worker topology and fans dataset writes and
// queries out over it. All methods are safe for concurrent use.
type Coordinator struct {
	cfg     Config
	workers []string
	sc      *scatterClient

	mu       sync.Mutex
	datasets map[string]*dsEntry

	scatterQueries  atomic.Int64
	fallbackQueries atomic.Int64
	scatterCalls    atomic.Int64
	scatterRetries  atomic.Int64
	scatterResplits atomic.Int64
}

// New builds a Coordinator over a normalized worker list.
func New(cfg Config) (*Coordinator, error) {
	workers, err := NormalizeWorkers(cfg.Workers)
	if err != nil {
		return nil, err
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Transport: NewTransport()}
	}
	if cfg.StallTimeout <= 0 {
		cfg.StallTimeout = DefaultStallTimeout
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = DefaultMaxAttempts
	}
	if cfg.Backoff <= 0 {
		cfg.Backoff = DefaultBackoff
	}
	if cfg.MarkerEvery <= 0 {
		cfg.MarkerEvery = DefaultMarkerEvery
	}
	return &Coordinator{
		cfg:      cfg,
		workers:  workers,
		sc:       &scatterClient{hc: cfg.Client, stall: cfg.StallTimeout},
		datasets: make(map[string]*dsEntry),
	}, nil
}

// Workers returns the normalized worker list.
func (c *Coordinator) Workers() []string {
	out := make([]string, len(c.workers))
	copy(out, c.workers)
	return out
}

// Totals returns the cumulative scatter counters.
func (c *Coordinator) Totals() Totals {
	return Totals{
		ScatterQueries:        c.scatterQueries.Load(),
		SingleWorkerFallbacks: c.fallbackQueries.Load(),
		ScatterCalls:          c.scatterCalls.Load(),
		ScatterRetries:        c.scatterRetries.Load(),
		ScatterResplits:       c.scatterResplits.Load(),
	}
}

// PutDataset replicates a dataset write (the raw PUT /datasets/{name}
// body — replace or append) to every worker and registers the dataset.
// Placement is replicate-all: every worker holds the full dataset, which
// is what lets any peer serve any root range during retries and
// re-splits (partial placement with a replication factor is future work).
// The write registers only when every worker accepted it; on partial
// failure the error names the failed workers and the dataset stays
// unregistered (or keeps its previous registration) — re-PUT to converge.
func (c *Coordinator) PutDataset(ctx context.Context, name string, body []byte) (DatasetInfo, error) {
	type result struct {
		worker string
		info   DatasetInfo
		err    error
	}
	results := make([]result, len(c.workers))
	var wg sync.WaitGroup
	for i, w := range c.workers {
		wg.Add(1)
		go func(i int, w string) {
			defer wg.Done()
			info, err := c.putOne(ctx, w, name, body)
			results[i] = result{worker: w, info: info, err: err}
		}(i, w)
	}
	wg.Wait()

	versions := make(map[string]uint64, len(c.workers))
	var failures []string
	var info DatasetInfo
	for i, r := range results {
		if r.err != nil {
			failures = append(failures, fmt.Sprintf("%s: %v", r.worker, r.err))
			continue
		}
		versions[r.worker] = r.info.Version
		if i == 0 || info.Name == "" {
			info = r.info
		}
	}
	if len(failures) > 0 {
		return DatasetInfo{}, fmt.Errorf("cluster: dataset %q not replicated to all workers: %s",
			name, joinLimited(failures, 3))
	}
	c.mu.Lock()
	c.datasets[name] = &dsEntry{info: info, versions: versions}
	c.mu.Unlock()
	return info, nil
}

// putOne writes one worker's replica, with one retry for transient
// transport errors (a PUT is idempotent: replace bodies converge, and a
// duplicated append surfaces as a version/row mismatch in the response we
// record, not silent divergence — the all-or-nothing registration above
// catches real failures).
func (c *Coordinator) putOne(ctx context.Context, worker, name string, body []byte) (DatasetInfo, error) {
	var lastErr error
	for attempt := 0; attempt < 2; attempt++ {
		if attempt > 0 {
			select {
			case <-time.After(c.cfg.Backoff):
			case <-ctx.Done():
				return DatasetInfo{}, ctx.Err()
			}
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodPut, worker+"/datasets/"+name, bytes.NewReader(body))
		if err != nil {
			return DatasetInfo{}, err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := c.cfg.Client.Do(req)
		if err != nil {
			lastErr = err
			continue
		}
		raw, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
		if err != nil {
			lastErr = err
			continue
		}
		if resp.StatusCode != http.StatusOK {
			var we struct {
				Error string `json:"error"`
			}
			msg := resp.Status
			if json.Unmarshal(raw, &we) == nil && we.Error != "" {
				msg = we.Error
			}
			// Client-level rejections (bad body, missing append target) are
			// deterministic; don't retry them.
			return DatasetInfo{}, &workerError{worker: worker, status: resp.StatusCode, msg: msg}
		}
		var info DatasetInfo
		if err := json.Unmarshal(raw, &info); err != nil {
			return DatasetInfo{}, fmt.Errorf("decoding dataset info: %v", err)
		}
		return info, nil
	}
	return DatasetInfo{}, lastErr
}

// DropDataset deletes the dataset from every worker and deregisters it.
// Workers that no longer have it (404) count as success.
func (c *Coordinator) DropDataset(ctx context.Context, name string) error {
	c.mu.Lock()
	_, known := c.datasets[name]
	c.mu.Unlock()
	if !known {
		return ErrUnknownDataset
	}
	var failures []string
	var fmu sync.Mutex
	var wg sync.WaitGroup
	for _, w := range c.workers {
		wg.Add(1)
		go func(w string) {
			defer wg.Done()
			req, err := http.NewRequestWithContext(ctx, http.MethodDelete, w+"/datasets/"+name, nil)
			if err == nil {
				var resp *http.Response
				resp, err = c.cfg.Client.Do(req)
				if err == nil {
					io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
					resp.Body.Close()
					if resp.StatusCode != http.StatusNoContent && resp.StatusCode != http.StatusNotFound {
						err = fmt.Errorf("status %d", resp.StatusCode)
					}
				}
			}
			if err != nil {
				fmu.Lock()
				failures = append(failures, fmt.Sprintf("%s: %v", w, err))
				fmu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	if len(failures) > 0 {
		return fmt.Errorf("cluster: dataset %q not dropped on all workers: %s", name, joinLimited(failures, 3))
	}
	c.mu.Lock()
	delete(c.datasets, name)
	c.mu.Unlock()
	return nil
}

// Datasets lists the registered datasets, sorted by name.
func (c *Coordinator) Datasets() []DatasetInfo {
	c.mu.Lock()
	out := make([]DatasetInfo, 0, len(c.datasets))
	for _, e := range c.datasets {
		out = append(out, e.info)
	}
	c.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Dataset returns one registered dataset's info.
func (c *Coordinator) Dataset(name string) (DatasetInfo, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.datasets[name]
	if !ok {
		return DatasetInfo{}, false
	}
	return e.info, true
}

// QuerySpec names a distributed query.
type QuerySpec struct {
	// Dataset is the registered dataset name.
	Dataset string
	// Query is the UCQ source.
	Query string
	// Mode is "auto" (default) or "naive".
	Mode string
}

// Query evaluates a UCQ across the cluster and returns the merged stream.
// A probe against the dataset's rendezvous owner decides the strategy:
// root-range scatter over all workers when the plan's answer set is
// root-range partitionable, otherwise the whole query goes to one worker
// (still dedup-free — it is one stream). Either way every delivered chunk
// is exact: the marker protocol and per-worker version guards mean a
// retried or re-split call never duplicates or drops an answer.
func (c *Coordinator) Query(ctx context.Context, spec QuerySpec) (*Stream, error) {
	c.mu.Lock()
	entry, ok := c.datasets[spec.Dataset]
	versions := make(map[string]uint64)
	if ok {
		for w, v := range entry.versions {
			versions[w] = v
		}
	}
	c.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownDataset, spec.Dataset)
	}

	base := ScatterRequest{Query: spec.Query, Mode: spec.Mode, RootHi: -1, MarkerEvery: c.cfg.MarkerEvery}
	order := rendezvousOrder(c.workers, spec.Dataset+"\x00"+spec.Query)

	var hdr *ScatterHeader
	var probed string
	var lastErr error
	for _, w := range order {
		req := base
		req.Version = versions[w]
		h, err := c.sc.probe(ctx, w, spec.Dataset, &req)
		if err != nil {
			lastErr = err
			if ctx.Err() != nil {
				return nil, err
			}
			continue
		}
		hdr, probed = h, w
		break
	}
	if hdr == nil {
		return nil, fmt.Errorf("cluster: no worker answered the probe: %w", lastErr)
	}
	_ = probed

	head := Header{
		Mode:           hdr.Mode,
		Cache:          hdr.Cache,
		Bind:           hdr.Bind,
		Dataset:        hdr.Dataset,
		DatasetVersion: hdr.DatasetVersion,
		Arity:          hdr.Arity,
	}
	if hdr.Scatterable {
		head.RootLen = hdr.RootLen
		head.Scatter = "root-range"
		head.Workers = len(c.workers)
		c.scatterQueries.Add(1)
		return c.newGatherStream(ctx, head, versions, base, spec.Dataset), nil
	}
	head.Scatter = "single-worker"
	head.Workers = 1
	c.fallbackQueries.Add(1)
	return c.fallbackStream(ctx, head, spec, order)
}

// fallbackStream routes the whole query to a single worker (in rendezvous
// order) and re-frames its NDJSON answer stream as chunks. It retries on
// the next worker only while nothing has been delivered — without markers
// a partial stream has no exact resume point, so a mid-stream failure
// after delivery terminates the stream with an error instead of risking
// duplicates.
func (c *Coordinator) fallbackStream(ctx context.Context, hdr Header, spec QuerySpec, order []string) (*Stream, error) {
	sctx, cancel := context.WithCancel(ctx)
	out := make(chan Chunk, 4)
	st := &Stream{Header: hdr, C: out, cancel: cancel}
	st.setStats(StreamStats{Workers: 1})

	body, err := json.Marshal(struct {
		Query   string `json:"query"`
		Options struct {
			Mode string `json:"mode,omitempty"`
		} `json:"options"`
	}{Query: spec.Query, Options: struct {
		Mode string `json:"mode,omitempty"`
	}{Mode: spec.Mode}})
	if err != nil {
		cancel()
		return nil, err
	}

	go func() {
		defer close(out)
		var lastErr error
		for _, w := range order {
			delivered, err := c.fallbackOnce(sctx, w, spec.Dataset, body, out)
			if err == nil {
				return
			}
			lastErr = err
			if delivered || sctx.Err() != nil {
				// Answers already left for the client: no dedup-safe retry.
				if sctx.Err() == nil {
					st.setErr(err)
				}
				return
			}
		}
		if sctx.Err() == nil {
			st.setErr(fmt.Errorf("cluster: single-worker fallback failed on every worker: %w", lastErr))
		}
	}()
	return st, nil
}

// fallbackOnce streams one worker's full answer set into out, re-framed
// as chunks of at most MarkerEvery tuples. Like scatter calls, it asks
// for the binary encoding and keys the decode path on the response
// Content-Type. delivered reports whether any chunk reached the consumer.
func (c *Coordinator) fallbackOnce(ctx context.Context, worker, dataset string, body []byte, out chan<- Chunk) (delivered bool, err error) {
	callCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	// Same stall deadline as scatter calls: armed across the POST and every
	// stream read, disarmed while the consumer applies backpressure, so a
	// frozen fallback worker fails the call instead of wedging the stream.
	var stalled atomic.Bool
	watchdog := time.AfterFunc(c.sc.stall, func() {
		stalled.Store(true)
		cancel()
	})
	defer watchdog.Stop()
	resp, err := c.sc.post(callCtx, worker+"/datasets/"+dataset+"/query", body, wire.MediaTypeBinary)
	if err != nil {
		if stalled.Load() {
			return false, fmt.Errorf("cluster: worker %s: stalled (no response for %s)", worker, c.sc.stall)
		}
		return false, err
	}
	defer resp.Body.Close()

	var tuples []database.Tuple
	flush := func() bool {
		if len(tuples) == 0 {
			return true
		}
		watchdog.Stop()
		defer watchdog.Reset(c.sc.stall)
		select {
		case out <- Chunk{Tuples: tuples}:
			delivered = true
			tuples = nil
			return true
		case <-ctx.Done():
			return false
		}
	}

	if isBinary(resp) {
		dec := wire.NewDecoder(bufio.NewReaderSize(resp.Body, 64<<10))
		for {
			fr, err := dec.Next()
			watchdog.Stop()
			if err == io.EOF {
				// EOF without a trailer: the worker died or was cancelled
				// mid-stream.
				if stalled.Load() {
					return delivered, fmt.Errorf("cluster: worker %s: stalled (no stream progress for %s)", worker, c.sc.stall)
				}
				return delivered, fmt.Errorf("cluster: worker %s: stream ended without a trailer", worker)
			}
			if err != nil {
				if stalled.Load() {
					return delivered, fmt.Errorf("cluster: worker %s: stalled (no stream progress for %s)", worker, c.sc.stall)
				}
				return delivered, fmt.Errorf("cluster: worker %s: reading stream: %v", worker, err)
			}
			switch fr.Kind {
			case wire.KindBlock:
				tuples = append(tuples, fr.Tuples...)
				if len(tuples) >= c.cfg.MarkerEvery {
					if !flush() {
						return delivered, ctx.Err()
					}
				}
			case wire.KindTrailer:
				if fr.Trailer.Error != "" {
					return delivered, fmt.Errorf("cluster: worker %s: stream error: %s", worker, fr.Trailer.Error)
				}
				if !fr.Trailer.Done {
					return delivered, fmt.Errorf("cluster: worker %s: trailer without done", worker)
				}
				if !flush() {
					return delivered, ctx.Err()
				}
				// Drain the framing tail to EOF so the transport keeps the
				// connection; the watchdog bounds the read.
				watchdog.Reset(c.sc.stall)
				_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
				return delivered, nil
			}
			watchdog.Reset(c.sc.stall)
		}
	}

	scanner := bufio.NewScanner(resp.Body)
	scanner.Buffer(make([]byte, 0, 64<<10), 16<<20)
	for scanner.Scan() {
		watchdog.Reset(c.sc.stall)
		raw := scanner.Bytes()
		if len(raw) == 0 {
			continue
		}
		if raw[0] == '{' {
			var obj struct {
				Done  bool   `json:"done"`
				Error string `json:"error"`
			}
			if err := json.Unmarshal(raw, &obj); err != nil {
				return delivered, fmt.Errorf("cluster: worker %s: malformed stream object %q: %v", worker, raw, err)
			}
			if obj.Error != "" {
				// The worker's stream failed mid-enumeration; don't let the
				// error object masquerade as a completed stream.
				return delivered, fmt.Errorf("cluster: worker %s: stream error: %s", worker, obj.Error)
			}
			if !obj.Done {
				return delivered, fmt.Errorf("cluster: worker %s: unrecognized stream object %q", worker, raw)
			}
			if !flush() {
				return delivered, ctx.Err()
			}
			// Drain the framing tail to EOF so the transport keeps the
			// connection; the watchdog bounds the read.
			watchdog.Reset(c.sc.stall)
			_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
			return delivered, nil
		}
		t, err := wire.ParseTupleNDJSON(raw)
		if err != nil {
			return delivered, fmt.Errorf("cluster: worker %s: malformed answer line %q: %v", worker, raw, err)
		}
		tuples = append(tuples, t)
		if len(tuples) >= c.cfg.MarkerEvery {
			if !flush() {
				return delivered, ctx.Err()
			}
		}
	}
	if err := scanner.Err(); err != nil {
		if stalled.Load() {
			return delivered, fmt.Errorf("cluster: worker %s: stalled (no stream progress for %s)", worker, c.sc.stall)
		}
		return delivered, fmt.Errorf("cluster: worker %s: reading stream: %v", worker, err)
	}
	// EOF without a trailer: the worker died or cancelled mid-stream.
	return delivered, fmt.Errorf("cluster: worker %s: stream ended without a trailer", worker)
}

// ProxyCount forwards a count request body to one worker (rendezvous
// order, trying the next on transport failure) and returns its response
// verbatim. Every worker holds the full replica, so any single answer is
// the cluster answer.
func (c *Coordinator) ProxyCount(ctx context.Context, dataset string, body []byte) (status int, respBody []byte, err error) {
	c.mu.Lock()
	_, known := c.datasets[dataset]
	c.mu.Unlock()
	if !known {
		return 0, nil, ErrUnknownDataset
	}
	order := rendezvousOrder(c.workers, dataset)
	var lastErr error
	for _, w := range order {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, w+"/datasets/"+dataset+"/count", bytes.NewReader(body))
		if err != nil {
			return 0, nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := c.cfg.Client.Do(req)
		if err != nil {
			lastErr = err
			if ctx.Err() != nil {
				return 0, nil, err
			}
			continue
		}
		raw, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
		if err != nil {
			lastErr = err
			continue
		}
		return resp.StatusCode, raw, nil
	}
	return 0, nil, fmt.Errorf("cluster: no worker answered the count: %w", lastErr)
}

// WorkerStats fetches every worker's /stats snapshot concurrently (bounded
// by a short per-worker timeout) for the coordinator's namespaced stats
// aggregation. The error map carries per-worker fetch failures.
func (c *Coordinator) WorkerStats(ctx context.Context) (map[string]json.RawMessage, map[string]string) {
	stats := make(map[string]json.RawMessage, len(c.workers))
	errs := make(map[string]string)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, w := range c.workers {
		wg.Add(1)
		go func(w string) {
			defer wg.Done()
			wctx, cancel := context.WithTimeout(ctx, 2*time.Second)
			defer cancel()
			req, err := http.NewRequestWithContext(wctx, http.MethodGet, w+"/stats", nil)
			if err == nil {
				var resp *http.Response
				resp, err = c.cfg.Client.Do(req)
				if err == nil {
					var raw []byte
					raw, err = io.ReadAll(io.LimitReader(resp.Body, 4<<20))
					resp.Body.Close()
					if err == nil && resp.StatusCode != http.StatusOK {
						err = fmt.Errorf("status %d", resp.StatusCode)
					}
					if err == nil {
						mu.Lock()
						stats[w] = json.RawMessage(raw)
						mu.Unlock()
						return
					}
				}
			}
			mu.Lock()
			errs[w] = err.Error()
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	return stats, errs
}

// joinLimited joins up to n items, noting how many were elided.
func joinLimited(items []string, n int) string {
	if len(items) <= n {
		return fmt.Sprintf("%v", items)
	}
	return fmt.Sprintf("%v (+%d more)", items[:n], len(items)-n)
}
