package cluster

import (
	"fmt"
	"sort"
	"strings"
	"testing"
)

func TestNormalizeWorkers(t *testing.T) {
	got, err := NormalizeWorkers([]string{"w1:8454", "http://w2:8454/", "https://w3"})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"http://w1:8454", "http://w2:8454", "https://w3"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("NormalizeWorkers = %v, want %v", got, want)
	}

	for _, bad := range [][]string{
		{},
		{""},
		{"  "},
		{"w1:8454", "w1:8454"},
		{"w1:8454", "http://w1:8454"}, // same node after normalization
		{"ftp://w1:8454"},
		{"http://w1:8454/api"},
		{"http://"},
	} {
		if got, err := NormalizeWorkers(bad); err == nil {
			t.Errorf("NormalizeWorkers(%q) = %v, want error", bad, got)
		}
	}
}

func TestParseWorkerList(t *testing.T) {
	got, err := ParseWorkerList(" w1:8454, http://w2:8454 ,,")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"http://w1:8454", "http://w2:8454"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("ParseWorkerList = %v, want %v", got, want)
	}
	if _, err := ParseWorkerList(""); err == nil {
		t.Error("empty list accepted")
	}
}

func TestRendezvousOrder(t *testing.T) {
	workers := []string{"http://w1:8454", "http://w2:8454", "http://w3:8454", "http://w4:8454"}

	// Deterministic: same key, same order, independent of input order.
	order := rendezvousOrder(workers, "orders\x00Q(x) <- R(x).")
	shuffled := []string{workers[2], workers[0], workers[3], workers[1]}
	order2 := rendezvousOrder(shuffled, "orders\x00Q(x) <- R(x).")
	if fmt.Sprint(order) != fmt.Sprint(order2) {
		t.Errorf("order depends on input permutation: %v vs %v", order, order2)
	}

	// A permutation of the worker set, every time.
	sorted := append([]string(nil), order...)
	sort.Strings(sorted)
	wantSorted := append([]string(nil), workers...)
	sort.Strings(wantSorted)
	if fmt.Sprint(sorted) != fmt.Sprint(wantSorted) {
		t.Fatalf("order %v is not a permutation of %v", order, workers)
	}

	// Spread: over many keys, every worker owns (heads the order for) some
	// key — HRW should not collapse onto one node.
	owners := make(map[string]int)
	for i := 0; i < 256; i++ {
		key := fmt.Sprintf("ds-%d\x00Q(x) <- R%d(x).", i, i)
		owners[rendezvousOrder(workers, key)[0]]++
	}
	for _, w := range workers {
		if owners[w] == 0 {
			t.Errorf("worker %s never owns a key: %v", w, owners)
		}
	}

	// Removing one worker only reassigns the keys it owned: HRW's minimal
	// disruption property, the reason rendezvous beats mod-N here.
	trimmed := workers[:3]
	moved := 0
	for i := 0; i < 256; i++ {
		key := fmt.Sprintf("ds-%d\x00Q(x) <- R%d(x).", i, i)
		before := rendezvousOrder(workers, key)[0]
		after := rendezvousOrder(trimmed, key)[0]
		if before != after {
			moved++
			if before != workers[3] {
				t.Fatalf("key %d moved from surviving worker %s to %s", i, before, after)
			}
		}
	}
	if moved == 0 {
		t.Error("removing a worker moved no keys (it owned none?)")
	}
}

func TestWorkerStatusUnwraps(t *testing.T) {
	err := fmt.Errorf("outer: %w", &workerError{worker: "http://w1:8454", status: 409, msg: "version"})
	status, ok := WorkerStatus(err)
	if !ok || status != 409 {
		t.Errorf("WorkerStatus = %d, %v", status, ok)
	}
	if _, ok := WorkerStatus(fmt.Errorf("plain")); ok {
		t.Error("plain error reported a worker status")
	}
	if !strings.Contains(err.Error(), "409") {
		t.Errorf("worker error text %q lacks the status", err)
	}
}
