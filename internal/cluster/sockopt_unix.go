//go:build unix

package cluster

import "syscall"

// pinSocketBuffers fixes SO_RCVBUF/SO_SNDBUF on a dialed scatter
// connection, which disables kernel receive-buffer moderation for the
// socket (see scatterSockBuf for why that matters). Best effort: the
// setsockopt result is ignored — the kernel silently caps the value at
// rmem_max/wmem_max anyway, and a connection without the pin still works,
// just without the guarantee.
func pinSocketBuffers(network, address string, c syscall.RawConn) error {
	return c.Control(func(fd uintptr) {
		_ = syscall.SetsockoptInt(int(fd), syscall.SOL_SOCKET, syscall.SO_RCVBUF, scatterSockBuf)
		_ = syscall.SetsockoptInt(int(fd), syscall.SOL_SOCKET, syscall.SO_SNDBUF, scatterSockBuf)
	})
}
