package cluster

import (
	"fmt"
	"net/url"
	"sort"
	"strings"

	"repro/internal/shard"
)

// Topology: the coordinator runs against a static list of worker base
// URLs (dynamic membership is future work, see ROADMAP). Workers are
// normalized to scheme://host[:port] form so that "w1:8454",
// "http://w1:8454" and "http://w1:8454/" name the same node.

// NormalizeWorkers canonicalizes a list of worker specs: a bare host:port
// gains the http scheme, trailing slashes are stripped, and empties and
// duplicates are rejected.
func NormalizeWorkers(specs []string) ([]string, error) {
	out := make([]string, 0, len(specs))
	seen := make(map[string]bool, len(specs))
	for _, spec := range specs {
		w, err := normalizeWorker(spec)
		if err != nil {
			return nil, err
		}
		if seen[w] {
			return nil, fmt.Errorf("cluster: duplicate worker %q", w)
		}
		seen[w] = true
		out = append(out, w)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("cluster: no workers configured")
	}
	return out, nil
}

// normalizeWorker canonicalizes one worker spec.
func normalizeWorker(spec string) (string, error) {
	s := strings.TrimSpace(spec)
	if s == "" {
		return "", fmt.Errorf("cluster: empty worker spec")
	}
	if !strings.Contains(s, "://") {
		s = "http://" + s
	}
	u, err := url.Parse(s)
	if err != nil {
		return "", fmt.Errorf("cluster: worker spec %q: %v", spec, err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return "", fmt.Errorf("cluster: worker spec %q: scheme must be http or https", spec)
	}
	if u.Host == "" {
		return "", fmt.Errorf("cluster: worker spec %q has no host", spec)
	}
	if u.Path != "" && u.Path != "/" {
		return "", fmt.Errorf("cluster: worker spec %q must be a base URL without a path", spec)
	}
	return u.Scheme + "://" + u.Host, nil
}

// ParseWorkerList splits a comma-separated -workers flag value and
// normalizes each entry.
func ParseWorkerList(s string) ([]string, error) {
	var specs []string
	for _, part := range strings.Split(s, ",") {
		if strings.TrimSpace(part) == "" {
			continue
		}
		specs = append(specs, part)
	}
	return NormalizeWorkers(specs)
}

// rendezvousOrder returns the workers sorted by descending rendezvous
// weight for a key — highest-random-weight hashing over the stable
// cross-node hash (internal/shard's contract), so every coordinator
// instance computes the same preference order. The head of the order is
// the key's "owner": the worker probed first and the fallback target for
// non-scatterable queries, keeping a warm plan/bind cache for the pair
// instead of spraying identical work across all nodes.
func rendezvousOrder(workers []string, key string) []string {
	type weighted struct {
		w     string
		score uint64
	}
	ws := make([]weighted, len(workers))
	for i, w := range workers {
		ws[i] = weighted{w: w, score: shard.StableStringHash(w + "\x00" + key)}
	}
	sort.Slice(ws, func(i, j int) bool {
		if ws[i].score != ws[j].score {
			return ws[i].score > ws[j].score
		}
		return ws[i].w < ws[j].w
	})
	out := make([]string, len(ws))
	for i, x := range ws {
		out[i] = x.w
	}
	return out
}
