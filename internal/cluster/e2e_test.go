package cluster_test

// In-process multi-node harness: a coordinator and N workers on loopback
// (httptest), exercising the full HTTP surface — replication PUT, probe,
// root-range scatter, marker-resume retries, straggler re-splits and the
// /stats cluster section — against the single-node engine as ground
// truth. Answer comparisons are multiset-exact: any duplicated or lost
// tuple across worker streams fails the test.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	ucq "repro"
	"repro/internal/cluster"
	"repro/internal/server"
)

// fullJoin is certified and root-range partitionable; clusterRelations
// gives it nR*perZ answers.
const fullJoin = "Q(x,z,y) <- R(x,z), S(z,y)."

func clusterRelations(nR, zs, perZ int) map[string][][]int64 {
	rel := map[string][][]int64{}
	for i := 0; i < nR; i++ {
		rel["R"] = append(rel["R"], []int64{int64(i), int64(i % zs)})
	}
	for z := 0; z < zs; z++ {
		for j := 0; j < perZ; j++ {
			rel["S"] = append(rel["S"], []int64{int64(z), int64(z*1000 + j)})
		}
	}
	return rel
}

// referenceAnswers enumerates the query single-node, straight through the
// engine, and returns the answer multiset keyed by rendered tuple.
func referenceAnswers(t *testing.T, query string, rels map[string][][]int64) map[string]int {
	t.Helper()
	u, err := ucq.Parse(query)
	if err != nil {
		t.Fatal(err)
	}
	pq, err := ucq.Prepare(u, &ucq.PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	inst, err := ucq.InstanceFromRows(rels)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := pq.BindExecContext(context.Background(), inst, &ucq.PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ref := map[string]int{}
	for tup := range plan.All(context.Background()) {
		ref[string(ucq.AppendTupleJSON(nil, tup))]++
	}
	return ref
}

// middleware wraps one worker's handler (nil = passthrough).
type middleware func(http.Handler) http.Handler

// testCluster is one coordinator plus its workers, all on loopback.
type testCluster struct {
	coord    *server.Server
	coordURL string
	workers  []string
}

// bootCluster starts n workers (worker i wrapped by mws[i] when set) and
// a coordinator over them.
func bootCluster(t *testing.T, n int, cfg cluster.Config, mws map[int]middleware) *testCluster {
	t.Helper()
	var workers []string
	for i := 0; i < n; i++ {
		h := http.Handler(server.New(server.Config{}).Handler())
		if mw := mws[i]; mw != nil {
			h = mw(h)
		}
		ws := httptest.NewServer(h)
		t.Cleanup(ws.Close)
		workers = append(workers, ws.URL)
	}
	cfg.Workers = workers
	coord, err := server.NewCoordinator(server.Config{Cluster: cfg})
	if err != nil {
		t.Fatal(err)
	}
	cs := httptest.NewServer(coord.Handler())
	t.Cleanup(cs.Close)
	return &testCluster{coord: coord, coordURL: cs.URL, workers: workers}
}

func (tc *testCluster) putDataset(t *testing.T, name string, rels map[string][][]int64) {
	t.Helper()
	body, _ := json.Marshal(map[string]any{"relations": rels})
	req, _ := http.NewRequest(http.MethodPut, tc.coordURL+"/datasets/"+name, bytes.NewReader(body))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&e)
		t.Fatalf("PUT %s: status %d: %s", name, resp.StatusCode, e.Error)
	}
}

// queryAnswers streams one dataset query through the coordinator and
// returns the answer multiset plus the trailer (nil if the stream ended
// with an error object or truncated).
func (tc *testCluster) queryAnswers(t *testing.T, name, query string) (map[string]int, map[string]any) {
	t.Helper()
	body, _ := json.Marshal(map[string]any{"query": query})
	resp, err := http.Post(tc.coordURL+"/datasets/"+name+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := json.Marshal(resp.Header)
		t.Fatalf("query status = %d (%s)", resp.StatusCode, raw)
	}
	got := map[string]int{}
	var trailer map[string]any
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "{") {
			var obj map[string]any
			if err := json.Unmarshal([]byte(line), &obj); err != nil {
				t.Fatalf("object line %q: %v", line, err)
			}
			if errMsg, ok := obj["error"]; ok {
				t.Fatalf("stream error: %v", errMsg)
			}
			trailer = obj
			continue
		}
		got[line]++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return got, trailer
}

// diffMultisets reports the first few discrepancies between got and want.
func diffMultisets(t *testing.T, got, want map[string]int) {
	t.Helper()
	reported := 0
	for k, n := range want {
		if got[k] != n && reported < 5 {
			t.Errorf("answer %q: got %d, want %d", strings.TrimSpace(k), got[k], n)
			reported++
		}
	}
	for k, n := range got {
		if want[k] == 0 && reported < 5 {
			t.Errorf("unexpected answer %q (%d copies)", strings.TrimSpace(k), n)
			reported++
		}
	}
	if reported > 0 {
		t.Fatalf("answer multisets differ (got %d distinct, want %d)", len(got), len(want))
	}
}

// TestClusterEquivalence is the tentpole acceptance test: a coordinator
// with 3 workers returns exactly the single-node answer set, with zero
// duplicate tuples across the merged worker streams.
func TestClusterEquivalence(t *testing.T) {
	rels := clusterRelations(300, 20, 5)
	tc := bootCluster(t, 3, cluster.Config{MarkerEvery: 16}, nil)
	tc.putDataset(t, "join", rels)

	got, trailer := tc.queryAnswers(t, "join", fullJoin)
	diffMultisets(t, got, referenceAnswers(t, fullJoin, rels))

	if trailer == nil {
		t.Fatal("no trailer")
	}
	if trailer["scatter"] != "root-range" || trailer["workers"] != float64(3) {
		t.Errorf("trailer scatter/workers = %v/%v", trailer["scatter"], trailer["workers"])
	}
	if trailer["count"] != float64(300*5) {
		t.Errorf("trailer count = %v", trailer["count"])
	}
	tot := tc.coord.Cluster().Totals()
	if tot.ScatterQueries != 1 || tot.ScatterCalls < 3 {
		t.Errorf("totals = %+v", tot)
	}
}

// TestClusterFallbackEquivalence routes a non-partitionable union through
// the single-worker fallback and still matches the single-node engine.
func TestClusterFallbackEquivalence(t *testing.T) {
	union := `
		Q1(x,y,w) <- R1(x,z), R2(z,y), R3(y,w).
		Q2(x,y,w) <- R1(x,y), R2(y,w).
	`
	rels := map[string][][]int64{
		"R1": {{1, 2}, {4, 2}},
		"R2": {{2, 3}},
		"R3": {{3, 5}, {3, 6}},
	}
	tc := bootCluster(t, 3, cluster.Config{}, nil)
	tc.putDataset(t, "union", rels)

	got, trailer := tc.queryAnswers(t, "union", union)
	diffMultisets(t, got, referenceAnswers(t, union, rels))
	if trailer["scatter"] != "single-worker" || trailer["workers"] != float64(1) {
		t.Errorf("trailer scatter/workers = %v/%v", trailer["scatter"], trailer["workers"])
	}
	tot := tc.coord.Cluster().Totals()
	if tot.SingleWorkerFallbacks != 1 || tot.ScatterQueries != 0 {
		t.Errorf("totals = %+v", tot)
	}
}

// killAfter aborts a worker's scatter stream once it has written more
// than limit bytes, and answers 503 to every scatter call after that —
// a worker killed mid-enumeration that never comes back.
func killAfter(limit int) (middleware, *atomic.Bool) {
	var killed atomic.Bool
	mw := func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if !strings.HasSuffix(r.URL.Path, "/scatter") {
				next.ServeHTTP(w, r)
				return
			}
			if killed.Load() {
				w.Header().Set("Content-Type", "application/json")
				w.WriteHeader(http.StatusServiceUnavailable)
				fmt.Fprintln(w, `{"error":"worker down"}`)
				return
			}
			next.ServeHTTP(&abortWriter{ResponseWriter: w, limit: limit, killed: &killed}, r)
		})
	}
	return mw, &killed
}

type abortWriter struct {
	http.ResponseWriter
	n      int
	limit  int
	killed *atomic.Bool
}

func (aw *abortWriter) Write(p []byte) (int, error) {
	aw.n += len(p)
	if aw.n > aw.limit {
		aw.killed.Store(true)
		panic(http.ErrAbortHandler)
	}
	return aw.ResponseWriter.Write(p)
}

func (aw *abortWriter) Flush() {
	if f, ok := aw.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// TestClusterWorkerKillMidStream kills one worker mid-enumeration (its
// stream aborts past 4KB, then the node answers only 503) and checks the
// merged stream still completes with the exact answer set: the
// coordinator resumes the dead worker's remaining range from its last
// marker on the survivors.
func TestClusterWorkerKillMidStream(t *testing.T) {
	rels := clusterRelations(600, 20, 5)
	mw, killed := killAfter(4 << 10)
	tc := bootCluster(t, 3,
		cluster.Config{MarkerEvery: 8, Backoff: 2 * time.Millisecond, StallTimeout: 5 * time.Second},
		map[int]middleware{0: mw})
	tc.putDataset(t, "join", rels)

	got, trailer := tc.queryAnswers(t, "join", fullJoin)
	diffMultisets(t, got, referenceAnswers(t, fullJoin, rels))
	if trailer == nil {
		t.Fatal("no trailer after worker kill")
	}
	if !killed.Load() {
		t.Fatal("the kill middleware never triggered — the test exercised nothing")
	}
	tot := tc.coord.Cluster().Totals()
	if tot.ScatterRetries < 1 {
		t.Errorf("retries = %d, want ≥ 1 after a worker kill", tot.ScatterRetries)
	}
}

// slowWriter delays every scatter write, making one worker a straggler.
func slowWriter(delay time.Duration) middleware {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if !strings.HasSuffix(r.URL.Path, "/scatter") {
				next.ServeHTTP(w, r)
				return
			}
			next.ServeHTTP(&sleepyWriter{ResponseWriter: w, delay: delay}, r)
		})
	}
}

type sleepyWriter struct {
	http.ResponseWriter
	delay time.Duration
}

func (sw *sleepyWriter) Write(p []byte) (int, error) {
	time.Sleep(sw.delay)
	return sw.ResponseWriter.Write(p)
}

func (sw *sleepyWriter) Flush() {
	if f, ok := sw.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// TestClusterStragglerResplit makes one worker pathologically slow and
// checks that idle peers steal the remainder of its range at a marker
// boundary (a re-split), the distributed mirror of internal/exec's
// steal/split, without disturbing the answer set.
func TestClusterStragglerResplit(t *testing.T) {
	rels := clusterRelations(600, 20, 5)
	tc := bootCluster(t, 3,
		cluster.Config{MarkerEvery: 8, StallTimeout: 30 * time.Second},
		map[int]middleware{0: slowWriter(time.Millisecond)})
	tc.putDataset(t, "join", rels)

	got, _ := tc.queryAnswers(t, "join", fullJoin)
	diffMultisets(t, got, referenceAnswers(t, fullJoin, rels))
	tot := tc.coord.Cluster().Totals()
	if tot.ScatterResplits < 1 {
		t.Errorf("resplits = %d, want ≥ 1 with a straggling worker", tot.ScatterResplits)
	}
}

// hangAfter freezes a worker's scatter streams (no bytes, no close) once
// it has written limit bytes across all calls — the budget is cumulative,
// so a re-issued call cannot reset it — blocking until the client hangs
// up. Only the stall deadline can unstick the coordinator's fetcher.
func hangAfter(limit int) middleware {
	var written atomic.Int64
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if !strings.HasSuffix(r.URL.Path, "/scatter") {
				next.ServeHTTP(w, r)
				return
			}
			next.ServeHTTP(&frozenWriter{ResponseWriter: w, written: &written, limit: int64(limit), ctx: r.Context()}, r)
		})
	}
}

type frozenWriter struct {
	http.ResponseWriter
	written *atomic.Int64
	limit   int64
	ctx     context.Context
}

func (fw *frozenWriter) Write(p []byte) (int, error) {
	if fw.written.Load() > fw.limit {
		<-fw.ctx.Done()
		return 0, fw.ctx.Err()
	}
	fw.written.Add(int64(len(p)))
	return fw.ResponseWriter.Write(p)
}

func (fw *frozenWriter) Flush() {
	if f, ok := fw.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// TestClusterStallDeadline freezes one worker mid-stream: the per-worker
// stall deadline must cancel its call and fail the remaining range over
// to the healthy workers, exactly — a frozen worker is indistinguishable
// from a dead one except that only the deadline can unstick it.
func TestClusterStallDeadline(t *testing.T) {
	rels := clusterRelations(600, 20, 5)
	tc := bootCluster(t, 3,
		cluster.Config{MarkerEvery: 8, StallTimeout: 250 * time.Millisecond, Backoff: 2 * time.Millisecond},
		map[int]middleware{0: hangAfter(2 << 10)})
	tc.putDataset(t, "join", rels)

	start := time.Now()
	got, trailer := tc.queryAnswers(t, "join", fullJoin)
	diffMultisets(t, got, referenceAnswers(t, fullJoin, rels))
	if trailer == nil {
		t.Fatal("no trailer after stall failover")
	}
	tot := tc.coord.Cluster().Totals()
	if tot.ScatterRetries < 1 {
		t.Errorf("retries = %d, want ≥ 1 after a stall", tot.ScatterRetries)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Errorf("stall failover took %s", elapsed)
	}
}

// TestClusterStatsAggregation covers the /stats bugfix: the coordinator's
// own process-local counters (delay window, decision_modes) must not
// masquerade as cluster truth — worker snapshots are namespaced per
// worker and the cross-worker totals are explicit.
func TestClusterStatsAggregation(t *testing.T) {
	rels := clusterRelations(120, 10, 3)
	tc := bootCluster(t, 3, cluster.Config{MarkerEvery: 8}, nil)
	tc.putDataset(t, "join", rels)
	got, _ := tc.queryAnswers(t, "join", fullJoin)

	resp, err := http.Get(tc.coordURL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap struct {
		AnswersStreamed int64            `json:"answers_streamed"`
		DecisionModes   map[string]int64 `json:"decision_modes"`
		ScatterRequests int64            `json:"scatter_requests"`
		Cluster         *struct {
			Workers                    []string                   `json:"workers"`
			Scatter                    cluster.Totals             `json:"scatter"`
			WorkerAnswersStreamedTotal int64                      `json:"worker_answers_streamed_total"`
			WorkerDecisionModesTotal   map[string]int64           `json:"worker_decision_modes_total"`
			WorkerStats                map[string]json.RawMessage `json:"worker_stats"`
			WorkerErrors               map[string]string          `json:"worker_errors"`
		} `json:"cluster"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Cluster == nil {
		t.Fatal("no cluster section on the coordinator's /stats")
	}
	if len(snap.Cluster.Workers) != 3 || len(snap.Cluster.WorkerStats) != 3 || len(snap.Cluster.WorkerErrors) != 0 {
		t.Fatalf("cluster section = %d workers, %d snapshots, errors %v",
			len(snap.Cluster.Workers), len(snap.Cluster.WorkerStats), snap.Cluster.WorkerErrors)
	}
	if snap.Cluster.Scatter.ScatterQueries != 1 {
		t.Errorf("scatter totals = %+v", snap.Cluster.Scatter)
	}
	// The coordinator process enumerated nothing locally; the workers did
	// all of it. Namespacing keeps the two readings distinct instead of
	// conflating them into one misleading number.
	var total int
	for _, n := range got {
		total += n
	}
	if snap.ScatterRequests != 0 {
		t.Errorf("coordinator scatter_requests = %d (it serves none itself)", snap.ScatterRequests)
	}
	if snap.Cluster.WorkerAnswersStreamedTotal < int64(total) {
		t.Errorf("worker answers total = %d, want ≥ %d",
			snap.Cluster.WorkerAnswersStreamedTotal, total)
	}
	if snap.AnswersStreamed != int64(total) {
		t.Errorf("coordinator answers_streamed = %d, want %d (the merged stream)", snap.AnswersStreamed, total)
	}
	// Worker snapshots are full server snapshots, individually addressable.
	for w, raw := range snap.Cluster.WorkerStats {
		var ws struct {
			ScatterRequests int64 `json:"scatter_requests"`
		}
		if err := json.Unmarshal(raw, &ws); err != nil {
			t.Fatalf("worker %s snapshot: %v", w, err)
		}
		if ws.ScatterRequests < 1 {
			t.Errorf("worker %s served %d scatter calls, want ≥ 1", w, ws.ScatterRequests)
		}
	}
}

// TestClusterDatasetLifecycle walks the registry: list, get, drop, and
// the 404s around them.
func TestClusterDatasetLifecycle(t *testing.T) {
	tc := bootCluster(t, 2, cluster.Config{}, nil)
	tc.putDataset(t, "join", clusterRelations(12, 3, 2))

	resp, err := http.Get(tc.coordURL + "/datasets")
	if err != nil {
		t.Fatal(err)
	}
	var list struct {
		Datasets []struct {
			Name string `json:"name"`
			Rows int    `json:"rows"`
		} `json:"datasets"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(list.Datasets) != 1 || list.Datasets[0].Name != "join" {
		t.Fatalf("list = %+v", list)
	}

	// Count proxies to one worker; the replica count is the cluster count.
	body, _ := json.Marshal(map[string]any{"query": fullJoin})
	resp, err = http.Post(tc.coordURL+"/datasets/join/count", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var cr struct {
		Count int64 `json:"count"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&cr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if cr.Count != 12*2 {
		t.Errorf("count = %d", cr.Count)
	}

	req, _ := http.NewRequest(http.MethodDelete, tc.coordURL+"/datasets/join", nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete status = %d", resp.StatusCode)
	}

	// Gone everywhere: the coordinator 404s, and so does each worker.
	qbody, _ := json.Marshal(map[string]any{"query": fullJoin})
	resp, err = http.Post(tc.coordURL+"/datasets/join/query", "application/json", bytes.NewReader(qbody))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("query after drop = %d", resp.StatusCode)
	}
	for _, w := range tc.workers {
		resp, err := http.Get(w + "/datasets/join")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("worker %s still has the dataset: %d", w, resp.StatusCode)
		}
	}
}
