package cluster_test

// Coordinator-side leak regression: every scatter attempt — probes,
// completed streams, aborted streams, 503s — must close its response body
// before the per-range retry loop moves on. Everything here runs
// in-process (client transport and worker servers alike), so a body leaked
// on the retry path pins its connection's goroutines on both ends and the
// process goroutine count gives it away.

import (
	"net/http"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cluster"
)

// abortEveryOther hard-aborts every other scatter stream once it has
// written more than limit bytes (panic(http.ErrAbortHandler) severs the
// connection mid-body, the shape of a worker crash), and serves the rest
// cleanly — so every query forces retries without ever exhausting the
// retry budget. Probes stay under the limit and always survive.
func abortEveryOther(limit int) middleware {
	var calls atomic.Int64
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if !strings.HasSuffix(r.URL.Path, "/scatter") {
				next.ServeHTTP(w, r)
				return
			}
			if calls.Add(1)%2 == 1 {
				var killed atomic.Bool
				next.ServeHTTP(&abortWriter{ResponseWriter: w, limit: limit, killed: &killed}, r)
				return
			}
			next.ServeHTTP(w, r)
		})
	}
}

// TestCoordinatorScatterRetryLeak hammers the scatter/gather retry path —
// dozens of queries, each losing worker 0 mid-stream and re-issuing the
// remaining range — and checks the goroutine count settles back to the
// post-warmup baseline. A response body left open on any per-attempt path
// (aborted stream, failed probe, non-200 retry) keeps its connection's
// read/write loops alive and fails the settle.
func TestCoordinatorScatterRetryLeak(t *testing.T) {
	rels := clusterRelations(300, 10, 4)
	tc := bootCluster(t, 3,
		cluster.Config{MarkerEvery: 8, Backoff: time.Millisecond, StallTimeout: 5 * time.Second},
		// The abort threshold is sized for the binary encoding: compact
		// enough that a whole range can fit in a kilobyte, so the killer
		// must trip earlier to keep forcing retries.
		map[int]middleware{0: abortEveryOther(1 << 7)})
	tc.putDataset(t, "join", rels)
	want := referenceAnswers(t, fullJoin, rels)

	// Warm-up: let the transport dial its pool and the servers spin up
	// their per-connection goroutines before taking the baseline.
	tc.queryAnswers(t, "join", fullJoin)
	baseline := runtime.NumGoroutine()

	for i := 0; i < 25; i++ {
		got, trailer := tc.queryAnswers(t, "join", fullJoin)
		if trailer == nil {
			t.Fatalf("query %d: no trailer", i)
		}
		diffMultisets(t, got, want)
	}
	tot := tc.coord.Cluster().Totals()
	if tot.ScatterRetries < 10 {
		t.Fatalf("retries = %d, want ≥ 10 — the flaky worker forced nothing and the test exercised no retry teardown", tot.ScatterRetries)
	}

	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.Gosched()
		if n := runtime.NumGoroutine(); n <= baseline+10 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("retried scatters leaked goroutines (likely unclosed response bodies): %d now vs %d after warmup",
				runtime.NumGoroutine(), baseline)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
