//go:build !unix

package cluster

import "syscall"

// pinSocketBuffers is a no-op where the portable syscall surface lacks
// SetsockoptInt; the scatter transport works unpinned, subject to the
// platform's buffer autotuning.
func pinSocketBuffers(network, address string, c syscall.RawConn) error {
	return nil
}
