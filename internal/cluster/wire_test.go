package cluster

import (
	"strings"
	"testing"
)

func TestScatterRequestValidate(t *testing.T) {
	valid := ScatterRequest{Query: "Q(x) <- R(x).", RootLo: 0, RootHi: -1}
	if err := valid.Validate(); err != nil {
		t.Fatalf("valid request rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(r *ScatterRequest)
		want string
	}{
		{"no query", func(r *ScatterRequest) { r.Query = "" }, "no query"},
		{"bad mode", func(r *ScatterRequest) { r.Mode = "turbo" }, "mode"},
		{"negative lo", func(r *ScatterRequest) { r.RootLo = -1 }, "root_lo"},
		{"hi below -1", func(r *ScatterRequest) { r.RootHi = -2 }, "root_hi"},
		{"inverted range", func(r *ScatterRequest) { r.RootLo, r.RootHi = 5, 3 }, "empty-inverted"},
		{"negative marker", func(r *ScatterRequest) { r.MarkerEvery = -1 }, "marker_every"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := valid
			tc.mut(&r)
			err := r.Validate()
			if err == nil {
				t.Fatalf("%+v validated", r)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
	for _, mode := range []string{"", "auto", "naive"} {
		r := valid
		r.Mode = mode
		if err := r.Validate(); err != nil {
			t.Errorf("mode %q rejected: %v", mode, err)
		}
	}
}

func TestScatterRequestRoundTrip(t *testing.T) {
	reqs := []ScatterRequest{
		{Query: "Q(x) <- R(x).", RootHi: -1},
		{Query: "Q(x,y) <- R(x,z), S(z,y).", Mode: "naive", RootLo: 3, RootHi: 17, MarkerEvery: 8, Version: 42, Probe: true},
		{Query: "Q(x) <- R(x).", RootLo: 0, RootHi: 0},
	}
	for _, req := range reqs {
		got, err := DecodeScatterRequest(req.Encode())
		if err != nil {
			t.Fatalf("round trip of %+v: %v", req, err)
		}
		if *got != req {
			t.Errorf("round trip of %+v gave %+v", req, *got)
		}
	}
}

func TestDecodeScatterRequestRejectsMalformed(t *testing.T) {
	for _, bad := range []string{
		``,
		`not json`,
		`{"query":"Q(x) <- R(x).","root_lo":-3}`,
		`{"root_lo":0,"root_hi":-1}`,
		`[1,2,3]`,
	} {
		if req, err := DecodeScatterRequest([]byte(bad)); err == nil {
			t.Errorf("decoded %q into %+v", bad, req)
		}
	}
}

// FuzzScatterRequest fuzzes the coordinator→worker request codec: any
// input must either be rejected with an error or decode into a request
// that validates and survives an encode/decode round trip unchanged.
func FuzzScatterRequest(f *testing.F) {
	f.Add([]byte(`{"query":"Q(x) <- R(x).","root_lo":0,"root_hi":-1}`))
	f.Add([]byte(`{"query":"Q(x,y) <- R(x,z), S(z,y).","mode":"naive","root_lo":3,"root_hi":17,"marker_every":8,"version":42,"probe":true}`))
	f.Add([]byte(`{"query":"","root_lo":-1,"root_hi":-2}`))
	f.Add([]byte(`{"query":"Q(x) <- R(x).","root_lo":9007199254740993,"root_hi":-1,"version":18446744073709551615}`))
	f.Add([]byte(`not json at all`))
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := DecodeScatterRequest(data)
		if err != nil {
			return
		}
		if err := req.Validate(); err != nil {
			t.Fatalf("decoded request fails its own validation: %v", err)
		}
		rt, err := DecodeScatterRequest(req.Encode())
		if err != nil {
			t.Fatalf("re-decoding %+v: %v", req, err)
		}
		if *rt != *req {
			t.Fatalf("round trip changed the request: %+v -> %+v", req, rt)
		}
	})
}
