package cq

import (
	"strings"
	"testing"
)

func TestVarSetOps(t *testing.T) {
	s := NewVarSet("x", "y")
	u := NewVarSet("y", "z")
	if !s.Contains("x") || s.Contains("z") {
		t.Fatalf("contains broken")
	}
	if got := s.Union(u); !got.Equal(NewVarSet("x", "y", "z")) {
		t.Errorf("union = %v", got)
	}
	if got := s.Intersect(u); !got.Equal(NewVarSet("y")) {
		t.Errorf("intersect = %v", got)
	}
	if got := s.Minus(u); !got.Equal(NewVarSet("x")) {
		t.Errorf("minus = %v", got)
	}
	if s.Equal(u) {
		t.Errorf("unequal sets reported equal")
	}
	if got := NewVarSet("b", "a", "c").String(); got != "{a,b,c}" {
		t.Errorf("String = %q", got)
	}
	c := s.Clone()
	c.Add("w")
	if s.Contains("w") {
		t.Errorf("clone aliases original")
	}
}

func TestVarSetSortedAndContainsAll(t *testing.T) {
	s := NewVarSet("c", "a", "b")
	got := s.Sorted()
	want := []Variable{"a", "b", "c"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sorted = %v", got)
		}
	}
	if !s.ContainsAll(NewVarSet("a", "b")) {
		t.Errorf("ContainsAll subset failed")
	}
	if s.ContainsAll(NewVarSet("a", "z")) {
		t.Errorf("ContainsAll superset passed")
	}
}

func TestAtomBasics(t *testing.T) {
	a := Atom{Rel: "R", Vars: []Variable{"x", "y", "x"}}
	if a.Arity() != 3 {
		t.Errorf("arity = %d", a.Arity())
	}
	if !a.VarSet().Equal(NewVarSet("x", "y")) {
		t.Errorf("varset = %v", a.VarSet())
	}
	if !a.HasVar("x") || a.HasVar("z") {
		t.Errorf("HasVar broken")
	}
	if a.String() != "R(x,y,x)" {
		t.Errorf("String = %q", a.String())
	}
	b := a.Clone()
	b.Vars[0] = "z"
	if a.Vars[0] != "x" {
		t.Errorf("clone aliases original")
	}
	if !a.Equal(a.Clone()) {
		t.Errorf("Equal(clone) = false")
	}
	if a.Equal(Atom{Rel: "R", Vars: []Variable{"x", "y"}}) {
		t.Errorf("Equal ignored arity")
	}
	if a.Equal(Atom{Rel: "R", Vars: []Variable{"x", "y", "x"}, Virtual: true}) {
		t.Errorf("Equal ignored virtual flag")
	}
}

func TestCQAccessors(t *testing.T) {
	q := MustParseCQ("Q(x,y) <- R(x,z), S(z,y).")
	if !q.Free().Equal(NewVarSet("x", "y")) {
		t.Errorf("free = %v", q.Free())
	}
	if !q.Vars().Equal(NewVarSet("x", "y", "z")) {
		t.Errorf("vars = %v", q.Vars())
	}
	if !q.ExistentialVars().Equal(NewVarSet("z")) {
		t.Errorf("existential = %v", q.ExistentialVars())
	}
	if q.IsBoolean() || q.IsFull() {
		t.Errorf("boolean/full flags wrong")
	}
	if !q.SelfJoinFree() {
		t.Errorf("self-join free query misreported")
	}
	if got := q.AtomsWith("z"); len(got) != 2 {
		t.Errorf("AtomsWith(z) = %v", got)
	}
	if !q.Neighbors("x", "z") || q.Neighbors("x", "y") {
		t.Errorf("Neighbors wrong")
	}
}

func TestCQSelfJoin(t *testing.T) {
	q := MustParseCQ("Q(x) <- R(x,y), R(y,x).")
	if q.SelfJoinFree() {
		t.Errorf("self-join not detected")
	}
}

func TestCQFullAndBoolean(t *testing.T) {
	full := MustParseCQ("Q(x,y) <- R(x,y).")
	if !full.IsFull() {
		t.Errorf("full query not detected")
	}
	boolean := MustParseCQ("Q() <- R(x,y).")
	if !boolean.IsBoolean() {
		t.Errorf("boolean query not detected")
	}
}

func TestRenameAndClone(t *testing.T) {
	q := MustParseCQ("Q(x,y) <- R(x,z), S(z,y).")
	h := Substitution{"x": "a", "z": "c"}
	r := q.Rename(h)
	if r.String() != "Q(a,y) <- R(a,c), S(c,y)" {
		t.Errorf("rename = %q", r.String())
	}
	// Original untouched.
	if q.String() != "Q(x,y) <- R(x,z), S(z,y)" {
		t.Errorf("rename mutated original: %q", q.String())
	}
}

func TestSubstitutionCompose(t *testing.T) {
	h := Substitution{"x": "y"}
	g := Substitution{"y": "z", "w": "u"}
	c := h.Compose(g)
	if c.Apply("x") != "z" || c.Apply("w") != "u" || c.Apply("q") != "q" {
		t.Errorf("compose = %v", c)
	}
	if got := c.ApplySet(NewVarSet("x", "w")); !got.Equal(NewVarSet("z", "u")) {
		t.Errorf("ApplySet = %v", got)
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []struct {
		name string
		q    *CQ
		want string
	}{
		{"empty name", &CQ{Name: "", Head: nil, Atoms: []Atom{{Rel: "R", Vars: []Variable{"x"}}}}, "empty name"},
		{"empty body", &CQ{Name: "Q"}, "empty body"},
		{"head not in body", &CQ{Name: "Q", Head: []Variable{"y"}, Atoms: []Atom{{Rel: "R", Vars: []Variable{"x"}}}}, "does not occur"},
		{"empty rel", &CQ{Name: "Q", Atoms: []Atom{{Rel: "", Vars: []Variable{"x"}}}}, "empty relation"},
		{"no args", &CQ{Name: "Q", Atoms: []Atom{{Rel: "R"}}}, "no arguments"},
		{"empty var", &CQ{Name: "Q", Atoms: []Atom{{Rel: "R", Vars: []Variable{""}}}}, "empty variable"},
	}
	for _, tc := range cases {
		err := tc.q.Validate()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want contains %q", tc.name, err, tc.want)
		}
	}
}

func TestUCQValidate(t *testing.T) {
	if _, err := NewUCQ(); err == nil {
		t.Errorf("empty UCQ accepted")
	}
	q1 := MustParseCQ("Q1(x,y) <- R(x,y).")
	q2 := MustParseCQ("Q2(x) <- R(x,x).")
	if _, err := NewUCQ(q1, q2); err == nil || !strings.Contains(err.Error(), "arity mismatch") {
		t.Errorf("head arity mismatch not caught: %v", err)
	}
	q3 := MustParseCQ("Q3(x,y) <- R(x,y,y).")
	if _, err := NewUCQ(q1, q3); err == nil || !strings.Contains(err.Error(), "arities") {
		t.Errorf("relation arity mismatch not caught: %v", err)
	}
	if _, err := NewUCQ(q1, nil); err == nil {
		t.Errorf("nil CQ accepted")
	}
}

func TestUCQSchema(t *testing.T) {
	u := MustParse(`
		Q1(x,y) <- R(x,z), S(z,y).
		Q2(x,y) <- R(x,y), T(y).
	`)
	decls := u.Schema()
	want := []RelDecl{{"R", 2}, {"S", 2}, {"T", 1}}
	if len(decls) != len(want) {
		t.Fatalf("schema = %v", decls)
	}
	for i := range want {
		if decls[i] != want[i] {
			t.Errorf("schema[%d] = %v, want %v", i, decls[i], want[i])
		}
	}
	if u.Arity() != 2 {
		t.Errorf("arity = %d", u.Arity())
	}
	if !u.SelfJoinFree() {
		t.Errorf("self-join-free union misreported")
	}
}

func TestUCQClone(t *testing.T) {
	u := MustParse("Q(x,y) <- R(x,y).")
	c := u.Clone()
	c.CQs[0].Atoms[0].Vars[0] = "w"
	if u.CQs[0].Atoms[0].Vars[0] != "x" {
		t.Errorf("clone aliases original")
	}
}

func TestParseRoundTrip(t *testing.T) {
	srcs := []string{
		"Q(x,y) <- R(x,z), S(z,y)",
		"Q1(x,y,w) <- R1(x,z), R2(z,y), R3(y,w)\nQ2(x,y,w) <- R1(x,y), R2(y,w)",
		"Q() <- R(x,y)",
	}
	for _, src := range srcs {
		u := MustParse(src)
		re := MustParse(u.String())
		if re.String() != u.String() {
			t.Errorf("round trip: %q -> %q", u.String(), re.String())
		}
	}
}

func TestParseSyntaxVariants(t *testing.T) {
	variants := []string{
		"Q(x,y) <- R(x,y).",
		"Q(x,y) :- R(x,y).",
		"Q(x, y) <- R(x , y)",
		"# leading comment\nQ(x,y) <- R(x,y). % trailing\n",
		"// comment\nQ(x,y) <- R(x,y)",
	}
	for _, src := range variants {
		u, err := Parse(src)
		if err != nil {
			t.Errorf("parse %q: %v", src, err)
			continue
		}
		if got := u.CQs[0].String(); got != "Q(x,y) <- R(x,y)" {
			t.Errorf("parse %q = %q", src, got)
		}
	}
}

func TestParseMultipleRulesWithoutPeriods(t *testing.T) {
	u := MustParse(`
		Q1(x,y) <- R1(x,z), R2(z,y)
		Q2(x,y) <- R1(x,y), R2(y,y)
	`)
	if len(u.CQs) != 2 {
		t.Fatalf("got %d rules", len(u.CQs))
	}
	if u.CQs[1].Name != "Q2" {
		t.Errorf("second rule = %q", u.CQs[1].Name)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"Q(x,y)",
		"Q(x,y) <-",
		"Q(x,y) <- R()",
		"Q(x,y) <- R(x,",
		"Q(x,y R(x,y)",
		"Q(x,y) = R(x,y)",
		"Q(x,y) <- R(x,y) &",
		"1Q(x) <- R(x)",
		"Q(x,y) <- R(x,z)", // head var y not in body
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("parse %q succeeded, want error", src)
		}
	}
}

func TestParseCQRejectsUnions(t *testing.T) {
	if _, err := ParseCQ("Q(x) <- R(x). Q(x) <- S(x)."); err == nil {
		t.Errorf("ParseCQ accepted two rules")
	}
}

func TestOriginalAndVirtualAtoms(t *testing.T) {
	q := MustParseCQ("Q(x,y) <- R(x,z), S(z,y).")
	q.Atoms = append(q.Atoms, Atom{Rel: "P0", Vars: []Variable{"x", "z"}, Virtual: true})
	if n := len(q.OriginalAtoms()); n != 2 {
		t.Errorf("original atoms = %d", n)
	}
	if n := len(q.VirtualAtoms()); n != 1 {
		t.Errorf("virtual atoms = %d", n)
	}
}

func TestMustHelpersPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Errorf("MustParse did not panic on bad input")
		}
	}()
	MustParse("garbage(")
}
