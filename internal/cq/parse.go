package cq

import (
	"fmt"
	"strings"
	"unicode"
)

// Parse reads a UCQ in datalog-style concrete syntax. Each rule has the form
//
//	Q(x, y) <- R(x, z), S(z, y).
//
// with `:-` accepted as a synonym for `<-` and the trailing period optional.
// Line comments start with `#`, `//` or `%`. Rules may share a head name or
// use distinct names; all heads must have the same arity. Boolean rules are
// written with an empty head: `Q() <- R(x)`.
func Parse(src string) (*UCQ, error) {
	p := &parser{src: src, line: 1}
	var cqs []*CQ
	for {
		p.skipSpace()
		if p.eof() {
			break
		}
		q, err := p.rule()
		if err != nil {
			return nil, err
		}
		cqs = append(cqs, q)
	}
	if len(cqs) == 0 {
		return nil, fmt.Errorf("cq: no rules in input")
	}
	return NewUCQ(cqs...)
}

// ParseCQ parses a single rule and returns it as a CQ. It is an error for
// the input to contain more than one rule.
func ParseCQ(src string) (*CQ, error) {
	u, err := Parse(src)
	if err != nil {
		return nil, err
	}
	if len(u.CQs) != 1 {
		return nil, fmt.Errorf("cq: expected a single rule, got %d", len(u.CQs))
	}
	return u.CQs[0], nil
}

// MustParse is Parse panicking on error; for tests and statically-known
// query literals.
func MustParse(src string) *UCQ {
	u, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return u
}

// MustParseCQ is ParseCQ panicking on error.
func MustParseCQ(src string) *CQ {
	q, err := ParseCQ(src)
	if err != nil {
		panic(err)
	}
	return q
}

type parser struct {
	src  string
	pos  int
	line int
}

func (p *parser) eof() bool { return p.pos >= len(p.src) }

func (p *parser) peek() byte {
	if p.eof() {
		return 0
	}
	return p.src[p.pos]
}

func (p *parser) advance() byte {
	c := p.src[p.pos]
	p.pos++
	if c == '\n' {
		p.line++
	}
	return c
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("cq: line %d: %s", p.line, fmt.Sprintf(format, args...))
}

func (p *parser) skipSpace() {
	for !p.eof() {
		c := p.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			p.advance()
		case c == '#' || c == '%':
			p.skipLine()
		case c == '/' && p.pos+1 < len(p.src) && p.src[p.pos+1] == '/':
			p.skipLine()
		default:
			return
		}
	}
}

func (p *parser) skipLine() {
	for !p.eof() && p.peek() != '\n' {
		p.advance()
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c))
}

func isIdentPart(c byte) bool {
	return c == '_' || c == '\'' || unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c))
}

func (p *parser) ident() (string, error) {
	p.skipSpace()
	if p.eof() || !isIdentStart(p.peek()) {
		return "", p.errf("expected identifier, found %q", string(p.peek()))
	}
	start := p.pos
	for !p.eof() && isIdentPart(p.peek()) {
		p.advance()
	}
	return p.src[start:p.pos], nil
}

func (p *parser) expect(tok string) error {
	p.skipSpace()
	if !strings.HasPrefix(p.src[p.pos:], tok) {
		end := p.pos + 8
		if end > len(p.src) {
			end = len(p.src)
		}
		return p.errf("expected %q, found %q", tok, p.src[p.pos:end])
	}
	for range tok {
		p.advance()
	}
	return nil
}

func (p *parser) varList(close byte) ([]Variable, error) {
	var vars []Variable
	p.skipSpace()
	if p.peek() == close {
		p.advance()
		return vars, nil
	}
	for {
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		vars = append(vars, Variable(name))
		p.skipSpace()
		switch p.peek() {
		case ',':
			p.advance()
		case close:
			p.advance()
			return vars, nil
		default:
			return nil, p.errf("expected ',' or '%c' in argument list, found %q", close, string(p.peek()))
		}
	}
}

func (p *parser) rule() (*CQ, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expect("("); err != nil {
		return nil, err
	}
	head, err := p.varList(')')
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if strings.HasPrefix(p.src[p.pos:], "<-") {
		p.pos += 2
	} else if strings.HasPrefix(p.src[p.pos:], ":-") {
		p.pos += 2
	} else {
		return nil, p.errf("expected '<-' or ':-' after head of %s", name)
	}
	var atoms []Atom
	for {
		rel, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expect("("); err != nil {
			return nil, err
		}
		args, err := p.varList(')')
		if err != nil {
			return nil, err
		}
		if len(args) == 0 {
			return nil, p.errf("atom %s has no arguments", rel)
		}
		atoms = append(atoms, Atom{Rel: rel, Vars: args})
		p.skipSpace()
		switch {
		case p.peek() == ',':
			p.advance()
		case p.peek() == '.':
			p.advance()
			return NewCQ(name, head, atoms)
		case p.eof() || isIdentStart(p.peek()):
			// End of rule without a period: next token starts a new rule
			// (or input ends).
			return NewCQ(name, head, atoms)
		default:
			return nil, p.errf("unexpected %q after atom", string(p.peek()))
		}
	}
}
