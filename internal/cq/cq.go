// Package cq defines the abstract syntax of conjunctive queries (CQs) and
// unions of conjunctive queries (UCQs) exactly as used in Carmeli & Kröll,
// "On the Enumeration Complexity of Unions of Conjunctive Queries" (PODS'19).
//
// A CQ is an expression
//
//	Q(p⃗) ← R1(v⃗1), ..., Rm(v⃗m)
//
// over a relational schema, where every head variable occurs in the body. A
// UCQ is a finite set of CQs whose heads have the same arity; its answers are
// the union of the answers of its members, read positionally from the heads.
//
// The package provides construction, validation, canonical printing, and a
// small datalog-style parser. Hypergraph structure, homomorphisms and
// evaluation live in sibling packages.
package cq

import (
	"fmt"
	"sort"
	"strings"
)

// Variable is a query variable. Variables are compared by name; the empty
// string is not a valid variable.
type Variable string

// VarSet is a set of variables.
type VarSet map[Variable]bool

// NewVarSet builds a set from the given variables.
func NewVarSet(vs ...Variable) VarSet {
	s := make(VarSet, len(vs))
	for _, v := range vs {
		s[v] = true
	}
	return s
}

// Contains reports whether v is in the set.
func (s VarSet) Contains(v Variable) bool { return s[v] }

// ContainsAll reports whether every variable of t is in s.
func (s VarSet) ContainsAll(t VarSet) bool {
	for v := range t {
		if !s[v] {
			return false
		}
	}
	return true
}

// Add inserts v.
func (s VarSet) Add(v Variable) { s[v] = true }

// AddAll inserts every variable of t.
func (s VarSet) AddAll(t VarSet) {
	for v := range t {
		s[v] = true
	}
}

// Union returns a fresh set holding s ∪ t.
func (s VarSet) Union(t VarSet) VarSet {
	u := make(VarSet, len(s)+len(t))
	u.AddAll(s)
	u.AddAll(t)
	return u
}

// Intersect returns a fresh set holding s ∩ t.
func (s VarSet) Intersect(t VarSet) VarSet {
	u := make(VarSet)
	for v := range s {
		if t[v] {
			u[v] = true
		}
	}
	return u
}

// Minus returns a fresh set holding s \ t.
func (s VarSet) Minus(t VarSet) VarSet {
	u := make(VarSet)
	for v := range s {
		if !t[v] {
			u[v] = true
		}
	}
	return u
}

// Equal reports whether s and t hold the same variables.
func (s VarSet) Equal(t VarSet) bool {
	return len(s) == len(t) && s.ContainsAll(t)
}

// Sorted returns the variables in lexicographic order.
func (s VarSet) Sorted() []Variable {
	out := make([]Variable, 0, len(s))
	for v := range s {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Clone returns an independent copy of s.
func (s VarSet) Clone() VarSet {
	u := make(VarSet, len(s))
	u.AddAll(s)
	return u
}

// String renders the set as {a,b,c} in sorted order.
func (s VarSet) String() string {
	vs := s.Sorted()
	parts := make([]string, len(vs))
	for i, v := range vs {
		parts[i] = string(v)
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// Atom is a relational atom R(v1, ..., vk). Virtual atoms introduced by
// union extensions (Definition 10 of the paper) are ordinary Atoms whose
// Virtual flag is set; their relation symbols are fresh by construction.
type Atom struct {
	// Rel is the relation symbol.
	Rel string
	// Vars are the argument variables, in positional order. A variable may
	// repeat within an atom.
	Vars []Variable
	// Virtual marks auxiliary atoms added by union extensions. Virtual
	// atoms are ignored by body-homomorphism search on original bodies and
	// carry relations computed from other CQs' answers.
	Virtual bool
}

// Arity returns the number of argument positions.
func (a Atom) Arity() int { return len(a.Vars) }

// VarSet returns the set of variables occurring in the atom.
func (a Atom) VarSet() VarSet {
	s := make(VarSet, len(a.Vars))
	for _, v := range a.Vars {
		s[v] = true
	}
	return s
}

// HasVar reports whether v occurs in the atom.
func (a Atom) HasVar(v Variable) bool {
	for _, u := range a.Vars {
		if u == v {
			return true
		}
	}
	return false
}

// Equal reports positional equality of two atoms (same symbol, same
// variables in the same order, same virtual flag).
func (a Atom) Equal(b Atom) bool {
	if a.Rel != b.Rel || a.Virtual != b.Virtual || len(a.Vars) != len(b.Vars) {
		return false
	}
	for i := range a.Vars {
		if a.Vars[i] != b.Vars[i] {
			return false
		}
	}
	return true
}

// Clone returns an independent copy of the atom.
func (a Atom) Clone() Atom {
	vars := make([]Variable, len(a.Vars))
	copy(vars, a.Vars)
	return Atom{Rel: a.Rel, Vars: vars, Virtual: a.Virtual}
}

// String renders the atom as R(x,y,z).
func (a Atom) String() string {
	parts := make([]string, len(a.Vars))
	for i, v := range a.Vars {
		parts[i] = string(v)
	}
	return a.Rel + "(" + strings.Join(parts, ",") + ")"
}

// CQ is a conjunctive query Q(p⃗) ← R1(v⃗1), ..., Rm(v⃗m).
type CQ struct {
	// Name is the head predicate name (used for printing and provenance).
	Name string
	// Head lists the free variables in head order. Head variables may
	// repeat; Free() returns the underlying set.
	Head []Variable
	// Atoms is the body. It must be non-empty for a well-formed query.
	Atoms []Atom
}

// NewCQ constructs a CQ and validates it.
func NewCQ(name string, head []Variable, atoms []Atom) (*CQ, error) {
	q := &CQ{Name: name, Head: head, Atoms: atoms}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	return q, nil
}

// MustCQ is NewCQ that panics on invalid input; intended for tests and
// statically-known queries.
func MustCQ(name string, head []Variable, atoms []Atom) *CQ {
	q, err := NewCQ(name, head, atoms)
	if err != nil {
		panic(err)
	}
	return q
}

// Free returns the set of free (head) variables.
func (q *CQ) Free() VarSet {
	s := make(VarSet, len(q.Head))
	for _, v := range q.Head {
		s[v] = true
	}
	return s
}

// Vars returns var(Q): every variable occurring in the body.
func (q *CQ) Vars() VarSet {
	s := make(VarSet)
	for _, a := range q.Atoms {
		for _, v := range a.Vars {
			s[v] = true
		}
	}
	return s
}

// ExistentialVars returns var(Q) \ free(Q).
func (q *CQ) ExistentialVars() VarSet {
	return q.Vars().Minus(q.Free())
}

// IsBoolean reports whether the query has an empty head.
func (q *CQ) IsBoolean() bool { return len(q.Head) == 0 }

// IsFull reports whether every body variable is free.
func (q *CQ) IsFull() bool { return q.Free().Equal(q.Vars()) }

// SelfJoinFree reports whether no relation symbol occurs in two atoms.
// Virtual atoms participate: their symbols are fresh so they never collide.
func (q *CQ) SelfJoinFree() bool {
	seen := make(map[string]bool, len(q.Atoms))
	for _, a := range q.Atoms {
		if seen[a.Rel] {
			return false
		}
		seen[a.Rel] = true
	}
	return true
}

// OriginalAtoms returns the non-virtual atoms of the body.
func (q *CQ) OriginalAtoms() []Atom {
	out := make([]Atom, 0, len(q.Atoms))
	for _, a := range q.Atoms {
		if !a.Virtual {
			out = append(out, a)
		}
	}
	return out
}

// VirtualAtoms returns the virtual atoms of the body.
func (q *CQ) VirtualAtoms() []Atom {
	var out []Atom
	for _, a := range q.Atoms {
		if a.Virtual {
			out = append(out, a)
		}
	}
	return out
}

// AtomsWith returns the indices of atoms containing v.
func (q *CQ) AtomsWith(v Variable) []int {
	var out []int
	for i, a := range q.Atoms {
		if a.HasVar(v) {
			out = append(out, i)
		}
	}
	return out
}

// Neighbors reports whether u and v occur together in some atom. A variable
// is its own neighbor if it occurs in the query.
func (q *CQ) Neighbors(u, v Variable) bool {
	for _, a := range q.Atoms {
		if a.HasVar(u) && a.HasVar(v) {
			return true
		}
	}
	return false
}

// Clone returns a deep copy of the query.
func (q *CQ) Clone() *CQ {
	head := make([]Variable, len(q.Head))
	copy(head, q.Head)
	atoms := make([]Atom, len(q.Atoms))
	for i, a := range q.Atoms {
		atoms[i] = a.Clone()
	}
	return &CQ{Name: q.Name, Head: head, Atoms: atoms}
}

// Substitution maps variables to variables.
type Substitution map[Variable]Variable

// Apply returns h(v), defaulting to v when unmapped.
func (h Substitution) Apply(v Variable) Variable {
	if u, ok := h[v]; ok {
		return u
	}
	return v
}

// ApplyAll maps a slice of variables.
func (h Substitution) ApplyAll(vs []Variable) []Variable {
	out := make([]Variable, len(vs))
	for i, v := range vs {
		out[i] = h.Apply(v)
	}
	return out
}

// ApplySet maps a set of variables.
func (h Substitution) ApplySet(s VarSet) VarSet {
	out := make(VarSet, len(s))
	for v := range s {
		out[h.Apply(v)] = true
	}
	return out
}

// Compose returns the substitution v ↦ g(h(v)) for all v in h's domain and
// g's domain.
func (h Substitution) Compose(g Substitution) Substitution {
	out := make(Substitution, len(h)+len(g))
	for v, u := range h {
		out[v] = g.Apply(u)
	}
	for v, u := range g {
		if _, ok := out[v]; !ok {
			out[v] = u
		}
	}
	return out
}

// Rename applies a variable substitution to the whole query (head and body)
// and returns the renamed copy.
func (q *CQ) Rename(h Substitution) *CQ {
	out := q.Clone()
	for i, v := range out.Head {
		out.Head[i] = h.Apply(v)
	}
	for i := range out.Atoms {
		out.Atoms[i].Vars = h.ApplyAll(out.Atoms[i].Vars)
	}
	return out
}

// Validate checks structural well-formedness: non-empty body, valid names,
// and every head variable occurring in some atom.
func (q *CQ) Validate() error {
	if q.Name == "" {
		return fmt.Errorf("cq: query has empty name")
	}
	if len(q.Atoms) == 0 {
		return fmt.Errorf("cq: query %s has an empty body", q.Name)
	}
	vars := q.Vars()
	for _, v := range q.Head {
		if v == "" {
			return fmt.Errorf("cq: query %s has an empty head variable", q.Name)
		}
		if !vars[v] {
			return fmt.Errorf("cq: head variable %s of %s does not occur in the body", v, q.Name)
		}
	}
	for _, a := range q.Atoms {
		if a.Rel == "" {
			return fmt.Errorf("cq: query %s has an atom with empty relation symbol", q.Name)
		}
		if len(a.Vars) == 0 {
			return fmt.Errorf("cq: atom %s in %s has no arguments", a.Rel, q.Name)
		}
		for _, v := range a.Vars {
			if v == "" {
				return fmt.Errorf("cq: atom %s in %s has an empty variable", a.Rel, q.Name)
			}
		}
	}
	return nil
}

// String renders the query as Q(x,y) <- R(x,z), S(z,y).
func (q *CQ) String() string {
	var b strings.Builder
	b.WriteString(q.Name)
	b.WriteByte('(')
	for i, v := range q.Head {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(string(v))
	}
	b.WriteString(") <- ")
	for i, a := range q.Atoms {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(a.String())
	}
	return b.String()
}

// UCQ is a union of conjunctive queries with positionally-matched heads.
type UCQ struct {
	CQs []*CQ
}

// NewUCQ constructs a UCQ and validates it.
func NewUCQ(cqs ...*CQ) (*UCQ, error) {
	u := &UCQ{CQs: cqs}
	if err := u.Validate(); err != nil {
		return nil, err
	}
	return u, nil
}

// MustUCQ is NewUCQ that panics on invalid input.
func MustUCQ(cqs ...*CQ) *UCQ {
	u, err := NewUCQ(cqs...)
	if err != nil {
		panic(err)
	}
	return u
}

// Arity returns the shared head arity.
func (u *UCQ) Arity() int {
	if len(u.CQs) == 0 {
		return 0
	}
	return len(u.CQs[0].Head)
}

// Validate checks every member CQ and that all heads share one arity and
// that relation symbols have consistent arities across the union (they are
// evaluated over one schema).
func (u *UCQ) Validate() error {
	if len(u.CQs) == 0 {
		return fmt.Errorf("cq: UCQ has no disjuncts")
	}
	arity := len(u.CQs[0].Head)
	relArity := make(map[string]int)
	for _, q := range u.CQs {
		if q == nil {
			return fmt.Errorf("cq: UCQ contains a nil CQ")
		}
		if err := q.Validate(); err != nil {
			return err
		}
		if len(q.Head) != arity {
			return fmt.Errorf("cq: head arity mismatch: %s has %d, %s has %d",
				u.CQs[0].Name, arity, q.Name, len(q.Head))
		}
		for _, a := range q.Atoms {
			if a.Virtual {
				continue
			}
			if prev, ok := relArity[a.Rel]; ok && prev != len(a.Vars) {
				return fmt.Errorf("cq: relation %s used with arities %d and %d", a.Rel, prev, len(a.Vars))
			}
			relArity[a.Rel] = len(a.Vars)
		}
	}
	return nil
}

// SelfJoinFree reports whether every member CQ is self-join free.
func (u *UCQ) SelfJoinFree() bool {
	for _, q := range u.CQs {
		if !q.SelfJoinFree() {
			return false
		}
	}
	return true
}

// Schema returns the relation symbols used by original atoms across the
// union, with their arities, in sorted symbol order.
func (u *UCQ) Schema() []RelDecl {
	arity := make(map[string]int)
	for _, q := range u.CQs {
		for _, a := range q.Atoms {
			if !a.Virtual {
				arity[a.Rel] = len(a.Vars)
			}
		}
	}
	syms := make([]string, 0, len(arity))
	for s := range arity {
		syms = append(syms, s)
	}
	sort.Strings(syms)
	out := make([]RelDecl, len(syms))
	for i, s := range syms {
		out[i] = RelDecl{Name: s, Arity: arity[s]}
	}
	return out
}

// RelDecl is a relation symbol with its arity.
type RelDecl struct {
	Name  string
	Arity int
}

// Clone returns a deep copy of the union.
func (u *UCQ) Clone() *UCQ {
	cqs := make([]*CQ, len(u.CQs))
	for i, q := range u.CQs {
		cqs[i] = q.Clone()
	}
	return &UCQ{CQs: cqs}
}

// String renders the union one rule per line.
func (u *UCQ) String() string {
	parts := make([]string, len(u.CQs))
	for i, q := range u.CQs {
		parts[i] = q.String()
	}
	return strings.Join(parts, "\n")
}
