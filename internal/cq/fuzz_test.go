package cq

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// TestParseNeverPanics feeds random byte soup to the parser: it must
// return a query or an error, never panic.
func TestParseNeverPanics(t *testing.T) {
	alphabet := []byte("Qq(),.<-:_ \n\tRxyzw123%#/")
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		b := make([]byte, int(n))
		for i := range b {
			b[i] = alphabet[rng.Intn(len(alphabet))]
		}
		defer func() {
			if r := recover(); r != nil {
				t.Errorf("parser panicked on %q: %v", b, r)
			}
		}()
		_, _ = Parse(string(b))
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestParseRandomValidQueriesRoundTrip generates random syntactically
// valid rules and checks Parse ∘ String is the identity on rendered form.
func TestParseRandomValidQueriesRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	varNames := []string{"x", "y", "z", "w", "u", "v"}
	for trial := 0; trial < 200; trial++ {
		var b strings.Builder
		nAtoms := 1 + rng.Intn(4)
		used := map[string]bool{}
		var bodyVars []string
		atoms := make([]string, nAtoms)
		for i := range atoms {
			arity := 1 + rng.Intn(3)
			args := make([]string, arity)
			for j := range args {
				v := varNames[rng.Intn(len(varNames))]
				args[j] = v
				if !used[v] {
					used[v] = true
					bodyVars = append(bodyVars, v)
				}
			}
			atoms[i] = "R" + string(rune('0'+i)) + "(" + strings.Join(args, ",") + ")"
		}
		headN := rng.Intn(len(bodyVars) + 1)
		head := make([]string, headN)
		perm := rng.Perm(len(bodyVars))
		for j := 0; j < headN; j++ {
			head[j] = bodyVars[perm[j]]
		}
		b.WriteString("Q(" + strings.Join(head, ",") + ") <- " + strings.Join(atoms, ", "))
		src := b.String()
		u, err := Parse(src)
		if err != nil {
			t.Fatalf("trial %d: parse %q: %v", trial, src, err)
		}
		re, err := Parse(u.String())
		if err != nil {
			t.Fatalf("trial %d: reparse %q: %v", trial, u.String(), err)
		}
		if re.String() != u.String() {
			t.Fatalf("trial %d: round trip %q -> %q", trial, u.String(), re.String())
		}
	}
}
