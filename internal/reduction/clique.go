package reduction

import (
	"repro/internal/cq"
	"repro/internal/database"
	"repro/internal/graph"
)

// --- Example 18: triangle detection through a union of intractable CQs ---

// Example18Query returns the union of Example 18: two cyclic
// body-isomorphic CQs and an acyclic non-free-connex one.
func Example18Query() *cq.UCQ {
	return cq.MustParse(`
		Q1(x,y) <- R1(x,y), R2(y,u), R3(x,u).
		Q2(x,y) <- R1(y,v), R2(v,x), R3(y,x).
		Q3(x,y) <- R1(x,z), R2(y,z).
	`)
}

// Tags used by the Example 18 encoding, following the paper's (·,x), (·,y),
// (·,z) annotation with z playing the role of variable u.
const (
	tagX uint8 = 1
	tagY uint8 = 2
	tagU uint8 = 3
)

// Example18Instance encodes a graph per Example 18: for every edge (u,v)
// with u < v, R1 gains ((u,x),(v,y)), R2 gains ((u,y),(v,u-tag)) and R3
// gains ((u,x),(v,u-tag)). Q1's answers then correspond exactly to
// triangles a < b < c, Q2's to rotations of them, and Q3 returns nothing
// (its join requires a y-tag to meet a u-tag).
func Example18Instance(g *graph.Graph) *database.Instance {
	inst := database.NewInstance()
	r1 := database.NewRelation("R1", 2)
	r2 := database.NewRelation("R2", 2)
	r3 := database.NewRelation("R3", 2)
	for _, e := range g.Edges() {
		u, v := int64(e[0]), int64(e[1])
		r1.Append(database.TaggedValue(u, tagX), database.TaggedValue(v, tagY))
		r2.Append(database.TaggedValue(u, tagY), database.TaggedValue(v, tagU))
		r3.Append(database.TaggedValue(u, tagX), database.TaggedValue(v, tagU))
	}
	inst.AddRelation(r1)
	inst.AddRelation(r2)
	inst.AddRelation(r3)
	return inst
}

// Example18DecodeTriangles extracts from the union's answers the pairs
// (a, b) that extend to a triangle a < b < c (the Q1 answers, identified by
// their (x,y) tag pattern).
func Example18DecodeTriangles(answers *database.Relation) [][2]int {
	var out [][2]int
	for i := 0; i < answers.Len(); i++ {
		t := answers.Row(i)
		if t[0].Tag() == tagX && t[1].Tag() == tagY {
			out = append(out, [2]int{int(t[0].Payload()), int(t[1].Payload())})
		}
	}
	return out
}

// --- Example 22 / Lemma 26: 4-clique through a non-bypass-guarded union ---

// Example22Query returns the union of Example 22 (one body, two heads).
func Example22Query() *cq.UCQ {
	return cq.MustParse(`
		Q1(x,y,t) <- R1(x,w,t), R2(y,w,t).
		Q2(x,y,w) <- R1(x,w,t), R2(y,w,t).
	`)
}

// Example22Instance encodes all ordered triangle triples of g into R1 and
// R2 (R1 = R2 = T, with |T| = 6·#triangles ∈ O(n³)). It also returns the
// triangle count.
func Example22Instance(g *graph.Graph) (*database.Instance, int) {
	tris := g.Triangles()
	r1 := database.NewRelation("R1", 3)
	for _, t := range tris {
		perms := [][3]int{
			{t[0], t[1], t[2]}, {t[0], t[2], t[1]},
			{t[1], t[0], t[2]}, {t[1], t[2], t[0]},
			{t[2], t[0], t[1]}, {t[2], t[1], t[0]},
		}
		for _, p := range perms {
			r1.AppendInts(int64(p[0]), int64(p[1]), int64(p[2]))
		}
	}
	r2 := r1.Clone()
	r2.Name = "R2"
	inst := database.NewInstance()
	inst.AddRelation(r1)
	inst.AddRelation(r2)
	return inst, len(tris)
}

// Example22HasFourClique scans the union's answers for a witness: an
// answer (p, q, ·) with p ≠ q and {p, q} ∈ E certifies a 4-clique (the two
// triangles share the remaining two vertices; see Figure 3).
func Example22HasFourClique(g *graph.Graph, answers *database.Relation) bool {
	for i := 0; i < answers.Len(); i++ {
		t := answers.Row(i)
		p, q := int(t[0].Payload()), int(t[1].Payload())
		if p != q && g.HasEdge(p, q) {
			return true
		}
	}
	return false
}

// --- Example 31 (k = 4): 4-clique through a union-guarded star union ---

// Example31Query returns the k=4 union of Example 31.
func Example31Query() *cq.UCQ {
	return cq.MustParse(`
		Q1(x1,x2,x3) <- R1(x1,z), R2(x2,z), R3(x3,z).
		Q2(x1,x2,z) <- R1(x1,z), R2(x2,z), R3(x3,z).
		Q3(x1,x3,z) <- R1(x1,z), R2(x2,z), R3(x3,z).
		Q4(x2,x3,z) <- R1(x1,z), R2(x2,z), R3(x3,z).
	`)
}

// Tags for Example 31: x1, x2, x3 and the centre z.
const (
	tagX1 uint8 = 11
	tagX2 uint8 = 12
	tagX3 uint8 = 13
	tagZ  uint8 = 14
)

// Example31Instance encodes each edge {u,v} in both directions into R1, R2
// and R3, tagging the first position with the star variable and the second
// with z. Q1's answers are triples with a common neighbour.
func Example31Instance(g *graph.Graph) *database.Instance {
	inst := database.NewInstance()
	rels := []*database.Relation{
		database.NewRelation("R1", 2),
		database.NewRelation("R2", 2),
		database.NewRelation("R3", 2),
	}
	tags := []uint8{tagX1, tagX2, tagX3}
	for _, e := range g.Edges() {
		for _, dir := range [][2]int{{e[0], e[1]}, {e[1], e[0]}} {
			u, v := int64(dir[0]), int64(dir[1])
			for ri, r := range rels {
				r.Append(database.TaggedValue(u, tags[ri]), database.TaggedValue(v, tagZ))
			}
		}
	}
	for _, r := range rels {
		inst.AddRelation(r)
	}
	return inst
}

// Example31HasFourClique scans Q1's answers (tag pattern x1,x2,x3) for a
// pairwise-adjacent triple: together with the shared neighbour z it forms a
// 4-clique.
func Example31HasFourClique(g *graph.Graph, answers *database.Relation) bool {
	for i := 0; i < answers.Len(); i++ {
		t := answers.Row(i)
		if t[0].Tag() != tagX1 || t[1].Tag() != tagX2 || t[2].Tag() != tagX3 {
			continue
		}
		a, b, c := int(t[0].Payload()), int(t[1].Payload()), int(t[2].Payload())
		if a != b && a != c && b != c && g.HasEdge(a, b) && g.HasEdge(a, c) && g.HasEdge(b, c) {
			return true
		}
	}
	return false
}

// --- Example 39 (k = 4): 4-clique despite a provided cycle cover ---

// Example39Query returns the first union of Example 39.
func Example39Query() *cq.UCQ {
	return cq.MustParse(`
		Q1(x2,x3,x4) <- R1(x2,x3,x4), R2(x1,x3,x4), R3(x1,x2,x4).
		Q2(x2,x3,x4) <- R1(x2,x3,x1), R2(x4,x3,v).
	`)
}

// Tags for Example 39's four clique variables.
const (
	tag39X1 uint8 = 21
	tag39X2 uint8 = 22
	tag39X3 uint8 = 23
	tag39X4 uint8 = 24
)

// Example39Instance encodes every triangle {a,b,c} (a < b < c) as
// ((a,x2),(b,x3),(c,x4)) in R1, ((a,x1),(b,x3),(c,x4)) in R2 and
// ((a,x1),(b,x2),(c,x4)) in R3.
func Example39Instance(g *graph.Graph) (*database.Instance, int) {
	tris := g.Triangles()
	r1 := database.NewRelation("R1", 3)
	r2 := database.NewRelation("R2", 3)
	r3 := database.NewRelation("R3", 3)
	for _, t := range tris {
		a, b, c := int64(t[0]), int64(t[1]), int64(t[2])
		r1.Append(database.TaggedValue(a, tag39X2), database.TaggedValue(b, tag39X3), database.TaggedValue(c, tag39X4))
		r2.Append(database.TaggedValue(a, tag39X1), database.TaggedValue(b, tag39X3), database.TaggedValue(c, tag39X4))
		r3.Append(database.TaggedValue(a, tag39X1), database.TaggedValue(b, tag39X2), database.TaggedValue(c, tag39X4))
	}
	inst := database.NewInstance()
	inst.AddRelation(r1)
	inst.AddRelation(r2)
	inst.AddRelation(r3)
	return inst, len(tris)
}

// Example39HasFourClique reports whether Q1 produced an answer (tag
// pattern x2,x3,x4): by the construction this happens iff the graph has a
// 4-clique.
func Example39HasFourClique(answers *database.Relation) bool {
	for i := 0; i < answers.Len(); i++ {
		t := answers.Row(i)
		if t[0].Tag() == tag39X2 && t[1].Tag() == tag39X3 && t[2].Tag() == tag39X4 {
			return true
		}
	}
	return false
}
