package reduction

import (
	"fmt"
	"testing"

	"repro/internal/baseline"
	"repro/internal/classify"
	"repro/internal/cq"
	"repro/internal/graph"
	"repro/internal/hypergraph"
)

func TestExample31QueryKMatchesFixed(t *testing.T) {
	gen := Example31QueryK(4)
	fixed := Example31Query()
	if len(gen.CQs) != len(fixed.CQs) {
		t.Fatalf("k=4 family has %d CQs, fixed has %d", len(gen.CQs), len(fixed.CQs))
	}
	// Same bodies; heads are the four 3-subsets (order of CQs may differ).
	wantHeads := map[string]bool{}
	for _, q := range fixed.CQs {
		wantHeads[q.Free().String()] = true
	}
	for _, q := range gen.CQs {
		if !wantHeads[q.Free().String()] {
			t.Errorf("unexpected head %v", q.Free())
		}
	}
}

func TestExample31FamilyClassification(t *testing.T) {
	for _, k := range []int{4, 5, 6} {
		u := Example31QueryK(k)
		res, err := classify.ClassifyUCQ(u, nil)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		// The general theorems do not decide these unions (union guarded
		// but not isolated): the classifier must say Unknown for every k.
		// (The paper proves k=4 intractable by an ad-hoc reduction and
		// leaves k ≥ 5 open.)
		if res.Verdict != classify.Unknown {
			t.Errorf("k=%d: verdict = %v (%s), want unknown", k, res.Verdict, res.Reason)
		}
	}
}

func TestExample31FamilyGuardStructure(t *testing.T) {
	for _, k := range []int{4, 5} {
		u := Example31QueryK(k)
		rw, ok := classify.RewriteBodyIsomorphic(u)
		if !ok {
			t.Fatalf("k=%d: not body-isomorphic", k)
		}
		// Q1 (the z-free head) has (k-1 choose 2) free-paths (xi, z, xj),
		// all union guarded, none isolated.
		var q1 = -1
		for i, q := range u.CQs {
			if !q.Free().Contains("z") {
				q1 = i
			}
		}
		if q1 < 0 {
			t.Fatalf("k=%d: no z-free head", k)
		}
		paths := rw.FreePathsOf(q1)
		want := (k - 1) * (k - 2) / 2
		if len(paths) != want {
			t.Fatalf("k=%d: %d free-paths, want %d", k, len(paths), want)
		}
		for _, p := range paths {
			if !classify.UnionGuarded(rw, p) {
				t.Errorf("k=%d: path %v not union guarded", k, p)
			}
			if classify.Isolated(rw, q1, p) {
				t.Errorf("k=%d: path %v isolated (they all share z)", k, p)
			}
		}
	}
}

func TestExample39QueryKMatchesFixed(t *testing.T) {
	gen := Example39QueryK(4)
	fixed := Example39Query()
	if gen.CQs[0].String() != fixed.CQs[0].String() {
		t.Errorf("Q1 differs:\n%s\n%s", gen.CQs[0], fixed.CQs[0])
	}
	if gen.CQs[1].String() != fixed.CQs[1].String() {
		t.Errorf("Q2 differs:\n%s\n%s", gen.CQs[1], fixed.CQs[1])
	}
}

func TestExample39FamilyStructure(t *testing.T) {
	for _, k := range []int{4, 5, 6} {
		u := Example39QueryK(k)
		q1, q2 := u.CQs[0], u.CQs[1]
		if classify.ClassifyCQ(q1) != classify.Cyclic {
			t.Errorf("k=%d: Q1 should be cyclic", k)
		}
		if classify.ClassifyCQ(q2) != classify.FreeConnex {
			t.Errorf("k=%d: Q2 should be free-connex", k)
		}
		res, err := classify.ClassifyUCQ(u, nil)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if res.Verdict != classify.Unknown {
			t.Errorf("k=%d: verdict = %v (%s), want unknown", k, res.Verdict, res.Reason)
		}
		// The paper: extending Q1 with the provided atom over
		// {x1,...,x(k-1)} "removes" the cycle but introduces a
		// hyperclique, so the extension stays cyclic.
		provided := make(cq.VarSet)
		for i := 1; i < k; i++ {
			provided[cq.Variable(fmt.Sprintf("x%d", i))] = true
		}
		if hypergraph.FromCQ(q1).WithEdge(provided).IsAcyclic() {
			t.Errorf("k=%d: extension with %v should stay cyclic", k, provided)
		}
	}
}

// bruteKClique checks for a k-clique by exhaustive search (test oracle).
func bruteKClique(g *graph.Graph, k int) bool {
	verts := make([]int, k)
	var rec func(start, depth int) bool
	rec = func(start, depth int) bool {
		if depth == k {
			return true
		}
		for v := start; v < g.N(); v++ {
			ok := true
			for i := 0; i < depth; i++ {
				if !g.HasEdge(verts[i], v) {
					ok = false
					break
				}
			}
			if ok {
				verts[depth] = v
				if rec(v+1, depth+1) {
					return true
				}
			}
		}
		return false
	}
	return rec(0, 0)
}

// TestExample31ReductionK runs the generalized Example 31 reduction at
// k = 4 and k = 5: the decoded verdict must match brute-force k-clique
// detection. (For k ≥ 5 the paper notes the O(n^(k-1)) answer bound no
// longer contradicts the k-clique hypothesis — the reduction still
// computes the right answer, it just proves nothing.)
func TestExample31ReductionK(t *testing.T) {
	for _, k := range []int{4, 5} {
		u := Example31QueryK(k)
		for seed := int64(0); seed < 4; seed++ {
			g := graph.ErdosRenyi(12, 0.4, seed+int64(k)*100)
			if seed%2 == 0 {
				graph.PlantClique(g, k, seed+1)
			}
			inst := Example31InstanceK(g, k)
			answers, err := baseline.EvalUCQ(u, inst)
			if err != nil {
				t.Fatalf("k=%d seed=%d: %v", k, seed, err)
			}
			got := Example31HasKClique(g, answers, k)
			want := bruteKClique(g, k)
			if got != want {
				t.Errorf("k=%d seed=%d: reduction says %v, brute force says %v", k, seed, got, want)
			}
		}
	}
}
