package reduction

import (
	"fmt"

	"repro/internal/cq"
	"repro/internal/database"
	"repro/internal/graph"
)

// Example31QueryK builds the order-k star union of Example 31 (k ≥ 4): the
// body holds atoms Ri(xi, z) for 1 ≤ i ≤ k-1, and there is one CQ per
// (k-1)-subset of {z, x1, ..., x(k-1)} as head. The paper proves the k = 4
// member intractable under 4-clique and leaves k ≥ 5 open: the natural
// reduction solves k-clique in O(n^(k-1)), which does not contradict the
// k-clique hypothesis for larger k.
func Example31QueryK(k int) *cq.UCQ {
	if k < 4 {
		panic("reduction: Example 31 needs k ≥ 4")
	}
	var atoms []cq.Atom
	allVars := []cq.Variable{"z"}
	for i := 1; i < k; i++ {
		x := cq.Variable(fmt.Sprintf("x%d", i))
		allVars = append(allVars, x)
		atoms = append(atoms, cq.Atom{
			Rel:  fmt.Sprintf("R%d", i),
			Vars: []cq.Variable{x, "z"},
		})
	}
	// One CQ per (k-1)-subset of the k variables: drop each variable once.
	var cqs []*cq.CQ
	for drop := range allVars {
		head := make([]cq.Variable, 0, k-1)
		for i, v := range allVars {
			if i != drop {
				head = append(head, v)
			}
		}
		cqs = append(cqs, &cq.CQ{
			Name:  fmt.Sprintf("Q%d", len(cqs)+1),
			Head:  head,
			Atoms: atoms,
		})
	}
	return cq.MustUCQ(cqs...)
}

// Example31InstanceK encodes a graph for the order-k star union: each edge
// {u,v}, in both directions, enters every Ri as (u tagged with xi, v tagged
// with z). Q1's answers are then (k-1)-tuples of vertices sharing a common
// neighbour; checking them pairwise for adjacency decides k-clique in
// O(n^(k-1)) — which, as the paper notes, stops contradicting the k-clique
// hypothesis once k ≥ 5.
func Example31InstanceK(g *graph.Graph, k int) *database.Instance {
	if k < 4 {
		panic("reduction: Example 31 needs k ≥ 4")
	}
	inst := database.NewInstance()
	rels := make([]*database.Relation, k-1)
	for i := range rels {
		rels[i] = database.NewRelation(fmt.Sprintf("R%d", i+1), 2)
	}
	zTag := uint8(100)
	for _, e := range g.Edges() {
		for _, dir := range [][2]int{{e[0], e[1]}, {e[1], e[0]}} {
			u, v := int64(dir[0]), int64(dir[1])
			for ri, r := range rels {
				r.Append(database.TaggedValue(u, uint8(101+ri)), database.TaggedValue(v, zTag))
			}
		}
	}
	for _, r := range rels {
		inst.AddRelation(r)
	}
	return inst
}

// Example31HasKClique scans the z-free CQ's answers (tag pattern
// x1..x(k-1)) for a pairwise-adjacent tuple: together with the common
// neighbour it forms a k-clique.
func Example31HasKClique(g *graph.Graph, answers *database.Relation, k int) bool {
	arity := k - 1
	if answers.Arity() != arity {
		return false
	}
outer:
	for i := 0; i < answers.Len(); i++ {
		t := answers.Row(i)
		verts := make([]int, arity)
		for p := 0; p < arity; p++ {
			if t[p].Tag() != uint8(101+p) {
				continue outer
			}
			verts[p] = int(t[p].Payload())
		}
		ok := true
		for a := 0; a < arity && ok; a++ {
			for b := a + 1; b < arity; b++ {
				if verts[a] == verts[b] || !g.HasEdge(verts[a], verts[b]) {
					ok = false
					break
				}
			}
		}
		if ok {
			return true
		}
	}
	return false
}

// Example39QueryK builds the order-k union of Example 39 (k ≥ 4):
//
//	Q1(x2,...,xk) ← { Ri on {x1..xk} \ {xi} | 1 ≤ i ≤ k-1 }
//	Q2(x2,...,xk) ← R1(x2,...,x(k-1),x1), R2(xk,x3,...,x(k-1),v)
//
// Q1 is cyclic; Q2 is free-connex and provides {x1,...,x(k-1)}, but the
// extension re-introduces a hyperclique. The paper proves k = 4
// intractable under 4-clique and leaves higher orders open.
func Example39QueryK(k int) *cq.UCQ {
	if k < 4 {
		panic("reduction: Example 39 needs k ≥ 4")
	}
	x := func(i int) cq.Variable { return cq.Variable(fmt.Sprintf("x%d", i)) }

	head := make([]cq.Variable, 0, k-1)
	for i := 2; i <= k; i++ {
		head = append(head, x(i))
	}

	// Q1: atom Ri over all variables except xi, in index order.
	var atoms1 []cq.Atom
	for i := 1; i < k; i++ {
		var vars []cq.Variable
		for j := 1; j <= k; j++ {
			if j != i {
				vars = append(vars, x(j))
			}
		}
		atoms1 = append(atoms1, cq.Atom{Rel: fmt.Sprintf("R%d", i), Vars: vars})
	}
	q1 := &cq.CQ{Name: "Q1", Head: head, Atoms: atoms1}

	// Q2: R1(x2,...,x(k-1),x1) and R2(xk,x3,...,x(k-1),v).
	var r1Vars []cq.Variable
	for j := 2; j < k; j++ {
		r1Vars = append(r1Vars, x(j))
	}
	r1Vars = append(r1Vars, x(1))
	r2Vars := []cq.Variable{x(k)}
	for j := 3; j < k; j++ {
		r2Vars = append(r2Vars, x(j))
	}
	r2Vars = append(r2Vars, "v")
	q2 := &cq.CQ{
		Name: "Q2",
		Head: append([]cq.Variable(nil), head...),
		Atoms: []cq.Atom{
			{Rel: "R1", Vars: r1Vars},
			{Rel: "R2", Vars: r2Vars},
		},
	}
	return cq.MustUCQ(q1, q2)
}
