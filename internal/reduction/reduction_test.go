package reduction

import (
	"testing"

	"repro/internal/baseline"
	"repro/internal/cq"
	"repro/internal/database"
	"repro/internal/graph"
	"repro/internal/matrix"
)

func TestTagCQInstanceLemma14(t *testing.T) {
	// Example 9's union: no body-homomorphism from Q2 into Q1, so over the
	// tagged instance the union's answers are exactly Q1's.
	u := cq.MustParse(`
		Q1(x,y,w) <- R1(x,z), R2(z,y), R3(y,w).
		Q2(x,y,w) <- R1(x,y), R2(y,w), R4(y).
	`)
	q1 := u.CQs[0]
	inst := database.NewInstance()
	for name, rows := range map[string][][2]int64{
		"R1": {{1, 2}, {3, 4}},
		"R2": {{2, 5}, {4, 6}},
		"R3": {{5, 7}, {6, 8}},
	} {
		r := database.NewRelation(name, 2)
		for _, row := range rows {
			r.AppendInts(row[0], row[1])
		}
		inst.AddRelation(r)
	}
	r4 := database.NewRelation("R4", 1)
	r4.AppendInts(2)
	inst.AddRelation(r4)

	sigma, err := TagCQInstance(q1, inst, u.Schema())
	if err != nil {
		t.Fatalf("TagCQInstance: %v", err)
	}
	unionAnswers, err := baseline.EvalUCQ(u, sigma)
	if err != nil {
		t.Fatalf("EvalUCQ: %v", err)
	}
	q1Answers, err := baseline.EvalCQ(q1, inst)
	if err != nil {
		t.Fatalf("EvalCQ: %v", err)
	}
	if unionAnswers.Len() != q1Answers.Len() {
		t.Fatalf("union over σ(I) has %d answers, Q1 over I has %d",
			unionAnswers.Len(), q1Answers.Len())
	}
	// τ (untagging) maps the union's answers onto Q1's.
	want := make(map[string]bool)
	for _, row := range q1Answers.Rows() {
		want[row.Key()] = true
	}
	for _, row := range unionAnswers.Rows() {
		if !want[UntagTuple(row).Key()] {
			t.Errorf("untagged answer %v not a Q1 answer", UntagTuple(row))
		}
	}
}

func TestTagCQInstanceErrors(t *testing.T) {
	q := cq.MustParseCQ("Q(x) <- R(x).")
	if _, err := TagCQInstance(q, database.NewInstance(), nil); err == nil {
		t.Errorf("missing relation accepted")
	}
	bad := database.NewInstance()
	bad.AddRelation(database.NewRelation("R", 2))
	if _, err := TagCQInstance(q, bad, nil); err == nil {
		t.Errorf("arity mismatch accepted")
	}
}

func TestTagPatternAndVarTags(t *testing.T) {
	tags := VarTags(cq.NewVarSet("a", "b"))
	if tags["a"] == 0 || tags["a"] == tags["b"] {
		t.Errorf("tags = %v", tags)
	}
	tp := TagPattern(database.Tuple{database.TaggedValue(1, 3), database.V(2)})
	if tp[0] != 3 || tp[1] != 0 {
		t.Errorf("TagPattern = %v", tp)
	}
}

// example20 is the unguarded body-isomorphic pair of Example 20.
const example20 = `
	Q1(x,y,v) <- R1(x,z), R2(z,y), R3(y,v), R4(v,w).
	Q2(x,y,v) <- R1(w,v), R2(v,y), R3(y,z), R4(z,x).
`

func TestMatMulEncodingExample20(t *testing.T) {
	u := cq.MustParse(example20)
	enc, err := NewMatMulEncoding(u)
	if err != nil {
		t.Fatalf("NewMatMulEncoding: %v", err)
	}
	for seed := int64(0); seed < 5; seed++ {
		n := 12
		a := matrix.Random(n, 0.3, seed)
		b := matrix.Random(n, 0.3, seed+50)
		inst := enc.Instance(a, b)
		answers, err := baseline.EvalUCQ(u, inst)
		if err != nil {
			t.Fatalf("EvalUCQ: %v", err)
		}
		got := enc.DecodeProduct(answers, n)
		want := a.Multiply(b)
		if !got.Equal(want) {
			t.Errorf("seed %d: decoded product differs from direct product (got %d ones, want %d)",
				seed, got.Ones(), want.Ones())
		}
		// The non-target CQ contributes at most 2n² answers.
		nonTarget := answers.Len() - want.Ones()
		if nonTarget > enc.OtherAnswerBound(n) {
			t.Errorf("seed %d: non-target answers %d exceed bound %d", seed, nonTarget, enc.OtherAnswerBound(n))
		}
	}
}

func TestMatMulEncodingRejectsGuardedUnion(t *testing.T) {
	// Example 21 is mutually guarded: Lemma 25 must not apply.
	u := cq.MustParse(`
		Q1(w,y,x,z) <- R1(w,v), R2(v,y), R3(y,z), R4(z,x).
		Q2(x,y,w,v) <- R1(w,v), R2(v,y), R3(y,z), R4(z,x).
	`)
	if _, err := NewMatMulEncoding(u); err == nil {
		t.Errorf("Lemma 25 applied to a guarded union")
	}
	// Non-body-isomorphic unions are rejected.
	u2 := cq.MustParse(`
		Q1(x,y) <- R1(x,y).
		Q2(x,y) <- R2(x,y).
	`)
	if _, err := NewMatMulEncoding(u2); err == nil {
		t.Errorf("Lemma 25 applied to non-isomorphic bodies")
	}
	// Wrong CQ count.
	if _, err := NewMatMulEncoding(cq.MustParse("Q(x) <- R(x).")); err == nil {
		t.Errorf("Lemma 25 applied to a single CQ")
	}
}

func TestExample18Reduction(t *testing.T) {
	u := Example18Query()
	for seed := int64(0); seed < 6; seed++ {
		g := graph.ErdosRenyi(18, 0.15+0.05*float64(seed), seed)
		inst := Example18Instance(g)
		answers, err := baseline.EvalUCQ(u, inst)
		if err != nil {
			t.Fatalf("EvalUCQ: %v", err)
		}
		pairs := Example18DecodeTriangles(answers)
		if (len(pairs) > 0) != g.HasTriangle() {
			t.Errorf("seed %d: decoded %d pairs, HasTriangle=%v", seed, len(pairs), g.HasTriangle())
		}
		// Every decoded pair must extend to a triangle.
		for _, p := range pairs {
			a, b := p[0], p[1]
			if !g.HasEdge(a, b) {
				t.Errorf("seed %d: decoded pair (%d,%d) not an edge", seed, a, b)
				continue
			}
			found := false
			for c := 0; c < g.N(); c++ {
				if c != a && c != b && g.HasEdge(a, c) && g.HasEdge(b, c) {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("seed %d: pair (%d,%d) has no triangle completion", seed, a, b)
			}
		}
		// Q3 returns no answers over this construction (paper's claim).
		q3 := u.CQs[2]
		q3Answers, err := baseline.EvalCQ(q3, inst)
		if err != nil {
			t.Fatalf("EvalCQ(Q3): %v", err)
		}
		if q3Answers.Len() != 0 {
			t.Errorf("seed %d: Q3 produced %d answers, want 0", seed, q3Answers.Len())
		}
	}
}

func TestExample22Reduction(t *testing.T) {
	u := Example22Query()
	for seed := int64(0); seed < 6; seed++ {
		g := graph.ErdosRenyi(16, 0.25, seed)
		if seed%2 == 0 {
			graph.PlantClique(g, 4, seed)
		}
		inst, tris := Example22Instance(g)
		if tris != len(g.Triangles()) {
			t.Fatalf("triangle count mismatch")
		}
		answers, err := baseline.EvalUCQ(u, inst)
		if err != nil {
			t.Fatalf("EvalUCQ: %v", err)
		}
		got := Example22HasFourClique(g, answers)
		want := g.HasFourClique()
		if got != want {
			t.Errorf("seed %d: reduction says 4-clique=%v, direct says %v", seed, got, want)
		}
	}
}

func TestExample31Reduction(t *testing.T) {
	u := Example31Query()
	for seed := int64(0); seed < 6; seed++ {
		g := graph.ErdosRenyi(14, 0.25, seed)
		if seed%2 == 1 {
			graph.PlantClique(g, 4, seed+9)
		}
		inst := Example31Instance(g)
		answers, err := baseline.EvalUCQ(u, inst)
		if err != nil {
			t.Fatalf("EvalUCQ: %v", err)
		}
		got := Example31HasFourClique(g, answers)
		want := g.HasFourClique()
		if got != want {
			t.Errorf("seed %d: reduction says 4-clique=%v, direct says %v", seed, got, want)
		}
	}
}

func TestExample39Reduction(t *testing.T) {
	u := Example39Query()
	for seed := int64(0); seed < 6; seed++ {
		g := graph.ErdosRenyi(14, 0.3, seed)
		if seed%2 == 1 {
			graph.PlantClique(g, 4, seed+21)
		}
		inst, _ := Example39Instance(g)
		answers, err := baseline.EvalUCQ(u, inst)
		if err != nil {
			t.Fatalf("EvalUCQ: %v", err)
		}
		got := Example39HasFourClique(answers)
		want := g.HasFourClique()
		if got != want {
			t.Errorf("seed %d: reduction says 4-clique=%v, direct says %v", seed, got, want)
		}
	}
}
