// Package reduction implements the paper's lower-bound constructions as
// executable reductions: given an instance of a hard problem (Boolean
// matrix multiplication, triangle detection, 4-clique detection), it builds
// the database instance the corresponding proof prescribes, and decodes the
// UCQ's answers back into solutions of the hard problem.
//
// These reductions are how the paper argues that UCQ enumeration cannot be
// in DelayClin: if it were, the decoded answers would beat the conjectured
// lower bound. The experiment harness runs them forward — encode, evaluate,
// decode, compare against the direct solver — to validate each
// construction and measure its answer-set sizes.
//
// Variable tagging. Several proofs "concatenate the variable names to the
// values" (Lemma 14, Examples 18, 31, 39). We realise this with
// database.TaggedValue: each query variable gets a tag, and every value
// flowing through that variable carries it. Tags make distinct variables
// range over disjoint domains and let a decoder identify which CQ produced
// an answer by its head tag pattern.
package reduction

import (
	"fmt"

	"repro/internal/classify"
	"repro/internal/cq"
	"repro/internal/database"
	"repro/internal/hypergraph"
	"repro/internal/matrix"
)

// VarTags assigns each variable of the query a distinct non-zero tag, in
// sorted variable order.
func VarTags(vars cq.VarSet) map[cq.Variable]uint8 {
	sorted := vars.Sorted()
	if len(sorted) > 255 {
		panic("reduction: more than 255 variables")
	}
	out := make(map[cq.Variable]uint8, len(sorted))
	for i, v := range sorted {
		out[v] = uint8(i + 1)
	}
	return out
}

// TagCQInstance implements the σ mapping of Lemma 14: every value in the
// relation of atom Ri(v⃗) is tagged with its variable, giving each variable
// a disjoint domain; relations of the schema that do not occur in q are
// left empty. Answers of the resulting union are exactly the (tagged)
// answers of q (when no other CQ has a body-homomorphism into q).
func TagCQInstance(q *cq.CQ, inst *database.Instance, schema []cq.RelDecl) (*database.Instance, error) {
	tags := VarTags(q.Vars())
	out := database.NewInstance()
	for _, d := range schema {
		out.AddRelation(database.NewRelation(d.Name, d.Arity))
	}
	for _, a := range q.Atoms {
		src := inst.Relation(a.Rel)
		if src == nil {
			return nil, fmt.Errorf("reduction: no relation %q", a.Rel)
		}
		if src.Arity() != len(a.Vars) {
			return nil, fmt.Errorf("reduction: atom %s arity mismatch", a)
		}
		dst := out.Relation(a.Rel)
		if dst == nil {
			dst = database.NewRelation(a.Rel, len(a.Vars))
			out.AddRelation(dst)
		}
		row := make(database.Tuple, len(a.Vars))
		for i := 0; i < src.Len(); i++ {
			t := src.Row(i)
			for c, v := range a.Vars {
				row[c] = database.TaggedValue(t[c].Payload(), tags[v])
			}
			dst.Append(row...)
		}
	}
	return out, nil
}

// UntagTuple strips tags, recovering the τ mapping of Lemma 14.
func UntagTuple(t database.Tuple) database.Tuple {
	out := make(database.Tuple, len(t))
	for i, v := range t {
		out[i] = database.V(v.Payload())
	}
	return out
}

// TagPattern returns the tags of a tuple, used to attribute an answer to
// the CQ whose head produced it.
func TagPattern(t database.Tuple) []uint8 {
	out := make([]uint8, len(t))
	for i, v := range t {
		out[i] = v.Tag()
	}
	return out
}

// MatMulEncoding is the Lemma 25 construction: a union of two self-join
// free body-isomorphic acyclic CQs in which some free-path of one CQ is not
// guarded by the other admits an encoding of Boolean matrix multiplication
// whose answer decodes from the union's answers, while the other CQ
// contributes only O(n²) extra answers.
type MatMulEncoding struct {
	// U is the union; Target is the index of the CQ carrying the
	// unguarded free-path Path.
	U      *cq.UCQ
	Target int
	Path   hypergraph.FreePath
	// Vx, Vz, Vy partition the path per the proof of Lemma 25.
	Vx, Vz, Vy cq.VarSet

	rw      *classify.Rewritten
	tags    map[cq.Variable]uint8
	groupA  []bool // per reference atom: true = encodes matrix A
	headTag [][]uint8
	aPos    int // position of the path's first endpoint in the target head
	cPos    int // position of the path's last endpoint in the target head
}

// NewMatMulEncoding locates an unguarded free-path in a two-CQ
// body-isomorphic union and prepares the Lemma 25 construction. It errors
// when the union does not satisfy the lemma's preconditions.
func NewMatMulEncoding(u *cq.UCQ) (*MatMulEncoding, error) {
	if len(u.CQs) != 2 {
		return nil, fmt.Errorf("reduction: Lemma 25 needs exactly two CQs")
	}
	if !u.SelfJoinFree() {
		return nil, fmt.Errorf("reduction: Lemma 25 needs self-join free CQs")
	}
	rw, ok := classify.RewriteBodyIsomorphic(u)
	if !ok {
		return nil, fmt.Errorf("reduction: CQs are not body-isomorphic")
	}
	if !rw.H.IsAcyclic() {
		return nil, fmt.Errorf("reduction: bodies are cyclic; Lemma 25 needs acyclic CQs")
	}
	e := &MatMulEncoding{U: u, rw: rw, tags: VarTags(rw.Body.Vars())}

	// Find a target CQ with a free-path not guarded by the other CQ.
	for target := 0; target < 2; target++ {
		other := 1 - target
		for _, p := range rw.FreePathsOf(target) {
			if rw.Frees[other].ContainsAll(p.VarSet()) {
				continue
			}
			e.Target = target
			e.Path = p
			e.split(rw.Frees[other])
			if err := e.finish(); err != nil {
				return nil, err
			}
			return e, nil
		}
	}
	return nil, fmt.Errorf("reduction: every free-path is guarded; Lemma 25 does not apply")
}

// split computes Vx, Vz, Vy from the first path variable outside the other
// CQ's free set, exactly as in the proof.
func (e *MatMulEncoding) split(otherFree cq.VarSet) {
	p := e.Path
	i := -1
	for idx, v := range p {
		if !otherFree[v] {
			i = idx
			break
		}
	}
	last := len(p) - 1
	e.Vx, e.Vz, e.Vy = make(cq.VarSet), make(cq.VarSet), make(cq.VarSet)
	if i <= 0 || i >= last {
		// An endpoint is unguarded: Vx = {z0}, Vz = interior, Vy = {zk+1}.
		e.Vx.Add(p[0])
		for _, v := range p.Interior() {
			e.Vz.Add(v)
		}
		e.Vy.Add(p[last])
		return
	}
	for _, v := range p[:i] {
		e.Vx.Add(v)
	}
	e.Vz.Add(p[i])
	for _, v := range p[i+1:] {
		e.Vy.Add(v)
	}
}

// finish partitions the atoms (A-group: atoms containing a Vx variable)
// and records the head tag patterns and decode positions.
func (e *MatMulEncoding) finish() error {
	e.groupA = make([]bool, len(e.rw.Body.Atoms))
	for i, a := range e.rw.Body.Atoms {
		vars := a.VarSet()
		for v := range e.Vx {
			if vars[v] {
				e.groupA[i] = true
			}
		}
		if e.groupA[i] {
			for v := range e.Vy {
				if vars[v] {
					return fmt.Errorf("reduction: internal error: atom %s spans Vx and Vy on a chordless path", a)
				}
			}
		}
	}
	e.headTag = make([][]uint8, 2)
	for i := 0; i < 2; i++ {
		head := e.rw.RewrittenHead(i)
		e.headTag[i] = make([]uint8, len(head))
		for k, v := range head {
			e.headTag[i][k] = e.tags[v]
		}
	}
	targetHead := e.rw.RewrittenHead(e.Target)
	e.aPos, e.cPos = -1, -1
	z0, zl := e.Path.Endpoints()
	for k, v := range targetHead {
		if v == z0 && e.aPos < 0 {
			e.aPos = k
		}
		if v == zl && e.cPos < 0 {
			e.cPos = k
		}
	}
	if e.aPos < 0 || e.cPos < 0 {
		return fmt.Errorf("reduction: internal error: free-path endpoints missing from the target head")
	}
	return nil
}

// bottom is the ⊥ payload: one above the matrix dimension.
func bottom(n int) int64 { return int64(n) }

// Instance builds the database of the reduction for matrices A and B of
// dimension n: atoms containing a Vx variable receive one tuple per 1 of
// A, the remaining atoms one tuple per 1 of B, with variables valued by
// their class (Vx→row, Vz→mid, Vy→col, others ⊥) and tagged per variable.
func (e *MatMulEncoding) Instance(a, b *matrix.Bool) *database.Instance {
	if a.N() != b.N() {
		panic("reduction: matrix dimensions differ")
	}
	n := a.N()
	inst := database.NewInstance()
	value := func(v cq.Variable, row, col int64) database.Value {
		switch {
		case e.Vx[v]:
			return database.TaggedValue(row, e.tags[v])
		case e.Vz[v]:
			return database.TaggedValue(col, e.tags[v])
		default:
			return database.TaggedValue(bottom(n), e.tags[v])
		}
	}
	valueB := func(v cq.Variable, mid, col int64) database.Value {
		switch {
		case e.Vz[v]:
			return database.TaggedValue(mid, e.tags[v])
		case e.Vy[v]:
			return database.TaggedValue(col, e.tags[v])
		default:
			return database.TaggedValue(bottom(n), e.tags[v])
		}
	}
	for i, atom := range e.rw.Body.Atoms {
		rel := database.NewRelation(atom.Rel, len(atom.Vars))
		var pairs [][2]int
		if e.groupA[i] {
			pairs = a.Pairs()
		} else {
			pairs = b.Pairs()
		}
		row := make(database.Tuple, len(atom.Vars))
		for _, pr := range pairs {
			for c, v := range atom.Vars {
				if e.groupA[i] {
					row[c] = value(v, int64(pr[0]), int64(pr[1]))
				} else {
					row[c] = valueB(v, int64(pr[0]), int64(pr[1]))
				}
			}
			rel.Append(row...)
		}
		rel.Dedup()
		inst.AddRelation(rel)
	}
	return inst
}

// DecodeProduct extracts the Boolean product from the union's answers:
// answers whose tag pattern matches the target CQ's head carry a row value
// at the first path endpoint and a column value at the last.
func (e *MatMulEncoding) DecodeProduct(answers *database.Relation, n int) *matrix.Bool {
	out := matrix.New(n)
	want := e.headTag[e.Target]
	for i := 0; i < answers.Len(); i++ {
		t := answers.Row(i)
		match := true
		for k, tag := range TagPattern(t) {
			if tag != want[k] {
				match = false
				break
			}
		}
		if !match {
			continue
		}
		r := t[e.aPos].Payload()
		c := t[e.cPos].Payload()
		if r >= 0 && r < int64(n) && c >= 0 && c < int64(n) {
			out.Set(int(r), int(c))
		}
	}
	return out
}

// OtherAnswerBound returns the proof's bound on the non-target CQ's
// answers: at most 2n².
func (e *MatMulEncoding) OtherAnswerBound(n int) int { return 2 * n * n }
