package server

import (
	"time"

	ucq "repro"
	"repro/internal/vcache"
)

// PlanCache is a concurrency-safe LRU+TTL cache of prepared queries keyed
// on (normalized query, schema, preparation mode). It caches the
// instance-independent half of planning — redundancy removal and the
// Theorem 12 certificate search — which is exactly the work that must not
// be repeated per request; the per-instance preprocessing is served by the
// catalog's bind cache for dataset queries, and runs per request on the
// legacy inline-instance path.
//
// Concurrent misses on the same key are coalesced: one caller runs the
// preparation while the others wait for its result, so a thundering herd
// of identical cold requests plans exactly once. With a TTL set, entries
// expire that long after preparation and are re-prepared on next use.
type PlanCache struct {
	c *vcache.Cache[*ucq.PreparedQuery]
}

// NewPlanCache builds a cache holding at most capacity prepared queries
// (minimum 1) with no expiry.
func NewPlanCache(capacity int) *PlanCache {
	return NewPlanCacheTTL(capacity, 0)
}

// NewPlanCacheTTL is NewPlanCache with a TTL: entries older than ttl are
// dropped on access and re-prepared (0 disables expiry).
func NewPlanCacheTTL(capacity int, ttl time.Duration) *PlanCache {
	return &PlanCache{c: vcache.New[*ucq.PreparedQuery](capacity, ttl)}
}

// Get returns the prepared query for key, calling prepare on a miss and
// caching its result. The returned bool reports whether the call was
// served without running prepare (a cache hit, including joining another
// caller's in-flight preparation). Failed preparations are not cached.
func (c *PlanCache) Get(key string, prepare func() (*ucq.PreparedQuery, error)) (*ucq.PreparedQuery, bool, error) {
	return c.c.Get(key, prepare)
}

// CacheStats is a point-in-time snapshot of cache counters (the wire shape
// of both the plan cache and the bind cache in /stats).
type CacheStats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	// Expirations counts the misses caused by TTL expiry of a previously
	// cached entry (always ≤ Misses; 0 when no TTL is configured).
	Expirations int64 `json:"expirations"`
	Size        int   `json:"size"`
	Capacity    int   `json:"capacity"`
}

// Stats snapshots the counters.
func (c *PlanCache) Stats() CacheStats {
	return cacheStatsFrom(c.c.Stats())
}

// cacheStatsFrom maps the cache counters onto the wire shape — the single
// conversion site for both the plan cache and the bind cache.
func cacheStatsFrom(st vcache.Stats) CacheStats {
	return CacheStats{
		Hits:        st.Hits,
		Misses:      st.Misses,
		Evictions:   st.Evictions,
		Expirations: st.Expirations,
		Size:        st.Size,
		Capacity:    st.Capacity,
	}
}
