package server

import (
	"container/list"
	"sync"

	ucq "repro"
)

// PlanCache is a concurrency-safe LRU cache of prepared queries keyed on
// (normalized query, schema, preparation mode). It caches the
// instance-independent half of planning — redundancy removal and the
// Theorem 12 certificate search — which is exactly the work that must not
// be repeated per request; the per-instance preprocessing happens at Bind
// time, outside the cache.
//
// Concurrent misses on the same key are coalesced: one caller runs the
// preparation while the others wait for its result, so a thundering herd
// of identical cold requests plans exactly once.
type PlanCache struct {
	mu       sync.Mutex
	capacity int
	entries  map[string]*list.Element
	order    *list.List // front = most recently used
	inflight map[string]*flight

	hits      int64
	misses    int64
	evictions int64
}

// entry is one cached preparation.
type entry struct {
	key string
	pq  *ucq.PreparedQuery
}

// flight is an in-progress preparation other callers can wait on.
type flight struct {
	done chan struct{}
	pq   *ucq.PreparedQuery
	err  error
}

// NewPlanCache builds a cache holding at most capacity prepared queries
// (minimum 1).
func NewPlanCache(capacity int) *PlanCache {
	if capacity < 1 {
		capacity = 1
	}
	return &PlanCache{
		capacity: capacity,
		entries:  make(map[string]*list.Element),
		order:    list.New(),
		inflight: make(map[string]*flight),
	}
}

// Get returns the prepared query for key, calling prepare on a miss and
// caching its result. The returned bool reports whether the call was
// served without running prepare (a cache hit, including joining another
// caller's in-flight preparation). Failed preparations are not cached.
func (c *PlanCache) Get(key string, prepare func() (*ucq.PreparedQuery, error)) (*ucq.PreparedQuery, bool, error) {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		c.hits++
		pq := el.Value.(*entry).pq
		c.mu.Unlock()
		return pq, true, nil
	}
	if fl, ok := c.inflight[key]; ok {
		c.hits++
		c.mu.Unlock()
		<-fl.done
		return fl.pq, true, fl.err
	}
	fl := &flight{done: make(chan struct{})}
	c.inflight[key] = fl
	c.misses++
	c.mu.Unlock()

	fl.pq, fl.err = prepare()
	close(fl.done)

	c.mu.Lock()
	delete(c.inflight, key)
	if fl.err == nil {
		c.entries[key] = c.order.PushFront(&entry{key: key, pq: fl.pq})
		for c.order.Len() > c.capacity {
			last := c.order.Back()
			c.order.Remove(last)
			delete(c.entries, last.Value.(*entry).key)
			c.evictions++
		}
	}
	c.mu.Unlock()
	return fl.pq, false, fl.err
}

// CacheStats is a point-in-time snapshot of the cache counters.
type CacheStats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	Size      int   `json:"size"`
	Capacity  int   `json:"capacity"`
}

// Stats snapshots the counters.
func (c *PlanCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Size:      c.order.Len(),
		Capacity:  c.capacity,
	}
}
