// Package server implements the streaming UCQ evaluation service: a
// long-lived HTTP process answering ucq-run-style requests with a
// prepared-plan cache keyed on (normalized query, schema).
//
// POST /query evaluates one UCQ over the instance carried in the request
// and streams the answers as NDJSON with chunked flushing: the first tuple
// leaves the socket while enumeration is still running, preserving the
// constant-delay character of certified plans end to end. The
// instance-independent half of planning — redundancy removal and the
// Theorem 12 certificate search — is served from a concurrency-safe LRU
// cache, so repeated queries pay only the per-instance preprocessing.
//
// The /datasets endpoints remove that remaining per-request cost: PUT
// /datasets/{name} registers (or replaces/appends, with a version bump) a
// named dataset in the server's catalog, and POST /datasets/{name}/query
// evaluates against its current immutable snapshot with the per-instance
// preprocessing served from the catalog's versioned bind cache — the
// second identical query goes straight to enumeration.
//
// GET /stats exposes plan- and bind-cache hit/miss/eviction/expiration
// counters, per-dataset gauges, answers streamed, and per-request delay
// percentiles; GET /healthz is a liveness probe.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"time"

	ucq "repro"
	"repro/internal/cluster"
	"repro/internal/storage"
)

// Config tunes a Server.
type Config struct {
	// CacheSize caps the prepared-plan cache (0 = DefaultCacheSize).
	CacheSize int
	// CacheTTL expires prepared-plan entries this long after preparation
	// (0 = never); expired entries are re-prepared on next use.
	CacheTTL time.Duration
	// BindCacheSize caps the catalog's bind cache (0 =
	// ucq.DefaultBindCacheSize).
	BindCacheSize int
	// BindCacheTTL expires cached dataset binds (0 = never).
	BindCacheTTL time.Duration
	// FlushEvery flushes the response after this many answers beyond the
	// first (0 = DefaultFlushEvery). The first answer always flushes
	// immediately.
	FlushEvery int
	// MaxBodyBytes caps the request body (0 = DefaultMaxBodyBytes).
	MaxBodyBytes int64
	// DataDir makes the dataset catalog durable (Open only): every dataset
	// mutation is journaled under this directory — snapshot plus fsynced
	// WAL — before it is acknowledged, and the next Open replays the
	// journal, recovering every dataset at its acknowledged version. Empty
	// keeps the catalog in-memory. Ignored by New and NewCoordinator.
	DataDir string
	// SpillBudget bounds the in-memory dedup set of parallel and auto
	// query execution: when a certified plan's exact answer count exceeds
	// it, the merge dedups through a disk-backed spill table instead of
	// growing the in-memory set (0 = never spill).
	SpillBudget int64
	// SpillDir hosts the spill tables ("" = the OS temp directory).
	SpillDir string
	// MaxStreams caps the concurrent answer-streaming requests (inline
	// queries, dataset queries, merged cluster streams and non-probe
	// scatter calls; count-only requests are not gated). 0 =
	// 2*GOMAXPROCS — streaming enumeration is CPU-bound, so slots beyond
	// that only add queueing inside the process.
	MaxStreams int
	// QueueDeadline is how long a streaming request may wait for a slot
	// before it is shed with 429 + Retry-After (0 =
	// DefaultQueueDeadline).
	QueueDeadline time.Duration
	// MaxSubscriptions caps concurrent /subscribe streams (0 =
	// DefaultMaxSubscriptions). Subscriptions are long-lived, so they get
	// their own admission gate with a distinct 429 reason instead of
	// pinning MaxStreams slots and starving one-shot queries.
	MaxSubscriptions int
	// AppendLogSize caps each dataset's retained append-delta log (0 =
	// ucq.DefaultAppendLogSize, negative = retain nothing): the window a
	// lagging subscriber can catch up over incrementally before it is
	// degraded to a resync.
	AppendLogSize int
	// Cluster configures coordinator mode (NewCoordinator only): the
	// static worker list plus scatter tuning. Ignored by New.
	Cluster cluster.Config
}

// Defaults for Config zero values.
const (
	DefaultCacheSize    = 128
	DefaultFlushEvery   = 256
	DefaultMaxBodyBytes = 64 << 20
	// DefaultQueueDeadline is the longest a streaming request waits for an
	// admission slot before being shed.
	DefaultQueueDeadline = time.Second
	// DefaultMaxSubscriptions caps concurrent /subscribe streams. Distinct
	// from MaxStreams: a subscription lives until the client hangs up, so
	// sharing the query gate would let a handful of subscribers starve
	// every one-shot query.
	DefaultMaxSubscriptions = 64
)

// Server is the streaming UCQ evaluation service. Create with New; the
// zero value is not usable.
type Server struct {
	cache   *PlanCache
	catalog *ucq.Catalog
	stats   Stats
	cfg     Config

	// cluster is non-nil in coordinator mode (NewCoordinator): the
	// /datasets endpoints then replicate and scatter over its workers
	// instead of the local catalog.
	cluster *cluster.Coordinator

	// store is non-nil when the server was built by Open with a DataDir:
	// the catalog journals through it and /stats surfaces its gauges.
	store *storage.Store

	// admission gates concurrent streaming requests (see admission.go);
	// subAdmission is the separate gate for long-lived /subscribe streams.
	admission    *admission
	subAdmission *admission

	// dsMu guards dsQueries, the per-dataset query counters surfaced as
	// /stats gauges.
	dsMu      sync.Mutex
	dsQueries map[string]int64
}

// New builds a Server with the given configuration.
func New(cfg Config) *Server {
	if cfg.CacheSize <= 0 {
		cfg.CacheSize = DefaultCacheSize
	}
	if cfg.FlushEvery <= 0 {
		cfg.FlushEvery = DefaultFlushEvery
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = DefaultMaxBodyBytes
	}
	if cfg.MaxStreams <= 0 {
		cfg.MaxStreams = 2 * runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDeadline <= 0 {
		cfg.QueueDeadline = DefaultQueueDeadline
	}
	if cfg.MaxSubscriptions <= 0 {
		cfg.MaxSubscriptions = DefaultMaxSubscriptions
	}
	return &Server{
		admission:    newAdmission(cfg.MaxStreams, cfg.QueueDeadline),
		subAdmission: newAdmission(cfg.MaxSubscriptions, cfg.QueueDeadline),
		cache:        NewPlanCacheTTL(cfg.CacheSize, cfg.CacheTTL),
		catalog: ucq.NewCatalogConfig(ucq.CatalogConfig{
			BindCacheSize: cfg.BindCacheSize,
			BindCacheTTL:  cfg.BindCacheTTL,
			AppendLogSize: cfg.AppendLogSize,
		}),
		cfg:       cfg,
		dsQueries: make(map[string]int64),
	}
}

// Open builds a Server like New and, when cfg.DataDir is set, swaps in a
// durable catalog: dataset mutations are journaled under the directory
// before they are acknowledged, and Open replays the journal so a
// restarted process serves every dataset at the version its clients last
// saw. Close the server to release the store. With an empty DataDir, Open
// is New without the error path.
func Open(cfg Config) (*Server, error) {
	s := New(cfg)
	if cfg.DataDir == "" {
		return s, nil
	}
	cat, st, err := ucq.OpenCatalog(cfg.DataDir, ucq.CatalogConfig{
		BindCacheSize: cfg.BindCacheSize,
		BindCacheTTL:  cfg.BindCacheTTL,
		AppendLogSize: cfg.AppendLogSize,
	})
	if err != nil {
		return nil, err
	}
	s.catalog = cat
	s.store = st
	return s, nil
}

// Close releases the durable store behind a Server built by Open with a
// DataDir. A no-op on servers without durable storage.
func (s *Server) Close() error {
	if s.store == nil {
		return nil
	}
	return s.store.Close()
}

// NewCoordinator builds a Server in coordinator mode: the /datasets
// endpoints replicate writes to cfg.Cluster.Workers and scatter dataset
// queries across them, merging the range-scoped worker streams
// dedup-free. The inline /query endpoint still evaluates locally (its
// instance rides in the request), so a coordinator answers everything a
// single node does.
func NewCoordinator(cfg Config) (*Server, error) {
	s := New(cfg)
	c, err := cluster.New(cfg.Cluster)
	if err != nil {
		return nil, err
	}
	s.cluster = c
	return s, nil
}

// Catalog returns the server's dataset catalog — the registry behind the
// /datasets endpoints, exposed for embedding processes that want to
// register datasets programmatically.
func (s *Server) Catalog() *ucq.Catalog { return s.catalog }

// Cluster returns the coordinator behind the /datasets endpoints, or nil
// outside coordinator mode.
func (s *Server) Cluster() *cluster.Coordinator { return s.cluster }

// Handler returns the HTTP handler serving /query, /datasets, /stats and
// /healthz.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /query", s.handleQuery)
	if s.cluster != nil {
		// Coordinator mode: dataset writes replicate to every worker and
		// dataset queries scatter across them. The inline /query above
		// stays local either way.
		mux.HandleFunc("PUT /datasets/{name}", s.handleClusterDatasetPut)
		mux.HandleFunc("GET /datasets", s.handleClusterDatasetList)
		mux.HandleFunc("GET /datasets/{name}", s.handleClusterDatasetGet)
		mux.HandleFunc("DELETE /datasets/{name}", s.handleClusterDatasetDelete)
		mux.HandleFunc("POST /datasets/{name}/query", s.handleClusterDatasetQuery)
		mux.HandleFunc("POST /datasets/{name}/count", s.handleClusterDatasetCount)
		// Subscriptions are a single-node feature: the coordinator's
		// datasets live on its workers, so there is no local append log to
		// maintain answers from. Subscribe to a worker directly.
		mux.HandleFunc("GET /datasets/{name}/subscribe", s.handleClusterSubscribe)
		mux.HandleFunc("POST /datasets/{name}/subscribe", s.handleClusterSubscribe)
	} else {
		mux.HandleFunc("PUT /datasets/{name}", s.handleDatasetPut)
		mux.HandleFunc("GET /datasets", s.handleDatasetList)
		mux.HandleFunc("GET /datasets/{name}", s.handleDatasetGet)
		mux.HandleFunc("DELETE /datasets/{name}", s.handleDatasetDelete)
		mux.HandleFunc("POST /datasets/{name}/query", s.handleDatasetQuery)
		mux.HandleFunc("POST /datasets/{name}/count", s.handleDatasetCount)
		// Live subscription: initial answer set, then incremental deltas per
		// append, maintained from the dataset's append log (subscribe.go).
		mux.HandleFunc("GET /datasets/{name}/subscribe", s.handleSubscribe)
		mux.HandleFunc("POST /datasets/{name}/subscribe", s.handleSubscribe)
		// The worker-side scatter endpoint exists on every non-coordinator
		// server; single-node deployments simply never call it.
		mux.HandleFunc("POST /datasets/{name}/scatter", s.handleDatasetScatter)
	}
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// StatsSnapshot returns the server's current counters — the same data
// GET /stats serves. In coordinator mode the cluster section's worker
// fetch uses a background context; use StatsSnapshotContext to bound it.
func (s *Server) StatsSnapshot() Snapshot {
	return s.StatsSnapshotContext(context.Background())
}

// StatsSnapshotContext is StatsSnapshot with the context used for the
// coordinator's per-worker /stats fetches.
func (s *Server) StatsSnapshotContext(ctx context.Context) Snapshot {
	var gauges []DatasetGauge
	s.dsMu.Lock()
	for _, info := range s.catalog.List() {
		gauges = append(gauges, DatasetGauge{
			Name:      info.Name,
			Version:   info.Version,
			Rows:      info.Rows,
			Relations: info.Relations,
			Queries:   s.dsQueries[info.Name],
		})
	}
	s.dsMu.Unlock()
	snap := Snapshot{
		Requests:          s.stats.requests.Load(),
		Errors:            s.stats.errors.Load(),
		AnswersStreamed:   s.stats.answersStreamed.Load(),
		StreamsCompleted:  s.stats.streamsCompleted.Load(),
		RequestsCancelled: s.stats.requestsCancelled.Load(),
		PlansPrepared:     s.stats.plansPrepared.Load(),
		Cache:             s.cache.Stats(),
		BindCache:         cacheStatsFrom(s.catalog.BindCacheStats()),
		DecisionModes: map[string]int64{
			"sequential": s.stats.decisionSequential.Load(),
			"parallel":   s.stats.decisionParallel.Load(),
			"sharded":    s.stats.decisionSharded.Load(),
		},
		Datasets:        gauges,
		Delays:          s.stats.delays(),
		ScatterRequests: s.stats.scatterRequests.Load(),
		Wire: WireSnapshot{
			NDJSONRequests:      s.stats.ndjsonRequests.Load(),
			BinaryRequests:      s.stats.binaryRequests.Load(),
			NDJSONRows:          s.stats.ndjsonRows.Load(),
			BinaryRows:          s.stats.binaryRows.Load(),
			NDJSONBytes:         s.stats.ndjsonBytes.Load(),
			BinaryBytes:         s.stats.binaryBytes.Load(),
			StreamsActive:       s.admission.active.Load(),
			StreamsQueued:       s.admission.queued.Load(),
			StreamsShed:         s.admission.shed.Load(),
			MaxStreams:          s.cfg.MaxStreams,
			SubscriptionsActive: s.subAdmission.active.Load(),
			SubscriptionsShed:   s.subAdmission.shed.Load(),
			MaxSubscriptions:    s.cfg.MaxSubscriptions,
		},
		Subscriptions: SubscriptionsSnapshot{
			Active:           s.subAdmission.active.Load(),
			Started:          s.stats.subsStarted.Load(),
			DeltasEvaluated:  s.stats.deltasEvaluated.Load(),
			AnswersPushed:    s.stats.deltaAnswersPushed.Load(),
			Resyncs:          s.stats.subsResyncs.Load(),
			MaxSubscriptions: s.cfg.MaxSubscriptions,
		},
	}
	if s.cluster != nil {
		snap.Cluster = s.clusterSnapshot(ctx)
	}
	if s.store != nil || s.cfg.SpillBudget > 0 {
		st := &StorageSnapshot{}
		if s.store != nil {
			ss := s.store.Stats()
			st.DataDir = ss.Dir
			st.Datasets = ss.Datasets
			st.Recovered = ss.Recovered
			st.TornTails = ss.TornTails
			st.WALRecords = ss.WALRecords
			st.WALBytes = ss.WALBytes
			st.SnapshotWrites = ss.SnapshotWrites
		}
		sp := storage.SpillCounters()
		st.SpillSets = sp.Sets
		st.SpillTuples = sp.Tuples
		st.SpillBytes = sp.Bytes
		snap.Storage = st
	}
	return snap
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(s.StatsSnapshotContext(r.Context()))
}

// planKey builds the cache key: preparation mode, the schema the query
// references, and the canonical rendering of the parsed query (so
// whitespace, comments and punctuation variants of the same rules share
// one entry).
func planKey(mode string, u *ucq.UCQ) string {
	key := "mode=" + mode + "\n"
	for _, d := range u.Schema() {
		key += fmt.Sprintf("%s/%d;", d.Name, d.Arity)
	}
	return key + "\n" + u.String()
}

// httpError writes a JSON error body with the given status and counts the
// failure.
func (s *Server) httpError(w http.ResponseWriter, status int, format string, args ...any) {
	s.stats.errors.Add(1)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(ErrorResponse{Error: fmt.Sprintf(format, args...)})
}

// decodeQuery decodes and validates the parts of a query request shared by
// the inline-instance and dataset endpoints: the parsed union, the
// normalized mode and the per-request execution options. On failure it
// writes the error response and returns ok = false.
func (s *Server) decodeQuery(w http.ResponseWriter, r *http.Request) (req QueryRequest, u *ucq.UCQ, mode string, exec *ucq.PlanOptions, ok bool) {
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		s.httpError(w, http.StatusBadRequest, "decoding request: %v", err)
		return req, nil, "", nil, false
	}
	u, err := ucq.Parse(req.Query)
	if err != nil {
		s.httpError(w, http.StatusBadRequest, "parsing query: %v", err)
		return req, nil, "", nil, false
	}
	mode = req.Options.Mode
	if mode == "" {
		mode = "auto"
	}
	if mode != "auto" && mode != "naive" {
		s.httpError(w, http.StatusBadRequest, "options.mode must be \"auto\" or \"naive\", got %q", mode)
		return req, nil, "", nil, false
	}
	if req.Limit < 0 {
		s.httpError(w, http.StatusBadRequest, "limit must be ≥ 0, got %d", req.Limit)
		return req, nil, "", nil, false
	}
	exec = &ucq.PlanOptions{
		ForceNaive:    mode == "naive",
		Parallel:      req.Options.Parallel,
		ParallelBatch: req.Options.Batch,
		Shards:        req.Options.Shards,
		Workers:       req.Options.Workers,
	}
	// Cost-based execution is the default: with no explicit knob the
	// planner picks mode, shards and workers per bind (and /stats counts
	// the decisions). Any explicit knob pins manual execution — the
	// hand-picked path stays byte-identical.
	if !req.Options.Parallel && req.Options.Batch == 0 && req.Options.Shards == 0 && req.Options.Workers == 0 {
		exec.Auto = true
	}
	// The server-wide spill budget rides along wherever a dedup set can
	// exist (the spillable set lives on the parallel merge, so the budget
	// requires Parallel or Auto — the remaining combinations are invalid
	// anyway and fail validation on their own).
	if s.cfg.SpillBudget > 0 && (exec.Parallel || exec.Auto) {
		exec.DedupBudget = s.cfg.SpillBudget
		exec.SpillDir = s.cfg.SpillDir
	}
	return req, u, mode, exec, true
}

// recordDecision counts an Auto bind's resolved strategy in /stats.
func (s *Server) recordDecision(plan *ucq.Plan) {
	d := plan.Decision()
	if d == nil {
		return
	}
	switch d.Kind {
	case "sharded":
		s.stats.decisionSharded.Add(1)
	case "parallel":
		s.stats.decisionParallel.Add(1)
	default:
		s.stats.decisionSequential.Add(1)
	}
}

// prepared serves the instance-independent preparation from the LRU cache.
// Prepare sees only the mode-shaping options: execution options are
// applied (and validated) per request at bind time, so a request with
// invalid execution options can never poison the shared entry or the
// callers coalesced onto its in-flight preparation.
func (s *Server) prepared(mode string, u *ucq.UCQ) (*ucq.PreparedQuery, bool, error) {
	return s.cache.Get(planKey(mode, u), func() (*ucq.PreparedQuery, error) {
		s.stats.plansPrepared.Add(1)
		return ucq.Prepare(u, &ucq.PlanOptions{ForceNaive: mode == "naive"})
	})
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	s.stats.requests.Add(1)

	req, u, mode, exec, ok := s.decodeQuery(w, r)
	if !ok {
		return
	}
	pq, hit, err := s.prepared(mode, u)
	if err != nil {
		s.planError(w, err)
		return
	}

	inst, err := ucq.InstanceFromRows(req.Relations)
	if err != nil {
		s.httpError(w, http.StatusBadRequest, "%v", err)
		return
	}

	// Per-instance preprocessing; execution options come from this request
	// even when the preparation was cached by an earlier one. The request
	// context rides along: a client disconnect aborts a still-running bind
	// between extensions and, below, cancels the enumeration itself —
	// executor workers are released instead of enumerating to completion
	// for nobody.
	plan, err := pq.BindExecContext(r.Context(), inst, exec)
	if err != nil {
		if r.Context().Err() != nil {
			s.stats.requestsCancelled.Add(1)
			return
		}
		s.planError(w, err)
		return
	}
	s.recordDecision(plan)

	meta := streamMeta{cache: cacheState(hit)}
	if req.Options.CountOnly {
		s.respondCount(w, r, plan, meta)
		return
	}
	s.stream(w, r, plan, meta, req.Limit)
}

// respondCount answers a count-only evaluation: certified single-branch
// plans count from the Theorem 12 counting pass without enumerating a
// single answer; everything else (multi-branch unions, naive plans)
// enumerates under the request context and counts server-side. Either way
// the client gets one JSON object and no stream.
func (s *Server) respondCount(w http.ResponseWriter, r *http.Request, plan *ucq.Plan, meta streamMeta) {
	n, exact := plan.CountExact()
	method := "count-answers"
	if !exact {
		method = "enumerate"
		n = 0
		it := plan.AnswersContext(r.Context())
		defer ucq.CloseAnswers(it)
		for {
			if _, ok := it.Next(); !ok {
				break
			}
			n++
		}
		if r.Context().Err() != nil {
			s.stats.requestsCancelled.Add(1)
			return
		}
		if err := ucq.AnswersErr(it); err != nil {
			// Nothing has been written yet, so a failed spilled dedup can
			// still be an honest 500 here rather than a wrong count.
			s.httpError(w, http.StatusInternalServerError, "enumeration: %v", err)
			return
		}
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Ucq-Mode", plan.Mode.String())
	w.Header().Set("X-Ucq-Cache", meta.cache)
	if meta.bind != "" {
		w.Header().Set("X-Ucq-Bind", meta.bind)
		w.Header().Set("X-Ucq-Dataset-Version", fmt.Sprint(meta.dsVersion))
	}
	_ = json.NewEncoder(w).Encode(CountResponse{
		Count:          n,
		Mode:           plan.Mode.String(),
		Method:         method,
		Cache:          meta.cache,
		Dataset:        meta.dataset,
		DatasetVersion: meta.dsVersion,
		Bind:           meta.bind,
	})
	s.stats.streamsCompleted.Add(1)
}

// cacheState renders a hit bool as the wire's "hit"/"miss".
func cacheState(hit bool) string {
	if hit {
		return "hit"
	}
	return "miss"
}

// planError maps planning failures onto HTTP statuses: invalid option
// combinations (typed OptionsError) and schema mismatches are the
// client's fault.
func (s *Server) planError(w http.ResponseWriter, err error) {
	var oe *ucq.OptionsError
	if errors.As(err, &oe) {
		s.httpError(w, http.StatusBadRequest, "invalid options: %s: %s", oe.Field, oe.Reason)
		return
	}
	s.httpError(w, http.StatusBadRequest, "planning: %v", err)
}

// streamMeta carries the cache/dataset provenance a stream reports in its
// headers and trailer. bind and dataset stay zero on the legacy
// inline-instance path, keeping its wire format byte-identical.
type streamMeta struct {
	cache     string // plan cache: "hit" or "miss"
	bind      string // bind cache: "hit", "miss", or "" (inline bind)
	dataset   string
	dsVersion uint64
}

// stream drains the plan's iterator into the response in the encoding the
// request's Accept header negotiated — NDJSON lines or binary columnar
// frames, one shared loop either way. The first answer is flushed
// immediately — on certified plans it reaches the client while enumeration
// of the remaining answers is still running — and later answers are
// flushed every cfg.FlushEvery answers through the stream's buffered
// writer. The stream ends with a Trailer (object or frame).
//
// The stream holds an admission slot for its whole life; overload sheds
// here with 429 instead of stacking enumerations. The enumeration runs
// under the request context: when the client disconnects mid-stream (or
// the server shuts down), the context cancels the work-stealing executor
// behind a parallel plan and every worker is released within one batch;
// the request is then counted as cancelled and no trailer is written.
func (s *Server) stream(w http.ResponseWriter, r *http.Request, plan *ucq.Plan, meta streamMeta, limit int) {
	if !s.admitStream(w, r) {
		return
	}
	defer s.admission.release()

	media := negotiateEncoding(r.Header.Get("Accept"))
	enc, err := newAnswerEncoder(w, media, plan.Query.Arity())
	if err != nil {
		s.httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	w.Header().Set("Content-Type", enc.contentType())
	w.Header().Set("X-Ucq-Mode", plan.Mode.String())
	w.Header().Set("X-Ucq-Cache", meta.cache)
	if meta.bind != "" {
		w.Header().Set("X-Ucq-Bind", meta.bind)
		w.Header().Set("X-Ucq-Dataset-Version", fmt.Sprint(meta.dsVersion))
	}
	w.WriteHeader(http.StatusOK)

	it := plan.AnswersContext(r.Context())
	defer ucq.CloseAnswers(it)

	start := time.Now()
	prev := start
	var firstAnswer, maxDelay time.Duration
	count := 0
	disconnected := false
	for {
		// Parallel streams end early on their own after cancellation; this
		// check extends the same per-answer cancellation to sequential
		// iterators, so a server shutdown stops even a stream whose client
		// is still happily reading.
		if r.Context().Err() != nil {
			break
		}
		t, ok := it.Next()
		if !ok {
			break
		}
		now := time.Now()
		if count == 0 {
			firstAnswer = now.Sub(start)
		} else if d := now.Sub(prev); d > maxDelay {
			maxDelay = d
		}
		prev = now
		if err := enc.appendTuple(t); err != nil {
			// Client went away; stop enumerating, but keep the counters
			// honest about the answers that already left the socket.
			disconnected = true
			break
		}
		count++
		if count == 1 || count%s.cfg.FlushEvery == 0 {
			if err := enc.flush(); err != nil {
				disconnected = true
				break
			}
		}
		if limit > 0 && count >= limit {
			break
		}
	}
	if count == 0 {
		firstAnswer = time.Since(start)
	}

	s.stats.answersStreamed.Add(int64(count))
	s.stats.RecordTiming(firstAnswer, maxDelay)
	defer func() { s.stats.recordWire(media, count, enc.bytesOut()) }()
	if disconnected || r.Context().Err() != nil {
		s.stats.requestsCancelled.Add(1)
		return
	}
	if err := ucq.AnswersErr(it); err != nil {
		// The enumeration died mid-stream (spilled dedup hit disk trouble):
		// the answers already sent are an arbitrary prefix. The status line
		// is long gone, so honesty lives in the trailer — done stays false
		// and the error rides along instead.
		s.stats.errors.Add(1)
		_ = enc.trailer(Trailer{
			Count:          count,
			Mode:           plan.Mode.String(),
			Cache:          meta.cache,
			Dataset:        meta.dataset,
			DatasetVersion: meta.dsVersion,
			Bind:           meta.bind,
			Error:          fmt.Sprintf("enumeration failed after %d answers: %v", count, err),
		})
		_ = enc.flush()
		return
	}
	_ = enc.trailer(Trailer{
		Done:           true,
		Count:          count,
		Mode:           plan.Mode.String(),
		Cache:          meta.cache,
		Dataset:        meta.dataset,
		DatasetVersion: meta.dsVersion,
		Bind:           meta.bind,
	})
	_ = enc.flush()
	s.stats.streamsCompleted.Add(1)
}
