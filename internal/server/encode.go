package server

// Answer-stream encoding: the pluggable seam between the enumeration loops
// (stream, the scatter handler, the coordinator's merged stream) and the
// bytes on the socket. Two encodings exist — NDJSON text and the
// internal/wire binary columnar frames — negotiated per request via the
// Accept header, and every stream writes through a sized buffered writer
// flushed at the FlushEvery cadence instead of one syscall per answer.

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"strings"

	"repro/internal/cluster"
	"repro/internal/database"
	"repro/internal/wire"
)

// streamBufSize is the per-stream write buffer. Answers accumulate here
// between FlushEvery boundaries; one buffer flush replaces hundreds of
// per-row writes.
const streamBufSize = 32 << 10

// negotiateEncoding picks the answer encoding from an Accept header. The
// binary encoding must be named exactly and with the highest q-value to
// win; wildcards, unknown media types, ties and absent headers all resolve
// to NDJSON, so every pre-existing client keeps its text stream.
func negotiateEncoding(accept string) string {
	if accept == "" {
		return wire.MediaTypeNDJSON
	}
	binQ, textQ := -1.0, -1.0
	for _, part := range strings.Split(accept, ",") {
		fields := strings.Split(part, ";")
		media := strings.ToLower(strings.TrimSpace(fields[0]))
		q := 1.0
		for _, f := range fields[1:] {
			f = strings.TrimSpace(f)
			if v, ok := strings.CutPrefix(f, "q="); ok {
				parsed, err := strconv.ParseFloat(strings.TrimSpace(v), 64)
				if err != nil || parsed < 0 || parsed > 1 {
					q = -1 // malformed entry: ignore it
				} else {
					q = parsed
				}
			}
		}
		if q < 0 {
			continue
		}
		switch media {
		case wire.MediaTypeBinary:
			if q > binQ {
				binQ = q
			}
		case wire.MediaTypeNDJSON, "*/*", "application/*":
			if q > textQ {
				textQ = q
			}
		}
	}
	if binQ > 0 && binQ > textQ {
		return wire.MediaTypeBinary
	}
	return wire.MediaTypeNDJSON
}

// countingWriter counts the bytes that actually leave for the socket —
// it sits under the stream buffer, so only flushed bytes count.
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// answerEncoder is the one loop both encodings share: the enumeration
// paths call appendTuple per answer and flush at FlushEvery boundaries,
// and never branch on the wire format. Methods after the first write
// return the latched write error, which the loops treat as a client
// disconnect.
type answerEncoder interface {
	contentType() string
	// scatterHeader opens a scatter stream (worker side): the NDJSON header
	// line, or the binary header frame with the ScatterHeader as metadata.
	scatterHeader(h *cluster.ScatterHeader) error
	appendTuple(t database.Tuple) error
	// marker emits a scatter progress checkpoint.
	marker(rootDone int) error
	// subscriptionMarker emits a /subscribe version checkpoint: "the
	// answers above make you complete through version". With resync set it
	// instead announces that the client must discard its state — the full
	// answer set at version follows. NDJSON sends a {"version":…} object;
	// binary packs version<<1|resync into the marker frame's payload.
	subscriptionMarker(version uint64, resync bool) error
	trailer(tr Trailer) error
	scatterTrailer(tr cluster.ScatterTrailer) error
	// streamError terminates a stream that failed without a server-side
	// count to report (the coordinator's merge failure): an error object on
	// NDJSON, an error trailer frame on binary. Either way the stream is
	// visibly incomplete.
	streamError(msg string) error
	flush() error
	// bytesOut is the bytes written to the socket so far; exact after the
	// final flush.
	bytesOut() int64
}

// newAnswerEncoder builds the encoder for one response. arity is the
// answer tuple width (binary streams declare it in their header frame).
func newAnswerEncoder(w http.ResponseWriter, media string, arity int) (answerEncoder, error) {
	cw := &countingWriter{w: w}
	bw := bufio.NewWriterSize(cw, streamBufSize)
	fl, _ := w.(http.Flusher)
	if media == wire.MediaTypeBinary {
		enc, err := wire.NewEncoder(bw, arity)
		if err != nil {
			return nil, err
		}
		return &binaryEncoder{enc: enc, bw: bw, cw: cw, fl: fl}, nil
	}
	return &ndjsonEncoder{bw: bw, cw: cw, fl: fl, buf: make([]byte, 0, 256)}, nil
}

// ndjsonEncoder is the text protocol: answers as JSON array lines, control
// records as JSON object lines.
type ndjsonEncoder struct {
	bw  *bufio.Writer
	cw  *countingWriter
	fl  http.Flusher
	buf []byte
}

func (e *ndjsonEncoder) contentType() string { return wire.MediaTypeNDJSON }

func (e *ndjsonEncoder) writeJSONLine(v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return err
	}
	if _, err := e.bw.Write(b); err != nil {
		return err
	}
	return e.bw.WriteByte('\n')
}

func (e *ndjsonEncoder) scatterHeader(h *cluster.ScatterHeader) error {
	return e.writeJSONLine(h)
}

func (e *ndjsonEncoder) appendTuple(t database.Tuple) error {
	e.buf = wire.AppendTupleNDJSON(e.buf[:0], t)
	e.buf = append(e.buf, '\n')
	_, err := e.bw.Write(e.buf)
	return err
}

func (e *ndjsonEncoder) marker(rootDone int) error {
	return e.writeJSONLine(cluster.ScatterMarker{RootDone: rootDone})
}

func (e *ndjsonEncoder) subscriptionMarker(version uint64, resync bool) error {
	return e.writeJSONLine(SubscriptionMarker{Version: version, Resync: resync})
}

func (e *ndjsonEncoder) trailer(tr Trailer) error {
	return e.writeJSONLine(tr)
}

func (e *ndjsonEncoder) scatterTrailer(tr cluster.ScatterTrailer) error {
	return e.writeJSONLine(tr)
}

func (e *ndjsonEncoder) streamError(msg string) error {
	return e.writeJSONLine(ErrorResponse{Error: msg})
}

func (e *ndjsonEncoder) flush() error {
	if err := e.bw.Flush(); err != nil {
		return err
	}
	if e.fl != nil {
		e.fl.Flush()
	}
	return nil
}

func (e *ndjsonEncoder) bytesOut() int64 { return e.cw.n }

// binaryEncoder wraps the internal/wire columnar frame encoder.
type binaryEncoder struct {
	enc *wire.Encoder
	bw  *bufio.Writer
	cw  *countingWriter
	fl  http.Flusher
}

func (e *binaryEncoder) contentType() string { return wire.MediaTypeBinary }

func (e *binaryEncoder) scatterHeader(h *cluster.ScatterHeader) error {
	if err := e.enc.SetMeta(h); err != nil {
		return err
	}
	// The coordinator reads the handshake (scatterable? which version?)
	// before any answers exist, so the header frame goes out now, not
	// lazily at the first block.
	return e.enc.WriteHeader()
}

func (e *binaryEncoder) appendTuple(t database.Tuple) error {
	return e.enc.Append(t)
}

func (e *binaryEncoder) marker(rootDone int) error {
	return e.enc.Marker(rootDone)
}

func (e *binaryEncoder) subscriptionMarker(version uint64, resync bool) error {
	// Subscription streams reuse the marker frame: the uvarint payload is
	// version<<1 with the resync flag in the low bit. Marker payloads are
	// scatter checkpoints on scatter streams and version checkpoints here;
	// the two stream types never mix, so the meanings cannot collide.
	u := version << 1
	if resync {
		u |= 1
	}
	return e.enc.Marker(int(u))
}

// wireTrailer maps the HTTP trailer onto the frame payload shape.
func wireTrailer(tr Trailer) wire.Trailer {
	return wire.Trailer{
		Done:           tr.Done,
		Count:          tr.Count,
		Mode:           tr.Mode,
		Cache:          tr.Cache,
		Dataset:        tr.Dataset,
		DatasetVersion: tr.DatasetVersion,
		Bind:           tr.Bind,
		Scatter:        tr.Scatter,
		Workers:        tr.Workers,
		Error:          tr.Error,
	}
}

func (e *binaryEncoder) trailer(tr Trailer) error {
	return e.enc.Trailer(wireTrailer(tr))
}

func (e *binaryEncoder) scatterTrailer(tr cluster.ScatterTrailer) error {
	return e.enc.Trailer(wire.Trailer{
		Done:     tr.Done,
		Count:    tr.Count,
		RootDone: tr.RootDone,
		Error:    tr.Error,
	})
}

func (e *binaryEncoder) streamError(msg string) error {
	return e.enc.Trailer(wire.Trailer{Error: msg})
}

func (e *binaryEncoder) flush() error {
	if err := e.enc.FlushBlock(); err != nil {
		return err
	}
	if err := e.bw.Flush(); err != nil {
		return err
	}
	if e.fl != nil {
		e.fl.Flush()
	}
	return nil
}

func (e *binaryEncoder) bytesOut() int64 { return e.cw.n }
