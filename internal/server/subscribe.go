package server

// Live query subscriptions: GET/POST /datasets/{name}/subscribe holds the
// connection open and keeps the client's answer set current across dataset
// versions. The stream opens with the full answer set at the bind version
// (or, with from_version, just the answers added since), then blocks on the
// dataset's subscription channel; every committed append wakes the loop,
// which enumerates exactly the answers the append added — semi-naive delta
// evaluation over the catalog's append log, filtered through the certified
// plan's constant-time old-version membership test — and pushes them,
// ending each batch with a version marker. UCQs are monotone, so appends
// never retract answers and maintenance is pure addition.
//
// Every wake-up re-binds the plan at the head version through the bind
// cache, which doubles as a pre-warm: by the time an ordinary query
// arrives for the new version, a subscriber has already paid its
// preprocessing miss.
//
// A subscriber that cannot keep up degrades to a resync, not to unbounded
// memory: wake-ups coalesce, the append log is bounded, and when the next
// catch-up window has been compacted away the server sends a resync marker
// followed by the full answer set at the head version.

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	ucq "repro"
)

// errSubscriberGone marks a failed write to the subscription stream: the
// client disconnected, which ends the subscription without a trailer.
var errSubscriberGone = errors.New("server: subscriber disconnected")

// handleClusterSubscribe rejects subscriptions in coordinator mode: the
// coordinator's datasets live on its workers, so it has no local append
// log to maintain answers from.
func (s *Server) handleClusterSubscribe(w http.ResponseWriter, r *http.Request) {
	s.stats.requests.Add(1)
	s.httpError(w, http.StatusNotImplemented,
		"subscriptions are not supported in coordinator mode; subscribe to a worker directly")
}

// decodeSubscribe reads a SubscribeRequest from either wire form: the POST
// JSON body, or the GET query parameters (query, mode, from_version).
func (s *Server) decodeSubscribe(w http.ResponseWriter, r *http.Request) (req SubscribeRequest, ok bool) {
	if r.Method == http.MethodGet {
		q := r.URL.Query()
		req.Query = q.Get("query")
		req.Options.Mode = q.Get("mode")
		if fv := q.Get("from_version"); fv != "" {
			v, err := strconv.ParseUint(fv, 10, 64)
			if err != nil {
				s.httpError(w, http.StatusBadRequest, "from_version: %v", err)
				return req, false
			}
			req.FromVersion = v
		}
	} else {
		body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
		if err := json.NewDecoder(body).Decode(&req); err != nil {
			s.httpError(w, http.StatusBadRequest, "decoding request: %v", err)
			return req, false
		}
	}
	if req.Query == "" {
		s.httpError(w, http.StatusBadRequest, "query is required")
		return req, false
	}
	if req.Options.CountOnly {
		s.httpError(w, http.StatusBadRequest, "count_only is not valid on a subscription")
		return req, false
	}
	return req, true
}

// handleSubscribe is GET/POST /datasets/{name}/subscribe.
func (s *Server) handleSubscribe(w http.ResponseWriter, r *http.Request) {
	s.stats.requests.Add(1)
	name := r.PathValue("name")

	req, ok := s.decodeSubscribe(w, r)
	if !ok {
		return
	}
	u, err := ucq.Parse(req.Query)
	if err != nil {
		s.httpError(w, http.StatusBadRequest, "parsing query: %v", err)
		return
	}
	mode := req.Options.Mode
	if mode == "" {
		mode = "auto"
	}
	if mode != "auto" && mode != "naive" {
		s.httpError(w, http.StatusBadRequest, "options.mode must be \"auto\" or \"naive\", got %q", mode)
		return
	}
	exec := &ucq.PlanOptions{
		ForceNaive:    mode == "naive",
		Parallel:      req.Options.Parallel,
		ParallelBatch: req.Options.Batch,
		Shards:        req.Options.Shards,
		Workers:       req.Options.Workers,
	}
	if !req.Options.Parallel && req.Options.Batch == 0 && req.Options.Shards == 0 && req.Options.Workers == 0 {
		exec.Auto = true
	}
	if s.cfg.SpillBudget > 0 && (exec.Parallel || exec.Auto) {
		exec.DedupBudget = s.cfg.SpillBudget
		exec.SpillDir = s.cfg.SpillDir
	}

	pq, hit, err := s.prepared(mode, u)
	if err != nil {
		s.planError(w, err)
		return
	}

	// The subscription gate, not the query-stream gate: long-lived
	// subscribers must never pin MaxStreams slots.
	if !s.admitSubscription(w, r) {
		return
	}
	defer s.subAdmission.release()

	// Register on the dataset BEFORE binding the initial plan: an append
	// committed after the bind's snapshot read is then guaranteed to leave
	// a pending wake-up, so the loop can never sleep through it.
	sub, err := s.catalog.Subscribe(name)
	if err != nil {
		s.httpError(w, http.StatusNotFound, "no dataset %q", name)
		return
	}
	defer sub.Close()
	ds := sub.Dataset()

	plan, err := pq.BindDatasetExecContext(r.Context(), ds, exec)
	if err != nil {
		if r.Context().Err() != nil {
			s.stats.requestsCancelled.Add(1)
			return
		}
		s.planError(w, err)
		return
	}
	s.recordDecision(plan)

	media := negotiateEncoding(r.Header.Get("Accept"))
	enc, err := newAnswerEncoder(w, media, plan.Query.Arity())
	if err != nil {
		s.httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	cur := plan.DatasetVersion()
	w.Header().Set("Content-Type", enc.contentType())
	w.Header().Set("X-Ucq-Mode", plan.Mode.String())
	w.Header().Set("X-Ucq-Cache", cacheState(hit))
	w.Header().Set("X-Ucq-Bind", cacheState(plan.BindCacheHit()))
	w.Header().Set("X-Ucq-Dataset-Version", fmt.Sprint(cur))
	w.WriteHeader(http.StatusOK)
	s.stats.subsStarted.Add(1)

	pushed := 0
	defer func() { s.stats.recordWire(media, pushed, enc.bytesOut()) }()

	// Naive plans have no constant-time old-membership test; the
	// subscription instead remembers every answer it has made the client
	// complete through, dedups delta candidates against that set, and
	// spills it to disk past the budget. Certified plans filter through
	// the Theorem 12 head indexes of the previous bind and need no set.
	var emitted *ucq.AnswerSet
	if plan.Mode != ucq.ConstantDelay {
		emitted = ucq.NewAnswerSet(s.cfg.SpillDir, plan.Query.Arity(), int(s.cfg.SpillBudget))
		defer func() { _ = emitted.Close() }()
	}

	var streamErr error
	push := func(t ucq.Tuple) bool {
		if emitted != nil {
			fresh, err := emitted.Insert(t)
			if err != nil {
				streamErr = err
				return false
			}
			if !fresh {
				return true
			}
		}
		if err := enc.appendTuple(t); err != nil {
			streamErr = errSubscriberGone
			return false
		}
		pushed++
		if pushed == 1 || pushed%s.cfg.FlushEvery == 0 {
			if err := enc.flush(); err != nil {
				streamErr = errSubscriberGone
				return false
			}
		}
		return true
	}
	// fail ends the subscription: silently when the subscriber went away,
	// with an error trailer when the server side broke mid-stream.
	fail := func(err error) {
		if errors.Is(err, errSubscriberGone) || r.Context().Err() != nil {
			s.stats.requestsCancelled.Add(1)
			return
		}
		s.stats.errors.Add(1)
		_ = enc.trailer(Trailer{
			Count:          pushed,
			Mode:           plan.Mode.String(),
			Cache:          cacheState(hit),
			Dataset:        name,
			DatasetVersion: cur,
			Error:          err.Error(),
		})
		_ = enc.flush()
	}
	// streamFull pushes p's complete answer set — the initial batch, and
	// the body of every resync.
	streamFull := func(p *ucq.Plan) error {
		it := p.AnswersContext(r.Context())
		defer ucq.CloseAnswers(it)
		for {
			if err := r.Context().Err(); err != nil {
				return err
			}
			t, ok := it.Next()
			if !ok {
				break
			}
			if !push(t) {
				return streamErr
			}
		}
		return ucq.AnswersErr(it)
	}

	// Initial batch: a from_version resume sends only the delta since the
	// client's version when the plan is certified and the log still covers
	// the window; everything else (fresh subscribes, naive plans, compacted
	// windows) sends the full set, prefixed by a resync marker when the
	// client asked to resume — it must discard its stale state first.
	resync := req.FromVersion != 0 && req.FromVersion != cur
	if resync && plan.Mode == ucq.ConstantDelay && req.FromVersion < cur {
		err := plan.DeltaAnswersContext(r.Context(), req.FromVersion, cur, push)
		if streamErr != nil {
			fail(streamErr)
			return
		}
		switch {
		case err == nil:
			resync = false
		case errors.Is(err, ucq.ErrDeltaUnavailable):
			// Fall through to the resync below.
		default:
			fail(err)
			return
		}
	}
	if req.FromVersion == 0 || resync {
		if resync {
			s.stats.subsResyncs.Add(1)
			if err := enc.subscriptionMarker(cur, true); err != nil {
				s.stats.requestsCancelled.Add(1)
				return
			}
		}
		if err := streamFull(plan); err != nil {
			fail(err)
			return
		}
	}
	if err := enc.subscriptionMarker(cur, false); err != nil {
		s.stats.requestsCancelled.Add(1)
		return
	}
	if err := enc.flush(); err != nil {
		s.stats.requestsCancelled.Add(1)
		return
	}

	for {
		select {
		case <-r.Context().Done():
			s.stats.requestsCancelled.Add(1)
			return
		case <-sub.Updates():
		}
		// A wake-up can also mean the dataset was dropped (or dropped and
		// re-registered under the same name): the registration this
		// subscription rode on is gone, so the stream ends honestly.
		if cat, ok := s.catalog.Dataset(name); !ok || cat != ds {
			_ = enc.trailer(Trailer{
				Count:          pushed,
				Mode:           plan.Mode.String(),
				Cache:          cacheState(hit),
				Dataset:        name,
				DatasetVersion: cur,
				Error:          fmt.Sprintf("dataset %q was dropped", name),
			})
			_ = enc.flush()
			s.stats.streamsCompleted.Add(1)
			return
		}
		// Re-bind at the head through the shared bind cache — this is also
		// the pre-warm: the next ordinary query for this version binds hot.
		newPlan, err := pq.BindDatasetExecContext(r.Context(), ds, exec)
		if err != nil {
			if r.Context().Err() != nil {
				s.stats.requestsCancelled.Add(1)
				return
			}
			fail(err)
			return
		}
		s.recordDecision(newPlan)
		to := newPlan.DatasetVersion()
		if to <= cur {
			// Coalesced or stale wake-up; nothing new to push.
			continue
		}

		s.stats.deltasEvaluated.Add(1)
		before := pushed
		if plan.Mode == ucq.ConstantDelay {
			// The previous plan is bound at cur: its head indexes are the
			// old-version membership filter, so this enumerates exactly the
			// answers versions (cur, to] added.
			err = plan.DeltaAnswersContext(r.Context(), cur, to, push)
		} else {
			// Naive: the emitted set inside push dedups the candidates.
			err = newPlan.DeltaCandidatesContext(r.Context(), cur, to, push)
		}
		if streamErr != nil {
			fail(streamErr)
			return
		}
		if errors.Is(err, ucq.ErrDeltaUnavailable) {
			// The log was compacted past our window (slow consumer) or
			// cleared by a Replace: degrade to a full resync at the head.
			s.stats.subsResyncs.Add(1)
			if emitted != nil {
				_ = emitted.Close()
				emitted = ucq.NewAnswerSet(s.cfg.SpillDir, plan.Query.Arity(), int(s.cfg.SpillBudget))
			}
			if err := enc.subscriptionMarker(to, true); err != nil {
				s.stats.requestsCancelled.Add(1)
				return
			}
			if err := streamFull(newPlan); err != nil {
				fail(err)
				return
			}
		} else if err != nil {
			fail(err)
			return
		}
		s.stats.deltaAnswersPushed.Add(int64(pushed - before))
		if err := enc.subscriptionMarker(to, false); err != nil {
			s.stats.requestsCancelled.Add(1)
			return
		}
		if err := enc.flush(); err != nil {
			s.stats.requestsCancelled.Add(1)
			return
		}
		plan, cur = newPlan, to
	}
}
