package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"

	"repro/internal/cluster"
)

// fullJoin is a certified, root-range-partitionable query: the full
// acyclic join keeps every variable in the head, so the single plan's
// answer set splits exactly by root-row ranges.
const fullJoin = "Q(x,z,y) <- R(x,z), S(z,y)."

// joinRelations builds R (nR rows, join column x%zs) and S (zs*perZ
// rows); the full join has nR*perZ answers.
func joinRelations(nR, zs, perZ int) map[string][][]int64 {
	rel := map[string][][]int64{}
	for i := 0; i < nR; i++ {
		rel["R"] = append(rel["R"], []int64{int64(i), int64(i % zs)})
	}
	for z := 0; z < zs; z++ {
		for j := 0; j < perZ; j++ {
			rel["S"] = append(rel["S"], []int64{int64(z), int64(z*1000 + j)})
		}
	}
	return rel
}

// putTestDataset registers a dataset over HTTP and returns its info.
func putTestDataset(t *testing.T, url, name string, rels map[string][][]int64) DatasetInfo {
	t.Helper()
	body, _ := json.Marshal(DatasetRequest{Relations: rels})
	req, _ := http.NewRequest(http.MethodPut, url+"/datasets/"+name, bytes.NewReader(body))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("PUT status = %d", resp.StatusCode)
	}
	var info DatasetInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	return info
}

// scatterStream is one parsed scatter response.
type scatterStream struct {
	status  int
	header  cluster.ScatterHeader
	answers []string // raw answer lines, without newline
	// markerAt maps an answer-prefix length to the marker emitted right
	// after it: markerAt[k] = p means "the first k answers cover all root
	// rows < p". Order of emission is preserved in markers.
	markerAt map[int]int
	markers  []int
	trailer  *cluster.ScatterTrailer
	errBody  string
}

// postScatter issues one scatter call and parses the NDJSON stream.
func postScatter(t *testing.T, url, name string, req cluster.ScatterRequest) scatterStream {
	t.Helper()
	resp, err := http.Post(url+"/datasets/"+name+"/scatter", "application/json", bytes.NewReader(req.Encode()))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out := scatterStream{status: resp.StatusCode, markerAt: map[int]int{}}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	headerSeen := false
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "[") {
			out.answers = append(out.answers, line)
			continue
		}
		var ctl struct {
			Header   bool   `json:"header"`
			Done     bool   `json:"done"`
			RootDone *int   `json:"root_done"`
			Error    string `json:"error"`
			Count    int    `json:"count"`
		}
		if err := json.Unmarshal([]byte(line), &ctl); err != nil {
			t.Fatalf("control line %q: %v", line, err)
		}
		switch {
		case ctl.Header:
			if headerSeen {
				t.Fatalf("duplicate header line")
			}
			headerSeen = true
			if err := json.Unmarshal([]byte(line), &out.header); err != nil {
				t.Fatal(err)
			}
		case ctl.Done:
			var tr cluster.ScatterTrailer
			if err := json.Unmarshal([]byte(line), &tr); err != nil {
				t.Fatal(err)
			}
			out.trailer = &tr
		case ctl.Error != "":
			out.errBody = ctl.Error
		case ctl.RootDone != nil:
			out.markerAt[len(out.answers)] = *ctl.RootDone
			out.markers = append(out.markers, *ctl.RootDone)
		default:
			t.Fatalf("unrecognized line %q", line)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestScatterFullRangeMatchesDatasetQuery(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	putTestDataset(t, ts.URL, "join", joinRelations(60, 6, 4))

	// Reference: the ordinary dataset query path.
	body, _ := json.Marshal(QueryRequest{Query: fullJoin})
	resp, err := http.Post(ts.URL+"/datasets/join/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	ref, tr := readStream(t, resp)
	if tr.Count != 60*4 {
		t.Fatalf("reference count = %d", tr.Count)
	}

	st := postScatter(t, ts.URL, "join", cluster.ScatterRequest{Query: fullJoin, RootHi: -1, MarkerEvery: 8})
	if st.status != http.StatusOK {
		t.Fatalf("scatter status = %d", st.status)
	}
	if !st.header.Scatterable || st.header.RootLen <= 0 {
		t.Fatalf("header = %+v", st.header)
	}
	if st.trailer == nil || st.trailer.Count != len(st.answers) || st.trailer.RootDone != st.header.RootLen {
		t.Fatalf("trailer = %+v with %d answers", st.trailer, len(st.answers))
	}
	var got [][]int64
	for _, line := range st.answers {
		var row []int64
		if err := json.Unmarshal([]byte(line), &row); err != nil {
			t.Fatal(err)
		}
		got = append(got, row)
	}
	sortRows(got)
	sortRows(ref)
	if fmt.Sprint(got) != fmt.Sprint(ref) {
		t.Errorf("scatter answers differ from the dataset query's")
	}
	// Markers must be strictly increasing and within the root domain.
	prev := 0
	for _, m := range st.markers {
		if m <= prev || m > st.header.RootLen {
			t.Fatalf("marker sequence %v out of order for root_len %d", st.markers, st.header.RootLen)
		}
		prev = m
	}
	if len(st.markers) == 0 {
		t.Error("no progress markers in a 240-answer stream with marker_every=8")
	}
}

// TestScatterRangePartition is the scatter contract: ranges partition the
// answer set — concatenating [0,mid) and [mid,root_len) yields exactly
// the full enumeration, no duplicates, no losses, same order.
func TestScatterRangePartition(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	putTestDataset(t, ts.URL, "join", joinRelations(60, 6, 4))

	full := postScatter(t, ts.URL, "join", cluster.ScatterRequest{Query: fullJoin, RootHi: -1})
	mid := full.header.RootLen / 2
	lowHalf := postScatter(t, ts.URL, "join", cluster.ScatterRequest{Query: fullJoin, RootLo: 0, RootHi: mid})
	highHalf := postScatter(t, ts.URL, "join", cluster.ScatterRequest{Query: fullJoin, RootLo: mid, RootHi: -1})

	merged := append(append([]string{}, lowHalf.answers...), highHalf.answers...)
	if fmt.Sprint(merged) != fmt.Sprint(full.answers) {
		t.Fatalf("range concatenation: %d + %d answers vs %d full",
			len(lowHalf.answers), len(highHalf.answers), len(full.answers))
	}
	if lowHalf.trailer.RootDone != mid || highHalf.trailer.RootDone != full.header.RootLen {
		t.Errorf("trailer root_done = %d, %d", lowHalf.trailer.RootDone, highHalf.trailer.RootDone)
	}
}

// TestScatterResumeFromMarker pins the retry protocol: cutting a stream
// at any marker and re-issuing [marker, hi) reproduces the full stream
// exactly — the coordinator's zero-duplicate, zero-loss recovery.
func TestScatterResumeFromMarker(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	putTestDataset(t, ts.URL, "join", joinRelations(60, 6, 4))

	full := postScatter(t, ts.URL, "join", cluster.ScatterRequest{Query: fullJoin, RootHi: -1, MarkerEvery: 1})
	if len(full.markers) < 3 {
		t.Fatalf("only %d markers with marker_every=1", len(full.markers))
	}
	// Resume from every marker, not just one: each is a claimed-exact
	// checkpoint.
	for prefix, m := range full.markerAt {
		resumed := postScatter(t, ts.URL, "join", cluster.ScatterRequest{Query: fullJoin, RootLo: m, RootHi: -1})
		rebuilt := append(append([]string{}, full.answers[:prefix]...), resumed.answers...)
		if fmt.Sprint(rebuilt) != fmt.Sprint(full.answers) {
			t.Fatalf("resume at marker %d (prefix %d): rebuilt %d answers, want %d",
				m, prefix, len(rebuilt), len(full.answers))
		}
	}
}

func TestScatterProbeAndFallbackHeader(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	info := putTestDataset(t, ts.URL, "join", joinRelations(12, 3, 2))

	probe := postScatter(t, ts.URL, "join", cluster.ScatterRequest{Query: fullJoin, RootHi: -1, Probe: true})
	if probe.trailer != nil || len(probe.answers) != 0 {
		t.Fatalf("probe enumerated: %d answers, trailer %+v", len(probe.answers), probe.trailer)
	}
	if !probe.header.Scatterable || probe.header.DatasetVersion != info.Version || probe.header.Dataset != "join" {
		t.Errorf("probe header = %+v", probe.header)
	}

	// A multi-branch union needs cross-branch dedup: not range-scatterable.
	// (The branches must be incomparable — redundancy removal collapses a
	// contained branch back into a single scatterable plan.)
	putTestDataset(t, ts.URL, "union", smallRelations())
	union := postScatter(t, ts.URL, "union", cluster.ScatterRequest{Query: example2, RootHi: -1})
	if union.header.Scatterable || union.trailer != nil || len(union.answers) != 0 {
		t.Errorf("union scatter = %+v with %d answers", union.header, len(union.answers))
	}

	// Naive mode has no root-range contract either.
	naive := postScatter(t, ts.URL, "join", cluster.ScatterRequest{Query: fullJoin, Mode: "naive", RootHi: -1})
	if naive.header.Scatterable {
		t.Errorf("naive header = %+v", naive.header)
	}
}

func TestScatterVersionGuard(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	info := putTestDataset(t, ts.URL, "join", joinRelations(12, 3, 2))

	matched := postScatter(t, ts.URL, "join", cluster.ScatterRequest{Query: fullJoin, RootHi: -1, Version: info.Version})
	if matched.status != http.StatusOK || matched.trailer == nil {
		t.Fatalf("matching version: status %d, trailer %+v", matched.status, matched.trailer)
	}

	stale := postScatter(t, ts.URL, "join", cluster.ScatterRequest{Query: fullJoin, RootHi: -1, Version: info.Version + 1})
	if stale.status != http.StatusConflict {
		t.Fatalf("stale version: status %d, want 409", stale.status)
	}

	// The guard is off the hot path for the common zero value.
	st := s.StatsSnapshot()
	if st.ScatterRequests != 1 {
		t.Errorf("scatter_requests = %d, want 1 (the 409 never counted)", st.ScatterRequests)
	}
}

func TestScatterRejectsBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	putTestDataset(t, ts.URL, "join", joinRelations(12, 3, 2))

	post := func(body string) int {
		resp, err := http.Post(ts.URL+"/datasets/join/scatter", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := post(`not json`); got != http.StatusBadRequest {
		t.Errorf("malformed body: %d", got)
	}
	if got := post(`{"query":"Q(x) <- R(x).","root_lo":-1,"root_hi":-1}`); got != http.StatusBadRequest {
		t.Errorf("bad range: %d", got)
	}
	if got := post(`{"query":"Q(x <- R(x).","root_lo":0,"root_hi":-1}`); got != http.StatusBadRequest {
		t.Errorf("unparsable query: %d", got)
	}
	resp, err := http.Post(ts.URL+"/datasets/nope/scatter", "application/json",
		bytes.NewReader((&cluster.ScatterRequest{Query: fullJoin, RootHi: -1}).Encode()))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown dataset: %d", resp.StatusCode)
	}
}
