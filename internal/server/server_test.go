package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"
)

// example2 is the paper's tractable union (Example 2).
const example2 = `
	Q1(x,y,w) <- R1(x,z), R2(z,y), R3(y,w).
	Q2(x,y,w) <- R1(x,y), R2(y,w).
`

// smallRelations is a tiny instance for example2 with 6 answers.
func smallRelations() map[string][][]int64 {
	return map[string][][]int64{
		"R1": {{1, 2}, {4, 2}},
		"R2": {{2, 3}},
		"R3": {{3, 5}, {3, 6}},
	}
}

// post sends a QueryRequest and returns the response.
func post(t *testing.T, url string, req QueryRequest) *http.Response {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// readStream consumes an NDJSON response body: answer lines then the
// trailer object.
func readStream(t *testing.T, resp *http.Response) ([][]int64, Trailer) {
	t.Helper()
	defer resp.Body.Close()
	var answers [][]int64
	var tr Trailer
	sawTrailer := false
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if sawTrailer {
			t.Fatalf("line after trailer: %s", line)
		}
		if strings.HasPrefix(line, "{") {
			if err := json.Unmarshal([]byte(line), &tr); err != nil {
				t.Fatalf("trailer %q: %v", line, err)
			}
			sawTrailer = true
			continue
		}
		var row []int64
		if err := json.Unmarshal([]byte(line), &row); err != nil {
			t.Fatalf("answer %q: %v", line, err)
		}
		answers = append(answers, row)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if !sawTrailer {
		t.Fatal("stream ended without a trailer")
	}
	return answers, tr
}

func sortRows(rows [][]int64) {
	sort.Slice(rows, func(i, j int) bool {
		for k := range rows[i] {
			if rows[i][k] != rows[j][k] {
				return rows[i][k] < rows[j][k]
			}
		}
		return false
	})
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func TestQueryStreamsAnswers(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp := post(t, ts.URL, QueryRequest{Query: example2, Relations: smallRelations()})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Ucq-Mode"); got != "constant-delay" {
		t.Errorf("X-Ucq-Mode = %q", got)
	}
	if got := resp.Header.Get("Content-Type"); got != "application/x-ndjson" {
		t.Errorf("Content-Type = %q", got)
	}
	answers, tr := readStream(t, resp)
	want := [][]int64{{1, 2, 3}, {1, 3, 5}, {1, 3, 6}, {4, 2, 3}, {4, 3, 5}, {4, 3, 6}}
	sortRows(answers)
	if fmt.Sprint(answers) != fmt.Sprint(want) {
		t.Errorf("answers = %v, want %v", answers, want)
	}
	if !tr.Done || tr.Count != 6 || tr.Mode != "constant-delay" || tr.Cache != "miss" {
		t.Errorf("trailer = %+v", tr)
	}
}

// TestPlanCacheHitOnSecondRequest is acceptance criterion (a): the second
// request with the same (query, schema) is served from the plan cache —
// the hit counter increments and no second preparation runs.
func TestPlanCacheHitOnSecondRequest(t *testing.T) {
	s, ts := newTestServer(t, Config{})

	resp := post(t, ts.URL, QueryRequest{Query: example2, Relations: smallRelations()})
	_, tr := readStream(t, resp)
	if tr.Cache != "miss" {
		t.Fatalf("first request cache = %q, want miss", tr.Cache)
	}
	st := s.StatsSnapshot()
	if st.Cache.Misses != 1 || st.Cache.Hits != 0 || st.PlansPrepared != 1 {
		t.Fatalf("after first request: %+v", st.Cache)
	}

	// Same rules, different whitespace and punctuation, different data:
	// normalization must land on the same cache entry, and the bind must
	// still be per-instance.
	resp = post(t, ts.URL, QueryRequest{
		Query: "Q1(x,y,w) <- R1(x,z), R2(z,y), R3(y,w). # comment\nQ2(x,y,w) :- R1(x,y), R2(y,w)",
		Relations: map[string][][]int64{
			"R1": {{7, 8}},
			"R2": {{8, 9}},
			"R3": {{9, 1}},
		},
	})
	answers, tr := readStream(t, resp)
	if tr.Cache != "hit" {
		t.Fatalf("second request cache = %q, want hit", tr.Cache)
	}
	if tr.Count != 2 {
		t.Errorf("second request count = %d, want 2", tr.Count)
	}
	sortRows(answers)
	if fmt.Sprint(answers) != fmt.Sprint([][]int64{{7, 8, 9}, {7, 9, 1}}) {
		t.Errorf("second request answers = %v", answers)
	}

	st = s.StatsSnapshot()
	if st.Cache.Hits != 1 {
		t.Errorf("hits = %d, want 1", st.Cache.Hits)
	}
	if st.Cache.Misses != 1 {
		t.Errorf("misses = %d, want 1", st.Cache.Misses)
	}
	if st.PlansPrepared != 1 {
		t.Errorf("plans prepared = %d, want 1 (second request must not replan)", st.PlansPrepared)
	}
}

// TestStreamingFirstAnswerBeforeCompletion is acceptance criterion (b): on
// a large instance the client reads the first NDJSON answer while the
// server is still enumerating — the response is not materialized first.
// The full result (~17 MB) far exceeds any socket buffering, so the
// handler cannot have finished when the first line arrives.
func TestStreamingFirstAnswerBeforeCompletion(t *testing.T) {
	s, ts := newTestServer(t, Config{})

	// Full star join: R(x,z) ⋈ S(z,y) with 1000 × 1000 rows sharing one
	// join value → 10^6 answers. Q is full, hence free-connex: certified
	// constant-delay enumeration, streamed as produced.
	const side = 1000
	rels := map[string][][]int64{"R": {}, "S": {}}
	for i := int64(0); i < side; i++ {
		rels["R"] = append(rels["R"], []int64{i, 0})
		rels["S"] = append(rels["S"], []int64{0, i})
	}
	req := QueryRequest{Query: "Q(x,z,y) <- R(x,z), S(z,y).", Relations: rels}
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}

	br := bufio.NewReader(resp.Body)
	firstLine, err := br.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	var row []int64
	if err := json.Unmarshal([]byte(firstLine), &row); err != nil {
		t.Fatalf("first line %q is not an answer: %v", firstLine, err)
	}

	// The first answer is in hand; enumeration of the full result must
	// still be in flight server-side.
	if done := s.stats.streamsCompleted.Load(); done != 0 {
		t.Fatalf("server finished streaming before the client read the first answer (streams completed = %d)", done)
	}

	// Drain the rest and check nothing was lost.
	count := 1
	var tr Trailer
	sc := bufio.NewScanner(br)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "{") {
			if err := json.Unmarshal([]byte(line), &tr); err != nil {
				t.Fatal(err)
			}
			break
		}
		count++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if count != side*side {
		t.Errorf("streamed %d answers, want %d", count, side*side)
	}
	if !tr.Done || tr.Count != side*side {
		t.Errorf("trailer = %+v", tr)
	}
	if done := s.stats.streamsCompleted.Load(); done != 1 {
		t.Errorf("streams completed = %d, want 1", done)
	}
}

func TestEngineVariantsAgree(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var want [][]int64
	for i, opts := range []QueryOptions{
		{},
		{Mode: "naive"},
		{Parallel: true},
		{Parallel: true, Batch: 2},
		{Parallel: true, Shards: 4},
		{Mode: "naive", Parallel: true, Shards: 2},
	} {
		resp := post(t, ts.URL, QueryRequest{Query: example2, Relations: smallRelations(), Options: opts})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("options %+v: status %d", opts, resp.StatusCode)
		}
		answers, tr := readStream(t, resp)
		sortRows(answers)
		if i == 0 {
			want = answers
			continue
		}
		if fmt.Sprint(answers) != fmt.Sprint(want) {
			t.Errorf("options %+v: answers %v, want %v", opts, answers, want)
		}
		if tr.Count != len(want) {
			t.Errorf("options %+v: count %d", opts, tr.Count)
		}
	}
}

func TestLimitTruncatesStream(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp := post(t, ts.URL, QueryRequest{Query: example2, Relations: smallRelations(), Limit: 2})
	answers, tr := readStream(t, resp)
	if len(answers) != 2 || tr.Count != 2 {
		t.Errorf("limit 2: %d answers, trailer %+v", len(answers), tr)
	}
	// A parallel stream cut short must release its workers and still end
	// with a trailer.
	resp = post(t, ts.URL, QueryRequest{
		Query: example2, Relations: smallRelations(), Limit: 1,
		Options: QueryOptions{Parallel: true},
	})
	answers, tr = readStream(t, resp)
	if len(answers) != 1 || tr.Count != 1 {
		t.Errorf("parallel limit 1: %d answers, trailer %+v", len(answers), tr)
	}
}

func TestBadRequests(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	cases := []struct {
		name string
		body string
		want string
	}{
		{"malformed json", `{"query": `, "decoding request"},
		{"parse error", `{"query": "Q(x <- R(x)", "relations": {"R": [[1]]}}`, "parsing query"},
		{"bad mode", `{"query": "Q(x) <- R(x).", "relations": {"R": [[1]]}, "options": {"mode": "warp"}}`, "options.mode"},
		{"shards without parallel", `{"query": "Q(x) <- R(x).", "relations": {"R": [[1]]}, "options": {"shards": 2}}`, "invalid options: Shards"},
		{"negative limit", `{"query": "Q(x) <- R(x).", "relations": {"R": [[1]]}, "limit": -1}`, "limit"},
		{"ragged rows", `{"query": "Q(x) <- R(x).", "relations": {"R": [[1], [2,3]]}}`, "expected 1"},
		{"missing relation", `{"query": "Q(x) <- R(x).", "relations": {}}`, "no relation"},
		{"arity mismatch", `{"query": "Q(x) <- R(x).", "relations": {"R": [[1,2]]}}`, "arity"},
	}
	for _, tc := range cases {
		resp, err := http.Post(ts.URL+"/query", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		var er ErrorResponse
		if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
			t.Fatalf("%s: decoding error body: %v", tc.name, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", tc.name, resp.StatusCode)
		}
		if !strings.Contains(er.Error, tc.want) {
			t.Errorf("%s: error %q, want containing %q", tc.name, er.Error, tc.want)
		}
	}
	if st := s.StatsSnapshot(); st.Errors != int64(len(cases)) {
		t.Errorf("errors counter = %d, want %d", st.Errors, len(cases))
	}
}

// TestInvalidExecOptionsDoNotPoisonCache: a request with invalid
// execution options must not plant its error (or its options) into the
// shared cache entry — the next request with the same query and sane
// options succeeds, and its prepared query comes from cache.
func TestInvalidExecOptionsDoNotPoisonCache(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	resp := post(t, ts.URL, QueryRequest{
		Query: example2, Relations: smallRelations(),
		Options: QueryOptions{Shards: 2}, // invalid: shards without parallel
	})
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid options: status %d, want 400", resp.StatusCode)
	}
	resp = post(t, ts.URL, QueryRequest{Query: example2, Relations: smallRelations()})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("follow-up request: status %d, want 200", resp.StatusCode)
	}
	answers, tr := readStream(t, resp)
	if len(answers) != 6 || tr.Cache != "hit" {
		t.Errorf("follow-up: %d answers, cache %q (want 6, hit — the bad request's preparation is reusable)",
			len(answers), tr.Cache)
	}
	if st := s.StatsSnapshot(); st.PlansPrepared != 1 {
		t.Errorf("plans prepared = %d, want 1", st.PlansPrepared)
	}
}

func TestStatsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for i := 0; i < 3; i++ {
		resp := post(t, ts.URL, QueryRequest{Query: example2, Relations: smallRelations()})
		readStream(t, resp)
	}
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Requests != 3 || snap.AnswersStreamed != 18 || snap.StreamsCompleted != 3 {
		t.Errorf("snapshot = %+v", snap)
	}
	if snap.Cache.Hits != 2 || snap.Cache.Misses != 1 {
		t.Errorf("cache = %+v", snap.Cache)
	}
	if snap.Delays.Window != 3 {
		t.Errorf("delay window = %d, want 3", snap.Delays.Window)
	}

	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz status = %d", resp.StatusCode)
	}
}

func TestMethodNotAllowed(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/query")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /query status = %d, want 405", resp.StatusCode)
	}
}
