package server

// Dataset endpoints: register an instance once, bind many queries against
// it. PUT /datasets/{name} installs (or replaces/appends, with a version
// bump) a named dataset in the server's catalog; POST
// /datasets/{name}/query evaluates a UCQ against the dataset's current
// snapshot, serving the per-instance half of planning — the Theorem 12
// preprocessing that used to run on every /query — from the catalog's
// bind cache keyed on (query fingerprint, dataset, version, shards). The
// second identical query skips preprocessing entirely and goes straight
// to constant-delay enumeration; /stats exposes the hit/miss/eviction
// counters that prove it.

import (
	"encoding/json"
	"net/http"

	ucq "repro"
)

// handleDatasetPut creates, replaces or appends to a named dataset.
func (s *Server) handleDatasetPut(w http.ResponseWriter, r *http.Request) {
	s.stats.requests.Add(1)
	name := r.PathValue("name")

	var req DatasetRequest
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		s.httpError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}

	if req.Append {
		ds, ok := s.catalog.Dataset(name)
		if !ok {
			s.httpError(w, http.StatusNotFound, "no dataset %q to append to", name)
			return
		}
		if _, err := ds.AppendRows(req.Relations); err != nil {
			s.httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
		// Only acknowledge an append the catalog can still see: if a
		// concurrent DELETE (or DELETE + re-PUT) displaced this dataset
		// while the rows were being written, the append landed on an
		// orphaned snapshot and reporting 200 would silently lose it.
		if cur, ok := s.catalog.Dataset(name); !ok || cur != ds {
			s.httpError(w, http.StatusConflict, "dataset %q was dropped concurrently", name)
			return
		}
		s.writeDatasetInfo(w, ds)
		return
	}

	inst, err := ucq.InstanceFromRows(req.Relations)
	if err != nil {
		s.httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	ds, created, err := s.catalog.Upsert(name, inst)
	if err != nil {
		s.httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if created {
		// A fresh registration's query gauge starts at zero, even when a
		// dropped dataset of the same name left a stale counter behind.
		// created is decided under the catalog lock, so the reset cannot
		// race a concurrent DELETE into resurrecting the old count.
		s.dsMu.Lock()
		delete(s.dsQueries, name)
		s.dsMu.Unlock()
	}
	s.writeDatasetInfo(w, ds)
}

// writeDatasetInfo responds with the dataset's current version and size.
func (s *Server) writeDatasetInfo(w http.ResponseWriter, ds *ucq.Dataset) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(wireDatasetInfo(ds.Info()))
}

// wireDatasetInfo maps a catalog listing entry onto the wire shape.
func wireDatasetInfo(info ucq.DatasetInfo) DatasetInfo {
	return DatasetInfo{
		Name:      info.Name,
		Version:   info.Version,
		Rows:      info.Rows,
		Relations: info.Relations,
	}
}

// handleDatasetList serves the catalog listing.
func (s *Server) handleDatasetList(w http.ResponseWriter, r *http.Request) {
	s.stats.requests.Add(1)
	list := DatasetListResponse{Datasets: []DatasetInfo{}}
	for _, info := range s.catalog.List() {
		list.Datasets = append(list.Datasets, wireDatasetInfo(info))
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(list)
}

// handleDatasetGet serves one dataset's listing entry.
func (s *Server) handleDatasetGet(w http.ResponseWriter, r *http.Request) {
	s.stats.requests.Add(1)
	ds, ok := s.catalog.Dataset(r.PathValue("name"))
	if !ok {
		s.httpError(w, http.StatusNotFound, "no dataset %q", r.PathValue("name"))
		return
	}
	s.writeDatasetInfo(w, ds)
}

// handleDatasetDelete drops a dataset and its cached binds. In-flight
// query streams keep the snapshot they were bound to.
func (s *Server) handleDatasetDelete(w http.ResponseWriter, r *http.Request) {
	s.stats.requests.Add(1)
	name := r.PathValue("name")
	if !s.catalog.Drop(name) {
		s.httpError(w, http.StatusNotFound, "no dataset %q", name)
		return
	}
	s.dsMu.Lock()
	delete(s.dsQueries, name)
	s.dsMu.Unlock()
	w.WriteHeader(http.StatusNoContent)
}

// handleDatasetQuery evaluates a UCQ against a registered dataset's
// current snapshot and streams the answers as NDJSON, exactly like
// /query, except that the instance rides in no request body: the
// preparation comes from the plan cache and the per-instance
// preprocessing from the bind cache, so a warm (query, dataset) pair does
// no planning work at all before the first answer.
func (s *Server) handleDatasetQuery(w http.ResponseWriter, r *http.Request) {
	req, plan, meta, ok := s.bindDatasetPlan(w, r)
	if !ok {
		return
	}
	if req.Options.CountOnly {
		s.respondCount(w, r, plan, meta)
		return
	}
	s.stream(w, r, plan, meta, req.Limit)
}

// handleDatasetCount is POST /datasets/{name}/count: the same decode and
// bind path as a dataset query, but the response is a single
// CountResponse object — certified single-branch plans answer straight
// from the Theorem 12 counting pass without enumerating. Equivalent to a
// dataset query with options.count_only.
func (s *Server) handleDatasetCount(w http.ResponseWriter, r *http.Request) {
	_, plan, meta, ok := s.bindDatasetPlan(w, r)
	if !ok {
		return
	}
	s.respondCount(w, r, plan, meta)
}

// bindDatasetPlan decodes a dataset request and binds its query against
// the named dataset's current snapshot, handling errors (ok=false means
// the response is already written). Shared by the query and count
// endpoints.
func (s *Server) bindDatasetPlan(w http.ResponseWriter, r *http.Request) (QueryRequest, *ucq.Plan, streamMeta, bool) {
	s.stats.requests.Add(1)
	name := r.PathValue("name")

	req, u, mode, exec, ok := s.decodeQuery(w, r)
	if !ok {
		return req, nil, streamMeta{}, false
	}
	if len(req.Relations) > 0 {
		s.httpError(w, http.StatusBadRequest,
			"inline relations are not allowed on dataset queries; PUT /datasets/%s instead", name)
		return req, nil, streamMeta{}, false
	}
	ds, ok := s.catalog.Dataset(name)
	if !ok {
		s.httpError(w, http.StatusNotFound, "no dataset %q", name)
		return req, nil, streamMeta{}, false
	}

	pq, hit, err := s.prepared(mode, u)
	if err != nil {
		s.planError(w, err)
		return req, nil, streamMeta{}, false
	}

	// The per-instance half: Theorem 12 preprocessing on a bind-cache
	// miss, a pointer copy on a hit. The plan pins the snapshot it was
	// bound against — a concurrent Replace bumps the version for later
	// requests but never disturbs this stream.
	plan, err := pq.BindDatasetExecContext(r.Context(), ds, exec)
	if err != nil {
		if r.Context().Err() != nil {
			s.stats.requestsCancelled.Add(1)
			return req, nil, streamMeta{}, false
		}
		s.planError(w, err)
		return req, nil, streamMeta{}, false
	}
	s.recordDecision(plan)

	s.dsMu.Lock()
	s.dsQueries[name]++
	s.dsMu.Unlock()

	return req, plan, streamMeta{
		cache:     cacheState(hit),
		bind:      cacheState(plan.BindCacheHit()),
		dataset:   plan.DatasetName(),
		dsVersion: plan.DatasetVersion(),
	}, true
}
