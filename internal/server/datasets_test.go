package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
)

// do sends a JSON request with the given method and returns the response.
func do(t *testing.T, method, url string, body any) *http.Response {
	t.Helper()
	var rd *bytes.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	} else {
		rd = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// putDataset registers (or replaces) a dataset and returns its info.
func putDataset(t *testing.T, url, name string, rels map[string][][]int64) DatasetInfo {
	t.Helper()
	resp := do(t, http.MethodPut, url+"/datasets/"+name, DatasetRequest{Relations: rels})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("PUT /datasets/%s: status %d", name, resp.StatusCode)
	}
	var info DatasetInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	return info
}

// queryDataset posts a query against a dataset and returns the parsed
// stream.
func queryDataset(t *testing.T, url, name string, req QueryRequest) ([][]int64, Trailer) {
	t.Helper()
	resp := do(t, http.MethodPost, url+"/datasets/"+name+"/query", req)
	if resp.StatusCode != http.StatusOK {
		defer resp.Body.Close()
		var er ErrorResponse
		_ = json.NewDecoder(resp.Body).Decode(&er)
		t.Fatalf("POST /datasets/%s/query: status %d (%s)", name, resp.StatusCode, er.Error)
	}
	return readStream(t, resp)
}

func getStats(t *testing.T, url string) Snapshot {
	t.Helper()
	resp, err := http.Get(url + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	return snap
}

func TestDatasetLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	info := putDataset(t, ts.URL, "events", smallRelations())
	if info.Name != "events" || info.Version != 1 || info.Rows != 5 || info.Relations != 3 {
		t.Fatalf("PUT response = %+v", info)
	}

	// Replace bumps the version.
	info = putDataset(t, ts.URL, "events", map[string][][]int64{
		"R1": {{1, 2}}, "R2": {{2, 3}}, "R3": {{3, 5}},
	})
	if info.Version != 2 || info.Rows != 3 {
		t.Fatalf("replace response = %+v", info)
	}

	// Append with a version bump.
	resp := do(t, http.MethodPut, ts.URL+"/datasets/events", DatasetRequest{
		Relations: map[string][][]int64{"R3": {{3, 6}}},
		Append:    true,
	})
	var appended DatasetInfo
	if err := json.NewDecoder(resp.Body).Decode(&appended); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if appended.Version != 3 || appended.Rows != 4 {
		t.Fatalf("append response = %+v", appended)
	}

	// Listing.
	resp, err := http.Get(ts.URL + "/datasets")
	if err != nil {
		t.Fatal(err)
	}
	var list DatasetListResponse
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(list.Datasets) != 1 || list.Datasets[0].Version != 3 {
		t.Fatalf("list = %+v", list)
	}

	// Single-dataset info.
	resp = do(t, http.MethodGet, ts.URL+"/datasets/events", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /datasets/events: status %d", resp.StatusCode)
	}
	resp.Body.Close()

	// Delete, then 404 everywhere.
	resp = do(t, http.MethodDelete, ts.URL+"/datasets/events", nil)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("DELETE: status %d", resp.StatusCode)
	}
	for _, probe := range []struct{ method, path string }{
		{http.MethodDelete, "/datasets/events"},
		{http.MethodGet, "/datasets/events"},
	} {
		resp = do(t, probe.method, ts.URL+probe.path, nil)
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s %s after delete: status %d, want 404", probe.method, probe.path, resp.StatusCode)
		}
	}
}

// TestDatasetQueryBindCacheHit is the acceptance criterion: the second
// POST /datasets/{name}/query with the same query performs no Theorem 12
// preprocessing — the bind comes from the cache, observed through the
// trailer and the /stats bind-cache counters.
func TestDatasetQueryBindCacheHit(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	putDataset(t, ts.URL, "d", smallRelations())

	answers, tr := queryDataset(t, ts.URL, "d", QueryRequest{Query: example2})
	if tr.Bind != "miss" || tr.Dataset != "d" || tr.DatasetVersion != 1 {
		t.Fatalf("first trailer = %+v, want bind=miss dataset=d v1", tr)
	}
	if tr.Cache != "miss" || tr.Count != 6 {
		t.Fatalf("first trailer = %+v", tr)
	}
	st := getStats(t, ts.URL)
	if st.BindCache.Misses != 1 || st.BindCache.Hits != 0 {
		t.Fatalf("after first query: bind cache = %+v, want 1 miss", st.BindCache)
	}

	// Same query (modulo whitespace), same dataset: plan cache hit AND
	// bind cache hit — the request goes straight to enumeration.
	answers2, tr := queryDataset(t, ts.URL, "d", QueryRequest{
		Query: "Q1(x,y,w) <- R1(x,z), R2(z,y), R3(y,w). Q2(x,y,w) :- R1(x,y), R2(y,w)",
	})
	if tr.Bind != "hit" || tr.Cache != "hit" {
		t.Fatalf("second trailer = %+v, want bind=hit cache=hit", tr)
	}
	sortRows(answers)
	sortRows(answers2)
	if fmt.Sprint(answers) != fmt.Sprint(answers2) {
		t.Errorf("cached bind changed the answers: %v vs %v", answers, answers2)
	}

	st = getStats(t, ts.URL)
	if st.BindCache.Misses != 1 {
		t.Errorf("bind cache misses = %d after two identical queries, want 1 (no second preprocessing)", st.BindCache.Misses)
	}
	if st.BindCache.Hits != 1 {
		t.Errorf("bind cache hits = %d, want 1", st.BindCache.Hits)
	}
	if st.PlansPrepared != 1 {
		t.Errorf("plans prepared = %d, want 1", st.PlansPrepared)
	}
	if len(st.Datasets) != 1 || st.Datasets[0].Queries != 2 {
		t.Errorf("dataset gauges = %+v, want d with 2 queries", st.Datasets)
	}

	// An explicit execution strategy binds separately from the auto
	// entries above: auto binds carry a cost decision that must never leak
	// onto a hand-picked request, so the exec component of the key differs.
	// A second identical explicit request then hits its own entry.
	_, tr = queryDataset(t, ts.URL, "d", QueryRequest{
		Query:   example2,
		Options: QueryOptions{Parallel: true},
	})
	if tr.Bind != "miss" {
		t.Errorf("parallel query trailer = %+v, want bind=miss (auto and explicit binds do not share entries)", tr)
	}
	_, tr = queryDataset(t, ts.URL, "d", QueryRequest{
		Query:   example2,
		Options: QueryOptions{Parallel: true},
	})
	if tr.Bind != "hit" {
		t.Errorf("repeated parallel query trailer = %+v, want bind=hit", tr)
	}

	// Replacing the dataset invalidates the bind: fresh preprocessing on
	// the new snapshot, answers reflect the new data.
	putDataset(t, ts.URL, "d", map[string][][]int64{
		"R1": {{7, 8}}, "R2": {{8, 9}}, "R3": {{9, 1}},
	})
	answers3, tr := queryDataset(t, ts.URL, "d", QueryRequest{Query: example2})
	if tr.Bind != "miss" || tr.DatasetVersion != 2 {
		t.Fatalf("post-replace trailer = %+v, want bind=miss v2", tr)
	}
	sortRows(answers3)
	if fmt.Sprint(answers3) != fmt.Sprint([][]int64{{7, 8, 9}, {7, 9, 1}}) {
		t.Errorf("post-replace answers = %v", answers3)
	}
}

func TestDatasetQueryErrors(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	putDataset(t, ts.URL, "d", smallRelations())

	cases := []struct {
		name   string
		method string
		path   string
		body   any
		status int
		want   string
	}{
		{"query missing dataset", http.MethodPost, "/datasets/nope/query",
			QueryRequest{Query: example2}, http.StatusNotFound, "no dataset"},
		{"inline relations rejected", http.MethodPost, "/datasets/d/query",
			QueryRequest{Query: example2, Relations: smallRelations()},
			http.StatusBadRequest, "inline relations"},
		{"bad query", http.MethodPost, "/datasets/d/query",
			QueryRequest{Query: "Q(x <- R(x)"}, http.StatusBadRequest, "parsing query"},
		{"schema mismatch", http.MethodPost, "/datasets/d/query",
			QueryRequest{Query: "Q(x) <- Missing(x)."}, http.StatusBadRequest, "no relation"},
		{"append to missing", http.MethodPut, "/datasets/nope",
			DatasetRequest{Relations: map[string][][]int64{"R": {{1}}}, Append: true},
			http.StatusNotFound, "no dataset"},
		{"ragged rows", http.MethodPut, "/datasets/bad",
			DatasetRequest{Relations: map[string][][]int64{"R": {{1}, {2, 3}}}},
			http.StatusBadRequest, "expected 1"},
		{"invalid exec options", http.MethodPost, "/datasets/d/query",
			QueryRequest{Query: example2, Options: QueryOptions{Shards: 2}},
			http.StatusBadRequest, "Shards"},
	}
	for _, tc := range cases {
		resp := do(t, tc.method, ts.URL+tc.path, tc.body)
		var er ErrorResponse
		if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
			t.Fatalf("%s: decoding error body: %v", tc.name, err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status %d, want %d", tc.name, resp.StatusCode, tc.status)
		}
		if !strings.Contains(er.Error, tc.want) {
			t.Errorf("%s: error %q, want containing %q", tc.name, er.Error, tc.want)
		}
	}
	if st := s.StatsSnapshot(); st.Errors != int64(len(cases)) {
		t.Errorf("errors counter = %d, want %d", st.Errors, len(cases))
	}
}

// TestDatasetReplaceDoesNotDisturbInFlightStream is the lifecycle-race
// regression (run under -race in CI): a stream started on snapshot v1
// must finish on v1 — with v1's exact answer count — even when the
// dataset is replaced mid-stream.
func TestDatasetReplaceDoesNotDisturbInFlightStream(t *testing.T) {
	s, ts := newTestServer(t, Config{})

	// v1: full star join with 300×300 rows → 90 000 answers, enough to
	// outlive several replaces.
	const side = 300
	mk := func(n int) map[string][][]int64 {
		rels := map[string][][]int64{"R": {}, "S": {}}
		for i := int64(0); i < int64(n); i++ {
			rels["R"] = append(rels["R"], []int64{i, 0})
			rels["S"] = append(rels["S"], []int64{0, i})
		}
		return rels
	}
	putDataset(t, ts.URL, "d", mk(side))

	req := QueryRequest{Query: "Q(x,z,y) <- R(x,z), S(z,y)."}
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/datasets/d/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	// Read the first answer, then hammer the dataset with replaces while
	// draining the rest of the stream.
	br := bufio.NewReader(resp.Body)
	if _, err := br.ReadString('\n'); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 5; i++ {
			putDataset(t, ts.URL, "d", mk(2)) // 4-answer instances
		}
	}()

	count := 1
	var tr Trailer
	sc := bufio.NewScanner(br)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "{") {
			if err := json.Unmarshal([]byte(line), &tr); err != nil {
				t.Fatal(err)
			}
			break
		}
		count++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()

	if count != side*side {
		t.Errorf("stream crossed snapshots: %d answers, want %d", count, side*side)
	}
	if tr.DatasetVersion != 1 {
		t.Errorf("trailer version = %d, want 1 (the snapshot the stream started on)", tr.DatasetVersion)
	}
	if !tr.Done || tr.Count != side*side {
		t.Errorf("trailer = %+v", tr)
	}
	// The dataset itself has moved on.
	if st := s.StatsSnapshot(); len(st.Datasets) != 1 || st.Datasets[0].Version != 6 {
		t.Errorf("dataset gauges = %+v, want version 6 after 5 replaces", st.Datasets)
	}
}

// TestLegacyQueryUnchangedByDatasets pins that the inline-instance /query
// path neither touches the bind cache nor gains trailer fields.
func TestLegacyQueryUnchangedByDatasets(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	putDataset(t, ts.URL, "d", smallRelations())

	resp := post(t, ts.URL, QueryRequest{Query: example2, Relations: smallRelations()})
	if got := resp.Header.Get("X-Ucq-Bind"); got != "" {
		t.Errorf("legacy /query has X-Ucq-Bind = %q, want unset", got)
	}
	// Raw trailer line must not mention datasets or binds.
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	var last string
	for sc.Scan() {
		if strings.TrimSpace(sc.Text()) != "" {
			last = sc.Text()
		}
	}
	resp.Body.Close()
	for _, field := range []string{"dataset", "bind"} {
		if strings.Contains(last, field) {
			t.Errorf("legacy trailer %q mentions %q", last, field)
		}
	}
	st := getStats(t, ts.URL)
	if st.BindCache.Hits+st.BindCache.Misses != 0 {
		t.Errorf("legacy /query touched the bind cache: %+v", st.BindCache)
	}
}
