package server

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
)

// newDurableServer is newTestServer over Open: the catalog journals under
// dir and the store is released with the test.
func newDurableServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		if err := s.Close(); err != nil {
			t.Errorf("closing store: %v", err)
		}
	})
	return s, ts
}

// TestServerRestartRecoversDatasets is the end-to-end durability proof: a
// server opened over a data directory, loaded with registered and appended
// datasets, is shut down and reopened — and the new process serves every
// dataset at its exact pre-restart version with the exact pre-restart
// answer set, with the bind cache warming against the recovered snapshots.
func TestServerRestartRecoversDatasets(t *testing.T) {
	dir := t.TempDir()

	s1, err := Open(Config{DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s1.Handler())
	putDataset(t, ts.URL, "events", smallRelations())
	putDataset(t, ts.URL, "other", map[string][][]int64{"S": {{1}, {2}}})
	// An append bumps events to v2 — the restart must come back at v2, not
	// at the registration snapshot.
	resp := do(t, "PUT", ts.URL+"/datasets/events", DatasetRequest{
		Relations: map[string][][]int64{"R3": {{3, 7}}},
		Append:    true,
	})
	resp.Body.Close()
	want, wantTr := queryDataset(t, ts.URL, "events", QueryRequest{Query: example2})
	sortRows(want)
	if wantTr.DatasetVersion != 2 {
		t.Fatalf("pre-restart version = %d, want 2", wantTr.DatasetVersion)
	}
	// "Restart": shut the first server down — store included — and open a
	// second one over the same directory.
	ts.Close()
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(Config{DataDir: dir})
	if err != nil {
		t.Fatalf("reopening data dir: %v", err)
	}
	defer s2.Close()
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()

	got, tr := queryDataset(t, ts2.URL, "events", QueryRequest{Query: example2})
	sortRows(got)
	if tr.DatasetVersion != wantTr.DatasetVersion {
		t.Fatalf("recovered version = %d, want %d", tr.DatasetVersion, wantTr.DatasetVersion)
	}
	if tr.Bind != "miss" {
		t.Fatalf("recovered bind = %q, want miss (fresh generation, fresh cache)", tr.Bind)
	}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("recovered answers = %v, want %v", got, want)
	}
	// The second identical query is served from the warmed bind cache.
	if _, tr := queryDataset(t, ts2.URL, "events", QueryRequest{Query: example2}); tr.Bind != "hit" {
		t.Errorf("second recovered query bind = %q, want hit", tr.Bind)
	}

	st := getStats(t, ts2.URL)
	if st.Storage == nil {
		t.Fatal("/stats has no storage section on a durable server")
	}
	if st.Storage.DataDir != dir || st.Storage.Recovered != 2 || st.Storage.Datasets != 2 {
		t.Errorf("storage stats = %+v, want 2 datasets recovered under %s", st.Storage, dir)
	}
	if len(st.Datasets) != 2 {
		t.Errorf("dataset gauges = %+v, want events and other", st.Datasets)
	}
}

// TestServerSpillBudget runs a dataset query whose exact answer count
// exceeds the server-wide dedup budget: it must complete through the
// disk-backed spill table with exactly the unbudgeted answer set, and the
// /stats storage section must be present (spill gauges return to zero once
// the stream's set is closed).
func TestServerSpillBudget(t *testing.T) {
	// Two branches with 30 overlapping answers each: well past a budget of
	// 4, small enough to stay instant.
	rels := map[string][][]int64{"R": {}, "S": {}}
	for i := int64(0); i < 30; i++ {
		rels["R"] = append(rels["R"], []int64{i, i + 1})
		if i >= 10 {
			rels["S"] = append(rels["S"], []int64{i, i + 1})
		}
	}
	const query = `
		Q1(x,y) <- R(x,y).
		Q2(x,y) <- S(x,y).
	`

	_, plain := newTestServer(t, Config{})
	putDataset(t, plain.URL, "d", rels)
	want, _ := queryDataset(t, plain.URL, "d", QueryRequest{Query: query})
	sortRows(want)
	if len(want) != 30 {
		t.Fatalf("unbudgeted run returned %d answers, want 30", len(want))
	}

	_, ts := newDurableServer(t, Config{SpillBudget: 4, SpillDir: t.TempDir()})
	putDataset(t, ts.URL, "d", rels)
	got, tr := queryDataset(t, ts.URL, "d", QueryRequest{Query: query})
	sortRows(got)
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("spilled answers = %v, want %v", got, want)
	}
	if tr.Count != len(want) {
		t.Errorf("spilled trailer count = %d, want %d", tr.Count, len(want))
	}

	st := getStats(t, ts.URL)
	if st.Storage == nil {
		t.Fatal("/stats has no storage section with a spill budget set")
	}
	if st.Storage.SpillSets != 0 {
		t.Errorf("spill sets still open after the stream completed: %+v", st.Storage)
	}
}

// spillRelations builds the two-branch overlapping dataset the spill tests
// share: 30 distinct answers against a budget of 4.
func spillRelations() (map[string][][]int64, string) {
	rels := map[string][][]int64{"R": {}, "S": {}}
	for i := int64(0); i < 30; i++ {
		rels["R"] = append(rels["R"], []int64{i, i + 1})
		if i >= 10 {
			rels["S"] = append(rels["S"], []int64{i, i + 1})
		}
	}
	return rels, `
		Q1(x,y) <- R(x,y).
		Q2(x,y) <- S(x,y).
	`
}

// TestServerSpillDirCreated pins the -spill-dir flag against a directory
// that does not exist yet: the spilled query must still return the complete
// answer set. The regression: the spill set's MkdirTemp failed on the
// missing directory and the stream silently truncated to a prefix with a
// done:true trailer.
func TestServerSpillDirCreated(t *testing.T) {
	rels, query := spillRelations()
	_, ts := newDurableServer(t, Config{
		SpillBudget: 4,
		SpillDir:    filepath.Join(t.TempDir(), "not", "yet", "created"),
	})
	putDataset(t, ts.URL, "d", rels)
	got, tr := queryDataset(t, ts.URL, "d", QueryRequest{Query: query})
	if !tr.Done || tr.Error != "" {
		t.Fatalf("trailer = %+v, want clean done:true", tr)
	}
	if len(got) != 30 {
		t.Fatalf("spilled query through a fresh dir returned %d answers, want 30", len(got))
	}
}

// TestServerSpillError pins the failure surface when the spill migration is
// impossible (the spill dir's parent is a regular file): the stream must
// end in an error trailer — done stays false — and the count path must be
// an HTTP 500, never a truncated count.
func TestServerSpillError(t *testing.T) {
	occupied := filepath.Join(t.TempDir(), "occupied")
	if err := os.WriteFile(occupied, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	rels, query := spillRelations()
	_, ts := newDurableServer(t, Config{
		SpillBudget: 4,
		SpillDir:    filepath.Join(occupied, "spill"),
	})
	putDataset(t, ts.URL, "d", rels)

	got, tr := queryDataset(t, ts.URL, "d", QueryRequest{Query: query})
	if tr.Done || tr.Error == "" {
		t.Fatalf("trailer = %+v, want done:false with an error", tr)
	}
	if len(got) >= 30 {
		t.Fatalf("stream yielded all %d answers despite the failed spill", len(got))
	}
	if tr.Count != len(got) {
		t.Errorf("error trailer count = %d, but %d answers were streamed", tr.Count, len(got))
	}

	resp := do(t, http.MethodPost, ts.URL+"/datasets/d/count", QueryRequest{Query: query})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("count with a failed spill: status %d, want 500", resp.StatusCode)
	}
}
