package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"runtime"
	"strings"
	"testing"
	"time"

	ucq "repro"
	"repro/internal/wire"
)

// subJoinQuery is free-connex (full head), so auto mode certifies it and
// subscriptions maintain it with the constant-time old-membership filter.
const subJoinQuery = "Q(x,y,z) <- R(x,y), S(y,z)."

// appendRows appends rows to a dataset over the wire and returns its new
// info.
func appendRows(t *testing.T, url, name string, rels map[string][][]int64) DatasetInfo {
	t.Helper()
	resp := do(t, http.MethodPut, url+"/datasets/"+name, DatasetRequest{Relations: rels, Append: true})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("append to %s: status %d", name, resp.StatusCode)
	}
	var info DatasetInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	return info
}

// subItem is one decoded record of a subscription stream.
type subItem struct {
	tuple   []int64
	ev      *ucq.SubscriptionEvent
	trailer *ucq.StreamTrailer
	err     error
}

// subStream is an open subscription plus its decoded record feed.
type subStream struct {
	resp  *http.Response
	items chan subItem
}

// close abandons the subscription and drains the decoder goroutine.
func (s *subStream) close() {
	s.resp.Body.Close()
	for range s.items {
	}
}

// openSub subscribes to a dataset and decodes the stream into a channel in
// the background. accept selects the wire encoding ("" = NDJSON).
func openSub(t *testing.T, url, name string, req SubscribeRequest, accept string) *subStream {
	t.Helper()
	b, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	hr, err := http.NewRequest(http.MethodPost, url+"/datasets/"+name+"/subscribe", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	hr.Header.Set("Content-Type", "application/json")
	if accept != "" {
		hr.Header.Set("Accept", accept)
	}
	resp, err := http.DefaultClient.Do(hr)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		defer resp.Body.Close()
		var er ErrorResponse
		_ = json.NewDecoder(resp.Body).Decode(&er)
		t.Fatalf("subscribe to %s: status %d (%s)", name, resp.StatusCode, er.Error)
	}
	s := &subStream{resp: resp, items: make(chan subItem, 65536)}
	go func() {
		defer close(s.items)
		tr, err := ucq.DecodeSubscriptionStream(resp.Body, resp.Header.Get("Content-Type"),
			func(t ucq.Tuple) bool {
				row := make([]int64, len(t))
				for i, v := range t {
					row[i] = v.Payload()
				}
				s.items <- subItem{tuple: row}
				return true
			},
			func(ev ucq.SubscriptionEvent) bool {
				e := ev
				s.items <- subItem{ev: &e}
				return true
			})
		s.items <- subItem{trailer: tr, err: err}
	}()
	return s
}

// collectUntil reads the stream into set until a non-resync marker for at
// least version arrives. It fails on duplicate pushes (a subscription must
// push every answer exactly once) and reports whether a resync happened,
// in which case the set was restarted from scratch as the protocol
// demands.
func collectUntil(t *testing.T, s *subStream, version uint64, set map[string]bool) (resynced bool) {
	t.Helper()
	timeout := time.After(30 * time.Second)
	for {
		select {
		case it, ok := <-s.items:
			if !ok {
				t.Fatalf("subscription stream closed before version %d", version)
			}
			switch {
			case it.err != nil:
				t.Fatalf("subscription stream failed: %v", it.err)
			case it.trailer != nil:
				t.Fatalf("subscription ended by server before version %d: %+v", version, it.trailer)
			case it.tuple != nil:
				key := fmt.Sprint(it.tuple)
				if set[key] {
					t.Fatalf("answer %s pushed twice", key)
				}
				set[key] = true
			case it.ev != nil && it.ev.Resync:
				// Discard state: the full set at the marker's version follows.
				resynced = true
				for k := range set {
					delete(set, k)
				}
			case it.ev != nil:
				if it.ev.Version >= version {
					return resynced
				}
			}
		case <-timeout:
			t.Fatalf("no marker for version %d within 30s", version)
		}
	}
}

// answerSet keys a full evaluation's rows like collectUntil does.
func answerSet(rows [][]int64) map[string]bool {
	m := make(map[string]bool, len(rows))
	for _, r := range rows {
		m[fmt.Sprint(r)] = true
	}
	return m
}

func sameAnswerSet(t *testing.T, got, want map[string]bool, what string) {
	t.Helper()
	for k := range want {
		if !got[k] {
			t.Errorf("%s: missing answer %s", what, k)
		}
	}
	for k := range got {
		if !want[k] {
			t.Errorf("%s: extra answer %s", what, k)
		}
	}
}

// randomRows makes n random R/S rows over a small shared domain, so joins
// across old and new rows keep appearing.
func randomRows(rng *rand.Rand, n int) map[string][][]int64 {
	rels := map[string][][]int64{"R": {}, "S": {}}
	for i := 0; i < n; i++ {
		rels["R"] = append(rels["R"], []int64{rng.Int63n(20), rng.Int63n(20)})
		rels["S"] = append(rels["S"], []int64{rng.Int63n(20), rng.Int63n(20)})
	}
	return rels
}

// TestSubscribeEquivalenceRandomized is the randomized maintenance
// equivalence arm: subscribe at v1, apply K random appends, and require
// that (initial answers ∪ pushed deltas) equals a full evaluation at the
// head version — across the execution modes and both wire encodings, with
// every answer pushed exactly once.
func TestSubscribeEquivalenceRandomized(t *testing.T) {
	execs := []struct {
		name string
		opts QueryOptions
	}{
		{"auto", QueryOptions{}},
		{"naive", QueryOptions{Mode: "naive"}},
		{"parallel", QueryOptions{Parallel: true}},
		{"sharded", QueryOptions{Parallel: true, Shards: 4}},
	}
	wires := []struct {
		name   string
		accept string
	}{
		{"ndjson", ""},
		{"binary", wire.MediaTypeBinary},
	}
	for ei, ex := range execs {
		for wi, wc := range wires {
			t.Run(ex.name+"/"+wc.name, func(t *testing.T) {
				_, ts := newTestServer(t, Config{})
				defer ts.Close()
				rng := rand.New(rand.NewSource(int64(100 + 10*ei + wi)))

				info := putDataset(t, ts.URL, "live", randomRows(rng, 12))
				sub := openSub(t, ts.URL, "live", SubscribeRequest{Query: subJoinQuery, Options: ex.opts}, wc.accept)
				defer sub.close()

				set := map[string]bool{}
				collectUntil(t, sub, info.Version, set)
				const K = 6
				for i := 0; i < K; i++ {
					info = appendRows(t, ts.URL, "live", randomRows(rng, 3))
					if resynced := collectUntil(t, sub, info.Version, set); resynced {
						t.Fatalf("append %d forced a resync; the log should cover single-append windows", i)
					}
				}

				full, tr := queryDataset(t, ts.URL, "live", QueryRequest{Query: subJoinQuery, Options: ex.opts})
				if tr.DatasetVersion != info.Version {
					t.Fatalf("full eval saw version %d, want %d", tr.DatasetVersion, info.Version)
				}
				sameAnswerSet(t, set, answerSet(full), "after "+fmt.Sprint(K)+" appends")
			})
		}
	}
}

// TestSubscribeResyncOnReplace pins the degradation path: a PUT that
// replaces the dataset clears its append log, so the subscriber cannot be
// maintained incrementally — it must receive a resync marker and then the
// full answer set at the new version.
func TestSubscribeResyncOnReplace(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	defer ts.Close()

	info := putDataset(t, ts.URL, "live", map[string][][]int64{
		"R": {{1, 2}, {3, 4}},
		"S": {{2, 5}, {4, 6}},
	})
	sub := openSub(t, ts.URL, "live", SubscribeRequest{Query: subJoinQuery}, "")
	defer sub.close()
	set := map[string]bool{}
	collectUntil(t, sub, info.Version, set)

	info = putDataset(t, ts.URL, "live", map[string][][]int64{
		"R": {{7, 8}, {9, 10}},
		"S": {{8, 11}, {10, 12}},
	})
	if !collectUntil(t, sub, info.Version, set) {
		t.Fatal("replace did not force a resync")
	}
	full, _ := queryDataset(t, ts.URL, "live", QueryRequest{Query: subJoinQuery})
	sameAnswerSet(t, set, answerSet(full), "after replace")

	if snap := getStats(t, ts.URL); snap.Subscriptions.Resyncs < 1 {
		t.Fatalf("stats report %d resyncs, want ≥ 1", snap.Subscriptions.Resyncs)
	}
}

// TestSubscribeCompactedLogResyncs drives a subscriber's window past a
// tiny append log: with AppendLogSize 1, two appends between wake-ups can
// outrun the retained window. Whatever the timing, the final state must
// equal the head evaluation — incremental when the log covered it, by
// resync when it did not.
func TestSubscribeCompactedLogResyncs(t *testing.T) {
	_, ts := newTestServer(t, Config{AppendLogSize: 1})
	defer ts.Close()

	putDataset(t, ts.URL, "live", map[string][][]int64{
		"R": {{1, 2}},
		"S": {{2, 3}},
	})
	sub := openSub(t, ts.URL, "live", SubscribeRequest{Query: subJoinQuery}, "")
	defer sub.close()
	set := map[string]bool{}
	collectUntil(t, sub, 1, set)

	// Burst appends with no reads in between: wake-ups coalesce, and a
	// window of more than one append exceeds the retained log.
	var info DatasetInfo
	for i := int64(0); i < 6; i++ {
		info = appendRows(t, ts.URL, "live", map[string][][]int64{
			"R": {{10 + i, 20 + i}},
			"S": {{20 + i, 30 + i}},
		})
	}
	collectUntil(t, sub, info.Version, set)
	full, _ := queryDataset(t, ts.URL, "live", QueryRequest{Query: subJoinQuery})
	sameAnswerSet(t, set, answerSet(full), "after append burst")
}

// TestSubscribeFromVersionResume is the reconnect e2e: a subscriber that
// died after the v2 marker reconnects with from_version=2 and receives
// exactly the answers added since — no resync, no repeats of what it
// already has.
func TestSubscribeFromVersionResume(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	defer ts.Close()

	putDataset(t, ts.URL, "live", map[string][][]int64{
		"R": {{1, 2}},
		"S": {{2, 3}},
	})
	sub := openSub(t, ts.URL, "live", SubscribeRequest{Query: subJoinQuery}, "")
	seen := map[string]bool{}
	collectUntil(t, sub, 1, seen)
	info := appendRows(t, ts.URL, "live", map[string][][]int64{"R": {{4, 2}}})
	collectUntil(t, sub, info.Version, seen) // complete through v2
	sub.close()                              // connection dies

	// Answers keep arriving while nobody is connected.
	info = appendRows(t, ts.URL, "live", map[string][][]int64{"S": {{2, 9}}})

	full, _ := queryDataset(t, ts.URL, "live", QueryRequest{Query: subJoinQuery})
	wantDelta := answerSet(full)
	for k := range seen {
		delete(wantDelta, k)
	}
	if len(wantDelta) == 0 {
		t.Fatal("test append added no answers; the resume batch would be trivially empty")
	}

	sub2 := openSub(t, ts.URL, "live", SubscribeRequest{Query: subJoinQuery, FromVersion: 2}, "")
	defer sub2.close()
	delta := map[string]bool{}
	if resynced := collectUntil(t, sub2, info.Version, delta); resynced {
		t.Fatal("covered from_version window must resume incrementally, not resync")
	}
	sameAnswerSet(t, delta, wantDelta, "resume batch")

	// A naive-mode resume has no constant-time old-membership filter: the
	// server must resync — full set after a resync marker, never a wrong
	// partial stream.
	sub3 := openSub(t, ts.URL, "live",
		SubscribeRequest{Query: subJoinQuery, Options: QueryOptions{Mode: "naive"}, FromVersion: 2}, "")
	defer sub3.close()
	all := map[string]bool{}
	if resynced := collectUntil(t, sub3, info.Version, all); !resynced {
		t.Fatal("naive-mode from_version resume must announce a resync")
	}
	sameAnswerSet(t, all, answerSet(full), "naive resume")
}

// TestSubscribeAdmissionSeparateFromStreams pins the two-gate design: the
// subscription cap sheds with its own 429 reason, and saturated
// subscriptions leave query streaming untouched (and vice versa — the
// gauges under /stats tell them apart).
func TestSubscribeAdmissionSeparateFromStreams(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxSubscriptions: 1, QueueDeadline: 50 * time.Millisecond})
	defer ts.Close()

	putDataset(t, ts.URL, "live", map[string][][]int64{
		"R": {{1, 2}},
		"S": {{2, 3}},
	})
	sub := openSub(t, ts.URL, "live", SubscribeRequest{Query: subJoinQuery}, "")
	defer sub.close()
	collectUntil(t, sub, 1, map[string]bool{}) // admitted and streaming

	resp := do(t, http.MethodPost, ts.URL+"/datasets/live/subscribe", SubscribeRequest{Query: subJoinQuery})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second subscription: status %d, want 429", resp.StatusCode)
	}
	var er ErrorResponse
	_ = json.NewDecoder(resp.Body).Decode(&er)
	if !strings.Contains(er.Error, "subscription limit") {
		t.Fatalf("shed reason %q does not name the subscription limit", er.Error)
	}

	// The query-stream gate is untouched: ordinary queries still run.
	full, tr := queryDataset(t, ts.URL, "live", QueryRequest{Query: subJoinQuery})
	if !tr.Done || len(full) == 0 {
		t.Fatalf("query stream starved by saturated subscriptions: done=%v count=%d", tr.Done, len(full))
	}

	snap := getStats(t, ts.URL)
	if snap.Wire.SubscriptionsActive != 1 || snap.Wire.MaxSubscriptions != 1 {
		t.Fatalf("wire gauges: active=%d max=%d, want 1/1", snap.Wire.SubscriptionsActive, snap.Wire.MaxSubscriptions)
	}
	if snap.Wire.SubscriptionsShed != 1 {
		t.Fatalf("wire gauges: shed=%d, want 1", snap.Wire.SubscriptionsShed)
	}
	if snap.Wire.StreamsActive != 0 {
		t.Fatalf("subscriptions leaked into the stream gauge: streams_active=%d", snap.Wire.StreamsActive)
	}
	if snap.Subscriptions.Active != 1 || snap.Subscriptions.Started != 1 {
		t.Fatalf("subscription section: active=%d started=%d, want 1/1", snap.Subscriptions.Active, snap.Subscriptions.Started)
	}
}

// TestSubscribeWarmsBindCache pins the pre-warm satellite: after an
// append, the subscriber's catch-up re-binds the (query, dataset, head
// version) tuple through the shared bind cache, so the next ordinary query
// for the new version is a bind-cache hit and pays no Theorem 12
// preprocessing.
func TestSubscribeWarmsBindCache(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	defer ts.Close()

	putDataset(t, ts.URL, "live", map[string][][]int64{
		"R": {{1, 2}},
		"S": {{2, 3}},
	})
	sub := openSub(t, ts.URL, "live", SubscribeRequest{Query: subJoinQuery}, "")
	defer sub.close()
	collectUntil(t, sub, 1, map[string]bool{})

	info := appendRows(t, ts.URL, "live", map[string][][]int64{"R": {{7, 2}}})
	collectUntil(t, sub, info.Version, map[string]bool{})
	// The v2 marker proves the subscriber re-bound at v2 — the cache fill
	// is ordered before it, not racing the assertion below.
	warm := getStats(t, ts.URL).BindCache

	_, tr := queryDataset(t, ts.URL, "live", QueryRequest{Query: subJoinQuery})
	if tr.Bind != "hit" {
		t.Fatalf("first query after subscriber catch-up: bind=%q, want hit (pre-warmed)", tr.Bind)
	}
	after := getStats(t, ts.URL).BindCache
	if after.Misses != warm.Misses {
		t.Fatalf("query after catch-up added %d bind misses, want 0", after.Misses-warm.Misses)
	}
}

// TestSubscribeAbandonedNoGoroutineLeak abandons subscriptions at various
// points of their life and requires the handler goroutines (and their
// decode/enumeration helpers) to unwind to the baseline.
func TestSubscribeAbandonedNoGoroutineLeak(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	defer ts.Close()
	putDataset(t, ts.URL, "live", map[string][][]int64{
		"R": {{1, 2}, {3, 4}},
		"S": {{2, 5}, {4, 6}},
	})

	baseline := runtime.NumGoroutine()
	subs := make([]*subStream, 0, 4)
	for i := 0; i < 4; i++ {
		sub := openSub(t, ts.URL, "live", SubscribeRequest{Query: subJoinQuery}, "")
		collectUntil(t, sub, 1, map[string]bool{})
		subs = append(subs, sub)
	}
	for _, sub := range subs {
		sub.close()
	}
	http.DefaultClient.Transport = http.DefaultTransport
	http.DefaultTransport.(*http.Transport).CloseIdleConnections()

	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.Gosched()
		if runtime.NumGoroutine() <= baseline+3 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("abandoned subscriptions leaked goroutines: %d now vs %d at baseline",
				runtime.NumGoroutine(), baseline)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestSubscribeGETAndErrors covers the curl-facing GET form and the
// request validation.
func TestSubscribeGETAndErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	defer ts.Close()
	putDataset(t, ts.URL, "live", map[string][][]int64{
		"R": {{1, 2}},
		"S": {{2, 3}},
	})

	// GET with query parameters streams like the POST form.
	resp, err := http.Get(ts.URL + "/datasets/live/subscribe?query=" +
		"Q(x,y,z)%20%3C-%20R(x,y),%20S(y,z).")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET subscribe: status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Ucq-Dataset-Version"); got != "1" {
		t.Fatalf("X-Ucq-Dataset-Version = %q, want 1", got)
	}
	// Read the initial batch then hang up.
	br := make([]byte, 256)
	if _, err := resp.Body.Read(br); err != nil && err != io.EOF {
		t.Fatalf("reading GET stream: %v", err)
	}
	resp.Body.Close()

	for name, status := range map[string]int{
		"/datasets/live/subscribe?from_version=x&query=Q(x)%20%3C-%20R(x,x).": http.StatusBadRequest,
		"/datasets/live/subscribe": http.StatusBadRequest, // no query
		"/datasets/nosuch/subscribe?query=Q(x,y,z)%20%3C-%20R(x,y),%20S(y,z).": http.StatusNotFound,
	} {
		resp, err := http.Get(ts.URL + name)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != status {
			t.Errorf("GET %s: status %d, want %d", name, resp.StatusCode, status)
		}
	}

	// count_only makes no sense on an endless stream.
	resp = do(t, http.MethodPost, ts.URL+"/datasets/live/subscribe",
		SubscribeRequest{Query: subJoinQuery, Options: QueryOptions{CountOnly: true}})
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("count_only subscription: status %d, want 400", resp.StatusCode)
	}
}

// TestSubscribeDropEndsStream pins the termination contract: dropping the
// dataset ends the subscription with an error trailer naming the drop,
// instead of leaving the client hanging silently.
func TestSubscribeDropEndsStream(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	defer ts.Close()
	putDataset(t, ts.URL, "live", map[string][][]int64{
		"R": {{1, 2}},
		"S": {{2, 3}},
	})
	sub := openSub(t, ts.URL, "live", SubscribeRequest{Query: subJoinQuery}, "")
	defer sub.close()
	collectUntil(t, sub, 1, map[string]bool{})

	resp := do(t, http.MethodDelete, ts.URL+"/datasets/live", nil)
	resp.Body.Close()

	timeout := time.After(30 * time.Second)
	for {
		select {
		case it, ok := <-sub.items:
			if !ok {
				t.Fatal("stream closed without a trailer")
			}
			if it.err != nil {
				t.Fatalf("stream failed: %v", it.err)
			}
			if it.trailer != nil {
				if !strings.Contains(it.trailer.Error, "dropped") {
					t.Fatalf("trailer %+v does not report the drop", it.trailer)
				}
				return
			}
		case <-timeout:
			t.Fatal("no trailer within 30s of the drop")
		}
	}
}
