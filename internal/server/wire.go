package server

// QueryRequest is the POST /query body: a UCQ in the datalog-style
// concrete syntax, the instance as relation-name → integer rows, optional
// engine options and an optional answer limit.
type QueryRequest struct {
	// Query is the UCQ source, e.g.
	// "Q1(x,y) <- R(x,z), S(z,y).\nQ2(x,y) <- R(x,y), S(y,y)."
	Query string `json:"query"`
	// Relations maps relation names to rows of integers; the arity of a
	// relation is fixed by its first row.
	Relations map[string][][]int64 `json:"relations"`
	// Options selects the evaluation engine.
	Options QueryOptions `json:"options"`
	// Limit stops the stream after this many answers (0 = all).
	Limit int `json:"limit,omitempty"`
}

// QueryOptions mirrors the engine-facing subset of ucq.PlanOptions on the
// wire.
type QueryOptions struct {
	// Mode is "auto" (certify, fall back to naive; the default) or
	// "naive" (skip certification).
	Mode string `json:"mode,omitempty"`
	// Parallel drains union branches concurrently. When no execution knob
	// (parallel, batch, shards, workers) is set, the planner's cost model
	// resolves them per bind instead — auto execution is the default; any
	// explicit knob pins manual execution.
	Parallel bool `json:"parallel,omitempty"`
	// Batch is the parallel batch size per worker (0 = default).
	Batch int `json:"batch,omitempty"`
	// Shards hash-partitions each branch across N shards (requires
	// Parallel; 0 = off).
	Shards int `json:"shards,omitempty"`
	// Workers bounds the work-stealing executor pool for this request
	// (requires Parallel; 0 = GOMAXPROCS).
	Workers int `json:"workers,omitempty"`
	// CountOnly answers with a single CountResponse object instead of
	// streaming: certified single-branch plans count from the Theorem 12
	// counting pass without enumerating; everything else enumerates and
	// counts server-side.
	CountOnly bool `json:"count_only,omitempty"`
}

// Trailer is the final NDJSON line of a /query response — the only line
// that is a JSON object rather than an array, so clients can detect
// completion and distinguish it from answers. The dataset fields are set
// only on /datasets/{name}/query responses, keeping the legacy /query
// trailer byte-identical.
type Trailer struct {
	Done  bool   `json:"done"`
	Count int    `json:"count"`
	Mode  string `json:"mode"`
	Cache string `json:"cache"`
	// Dataset and DatasetVersion identify the snapshot the query ran on.
	Dataset        string `json:"dataset,omitempty"`
	DatasetVersion uint64 `json:"dataset_version,omitempty"`
	// Bind is "hit" when the per-instance preprocessing was served from the
	// bind cache, "miss" when this request computed (and cached) it.
	Bind string `json:"bind,omitempty"`
	// Scatter and Workers describe the cluster fan-out behind a
	// coordinator's merged stream: "root-range" with the worker count, or
	// "single-worker" when the plan was not range-partitionable. Both stay
	// zero on single-node responses, keeping their trailers byte-identical.
	Scatter string `json:"scatter,omitempty"`
	Workers int    `json:"workers,omitempty"`
	// Error is set (with Done false) when the enumeration itself failed
	// mid-stream after answers already left the socket — today that is disk
	// trouble on the spilled dedup path. The answers above the trailer are
	// then an arbitrary prefix, and Count only counts what was sent.
	Error string `json:"error,omitempty"`
}

// CountResponse is the body of a count-only evaluation — the options'
// count_only flag or POST /datasets/{name}/count. No answers are
// streamed; the count is exact either way.
type CountResponse struct {
	Count int64  `json:"count"`
	Mode  string `json:"mode"`
	// Method is "count-answers" when the count came from the Theorem 12
	// counting pass without enumeration (certified single-branch plans),
	// "enumerate" when cross-branch deduplication forced an enumeration.
	Method string `json:"method"`
	Cache  string `json:"cache"`
	// Dataset fields mirror the Trailer's (dataset endpoints only).
	Dataset        string `json:"dataset,omitempty"`
	DatasetVersion uint64 `json:"dataset_version,omitempty"`
	Bind           string `json:"bind,omitempty"`
}

// SubscribeRequest is the POST /datasets/{name}/subscribe body. The GET
// form carries the same fields as query parameters (query, mode,
// from_version) for curl-friendly subscriptions.
type SubscribeRequest struct {
	// Query is the UCQ source, as in QueryRequest.
	Query string `json:"query"`
	// Options selects the evaluation engine; count_only is rejected.
	Options QueryOptions `json:"options"`
	// FromVersion resumes a subscription that already holds the complete
	// answer set through that dataset version (it was reading a stream that
	// died after a {"version":N} marker): the initial batch is then the
	// delta since FromVersion instead of the full answer set, when the
	// append log still covers it. 0 subscribes from scratch.
	FromVersion uint64 `json:"from_version,omitempty"`
}

// SubscriptionMarker is the NDJSON control object punctuating a
// /subscribe stream: every answer batch ends with one, declaring the
// dataset version the client is now complete through. Resync announces
// that the server could not maintain the client incrementally (the append
// log no longer covered its window) — the client must discard its answer
// set; the full set at Version follows, ended by a plain marker.
type SubscriptionMarker struct {
	Version uint64 `json:"version"`
	Resync  bool   `json:"resync,omitempty"`
}

// DatasetRequest is the PUT /datasets/{name} body: the relations in the
// same rows wire format as QueryRequest.Relations.
type DatasetRequest struct {
	// Relations maps relation names to rows of integers; the arity of a
	// relation is fixed by its first row.
	Relations map[string][][]int64 `json:"relations"`
	// Append adds the rows to the existing dataset (copy-on-write, version
	// bump) instead of replacing its contents. The target must exist.
	Append bool `json:"append,omitempty"`
}

// DatasetInfo is one dataset's listing entry: the PUT response body and
// the elements of GET /datasets.
type DatasetInfo struct {
	Name      string `json:"name"`
	Version   uint64 `json:"version"`
	Rows      int    `json:"rows"`
	Relations int    `json:"relations"`
}

// DatasetListResponse is the GET /datasets body.
type DatasetListResponse struct {
	Datasets []DatasetInfo `json:"datasets"`
}

// ErrorResponse is the JSON body of a non-200 response.
type ErrorResponse struct {
	Error string `json:"error"`
}
