package server

// QueryRequest is the POST /query body: a UCQ in the datalog-style
// concrete syntax, the instance as relation-name → integer rows, optional
// engine options and an optional answer limit.
type QueryRequest struct {
	// Query is the UCQ source, e.g.
	// "Q1(x,y) <- R(x,z), S(z,y).\nQ2(x,y) <- R(x,y), S(y,y)."
	Query string `json:"query"`
	// Relations maps relation names to rows of integers; the arity of a
	// relation is fixed by its first row.
	Relations map[string][][]int64 `json:"relations"`
	// Options selects the evaluation engine.
	Options QueryOptions `json:"options"`
	// Limit stops the stream after this many answers (0 = all).
	Limit int `json:"limit,omitempty"`
}

// QueryOptions mirrors the engine-facing subset of ucq.PlanOptions on the
// wire.
type QueryOptions struct {
	// Mode is "auto" (certify, fall back to naive; the default) or
	// "naive" (skip certification).
	Mode string `json:"mode,omitempty"`
	// Parallel drains union branches concurrently.
	Parallel bool `json:"parallel,omitempty"`
	// Batch is the parallel batch size per worker (0 = default).
	Batch int `json:"batch,omitempty"`
	// Shards hash-partitions each branch across N shards (requires
	// Parallel; 0 = off).
	Shards int `json:"shards,omitempty"`
	// Workers bounds the work-stealing executor pool for this request
	// (requires Parallel; 0 = GOMAXPROCS).
	Workers int `json:"workers,omitempty"`
}

// Trailer is the final NDJSON line of a /query response — the only line
// that is a JSON object rather than an array, so clients can detect
// completion and distinguish it from answers.
type Trailer struct {
	Done  bool   `json:"done"`
	Count int    `json:"count"`
	Mode  string `json:"mode"`
	Cache string `json:"cache"`
}

// ErrorResponse is the JSON body of a non-200 response.
type ErrorResponse struct {
	Error string `json:"error"`
}
